GO ?= go

.PHONY: all vet build test shuffle race bench bench-smoke bench-batch chaos chaos-soak noisy-soak sim sim-soak recovery-soak fuzz-smoke tcp-smoke wal-smoke check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# shuffle reruns the suite twice in randomized test order: any test that
# leans on a sibling's leftover state fails here before it flakes in CI.
shuffle:
	$(GO) test -shuffle=on -count=2 ./...

# The race target runs every internal package — including the migration
# stress test (internal/core TestMigrationStressExactlyOnce), which doubles
# as the locking proof for the location cache and the sharded kernel state —
# under the race detector.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — no timing
# fidelity, just proof that the bench harnesses (and the wire-efficiency
# counters they report) still execute — then replays the gated experiments
# against their checked-in baselines: E12/E13 delivered events/sec and the
# E13 message reduction may not fall more than 30% below baseline, E11
# wire bytes per invoke may not rise more than 30% above it, and the E16
# cluster-scaling reductions (total messages and peak per-node burst,
# tree vs unicast at 256 nodes) may not regress. E17 gates durable
# throughput (events/s with real fsync) and the crash-recovery proof
# (recovered must stay 1). E15 gates QoS tenant isolation: A's p99 under
# B's flood over A's unloaded p99 may not rise above baseline + 30%, and
# system/control sheds have a zero baseline — one shed fails the gate.
# The tolerance absorbs shared-runner noise; the regressions the gate
# exists for — losing the dispatch pool, losing send coalescing, losing
# group commit, losing DWRR isolation — cost far more than 30%.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
	$(GO) run ./cmd/benchtab -e e11,e12,e13,e14,e15,e16,e17 -json -gate BENCH_e11.json,BENCH_e12.json,BENCH_e13.json,BENCH_e14.json,BENCH_e15.json,BENCH_e16.json,BENCH_e17.json > /dev/null

# bench-batch reruns just the E13 batching sweep and prints the table —
# the quick loop for tuning the coalescing knobs.
bench-batch:
	$(GO) run ./cmd/benchtab -e e13

# The chaos target drives the crash-fault-tolerance machinery (DESIGN.md
# §7) under the race detector: the core chaos suite (exactly-once delivery
# under message loss, partition-and-heal, crash recovery, bounded
# synchronous raises), the failure-detector and reliable-transport unit
# tests, the doct fault-injection facade, and the doctsim chaos scenario.
chaos:
	$(GO) test -race -run 'TestChaos|TestRaiseAndWaitTimeout' ./internal/core/
	$(GO) test -race ./internal/failure/ ./internal/reliable/
	$(GO) test -race -run 'TestFacade|TestScenarioChaos' ./doct/ ./cmd/doctsim/

# chaos-soak repeats the chaos suite under the race detector on the real
# clock — the only clock batching runs under, so this is where coalesced
# frames, frame-wide drops and re-batched retransmits actually soak.
# CI runs it nightly next to sim-soak.
chaos-soak:
	$(GO) test -race -count=5 -timeout 30m -run 'TestChaos' ./internal/core/

# noisy-soak repeats the E15 noisy-neighbor scenario under the race
# detector: tenant B floods at ~10x capacity while tenant A and a
# system-class stream run alongside, and every round asserts the QoS
# invariants — B sees admission rejects, A's p99 stays bounded, and no
# system/control message is ever shed. CI runs it nightly next to
# chaos-soak. NOISY_ROUNDS picks the repeat count.
NOISY_ROUNDS ?= 10
noisy-soak:
	NOISY_SOAK_ROUNDS=$(NOISY_ROUNDS) $(GO) test -race -count=1 -timeout 30m -run TestNoisyNeighborSoak -v ./internal/workload/

# sim runs the deterministic simulation suite (internal/sim): same-seed
# determinism, the default fuzz seeds, and the injected-bug detector.
# Replay one failing schedule with:  go test ./internal/sim -run TestSim -seed=N
sim:
	$(GO) test -count=1 ./internal/sim/

# sim-soak sweeps many more schedules than the default suite; CI runs it
# on a schedule rather than per push. SOAK_SEEDS picks the sweep width of
# the 8-node fuzz; the second leg reruns the large-cluster scenario at
# LARGE_NODES nodes (concurrent partitions, cascading restarts, tree
# fan-out group raises) over LARGE_SEEDS seeds.
SOAK_SEEDS ?= 25
LARGE_NODES ?= 128
LARGE_SEEDS ?= 10
sim-soak:
	SIM_SOAK_SEEDS=$(SOAK_SEEDS) $(GO) test -count=1 -timeout 60m -run TestSimFuzz -v ./internal/sim/
	SIM_LARGE_NODES=$(LARGE_NODES) SIM_SOAK_SEEDS=$(LARGE_SEEDS) $(GO) test -count=1 -timeout 60m -run TestSimLargeCluster -v ./internal/sim/

# recovery-soak sweeps the durable crash-restart-replay scenario — WAL +
# snapshots on, guaranteed crash/restart pair per schedule, the
# durable-replay invariant (recovered state must equal a correct replay
# of the on-disk log) checked at every restart — over DUR_SEEDS random
# schedules. CI runs it nightly next to sim-soak.
DUR_SEEDS ?= 100
recovery-soak:
	SIM_DUR_SEEDS=$(DUR_SEEDS) $(GO) test -count=1 -timeout 60m -run TestSimDurableRecovery -v ./internal/sim/

# tcp-smoke boots a real multi-process cluster over loopback TCP — the
# doctnode binary, one OS process per node — and proves events cross the
# wire end to end: the 3-process quickstart plus the 8-process kill -9
# chaos schedule with a mid-workload restart. This is the check that the
# transport subsystem works outside the simulator.
tcp-smoke:
	$(GO) test -count=1 -run 'TestSmokeThreeProcess|TestChaosKill9EightProcess' ./cmd/doctnode/

# wal-smoke proves durability outside the simulator: an 8-process durable
# cluster (every node on -datadir) loses its stateful node to kill -9
# mid-workload, restarts it against the same data directory, and the
# replayed state — sink log, lock tally, dedup windows — must carry the
# whole run's history. The WAL unit suite rides along.
wal-smoke:
	$(GO) test -count=1 ./internal/wal/
	$(GO) test -count=1 -run 'TestWALKill9RestartKeepsState' ./cmd/doctnode/

# fuzz-smoke gives each fuzz target a short budget on top of its
# checked-in corpus — enough to catch an obvious regression per push;
# longer fuzzing runs happen out of band.
fuzz-smoke:
	$(GO) test -fuzz FuzzDeltaRoundTrip -fuzztime 10s ./internal/thread/
	$(GO) test -fuzz FuzzReliableReorder -fuzztime 10s ./internal/reliable/
	$(GO) test -fuzz FuzzBatchRoundTrip -fuzztime 10s ./internal/batch/
	$(GO) test -fuzz FuzzGossipRoundTrip -fuzztime 10s ./internal/failure/
	$(GO) test -fuzz FuzzWALRoundTrip -fuzztime 10s ./internal/wal/
	$(GO) test -fuzz FuzzWALTornTail -fuzztime 10s ./internal/wal/

check: vet build test shuffle race chaos sim
