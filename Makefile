GO ?= go

.PHONY: all vet build test shuffle race bench bench-smoke chaos sim sim-soak fuzz-smoke check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# shuffle reruns the suite twice in randomized test order: any test that
# leans on a sibling's leftover state fails here before it flakes in CI.
shuffle:
	$(GO) test -shuffle=on -count=2 ./...

# The race target runs every internal package — including the migration
# stress test (internal/core TestMigrationStressExactlyOnce), which doubles
# as the locking proof for the location cache and the sharded kernel state —
# under the race detector.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — no timing
# fidelity, just proof that the bench harnesses (and the wire-efficiency
# counters they report) still execute — then replays the E12 sustained-load
# sweep and gates it against the checked-in baseline: delivered events/sec
# may not drop more than 30% below BENCH_e12.json (-gate-tol 0.30). The
# tolerance absorbs shared-runner noise; a real regression — losing the
# dispatch pool and serializing the pipeline again — costs far more than
# 30% (the baseline spread between 1 and 8 workers is ~6x).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
	$(GO) run ./cmd/benchtab -e e12 -json -gate BENCH_e12.json > /dev/null

# The chaos target drives the crash-fault-tolerance machinery (DESIGN.md
# §7) under the race detector: the core chaos suite (exactly-once delivery
# under message loss, partition-and-heal, crash recovery, bounded
# synchronous raises), the failure-detector and reliable-transport unit
# tests, the doct fault-injection facade, and the doctsim chaos scenario.
chaos:
	$(GO) test -race -run 'TestChaos|TestRaiseAndWaitTimeout' ./internal/core/
	$(GO) test -race ./internal/failure/ ./internal/reliable/
	$(GO) test -race -run 'TestFacade|TestScenarioChaos' ./doct/ ./cmd/doctsim/

# sim runs the deterministic simulation suite (internal/sim): same-seed
# determinism, the default fuzz seeds, and the injected-bug detector.
# Replay one failing schedule with:  go test ./internal/sim -run TestSim -seed=N
sim:
	$(GO) test -count=1 ./internal/sim/

# sim-soak sweeps many more schedules than the default suite; CI runs it
# on a schedule rather than per push. SOAK_SEEDS picks the sweep width.
SOAK_SEEDS ?= 25
sim-soak:
	SIM_SOAK_SEEDS=$(SOAK_SEEDS) $(GO) test -count=1 -timeout 60m -run TestSimFuzz -v ./internal/sim/

# fuzz-smoke gives each fuzz target a short budget on top of its
# checked-in corpus — enough to catch an obvious regression per push;
# longer fuzzing runs happen out of band.
fuzz-smoke:
	$(GO) test -fuzz FuzzDeltaRoundTrip -fuzztime 10s ./internal/thread/
	$(GO) test -fuzz FuzzReliableReorder -fuzztime 10s ./internal/reliable/

check: vet build test shuffle race chaos sim
