GO ?= go

.PHONY: all vet build test race bench bench-smoke chaos check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target runs every internal package — including the migration
# stress test (internal/core TestMigrationStressExactlyOnce), which doubles
# as the locking proof for the location cache and the sharded kernel state —
# under the race detector.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — no timing
# fidelity, just proof that the bench harnesses (and the wire-efficiency
# counters they report) still execute.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# The chaos target drives the crash-fault-tolerance machinery (DESIGN.md
# §7) under the race detector: the core chaos suite (exactly-once delivery
# under message loss, partition-and-heal, crash recovery, bounded
# synchronous raises), the failure-detector and reliable-transport unit
# tests, the doct fault-injection facade, and the doctsim chaos scenario.
chaos:
	$(GO) test -race -run 'TestChaos|TestRaiseAndWaitTimeout' ./internal/core/
	$(GO) test -race ./internal/failure/ ./internal/reliable/
	$(GO) test -race -run 'TestFacade|TestScenarioChaos' ./doct/ ./cmd/doctsim/

check: vet build test race chaos
