GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target runs every internal package — including the migration
# stress test (internal/core TestMigrationStressExactlyOnce), which doubles
# as the locking proof for the location cache and the sharded kernel state —
# under the race detector.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

check: vet build test race
