package doct

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

const waitShort = 10 * time.Second

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 3 * time.Second
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	counter, err := sys.CreateObject(2, ObjectSpec{
		Name: "counter",
		Entries: map[string]Entry{
			"incr": func(ctx Ctx, _ []any) ([]any, error) {
				v, _ := ctx.Get("n")
				n, _ := v.(int)
				n++
				ctx.Set("n", n)
				return []any{n}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var last any
	for i := 0; i < 3; i++ {
		h, err := sys.Spawn(1, counter, "incr")
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.WaitTimeout(waitShort)
		if err != nil {
			t.Fatal(err)
		}
		last = res[0]
	}
	if last != 3 {
		t.Fatalf("counter = %v, want 3", last)
	}
}

func TestFacadeEventFlow(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, Locate: LocateBroadcast})
	var handled atomic.Int64
	if err := sys.RegisterProc("h", func(_ Ctx, _ HandlerRef, _ *EventBlock) Verdict {
		handled.Add(1)
		return Resume
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ThreadID, 1)
	app, err := sys.CreateObject(1, ObjectSpec{
		Name: "app",
		Entries: map[string]Entry{
			"run": func(ctx Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("SYNCHRONIZE"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(HandlerRef{Event: "SYNCHRONIZE", Kind: HandlerProc, Proc: "h"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(300 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	time.Sleep(20 * time.Millisecond)
	if _, err := sys.RaiseAndWait(2, "SYNCHRONIZE", ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	if handled.Load() != 1 {
		t.Fatalf("handled = %d", handled.Load())
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLockService(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	server, err := sys.CreateObject(1, LockServerSpec("s"))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(1, ObjectSpec{
		Name: "app",
		Entries: map[string]Entry{
			"run": func(ctx Ctx, _ []any) ([]any, error) {
				if err := AcquireLock(ctx, server, "l"); err != nil {
					return nil, err
				}
				holder, err := LockHolder(ctx, server, "l")
				if err != nil {
					return nil, err
				}
				if err := ReleaseLock(ctx, server, "l"); err != nil {
					return nil, err
				}
				return []any{holder == ctx.Thread()}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, app, "run")
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != true {
		t.Fatal("lock holder mismatch")
	}
}

func TestFacadeTerminationProtocol(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	started := make(chan ThreadID, 1)
	objCh := make(chan ObjectID, 1)
	app, err := sys.CreateObject(1, ObjectSpec{
		Name:     "app",
		Handlers: map[EventName]Handler{EvAbort: AbortCleanupHandler(nil)},
		Entries: map[string]Entry{
			"main": func(ctx Ctx, _ []any) ([]any, error) {
				self := <-objCh
				if _, err := ArmTermination(ctx, self); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	objCh <- app
	h, err := sys.Spawn(1, app, "main")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	time.Sleep(20 * time.Millisecond)
	if err := sys.Raise(2, EvTerminate, ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err == nil {
		t.Fatal("thread survived the termination protocol")
	} else if !errors.Is(err, ErrTerminated) && !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{Nodes: 0}); err == nil {
		t.Fatal("NewSystem with 0 nodes succeeded")
	}
	if _, err := NewSystem(Config{Nodes: 1, Locate: "warp"}); err == nil {
		t.Fatal("NewSystem with unknown strategy succeeded")
	}
}

func TestAllLocateStrategiesBoot(t *testing.T) {
	for _, strat := range []LocateStrategy{
		LocateBroadcast, LocatePathFollow, LocateMulticast, "",
		"cached+broadcast", "cached+path-follow", "cached+multicast",
	} {
		sys, err := NewSystem(Config{Nodes: 2, Locate: strat})
		if err != nil {
			t.Fatalf("%q: %v", strat, err)
		}
		sys.Close()
	}
}

// TestCachedMulticastDelivers guards the by-name wiring: a "cached+multicast"
// locator must still turn on the kernel's tracking-group maintenance, or the
// first cache miss probes an empty group and every delivery fails.
func TestCachedMulticastDelivers(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, Locate: "cached+multicast"})
	var handled atomic.Int64
	if err := sys.RegisterProc("h", func(_ Ctx, _ HandlerRef, _ *EventBlock) Verdict {
		handled.Add(1)
		return Resume
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ThreadID, 1)
	app, err := sys.CreateObject(1, ObjectSpec{
		Name: "app",
		Entries: map[string]Entry{
			"run": func(ctx Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("SYNCHRONIZE"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(HandlerRef{Event: "SYNCHRONIZE", Kind: HandlerProc, Proc: "h"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(300 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	time.Sleep(20 * time.Millisecond)
	// Two raises: the first misses the cache and probes the tracking group,
	// the second must be answered from the cache.
	for i := 0; i < 2; i++ {
		if _, err := sys.RaiseAndWait(2, "SYNCHRONIZE", ToThread(tid), nil); err != nil {
			t.Fatalf("raise %d: %v", i, err)
		}
	}
	if handled.Load() != 2 {
		t.Fatalf("handled = %d, want 2", handled.Load())
	}
	m := sys.Metrics()
	if m.Get("thread.locate.cache.hit") == 0 {
		t.Error("second locate did not hit the cache")
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsExposed(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	oid, err := sys.CreateObject(2, ObjectSpec{
		Name: "o",
		Entries: map[string]Entry{
			"e": func(_ Ctx, _ []any) ([]any, error) { return nil, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "e")
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if m.Get("invoke.remote") != 1 {
		t.Fatalf("metrics: remote invokes = %d, want 1", m.Get("invoke.remote"))
	}
}
