package doct

import (
	"errors"
	"testing"
	"time"
)

func TestFacadePagerService(t *testing.T) {
	const pageSize = 128
	sys := newSystem(t, Config{Nodes: 2, PageSize: pageSize})
	server, err := sys.CreateObject(1, PagerServerSpec("vm", pageSize, nil))
	if err != nil {
		t.Fatal(err)
	}
	seg, err := sys.CreateSegment(1, 2*pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(2, ObjectSpec{
		Name: "faulter",
		Entries: map[string]Entry{
			"run": func(ctx Ctx, _ []any) ([]any, error) {
				if err := AttachPager(ctx, server); err != nil {
					return nil, err
				}
				if err := ctx.SegWrite(seg, 3, []byte{9}); err != nil {
					return nil, err
				}
				data, err := ctx.SegRead(seg, 3, 1)
				if err != nil {
					return nil, err
				}
				return []any{data[0]}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(2, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != byte(9) {
		t.Fatalf("read-back = %v", res[0])
	}
}

func TestFacadeMonitorService(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	server, err := sys.CreateObject(1, MonitorServerSpec("m"))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(1, ObjectSpec{
		Name: "app",
		Entries: map[string]Entry{
			"run": func(ctx Ctx, _ []any) ([]any, error) {
				if err := AttachMonitor(ctx, server, 10*time.Millisecond); err != nil {
					return nil, err
				}
				if err := ctx.Sleep(80 * time.Millisecond); err != nil {
					return nil, err
				}
				return nil, DetachMonitor(ctx)
			},
			"query": func(ctx Ctx, args []any) ([]any, error) {
				tid, _ := args[0].(ThreadID)
				samples, err := MonitorSamples(ctx, server, tid)
				if err != nil {
					return nil, err
				}
				return []any{len(samples)}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	hq, err := sys.Spawn(1, app, "query", h.TID())
	if err != nil {
		t.Fatal(err)
	}
	res, err := hq.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res[0].(int)
	if n < 3 {
		t.Fatalf("samples = %d, want >= 3", n)
	}
}

func TestFacadeTrace(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, TraceCapacity: 128})
	oid, err := sys.CreateObject(2, ObjectSpec{
		Name: "o",
		Entries: map[string]Entry{
			"e": func(_ Ctx, _ []any) ([]any, error) { return nil, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "e")
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	tr := sys.Trace()
	if tr == nil || tr.Total() == 0 {
		t.Fatal("trace empty")
	}
	if len(tr.OfThread(h.TID())) == 0 {
		t.Fatal("no trace records for the spawned thread")
	}
}

func TestFacadeTraceDisabled(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	if sys.Trace() != nil {
		t.Fatal("Trace() non-nil without TraceCapacity")
	}
}

func TestFacadeDSMMode(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, Mode: ModeDSM})
	oid, err := sys.CreateObject(2, ObjectSpec{
		Name:     "state",
		DataSize: 512,
		Entries: map[string]Entry{
			"bump": func(ctx Ctx, _ []any) ([]any, error) {
				d, err := ctx.ReadData(0, 1)
				if err != nil {
					return nil, err
				}
				d[0]++
				if err := ctx.WriteData(0, d); err != nil {
					return nil, err
				}
				return []any{int(d[0])}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	driver, err := sys.CreateObject(1, ObjectSpec{
		Name: "driver",
		Entries: map[string]Entry{
			"run": func(ctx Ctx, _ []any) ([]any, error) {
				var last any
				for i := 0; i < 3; i++ {
					res, err := ctx.Invoke(oid, "bump")
					if err != nil {
						return nil, err
					}
					last = res[0]
				}
				return []any{last}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, driver, "run")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 3 {
		t.Fatalf("count = %v, want 3", res[0])
	}
	m := sys.Metrics()
	if m.Get("invoke.dsm") != 3 {
		t.Fatalf("dsm invokes = %d, want 3", m.Get("invoke.dsm"))
	}
}

func TestFacadeSpawnAppAndIOChannel(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, ObjectSpec{
		Name: "printer",
		Entries: map[string]Entry{
			"print": func(ctx Ctx, args []any) ([]any, error) {
				ctx.Attrs().IOChannel = "term-a"
				ctx.Output("hello from " + ctx.Attrs().App)
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SpawnApp(1, "appA", oid, "print")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	lines := sys.IOChannel("term-a")
	if len(lines) != 1 || lines[0] != "hello from appA" {
		t.Fatalf("IOChannel = %v", lines)
	}
}

func TestFacadeHandleOf(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, ObjectSpec{
		Name: "o",
		Entries: map[string]Entry{
			"e": func(_ Ctx, _ []any) ([]any, error) { return nil, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "e")
	if got := sys.HandleOf(h.TID()); got != h {
		t.Fatal("HandleOf returned a different handle")
	}
	if sys.HandleOf(ThreadID(12345)) != nil {
		t.Fatal("HandleOf unknown thread returned a handle")
	}
	if len(sys.Handles()) != 1 {
		t.Fatalf("Handles = %d, want 1", len(sys.Handles()))
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRaiseErrors(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	err := sys.Raise(1, EvTerminate, ToThread(ThreadID(99999)), nil)
	if !errors.Is(err, ErrThreadNotFound) {
		t.Fatalf("err = %v, want ErrThreadNotFound", err)
	}
	if err := sys.Raise(99, EvTerminate, ToThread(ThreadID(1)), nil); err == nil {
		t.Fatal("raise from unknown node succeeded")
	}
}

func TestFacadeAccessors(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	if sys.Core() == nil {
		t.Error("Core() nil")
	}
	if nodes := sys.Nodes(); len(nodes) != 2 {
		t.Errorf("Nodes() = %v", nodes)
	}
}
