package doct

import (
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/testutil"
)

// TestFacadeSeverHealMidInvocation severs a link while a remote invocation
// is outstanding across it, then heals within the reliable transport's
// retry budget: the reply rides a retransmission home and the caller never
// sees the outage. The suspicion window is kept wide so the failure
// detector stays out of the story — this is the transport healing, not a
// node-down recovery.
func TestFacadeSeverHealMidInvocation(t *testing.T) {
	sys := newSystem(t, Config{
		Nodes:           2,
		FaultTolerance:  true,
		HeartbeatPeriod: 20 * time.Millisecond,
		SuspectAfter:    2 * time.Second,
	})
	entered := make(chan struct{})
	proceed := make(chan struct{})
	obj, err := sys.CreateObject(2, ObjectSpec{
		Name: "slowpoke",
		Entries: map[string]Entry{
			"slow": func(_ Ctx, _ []any) ([]any, error) {
				close(entered)
				<-proceed
				return []any{"survived"}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, obj, "slow")
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	sys.SeverLink(1, 2)
	close(proceed)
	// The reply is now retransmitting into the cut; the retry backoff
	// (2,4,8,...ms over ten attempts) comfortably outlives this outage.
	time.Sleep(40 * time.Millisecond)
	sys.HealLink(1, 2)

	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatalf("invocation across sever+heal: %v", err)
	}
	if len(res) != 1 || res[0] != "survived" {
		t.Fatalf("result = %v, want [survived]", res)
	}
	if sys.Metrics().Get(metrics.CtrRelRetry) == 0 {
		t.Error("no retransmissions recorded — the sever window was never exercised")
	}
}

// TestFacadePartitionDuringRaiseAndWait drops a partition in the middle of
// a synchronous raise: the handler has already started on the far side
// when the cut lands, so its verdict cannot come home. The raiser must
// fail with a typed error bounded by the raise timeout, and after HealAll
// the same raise must complete normally.
func TestFacadePartitionDuringRaiseAndWait(t *testing.T) {
	sys := ftSystem(t, 4)
	inHandler := make(chan struct{}, 2)
	hold := make(chan struct{})
	if err := sys.RegisterProc("partproc", func(_ Ctx, _ HandlerRef, _ *EventBlock) Verdict {
		inHandler <- struct{}{}
		<-hold
		return Resume
	}); err != nil {
		t.Fatal(err)
	}
	parked := make(chan ThreadID, 1)
	obj, err := sys.CreateObject(3, ObjectSpec{
		Name: "handlerhost",
		Entries: map[string]Entry{
			"park": func(ctx Ctx, _ []any) ([]any, error) {
				if err := ctx.AttachHandler(HandlerRef{Event: EvInterrupt, Kind: HandlerProc, Proc: "partproc"}); err != nil {
					return nil, err
				}
				parked <- ctx.Thread()
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn(3, obj, "park"); err != nil {
		t.Fatal(err)
	}
	tid := <-parked

	raised := make(chan error, 1)
	go func() {
		_, err := sys.RaiseAndWait(1, EvInterrupt, ToThread(tid), nil)
		raised <- err
	}()
	<-inHandler // the handler is running on node 3: the raise is mid-flight
	sys.Partition([]NodeID{1, 2}, []NodeID{3, 4})
	close(hold) // the verdict is now trying to cross the cut

	start := time.Now()
	select {
	case err := <-raised:
		if err == nil {
			t.Fatal("RaiseAndWait across a mid-raise partition succeeded")
		}
		if !errors.Is(err, ErrRaiseTimeout) && !errors.Is(err, ErrNodeDown) && !errors.Is(err, ErrThreadNotFound) {
			t.Errorf("RaiseAndWait err = %v, want a typed raise/node failure", err)
		}
	case <-time.After(waitShort):
		t.Fatal("RaiseAndWait hung across the partition")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("raiser released after %v, want bounded by the raise timeout", elapsed)
	}

	sys.HealAll()
	testutil.WaitFor(t, "membership to reconverge after heal", func() bool {
		m := sys.Membership()
		return len(m.Suspected) == 0 && len(m.Alive) == 4
	})
	// hold is closed, so the handler now returns its verdict immediately
	// and the round trip completes.
	if _, err := sys.RaiseAndWait(1, EvInterrupt, ToThread(tid), nil); err != nil {
		t.Fatalf("RaiseAndWait after heal: %v", err)
	}
}

// TestFacadeRestartDuringRecovery restarts the crashed node while the
// survivors are still absorbing its workload: objects are re-homed, the
// orphaned lock is reclaimed, and the restarted node must rejoin and serve
// fresh work without disturbing either recovery outcome.
func TestFacadeRestartDuringRecovery(t *testing.T) {
	sys := ftSystem(t, 3)

	// A lock server on node 1 and a holder thread on node 3: the holder
	// dies with its node, leaving the lock orphaned.
	server, err := sys.CreateObject(1, LockServerSpec("chaoslocks"))
	if err != nil {
		t.Fatal(err)
	}
	locked := make(chan struct{})
	holder, err := sys.CreateObject(3, ObjectSpec{
		Name: "holder",
		Entries: map[string]Entry{
			"grab": func(ctx Ctx, _ []any) ([]any, error) {
				if err := AcquireLock(ctx, server, "L"); err != nil {
					return nil, err
				}
				close(locked)
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn(3, holder, "grab"); err != nil {
		t.Fatal(err)
	}
	<-locked

	// A stateful object on node 3 to recover.
	vault, err := sys.CreateObject(3, ObjectSpec{
		Name: "vault",
		Entries: map[string]Entry{
			"put": func(ctx Ctx, _ []any) ([]any, error) { ctx.Set("gold", 9); return nil, nil },
			"get": func(ctx Ctx, _ []any) ([]any, error) { v, _ := ctx.Get("gold"); return []any{v}, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h, err := sys.Spawn(3, vault, "put"); err != nil {
		t.Fatal(err)
	} else if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}

	if err := sys.CrashNode(3); err != nil {
		t.Fatal(err)
	}
	// Begin recovery onto node 2 and restart node 3 immediately — the
	// restart must not resurrect the old objects or the dead lock holder.
	n, err := sys.RecoverObjects(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("recovered %d objects, want at least holder+vault", n)
	}
	if err := sys.RestartNode(3); err != nil {
		t.Fatal(err)
	}

	// The orphaned lock is reclaimed (the NODE_DOWN sweep may already have
	// done it; the explicit call covers the restart racing the sweep).
	testutil.WaitFor(t, "orphaned lock reclaim", func() bool {
		sys.ReclaimOrphanedLocks()
		return sys.Metrics().Get(metrics.CtrLockReclaim) > 0
	})

	// The recovered vault serves with its state from node 2.
	found, err := sys.FindObject(2, "vault")
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(2, found, "get")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h.WaitTimeout(waitShort); err != nil || len(res) != 1 || res[0] != 9 {
		t.Fatalf("recovered vault get = (%v, %v), want ([9], nil)", res, err)
	}

	// The restarted node rejoins the membership and serves fresh work.
	testutil.WaitFor(t, "restarted node to rejoin", func() bool {
		m := sys.Membership()
		return len(m.Suspected) == 0 && len(m.Alive) == 3
	})
	echo, err := sys.CreateObject(3, ObjectSpec{
		Name: "echo3",
		Entries: map[string]Entry{
			"hi": func(_ Ctx, args []any) ([]any, error) { return args, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	he, err := sys.Spawn(3, echo, "hi", "back")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := he.WaitTimeout(waitShort); err != nil || len(res) != 1 || res[0] != "back" {
		t.Fatalf("post-restart spawn = (%v, %v), want ([back], nil)", res, err)
	}
}
