package doct

import (
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/failure"
)

// Crash-fault tolerance and fault injection (DESIGN.md §7).
//
// The fabric can lose messages, links can be severed, and whole nodes can
// fail-stop — with Config.FaultTolerance enabled, the system detects
// crashes by heartbeat, retransmits lost events until acknowledged,
// converts undeliverable posts into prompt typed errors, reclaims locks
// held by threads lost in a crash, and announces membership transitions as
// NODE_DOWN / NODE_UP events to registered watcher objects.

// Membership events, raisable at watcher objects (see WatchMembership).
const (
	EvNodeDown = event.NodeDown
	EvNodeUp   = event.NodeUp
)

// EvThreadDeath notifies a synchronous raiser that its target thread died
// before releasing it (§7.2) — in a crash, before it could even be told to.
const EvThreadDeath = event.ThreadDeath

// Fault-tolerance errors.
var (
	// ErrRaiseTimeout: RaiseAndWait got no release within RaiseTimeout.
	ErrRaiseTimeout = core.ErrRaiseTimeout
	// ErrNodeDown: the operation aimed at a node the failure detector
	// suspects (or whose messages proved undeliverable).
	ErrNodeDown = core.ErrNodeDown
	// ErrNodeCrashed: the operation ran on, or was doomed by, a node that
	// crashed mid-flight.
	ErrNodeCrashed = core.ErrNodeCrashed
)

// Membership is a point-in-time cluster view: alive and suspected nodes
// under a monotonically increasing generation.
type Membership = failure.Membership

// SeverLink cuts the interconnect between a and b, both directions.
// Messages between them are dropped until the link heals.
func (s *System) SeverLink(a, b NodeID) {
	s.core.CutLink(a, b)
	s.core.CutLink(b, a)
}

// HealLink restores the interconnect between a and b, both directions.
func (s *System) HealLink(a, b NodeID) {
	s.core.HealLink(a, b)
	s.core.HealLink(b, a)
}

// Partition splits the cluster into two sides that cannot reach each
// other (links within each side stay up).
func (s *System) Partition(sideA, sideB []NodeID) { s.core.Partition(sideA, sideB) }

// HealAll restores every severed link.
func (s *System) HealAll() { s.core.HealAll() }

// SetDropRate changes the probability in [0,1) that any message is lost.
func (s *System) SetDropRate(rate float64) { s.core.SetDropRate(rate) }

// CrashNode fail-stops a node: its traffic stops both directions and every
// thread activation executing there dies. With FaultTolerance enabled the
// survivors detect the crash within SuspectAfter and recover; without it
// the cluster behaves like 1993 hardware — calls into the void time out.
func (s *System) CrashNode(node NodeID) error { return s.core.CrashNode(node) }

// RestartNode brings a crashed node back. Volatile state (threads,
// pending raises) is gone; resident objects and their segments survived
// on disk.
func (s *System) RestartNode(node NodeID) error { return s.core.RestartNode(node) }

// Crashed reports whether node is currently crashed.
func (s *System) Crashed(node NodeID) bool { return s.core.Crashed(node) }

// Membership returns the current cluster view as seen by an alive node's
// failure detector (a static view when FaultTolerance is off).
func (s *System) Membership() Membership { return s.core.Membership() }

// WatchMembership registers an object for NODE_DOWN / NODE_UP events. The
// object registers handlers for those names in its spec; each membership
// transition is delivered exactly once cluster-wide, with the node ID
// under User["node"].
func (s *System) WatchMembership(oid ObjectID) { s.core.WatchMembership(oid) }

// RecoverObjects re-homes every object resident at a crashed node onto a
// surviving one, restoring each from its persistent image (Passivate/
// Activate machinery). Objects receive fresh identities at the new home;
// callers re-resolve by name. Returns the number recovered.
func (s *System) RecoverObjects(from, to NodeID) (int, error) {
	return s.core.RecoverObjects(from, to)
}

// FindObject resolves an object by name at a node — the stable key after
// RecoverObjects hands the object a fresh identity at its new home.
func (s *System) FindObject(node NodeID, name string) (ObjectID, error) {
	return s.core.FindObject(node, name)
}

// ReclaimOrphanedLocks sweeps lock servers for locks whose holders died
// with a crashed node and releases them via the §4.2 chained-unlock
// machinery. The FT subsystem runs this automatically on NODE_DOWN; the
// method serves harnesses driving recovery by hand. Returns the number of
// locks reclaimed.
func (s *System) ReclaimOrphanedLocks() int { return s.core.ReclaimOrphanedLocks() }
