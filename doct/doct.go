// Package doct is the public API of the DO/CT event-handling library: a
// simulated Distributed-Object/Concurrent-Thread programming environment
// with the asynchronous event facility of Menon, Dasgupta & LeBlanc,
// "Asynchronous Event Handling in Distributed Object-Based Systems"
// (ICDCS 1993).
//
// A System is a cluster of simulated nodes hosting passive persistent
// objects. Logical threads enter objects by invocation and may cross node
// boundaries; their attributes (handler chains, timers, I/O channel,
// per-thread memory) travel with them. Events are raised at threads,
// thread groups or objects, synchronously or asynchronously, and handled
// by LIFO-chained thread-based handlers (attachment entries, buddy
// handlers, or per-thread-memory procedures run in the current object's
// context) or by object-based handlers served by a master handler thread.
//
// Quick start:
//
//	sys, _ := doct.NewSystem(doct.Config{Nodes: 4})
//	defer sys.Close()
//	counter, _ := sys.CreateObject(2, doct.ObjectSpec{
//	    Name: "counter",
//	    Entries: map[string]doct.Entry{
//	        "incr": func(ctx doct.Ctx, args []any) ([]any, error) { ... },
//	    },
//	})
//	h, _ := sys.Spawn(1, counter, "incr")
//	res, err := h.Wait()
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of the paper's design claims.
package doct

import (
	"time"

	"repro/internal/core"
	"repro/internal/ctrlc"
	"repro/internal/debug"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/locks"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/object"
	"repro/internal/pager"
	"repro/internal/thread"
	"repro/internal/trace"
)

// Re-exported identifier types.
type (
	// NodeID names a simulated node (1..Nodes).
	NodeID = ids.NodeID
	// ThreadID names a distributed logical thread.
	ThreadID = ids.ThreadID
	// ObjectID names a passive persistent object.
	ObjectID = ids.ObjectID
	// GroupID names a thread group.
	GroupID = ids.GroupID
	// SegmentID names a DSM segment.
	SegmentID = ids.SegmentID
)

// Re-exported event model.
type (
	// EventName identifies an event (system or registered user event).
	EventName = event.Name
	// EventBlock is passed to every handler (§4.1).
	EventBlock = event.Block
	// HandlerRef describes one thread-based handler attachment.
	HandlerRef = event.HandlerRef
	// Verdict is a handler's decision about the suspended thread.
	Verdict = event.Verdict
	// Target routes a raise to a thread, group or object.
	Target = event.Target
	// ThreadState is the suspended thread snapshot in an event block.
	ThreadState = event.ThreadState
)

// System events (§3).
const (
	EvTerminate = event.Terminate
	EvAbort     = event.Abort
	EvQuit      = event.Quit
	EvDelete    = event.Delete
	EvInterrupt = event.Interrupt
	EvTimer     = event.Timer
	EvVMFault   = event.VMFault
	EvPageFault = event.PageFault
	EvDivZero   = event.DivZero
	EvAlarm     = event.Alarm
)

// Handler verdicts (§3, §4.2).
const (
	Resume    = event.VerdictResume
	Terminate = event.VerdictTerminate
	Propagate = event.VerdictPropagate
)

// Handler placements (§4.1).
const (
	// HandlerEntry runs an entry of the attaching object.
	HandlerEntry = event.KindEntry
	// HandlerBuddy runs an entry of a designated other object.
	HandlerBuddy = event.KindBuddy
	// HandlerProc runs per-thread-memory code in the current object's
	// context (OWN_CONTEXT).
	HandlerProc = event.KindProc
)

// Routing constructors (§5.3's addressing matrix).
var (
	// ToThread addresses one thread.
	ToThread = event.ToThread
	// ToGroup addresses every member of a thread group.
	ToGroup = event.ToGroup
	// ToObject addresses a (possibly passive) object.
	ToObject = event.ToObject
)

// Execution-facing types.
type (
	// Ctx is the kernel interface entries and handlers run against.
	Ctx = object.Ctx
	// Entry is an invocable object entry point.
	Entry = object.Entry
	// Handler is object-based or named handler-method code.
	Handler = object.Handler
	// ObjectSpec declares an object's entries, handlers and policy.
	ObjectSpec = object.Spec
	// HandlerPolicy selects master-thread vs spawn-per-event (§4.3).
	HandlerPolicy = object.HandlerPolicy
	// TimerSpec is a periodic timer registration in thread attributes.
	TimerSpec = thread.TimerSpec
	// Attributes is the thread context that travels with a thread.
	Attributes = thread.Attributes
	// Handle tracks a spawned thread.
	Handle = core.Handle
	// ProcFunc is registered per-thread handler code.
	ProcFunc = core.ProcFunc
	// InvokeMode selects RPC-style or DSM-style invocation.
	InvokeMode = core.InvokeMode
	// Snapshot is a point-in-time copy of the system counters.
	Snapshot = metrics.Snapshot
)

// Object handler policies (§4.3).
const (
	MasterThread  = object.MasterThread
	SpawnPerEvent = object.SpawnPerEvent
)

// Invocation modes (§2).
const (
	ModeRPC = core.ModeRPC
	ModeDSM = core.ModeDSM
)

// Kernel errors.
var (
	// ErrTerminated is returned after a handler terminated the thread.
	ErrTerminated = core.ErrTerminated
	// ErrAborted is returned after the invocation in progress was aborted.
	ErrAborted = core.ErrAborted
	// ErrThreadNotFound means the target thread could not be located.
	ErrThreadNotFound = core.ErrThreadNotFound
	// ErrUnhandledSync means no handler consumed a synchronous raise.
	ErrUnhandledSync = core.ErrUnhandledSync
	// ErrShutdown is returned for operations on a closed system.
	ErrShutdown = core.ErrShutdown
)

// LocateStrategy names a thread-location strategy (§7.1).
type LocateStrategy string

// Available strategies.
const (
	// LocateBroadcast probes every node.
	LocateBroadcast LocateStrategy = "broadcast"
	// LocatePathFollow chases TCB forwarding pointers from the root node.
	LocatePathFollow LocateStrategy = "path-follow"
	// LocateMulticast uses per-thread tracking multicast groups.
	LocateMulticast LocateStrategy = "multicast"
)

// Config parameterizes a System.
type Config struct {
	// Nodes is the cluster size (>= 1).
	Nodes int
	// Latency and Jitter simulate the interconnect (zero = immediate).
	Latency time.Duration
	Jitter  time.Duration
	// PageSize is the DSM page granularity (0 = 1024).
	PageSize int
	// Mode selects RPC-style (default) or DSM-style invocation.
	Mode InvokeMode
	// Locate selects the thread-location strategy (default path-follow).
	Locate LocateStrategy
	// CallTimeout bounds kernel RPCs (0 = 30s).
	CallTimeout time.Duration
	// RaiseTimeout bounds RaiseAndWait (0 = CallTimeout): a synchronous
	// raise across a severed link or into a crashed node returns
	// ErrRaiseTimeout instead of hanging.
	RaiseTimeout time.Duration
	// FaultTolerance enables the crash-fault-tolerance subsystem: a
	// heartbeat failure detector per node, ack/retry reliable event
	// delivery, and automatic crash recovery (lock reclaim, cache
	// invalidation, NODE_DOWN events). Fault injection works without it;
	// detection and recovery need it.
	FaultTolerance bool
	// HeartbeatPeriod and SuspectAfter tune the failure detector (zero =
	// 15ms period, 5 missed periods).
	HeartbeatPeriod time.Duration
	SuspectAfter    time.Duration
	// DropRate is the probability in [0,1) that any message is lost in
	// the interconnect (chaos testing; adjustable later via SetDropRate).
	DropRate float64
	// TraceCapacity retains the last N kernel trace records (raises,
	// deliveries, handler runs, hops); zero disables tracing.
	TraceCapacity int
	// Seed seeds fabric randomness.
	Seed int64
}

// System is a booted DO/CT cluster with the standard services (lock
// cleanup, monitoring, termination protocol) registered.
type System struct {
	core *core.System
}

// NewSystem boots a cluster and registers the library's standard handler
// code (locks cleanup, monitor sampling, ^C protocol).
func NewSystem(cfg Config) (*System, error) {
	var strat locate.Strategy
	switch cfg.Locate {
	case LocateBroadcast:
		strat = locate.Broadcast{}
	case LocateMulticast:
		strat = locate.Multicast{}
	case LocatePathFollow, "":
		strat = locate.PathFollow{}
	default:
		s, err := locate.ByName(string(cfg.Locate))
		if err != nil {
			return nil, err
		}
		strat = s
	}
	// Multicast only works when the kernel maintains the tracking groups —
	// including when it arrives wrapped ("cached+multicast").
	trackMC := locate.UsesMulticast(strat)
	cs, err := core.NewSystem(core.Config{
		Nodes:          cfg.Nodes,
		Latency:        cfg.Latency,
		Jitter:         cfg.Jitter,
		PageSize:       cfg.PageSize,
		Mode:           cfg.Mode,
		Locator:        strat,
		TrackMulticast: trackMC,
		CallTimeout:    cfg.CallTimeout,
		RaiseTimeout:   cfg.RaiseTimeout,
		FT: core.FTConfig{
			Enabled:         cfg.FaultTolerance,
			HeartbeatPeriod: cfg.HeartbeatPeriod,
			SuspectAfter:    cfg.SuspectAfter,
		},
		TraceCapacity: cfg.TraceCapacity,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if cfg.DropRate > 0 {
		cs.SetDropRate(cfg.DropRate)
	}
	s := &System{core: cs}
	if err := locks.Register(cs); err != nil {
		cs.Close()
		return nil, err
	}
	if err := monitor.Register(cs); err != nil {
		cs.Close()
		return nil, err
	}
	if err := ctrlc.Register(cs); err != nil {
		cs.Close()
		return nil, err
	}
	return s, nil
}

// Close shuts the cluster down.
func (s *System) Close() { s.core.Close() }

// Core exposes the underlying kernel system for advanced use (experiment
// harnesses, kernels, TCBs).
func (s *System) Core() *core.System { return s.core }

// Nodes returns the cluster's node identifiers.
func (s *System) Nodes() []NodeID { return s.core.Nodes() }

// Metrics returns a snapshot of the system counters.
func (s *System) Metrics() Snapshot { return s.core.Metrics().Snapshot() }

// Trace is the kernel trace buffer (nil unless Config.TraceCapacity > 0;
// its methods are nil-safe).
type Trace = trace.Buffer

// TraceRecord is one kernel trace entry.
type TraceRecord = trace.Record

// Trace returns the kernel trace buffer.
func (s *System) Trace() *Trace { return s.core.Trace() }

// CreateObject creates a passive persistent object homed at node.
func (s *System) CreateObject(node NodeID, spec ObjectSpec) (ObjectID, error) {
	return s.core.CreateObject(node, spec)
}

// CreateSegment creates a standalone DSM segment homed at node. User-paged
// segments bypass kernel coherence and fault to VM_FAULT handlers (§6.4).
func (s *System) CreateSegment(node NodeID, size int, userPaged bool) (SegmentID, error) {
	k, err := s.core.Kernel(node)
	if err != nil {
		return ids.NoSegment, err
	}
	return k.CreateSegment(size, userPaged)
}

// ObjectImage is the passive representation of an object (its persistent
// segment plus volatile state), produced by Passivate and consumed by
// Activate.
type ObjectImage = core.ObjectImage

// Passivate captures an object's passive image and deactivates it (its
// DELETE handler runs first). Objects are persistent by nature (§2); the
// image can later be reactivated on any node.
func (s *System) Passivate(oid ObjectID) (ObjectImage, error) {
	return s.core.Passivate(oid)
}

// Activate reconstructs a passivated object at node from its image.
func (s *System) Activate(node NodeID, spec ObjectSpec, img ObjectImage) (ObjectID, error) {
	return s.core.Activate(node, spec, img)
}

// Spawn starts a root thread at node invoking entry on obj.
func (s *System) Spawn(node NodeID, obj ObjectID, entry string, args ...any) (*Handle, error) {
	return s.core.Spawn(node, obj, entry, args...)
}

// SpawnApp is Spawn with an application label (§3.1 sharability).
func (s *System) SpawnApp(node NodeID, app string, obj ObjectID, entry string, args ...any) (*Handle, error) {
	return s.core.SpawnApp(node, app, obj, entry, args...)
}

// Raise raises an event asynchronously from outside any thread (e.g. a ^C
// at the controlling terminal, §6.3). It originates at node.
func (s *System) Raise(node NodeID, name EventName, target Target, user map[string]any) error {
	return s.core.Raise(node, name, target, user)
}

// RaiseAndWait raises synchronously and returns the handler's verdict.
func (s *System) RaiseAndWait(node NodeID, name EventName, target Target, user map[string]any) (Verdict, error) {
	return s.core.RaiseAndWait(node, name, target, user)
}

// RegisterProc installs position-independent handler code (§7.2).
func (s *System) RegisterProc(name string, f ProcFunc) error {
	return s.core.RegisterProc(name, f)
}

// HandleOf returns the handle of any spawned thread.
func (s *System) HandleOf(tid ThreadID) *Handle { return s.core.HandleOf(tid) }

// Handles returns every spawned thread's handle.
func (s *System) Handles() []*Handle { return s.core.Handles() }

// IOChannel returns the lines written to a named thread I/O channel.
func (s *System) IOChannel(channel string) []string { return s.core.IOChannel(channel) }

// Standard services re-exported at the facade.

// LockServerSpec returns a distributed lock-server object (§4.2).
func LockServerSpec(label string) ObjectSpec { return locks.ServerSpec(label) }

// AcquireLock takes a named lock and chains its unlock routine onto the
// thread's TERMINATE handler (§4.2).
func AcquireLock(ctx Ctx, server ObjectID, name string) error {
	return locks.Acquire(ctx, server, name)
}

// ReleaseLock frees a named lock.
func ReleaseLock(ctx Ctx, server ObjectID, name string) error {
	return locks.Release(ctx, server, name)
}

// LockHolder reports the holder of a named lock.
func LockHolder(ctx Ctx, server ObjectID, name string) (ThreadID, error) {
	return locks.Holder(ctx, server, name)
}

// MonitorServerSpec returns a central monitoring server object (§6.2).
func MonitorServerSpec(label string) ObjectSpec { return monitor.ServerSpec(label) }

// AttachMonitor starts liveliness monitoring of the calling thread (§6.2).
func AttachMonitor(ctx Ctx, server ObjectID, period time.Duration) error {
	return monitor.Attach(ctx, server, period)
}

// DetachMonitor stops monitoring the calling thread.
func DetachMonitor(ctx Ctx) error { return monitor.Detach(ctx) }

// MonitorSample is one liveliness observation.
type MonitorSample = monitor.Sample

// MonitorSamples queries the server for a thread's samples.
func MonitorSamples(ctx Ctx, server ObjectID, tid ThreadID) ([]MonitorSample, error) {
	return monitor.SamplesOf(ctx, server, tid)
}

// PagerServerSpec returns a user-level virtual memory manager object
// (§6.4) with the given page size and merge policy (nil = byte-wise max).
func PagerServerSpec(label string, pageSize int, merge pager.MergeFunc) ObjectSpec {
	return pager.ServerSpec(label, pageSize, merge)
}

// AttachPager directs the calling thread's VM_FAULT events at a pager
// server (a buddy handler, §6.4).
func AttachPager(ctx Ctx, server ObjectID) error { return pager.AttachPager(ctx, server) }

// DebuggerServerSpec returns a central debugger object (§4.1's
// buddy-handler debugger): debugged threads stop at breakpoints, the
// server inspects their internals and decides resume or terminate.
func DebuggerServerSpec(label string) ObjectSpec { return debug.ServerSpec(label) }

// AttachDebugger puts the calling thread (and everything it spawns) under
// the debugger.
func AttachDebugger(ctx Ctx, server ObjectID) error { return debug.Attach(ctx, server) }

// Break stops the calling thread at a labeled breakpoint until the
// debugger resumes (or terminates) it.
func Break(ctx Ctx, label string) error { return debug.Break(ctx, label) }

// DebugStop is one recorded breakpoint hit.
type DebugStop = debug.Stop

// DebugStops queries the debugger for a thread's recorded stops.
func DebugStops(ctx Ctx, server ObjectID, tid ThreadID) ([]DebugStop, error) {
	return debug.StopsOf(ctx, server, tid)
}

// ArmTermination wires the distributed ^C protocol (§6.3) for the calling
// root thread and returns the application's thread group.
func ArmTermination(ctx Ctx, rootObj ObjectID) (GroupID, error) {
	return ctrlc.Arm(ctx, rootObj)
}

// AbortCleanupHandler builds the object-based ABORT handler the protocol
// expects every application object to register.
func AbortCleanupHandler(fn func(ctx Ctx, tid ThreadID)) Handler {
	return ctrlc.CleanupHandler(fn)
}
