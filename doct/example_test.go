package doct_test

import (
	"fmt"
	"time"

	"repro/doct"
)

// ExampleNewSystem shows the minimal flow: boot a cluster, create a
// passive object, spawn a thread into it and collect the result.
func ExampleNewSystem() {
	sys, err := doct.NewSystem(doct.Config{Nodes: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sys.Close()

	greeter, err := doct.ObjectID(0), error(nil)
	greeter, err = sys.CreateObject(2, doct.ObjectSpec{
		Name: "greeter",
		Entries: map[string]doct.Entry{
			"greet": func(_ doct.Ctx, args []any) ([]any, error) {
				return []any{"hello, " + args[0].(string)}, nil
			},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	h, err := sys.Spawn(1, greeter, "greet", "clouds")
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := h.WaitTimeout(30 * time.Second)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res[0])
	// Output: hello, clouds
}

// ExampleSystem_RaiseAndWait shows synchronous event raising: the raiser
// blocks until the target thread's handler runs.
func ExampleSystem_RaiseAndWait() {
	sys, err := doct.NewSystem(doct.Config{Nodes: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sys.Close()

	if err := sys.RegisterProc("ack", func(_ doct.Ctx, _ doct.HandlerRef, eb *doct.EventBlock) doct.Verdict {
		fmt.Println("handling", eb.Name)
		return doct.Resume
	}); err != nil {
		fmt.Println(err)
		return
	}
	started := make(chan doct.ThreadID, 1)
	obj, err := sys.CreateObject(1, doct.ObjectSpec{
		Name: "listener",
		Entries: map[string]doct.Entry{
			"listen": func(ctx doct.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("SYNCHRONIZE"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(doct.HandlerRef{
					Event: "SYNCHRONIZE", Kind: doct.HandlerProc, Proc: "ack",
				}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(time.Second)
			},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	h, err := sys.Spawn(1, obj, "listen")
	if err != nil {
		fmt.Println(err)
		return
	}
	tid := <-started
	time.Sleep(10 * time.Millisecond)
	if _, err := sys.RaiseAndWait(1, "SYNCHRONIZE", doct.ToThread(tid), nil); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("handler completed before the raiser resumed")
	_, _ = h.WaitTimeout(30 * time.Second)
	// Output:
	// handling SYNCHRONIZE
	// handler completed before the raiser resumed
}

// ExampleSystem_Passivate shows object passivation and reactivation on a
// different node.
func ExampleSystem_Passivate() {
	sys, err := doct.NewSystem(doct.Config{Nodes: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sys.Close()

	spec := doct.ObjectSpec{
		Name:     "notebook",
		DataSize: 64,
		Entries: map[string]doct.Entry{
			"write": func(ctx doct.Ctx, args []any) ([]any, error) {
				return nil, ctx.WriteData(0, []byte(args[0].(string)))
			},
			"read": func(ctx doct.Ctx, _ []any) ([]any, error) {
				d, err := ctx.ReadData(0, 4)
				return []any{string(d)}, err
			},
		},
	}
	obj, err := sys.CreateObject(1, spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	h, _ := sys.Spawn(1, obj, "write", "memo")
	if _, err := h.WaitTimeout(30 * time.Second); err != nil {
		fmt.Println(err)
		return
	}

	img, err := sys.Passivate(obj)
	if err != nil {
		fmt.Println(err)
		return
	}
	obj2, err := sys.Activate(2, spec, img)
	if err != nil {
		fmt.Println(err)
		return
	}
	h2, _ := sys.Spawn(2, obj2, "read")
	res, err := h2.WaitTimeout(30 * time.Second)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res[0])
	// Output: memo
}
