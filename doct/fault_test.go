package doct

import (
	"errors"
	"testing"
	"time"
)

func ftSystem(t *testing.T, nodes int) *System {
	t.Helper()
	return newSystem(t, Config{
		Nodes:          nodes,
		FaultTolerance: true,
		// Wide enough apart that scheduler starvation on a loaded machine
		// (the suite runs many test binaries in parallel, on real time)
		// cannot flap the membership view — see core's ftConfig.
		HeartbeatPeriod: 10 * time.Millisecond,
		SuspectAfter:    150 * time.Millisecond,
		RaiseTimeout:    500 * time.Millisecond,
	})
}

// TestFacadeCrashRestartMembership drives the chaos knobs end to end: a
// crash surfaces in the membership view and as a NODE_DOWN event at a
// watcher, a restart reverses both.
func TestFacadeCrashRestartMembership(t *testing.T) {
	sys := ftSystem(t, 4)
	nodeDown := make(chan NodeID, 4)
	nodeUp := make(chan NodeID, 4)
	watch := func(ch chan NodeID) Handler {
		return func(_ Ctx, _ HandlerRef, eb *EventBlock) Verdict {
			node, _ := eb.User["node"].(NodeID)
			ch <- node
			return Resume
		}
	}
	watcher, err := sys.CreateObject(1, ObjectSpec{
		Name: "watcher",
		Handlers: map[EventName]Handler{
			EvNodeDown: watch(nodeDown),
			EvNodeUp:   watch(nodeUp),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.WatchMembership(watcher)

	if err := sys.CrashNode(4); err != nil {
		t.Fatal(err)
	}
	if !sys.Crashed(4) {
		t.Fatal("Crashed(4) = false after CrashNode")
	}
	select {
	case n := <-nodeDown:
		if n != NodeID(4) {
			t.Fatalf("NODE_DOWN for %v, want node4", n)
		}
	case <-time.After(waitShort):
		t.Fatal("no NODE_DOWN event")
	}
	deadline := time.Now().Add(waitShort)
	for len(sys.Membership().Suspected) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("membership = %+v, want node4 suspected", sys.Membership())
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := sys.RestartNode(4); err != nil {
		t.Fatal(err)
	}
	select {
	case <-nodeUp:
	case <-time.After(waitShort):
		t.Fatal("no NODE_UP event")
	}
	for len(sys.Membership().Suspected) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("membership = %+v, want all alive", sys.Membership())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The restarted node serves fresh work.
	obj, err := sys.CreateObject(4, ObjectSpec{
		Name: "echo",
		Entries: map[string]Entry{
			"hi": func(_ Ctx, _ []any) ([]any, error) { return []any{"ok"}, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(4, obj, "hi")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeSeveredLinkBoundedRaise: RaiseAndWait across a severed link
// returns a typed error within RaiseTimeout instead of hanging — with the
// FT subsystem off, so the bound owes nothing to the failure detector.
func TestFacadeSeveredLinkBoundedRaise(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, RaiseTimeout: 150 * time.Millisecond})
	parked := make(chan ThreadID, 1)
	obj, err := sys.CreateObject(2, ObjectSpec{
		Name: "park",
		Entries: map[string]Entry{
			"p": func(ctx Ctx, _ []any) ([]any, error) {
				parked <- ctx.Thread()
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn(2, obj, "p"); err != nil {
		t.Fatal(err)
	}
	tid := <-parked
	sys.SeverLink(1, 2)
	start := time.Now()
	_, err = sys.RaiseAndWait(1, EvInterrupt, ToThread(tid), nil)
	if err == nil {
		t.Fatal("RaiseAndWait across severed link succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("RaiseAndWait took %v, want bounded by RaiseTimeout", elapsed)
	}
	sys.HealLink(1, 2)
	// Healed, the same raise reaches the thread again (no handler consumes
	// it, but it makes the round trip instead of timing out).
	if _, err := sys.RaiseAndWait(1, EvInterrupt, ToThread(tid), nil); !errors.Is(err, ErrUnhandledSync) {
		t.Fatalf("after HealLink: %v, want ErrUnhandledSync round trip", err)
	}
}

// TestFacadeRecoverObjects: a crashed node's object is re-homed with its
// KV state and found again by name.
func TestFacadeRecoverObjects(t *testing.T) {
	sys := ftSystem(t, 3)
	obj, err := sys.CreateObject(3, ObjectSpec{
		Name: "vault",
		Entries: map[string]Entry{
			"put": func(ctx Ctx, _ []any) ([]any, error) {
				ctx.Set("gold", 7)
				return nil, nil
			},
			"get": func(ctx Ctx, _ []any) ([]any, error) {
				v, _ := ctx.Get("gold")
				return []any{v}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(3, obj, "put")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashNode(3); err != nil {
		t.Fatal(err)
	}
	n, err := sys.RecoverObjects(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d objects, want 1", n)
	}
	vault, err := sys.FindObject(1, "vault")
	if err != nil {
		t.Fatal(err)
	}
	hg, err := sys.Spawn(1, vault, "get")
	if err != nil {
		t.Fatal(err)
	}
	res, err := hg.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 7 {
		t.Fatalf("recovered vault gold = %v, want 7", res[0])
	}
	if _, err := sys.FindObject(1, "no-such-object"); err == nil {
		t.Fatal("FindObject found a nonexistent name")
	}
}

// TestFacadeDropRateLossy: with the subsystem off and everything dropped,
// a raise into the void fails instead of succeeding silently.
func TestFacadeDropRateLossy(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, CallTimeout: 200 * time.Millisecond})
	obj, err := sys.CreateObject(2, ObjectSpec{
		Name: "sink",
		Handlers: map[EventName]Handler{
			EvInterrupt: func(_ Ctx, _ HandlerRef, _ *EventBlock) Verdict { return Resume },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetDropRate(1.0)
	if err := sys.Raise(1, EvInterrupt, ToObject(obj), nil); err == nil {
		t.Fatal("raise through a fully lossy fabric succeeded")
	}
	sys.SetDropRate(0)
	if err := sys.Raise(1, EvInterrupt, ToObject(obj), nil); err != nil {
		t.Fatalf("after restoring the fabric: %v", err)
	}
}

// TestFacadeCrashedNodeRejectsWork: spawns and restarts are validated
// against crash state.
func TestFacadeCrashedNodeRejectsWork(t *testing.T) {
	sys := ftSystem(t, 2)
	if err := sys.RestartNode(2); err == nil {
		t.Fatal("RestartNode of a live node succeeded")
	}
	if err := sys.CrashNode(2); err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashNode(2); err == nil {
		t.Fatal("double CrashNode succeeded")
	}
	if _, err := sys.RecoverObjects(2, 2); !errors.Is(err, ErrNodeCrashed) {
		t.Fatalf("RecoverObjects onto the crashed node: %v, want ErrNodeCrashed", err)
	}
}
