package monitor

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/object"
)

const waitShort = 10 * time.Second

func newSystem(t *testing.T, nodes int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Nodes: nodes, CallTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := Register(sys); err != nil {
		t.Fatal(err)
	}
	return sys
}

// queryCount asks the server how many samples it holds for tid.
func queryCount(t *testing.T, sys *core.System, server ids.ObjectID, tid ids.ThreadID) int {
	t.Helper()
	q, err := sys.CreateObject(1, object.Spec{
		Name: "query",
		Entries: map[string]object.Entry{
			"q": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(server, EntryCount, uint64(tid))
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, q, "q")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res[0].(int)
	return n
}

func TestMonitorCollectsSamples(t *testing.T) {
	sys := newSystem(t, 2)
	server, err := sys.CreateObject(1, ServerSpec("m"))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(1, object.Spec{
		Name: "monitored",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := Attach(ctx, server, 10*time.Millisecond); err != nil {
					return nil, err
				}
				return nil, ctx.Sleep(150 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if n := queryCount(t, sys, server, h.TID()); n < 3 {
		t.Fatalf("collected %d samples, want >= 3", n)
	}
}

// TestSamplesFollowThreadAcrossNodes is the §6.2 scenario: the monitored
// thread migrates; samples must report the node and object it is actually
// in at each moment.
func TestSamplesFollowThreadAcrossNodes(t *testing.T) {
	sys := newSystem(t, 3)
	server, err := sys.CreateObject(1, ServerSpec("m"))
	if err != nil {
		t.Fatal(err)
	}
	var farObj ids.ObjectID
	far, err := sys.CreateObject(3, object.Spec{
		Name: "far",
		Entries: map[string]object.Entry{
			"dwell": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, ctx.Sleep(100 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	farObj = far
	app, err := sys.CreateObject(2, object.Spec{
		Name: "roamer",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := Attach(ctx, server, 10*time.Millisecond); err != nil {
					return nil, err
				}
				if err := ctx.Sleep(100 * time.Millisecond); err != nil {
					return nil, err
				}
				if _, err := ctx.Invoke(farObj, "dwell"); err != nil {
					return nil, err
				}
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(2, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}

	// Fetch the full sample list and check both nodes are represented.
	q, err := sys.CreateObject(1, object.Spec{
		Name: "q2",
		Entries: map[string]object.Entry{
			"q": func(ctx object.Ctx, _ []any) ([]any, error) {
				samples, err := SamplesOf(ctx, server, h.TID())
				if err != nil {
					return nil, err
				}
				nodes := map[ids.NodeID]bool{}
				objs := map[ids.ObjectID]bool{}
				for _, s := range samples {
					nodes[s.Node] = true
					objs[s.Object] = true
				}
				return []any{len(samples), nodes[2], nodes[3], objs[farObj]}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hq, err := sys.Spawn(1, q, "q")
	if err != nil {
		t.Fatal(err)
	}
	res, err := hq.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[1] != true {
		t.Error("no samples taken at node2 (origin)")
	}
	if res[2] != true {
		t.Error("no samples taken at node3 (after migration): timer did not chase the thread")
	}
	if res[3] != true {
		t.Error("no sample names the far object as the thread's current object")
	}
}

func TestDetachStopsSampling(t *testing.T) {
	sys := newSystem(t, 1)
	server, err := sys.CreateObject(1, ServerSpec("d"))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(1, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := Attach(ctx, server, 10*time.Millisecond); err != nil {
					return nil, err
				}
				if err := ctx.Sleep(60 * time.Millisecond); err != nil {
					return nil, err
				}
				if err := Detach(ctx); err != nil {
					return nil, err
				}
				return nil, ctx.Sleep(100 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	n1 := queryCount(t, sys, server, h.TID())
	time.Sleep(50 * time.Millisecond)
	n2 := queryCount(t, sys, server, h.TID())
	if n1 == 0 {
		t.Fatal("no samples before Detach")
	}
	if n2 != n1 {
		t.Fatalf("samples kept arriving after Detach: %d -> %d", n1, n2)
	}
}

func TestSampleString(t *testing.T) {
	s := Sample{
		Thread: ids.NewThreadID(1, 2),
		Node:   3,
		Object: ids.NewObjectID(4, 5),
		Entry:  "work",
		PC:     7,
		Depth:  1,
	}
	want := "t1.2 at node3 in o4.5.work pc=7 depth=1"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}

func TestReportRejectsMalformed(t *testing.T) {
	sys := newSystem(t, 1)
	server, err := sys.CreateObject(1, ServerSpec("bad"))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(1, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"short": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(server, EntryReport, uint64(1))
			},
			"wrongtype": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(server, EntryReport, "x", "y", "z", 1, 2, 3)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range []string{"short", "wrongtype"} {
		h, err := sys.Spawn(1, app, entry)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WaitTimeout(waitShort); err == nil {
			t.Errorf("%s: expected error", entry)
		}
	}
}
