// Package monitor implements the distributed liveliness monitoring of
// §6.2: a periodic TIMER event is added to a thread's attribute list, a
// per-thread-memory handler samples the suspended thread's state (current
// object, simulated program counter) in the context of whatever object the
// thread occupies, and ships the sample to a central monitor server.
//
// Because the timer registration travels in the thread's attributes and is
// recreated at every node the thread visits, samples arrive wherever the
// thread currently is — the paper's headline property for this
// application.
package monitor

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

// SampleProc is the handler-code registry name of the sampling procedure.
const SampleProc = "monitor.sample"

// Entry names of the monitor server object.
const (
	EntryReport  = "report"
	EntrySamples = "samples"
	EntryCount   = "count"
)

// Sample is one liveliness observation of a monitored thread.
type Sample struct {
	Thread ids.ThreadID
	Node   ids.NodeID
	Object ids.ObjectID
	Entry  string
	PC     uint64
	Depth  int
}

// String renders the sample like the paper's central display would.
func (s Sample) String() string {
	return fmt.Sprintf("%v at %v in %v.%s pc=%d depth=%d",
		s.Thread, s.Node, s.Object, s.Entry, s.PC, s.Depth)
}

// Registrar is the system surface the package needs.
type Registrar interface {
	RegisterProc(name string, f object.Handler) error
}

// Register installs the sampling handler code. Call once per system.
func Register(r Registrar) error {
	return r.RegisterProc(SampleProc, func(ctx object.Ctx, ref event.HandlerRef, eb *event.Block) event.Verdict {
		// The handler executes in the context of the current object
		// (OWN_CONTEXT): it reads the suspended thread's state from the
		// event block and forwards it to the central server.
		sv, err := strconv.ParseUint(ref.Data["server"], 10, 64)
		if err != nil || eb.State == nil {
			return event.VerdictResume
		}
		server := ids.ObjectID(sv)
		_, _ = ctx.Invoke(server, EntryReport,
			uint64(eb.State.Thread), uint32(eb.State.Node), uint64(eb.State.Object),
			eb.State.Entry, eb.State.PC, eb.State.Depth)
		return event.VerdictResume
	})
}

// ServerSpec returns the central monitor server object: it collects samples
// in its volatile state and serves queries. The paper's server would
// combine these with symbol tables for display; ours retains the raw
// stream.
func ServerSpec(label string) object.Spec {
	return object.Spec{
		Name: "monitor-server:" + label,
		Entries: map[string]object.Entry{
			EntryReport:  reportEntry,
			EntrySamples: samplesEntry,
			EntryCount:   countEntry,
		},
	}
}

func reportEntry(ctx object.Ctx, args []any) ([]any, error) {
	if len(args) < 6 {
		return nil, errors.New("monitor: report needs 6 fields")
	}
	tidV, ok0 := args[0].(uint64)
	nodeV, ok1 := args[1].(uint32)
	objV, ok2 := args[2].(uint64)
	entry, ok3 := args[3].(string)
	pc, ok4 := args[4].(uint64)
	depth, ok5 := args[5].(int)
	if !(ok0 && ok1 && ok2 && ok3 && ok4 && ok5) {
		return nil, errors.New("monitor: malformed report")
	}
	s := Sample{
		Thread: ids.ThreadID(tidV),
		Node:   ids.NodeID(nodeV),
		Object: ids.ObjectID(objV),
		Entry:  entry,
		PC:     pc,
		Depth:  depth,
	}
	// The map stores an immutable slice per monitored thread; each thread
	// has exactly one timer stream, so appends for one key never race.
	key := "samples:" + s.Thread.String()
	cur, _ := ctx.Get(key)
	var list []Sample
	if cur != nil {
		old, ok := cur.([]Sample)
		if !ok {
			return nil, errors.New("monitor: corrupt sample list")
		}
		list = old
	}
	next := make([]Sample, len(list), len(list)+1)
	copy(next, list)
	next = append(next, s)
	ctx.Set(key, next)
	return nil, nil
}

func samplesEntry(ctx object.Ctx, args []any) ([]any, error) {
	if len(args) < 1 {
		return nil, errors.New("monitor: samples needs a thread id")
	}
	tidV, ok := args[0].(uint64)
	if !ok {
		return nil, fmt.Errorf("monitor: samples arg %T", args[0])
	}
	cur, _ := ctx.Get("samples:" + ids.ThreadID(tidV).String())
	if cur == nil {
		return []any{[]Sample(nil)}, nil
	}
	list, ok := cur.([]Sample)
	if !ok {
		return nil, errors.New("monitor: corrupt sample list")
	}
	out := make([]Sample, len(list))
	copy(out, list)
	return []any{out}, nil
}

func countEntry(ctx object.Ctx, args []any) ([]any, error) {
	res, err := samplesEntry(ctx, args)
	if err != nil {
		return nil, err
	}
	list, _ := res[0].([]Sample)
	return []any{len(list)}, nil
}

// Attach starts monitoring the calling thread: a TIMER handler running in
// the thread's current context plus a periodic timer registration in the
// thread's attributes (§6.2's two required facilities).
func Attach(ctx object.Ctx, server ids.ObjectID, period time.Duration) error {
	if err := ctx.AttachHandler(event.HandlerRef{
		Event: event.Timer,
		Kind:  event.KindProc,
		Proc:  SampleProc,
		Data:  map[string]string{"server": strconv.FormatUint(uint64(server), 10)},
	}); err != nil {
		return err
	}
	return ctx.SetTimer(event.Timer, period)
}

// Detach stops monitoring the calling thread.
func Detach(ctx object.Ctx) error {
	if err := ctx.ClearTimer(event.Timer); err != nil {
		return err
	}
	return ctx.DetachHandler(event.Timer)
}

// SamplesOf queries the server for the samples recorded for tid. It must
// run on a thread context (e.g. from a query entry).
func SamplesOf(ctx object.Ctx, server ids.ObjectID, tid ids.ThreadID) ([]Sample, error) {
	res, err := ctx.Invoke(server, EntrySamples, uint64(tid))
	if err != nil {
		return nil, err
	}
	list, ok := res[0].([]Sample)
	if !ok && res[0] != nil {
		return nil, fmt.Errorf("monitor: samples reply %T", res[0])
	}
	return list, nil
}
