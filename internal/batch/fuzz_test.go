package batch

import (
	"bytes"
	"testing"
)

// FuzzBatchRoundTrip drives the frame codec from a byte script in two
// modes, selected by the first byte:
//
//   - build mode: the remaining bytes script a mixed record set (envelope-,
//     ack- and delta-like kinds with scripted body lengths); the set must
//     encode, size-predict exactly, decode back identically, and survive a
//     re-encode byte-for-byte.
//   - decode mode: the remaining bytes are treated as a wire frame; the
//     decoder must reject or accept without panicking, and anything it
//     accepts must re-encode to the identical bytes (the codec has one
//     canonical encoding).
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})                               // decode mode, empty frame input
	f.Add([]byte{0x01, 0x00})                         // build mode, one empty record
	f.Add([]byte{0x01, 0x12, 0x40, 0x33, 0x00, 0x91}) // build mode, mixed kinds
	f.Add(append([]byte{0x00}, AppendFrame(nil, []WireRec{
		{Kind: "rel.data", Body: []byte("seq=7 payload")},
		{Kind: "rel.ack", Body: []byte{0, 0, 0, 7}},
		{Kind: "attr.delta", Body: []byte("v3->v4")},
	})...)) // decode mode, a well-formed frame
	kinds := []string{"rel.data", "rel.ack", "attr.delta", "wl.raise", "k.fd.hb", ""}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		mode, script := data[0], data[1:]
		if mode == 0 {
			// Decode mode: arbitrary bytes must never panic the decoder, and
			// an accepted frame must round-trip canonically.
			recs, err := DecodeFrame(nil, script)
			if err != nil {
				return
			}
			if re := AppendFrame(nil, recs); !bytes.Equal(re, script) {
				t.Fatalf("accepted frame is not canonical: decode+encode %x -> %x", script, re)
			}
			return
		}

		// Build mode: each script byte picks a kind (high bits) and a body
		// length (low bits); the body is drawn from the following bytes.
		var recs []WireRec
		for i := 0; i < len(script); i++ {
			b := script[i]
			kind := kinds[int(b>>5)%len(kinds)]
			bodyLen := int(b & 0x1F)
			if bodyLen > len(script)-i-1 {
				bodyLen = len(script) - i - 1
			}
			recs = append(recs, WireRec{Kind: kind, Body: script[i+1 : i+1+bodyLen]})
			i += bodyLen
		}
		enc := AppendFrame(nil, recs)
		if got := EncodedSize(recs); got != len(enc) {
			t.Fatalf("EncodedSize = %d, encoded length = %d", got, len(enc))
		}
		// The in-process Frame must charge the same footprint.
		fr := Get()
		for _, r := range recs {
			fr.Append(Rec{Kind: r.Kind, Size: len(r.Body)})
		}
		if fr.WireSize() != len(enc) {
			t.Fatalf("Frame.WireSize = %d, encoded length = %d", fr.WireSize(), len(enc))
		}
		Put(fr)
		dec, err := DecodeFrame(nil, enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(dec) != len(recs) {
			t.Fatalf("decoded %d records, want %d", len(dec), len(recs))
		}
		for i := range recs {
			if dec[i].Kind != recs[i].Kind || !bytes.Equal(dec[i].Body, recs[i].Body) {
				t.Fatalf("record %d mismatch: got %q/%x, want %q/%x",
					i, dec[i].Kind, dec[i].Body, recs[i].Kind, recs[i].Body)
			}
		}
	})
}
