package batch

import (
	"bytes"
	"errors"
	"testing"
)

// sizedPayload stands in for a protocol payload with a known wire size.
type sizedPayload struct{ n int }

func (p *sizedPayload) WireSize() int { return p.n }

// finPayload flips to its finalized form when the frame flushes.
type finPayload struct{ finalized bool }

func (p *finPayload) FinalizeFlush() any { return &finPayload{finalized: true} }

func TestFrameWireSizeMatchesCodec(t *testing.T) {
	// The in-process frame must charge exactly what the binary codec would
	// produce for records with the same kinds and body sizes — that is what
	// keeps E11/E13 byte counts honest with batching on.
	cases := [][]Rec{
		{},
		{{Kind: "rel.data", Size: 44}},
		{{Kind: "rel.data", Size: 44}, {Kind: "rel.ack", Size: 20}, {Kind: "", Size: 0}},
		{{Kind: "wl.raise", Size: 200}, {Kind: "k.fd.hb", Size: 8}},
	}
	for _, recs := range cases {
		fr := Get()
		var wire []WireRec
		for _, r := range recs {
			fr.Append(r)
			wire = append(wire, WireRec{Kind: r.Kind, Body: make([]byte, r.Size)})
		}
		encoded := AppendFrame(nil, wire)
		if fr.WireSize() != len(encoded) {
			t.Errorf("recs %v: Frame.WireSize = %d, encoded length = %d", recs, fr.WireSize(), len(encoded))
		}
		if EncodedSize(wire) != len(encoded) {
			t.Errorf("recs %v: EncodedSize = %d, encoded length = %d", recs, EncodedSize(wire), len(encoded))
		}
		Put(fr)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := []WireRec{
		{Kind: "rel.data", Body: []byte("envelope-body")},
		{Kind: "attr.delta", Body: nil},
		{Kind: "", Body: bytes.Repeat([]byte{0xAB}, 300)},
		{Kind: "rel.ack", Body: []byte{1, 2, 3}},
	}
	enc := AppendFrame(nil, recs)
	got, err := DecodeFrame(nil, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || !bytes.Equal(got[i].Body, recs[i].Body) {
			t.Errorf("record %d: got %q/%x, want %q/%x", i, got[i].Kind, got[i].Body, recs[i].Kind, recs[i].Body)
		}
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	valid := AppendFrame(nil, []WireRec{{Kind: "k", Body: []byte("body")}})
	bad := [][]byte{
		{},                                  // missing count
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, // varint overflow
		{0x20},                              // count 32 with no records
		valid[:len(valid)-1],                // truncated body
		append(append([]byte{}, valid...), 0x00), // trailing byte
	}
	for _, src := range bad {
		if _, err := DecodeFrame(nil, src); !errors.Is(err, ErrCorrupt) {
			t.Errorf("DecodeFrame(%x) = %v, want ErrCorrupt", src, err)
		}
	}
}

func TestFramePoolResetsState(t *testing.T) {
	fr := Get()
	fr.Append(Rec{Kind: "k", Payload: "p", Size: 10})
	Put(fr)
	fr2 := Get()
	if fr2.Len() != 0 || fr2.Bytes() != 0 {
		t.Fatalf("pooled frame not reset: len=%d bytes=%d", fr2.Len(), fr2.Bytes())
	}
	Put(fr2)
}

func TestFinalizeRunsFinalizers(t *testing.T) {
	fr := Get()
	defer Put(fr)
	fr.Append(Rec{Kind: "a", Payload: &finPayload{}, Size: 4})
	fr.Append(Rec{Kind: "b", Payload: "plain", Size: 5})
	fr.Finalize()
	if p, ok := fr.Recs()[0].Payload.(*finPayload); !ok || !p.finalized {
		t.Errorf("finalizer payload not rewritten: %#v", fr.Recs()[0].Payload)
	}
	if fr.Recs()[1].Payload != "plain" {
		t.Errorf("plain payload disturbed: %#v", fr.Recs()[1].Payload)
	}
}

// TestFrameAppendZeroAllocs is the arena guard the issue requires: once a
// frame's record slice has grown, appending a message costs zero
// allocations — batching must not reintroduce the per-message allocs the
// dispatch hot path shed.
func TestFrameAppendZeroAllocs(t *testing.T) {
	fr := Get()
	defer Put(fr)
	payload := any(&sizedPayload{n: 32}) // pre-boxed: the sender boxes once, not per append
	for i := 0; i < 4096; i++ {
		fr.Append(Rec{Kind: "rel.data", Payload: payload, Size: 32})
	}
	fr.reset()
	allocs := testing.AllocsPerRun(200, func() {
		fr.Append(Rec{Kind: "rel.data", Payload: payload, Size: 32})
	})
	if allocs != 0 {
		t.Fatalf("Frame.Append allocates %v objects per record, want 0", allocs)
	}
}

// TestEncoderZeroAllocs guards the append-only binary encoder: with a
// reused arena buffer, encoding a frame allocates nothing.
func TestEncoderZeroAllocs(t *testing.T) {
	recs := []WireRec{
		{Kind: "rel.data", Body: bytes.Repeat([]byte{0x5A}, 64)},
		{Kind: "rel.ack", Body: bytes.Repeat([]byte{0xA5}, 20)},
	}
	buf := AppendFrame(make([]byte, 0, 4096), recs)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendFrame(buf[:0], recs)
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame allocates %v objects per frame with a warm arena, want 0", allocs)
	}
}

func BenchmarkAppendFrame(b *testing.B) {
	recs := []WireRec{
		{Kind: "rel.data", Body: bytes.Repeat([]byte{0x5A}, 64)},
		{Kind: "rel.ack", Body: bytes.Repeat([]byte{0xA5}, 20)},
		{Kind: "attr.delta", Body: bytes.Repeat([]byte{0x11}, 40)},
	}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], recs)
	}
}
