// Package batch implements the per-link coalescing frame for the fabric's
// hot send path (DESIGN.md §11): multiple logical messages bound for the
// same peer — reliable envelopes, attribute deltas, piggybacked acks,
// workload events — ride one physical fabric message. Frames are pooled so
// a sustained sender allocates nothing per message, and the wire footprint
// of a frame is computed exactly (varint-framed records), so byte
// accounting with batching on stays honest against the record-per-message
// baseline.
//
// The package has two layers:
//
//   - Frame/Rec: the in-process batch the netsim fabric ships directly.
//     Payloads stay live Go values (the fabric is an in-memory simulation),
//     but WireSize charges exactly what the binary codec below would
//     produce for the same record sizes.
//   - AppendFrame/DecodeFrame: the append-only binary codec over opaque
//     record bodies — the image of the frame on a real transport, used for
//     size accounting, fuzzed for robustness, and ready for a socket-backed
//     fabric.
package batch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Rec is one logical message riding in a frame. Size is the record body's
// wire footprint, fixed when the record is appended: the sender still
// solely owns the payload at that point, while at flush time the receiver
// of an earlier copy could already be mutating it.
type Rec struct {
	Kind    string
	Payload any
	Size    int
}

// Finalizer lets a payload rewrite itself at the moment its message
// actually departs — when its frame flushes, or immediately for a bare
// (uncoalesced) send. The reliable layer uses it to read the piggybacked
// cumulative ack as late as possible, so an envelope that sat in a pending
// frame still carries the receive frontier current at departure, and the
// standalone ack timer it settles is disarmed exactly once.
type Finalizer interface {
	// FinalizeFlush returns the payload to put on the wire in place of the
	// receiver. It runs once per transmission, on the sending node, under
	// the link's flush lock — it must not send messages or block.
	FinalizeFlush() any
}

// Frame is a batch of records bound for one peer. It implements the
// fabric's Sizer, charging the exact binary-codec footprint.
type Frame struct {
	recs  []Rec
	bytes int // sum of per-record encoded footprints (framing included)
}

// Append adds one record. Records are delivered in append order.
func (fr *Frame) Append(r Rec) {
	fr.recs = append(fr.recs, r)
	fr.bytes += recFootprint(r.Kind, r.Size)
}

// Len returns the number of records in the frame.
func (fr *Frame) Len() int { return len(fr.recs) }

// Bytes returns the encoded footprint of the records appended so far,
// excluding the frame header (whose size depends on the final count).
func (fr *Frame) Bytes() int { return fr.bytes }

// Recs returns the records in append order. The slice is owned by the
// frame; callers must not retain it past Put.
func (fr *Frame) Recs() []Rec { return fr.recs }

// WireSize is the frame's exact wire footprint: the record-count header
// plus every record's varint-framed kind and body.
func (fr *Frame) WireSize() int {
	return uvarintLen(uint64(len(fr.recs))) + fr.bytes
}

// Finalize runs every record's Finalizer (if any), replacing the payload
// with its departure-time form. Called once, when the frame flushes.
func (fr *Frame) Finalize() {
	for i := range fr.recs {
		if fin, ok := fr.recs[i].Payload.(Finalizer); ok {
			fr.recs[i].Payload = fin.FinalizeFlush()
		}
	}
}

// reset clears the frame for reuse, dropping payload references so pooled
// frames don't pin delivered messages, while keeping the record capacity.
func (fr *Frame) reset() {
	for i := range fr.recs {
		fr.recs[i] = Rec{}
	}
	fr.recs = fr.recs[:0]
	fr.bytes = 0
}

// framePool recycles frames: a steady-state link reuses one or two frames
// forever, so batching adds no per-message (or even per-frame) allocation.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// Get returns an empty frame from the pool.
func Get() *Frame { return framePool.Get().(*Frame) }

// Put resets fr and returns it to the pool. The caller must not touch fr
// (or slices obtained from Recs) afterwards.
func Put(fr *Frame) {
	fr.reset()
	framePool.Put(fr)
}

// --- binary codec -----------------------------------------------------------
//
// frame    := uvarint(count) record*
// record   := uvarint(len(kind)) kind uvarint(len(body)) body
//
// The encode side is append-only into a caller-owned buffer, so a sender
// that reuses its arena allocates nothing per frame.

// WireRec is the codec-level record: a message kind plus its opaque
// encoded body.
type WireRec struct {
	Kind string
	Body []byte
}

// ErrCorrupt is returned by DecodeFrame for structurally invalid input.
var ErrCorrupt = errors.New("batch: corrupt frame")

// AppendFrame appends the binary encoding of recs to dst and returns the
// extended buffer. Purely append-only: with a pre-grown dst it performs no
// allocation.
func AppendFrame(dst []byte, recs []WireRec) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = binary.AppendUvarint(dst, uint64(len(r.Kind)))
		dst = append(dst, r.Kind...)
		dst = binary.AppendUvarint(dst, uint64(len(r.Body)))
		dst = append(dst, r.Body...)
	}
	return dst
}

// EncodedSize returns exactly len(AppendFrame(nil, recs)) without encoding.
func EncodedSize(recs []WireRec) int {
	n := uvarintLen(uint64(len(recs)))
	for _, r := range recs {
		n += recFootprint(r.Kind, len(r.Body))
	}
	return n
}

// DecodeFrame parses one encoded frame, appending the records to dst (which
// may be nil) and returning the extended slice. Bodies alias src — callers
// that outlive src must copy. Trailing bytes after the last record are an
// error: a frame is a whole datagram, not a stream prefix.
func DecodeFrame(dst []WireRec, src []byte) ([]WireRec, error) {
	count, n := readUvarint(src)
	if n <= 0 {
		return dst, fmt.Errorf("%w: bad record count", ErrCorrupt)
	}
	src = src[n:]
	// Every record costs at least two bytes (two zero-length varints), so a
	// count beyond half the remaining input is unsatisfiable — reject it
	// before trusting it for anything.
	if count > uint64(len(src)/2)+1 {
		return dst, fmt.Errorf("%w: record count %d exceeds input", ErrCorrupt, count)
	}
	for i := uint64(0); i < count; i++ {
		kind, rest, err := decodeBlob(src)
		if err != nil {
			return dst, fmt.Errorf("%w: record %d kind: %v", ErrCorrupt, i, err)
		}
		body, rest, err := decodeBlob(rest)
		if err != nil {
			return dst, fmt.Errorf("%w: record %d body: %v", ErrCorrupt, i, err)
		}
		dst = append(dst, WireRec{Kind: string(kind), Body: body})
		src = rest
	}
	if len(src) != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(src))
	}
	return dst, nil
}

// decodeBlob reads one uvarint-prefixed byte string.
func decodeBlob(src []byte) (blob, rest []byte, err error) {
	l, n := readUvarint(src)
	if n <= 0 {
		return nil, nil, errors.New("bad length")
	}
	src = src[n:]
	if l > uint64(len(src)) {
		return nil, nil, fmt.Errorf("length %d exceeds %d remaining", l, len(src))
	}
	return src[:l], src[l:], nil
}

// readUvarint is binary.Uvarint restricted to minimal encodings: a value
// padded with continuation bytes (0x80 0x00 for zero) is rejected, so every
// frame has exactly one byte representation and accepted input re-encodes
// byte-identically (the fuzz round-trip checks this).
func readUvarint(src []byte) (uint64, int) {
	v, n := binary.Uvarint(src)
	if n <= 0 || n != uvarintLen(v) {
		return 0, -1
	}
	return v, n
}

// recFootprint is the encoded size of one record with a body of size bytes.
func recFootprint(kind string, size int) int {
	return uvarintLen(uint64(len(kind))) + len(kind) + uvarintLen(uint64(size)) + size
}

// uvarintLen is the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
