package baseline

import (
	"errors"
	"testing"
)

func TestUnixSignalNeedsHandler(t *testing.T) {
	p := NewUnixProc(1)
	p.AddThread("a")
	if _, err := p.Signal(SIGUSR1); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestUnixSignalDeliversToSomeThread(t *testing.T) {
	p := NewUnixProc(1)
	for i := 0; i < 4; i++ {
		p.AddThread("a")
	}
	var got int
	p.InstallHandler(SIGUSR1, func(tid int) { got = tid })
	tid, err := p.Signal(SIGUSR1)
	if err != nil {
		t.Fatal(err)
	}
	if got != tid || tid < 1 || tid > 4 {
		t.Fatalf("delivered to %d (handler saw %d)", tid, got)
	}
}

func TestUnixBlockedThreadsSkipped(t *testing.T) {
	p := NewUnixProc(1)
	t1 := p.AddThread("a")
	t2 := p.AddThread("a")
	p.InstallHandler(SIGUSR1, func(int) {})
	if err := p.Block(t1, SIGUSR1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tid, err := p.Signal(SIGUSR1)
		if err != nil {
			t.Fatal(err)
		}
		if tid != t2 {
			t.Fatalf("delivered to blocked thread %d", tid)
		}
	}
}

func TestUnixAllBlocked(t *testing.T) {
	p := NewUnixProc(1)
	t1 := p.AddThread("a")
	p.InstallHandler(SIGUSR1, func(int) {})
	if err := p.Block(t1, SIGUSR1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Signal(SIGUSR1); !errors.Is(err, ErrAllBlocked) {
		t.Fatalf("err = %v, want ErrAllBlocked", err)
	}
	if err := p.Block(99, SIGUSR1); err == nil {
		t.Fatal("Block unknown thread succeeded")
	}
}

// TestUnixMisdeliveryWithSharedThreads quantifies the E8 claim: with
// threads of k unrelated applications in one process, a signal meant for
// one application lands on the wrong application's thread roughly (1-1/k)
// of the time.
func TestUnixMisdeliveryWithSharedThreads(t *testing.T) {
	p := NewUnixProc(42)
	apps := []string{"a", "b", "c", "d"}
	for _, app := range apps {
		for i := 0; i < 3; i++ {
			p.AddThread(app)
		}
	}
	p.InstallHandler(SIGUSR1, func(int) {})
	for i := 0; i < 1000; i++ {
		if _, err := p.Signal(SIGUSR1); err != nil {
			t.Fatal(err)
		}
	}
	rate := p.MisdeliveryRate(map[Signal]string{SIGUSR1: "a"})
	// Expected 1 - 1/4 = 0.75.
	if rate < 0.65 || rate > 0.85 {
		t.Fatalf("misdelivery rate = %.2f, want ~0.75", rate)
	}
}

func TestUnixApps(t *testing.T) {
	p := NewUnixProc(1)
	p.AddThread("z")
	p.AddThread("a")
	p.AddThread("a")
	apps := p.Apps()
	if len(apps) != 2 || apps[0] != "a" || apps[1] != "z" {
		t.Fatalf("Apps = %v", apps)
	}
}

func TestMachThreadPortWinsOverTaskPort(t *testing.T) {
	m := NewMachTask()
	m.AddThread(1)
	m.AddThread(2)
	m.SetTaskPort(ClassError, &Port{Name: "task-error"})
	if err := m.SetThreadPort(1, ClassError, &Port{Name: "thr1-error"}); err != nil {
		t.Fatal(err)
	}
	got, err := m.RaiseException(1, ClassError)
	if err != nil || got != "thr1-error" {
		t.Fatalf("thread 1 handled by %q, %v", got, err)
	}
	got, err = m.RaiseException(2, ClassError)
	if err != nil || got != "task-error" {
		t.Fatalf("thread 2 handled by %q, %v", got, err)
	}
}

func TestMachUnhandledException(t *testing.T) {
	m := NewMachTask()
	m.AddThread(1)
	if _, err := m.RaiseException(1, ClassDebug); !errors.Is(err, ErrUnknownException) {
		t.Fatalf("err = %v, want ErrUnknownException", err)
	}
	if _, err := m.RaiseException(9, ClassError); !errors.Is(err, ErrUnknownThread) {
		t.Fatalf("err = %v, want ErrUnknownThread", err)
	}
	if err := m.SetThreadPort(9, ClassError, &Port{}); err == nil {
		t.Fatal("SetThreadPort on unknown thread succeeded")
	}
}

func TestMachStaticPartition(t *testing.T) {
	m := NewMachTask()
	m.AddThread(1)
	m.SetTaskPort(ClassError, &Port{Name: "errh"})
	m.SetTaskPort(ClassDebug, &Port{Name: "debugger"})
	if got, _ := m.RaiseException(1, ClassError); got != "errh" {
		t.Fatalf("error class -> %q", got)
	}
	if got, _ := m.RaiseException(1, ClassDebug); got != "debugger" {
		t.Fatalf("debug class -> %q", got)
	}
	if len(m.Handled) != 2 {
		t.Fatalf("Handled = %v", m.Handled)
	}
}

func TestMachRegistrationCost(t *testing.T) {
	m := NewMachTask()
	const n = 16
	for i := 1; i <= n; i++ {
		m.AddThread(i)
	}
	// Per-thread custom handling in Mach: one port op per thread.
	for i := 1; i <= n; i++ {
		if err := m.SetThreadPort(i, ClassError, &Port{Name: "h"}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Registrations != n {
		t.Fatalf("registrations = %d, want %d", m.Registrations, n)
	}
	if RegistrationsForPerThreadCoverage(n) != n {
		t.Fatal("coverage formula wrong")
	}
}

func TestMachHandlerInvoked(t *testing.T) {
	m := NewMachTask()
	m.AddThread(1)
	var called bool
	m.SetTaskPort(ClassError, &Port{Name: "p", Handler: func(tid int, c ExceptionClass) {
		called = tid == 1 && c == ClassError
	}})
	if _, err := m.RaiseException(1, ClassError); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("handler not invoked with thread/class")
	}
}
