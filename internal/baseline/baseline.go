// Package baseline implements executable models of the related-work
// systems the paper compares against (§1, §9), used by experiment E8:
//
//   - UnixProc: UNIX/OSF-1 process signals. The signal facility was
//     "suitable for single threaded applications only"; with multiple
//     threads in one process, OSF/1 "uses ad hoc solutions to figure out
//     which thread should be notified when a signal is posted to the
//     process" — modeled as delivery to an arbitrary unblocked thread.
//   - MachTask: Mach's task/thread exception ports, with the static
//     partition between error handlers (task scope) and debuggers
//     (separate task) that the paper contrasts with its dynamic,
//     thread-attribute-based handlers.
//
// The models are protocol-level: they capture who receives a notification
// and how much registration work application-wide coverage costs, which is
// what E8 measures. They deliberately do not rerun the DO/CT kernel.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Signal is a UNIX-style signal number.
type Signal int

// Classic signal numbers used in the experiments.
const (
	SIGINT  Signal = 2
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
	SIGTERM Signal = 15
)

// UnixThread is one thread inside a UnixProc. App labels the logical
// application the thread works for — invisible to the process-level signal
// facility, which is precisely the problem.
type UnixThread struct {
	ID  int
	App string
	// Blocked signals never interrupt this thread.
	Blocked map[Signal]bool
	// Handler is the thread's signal handler table (process-wide installs
	// copy here: UNIX handlers are per process, not per thread).
	Handler map[Signal]func(tid int)
}

// UnixProc models one multi-threaded UNIX/OSF-1 process.
type UnixProc struct {
	mu       sync.Mutex
	threads  []*UnixThread
	handlers map[Signal]func(tid int) // process-wide handler table
	rng      *rand.Rand

	// Deliveries records (signal, receiving thread) pairs.
	Deliveries []UnixDelivery
}

// UnixDelivery is one observed signal delivery.
type UnixDelivery struct {
	Sig    Signal
	Thread int
	App    string
}

// NewUnixProc builds a process with a deterministic delivery choice.
func NewUnixProc(seed int64) *UnixProc {
	if seed == 0 {
		seed = 1
	}
	return &UnixProc{
		handlers: make(map[Signal]func(tid int)),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// AddThread adds a thread working for app and returns its id.
func (p *UnixProc) AddThread(app string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := len(p.threads) + 1
	p.threads = append(p.threads, &UnixThread{
		ID:      id,
		App:     app,
		Blocked: make(map[Signal]bool),
		Handler: make(map[Signal]func(int)),
	})
	return id
}

// InstallHandler installs a process-wide handler for sig (the UNIX model:
// one handler table per process).
func (p *UnixProc) InstallHandler(sig Signal, h func(tid int)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handlers[sig] = h
}

// Block masks sig in thread tid, the only per-thread control UNIX offers.
func (p *UnixProc) Block(tid int, sig Signal) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.lookup(tid)
	if t == nil {
		return fmt.Errorf("baseline: no thread %d", tid)
	}
	t.Blocked[sig] = true
	return nil
}

func (p *UnixProc) lookup(tid int) *UnixThread {
	for _, t := range p.threads {
		if t.ID == tid {
			return t
		}
	}
	return nil
}

// Errors of the Unix model.
var (
	ErrNoHandler        = errors.New("baseline: no handler installed")
	ErrAllBlocked       = errors.New("baseline: all threads block the signal")
	ErrUnknownThread    = errors.New("baseline: unknown thread")
	ErrUnknownException = errors.New("baseline: unhandled exception")
)

// Signal posts sig to the process. Delivery target is an arbitrary thread
// that does not block the signal — the OSF/1 "ad hoc" rule. It returns the
// receiving thread.
func (p *UnixProc) Signal(sig Signal) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.handlers[sig]
	if !ok {
		return 0, fmt.Errorf("%w: signal %d", ErrNoHandler, int(sig))
	}
	candidates := make([]*UnixThread, 0, len(p.threads))
	for _, t := range p.threads {
		if !t.Blocked[sig] {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("%w: signal %d", ErrAllBlocked, int(sig))
	}
	t := candidates[p.rng.Intn(len(candidates))]
	p.Deliveries = append(p.Deliveries, UnixDelivery{Sig: sig, Thread: t.ID, App: t.App})
	h(t.ID)
	return t.ID, nil
}

// MisdeliveryRate reports the fraction of recorded deliveries that landed
// on a thread of a different application than intended. intended maps the
// signal to the application it was meant for.
func (p *UnixProc) MisdeliveryRate(intended map[Signal]string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.Deliveries) == 0 {
		return 0
	}
	bad := 0
	for _, d := range p.Deliveries {
		if want, ok := intended[d.Sig]; ok && want != d.App {
			bad++
		}
	}
	return float64(bad) / float64(len(p.Deliveries))
}

// Apps returns the distinct application labels in the process, sorted.
func (p *UnixProc) Apps() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := map[string]bool{}
	for _, t := range p.threads {
		set[t.App] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Mach model.

// ExceptionClass is Mach's static partition of exceptions.
type ExceptionClass int

const (
	// ClassError goes to error handlers (task scope by default).
	ClassError ExceptionClass = iota + 1
	// ClassDebug goes to debuggers (a separate task).
	ClassDebug
)

// Port is an exception port: a handler plus a registration record.
type Port struct {
	Name    string
	Handler func(thread int, class ExceptionClass)
}

// MachTask models one Mach task with task-level and per-thread exception
// ports.
type MachTask struct {
	mu          sync.Mutex
	threads     map[int]bool
	taskPorts   map[ExceptionClass]*Port
	threadPorts map[int]map[ExceptionClass]*Port
	// Registrations counts port set-up operations: the explicit coding
	// cost the paper contrasts with inherited thread attributes ("In
	// active object systems, application wide event handling requires a
	// lot of explicit coding by the programmer", §9).
	Registrations int
	// Handled records (thread, class, port name) deliveries.
	Handled []MachDelivery
}

// MachDelivery is one observed exception delivery.
type MachDelivery struct {
	Thread int
	Class  ExceptionClass
	Port   string
}

// NewMachTask builds an empty task.
func NewMachTask() *MachTask {
	return &MachTask{
		threads:     make(map[int]bool),
		taskPorts:   make(map[ExceptionClass]*Port),
		threadPorts: make(map[int]map[ExceptionClass]*Port),
	}
}

// AddThread registers a thread in the task.
func (m *MachTask) AddThread(tid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.threads[tid] = true
}

// SetTaskPort installs a task-level exception port for class.
func (m *MachTask) SetTaskPort(class ExceptionClass, p *Port) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.taskPorts[class] = p
	m.Registrations++
}

// SetThreadPort installs a per-thread exception port for class.
func (m *MachTask) SetThreadPort(tid int, class ExceptionClass, p *Port) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.threads[tid] {
		return fmt.Errorf("%w: %d", ErrUnknownThread, tid)
	}
	ports, ok := m.threadPorts[tid]
	if !ok {
		ports = make(map[ExceptionClass]*Port)
		m.threadPorts[tid] = ports
	}
	ports[class] = p
	m.Registrations++
	return nil
}

// RaiseException delivers an exception from thread tid: the thread port
// wins over the task port; with neither, the exception is unhandled (the
// task would die).
func (m *MachTask) RaiseException(tid int, class ExceptionClass) (string, error) {
	m.mu.Lock()
	if !m.threads[tid] {
		m.mu.Unlock()
		return "", fmt.Errorf("%w: %d", ErrUnknownThread, tid)
	}
	var port *Port
	if ports, ok := m.threadPorts[tid]; ok {
		port = ports[class]
	}
	if port == nil {
		port = m.taskPorts[class]
	}
	if port == nil {
		m.mu.Unlock()
		return "", fmt.Errorf("%w: thread %d class %d", ErrUnknownException, tid, int(class))
	}
	m.Handled = append(m.Handled, MachDelivery{Thread: tid, Class: class, Port: port.Name})
	h := port.Handler
	name := port.Name
	m.mu.Unlock()
	if h != nil {
		h(tid, class)
	}
	return name, nil
}

// RegistrationsForPerThreadCoverage returns how many port operations a
// Mach application needs for custom per-thread handling of one exception
// class across n threads: one per thread. The DO/CT equivalent is a single
// attach_handler inherited by spawned threads.
func RegistrationsForPerThreadCoverage(n int) int { return n }
