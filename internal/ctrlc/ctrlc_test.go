package ctrlc

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

const waitShort = 10 * time.Second

func newSystem(t *testing.T, nodes int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Nodes: nodes, CallTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := Register(sys); err != nil {
		t.Fatal(err)
	}
	return sys
}

// buildApp constructs a distributed application: a root object on node 1
// whose "main" arms the protocol, spawns async workers that sleep, then
// invokes through mid (node 2) into deep (node 3) and sleeps there.
// It returns the root object, a channel carrying the root TID once armed,
// and cleanup/worker counters.
func buildApp(t *testing.T, sys *core.System, workers int) (ids.ObjectID, chan ids.ThreadID, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var (
		cleanups  atomic.Int64
		ready     atomic.Int64
		rootTID   = make(chan ids.ThreadID, 1)
		rootObjCh = make(chan ids.ObjectID, 1)
	)
	cleanup := CleanupHandler(func(_ object.Ctx, _ ids.ThreadID) { cleanups.Add(1) })

	deep, err := sys.CreateObject(3, object.Spec{
		Name:     "deep",
		Handlers: map[event.Name]object.Handler{event.Abort: cleanup},
		Entries: map[string]object.Entry{
			"dwell": func(ctx object.Ctx, _ []any) ([]any, error) {
				ready.Add(1)
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := sys.CreateObject(2, object.Spec{
		Name:     "mid",
		Handlers: map[event.Name]object.Handler{event.Abort: cleanup},
		Entries: map[string]object.Entry{
			"fwd": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(deep, "dwell")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	root, err := sys.CreateObject(1, object.Spec{
		Name:     "root",
		Handlers: map[event.Name]object.Handler{event.Abort: cleanup},
		Entries: map[string]object.Entry{
			"main": func(ctx object.Ctx, _ []any) ([]any, error) {
				self := <-rootObjCh
				if _, err := Arm(ctx, self); err != nil {
					return nil, err
				}
				for i := 0; i < workers; i++ {
					if _, err := ctx.InvokeAsync(self, "worker"); err != nil {
						return nil, err
					}
				}
				rootTID <- ctx.Thread()
				return ctx.Invoke(mid, "fwd")
			},
			"worker": func(ctx object.Ctx, _ []any) ([]any, error) {
				ready.Add(1)
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rootObjCh <- root
	return root, rootTID, &cleanups, &ready
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(waitShort)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDistributedCtrlC is the full §6.3 scenario: ^C (TERMINATE raised at
// the root thread) must terminate every thread of the application —
// including asynchronously spawned ones — and notify every object along
// the invocation chain, leaving no orphans.
func TestDistributedCtrlC(t *testing.T) {
	sys := newSystem(t, 3)
	const workers = 4
	root, rootTIDCh, cleanups, ready := buildApp(t, sys, workers)
	_ = root

	h, err := sys.Spawn(1, root, "main")
	if err != nil {
		t.Fatal(err)
	}
	rootTID := <-rootTIDCh
	waitFor(t, func() bool { return ready.Load() == workers+1 }, "all threads parked")
	time.Sleep(30 * time.Millisecond)

	// The user types ^C: TERMINATE for the root thread, raised wherever.
	if err := sys.Raise(2, event.Terminate, event.ToThread(rootTID), nil); err != nil {
		t.Fatalf("^C raise: %v", err)
	}

	// Root thread unwinds (aborted through the chain or QUIT).
	if _, err := h.WaitTimeout(waitShort); err == nil {
		t.Fatal("root thread finished cleanly, want aborted/terminated")
	} else if !errors.Is(err, core.ErrAborted) && !errors.Is(err, core.ErrTerminated) {
		t.Fatalf("root err = %v", err)
	}

	// No orphans: every spawned thread terminates.
	for _, hh := range sys.Handles() {
		if _, err := hh.WaitTimeout(waitShort); err == nil {
			t.Fatalf("thread %v survived ^C (orphan)", hh.TID())
		}
	}

	// Both objects along the chain were notified via ABORT.
	waitFor(t, func() bool { return cleanups.Load() >= 2 }, "object cleanups")
}

// TestNaiveKillLeavesOrphans is the baseline for E5: terminating only the
// root thread (conventional process kill) leaves asynchronously spawned
// threads running.
func TestNaiveKillLeavesOrphans(t *testing.T) {
	sys := newSystem(t, 3)
	const workers = 3
	var ready atomic.Int64
	rootTIDCh := make(chan ids.ThreadID, 1)
	objCh := make(chan ids.ObjectID, 1)
	root, err := sys.CreateObject(1, object.Spec{
		Name: "naive",
		Entries: map[string]object.Entry{
			"main": func(ctx object.Ctx, _ []any) ([]any, error) {
				self := <-objCh
				// No protocol arming: plain kill semantics.
				for i := 0; i < workers; i++ {
					if _, err := ctx.InvokeAsync(self, "worker"); err != nil {
						return nil, err
					}
				}
				rootTIDCh <- ctx.Thread()
				return nil, ctx.Sleep(time.Hour)
			},
			"worker": func(ctx object.Ctx, _ []any) ([]any, error) {
				ready.Add(1)
				return nil, ctx.Sleep(500 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	objCh <- root
	h, err := sys.Spawn(1, root, "main")
	if err != nil {
		t.Fatal(err)
	}
	rootTID := <-rootTIDCh
	waitFor(t, func() bool { return ready.Load() == workers }, "workers parked")

	if err := sys.Raise(1, event.Terminate, event.ToThread(rootTID), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, core.ErrTerminated) {
		t.Fatalf("root err = %v", err)
	}

	// The workers keep running: they finish their sleep normally instead
	// of being terminated — i.e. they were orphaned by the naive kill.
	orphans := 0
	for _, hh := range sys.Handles() {
		if hh.TID() == rootTID {
			continue
		}
		if _, err := hh.WaitTimeout(waitShort); err == nil {
			orphans++
		}
	}
	if orphans != workers {
		t.Fatalf("orphans = %d, want %d (naive kill must leave workers running)", orphans, workers)
	}
}

// TestUnrelatedApplicationUndisturbed checks the sharability requirement:
// objects shared with an unrelated application keep serving it after the
// first application is ^C'd.
func TestUnrelatedApplicationUndisturbed(t *testing.T) {
	sys := newSystem(t, 2)
	shared, err := sys.CreateObject(2, object.Spec{
		Name: "shared",
		Entries: map[string]object.Entry{
			"serve": func(ctx object.Ctx, args []any) ([]any, error) {
				// Simulate steady work with interruption points.
				for i := 0; i < 20; i++ {
					if err := ctx.Sleep(5 * time.Millisecond); err != nil {
						return nil, err
					}
				}
				return []any{"done"}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rootTIDCh := make(chan ids.ThreadID, 1)
	appA, err := sys.CreateObject(1, object.Spec{
		Name: "appA",
		Entries: map[string]object.Entry{
			"main": func(ctx object.Ctx, _ []any) ([]any, error) {
				if _, err := Arm(ctx, shared); err != nil {
					return nil, err
				}
				rootTIDCh <- ctx.Thread()
				return ctx.Invoke(shared, "serve")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hA, err := sys.SpawnApp(1, "A", appA, "main")
	if err != nil {
		t.Fatal(err)
	}
	tidA := <-rootTIDCh
	// Unrelated application B uses the same shared object.
	hB, err := sys.SpawnApp(2, "B", shared, "serve")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := sys.Raise(1, event.Terminate, event.ToThread(tidA), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := hA.WaitTimeout(waitShort); err == nil {
		t.Fatal("app A survived ^C")
	}
	// App B must complete normally despite sharing the object.
	res, err := hB.WaitTimeout(waitShort)
	if err != nil {
		t.Fatalf("unrelated app B was disturbed: %v", err)
	}
	if res[0] != "done" {
		t.Fatalf("app B result = %v", res)
	}
}

func TestCleanupHandlerPassesThreadID(t *testing.T) {
	var got ids.ThreadID
	h := CleanupHandler(func(_ object.Ctx, tid ids.ThreadID) { got = tid })
	tid := ids.NewThreadID(3, 9)
	eb := &event.Block{Name: event.Abort, User: map[string]any{"thread": tid}}
	if v := h(nil, event.HandlerRef{}, eb); v != event.VerdictResume {
		t.Fatalf("verdict = %v", v)
	}
	if got != tid {
		t.Fatalf("cleanup saw tid %v, want %v", got, tid)
	}
}

func TestCleanupHandlerNilFn(t *testing.T) {
	h := CleanupHandler(nil)
	if v := h(nil, event.HandlerRef{}, &event.Block{}); v != event.VerdictResume {
		t.Fatalf("verdict = %v", v)
	}
}
