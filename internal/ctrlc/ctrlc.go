// Package ctrlc implements the "distributed ^C problem" of §6.3: cleanly
// terminating a distributed application whose threads and objects span the
// cluster — and whose objects may be concurrently shared with unrelated
// applications that must not be disturbed.
//
// The protocol combines object-based and thread-based handlers exactly as
// the paper prescribes:
//
//   - every application object registers an object-based ABORT handler that
//     performs its cleanup when an invocation through it is torn down;
//   - the root thread attaches a TERMINATE handler and a QUIT handler, both
//     inherited by every thread it spawns;
//   - when the user's ^C raises TERMINATE anywhere, the TERMINATE handler
//     aborts the top-level invocation (notifying every object along the
//     invocation chain) and raises QUIT to the application's thread group;
//   - the QUIT handler simply terminates each receiving thread.
package ctrlc

import (
	"fmt"
	"strconv"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

// Handler-code registry names.
const (
	// TerminateProc is the root TERMINATE handler: abort + group QUIT.
	TerminateProc = "ctrlc.terminate"
	// QuitProc terminates the receiving thread.
	QuitProc = "ctrlc.quit"
)

// Registrar is the system surface the package needs.
type Registrar interface {
	RegisterProc(name string, f object.Handler) error
}

// Register installs the protocol's handler code. Call once per system.
func Register(r Registrar) error {
	if err := r.RegisterProc(TerminateProc, terminateHandler); err != nil {
		return err
	}
	return r.RegisterProc(QuitProc, quitHandler)
}

// terminateHandler runs when TERMINATE reaches any thread of an armed
// application: it aborts the top-level invocation so every object along
// the chain is notified, then raises QUIT to the whole thread group.
func terminateHandler(ctx object.Ctx, ref event.HandlerRef, eb *event.Block) event.Verdict {
	rootTID, rootObj, err := decode(ref)
	if err != nil {
		return event.VerdictPropagate
	}
	// Abort the top-level invocation: ABORT cascades object to object
	// along the invocation chain, giving each a cleanup opportunity.
	_ = ctx.Abort(rootTID, rootObj)

	// Hunt down every thread in the application's group, including those
	// spawned by asynchronous invocations (they inherited the membership).
	if gid := ctx.Attrs().Group; gid.IsValid() {
		_ = ctx.Raise(event.Quit, event.ToGroup(gid), nil)
	}
	// The QUIT we just raised terminates this thread too; resuming here
	// keeps the handler idempotent if QUIT wins the race.
	return event.VerdictResume
}

// quitHandler is the paper's "the handler for the event QUIT simply
// terminates the thread".
func quitHandler(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
	return event.VerdictTerminate
}

// Arm wires the protocol for the calling (root) thread: it creates the
// application thread group and attaches the TERMINATE and QUIT handlers,
// all of which are inherited by spawned threads. rootObj is the top-level
// object of the application (where the abort cascade starts). Arm returns
// the group so tests and tools can address it.
func Arm(ctx object.Ctx, rootObj ids.ObjectID) (ids.GroupID, error) {
	gid, err := ctx.CreateGroup()
	if err != nil {
		return ids.NoGroup, fmt.Errorf("ctrlc: create group: %w", err)
	}
	data := map[string]string{
		"root":    strconv.FormatUint(uint64(ctx.Thread()), 10),
		"rootObj": strconv.FormatUint(uint64(rootObj), 10),
	}
	if err := ctx.AttachHandler(event.HandlerRef{
		Event: event.Terminate, Kind: event.KindProc, Proc: TerminateProc, Data: data,
	}); err != nil {
		return ids.NoGroup, err
	}
	if err := ctx.AttachHandler(event.HandlerRef{
		Event: event.Quit, Kind: event.KindProc, Proc: QuitProc,
	}); err != nil {
		return ids.NoGroup, err
	}
	return gid, nil
}

// CleanupHandler returns an object-based ABORT handler that records its
// cleanup by running fn (e.g. closing I/O channels, releasing resources)
// and resumes. Applications put it in their objects' Handlers map under
// event.Abort, per the protocol's first requirement.
func CleanupHandler(fn func(ctx object.Ctx, tid ids.ThreadID)) object.Handler {
	return func(ctx object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
		if fn != nil {
			var tid ids.ThreadID
			if eb.User != nil {
				if v, ok := eb.User["thread"].(ids.ThreadID); ok {
					tid = v
				}
			}
			fn(ctx, tid)
		}
		return event.VerdictResume
	}
}

func decode(ref event.HandlerRef) (ids.ThreadID, ids.ObjectID, error) {
	tv, err := strconv.ParseUint(ref.Data["root"], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("ctrlc: bad root thread: %w", err)
	}
	ov, err := strconv.ParseUint(ref.Data["rootObj"], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("ctrlc: bad root object: %w", err)
	}
	return ids.ThreadID(tv), ids.ObjectID(ov), nil
}
