package trace

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
)

func TestAddAndSnapshot(t *testing.T) {
	b := New(4)
	b.Add(Record{Kind: KindRaise, Node: 1, Event: event.Terminate})
	b.Add(Record{Kind: KindDeliver, Node: 2})
	snap := b.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Len = %d, want 2", len(snap))
	}
	if snap[0].Seq != 0 || snap[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %v", snap)
	}
	if snap[0].At.IsZero() {
		t.Fatal("timestamp not stamped")
	}
}

func TestRingEviction(t *testing.T) {
	b := New(3)
	for i := 0; i < 10; i++ {
		b.Add(Record{Kind: KindRaise, Node: ids.NodeID(i + 1)})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if b.Total() != 10 {
		t.Fatalf("Total = %d, want 10", b.Total())
	}
	snap := b.Snapshot()
	// Oldest retained is record #7 (0-indexed).
	if snap[0].Seq != 7 || snap[2].Seq != 9 {
		t.Fatalf("retained %v, want seqs 7..9", snap)
	}
}

func TestNilBufferIsNoop(t *testing.T) {
	var b *Buffer
	b.Add(Record{Kind: KindRaise}) // must not panic
	if b.Len() != 0 || b.Total() != 0 || b.Snapshot() != nil {
		t.Fatal("nil buffer not inert")
	}
	if b.Enabled() {
		t.Fatal("nil buffer reports enabled")
	}
	if got := b.OfKind(KindRaise); got != nil {
		t.Fatalf("nil OfKind = %v", got)
	}
}

func TestFilters(t *testing.T) {
	b := New(16)
	tid := ids.NewThreadID(1, 5)
	b.Add(Record{Kind: KindRaise, Thread: tid})
	b.Add(Record{Kind: KindDeliver, Thread: tid})
	b.Add(Record{Kind: KindRaise, Thread: ids.NewThreadID(2, 1)})
	if got := b.OfThread(tid); len(got) != 2 {
		t.Fatalf("OfThread = %d records, want 2", len(got))
	}
	if got := b.OfKind(KindRaise); len(got) != 2 {
		t.Fatalf("OfKind(raise) = %d records, want 2", len(got))
	}
}

func TestRecordString(t *testing.T) {
	r := Record{
		Seq: 3, Kind: KindDeliver, Node: 2, Thread: ids.NewThreadID(1, 1),
		Event: event.Timer, Target: "t1.1", Detail: "verdict=resume",
	}
	s := r.String()
	for _, want := range []string{"#3", "deliver", "node2", "t1.1", "TIMER", "verdict=resume"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindRaise: "raise", KindDeliver: "deliver", KindHandlerRun: "handler",
		KindDefault: "default", KindSpawn: "spawn", KindTerminate: "terminate",
		KindHop: "hop", KindLocate: "locate",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestDump(t *testing.T) {
	b := New(8)
	b.Add(Record{Kind: KindSpawn, Node: 1})
	b.Add(Record{Kind: KindHop, Node: 1, Target: "node2"})
	d := b.Dump()
	if strings.Count(d, "\n") != 2 {
		t.Fatalf("Dump = %q", d)
	}
}

func TestConcurrentAdds(t *testing.T) {
	b := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Add(Record{Kind: KindRaise, Node: 1})
			}
		}()
	}
	wg.Wait()
	if b.Total() != 800 {
		t.Fatalf("Total = %d, want 800", b.Total())
	}
	if b.Len() != 64 {
		t.Fatalf("Len = %d, want 64 (capacity)", b.Len())
	}
}

func TestExplicitTimestampKept(t *testing.T) {
	b := New(2)
	at := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	b.Add(Record{Kind: KindRaise, At: at})
	if got := b.Snapshot()[0].At; !got.Equal(at) {
		t.Fatalf("At = %v, want %v", got, at)
	}
}

// Property: after any number of adds n, Total() == n, Len() == min(n, cap),
// and the retained records are exactly the last Len() with ascending seqs.
func TestRingProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		b := New(capacity)
		total := int(n % 64)
		for i := 0; i < total; i++ {
			b.Add(Record{Kind: KindRaise})
		}
		if b.Total() != uint64(total) {
			return false
		}
		wantLen := total
		if wantLen > capacity {
			wantLen = capacity
		}
		snap := b.Snapshot()
		if len(snap) != wantLen {
			return false
		}
		for i, r := range snap {
			if r.Seq != uint64(total-wantLen+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
