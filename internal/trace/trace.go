// Package trace is a bounded in-memory event trace for the DO/CT kernel:
// every raise, delivery, handler run and thread lifecycle transition can be
// recorded and queried. It exists for the debugging and monitoring story
// the paper motivates (§1, §6.2) — a debugger is "an application that
// requires access to the internals of the application being debugged" —
// and for tests that assert on protocol behaviour rather than counters.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
)

// Kind classifies trace records.
type Kind int

// Record kinds.
const (
	// KindRaise is an event being raised.
	KindRaise Kind = iota + 1
	// KindDeliver is an event reaching its target.
	KindDeliver
	// KindHandlerRun is one handler execution.
	KindHandlerRun
	// KindDefault is a default action applying.
	KindDefault
	// KindSpawn is a thread spawn.
	KindSpawn
	// KindTerminate is a thread terminating.
	KindTerminate
	// KindHop is a thread moving between nodes.
	KindHop
	// KindLocate is a thread-location round resolving (strategy, result
	// node and probe/cache accounting in Detail).
	KindLocate
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindRaise:
		return "raise"
	case KindDeliver:
		return "deliver"
	case KindHandlerRun:
		return "handler"
	case KindDefault:
		return "default"
	case KindSpawn:
		return "spawn"
	case KindTerminate:
		return "terminate"
	case KindHop:
		return "hop"
	case KindLocate:
		return "locate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one trace entry.
type Record struct {
	Seq    uint64
	At     time.Time
	Kind   Kind
	Node   ids.NodeID
	Thread ids.ThreadID
	Event  event.Name
	Target string
	Detail string
}

// String renders the record as one line.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %v", r.Seq, r.Kind, r.Node)
	if r.Thread.IsValid() {
		fmt.Fprintf(&b, " %v", r.Thread)
	}
	if r.Event != "" {
		fmt.Fprintf(&b, " %s", r.Event)
	}
	if r.Target != "" {
		fmt.Fprintf(&b, " -> %s", r.Target)
	}
	if r.Detail != "" {
		fmt.Fprintf(&b, " (%s)", r.Detail)
	}
	return b.String()
}

// Buffer is a bounded ring of trace records. The zero value is disabled
// (records are dropped); create an active buffer with New. Buffer is safe
// for concurrent use.
type Buffer struct {
	mu   sync.Mutex
	ring []Record
	next uint64 // total records ever added
	cap  int
	now  func() time.Time
}

// New returns a Buffer retaining the last capacity records.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{
		ring: make([]Record, 0, capacity),
		cap:  capacity,
		now:  time.Now,
	}
}

// Enabled reports whether the buffer records anything.
func (b *Buffer) Enabled() bool { return b != nil && b.cap > 0 }

// Add appends a record, evicting the oldest when full. Calling Add on a
// nil Buffer is a no-op, so call sites need no guards.
func (b *Buffer) Add(r Record) {
	if b == nil || b.cap == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r.Seq = b.next
	b.next++
	if r.At.IsZero() {
		r.At = b.now()
	}
	if len(b.ring) < b.cap {
		b.ring = append(b.ring, r)
		return
	}
	copy(b.ring, b.ring[1:])
	b.ring[len(b.ring)-1] = r
}

// Len returns the number of retained records.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ring)
}

// Total returns the number of records ever added (including evicted).
func (b *Buffer) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Snapshot returns the retained records, oldest first.
func (b *Buffer) Snapshot() []Record {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Record, len(b.ring))
	copy(out, b.ring)
	return out
}

// Filter returns the retained records matching pred, oldest first.
func (b *Buffer) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range b.Snapshot() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// OfThread returns the retained records for one thread.
func (b *Buffer) OfThread(tid ids.ThreadID) []Record {
	return b.Filter(func(r Record) bool { return r.Thread == tid })
}

// OfKind returns the retained records of one kind.
func (b *Buffer) OfKind(k Kind) []Record {
	return b.Filter(func(r Record) bool { return r.Kind == k })
}

// Dump renders the retained records, one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, r := range b.Snapshot() {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
