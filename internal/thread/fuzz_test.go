package thread

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
)

// FuzzDeltaRoundTrip drives the delta attribute codec with an arbitrary
// mutation script: the fuzz input is decoded as a sequence of attribute
// edits (handler pushes and pops, timer churn, label writes, per-thread
// memory writes and deletes), a cut point splits the sequence into the
// base snapshot and the current state, and the invariant checked is the
// codec's contract — Apply(DiffAttrs(base, cur), base) must reconstruct
// cur exactly, Unchanged must mean content-equal, and the base snapshot
// must come through the round trip unmutated.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	// A pop after pushes exercises ChainKeep < len(base chain).
	f.Add([]byte{0x10, 0x11, 0x01, 0x42})
	// Timer churn then label writes then per-thread memory.
	f.Add([]byte{0x20, 0x30, 0x40, 0x41, 0x50, 0x02, 0x60})
	// Everything on both sides of a late cut.
	f.Add([]byte{0x10, 0x20, 0x40, 0x06, 0x11, 0x50, 0x30, 0x60})

	f.Fuzz(func(t *testing.T, script []byte) {
		tid := ids.NewThreadID(3, 7)
		attrs := NewAttributes(tid)
		attrs.Version = 1

		// The first byte (if any) places the base/current cut within the
		// script; edits before the cut shape the base snapshot too.
		cut := 0
		if len(script) > 0 {
			cut = int(script[0]) % (len(script) + 1)
		}
		var base *Attributes
		step := func(i int, op byte) {
			applyFuzzEdit(attrs, i, op)
		}
		for i, op := range script {
			if i == cut {
				base = attrs.Clone()
				base.Version = 100
			}
			step(i, op)
		}
		if base == nil {
			base = attrs.Clone()
			base.Version = 100
		}
		baseCopy := base.Clone()

		d := DiffAttrs(base, attrs)
		if !d.Unchanged() {
			d.Version = 200 // the kernel stamps shipped deltas; any fresh value works
		}
		got := d.Apply(base)

		if err := attrsEquivalent(got, attrs); err != nil {
			t.Fatalf("round trip diverged: %v\nscript=%x cut=%d", err, script, cut)
		}
		if d.Unchanged() {
			if err := attrsEquivalent(base, attrs); err != nil {
				t.Fatalf("delta says unchanged but contents differ: %v\nscript=%x cut=%d", err, script, cut)
			}
		}
		// The base is a shared cache entry: Apply must not mutate it.
		if err := attrsEquivalent(base, baseCopy); err != nil {
			t.Fatalf("Apply mutated the base snapshot: %v\nscript=%x cut=%d", err, script, cut)
		}
		if d.WireSize() <= 0 {
			t.Fatalf("non-positive wire size %d", d.WireSize())
		}
	})
}

// applyFuzzEdit performs one scripted attribute mutation. The high nibble
// selects the edit kind, the low nibble (and the step index) pick the
// operands, so every byte decodes to a valid edit.
func applyFuzzEdit(a *Attributes, i int, op byte) {
	names := []event.Name{event.Interrupt, event.Terminate, event.Quit, event.Alarm}
	name := names[int(op&0x03)]
	switch op >> 4 {
	case 0x1: // push a proc handler, occasionally with bound data
		ref := event.HandlerRef{Event: name, Kind: event.KindProc, Proc: fmt.Sprintf("p%d", i)}
		if op&0x04 != 0 {
			ref.Data = map[string]string{"k": fmt.Sprintf("v%d", i)}
		}
		a.Handlers.Push(ref)
	case 0x2: // pop the newest handler for the selected event
		a.Handlers.Remove(name)
	case 0x3: // add a timer
		a.AddTimer(TimerSpec{Event: name, Period: time.Duration(i+1) * time.Millisecond})
	case 0x4: // remove timers for the selected event
		a.RemoveTimer(name)
	case 0x5: // rewrite the scalar labels
		a.Group = ids.NewGroupID(2, uint64(op))
		a.IOChannel = fmt.Sprintf("io%d", op&0x07)
		a.ConsistencyLabel = fmt.Sprintf("c%d", op&0x03)
	case 0x6: // write a per-thread memory slot
		a.PerThread[fmt.Sprintf("slot%d", op&0x07)] = []byte{op, byte(i)}
	case 0x7: // delete a per-thread memory slot
		delete(a.PerThread, fmt.Sprintf("slot%d", op&0x07))
	default: // other nibbles are no-ops, keeping every input valid
	}
}

// attrsEquivalent compares the delta-carried attribute content of two
// snapshots (version stamps are cache keys, not content, and are excluded).
func attrsEquivalent(a, b *Attributes) error {
	if a.Thread != b.Thread {
		return fmt.Errorf("thread %v != %v", a.Thread, b.Thread)
	}
	al, bl := a.Handlers.Links(), b.Handlers.Links()
	if len(al) != len(bl) {
		return fmt.Errorf("chain length %d != %d", len(al), len(bl))
	}
	for i := range al {
		if !al[i].Equal(bl[i]) {
			return fmt.Errorf("chain link %d: %v != %v", i, al[i], bl[i])
		}
	}
	if !timersEqual(a.Timers, b.Timers) {
		return fmt.Errorf("timers %v != %v", a.Timers, b.Timers)
	}
	if a.Group != b.Group || a.IOChannel != b.IOChannel || a.ConsistencyLabel != b.ConsistencyLabel {
		return fmt.Errorf("labels (%v,%q,%q) != (%v,%q,%q)",
			a.Group, a.IOChannel, a.ConsistencyLabel, b.Group, b.IOChannel, b.ConsistencyLabel)
	}
	if len(a.PerThread) != len(b.PerThread) {
		return fmt.Errorf("per-thread slots %d != %d", len(a.PerThread), len(b.PerThread))
	}
	for k, v := range a.PerThread {
		if bv, ok := b.PerThread[k]; !ok || !bytes.Equal(v, bv) {
			return fmt.Errorf("per-thread slot %q: %x != %x", k, v, bv)
		}
	}
	return nil
}
