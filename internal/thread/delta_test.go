package thread

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
)

func deltaAttrs(tid ids.ThreadID) *Attributes {
	a := NewAttributes(tid)
	a.App = "e-delta"
	a.Handlers.Push(event.HandlerRef{
		Event: event.Interrupt, Kind: event.KindEntry,
		Object: ids.ObjectID(7), Entry: "h0",
	})
	a.Handlers.Push(event.HandlerRef{
		Event: event.Alarm, Kind: event.KindProc,
		Proc: "p1", Data: map[string]string{"k": "v"},
	})
	a.Timers = []TimerSpec{{Event: event.Alarm, Period: 5 * time.Millisecond}}
	a.Group = ids.GroupID(3)
	a.IOChannel = "stdout"
	a.PerThread["slot"] = []byte{1, 2, 3}
	a.Version = 11
	return a
}

// attrsContentEqual compares everything that travels, ignoring Version
// (which is a cache key, not content).
func attrsContentEqual(t *testing.T, want, got *Attributes) {
	t.Helper()
	if want.Thread != got.Thread || want.Creator != got.Creator || want.App != got.App {
		t.Fatalf("identity mismatch: want %+v got %+v", want, got)
	}
	if !reflect.DeepEqual(want.Handlers.Links(), got.Handlers.Links()) {
		t.Fatalf("chain mismatch:\nwant %+v\ngot  %+v", want.Handlers.Links(), got.Handlers.Links())
	}
	if !reflect.DeepEqual(want.Timers, got.Timers) {
		t.Fatalf("timers mismatch: want %+v got %+v", want.Timers, got.Timers)
	}
	if want.Group != got.Group || want.IOChannel != got.IOChannel ||
		want.ConsistencyLabel != got.ConsistencyLabel {
		t.Fatalf("labels mismatch: want %+v got %+v", want, got)
	}
	if !reflect.DeepEqual(want.PerThread, got.PerThread) {
		t.Fatalf("per-thread mismatch: want %v got %v", want.PerThread, got.PerThread)
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	base := deltaAttrs(ids.ThreadID(42))
	cur := base.Clone()
	// One pop + two pushes, a timer change, label edits, PT set + delete.
	cur.Handlers.Remove(event.Alarm)
	cur.Handlers.Push(event.HandlerRef{
		Event: event.Interrupt, Kind: event.KindEntry,
		Object: ids.ObjectID(9), Entry: "h2",
	})
	cur.Handlers.Push(event.HandlerRef{
		Event: event.ThreadDeath, Kind: event.KindEntry,
		Object: ids.ObjectID(9), Entry: "h3",
	})
	cur.Timers = append(cur.Timers, TimerSpec{Event: event.Interrupt, Period: time.Second})
	cur.IOChannel = "null"
	cur.ConsistencyLabel = "strict"
	cur.PerThread["slot2"] = []byte{9}
	delete(cur.PerThread, "slot")
	cur.Version = 12

	d := DiffAttrs(base, cur)
	if d.Unchanged() {
		t.Fatal("delta reported unchanged")
	}
	if d.Base != base.Version {
		t.Fatalf("Base = %d, want %d", d.Base, base.Version)
	}
	if d.ChainKeep != 1 || len(d.ChainPush) != 2 {
		t.Fatalf("chain edit = keep %d push %d, want keep 1 push 2", d.ChainKeep, len(d.ChainPush))
	}
	d.Version = cur.Version

	got := d.Apply(base)
	attrsContentEqual(t, cur, got)
	if got.Version != cur.Version {
		t.Fatalf("applied Version = %d, want %d", got.Version, cur.Version)
	}
}

func TestDiffUnchanged(t *testing.T) {
	base := deltaAttrs(ids.ThreadID(1))
	cur := base.Clone()
	d := DiffAttrs(base, cur)
	if !d.Unchanged() {
		t.Fatalf("expected unchanged delta, got %+v", d)
	}
	if d.Version != base.Version {
		t.Fatalf("unchanged delta Version = %d, want base %d", d.Version, base.Version)
	}
	got := d.Apply(base)
	attrsContentEqual(t, base, got)
}

func TestDiffDetectsDataEdit(t *testing.T) {
	// Editing a handler's Data map in place is a chain change even though
	// the link count is identical.
	base := deltaAttrs(ids.ThreadID(2))
	cur := base.Clone()
	cur.Handlers.Links()[1].Data["k"] = "v2"
	d := DiffAttrs(base, cur)
	if d.Unchanged() {
		t.Fatal("data edit not detected")
	}
	if d.ChainKeep != 1 || len(d.ChainPush) != 1 {
		t.Fatalf("chain edit = keep %d push %d, want keep 1 push 1", d.ChainKeep, len(d.ChainPush))
	}
	d.Version = 99
	got := d.Apply(base)
	attrsContentEqual(t, cur, got)
}

func TestApplySharesNothingWithBase(t *testing.T) {
	base := deltaAttrs(ids.ThreadID(3))
	cur := base.Clone()
	cur.PerThread["slot"] = []byte{42}
	d := DiffAttrs(base, cur)
	d.Version = 13
	got := d.Apply(base)

	// Mutating the result must not leak into the base snapshot.
	got.PerThread["slot"][0] = 77
	got.Handlers.Links()[1].Data["k"] = "poison"
	if base.PerThread["slot"][0] != 1 {
		t.Fatal("Apply aliased per-thread memory with base")
	}
	if base.Handlers.Links()[1].Data["k"] != "v" {
		t.Fatal("Apply aliased chain link data with base")
	}
}

func TestDeltaWireSizeBeatsFullSnapshot(t *testing.T) {
	base := deltaAttrs(ids.ThreadID(4))
	for i := 0; i < 62; i++ {
		base.Handlers.Push(event.HandlerRef{
			Event: event.Interrupt, Kind: event.KindEntry,
			Object: ids.ObjectID(5), Entry: "deep",
		})
	}
	cur := base.Clone()
	cur.Handlers.Push(event.HandlerRef{
		Event: event.Alarm, Kind: event.KindEntry,
		Object: ids.ObjectID(5), Entry: "tip",
	})
	d := DiffAttrs(base, cur)
	if full, delta := cur.WireSize(), d.WireSize(); delta*10 > full {
		t.Fatalf("delta %dB not ≪ full %dB for a one-push edit on a 64-deep chain", delta, full)
	}
}
