package thread

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
)

func TestNewAttributes(t *testing.T) {
	tid := ids.NewThreadID(1, 1)
	a := NewAttributes(tid)
	if a.Thread != tid {
		t.Fatalf("Thread = %v, want %v", a.Thread, tid)
	}
	if a.Handlers == nil || a.Handlers.Len() != 0 {
		t.Fatal("expected empty handler chain")
	}
	if a.PerThread == nil {
		t.Fatal("expected non-nil per-thread memory")
	}
}

func TestAttributesCloneIsDeep(t *testing.T) {
	a := NewAttributes(ids.NewThreadID(1, 1))
	a.App = "app1"
	a.Handlers.Push(event.HandlerRef{Event: event.Terminate, Kind: event.KindProc, Proc: "p"})
	a.Timers = []TimerSpec{{Event: event.Timer, Period: time.Second}}
	a.PerThread["slot"] = []byte{1, 2, 3}

	c := a.Clone()
	c.Handlers.Push(event.HandlerRef{Event: event.Quit, Kind: event.KindProc, Proc: "q"})
	c.Timers[0].Period = time.Minute
	c.PerThread["slot"][0] = 9
	c.PerThread["new"] = []byte{7}

	if a.Handlers.Len() != 1 {
		t.Error("clone shares handler chain")
	}
	if a.Timers[0].Period != time.Second {
		t.Error("clone shares timers slice")
	}
	if a.PerThread["slot"][0] != 1 {
		t.Error("clone shares per-thread memory bytes")
	}
	if _, ok := a.PerThread["new"]; ok {
		t.Error("clone shares per-thread memory map")
	}
}

func TestCloneOfNilChain(t *testing.T) {
	a := &Attributes{Thread: ids.NewThreadID(1, 1)}
	c := a.Clone()
	if c.Handlers == nil {
		t.Fatal("Clone left nil handler chain")
	}
}

func TestInheritFor(t *testing.T) {
	parent := NewAttributes(ids.NewThreadID(1, 1))
	parent.App = "app"
	parent.Group = ids.NewGroupID(1, 5)
	parent.IOChannel = "tty1"
	parent.Handlers.Push(event.HandlerRef{Event: event.Quit, Kind: event.KindProc, Proc: "quit_handler"})
	parent.AddTimer(TimerSpec{Event: event.Timer, Period: time.Second})

	child := parent.InheritFor(ids.NewThreadID(2, 1))
	if child.Thread != ids.NewThreadID(2, 1) {
		t.Errorf("child Thread = %v", child.Thread)
	}
	if child.Creator != parent.Thread {
		t.Errorf("child Creator = %v, want %v", child.Creator, parent.Thread)
	}
	if child.Group != parent.Group || child.App != parent.App || child.IOChannel != parent.IOChannel {
		t.Error("child did not inherit group/app/io channel")
	}
	if child.Handlers.Depth(event.Quit) != 1 {
		t.Error("child did not inherit handler chain (QUIT handler, §6.3)")
	}
	if len(child.Timers) != 1 {
		t.Error("child did not inherit timers")
	}
}

func TestMergeFrom(t *testing.T) {
	caller := NewAttributes(ids.NewThreadID(1, 1))
	caller.Handlers.Push(event.HandlerRef{Event: event.Terminate, Kind: event.KindProc, Proc: "a"})

	callee := caller.Clone()
	callee.Handlers.Push(event.HandlerRef{Event: event.Terminate, Kind: event.KindProc, Proc: "b"})
	callee.AddTimer(TimerSpec{Event: event.Timer, Period: time.Second})
	callee.PerThread["x"] = []byte{1}
	callee.Group = ids.NewGroupID(3, 3)

	caller.MergeFrom(callee)
	if caller.Handlers.Depth(event.Terminate) != 2 {
		t.Error("handler attached downstream did not persist after return (§4.1)")
	}
	if len(caller.Timers) != 1 {
		t.Error("timer registered downstream did not persist")
	}
	if string(caller.PerThread["x"]) != "\x01" {
		t.Error("per-thread memory write downstream did not persist")
	}
	if caller.Group != callee.Group {
		t.Error("group change did not persist")
	}

	// Later callee mutations must not alias the caller.
	callee.PerThread["x"][0] = 9
	if caller.PerThread["x"][0] != 1 {
		t.Error("MergeFrom aliased per-thread memory")
	}
}

func TestMergeFromNil(t *testing.T) {
	a := NewAttributes(ids.NewThreadID(1, 1))
	a.MergeFrom(nil) // must not panic
}

func TestAddRemoveTimer(t *testing.T) {
	a := NewAttributes(ids.NewThreadID(1, 1))
	a.AddTimer(TimerSpec{Event: event.Timer, Period: time.Second})
	a.AddTimer(TimerSpec{Event: event.Timer, Period: time.Minute})
	if len(a.Timers) != 1 {
		t.Fatalf("duplicate AddTimer produced %d entries, want 1 (replace)", len(a.Timers))
	}
	if a.Timers[0].Period != time.Minute {
		t.Fatal("AddTimer did not replace period")
	}
	if !a.RemoveTimer(event.Timer) {
		t.Fatal("RemoveTimer = false")
	}
	if a.RemoveTimer(event.Timer) {
		t.Fatal("second RemoveTimer = true")
	}
}

func TestWireSizeGrows(t *testing.T) {
	a := NewAttributes(ids.NewThreadID(1, 1))
	small := a.WireSize()
	a.Handlers.Push(event.HandlerRef{Event: event.Terminate, Kind: event.KindProc, Proc: "p"})
	a.PerThread["blob"] = make([]byte, 100)
	if a.WireSize() <= small {
		t.Error("WireSize did not grow with content")
	}
}

func TestTCBArriveDepartReturn(t *testing.T) {
	tbl := NewTable()
	tid := ids.NewThreadID(1, 1)

	tbl.Arrive(tid, 0)
	if !tbl.Present(tid) {
		t.Fatal("not Present after Arrive")
	}
	tcb, ok := tbl.Lookup(tid)
	if !ok || tcb.Depth != 0 || tcb.Visits != 1 || tcb.Next != ids.NoNode {
		t.Fatalf("Lookup after Arrive = %+v", tcb)
	}

	tbl.Depart(tid, 5)
	if tbl.Present(tid) {
		t.Fatal("Present after Depart")
	}
	tcb, _ = tbl.Lookup(tid)
	if tcb.Next != 5 {
		t.Fatalf("forwarding pointer = %v, want node5", tcb.Next)
	}

	tbl.Return(tid, 0)
	if !tbl.Present(tid) {
		t.Fatal("not Present after Return")
	}
	tcb, _ = tbl.Lookup(tid)
	if tcb.Next != ids.NoNode {
		t.Fatal("forwarding pointer survived Return")
	}

	tbl.Remove(tid)
	if _, ok := tbl.Lookup(tid); ok {
		t.Fatal("TCB survived Remove")
	}
}

func TestTCBVisitsCount(t *testing.T) {
	tbl := NewTable()
	tid := ids.NewThreadID(1, 1)
	for i := 0; i < 3; i++ {
		tbl.Arrive(tid, i)
	}
	tcb, _ := tbl.Lookup(tid)
	if tcb.Visits != 3 {
		t.Fatalf("Visits = %d, want 3", tcb.Visits)
	}
}

func TestTCBDepartUnknownIsNoop(t *testing.T) {
	tbl := NewTable()
	tbl.Depart(ids.NewThreadID(1, 1), 2) // must not panic or create
	if _, ok := tbl.Lookup(ids.NewThreadID(1, 1)); ok {
		t.Fatal("Depart created a TCB")
	}
}

func TestTableThreadsSorted(t *testing.T) {
	tbl := NewTable()
	tbl.Arrive(ids.NewThreadID(2, 1), 0)
	tbl.Arrive(ids.NewThreadID(1, 1), 0)
	tbl.Arrive(ids.NewThreadID(1, 2), 0)
	got := tbl.Threads()
	if len(got) != 3 {
		t.Fatalf("Threads = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Threads not sorted: %v", got)
		}
	}
}

func TestGroups(t *testing.T) {
	g := NewGroups()
	gid := ids.NewGroupID(1, 1)
	t1, t2 := ids.NewThreadID(1, 1), ids.NewThreadID(2, 1)

	if err := g.Join(gid, t1); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("Join before Create err = %v, want ErrUnknownGroup", err)
	}
	g.Create(gid)
	if !g.Exists(gid) {
		t.Fatal("Exists = false after Create")
	}
	if err := g.Join(gid, t1); err != nil {
		t.Fatal(err)
	}
	if err := g.Join(gid, t2); err != nil {
		t.Fatal(err)
	}
	members, err := g.Members(gid)
	if err != nil || len(members) != 2 {
		t.Fatalf("Members = %v, %v", members, err)
	}
	if members[0] != t1 || members[1] != t2 {
		t.Fatalf("Members not sorted: %v", members)
	}
	if err := g.Leave(gid, t1); err != nil {
		t.Fatal(err)
	}
	if err := g.Leave(gid, t1); !errors.Is(err, ErrNotMember) {
		t.Fatalf("double Leave err = %v, want ErrNotMember", err)
	}
	if _, err := g.Members(ids.NewGroupID(9, 9)); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("Members of unknown group err = %v", err)
	}
}

func TestGroupsCreateIsIdempotent(t *testing.T) {
	g := NewGroups()
	gid := ids.NewGroupID(1, 1)
	g.Create(gid)
	if err := g.Join(gid, ids.NewThreadID(1, 1)); err != nil {
		t.Fatal(err)
	}
	g.Create(gid) // second create must not wipe membership
	members, _ := g.Members(gid)
	if len(members) != 1 {
		t.Fatal("Create wiped existing membership")
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		StatusRunning:    "running",
		StatusBlocked:    "blocked",
		StatusSuspended:  "suspended",
		StatusTerminated: "terminated",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: Clone then MergeFrom(clone) is identity for per-thread memory
// and handler depth.
func TestCloneMergeIdentityProperty(t *testing.T) {
	f := func(nHandlers uint8, slot string, data []byte) bool {
		a := NewAttributes(ids.NewThreadID(1, 1))
		for i := 0; i < int(nHandlers%16); i++ {
			a.Handlers.Push(event.HandlerRef{Event: event.Quit, Kind: event.KindProc, Proc: "p"})
		}
		if slot != "" {
			a.PerThread[slot] = data
		}
		before := a.Handlers.Len()
		a.MergeFrom(a.Clone())
		if a.Handlers.Len() != before {
			return false
		}
		if slot != "" && string(a.PerThread[slot]) != string(data) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
