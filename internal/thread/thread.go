// Package thread models the distributed logical threads of the DO/CT
// environment: thread attributes that travel with the thread across object
// and machine boundaries (§3.1 "Thread Contexts"), per-node thread control
// blocks with forwarding pointers (the basis of §7.1's path-following
// location strategy), and thread groups (after the V kernel's process
// groups).
//
// The execution machinery (activations, suspension, handler runs) lives in
// internal/core; this package holds the data that defines a thread's
// identity and context.
package thread

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
)

// TimerSpec is a periodic timer registration carried in thread attributes.
// When the thread moves to a new node, the kernel examines the attribute
// list and recreates the timer registration there (§6.2), so TIMER events
// chase the thread.
type TimerSpec struct {
	Event  event.Name
	Period time.Duration
}

// Attributes is the state that travels with a logical thread across every
// invocation, local or remote (§3.1: "the state of the control mechanism
// (the thread) is visible across all the procedures"). Attributes are
// copied into invocation requests and merged back from replies; they are
// never shared between activations.
type Attributes struct {
	// Thread is the owning thread's identity.
	Thread ids.ThreadID
	// Creator is the thread that spawned this one (NoThread for roots).
	Creator ids.ThreadID
	// App labels the application the thread belongs to. Objects are shared
	// by threads of unrelated applications (§3.1 Sharability); the label
	// makes that explicit in tests and experiments.
	App string
	// Group is the thread group the thread belongs to (NoGroup if none).
	Group ids.GroupID
	// IOChannel tags the thread's I/O connection (the paper's X-terminal
	// example): output from any object the thread enters goes to the same
	// channel without explicit redirection.
	IOChannel string
	// ConsistencyLabel carries the thread's consistency label [Chen 89].
	ConsistencyLabel string
	// Handlers is the LIFO chain of thread-based event handlers (§4.2).
	Handlers *event.Chain
	// Timers are periodic timer registrations recreated at each node the
	// thread visits (§6.2).
	Timers []TimerSpec
	// PerThread is the thread's per-thread memory area [Dasgupta 90]:
	// named slots visible in whatever object the thread executes.
	PerThread map[string][]byte
	// Version is the attribute version stamp, bumped by every kernel-level
	// mutation and re-stamped (node-salted, globally unique) whenever a
	// changed snapshot crosses the wire. The delta codec (delta.go) uses it
	// purely as a cache key — correctness never depends on a mutation
	// having bumped it, because deltas are computed by content diff and a
	// miss forces a full resync.
	Version uint64
}

// NewAttributes returns attributes for a fresh thread with an empty handler
// chain.
func NewAttributes(tid ids.ThreadID) *Attributes {
	return &Attributes{
		Thread:    tid,
		Handlers:  &event.Chain{},
		PerThread: make(map[string][]byte),
	}
}

// Clone returns a deep copy. Spawned threads inherit a clone of the
// parent's attributes (§6.3), and invocation requests carry clones so the
// callee's changes are isolated until the reply merges them back.
func (a *Attributes) Clone() *Attributes {
	na := *a
	if a.Handlers != nil {
		na.Handlers = a.Handlers.Clone()
	} else {
		na.Handlers = &event.Chain{}
	}
	na.Timers = make([]TimerSpec, len(a.Timers))
	copy(na.Timers, a.Timers)
	na.PerThread = make(map[string][]byte, len(a.PerThread))
	for k, v := range a.PerThread {
		nv := make([]byte, len(v))
		copy(nv, v)
		na.PerThread[k] = nv
	}
	return &na
}

// InheritFor returns the attributes a child spawned by this thread starts
// with: a clone re-keyed to the child, with the parent recorded as creator.
// Handler chain, group membership, timers, I/O channel and per-thread
// memory are all inherited, per §6.3.
func (a *Attributes) InheritFor(child ids.ThreadID) *Attributes {
	na := a.Clone()
	na.Thread = child
	na.Creator = a.Thread
	return na
}

// MergeFrom folds the attribute changes made by a callee activation back
// into the caller's copy when an invocation returns. Handler attachments,
// timer registrations and per-thread memory writes made downstream persist
// for the thread's lifetime, so the callee's view wins.
func (a *Attributes) MergeFrom(callee *Attributes) {
	if callee == nil {
		return
	}
	a.Handlers.Merge(callee.Handlers)
	a.Timers = make([]TimerSpec, len(callee.Timers))
	copy(a.Timers, callee.Timers)
	a.Group = callee.Group
	a.IOChannel = callee.IOChannel
	a.ConsistencyLabel = callee.ConsistencyLabel
	a.PerThread = make(map[string][]byte, len(callee.PerThread))
	for k, v := range callee.PerThread {
		nv := make([]byte, len(v))
		copy(nv, v)
		a.PerThread[k] = nv
	}
	// The callee's view wins for the version too: after the merge this copy
	// is content-identical to the callee's final snapshot, so it must carry
	// the same cache key.
	a.Version = callee.Version
}

// WireSize estimates the attributes' network footprint.
func (a *Attributes) WireSize() int {
	size := 64 + len(a.App) + len(a.IOChannel) + len(a.ConsistencyLabel)
	if a.Handlers != nil {
		size += 32 * a.Handlers.Len()
	}
	size += 16 * len(a.Timers)
	for k, v := range a.PerThread {
		size += len(k) + len(v)
	}
	return size
}

// AddTimer appends a timer registration (idempotent per event name: a
// second registration for the same event replaces the period).
func (a *Attributes) AddTimer(spec TimerSpec) {
	for i := range a.Timers {
		if a.Timers[i].Event == spec.Event {
			a.Timers[i].Period = spec.Period
			return
		}
	}
	a.Timers = append(a.Timers, spec)
}

// RemoveTimer drops the timer registration for name, reporting whether one
// existed.
func (a *Attributes) RemoveTimer(name event.Name) bool {
	for i := range a.Timers {
		if a.Timers[i].Event == name {
			a.Timers = append(a.Timers[:i], a.Timers[i+1:]...)
			return true
		}
	}
	return false
}

// Status describes what a thread's deepest activation is doing.
type Status int

const (
	// StatusRunning means the activation is executing user code.
	StatusRunning Status = iota + 1
	// StatusBlocked means the activation is blocked in a kernel operation
	// (remote invoke wait, lock wait, DSM fault, sleep, raise_and_wait).
	StatusBlocked
	// StatusSuspended means the thread is stopped for handler execution.
	StatusSuspended
	// StatusTerminated means the thread has been terminated.
	StatusTerminated
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusBlocked:
		return "blocked"
	case StatusSuspended:
		return "suspended"
	case StatusTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// TCB is one node's thread control block for a thread that is, or has been,
// present at the node. The forwarding pointer Next records where the thread
// went when it invoked off-node, which lets the path-following location
// strategy chase the thread from its root node (§7.1: "Starting with the
// root node, one can traverse the path of the thread, using information in
// the system's thread-control blocks").
type TCB struct {
	Thread ids.ThreadID
	// Here reports whether the thread's deepest activation is at this node.
	Here bool
	// Next is the node the thread most recently moved to from here
	// (NoNode when Here or when the thread returned and left no deeper
	// activation).
	Next ids.NodeID
	// Depth is the invocation depth of the deepest activation at this node.
	Depth int
	// Visits counts activations this node has hosted for the thread.
	Visits int
}

// Table is one node's TCB table. It is safe for concurrent use.
type Table struct {
	mu   sync.RWMutex
	tcbs map[ids.ThreadID]*TCB
}

// NewTable returns an empty TCB table.
func NewTable() *Table {
	return &Table{tcbs: make(map[ids.ThreadID]*TCB)}
}

// Arrive records that an activation of tid at the given depth started
// executing at this node.
func (t *Table) Arrive(tid ids.ThreadID, depth int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tcb, ok := t.tcbs[tid]
	if !ok {
		tcb = &TCB{Thread: tid}
		t.tcbs[tid] = tcb
	}
	tcb.Here = true
	tcb.Next = ids.NoNode
	tcb.Depth = depth
	tcb.Visits++
}

// Depart records that the thread left this node for next (a deeper remote
// invocation). The TCB stays behind as a forwarding pointer.
func (t *Table) Depart(tid ids.ThreadID, next ids.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tcb, ok := t.tcbs[tid]; ok {
		tcb.Here = false
		tcb.Next = next
	}
}

// Return records that a deeper remote invocation returned: the thread is
// executing here again.
func (t *Table) Return(tid ids.ThreadID, depth int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tcb, ok := t.tcbs[tid]; ok {
		tcb.Here = true
		tcb.Next = ids.NoNode
		tcb.Depth = depth
	}
}

// Remove drops the thread's TCB (activation finished and returned to its
// caller, or thread terminated).
func (t *Table) Remove(tid ids.ThreadID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.tcbs, tid)
}

// Lookup returns a copy of the thread's TCB at this node.
func (t *Table) Lookup(tid ids.ThreadID) (TCB, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tcb, ok := t.tcbs[tid]
	if !ok {
		return TCB{}, false
	}
	return *tcb, true
}

// Present reports whether the thread's deepest activation is at this node.
func (t *Table) Present(tid ids.ThreadID) bool {
	tcb, ok := t.Lookup(tid)
	return ok && tcb.Here
}

// Threads returns the identifiers with TCBs at this node, sorted.
func (t *Table) Threads() []ids.ThreadID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]ids.ThreadID, 0, len(t.tcbs))
	for tid := range t.tcbs {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clear drops every TCB at once. A node restarting after a crash calls it:
// the threads those TCBs tracked died with the node, and stale forwarding
// pointers would send post-restart probes chasing ghosts.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tcbs = make(map[ids.ThreadID]*TCB)
}

// Group errors.
var (
	ErrUnknownGroup = errors.New("thread: unknown group")
	ErrNotMember    = errors.New("thread: thread is not a group member")
)

// Groups is one node's thread-group directory. A group's membership list
// lives at the node that created the group (encoded in the GroupID); other
// nodes reach it through kernel messages. Groups is safe for concurrent
// use.
type Groups struct {
	mu     sync.RWMutex
	member map[ids.GroupID]map[ids.ThreadID]bool
}

// NewGroups returns an empty group directory.
func NewGroups() *Groups {
	return &Groups{member: make(map[ids.GroupID]map[ids.ThreadID]bool)}
}

// Create registers a new, empty group.
func (g *Groups) Create(gid ids.GroupID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.member[gid]; !ok {
		g.member[gid] = make(map[ids.ThreadID]bool)
	}
}

// Join adds tid to gid.
func (g *Groups) Join(gid ids.GroupID, tid ids.ThreadID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.member[gid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, gid)
	}
	m[tid] = true
	return nil
}

// Leave removes tid from gid.
func (g *Groups) Leave(gid ids.GroupID, tid ids.ThreadID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.member[gid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, gid)
	}
	if !m[tid] {
		return fmt.Errorf("%w: %v in %v", ErrNotMember, tid, gid)
	}
	delete(m, tid)
	return nil
}

// Members returns gid's members, sorted.
func (g *Groups) Members(gid ids.GroupID) ([]ids.ThreadID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	m, ok := g.member[gid]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, gid)
	}
	out := make([]ids.ThreadID, 0, len(m))
	for tid := range m {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Exists reports whether gid is registered here.
func (g *Groups) Exists(gid ids.GroupID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.member[gid]
	return ok
}
