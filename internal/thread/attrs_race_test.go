package thread

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
)

// These tests pin the aliasing discipline the delta codec leans on: every
// snapshot the wire layer retains (the caller's per-peer base, the callee's
// arrival copy, the cached reply) must share no mutable state with the live
// attributes an activation keeps editing. Run them under -race — the
// failure mode they guard against is a data race, not a wrong value.

// TestMergeFromConcurrentCalleeMutations merges a retained snapshot into
// the caller while the callee's live attributes keep changing, the exact
// overlap the delta protocol produces: the caller processes a reply built
// from an earlier snapshot while the callee's thread has already moved on.
func TestMergeFromConcurrentCalleeMutations(t *testing.T) {
	caller := NewAttributes(ids.ThreadID(1))
	caller.Handlers.Push(event.HandlerRef{Event: "E", Kind: event.KindProc, Proc: "p0"})

	live := caller.Clone() // the callee's working copy
	snap := live.Clone()   // the quiescent snapshot the reply carries

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			live.PerThread[fmt.Sprintf("k%d", i%7)] = []byte{byte(i)}
			live.Handlers.Push(event.HandlerRef{Event: "E", Kind: event.KindProc, Proc: "p"})
			live.Handlers.Remove("E")
			live.AddTimer(TimerSpec{Event: "TICK", Period: time.Duration(i+1) * time.Millisecond})
			live.IOChannel = fmt.Sprintf("chan-%d", i)
		}
	}()
	for i := 0; i < 200; i++ {
		caller.MergeFrom(snap)
		if d := DiffAttrs(snap, caller); !d.Unchanged() {
			t.Fatalf("iteration %d: merged caller drifted from the snapshot: %+v", i, d)
		}
	}
	wg.Wait()
}

// TestInheritForConcurrentSpawns inherits from one parent on many
// goroutines at once — a spawn fan-out — with each child mutated freely.
// The parent must come through byte-identical.
func TestInheritForConcurrentSpawns(t *testing.T) {
	parent := NewAttributes(ids.ThreadID(1))
	parent.App = "fanout"
	parent.Handlers.Push(event.HandlerRef{Event: "E", Kind: event.KindProc, Proc: "p0"})
	parent.PerThread["seed"] = []byte{1, 2, 3}
	before := parent.Clone()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				child := parent.InheritFor(ids.ThreadID(100 + g))
				if child.Creator != parent.Thread {
					t.Errorf("child creator = %v, want %v", child.Creator, parent.Thread)
					return
				}
				child.PerThread["seed"][0] = byte(g)
				child.PerThread["own"] = []byte{byte(i)}
				child.Handlers.Push(event.HandlerRef{Event: "E", Kind: event.KindProc, Proc: "pg"})
			}
		}()
	}
	wg.Wait()
	if d := DiffAttrs(before, parent); !d.Unchanged() {
		t.Fatalf("parent mutated by concurrent inherits: %+v", d)
	}
}

// TestMergeFromEmptyChain: a callee that popped every handler wins the
// merge — the caller's chain empties too (the callee's view is the
// thread's view), and the rest of the attributes follow the callee.
func TestMergeFromEmptyChain(t *testing.T) {
	caller := NewAttributes(ids.ThreadID(1))
	caller.Handlers.Push(event.HandlerRef{Event: "E", Kind: event.KindProc, Proc: "p0"})
	caller.PerThread["k"] = []byte{1}

	callee := caller.Clone()
	if !callee.Handlers.Remove("E") {
		t.Fatal("setup: handler not removed")
	}
	delete(callee.PerThread, "k")
	callee.Version = 99

	caller.MergeFrom(callee)
	if caller.Handlers.Len() != 0 {
		t.Errorf("caller chain length = %d after empty-chain merge, want 0", caller.Handlers.Len())
	}
	if _, ok := caller.PerThread["k"]; ok {
		t.Error("per-thread slot survived a merge that deleted it")
	}
	if caller.Version != 99 {
		t.Errorf("caller version = %d, want the callee's 99", caller.Version)
	}
	// Merging an empty callee must still leave no sharing behind.
	callee.PerThread["later"] = []byte{7}
	if _, ok := caller.PerThread["later"]; ok {
		t.Error("caller sees callee writes after merge: maps are shared")
	}
}
