package thread

import (
	"bytes"

	"repro/internal/event"
	"repro/internal/ids"
)

// Delta is the wire form of an attribute change set: everything a receiver
// needs to reconstruct a thread's current attributes from a base snapshot
// it already holds. The paper's §3.1 cost — attributes "travel with the
// thread" on every invocation — is mostly re-shipping state the receiver
// saw on the previous hop; a Delta ships only the edit.
//
// The chain edit exploits the LIFO discipline of §4.2: attachments push and
// detachments pop, so any two chain states of one thread differ as "keep a
// prefix of the old chain, then push a new tail". Timers, labels and
// per-thread memory are small and diffed field-wise.
//
// A Delta never trusts the sender and receiver to agree by construction:
// Base names the exact snapshot version the receiver must hold, and a
// receiver that does not hold it rejects the delta, forcing the sender into
// a full resync. Version stamps are node-salted and freshly allocated for
// every changed snapshot, so one version never names two different
// contents.
type Delta struct {
	// Thread is the owning thread; cache entries are keyed (Thread, version).
	Thread ids.ThreadID
	// Base is the snapshot version this delta applies against.
	Base uint64
	// Version is the snapshot version after applying. Equal to Base when
	// the delta is empty (nothing changed since the base was exchanged).
	Version uint64

	// ChainKeep is how many of the base chain's oldest links survive;
	// ChainPush is the new LIFO tail pushed after them.
	ChainKeep int
	ChainPush []event.HandlerRef

	// TimersChanged gates Timers (nil and "no timers" are both valid states).
	TimersChanged bool
	Timers        []TimerSpec

	// LabelsChanged gates the three scalar labels below.
	LabelsChanged    bool
	Group            ids.GroupID
	IOChannel        string
	ConsistencyLabel string

	// PTSet holds added or rewritten per-thread memory slots; PTDel lists
	// removed slot names.
	PTSet map[string][]byte
	PTDel []string

	// unchanged is set by DiffAttrs when base and current are content-equal.
	// It never crosses a real wire (the fabric passes Go values), so it is
	// unexported and charged zero bytes.
	unchanged bool
}

// Unchanged reports whether the delta carries no edits at all.
func (d *Delta) Unchanged() bool { return d.unchanged }

// WireSize charges the delta header plus every carried edit.
func (d *Delta) WireSize() int {
	size := 40 // thread id + two versions + keep count + flag bits
	size += 32 * len(d.ChainPush)
	size += 16 * len(d.Timers)
	if d.LabelsChanged {
		size += 8 + len(d.IOChannel) + len(d.ConsistencyLabel)
	}
	for k, v := range d.PTSet {
		size += len(k) + len(v)
	}
	for _, k := range d.PTDel {
		size += len(k)
	}
	return size
}

// DiffAttrs computes the delta that rewrites base into cur. Both snapshots
// must belong to the same thread; base is the state the receiver holds
// (identified by base.Version), cur is the sender's current state. The
// returned delta's Version is Base when nothing changed and zero otherwise
// — the caller stamps a fresh unique version before shipping a changed
// delta.
func DiffAttrs(base, cur *Attributes) *Delta {
	d := &Delta{Thread: cur.Thread, Base: base.Version}

	bl, cl := base.Handlers.Links(), cur.Handlers.Links()
	keep := 0
	for keep < len(bl) && keep < len(cl) && bl[keep].Equal(cl[keep]) {
		keep++
	}
	d.ChainKeep = keep
	for _, l := range cl[keep:] {
		d.ChainPush = append(d.ChainPush, l.CloneData())
	}
	chainChanged := keep != len(bl) || len(d.ChainPush) > 0

	if !timersEqual(base.Timers, cur.Timers) {
		d.TimersChanged = true
		d.Timers = make([]TimerSpec, len(cur.Timers))
		copy(d.Timers, cur.Timers)
	}

	if base.Group != cur.Group || base.IOChannel != cur.IOChannel ||
		base.ConsistencyLabel != cur.ConsistencyLabel {
		d.LabelsChanged = true
		d.Group = cur.Group
		d.IOChannel = cur.IOChannel
		d.ConsistencyLabel = cur.ConsistencyLabel
	}

	for k, v := range cur.PerThread {
		if bv, ok := base.PerThread[k]; !ok || !bytes.Equal(bv, v) {
			if d.PTSet == nil {
				d.PTSet = make(map[string][]byte)
			}
			nv := make([]byte, len(v))
			copy(nv, v)
			d.PTSet[k] = nv
		}
	}
	for k := range base.PerThread {
		if _, ok := cur.PerThread[k]; !ok {
			d.PTDel = append(d.PTDel, k)
		}
	}

	if !chainChanged && !d.TimersChanged && !d.LabelsChanged &&
		len(d.PTSet) == 0 && len(d.PTDel) == 0 {
		d.unchanged = true
		d.Version = d.Base
	}
	return d
}

// Apply reconstructs the current attributes from the base snapshot the
// delta was diffed against. The base is treated as immutable: the result is
// a fresh deep copy, sharing nothing mutable with it.
func (d *Delta) Apply(base *Attributes) *Attributes {
	na := base.Clone()
	na.Thread = d.Thread
	na.Version = d.Version
	if d.unchanged {
		return na
	}
	chain := base.Handlers.Prefix(d.ChainKeep)
	for _, l := range d.ChainPush {
		chain.Push(l.CloneData())
	}
	na.Handlers = chain
	if d.TimersChanged {
		na.Timers = make([]TimerSpec, len(d.Timers))
		copy(na.Timers, d.Timers)
	}
	if d.LabelsChanged {
		na.Group = d.Group
		na.IOChannel = d.IOChannel
		na.ConsistencyLabel = d.ConsistencyLabel
	}
	for k, v := range d.PTSet {
		nv := make([]byte, len(v))
		copy(nv, v)
		na.PerThread[k] = nv
	}
	for _, k := range d.PTDel {
		delete(na.PerThread, k)
	}
	return na
}

func timersEqual(a, b []TimerSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
