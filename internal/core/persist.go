package core

import (
	"errors"
	"fmt"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

// ObjectImage is the passive representation of an object: its persistent
// segment contents plus its volatile state snapshot. Objects in the DO/CT
// model "are persistent by nature and may exist passively" (§2, §3.1);
// passivation captures that passive form so the object can be deactivated
// and later reactivated — on any node.
type ObjectImage struct {
	Name string
	Data []byte
	KV   map[string]any
}

// WireSize charges the segment contents.
func (img ObjectImage) WireSize() int {
	size := 32 + len(img.Name) + len(img.Data)
	for k := range img.KV {
		size += len(k) + 16
	}
	return size
}

// Passivate captures the object's passive image and removes it from its
// home node (after posting DELETE so its handler can clean up). The
// returned image can be handed to Activate.
func (s *System) Passivate(oid ids.ObjectID) (ObjectImage, error) {
	k, err := s.Kernel(oid.Home())
	if err != nil {
		return ObjectImage{}, err
	}
	obj, err := k.store.Lookup(oid)
	if err != nil {
		return ObjectImage{}, err
	}
	data, err := k.dsm.Read(obj.Segment(), 0, obj.DataSize())
	if err != nil {
		return ObjectImage{}, fmt.Errorf("passivate %v: read segment: %w", oid, err)
	}
	img := ObjectImage{
		Name: obj.Name(),
		Data: data,
		KV:   obj.SnapshotKV(),
	}
	// Deactivate: DELETE gives the object's handler its cleanup chance,
	// then the resident copy goes away.
	if _, err := s.RaiseAndWait(oid.Home(), event.Delete, event.ToObject(oid), nil); err != nil &&
		!errors.Is(err, ErrUnhandledSync) {
		return ObjectImage{}, fmt.Errorf("passivate %v: delete: %w", oid, err)
	}
	return img, nil
}

// Activate reconstructs a passivated object at node from its image and
// spec (code is loadable everywhere; the image carries the state). It
// returns the reactivated object's new identity.
func (s *System) Activate(node ids.NodeID, spec object.Spec, img ObjectImage) (ids.ObjectID, error) {
	if spec.DataSize == 0 {
		spec.DataSize = len(img.Data)
	}
	if len(img.Data) > spec.DataSize {
		return ids.NoObject, fmt.Errorf("core: image data (%d B) exceeds spec size (%d B)", len(img.Data), spec.DataSize)
	}
	k, err := s.Kernel(node)
	if err != nil {
		return ids.NoObject, err
	}
	oid, err := k.createObject(spec)
	if err != nil {
		return ids.NoObject, err
	}
	obj, err := k.store.Lookup(oid)
	if err != nil {
		return ids.NoObject, err
	}
	if len(img.Data) > 0 {
		if err := k.dsm.Write(obj.Segment(), 0, img.Data); err != nil {
			return ids.NoObject, fmt.Errorf("activate %v: restore segment: %w", oid, err)
		}
	}
	obj.RestoreKV(img.KV)
	return oid, nil
}
