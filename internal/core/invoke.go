package core

import (
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/thread"
	"repro/internal/trace"
)

// invokeReq ships an invocation to the object's home node. The thread's
// attributes travel with the request (§3.1: the state of the thread is
// visible across all invocations) — as a full snapshot in Attrs on first
// contact (or legacy mode, or resync), or as a Delta against the snapshot
// the callee already caches. Exactly one of Attrs/Delta is set.
type invokeReq struct {
	TID   ids.ThreadID
	Attrs *thread.Attributes
	Delta *thread.Delta
	Obj   ids.ObjectID
	Entry string
	Args  []any
	Depth int
}

// WireSize charges the attribute encoding plus a rough argument estimate.
func (r invokeReq) WireSize() int {
	size := 48 + len(r.Entry)
	if r.Attrs != nil {
		size += r.Attrs.WireSize()
	}
	if r.Delta != nil {
		size += r.Delta.WireSize()
	}
	for _, a := range r.Args {
		size += argSize(a)
	}
	return size
}

// invokeReply returns results and the callee's view of the attributes so
// handler attachments made downstream persist (§4.1). Replies always fit a
// Delta in delta mode: the caller necessarily holds the base — it is the
// snapshot it just sent.
type invokeReply struct {
	Results []any
	Attrs   *thread.Attributes
	Delta   *thread.Delta
	// AppErr is the entry's own error return; kernel-level failures
	// (termination, abort) travel as the RPC error instead.
	AppErr error
}

// WireSize charges the attribute encoding plus a rough result estimate.
func (r invokeReply) WireSize() int {
	size := 48
	if r.Attrs != nil {
		size += r.Attrs.WireSize()
	}
	if r.Delta != nil {
		size += r.Delta.WireSize()
	}
	for _, a := range r.Results {
		size += argSize(a)
	}
	return size
}

func argSize(a any) int {
	switch v := a.(type) {
	case []byte:
		return len(v)
	case string:
		return len(v)
	default:
		return 16
	}
}

// invoke moves the calling thread into obj's entry (§2). Invocation
// boundaries are interruption points unless the call comes from handler
// code running on a suspended thread.
func (k *Kernel) invoke(a *activation, oid ids.ObjectID, entry string, args []any, inHandler bool) ([]any, error) {
	if !inHandler {
		k.processPending(a, false)
	}
	if err := a.stopped(); err != nil {
		return nil, err
	}
	home := oid.Home()
	if home == k.node {
		return k.invokeLocal(a, oid, entry, args, inHandler)
	}
	if k.sys.cfg.Mode == ModeDSM {
		return k.invokeDSM(a, oid, entry, args, inHandler)
	}
	return k.invokeRemote(a, oid, entry, args, home, inHandler)
}

// invokeLocal runs the entry in this node's resident object on the calling
// activation, pushing a frame (a local procedure call across an object
// boundary).
func (k *Kernel) invokeLocal(a *activation, oid ids.ObjectID, entry string, args []any, inHandler bool) ([]any, error) {
	obj, err := k.store.Lookup(oid)
	if err != nil {
		return nil, err
	}
	k.sys.reg.Inc(metrics.CtrInvokeLocal)
	return k.runFrame(a, obj, entry, args, inHandler)
}

// invokeDSM runs the entry at the caller's node; the object's persistent
// pages are faulted over by the DSM layer as the entry touches them (§2:
// invocation over distributed shared memory).
func (k *Kernel) invokeDSM(a *activation, oid ids.ObjectID, entry string, args []any, inHandler bool) ([]any, error) {
	obj, err := k.sys.LookupObject(oid)
	if err != nil {
		return nil, err
	}
	k.sys.reg.Inc(metrics.CtrInvokeDSM)
	return k.runFrame(a, obj, entry, args, inHandler)
}

// runFrame executes one entry on the activation with a frame pushed.
func (k *Kernel) runFrame(a *activation, obj *object.Object, entry string, args []any, inHandler bool) ([]any, error) {
	if obj.Deleted() {
		return nil, fmt.Errorf("%w: %v", object.ErrDeleted, obj.ID())
	}
	e, ok := obj.Entry(entry)
	if !ok {
		return nil, fmt.Errorf("%w: %v.%s", object.ErrUnknownEntry, obj.ID(), entry)
	}
	a.mu.Lock()
	a.frames = append(a.frames, frame{obj: obj, entry: entry})
	a.mu.Unlock()

	ctx := a.ctx()
	if inHandler {
		ctx = a.handlerCtx()
	}
	res, appErr := e(ctx, args)

	a.mu.Lock()
	a.frames = a.frames[:len(a.frames)-1]
	a.mu.Unlock()

	// Invocation return is an interruption point.
	if !inHandler {
		k.processPending(a, false)
	}
	if err := a.stopped(); err != nil {
		return nil, err
	}
	return res, appErr
}

// invokeRemote ships the invocation to the object's home node: the same
// logical thread continues there as a new activation, and this activation
// blocks with a forwarding pointer in the TCB (§7.1).
func (k *Kernel) invokeRemote(a *activation, oid ids.ObjectID, entry string, args []any, home ids.NodeID, inHandler bool) ([]any, error) {
	k.sys.reg.Inc(metrics.CtrInvokeRemote)
	k.sys.reg.Inc(metrics.CtrThreadHop)
	k.sys.tr.Add(trace.Record{
		Kind: trace.KindHop, Node: k.node, Thread: a.tid,
		Target: home.String(), Detail: oid.String() + "." + entry,
	})

	a.mu.Lock()
	snapshot := a.attrs.Clone()
	depth := a.baseDepth + len(a.frames)
	a.childNode = home
	a.childObj = oid
	a.status = thread.StatusBlocked
	a.blockedOn = "invoke:" + oid.String()
	a.mu.Unlock()

	a.stopTimers()
	if !a.system {
		k.tcbs.Depart(a.tid, home)
		if k.sys.cfg.TrackMulticast {
			// The tracking group follows the thread's current node (§7.1's
			// "sophisticated thread-management system").
			k.sys.fabric.LeaveGroup(locate.GroupName(a.tid), k.node)
		}
	}

	full, delta := k.sendAttrs(a, home, snapshot)
	body, callErr := k.call(home, kindInvoke, invokeReq{
		TID: a.tid, Attrs: full, Delta: delta, Obj: oid, Entry: entry, Args: args, Depth: depth,
	})
	if delta != nil && errors.Is(callErr, errAttrResync) {
		// The callee evicted (or lost, on restart) our base snapshot. One
		// full-snapshot retry is idempotent: a callee rejects an
		// unresolvable delta before any part of the invocation executes.
		snapshot.Version = k.stampVersion()
		k.sys.reg.Inc(metrics.CtrAttrFullSent)
		body, callErr = k.call(home, kindInvoke, invokeReq{
			TID: a.tid, Attrs: snapshot, Obj: oid, Entry: entry, Args: args, Depth: depth,
		})
	}

	if !a.system {
		k.tcbs.Return(a.tid, a.baseDepth)
		if k.sys.cfg.TrackMulticast {
			k.sys.fabric.JoinGroup(locate.GroupName(a.tid), k.node)
		}
		// The thread's deepest activation is current here again; tell its
		// residency directory (departures are not published — the callee's
		// own arrival supersedes, and a conditional remove cannot beat it).
		k.dirPublish(a.tid, false)
	}
	a.mu.Lock()
	a.childNode = ids.NoNode
	a.childObj = ids.NoObject
	a.status = thread.StatusRunning
	a.blockedOn = ""
	a.mu.Unlock()
	a.startTimers()

	if callErr != nil {
		// Termination or abort of the deeper activation kills this one
		// too: the unwind travels up the invocation chain.
		if errors.Is(callErr, ErrTerminated) {
			a.stop(ErrTerminated)
		} else if errors.Is(callErr, ErrAborted) {
			a.stop(ErrAborted)
		}
		if err := a.stopped(); err != nil {
			return nil, err
		}
		return nil, callErr
	}
	rep, ok := body.(invokeReply)
	if !ok {
		return nil, fmt.Errorf("core: invoke reply %T", body)
	}
	// Fold the callee's attribute changes back into the thread (§4.1:
	// handlers attached downstream remain active for the thread). A delta
	// reply resolves against the snapshot we just sent.
	final := rep.Attrs
	if rep.Delta != nil {
		final = rep.Delta.Apply(snapshot)
	}
	a.mu.Lock()
	a.attrs.MergeFrom(final)
	a.mu.Unlock()
	if !k.sys.cfg.Wire.FullAttrs {
		// final is immutable from here on (MergeFrom deep-copied it), so it
		// can serve as the diff base for the next hop to this peer.
		a.retainRemoteBase(home, final)
	}

	if !inHandler {
		k.processPending(a, false)
	}
	if err := a.stopped(); err != nil {
		return nil, err
	}
	return rep.Results, rep.AppErr
}

// serveInvoke hosts the remote leg of an invocation: a new activation of
// the travelling thread at this node.
func (k *Kernel) serveInvoke(req invokeReq) (any, error) {
	// Resolve the arriving attribute encoding before anything executes: a
	// delta whose base snapshot is not cached here is rejected up front, so
	// the caller's single full-snapshot retry is idempotent.
	arrived := req.Attrs
	if req.Delta != nil {
		base := k.attrCache.Get(attrKey(req.TID, req.Delta.Base))
		if base == nil {
			k.sys.reg.Inc(metrics.CtrAttrResync)
			return nil, errAttrResync
		}
		arrived = req.Delta.Apply(base)
	}
	attrs := arrived
	deltaMode := !k.sys.cfg.Wire.FullAttrs
	if deltaMode {
		// Retain the pristine arrival as an immutable snapshot — it is the
		// diff base for the reply and for the caller's next hop here — and
		// hand the activation a private copy to mutate.
		k.attrCache.Put(attrKey(req.TID, arrived.Version), arrived)
		attrs = arrived.Clone()
	}
	a := newActivation(k, attrs, req.Depth)
	k.pushAct(a)
	a.startTimers()

	obj, err := k.store.Lookup(req.Obj)
	var (
		res    []any
		appErr error
	)
	if err != nil {
		appErr = err
	} else {
		res, appErr = k.runFrame(a, obj, req.Entry, req.Args, false)
	}

	stopErr := a.stopped()
	if stopErr == nil {
		// Normal return: the logical thread continues at the caller's
		// node. Events that raced into this activation's queue are
		// rerouted there, not death-noticed — the thread is not dead.
		pending := a.depart()
		k.popAct(a)
		k.reroutePending(a.tid, pending)
	} else {
		// Terminated or aborted: the thread really is unwinding; pending
		// events get the §7.2 death-notice treatment. Its snapshots will
		// never be diff bases again, so stop squatting on cache slots.
		a.finish()
		k.popAct(a)
		k.attrCache.DropThread(a.tid)
	}

	if stopErr != nil {
		return nil, stopErr
	}
	if appErr != nil && (errors.Is(appErr, ErrTerminated) || errors.Is(appErr, ErrAborted)) {
		return nil, appErr
	}
	if !deltaMode {
		k.sys.reg.Inc(metrics.CtrAttrFullSent)
		return invokeReply{Results: res, Attrs: a.attrs, AppErr: appErr}, nil
	}
	// Reply with a delta against the arrival — the caller necessarily holds
	// that base, so a reply never needs a resync. A changed final snapshot
	// gets a fresh stamp and is cached for the caller's next hop here.
	d := thread.DiffAttrs(arrived, a.attrs)
	if !d.Unchanged() {
		d.Version = k.stampVersion()
		final := a.attrs.Clone()
		final.Version = d.Version
		k.attrCache.Put(attrKey(req.TID, d.Version), final)
	}
	k.sys.reg.Inc(metrics.CtrAttrDeltaSent)
	return invokeReply{Results: res, Delta: d, AppErr: appErr}, nil
}

// invokeAsync spawns a fresh thread, rooted at this node, that invokes the
// entry and runs to completion unclaimed (§7.1's asynchronous invocations).
// The child inherits the parent's attributes (§6.3).
func (k *Kernel) invokeAsync(a *activation, oid ids.ObjectID, entry string, args []any) (ids.ThreadID, error) {
	tid := k.gen.NextThread()
	a.mu.Lock()
	attrs := a.attrs.InheritFor(tid)
	group := attrs.Group
	a.mu.Unlock()
	// The child joins the parent's thread group so group-addressed events
	// (e.g. the QUIT of §6.3) reach it.
	if group.IsValid() {
		if err := k.groupJoin(group, tid, false); err != nil {
			return ids.NoThread, fmt.Errorf("join inherited group: %w", err)
		}
	}
	if _, err := k.startThread(attrs, oid, entry, args); err != nil {
		return ids.NoThread, err
	}
	return tid, nil
}

// groupJoin adds or removes a thread in a group's membership list at its
// directory node.
func (k *Kernel) groupJoin(gid ids.GroupID, tid ids.ThreadID, leave bool) error {
	if gid.Directory() == k.node {
		if leave {
			return k.groups.Leave(gid, tid)
		}
		return k.groups.Join(gid, tid)
	}
	_, err := k.call(gid.Directory(), kindGroupJoin, groupJoinReq{Group: gid, Thread: tid, Leave: leave})
	return err
}

// groupMembers fetches a group's membership from its directory node.
func (k *Kernel) groupMembers(gid ids.GroupID) ([]ids.ThreadID, error) {
	if gid.Directory() == k.node {
		return k.groups.Members(gid)
	}
	body, err := k.call(gid.Directory(), kindGroupMembers, gid)
	if err != nil {
		return nil, err
	}
	members, ok := body.([]ids.ThreadID)
	if !ok {
		return nil, fmt.Errorf("core: group.members reply %T", body)
	}
	return members, nil
}
