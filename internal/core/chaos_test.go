package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/locks"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/testutil"
)

// ftConfig is the chaos-suite base configuration: a fast failure detector
// so tests don't wait out production-scale suspicion windows.
func ftConfig(nodes int) Config {
	return Config{
		Nodes:       nodes,
		CallTimeout: 4 * time.Second,
		FT: FTConfig{
			Enabled: true,
			// The suspicion window must tolerate scheduler starvation: the
			// suite runs many test binaries in parallel and these tests use
			// the real clock, so a tight window makes membership flap on a
			// loaded (or single-CPU) machine and reconvergence waits time
			// out. 15× the heartbeat period rides out multi-beat stalls.
			HeartbeatPeriod: 10 * time.Millisecond,
			SuspectAfter:    150 * time.Millisecond,
		},
	}
}

// TestChaosExactlyOnce raises events across an 8-node cluster whose fabric
// loses messages, and checks every handler ran exactly once: the reliable
// envelope re-sends until acked (no event lost) and the receive window
// drops the retransmitted duplicates (no event doubled).
func TestChaosExactlyOnce(t *testing.T) {
	for _, dropRate := range []float64{0.01, 0.1} {
		t.Run(fmt.Sprintf("drop=%v", dropRate), func(t *testing.T) {
			sys := newSystem(t, ftConfig(8))
			var handled atomic.Int64
			sink, err := sys.CreateObject(1, object.Spec{
				Name: "sink",
				Handlers: map[event.Name]object.Handler{
					event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
						handled.Add(1)
						return event.VerdictResume
					},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			sys.SetDropRate(dropRate)

			const raisers, perRaiser = 4, 10
			var wg sync.WaitGroup
			var raiseErrs atomic.Int64
			for r := 0; r < raisers; r++ {
				node := ids.NodeID(2 + r) // all remote to the sink's node
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perRaiser; i++ {
						if err := sys.Raise(node, event.Interrupt, event.ToObject(sink), nil); err != nil {
							raiseErrs.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			sys.SetDropRate(0)
			if n := raiseErrs.Load(); n != 0 {
				t.Fatalf("%d of %d raises failed", n, raisers*perRaiser)
			}

			const want = raisers * perRaiser
			testutil.WaitFor(t, "all handlers to run", func() bool { return handled.Load() >= want })
			// Straggler retransmits must not double-run any handler.
			time.Sleep(100 * time.Millisecond)
			if got := handled.Load(); got != want {
				t.Errorf("handler ran %d times for %d raises, want exactly once each", got, want)
			}
			if dropRate >= 0.1 {
				if retries := sys.Metrics().Snapshot().Get(metrics.CtrRelRetry); retries == 0 {
					t.Error("no retransmissions at 10% drop — the loss path was not exercised")
				}
			}
		})
	}
}

// TestChaosParallelDispatchExactlyOnce is TestChaosExactlyOnce with the
// sender-sharded dispatch pool enabled: four dispatch workers per endpoint,
// 10% loss, retransmits and duplicate suppression all racing across shards.
// Run under -race (make chaos does) it proves the parallel path keeps the
// exactly-once guarantee and is crash-consistent with concurrent delivery.
func TestChaosParallelDispatchExactlyOnce(t *testing.T) {
	cfg := ftConfig(8)
	cfg.DispatchWorkers = 4
	sys := newSystem(t, cfg)
	if got := sys.fabric.DispatchWorkers(); got != 4 {
		t.Fatalf("fabric running %d dispatch workers, want 4", got)
	}
	var handled atomic.Int64
	sink, err := sys.CreateObject(1, object.Spec{
		Name: "sink",
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				handled.Add(1)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetDropRate(0.1)

	const raisers, perRaiser = 6, 10
	var wg sync.WaitGroup
	var raiseErrs atomic.Int64
	for r := 0; r < raisers; r++ {
		node := ids.NodeID(2 + r) // all remote to the sink's node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perRaiser; i++ {
				if err := sys.Raise(node, event.Interrupt, event.ToObject(sink), nil); err != nil {
					raiseErrs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	sys.SetDropRate(0)
	if n := raiseErrs.Load(); n != 0 {
		t.Fatalf("%d of %d raises failed", n, raisers*perRaiser)
	}

	const want = raisers * perRaiser
	testutil.WaitFor(t, "all handlers to run", func() bool { return handled.Load() >= want })
	// Straggler retransmits must not double-run any handler — duplicate
	// windows are per-sender, and with sharded dispatch a retransmit can
	// race the original on a different worker only if sharding is broken.
	time.Sleep(100 * time.Millisecond)
	if got := handled.Load(); got != want {
		t.Errorf("handler ran %d times for %d raises, want exactly once each", got, want)
	}
}

// TestChaosPartitionHeal partitions a cluster using multicast tracking
// groups, checks a synchronous raise across the cut fails promptly with a
// typed error, then heals and checks the tracking-group machinery
// reconverges: membership recovers and a group raise reaches every member.
func TestChaosPartitionHeal(t *testing.T) {
	cfg := ftConfig(4)
	cfg.Locator = locate.Multicast{}
	cfg.TrackMulticast = true
	cfg.RaiseTimeout = 300 * time.Millisecond
	sys := newSystem(t, cfg)

	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"ph": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}

	gidCh := make(chan ids.GroupID, 1)
	ready := make(chan ids.ThreadID, 3)
	spec := object.Spec{
		Name: "member",
		Entries: map[string]object.Entry{
			"lead": func(ctx object.Ctx, _ []any) ([]any, error) {
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.Interrupt, Kind: event.KindProc, Proc: "ph"}); err != nil {
					return nil, err
				}
				gidCh <- gid
				ready <- ctx.Thread()
				return nil, ctx.Sleep(8 * time.Second)
			},
			"follow": func(ctx object.Ctx, args []any) ([]any, error) {
				if err := ctx.JoinGroup(args[0].(ids.GroupID)); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.Interrupt, Kind: event.KindProc, Proc: "ph"}); err != nil {
					return nil, err
				}
				ready <- ctx.Thread()
				return nil, ctx.Sleep(8 * time.Second)
			},
		},
	}
	objs := map[ids.NodeID]ids.ObjectID{}
	for _, n := range []ids.NodeID{1, 2, 4} {
		oid, err := sys.CreateObject(n, spec)
		if err != nil {
			t.Fatal(err)
		}
		objs[n] = oid
	}
	if _, err := sys.Spawn(1, objs[1], "lead"); err != nil {
		t.Fatal(err)
	}
	gid := <-gidCh
	for _, n := range []ids.NodeID{2, 4} {
		if _, err := sys.Spawn(n, objs[n], "follow", gid); err != nil {
			t.Fatal(err)
		}
	}
	var farTID ids.ThreadID
	tids := []ids.ThreadID{<-ready, <-ready, <-ready}
	for _, tid := range tids {
		if tid.Root() == 4 {
			farTID = tid
		}
	}
	if !farTID.IsValid() {
		t.Fatalf("no member rooted on node 4 among %v", tids)
	}

	sys.Partition([]ids.NodeID{1, 2}, []ids.NodeID{3, 4})

	// A synchronous raise across the cut must fail with a typed error
	// within the raise timeout, not hang for the call timeout (or forever).
	start := time.Now()
	_, err := sys.RaiseAndWait(1, event.Interrupt, event.ToThread(farTID), nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("RaiseAndWait across the partition succeeded, want error")
	}
	if !errors.Is(err, ErrRaiseTimeout) && !errors.Is(err, ErrThreadNotFound) && !errors.Is(err, ErrNodeDown) {
		t.Errorf("RaiseAndWait err = %v, want a typed raise/locate/node failure", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("RaiseAndWait took %v, want prompt failure near the 300ms raise timeout", elapsed)
	}

	sys.HealAll()
	testutil.WaitFor(t, "membership to reconverge", func() bool {
		return len(sys.Membership().Suspected) == 0
	})
	// The abandoned cross-cut raise can still straggle in right after the
	// heal: its retry ladder (2→50 ms over ten attempts, ~310 ms) outlives
	// the 300 ms raise timeout, and a partition this brief may end before
	// the failure detector dead-letters the send. Wait out that horizon so
	// the group-raise audit below counts only its own deliveries.
	time.Sleep(400 * time.Millisecond)

	// The multicast tracking groups survived the partition: a group raise
	// now reaches every member, including the one across the healed cut.
	handled.Store(0)
	if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToGroup(gid), nil); err != nil {
		t.Fatalf("group RaiseAndWait after heal: %v", err)
	}
	if got := handled.Load(); got != 3 {
		t.Errorf("group raise after heal reached %d members, want 3", got)
	}
}

// TestChaosCrashRecovery crashes a node mid-workload and checks every
// recovery path: blocked cross-node waiters unblock promptly with a typed
// error, locks held by threads lost with the node are reclaimed, resident
// objects are recoverable onto a survivor with state intact, and a restart
// rejoins the membership and serves new work.
func TestChaosCrashRecovery(t *testing.T) {
	sys := newSystem(t, ftConfig(8))

	// Lock server on node 1; a worker rooted on node 8 takes a lock and
	// then sleeps (it will die with its node, lock still held).
	server, err := sys.CreateObject(1, locks.ServerSpec("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	if err := locks.Register(sys); err != nil {
		t.Fatal(err)
	}
	locked := make(chan struct{})
	grabber, err := sys.CreateObject(8, object.Spec{
		Name: "grabber",
		Entries: map[string]object.Entry{
			"grab": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := locks.Acquire(ctx, server, "L"); err != nil {
					return nil, err
				}
				close(locked)
				return nil, ctx.Sleep(8 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn(8, grabber, "grab"); err != nil {
		t.Fatal(err)
	}
	<-locked

	// A sleeper object on node 8 and a waiter thread from node 3 blocked
	// inside it: the crash must fail the waiter promptly, not after the 4s
	// call timeout.
	napping := make(chan struct{})
	sleeper, err := sys.CreateObject(8, object.Spec{
		Name: "sleeper",
		Entries: map[string]object.Entry{
			"nap": func(ctx object.Ctx, _ []any) ([]any, error) {
				close(napping)
				return nil, ctx.Sleep(8 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	waiter, err := sys.Spawn(3, sleeper, "nap")
	if err != nil {
		t.Fatal(err)
	}
	<-napping

	// A ledger object on node 8 with recoverable state.
	ledger, err := sys.CreateObject(8, object.Spec{
		Name: "ledger",
		Entries: map[string]object.Entry{
			"put": func(ctx object.Ctx, args []any) ([]any, error) {
				ctx.Set(args[0].(string), args[1])
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h, err := sys.Spawn(8, ledger, "put", "balance", 42); err != nil {
		t.Fatal(err)
	} else if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}

	crashedAt := time.Now()
	if err := sys.CrashNode(8); err != nil {
		t.Fatal(err)
	}

	// Waiter unblocks with a typed error well before the call timeout.
	if _, err := waiter.WaitTimeout(2 * time.Second); err == nil {
		t.Error("waiter into crashed node succeeded, want error")
	} else if !errors.Is(err, ErrNodeDown) && !errors.Is(err, ErrNodeCrashed) {
		t.Errorf("waiter err = %v, want ErrNodeDown/ErrNodeCrashed", err)
	}
	if took := time.Since(crashedAt); took > 2*time.Second {
		t.Errorf("waiter released after %v, want well under the 4s call timeout", took)
	}

	// The dead grabber's lock is reclaimed by the NODE_DOWN sweep.
	srvObj, err := sys.kernels[1].store.Lookup(server)
	if err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, "orphaned lock reclaim", func() bool {
		return len(locks.HeldLocks(srvObj.SnapshotKV())) == 0
	})
	if n := sys.Metrics().Snapshot().Get(metrics.CtrLockReclaim); n == 0 {
		t.Error("lock.reclaim counter is zero after a reclaim")
	}

	// Objects resident at the crashed node recover onto a survivor with
	// their state.
	recovered, err := sys.RecoverObjects(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if recovered < 3 {
		t.Errorf("recovered %d objects, want at least grabber+sleeper+ledger", recovered)
	}
	var newLedger *object.Object
	for _, oid := range sys.kernels[3].store.Objects() {
		if obj, err := sys.kernels[3].store.Lookup(oid); err == nil && obj.Name() == "ledger" {
			newLedger = obj
		}
	}
	if newLedger == nil {
		t.Fatal("ledger not found on node 3 after recovery")
	}
	if v := newLedger.SnapshotKV()["balance"]; v != 42 {
		t.Errorf("recovered ledger balance = %v, want 42", v)
	}

	// Restart: the node rejoins the membership and serves fresh work.
	if err := sys.RestartNode(8); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, "restarted node to rejoin", func() bool {
		m := sys.Membership()
		return len(m.Suspected) == 0 && len(m.Alive) == 8
	})
	echo, err := sys.CreateObject(8, echoSpec("post-restart"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(8, echo, "echo", "alive")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h.WaitTimeout(waitShort); err != nil || len(res) != 1 || res[0] != "alive" {
		t.Errorf("post-restart spawn = (%v, %v), want ([alive], nil)", res, err)
	}
}

// TestRaiseAndWaitTimeoutSeveredLink proves the raise timeout is
// independent of the FT subsystem: with detection off and the link to the
// target severed, raise_and_wait still returns ErrRaiseTimeout promptly
// instead of hanging on the dead link.
func TestRaiseAndWaitTimeoutSeveredLink(t *testing.T) {
	sys := newSystem(t, Config{
		Nodes:        3,
		CallTimeout:  3 * time.Second,
		RaiseTimeout: 100 * time.Millisecond,
	})
	ready := make(chan ids.ThreadID, 1)
	obj, err := sys.CreateObject(3, object.Spec{
		Name: "target",
		Entries: map[string]object.Entry{
			"wait": func(ctx object.Ctx, _ []any) ([]any, error) {
				ready <- ctx.Thread()
				return nil, ctx.Sleep(2 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn(3, obj, "wait"); err != nil {
		t.Fatal(err)
	}
	tid := <-ready

	sys.CutLink(1, 3)
	sys.CutLink(3, 1)

	start := time.Now()
	_, err = sys.RaiseAndWait(1, event.Interrupt, event.ToThread(tid), nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrRaiseTimeout) {
		t.Fatalf("RaiseAndWait err = %v, want ErrRaiseTimeout", err)
	}
	if elapsed > time.Second {
		t.Errorf("RaiseAndWait returned after %v, want promptly after the 100ms raise timeout", elapsed)
	}
}

// TestChaosAckDirectionLossy makes only the ack/reply direction lossy:
// every event raised from node 2 reaches the sink on node 1 intact, but
// 40% of node 1's traffic back — acks, RPC responses, releases — is
// dropped. The raiser's reliable endpoint retransmits the "lost" requests,
// so the sink sees heavy duplication and its dedup window must suppress
// every copy: symmetric-loss chaos never isolates this path, because there
// the data direction loses messages too and retransmits are usually
// carrying genuinely undelivered payloads.
func TestChaosAckDirectionLossy(t *testing.T) {
	cfg := ftConfig(2)
	cfg.Wire.StandaloneAcks = true
	sys := newSystem(t, cfg)
	var handled atomic.Int64
	sink, err := sys.CreateObject(1, object.Spec{
		Name: "sink",
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				handled.Add(1)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetDropRateDirected(1, 2, 0.4)

	const want = 25
	for i := 0; i < want; i++ {
		if _, err := sys.RaiseAndWait(2, event.Interrupt, event.ToObject(sink), nil); err != nil {
			t.Fatalf("raise %d: %v", i, err)
		}
	}
	sys.HealAll() // clears the directed rate

	retries := sys.Metrics().Snapshot().Get(metrics.CtrRelRetry)
	if retries == 0 {
		t.Error("no retransmissions under 40% reverse-path loss — the asymmetric loss was not injected")
	}
	// Straggler retransmits must not double-run any handler.
	time.Sleep(100 * time.Millisecond)
	if got := handled.Load(); got != want {
		t.Errorf("handler ran %d times for %d raises, want exactly once each", got, want)
	}
}
