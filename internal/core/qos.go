package core

// QoS event classification (DESIGN.md §15). Every event block is stamped
// with a dispatch class at raise time, and every kernel protocol message
// derives its class from its payload just before it hits the transport.
// The taxonomy:
//
//   - ClassSystem (255): kernel-originated traffic — RPC responses,
//     locate probes, heartbeats, gossip, directory/KV/page/group
//     plumbing, and events raised by the kernel itself (no raiser
//     thread). Never queued behind tenant work, never shed.
//   - ClassControl (254): termination and abort control — TERMINATE,
//     ABORT, QUIT, THREAD_DEATH blocks, release replies and abort-chain
//     RPCs. A flooded tenant must still be killable. Never shed.
//   - Tenant classes (1..253) + ClassDefault (0): application raises,
//     mapped from the raising thread's App attribute via QoS.Apps and
//     scheduled by weighted DWRR with bounded admission.
//
// The class is stamped once (newBlock or the control-block construction
// sites) and then travels: it survives clone-per-member group fan-out,
// fan-out relay hops, reliable-layer retransmits and the wire codec, so
// a remote node's admission decision sees the class the raiser earned,
// not whatever the last hop was.

import (
	"repro/internal/event"
	"repro/internal/transport"
)

// Numeric stamps for event.Block.Class: the event package stays
// dependency-free, so Block.Class is a raw uint8 holding a
// transport.Class value.
const (
	classSystemU8  = uint8(transport.ClassSystem)
	classControlU8 = uint8(transport.ClassControl)
)

// classOf computes the dispatch class of a freshly raised event.
// Termination control outranks everything a tenant can say; kernel raises
// (no raiser thread: timers, VM faults, failure-detector events) ride
// ClassSystem; everything else maps the raiser's App attribute through
// Config.QoS.Apps, defaulting to ClassDefault.
func (k *Kernel) classOf(raiser *activation, name event.Name) transport.Class {
	switch name {
	case event.Terminate, event.Abort, event.Quit, event.ThreadDeath:
		return transport.ClassControl
	}
	if raiser == nil {
		return transport.ClassSystem
	}
	raiser.mu.Lock()
	app := raiser.attrs.App
	raiser.mu.Unlock()
	if c, ok := k.sys.cfg.QoS.Apps[app]; ok {
		return c
	}
	return transport.ClassDefault
}

// classOfBlock recovers a block's dispatch class for transport admission.
// Blocks are stamped at construction; the name switch is a safety net
// that keeps control events unsheddable even if a future construction
// site forgets to stamp.
func classOfBlock(eb *event.Block) transport.Class {
	if eb == nil {
		return transport.ClassSystem
	}
	if eb.Class != 0 {
		return transport.Class(eb.Class)
	}
	switch eb.Name {
	case event.Terminate, event.Abort, event.Quit, event.ThreadDeath:
		return transport.ClassControl
	}
	return transport.ClassDefault
}

// msgClass derives the transport class of one outgoing kernel message.
// Only event-bearing requests inherit a tenant class; every other kind —
// RPC responses, invokes, probes, directory/KV/page/group traffic,
// heartbeats, gossip — is self-clocking request/response plumbing and
// rides ClassSystem so the kernel can always make progress.
func msgClass(kind string, payload any) transport.Class {
	switch kind {
	case msgRPCReq:
		if req, ok := payload.(rpcRequest); ok {
			return rpcClass(req.Kind, req.Body)
		}
	case kindFanout:
		if req, ok := payload.(*fanoutReq); ok {
			return classOfBlock(req.EB)
		}
	}
	return transport.ClassSystem
}

// rpcClass classifies the inner kind of an rpcRequest.
func rpcClass(kind string, body any) transport.Class {
	switch kind {
	case kindEvThread:
		if eb, ok := body.(*event.Block); ok {
			return classOfBlock(eb)
		}
	case kindEvObject:
		if req, ok := body.(objectEventReq); ok {
			return classOfBlock(req.EB)
		}
	case kindHandlerRun:
		if req, ok := body.(handlerRunReq); ok {
			return classOfBlock(req.EB)
		}
	case kindEvRelease, kindAbortChain:
		// Release replies unblock synchronous raisers and abort chains
		// tear threads down; both are control, never tenant-shed.
		return transport.ClassControl
	}
	return transport.ClassSystem
}
