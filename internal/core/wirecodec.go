package core

// Wire codecs for the kernel's RPC payload types, registered into
// internal/transport/wire at package init so any binary linking core can
// speak the TCP transport. Type IDs 40+ and sentinel codes 1–12 are part
// of the wire format: append only, never renumber (shared vocabulary IDs
// 1–29 and codes 30+ live in the wire package itself).

import (
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/reliable"
	"repro/internal/thread"
	"repro/internal/transport/wire"
)

const (
	widRPCRequest     = 40
	widRPCResponse    = 41
	widHeartbeat      = 42
	widFDNotice       = 43
	widReleaseReq     = 44
	widInvokeReq      = 45
	widInvokeReply    = 46
	widObjectEventReq = 47
	widObjectEventRep = 48
	widHandlerRunReq  = 49
	widHandlerRunRep  = 50
	widAbortReq       = 51
	widGroupJoinReq   = 52
	widKVReq          = 53
	widKVReply        = 54
	widPageOpReq      = 55
	widPageFetchReply = 56
	widGossipFrame    = 57
	widDirUpdate      = 58
	widFanoutReq      = 59
	// 60–61 are claimed by tcptransport (hello, groupUpdate); the WAL
	// record family starts at 70 to leave that block room to grow.
	widWALObjSet   = 70
	widWALAttrVer  = 71
	widWALWindow   = 72
	widWALObjDel   = 73
	widWALSnapshot = 74
)

const (
	wcodeTerminated     = 1
	wcodeAborted        = 2
	wcodeThreadNotFound = 3
	wcodeUnhandledSync  = 4
	wcodeUnknownProc    = 5
	wcodeNotRegistered  = 6
	wcodeShutdown       = 7
	wcodeRaiseTimeout   = 8
	wcodeNodeDown       = 9
	wcodeNodeCrashed    = 10
	wcodeThreadMoved    = 11
	wcodeAttrResync     = 12
	wcodeBackpressure   = 13
)

func init() {
	wire.Register(widRPCRequest, "core.rpcRequest",
		func(r rpcRequest) int {
			return wire.SizeUvarint(r.ID) + wire.SizeString(r.Kind) +
				wire.SizeUvarint(uint64(r.From)) + wire.SizeValue(r.Body)
		},
		func(e *wire.Enc, r rpcRequest) {
			e.Uvarint(r.ID)
			e.String(r.Kind)
			e.Uvarint(uint64(r.From))
			e.Value(r.Body)
		},
		func(d *wire.Dec) rpcRequest {
			return rpcRequest{
				ID:   d.Uvarint(),
				Kind: d.String(),
				From: ids.NodeID(d.Uvarint()),
				Body: d.Value(),
			}
		})
	wire.Register(widRPCResponse, "core.rpcResponse",
		func(r rpcResponse) int {
			return wire.SizeUvarint(r.ID) + wire.SizeValue(r.Body) + wsizeErr(r.Err)
		},
		func(e *wire.Enc, r rpcResponse) {
			e.Uvarint(r.ID)
			e.Value(r.Body)
			e.Value(wencErr(r.Err))
		},
		func(d *wire.Dec) rpcResponse {
			return rpcResponse{ID: d.Uvarint(), Body: d.Value(), Err: wdecErr(d)}
		})
	wire.Register(widHeartbeat, "core.heartbeat",
		func(heartbeat) int { return 0 },
		func(*wire.Enc, heartbeat) {},
		func(*wire.Dec) heartbeat { return heartbeat{} })
	wire.Register(widGossipFrame, "core.gossipFrame",
		// The payload is already the gossip codec's canonical encoding
		// (internal/failure); the wire layer ships it opaquely.
		func(g gossipFrame) int { return wire.SizeBytes(g.Data) },
		func(e *wire.Enc, g gossipFrame) { e.Bytes(g.Data) },
		func(d *wire.Dec) gossipFrame { return gossipFrame{Data: d.Bytes()} })
	wire.Register(widDirUpdate, "core.dirUpdate",
		func(u dirUpdate) int {
			return wire.SizeUvarint(uint64(u.TID)) + wire.SizeUvarint(uint64(u.Node)) + 1
		},
		func(e *wire.Enc, u dirUpdate) {
			e.Uvarint(uint64(u.TID))
			e.Uvarint(uint64(u.Node))
			e.Bool(u.Remove)
		},
		func(d *wire.Dec) dirUpdate {
			return dirUpdate{
				TID:    ids.ThreadID(d.Uvarint()),
				Node:   ids.NodeID(d.Uvarint()),
				Remove: d.Bool(),
			}
		})
	wire.Register(widFanoutReq, "core.fanoutReq",
		func(r *fanoutReq) int {
			size := wire.SizeUvarint(r.ID) + wire.SizeUvarint(uint64(r.Root)) +
				wire.SizeVarint(int64(r.K)) + wire.SizeUvarint(uint64(r.GID)) +
				wire.SizeValue(r.EB) + wire.SizeValue(r.Nodes) +
				wire.SizeUvarint(uint64(len(r.Assign)))
			for _, tids := range r.Assign {
				size += wire.SizeValue(tids)
			}
			return size
		},
		func(e *wire.Enc, r *fanoutReq) {
			e.Uvarint(r.ID)
			e.Uvarint(uint64(r.Root))
			e.Varint(int64(r.K))
			e.Uvarint(uint64(r.GID))
			e.Value(r.EB)
			e.Value(r.Nodes)
			e.Uvarint(uint64(len(r.Assign)))
			for _, tids := range r.Assign {
				e.Value(tids)
			}
		},
		func(d *wire.Dec) *fanoutReq {
			r := &fanoutReq{
				ID:   d.Uvarint(),
				Root: ids.NodeID(d.Uvarint()),
				K:    int(d.Varint()),
				GID:  ids.GroupID(d.Uvarint()),
				EB:   wdecBlock(d),
			}
			r.Nodes = wdecNodeIDs(d)
			n := d.Count(1)
			r.Assign = make([][]ids.ThreadID, 0, n)
			for i := 0; i < n; i++ {
				r.Assign = append(r.Assign, wdecThreadIDs(d))
				if d.Err() != nil {
					return r
				}
			}
			return r
		})
	wire.Register(widFDNotice, "core.fdNotice",
		func(n fdNotice) int { return wire.SizeUvarint(uint64(n.Node)) + 1 },
		func(e *wire.Enc, n fdNotice) { e.Uvarint(uint64(n.Node)); e.Bool(n.Up) },
		func(d *wire.Dec) fdNotice {
			return fdNotice{Node: ids.NodeID(d.Uvarint()), Up: d.Bool()}
		})
	wire.Register(widReleaseReq, "core.releaseReq",
		func(r releaseReq) int {
			return wire.SizeUvarint(r.ID) + wire.SizeUvarint(uint64(r.Verdict)) +
				1 + wsizeErr(r.Err)
		},
		func(e *wire.Enc, r releaseReq) {
			e.Uvarint(r.ID)
			e.Uvarint(uint64(r.Verdict))
			e.Bool(r.Consumed)
			e.Value(wencErr(r.Err))
		},
		func(d *wire.Dec) releaseReq {
			return releaseReq{
				ID:       d.Uvarint(),
				Verdict:  event.Verdict(d.Uvarint()),
				Consumed: d.Bool(),
				Err:      wdecErr(d),
			}
		})
	wire.Register(widInvokeReq, "core.invokeReq",
		func(r invokeReq) int {
			return wire.SizeUvarint(uint64(r.TID)) + wire.SizeValue(r.Attrs) +
				wire.SizeValue(r.Delta) + wire.SizeUvarint(uint64(r.Obj)) +
				wire.SizeString(r.Entry) + wsizeAnys(r.Args) + wire.SizeVarint(int64(r.Depth))
		},
		func(e *wire.Enc, r invokeReq) {
			e.Uvarint(uint64(r.TID))
			e.Value(r.Attrs)
			e.Value(r.Delta)
			e.Uvarint(uint64(r.Obj))
			e.String(r.Entry)
			wencAnys(e, r.Args)
			e.Varint(int64(r.Depth))
		},
		func(d *wire.Dec) invokeReq {
			return invokeReq{
				TID:   ids.ThreadID(d.Uvarint()),
				Attrs: wdecAttrs(d),
				Delta: wdecDelta(d),
				Obj:   ids.ObjectID(d.Uvarint()),
				Entry: d.String(),
				Args:  wdecAnys(d),
				Depth: int(d.Varint()),
			}
		})
	wire.Register(widInvokeReply, "core.invokeReply",
		func(r invokeReply) int {
			return wsizeAnys(r.Results) + wire.SizeValue(r.Attrs) +
				wire.SizeValue(r.Delta) + wsizeErr(r.AppErr)
		},
		func(e *wire.Enc, r invokeReply) {
			wencAnys(e, r.Results)
			e.Value(r.Attrs)
			e.Value(r.Delta)
			e.Value(wencErr(r.AppErr))
		},
		func(d *wire.Dec) invokeReply {
			return invokeReply{
				Results: wdecAnys(d),
				Attrs:   wdecAttrs(d),
				Delta:   wdecDelta(d),
				AppErr:  wdecErr(d),
			}
		})
	wire.Register(widObjectEventReq, "core.objectEventReq",
		func(r objectEventReq) int { return wire.SizeValue(r.EB) },
		func(e *wire.Enc, r objectEventReq) { e.Value(r.EB) },
		func(d *wire.Dec) objectEventReq { return objectEventReq{EB: wdecBlock(d)} })
	wire.Register(widObjectEventRep, "core.objectEventReply",
		func(r objectEventReply) int { return wire.SizeUvarint(uint64(r.Verdict)) + 1 },
		func(e *wire.Enc, r objectEventReply) {
			e.Uvarint(uint64(r.Verdict))
			e.Bool(r.Consumed)
		},
		func(d *wire.Dec) objectEventReply {
			return objectEventReply{Verdict: event.Verdict(d.Uvarint()), Consumed: d.Bool()}
		})
	wire.Register(widHandlerRunReq, "core.handlerRunReq",
		func(r handlerRunReq) int {
			return wire.SizeValue(r.Ref) + wire.SizeValue(r.EB) + wire.SizeValue(r.Attrs)
		},
		func(e *wire.Enc, r handlerRunReq) {
			e.Value(r.Ref)
			e.Value(r.EB)
			e.Value(r.Attrs)
		},
		func(d *wire.Dec) handlerRunReq {
			return handlerRunReq{Ref: wdecRef(d), EB: wdecBlock(d), Attrs: wdecAttrs(d)}
		})
	wire.Register(widHandlerRunRep, "core.handlerRunReply",
		func(r handlerRunReply) int {
			return wire.SizeUvarint(uint64(r.Verdict)) + wire.SizeValue(r.Attrs)
		},
		func(e *wire.Enc, r handlerRunReply) {
			e.Uvarint(uint64(r.Verdict))
			e.Value(r.Attrs)
		},
		func(d *wire.Dec) handlerRunReply {
			return handlerRunReply{Verdict: event.Verdict(d.Uvarint()), Attrs: wdecAttrs(d)}
		})
	wire.Register(widAbortReq, "core.abortReq",
		func(r abortReq) int {
			return wire.SizeUvarint(uint64(r.TID)) + wire.SizeUvarint(uint64(r.Obj))
		},
		func(e *wire.Enc, r abortReq) {
			e.Uvarint(uint64(r.TID))
			e.Uvarint(uint64(r.Obj))
		},
		func(d *wire.Dec) abortReq {
			return abortReq{TID: ids.ThreadID(d.Uvarint()), Obj: ids.ObjectID(d.Uvarint())}
		})
	wire.Register(widGroupJoinReq, "core.groupJoinReq",
		func(r groupJoinReq) int {
			return wire.SizeUvarint(uint64(r.Group)) + wire.SizeUvarint(uint64(r.Thread)) + 1
		},
		func(e *wire.Enc, r groupJoinReq) {
			e.Uvarint(uint64(r.Group))
			e.Uvarint(uint64(r.Thread))
			e.Bool(r.Leave)
		},
		func(d *wire.Dec) groupJoinReq {
			return groupJoinReq{
				Group:  ids.GroupID(d.Uvarint()),
				Thread: ids.ThreadID(d.Uvarint()),
				Leave:  d.Bool(),
			}
		})
	wire.Register(widKVReq, "core.kvReq",
		func(r kvReq) int {
			return wire.SizeUvarint(uint64(r.Object)) + wire.SizeString(r.Key) +
				wire.SizeValue(r.Val) + wire.SizeValue(r.Old)
		},
		func(e *wire.Enc, r kvReq) {
			e.Uvarint(uint64(r.Object))
			e.String(r.Key)
			e.Value(r.Val)
			e.Value(r.Old)
		},
		func(d *wire.Dec) kvReq {
			return kvReq{
				Object: ids.ObjectID(d.Uvarint()),
				Key:    d.String(),
				Val:    d.Value(),
				Old:    d.Value(),
			}
		})
	wire.Register(widKVReply, "core.kvReply",
		func(r kvReply) int { return wire.SizeValue(r.Val) + 1 },
		func(e *wire.Enc, r kvReply) {
			e.Value(r.Val)
			e.Bool(r.Found)
		},
		func(d *wire.Dec) kvReply { return kvReply{Val: d.Value(), Found: d.Bool()} })
	wire.Register(widPageOpReq, "core.pageOpReq",
		func(r pageOpReq) int {
			return wire.SizeUvarint(uint64(r.Seg)) + wire.SizeVarint(int64(r.Page)) +
				wsizeBytesNil(r.Data)
		},
		func(e *wire.Enc, r pageOpReq) {
			e.Uvarint(uint64(r.Seg))
			e.Varint(int64(r.Page))
			wencBytesNil(e, r.Data)
		},
		func(d *wire.Dec) pageOpReq {
			return pageOpReq{
				Seg:  ids.SegmentID(d.Uvarint()),
				Page: int(d.Varint()),
				Data: wdecBytesNil(d),
			}
		})
	wire.Register(widPageFetchReply, "core.pageFetchReply",
		func(r pageFetchReply) int { return wsizeBytesNil(r.Data) + 1 },
		func(e *wire.Enc, r pageFetchReply) {
			wencBytesNil(e, r.Data)
			e.Bool(r.Found)
		},
		func(d *wire.Dec) pageFetchReply {
			return pageFetchReply{Data: wdecBytesNil(d), Found: d.Bool()}
		})

	// Durability record payloads (DESIGN.md §14). These never cross the
	// network — they are WAL record bodies — but they share the wire
	// vocabulary so replay decodes with the same self-describing codec the
	// transport uses, and the roundtrip tests cover them for free.
	wire.Register(widWALObjSet, "core.walObjSet",
		func(r walObjSet) int {
			return wire.SizeString(r.Obj) + wire.SizeString(r.Key) + wire.SizeValue(r.Val)
		},
		func(e *wire.Enc, r walObjSet) {
			e.String(r.Obj)
			e.String(r.Key)
			e.Value(r.Val)
		},
		func(d *wire.Dec) walObjSet {
			return walObjSet{Obj: d.String(), Key: d.String(), Val: d.Value()}
		})
	wire.Register(widWALAttrVer, "core.walAttrVer",
		func(r walAttrVer) int { return wire.SizeUvarint(r.Ver) },
		func(e *wire.Enc, r walAttrVer) { e.Uvarint(r.Ver) },
		func(d *wire.Dec) walAttrVer { return walAttrVer{Ver: d.Uvarint()} })
	wire.Register(widWALWindow, "core.walWindow",
		func(r walWindow) int {
			return wire.SizeUvarint(uint64(r.Peer)) + wire.SizeUvarint(r.Gen) +
				wire.SizeUvarint(r.Seq) + wire.SizeUvarint(r.Cum)
		},
		func(e *wire.Enc, r walWindow) {
			e.Uvarint(uint64(r.Peer))
			e.Uvarint(r.Gen)
			e.Uvarint(r.Seq)
			e.Uvarint(r.Cum)
		},
		func(d *wire.Dec) walWindow {
			return walWindow{
				Peer: ids.NodeID(d.Uvarint()),
				Gen:  d.Uvarint(),
				Seq:  d.Uvarint(),
				Cum:  d.Uvarint(),
			}
		})
	wire.Register(widWALObjDel, "core.walObjDel",
		func(r walObjDel) int { return wire.SizeString(r.Obj) },
		func(e *wire.Enc, r walObjDel) { e.String(r.Obj) },
		func(d *wire.Dec) walObjDel { return walObjDel{Obj: d.String()} })
	wire.Register(widWALSnapshot, "core.walSnapshot",
		func(r walSnapshot) int {
			size := wire.SizeUvarint(r.AttrVer) + wire.SizeUvarint(uint64(len(r.Objects))) +
				wire.SizeUvarint(uint64(len(r.Windows)))
			for _, img := range r.Objects {
				size += wire.SizeString(img.Name) + wire.SizeValue(img.KV)
			}
			for _, w := range r.Windows {
				size += wsizePeerWindow(w)
			}
			return size
		},
		func(e *wire.Enc, r walSnapshot) {
			e.Uvarint(r.AttrVer)
			e.Uvarint(uint64(len(r.Objects)))
			for _, img := range r.Objects {
				e.String(img.Name)
				e.Value(img.KV)
			}
			e.Uvarint(uint64(len(r.Windows)))
			for _, w := range r.Windows {
				wencPeerWindow(e, w)
			}
		},
		func(d *wire.Dec) walSnapshot {
			r := walSnapshot{AttrVer: d.Uvarint()}
			nObj := d.Count(2)
			for i := 0; i < nObj; i++ {
				r.Objects = append(r.Objects, walObjImage{Name: d.String(), KV: wdecKV(d)})
				if d.Err() != nil {
					return r
				}
			}
			nWin := d.Count(4)
			for i := 0; i < nWin; i++ {
				r.Windows = append(r.Windows, wdecPeerWindow(d))
				if d.Err() != nil {
					return r
				}
			}
			return r
		})

	wire.RegisterErr(wcodeTerminated, ErrTerminated)
	wire.RegisterErr(wcodeAborted, ErrAborted)
	wire.RegisterErr(wcodeThreadNotFound, ErrThreadNotFound)
	wire.RegisterErr(wcodeUnhandledSync, ErrUnhandledSync)
	wire.RegisterErr(wcodeUnknownProc, ErrUnknownProc)
	wire.RegisterErr(wcodeNotRegistered, ErrNotRegistered)
	wire.RegisterErr(wcodeShutdown, ErrShutdown)
	wire.RegisterErr(wcodeRaiseTimeout, ErrRaiseTimeout)
	wire.RegisterErr(wcodeNodeDown, ErrNodeDown)
	wire.RegisterErr(wcodeNodeCrashed, ErrNodeCrashed)
	wire.RegisterErr(wcodeThreadMoved, errThreadMoved)
	wire.RegisterErr(wcodeAttrResync, errAttrResync)
	wire.RegisterErr(wcodeBackpressure, ErrBackpressure)
}

// wencErr boxes an error for Enc.Value: a nil error must encode as nil,
// not as a typed-nil interface surprise.
func wencErr(err error) any {
	if err == nil {
		return nil
	}
	return err
}

func wsizeErr(err error) int {
	if err == nil {
		return 1
	}
	return wire.SizeValue(err)
}

// wdecErr reads an error-or-nil value slot.
func wdecErr(d *wire.Dec) error {
	v := d.Value()
	if v == nil {
		return nil
	}
	err, ok := v.(error)
	if !ok {
		d.Corrupt("error slot holds a non-error")
		return nil
	}
	return err
}

// The wdec* helpers read a registered-type value slot and reject a
// mismatched type instead of panicking on crafted input.

func wdecAttrs(d *wire.Dec) *thread.Attributes {
	v := d.Value()
	if v == nil {
		return nil
	}
	a, ok := v.(*thread.Attributes)
	if !ok {
		d.Corrupt("attributes slot holds wrong type")
		return nil
	}
	return a
}

func wdecDelta(d *wire.Dec) *thread.Delta {
	v := d.Value()
	if v == nil {
		return nil
	}
	dl, ok := v.(*thread.Delta)
	if !ok {
		d.Corrupt("delta slot holds wrong type")
		return nil
	}
	return dl
}

func wdecBlock(d *wire.Dec) *event.Block {
	v := d.Value()
	if v == nil {
		return nil
	}
	b, ok := v.(*event.Block)
	if !ok {
		d.Corrupt("event block slot holds wrong type")
		return nil
	}
	return b
}

func wdecNodeIDs(d *wire.Dec) []ids.NodeID {
	v := d.Value()
	if v == nil {
		return nil
	}
	ns, ok := v.([]ids.NodeID)
	if !ok {
		d.Corrupt("node list slot holds wrong type")
		return nil
	}
	return ns
}

func wdecThreadIDs(d *wire.Dec) []ids.ThreadID {
	v := d.Value()
	if v == nil {
		return nil
	}
	ts, ok := v.([]ids.ThreadID)
	if !ok {
		d.Corrupt("thread list slot holds wrong type")
		return nil
	}
	return ts
}

func wdecRef(d *wire.Dec) event.HandlerRef {
	v := d.Value()
	r, ok := v.(event.HandlerRef)
	if !ok {
		d.Corrupt("handler ref slot holds wrong type")
		return event.HandlerRef{}
	}
	return r
}

func wsizeAnys(vs []any) int {
	if vs == nil {
		return 1
	}
	n := 1 + wire.SizeUvarint(uint64(len(vs)))
	for _, v := range vs {
		n += wire.SizeValue(v)
	}
	return n
}

func wencAnys(e *wire.Enc, vs []any) {
	e.Bool(vs != nil)
	if vs == nil {
		return
	}
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Value(v)
	}
}

func wdecAnys(d *wire.Dec) []any {
	if !d.Bool() {
		return nil
	}
	n := d.Count(1)
	out := make([]any, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Value())
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

// PeerWindow is nested inside walSnapshot; it never travels standalone,
// so it is hand-encoded inline instead of owning a type id.

func wsizePeerWindow(w reliable.PeerWindow) int {
	size := wire.SizeUvarint(uint64(w.Peer)) + wire.SizeUvarint(w.Gen) +
		wire.SizeUvarint(w.Cum) + wire.SizeUvarint(w.Max) +
		wire.SizeUvarint(w.NextSeq) + wire.SizeUvarint(uint64(len(w.Seen)))
	for _, s := range w.Seen {
		size += wire.SizeUvarint(s)
	}
	return size
}

func wencPeerWindow(e *wire.Enc, w reliable.PeerWindow) {
	e.Uvarint(uint64(w.Peer))
	e.Uvarint(w.Gen)
	e.Uvarint(w.Cum)
	e.Uvarint(w.Max)
	e.Uvarint(w.NextSeq)
	e.Uvarint(uint64(len(w.Seen)))
	for _, s := range w.Seen {
		e.Uvarint(s)
	}
}

func wdecPeerWindow(d *wire.Dec) reliable.PeerWindow {
	w := reliable.PeerWindow{
		Peer:    ids.NodeID(d.Uvarint()),
		Gen:     d.Uvarint(),
		Cum:     d.Uvarint(),
		Max:     d.Uvarint(),
		NextSeq: d.Uvarint(),
	}
	n := d.Count(1)
	for i := 0; i < n; i++ {
		w.Seen = append(w.Seen, d.Uvarint())
		if d.Err() != nil {
			return w
		}
	}
	return w
}

// wdecKV reads a map[string]any value slot.
func wdecKV(d *wire.Dec) map[string]any {
	v := d.Value()
	if v == nil {
		return nil
	}
	kv, ok := v.(map[string]any)
	if !ok {
		d.Corrupt("kv slot holds wrong type")
		return nil
	}
	return kv
}

func wsizeBytesNil(b []byte) int {
	if b == nil {
		return 1
	}
	return 1 + wire.SizeBytes(b)
}

func wencBytesNil(e *wire.Enc, b []byte) {
	e.Bool(b != nil)
	if b != nil {
		e.Bytes(b)
	}
}

func wdecBytesNil(d *wire.Dec) []byte {
	if !d.Bool() {
		return nil
	}
	return d.Bytes()
}
