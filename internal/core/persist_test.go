package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/event"
	"repro/internal/object"
)

// counterSpec is an object with both persistent (segment) and volatile
// (kv) state.
func counterSpec() object.Spec {
	return object.Spec{
		Name:     "counter",
		DataSize: 64,
		Entries: map[string]object.Entry{
			"incr": func(ctx object.Ctx, _ []any) ([]any, error) {
				d, err := ctx.ReadData(0, 1)
				if err != nil {
					return nil, err
				}
				d[0]++
				if err := ctx.WriteData(0, d); err != nil {
					return nil, err
				}
				ctx.Set("label", "counted")
				return []any{int(d[0])}, nil
			},
			"peek": func(ctx object.Ctx, _ []any) ([]any, error) {
				d, err := ctx.ReadData(0, 1)
				if err != nil {
					return nil, err
				}
				label, _ := ctx.Get("label")
				return []any{int(d[0]), label}, nil
			},
		},
	}
}

func TestPassivateActivateRoundTrip(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	oid, err := sys.CreateObject(1, counterSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Mutate both state kinds.
	for i := 0; i < 3; i++ {
		h, err := sys.Spawn(1, oid, "incr")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WaitTimeout(waitShort); err != nil {
			t.Fatal(err)
		}
	}

	img, err := sys.Passivate(oid)
	if err != nil {
		t.Fatalf("Passivate: %v", err)
	}
	if img.Data[0] != 3 {
		t.Fatalf("image data[0] = %d, want 3", img.Data[0])
	}
	if img.KV["label"] != "counted" {
		t.Fatalf("image kv = %v", img.KV)
	}
	// The original is gone.
	k1, _ := sys.Kernel(1)
	if _, err := k1.Store().Lookup(oid); !errors.Is(err, object.ErrUnknownObject) {
		t.Fatal("object still resident after passivation")
	}

	// Reactivate on a different node; state survives the move.
	oid2, err := sys.Activate(2, counterSpec(), img)
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	if oid2.Home() != 2 {
		t.Fatalf("reactivated at %v, want node2", oid2.Home())
	}
	h, err := sys.Spawn(2, oid2, "peek")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 3 || res[1] != "counted" {
		t.Fatalf("reactivated state = %v, want [3 counted]", res)
	}
}

func TestPassivateRunsDeleteHandler(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var cleaned atomic.Bool
	spec := counterSpec()
	spec.Handlers = map[event.Name]object.Handler{
		event.Delete: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			cleaned.Store(true)
			return event.VerdictResume
		},
	}
	oid, err := sys.CreateObject(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Passivate(oid); err != nil {
		t.Fatal(err)
	}
	if !cleaned.Load() {
		t.Fatal("DELETE handler did not run during passivation")
	}
}

func TestPassivateUnknownObject(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	if _, err := sys.Passivate(1234); err == nil {
		t.Fatal("Passivate of bogus id succeeded")
	}
}

func TestActivateSizeMismatch(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	spec := counterSpec()
	spec.DataSize = 16
	img := ObjectImage{Data: make([]byte, 64)}
	if _, err := sys.Activate(1, spec, img); err == nil {
		t.Fatal("Activate with oversized image succeeded")
	}
}

func TestObjectImageWireSize(t *testing.T) {
	img := ObjectImage{Name: "x", Data: make([]byte, 100), KV: map[string]any{"ab": 1}}
	if img.WireSize() <= 100 {
		t.Fatalf("WireSize = %d", img.WireSize())
	}
}
