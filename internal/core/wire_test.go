package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/object"
)

// TestDeltaResyncAfterCacheEviction squeezes the receiver's attribute
// cache down to one entry so a second thread's invocation evicts the
// first's base snapshot. The first thread's next delta then misses, the
// callee answers errAttrResync, and the caller retries once with a full
// snapshot — all invisible to the application, whose attribute edits must
// merge back exactly as if the delta had applied.
func TestDeltaResyncAfterCacheEviction(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, Wire: WireConfig{AttrCacheSize: 1}})
	target, err := sys.CreateObject(2, object.Spec{
		Name: "wire-target",
		Entries: map[string]object.Entry{
			"mark": func(ctx object.Ctx, args []any) ([]any, error) {
				stamp, _ := args[0].(string)
				ctx.Attrs().PerThread["stamp"] = []byte(stamp)
				return []any{stamp}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two driver threads interleave their invocations: t1 invokes (its
	// snapshot is cached at node 2), t2 invokes (cache size 1 → evicts
	// t1's), then t1 invokes again — its delta's base is gone.
	t1Parked := make(chan struct{})
	t2Done := make(chan struct{})
	mkDriver := func(name, first, second string, park bool) object.Spec {
		return object.Spec{
			Name: name,
			Entries: map[string]object.Entry{
				"run": func(ctx object.Ctx, _ []any) ([]any, error) {
					if _, err := ctx.Invoke(target, "mark", first); err != nil {
						return nil, err
					}
					if park {
						close(t1Parked)
						<-t2Done
					}
					if second == "" {
						return nil, nil
					}
					if _, err := ctx.Invoke(target, "mark", second); err != nil {
						return nil, err
					}
					if got := string(ctx.Attrs().PerThread["stamp"]); got != second {
						t.Errorf("per-thread stamp = %q after resync round trip, want %q", got, second)
					}
					return nil, nil
				},
			},
		}
	}
	d1, err := sys.CreateObject(1, mkDriver("wire-d1", "t1-a", "t1-b", true))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sys.CreateObject(1, mkDriver("wire-d2", "t2-a", "", false))
	if err != nil {
		t.Fatal(err)
	}

	h1, err := sys.Spawn(1, d1, "run")
	if err != nil {
		t.Fatal(err)
	}
	<-t1Parked
	h2, err := sys.Spawn(1, d2, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.WaitTimeout(waitShort); err != nil {
		t.Fatalf("t2: %v", err)
	}
	close(t2Done)
	if _, err := h1.WaitTimeout(waitShort); err != nil {
		t.Fatalf("t1: %v", err)
	}

	snap := sys.Metrics().Snapshot()
	if snap.Get(metrics.CtrAttrResync) == 0 {
		t.Error("no resync recorded; the eviction scenario did not exercise the miss path")
	}
	if snap.Get(metrics.CtrAttrCacheEvict) == 0 {
		t.Error("no cache eviction recorded with a one-entry cache")
	}
	if snap.Get(metrics.CtrAttrDeltaSent) == 0 {
		t.Error("no deltas sent; codec ran in full mode unexpectedly")
	}
}

// TestFullAttrsModeSendsNoDeltas pins the legacy escape hatch: with
// Wire.FullAttrs set, every hop ships a full snapshot and the delta
// machinery stays cold.
func TestFullAttrsModeSendsNoDeltas(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, Wire: WireConfig{FullAttrs: true}})
	oid, err := sys.CreateObject(2, echoSpec("full-echo"))
	if err != nil {
		t.Fatal(err)
	}
	driver, err := sys.CreateObject(1, object.Spec{
		Name: "full-driver",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				for i := 0; i < 5; i++ {
					if _, err := ctx.Invoke(oid, "echo", i); err != nil {
						return nil, err
					}
				}
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, driver, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	snap := sys.Metrics().Snapshot()
	if got := snap.Get(metrics.CtrAttrDeltaSent); got != 0 {
		t.Errorf("deltas sent in full mode: %d, want 0", got)
	}
	if snap.Get(metrics.CtrAttrFullSent) == 0 {
		t.Error("no full snapshots counted in full mode")
	}
}
