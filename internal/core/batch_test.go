package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/testutil"
	"repro/internal/vclock"
)

// TestChaosBatchedExactlyOnce is the batched twin of
// TestChaosParallelDispatchExactlyOnce: send coalescing on (the default),
// sharded dispatch, 10% loss. A dropped datagram now loses a whole frame of
// envelopes at once, and a retransmitted envelope re-batches into whatever
// frame is pending at retry time — the exactly-once guarantee must survive
// both. Run under -race by make chaos.
func TestChaosBatchedExactlyOnce(t *testing.T) {
	cfg := ftConfig(8)
	cfg.DispatchWorkers = 4
	sys := newSystem(t, cfg)
	if !sys.batching() {
		t.Fatal("batching off under the default wire config")
	}
	var handled atomic.Int64
	sink, err := sys.CreateObject(1, object.Spec{
		Name: "sink",
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				handled.Add(1)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetDropRate(0.1)

	const raisers, perRaiser = 6, 10
	var wg sync.WaitGroup
	var raiseErrs atomic.Int64
	for r := 0; r < raisers; r++ {
		node := ids.NodeID(2 + r) // all remote to the sink's node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perRaiser; i++ {
				if err := sys.Raise(node, event.Interrupt, event.ToObject(sink), nil); err != nil {
					raiseErrs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	sys.SetDropRate(0)
	if n := raiseErrs.Load(); n != 0 {
		t.Fatalf("%d of %d raises failed", n, raisers*perRaiser)
	}

	const want = raisers * perRaiser
	testutil.WaitFor(t, "all handlers to run", func() bool { return handled.Load() >= want })
	// Retransmits of frame-dropped envelopes must not double-run handlers.
	time.Sleep(100 * time.Millisecond)
	if got := handled.Load(); got != want {
		t.Errorf("handler ran %d times for %d raises, want exactly once each", got, want)
	}
	if frames := sys.Metrics().Snapshot().Get(metrics.CtrBatchFrames); frames == 0 {
		t.Error("no batch frames shipped: the chaos run never exercised coalescing")
	}
}

// A kernel on a virtual clock must come up with batching off regardless of
// the wire config: the deterministic-simulation digests assume per-message
// delivery, and flush timers would interleave with protocol timers in the
// virtual heap.
func TestBatchingForcedOffUnderVirtualClock(t *testing.T) {
	cfg := ftConfig(2)
	cfg.Clock = vclock.NewVirtual()
	sys := newSystem(t, cfg)
	if sys.batching() {
		t.Fatal("batching on under a virtual clock")
	}
}
