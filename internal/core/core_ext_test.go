package core

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

// TestThreadDeathNoticeToAsyncRaiser exercises §7.2: an asynchronous event
// queued at a thread that finishes before delivery generates a
// THREAD_DEATH notice back to the raiser.
func TestThreadDeathNoticeToAsyncRaiser(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var gotDeath atomic.Bool
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"death": func(_ object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
			if eb.Name == event.ThreadDeath {
				gotDeath.Store(true)
			}
			return event.VerdictResume
		},
		// A deliberately slow TERMINATE handler: while it runs, further
		// events queue behind it; its Terminate verdict then kills the
		// thread with those events still pending.
		"slowterm": func(ctx object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			_ = ctx.Sleep(150 * time.Millisecond)
			return event.VerdictTerminate
		},
	}); err != nil {
		t.Fatal(err)
	}

	victimStarted := make(chan ids.ThreadID, 1)
	raiserReady := make(chan struct{})
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"victim": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.Terminate, Kind: event.KindProc, Proc: "slowterm"}); err != nil {
					return nil, err
				}
				victimStarted <- ctx.Thread()
				return nil, ctx.Sleep(10 * time.Second)
			},
			"raiser": func(ctx object.Ctx, args []any) ([]any, error) {
				target, _ := args[0].(ids.ThreadID)
				if err := ctx.RegisterEvent("DOOMED"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.ThreadDeath, Kind: event.KindProc, Proc: "death"}); err != nil {
					return nil, err
				}
				// The victim is mid-TERMINATE: this event queues behind the
				// slow handler and dies with the thread.
				if err := ctx.Raise("DOOMED", event.ToThread(target), nil); err != nil {
					return nil, err
				}
				close(raiserReady)
				// Park so the death notice can reach us.
				return nil, ctx.Sleep(2 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hv, err := sys.Spawn(1, oid, "victim")
	if err != nil {
		t.Fatal(err)
	}
	victim := <-victimStarted
	waitAsleep(t, sys, victim)

	// Start the slow termination, then post the doomed event behind it.
	if err := sys.Raise(1, event.Terminate, event.ToThread(victim), nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // the slow handler is now running
	hr, err := sys.Spawn(1, oid, "raiser", victim)
	if err != nil {
		t.Fatal(err)
	}
	<-raiserReady
	if _, err := hv.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
		t.Fatalf("victim end = %v, want ErrTerminated", err)
	}
	deadline := time.Now().Add(waitShort)
	for !gotDeath.Load() {
		if time.Now().After(deadline) {
			t.Fatal("raiser never received THREAD_DEATH")
		}
		time.Sleep(time.Millisecond)
	}
	_ = hr
}

// TestInvokeGuardedScopesHandlers checks §5.2's restrained exception
// handling: guard handlers exist only for the duration of the invocation.
func TestInvokeGuardedScopesHandlers(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"guard": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	risky, err := sys.CreateObject(2, object.Spec{
		Name:   "risky",
		Raises: []event.Name{event.DivZero},
		Entries: map[string]object.Entry{
			"compute": func(ctx object.Ctx, _ []any) ([]any, error) {
				// The exceptional event: handled by the invoker's guard.
				if err := ctx.RaiseAndWait(event.DivZero, event.ToThread(ctx.Thread()), nil); err != nil {
					return nil, err
				}
				return []any{"recovered"}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var depthAfter atomic.Int64
	caller, err := sys.CreateObject(1, object.Spec{
		Name: "caller",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				res, err := ctx.InvokeGuarded(risky, "compute", []event.HandlerRef{
					{Event: event.DivZero, Kind: event.KindProc, Proc: "guard"},
				})
				if err != nil {
					return nil, err
				}
				depthAfter.Store(int64(ctx.Attrs().Handlers.Depth(event.DivZero)))
				return res, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, caller, "run")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res[0] != "recovered" {
		t.Fatalf("result = %v", res)
	}
	if handled.Load() != 1 {
		t.Fatalf("guard handled %d events, want 1", handled.Load())
	}
	if depthAfter.Load() != 0 {
		t.Fatalf("guard handler leaked: chain depth %d after return", depthAfter.Load())
	}
}

// TestInvokeGuardedWithoutGuardTerminates: the same exceptional event with
// no guard falls to the default action and kills the thread — showing the
// guard is what saved it.
func TestInvokeGuardedWithoutGuardTerminates(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	risky, err := sys.CreateObject(2, object.Spec{
		Name: "risky",
		Entries: map[string]object.Entry{
			"compute": func(ctx object.Ctx, _ []any) ([]any, error) {
				err := ctx.RaiseAndWait(event.DivZero, event.ToThread(ctx.Thread()), nil)
				return nil, err
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	caller, err := sys.CreateObject(1, object.Spec{
		Name: "caller",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(risky, "compute")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, caller, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
		t.Fatalf("Wait err = %v, want ErrTerminated (default for DIV_ZERO)", err)
	}
}

// TestSetAlarmFires checks the one-shot ALARM, including delivery after
// the thread moved to another node.
func TestSetAlarmFires(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	var firedAt atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"alarm": func(ctx object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			firedAt.Store(int64(ctx.Node()))
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	remote, err := sys.CreateObject(2, object.Spec{
		Name: "remote",
		Entries: map[string]object.Entry{
			"dwell": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, ctx.Sleep(300 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := sys.CreateObject(1, object.Spec{
		Name: "local",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.Alarm, Kind: event.KindProc, Proc: "alarm"}); err != nil {
					return nil, err
				}
				if err := ctx.SetAlarm(50 * time.Millisecond); err != nil {
					return nil, err
				}
				// Move to node 2 before the alarm fires: it must chase us.
				return ctx.Invoke(remote, "dwell")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, local, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if firedAt.Load() != 2 {
		t.Fatalf("alarm handled at node%d, want node2 (chased the thread)", firedAt.Load())
	}
}

func TestSetAlarmValidation(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, ctx.SetAlarm(0)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "run")
	if _, err := h.WaitTimeout(waitShort); err == nil {
		t.Fatal("SetAlarm(0) succeeded")
	}
}

// TestThreadRevisitsNode walks a thread node1 -> node2 -> node1 and
// delivers an event at the deepest (revisiting) activation.
func TestThreadRevisitsNode(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	started := make(chan ids.ThreadID, 1)
	back, err := sys.CreateObject(1, object.Spec{
		Name: "back",
		Entries: map[string]object.Entry{
			"park": func(ctx object.Ctx, _ []any) ([]any, error) {
				started <- ctx.Thread()
				return nil, ctx.Sleep(10 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := sys.CreateObject(2, object.Spec{
		Name: "mid",
		Entries: map[string]object.Entry{
			"fwd": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(back, "park")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	origin, err := sys.CreateObject(1, object.Spec{
		Name: "origin",
		Entries: map[string]object.Entry{
			"go": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(mid, "fwd")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, origin, "go")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)

	// The deepest activation is back at node1; path-follow must chase
	// 1 -> 2 -> 1 and deliver there.
	if err := sys.Raise(2, event.Terminate, event.ToThread(tid), nil); err != nil {
		t.Fatalf("Raise: %v", err)
	}
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
		t.Fatalf("Wait err = %v, want ErrTerminated", err)
	}
}

// TestPartitionSurfacesTimeout checks failure injection: with the link to
// the target's node cut, delivery fails with a timeout instead of hanging.
func TestPartitionSurfacesTimeout(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, CallTimeout: 200 * time.Millisecond})
	started := make(chan ids.ThreadID, 1)
	oid, err := sys.CreateObject(2, object.Spec{
		Name: "far",
		Entries: map[string]object.Entry{
			"park": func(ctx object.Ctx, _ []any) ([]any, error) {
				started <- ctx.Thread()
				return nil, ctx.Sleep(10 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(2, oid, "park")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)

	k1, _ := sys.Kernel(1)
	sys.CutLink(1, 2)
	err = k1.raise(nil, event.Terminate, event.ToThread(tid), nil)
	if err == nil {
		t.Fatal("raise across a cut link succeeded")
	}
	sys.HealLink(1, 2)
	// After healing, delivery works again.
	if err := sys.Raise(1, event.Terminate, event.ToThread(tid), nil); err != nil {
		t.Fatalf("raise after heal: %v", err)
	}
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
		t.Fatalf("Wait err = %v", err)
	}
}

// TestRaiseFromHandler: a handler raising further events must not deadlock
// the delivery machinery.
func TestRaiseFromHandler(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var secondary atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"primary": func(ctx object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
			// Notify a passive object from inside the handler.
			if v, ok := eb.User["obj"].(ids.ObjectID); ok {
				_ = ctx.Raise(event.Interrupt, event.ToObject(v), nil)
			}
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	sink, err := sys.CreateObject(1, object.Spec{
		Name: "sink",
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				secondary.Add(1)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 1)
	app, err := sys.CreateObject(1, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("PRIMARY"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "PRIMARY", Kind: event.KindProc, Proc: "primary"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if _, err := sys.RaiseAndWait(1, "PRIMARY", event.ToThread(tid), map[string]any{"obj": sink}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitShort)
	for secondary.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("secondary event never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	_ = h
}

// TestGroupRaiseWithDeadMember: the raise reports the dead member but the
// living ones are still handled.
func TestGroupRaiseWithDeadMember(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"h": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	gidCh := make(chan ids.GroupID, 1)
	parked := make(chan ids.ThreadID, 2)
	var oid ids.ObjectID
	spec := object.Spec{
		Name: "members",
		Entries: map[string]object.Entry{
			"root": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("GEV"); err != nil {
					return nil, err
				}
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "GEV", Kind: event.KindProc, Proc: "h"}); err != nil {
					return nil, err
				}
				// One short-lived member, inheriting group + handler.
				if _, err := ctx.InvokeAsync(oid, "brief"); err != nil {
					return nil, err
				}
				gidCh <- gid
				parked <- ctx.Thread()
				return nil, ctx.Sleep(time.Second)
			},
			"brief": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, nil // dies immediately, stays in the group list
			},
		},
	}
	var err error
	oid, err = sys.CreateObject(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "root")
	if err != nil {
		t.Fatal(err)
	}
	gid := <-gidCh
	<-parked
	// Let the brief member finish.
	time.Sleep(50 * time.Millisecond)

	err = sys.Raise(1, "GEV", event.ToGroup(gid), nil)
	if err == nil {
		t.Fatal("group raise with dead member reported no error")
	}
	if !errors.Is(err, ErrThreadNotFound) {
		t.Fatalf("err = %v, want ErrThreadNotFound for the dead member", err)
	}
	deadline := time.Now().Add(waitShort)
	for handled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("living member never handled the event")
		}
		time.Sleep(time.Millisecond)
	}
	_ = h
}

func TestDetachHandlerErrors(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, ctx.DetachHandler(event.Interrupt)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "run")
	if _, err := h.WaitTimeout(waitShort); err == nil {
		t.Fatal("DetachHandler with nothing attached succeeded")
	}
}

func TestRaiseAndWaitUnhandledObject(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, echoSpec("plain"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RaiseAndWait(1, event.Interrupt, event.ToObject(oid), nil)
	if !errors.Is(err, ErrUnhandledSync) {
		t.Fatalf("err = %v, want ErrUnhandledSync", err)
	}
}

// TestNestedLocalFrames checks that local cross-object calls stack frames
// and report the innermost object as the thread's current context.
func TestNestedLocalFrames(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var innerObj, midObj ids.ObjectID
	inner, err := sys.CreateObject(1, object.Spec{
		Name: "inner",
		Entries: map[string]object.Entry{
			"whoami": func(ctx object.Ctx, _ []any) ([]any, error) {
				return []any{ctx.Object()}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	innerObj = inner
	mid, err := sys.CreateObject(1, object.Spec{
		Name: "mid",
		Entries: map[string]object.Entry{
			"fwd": func(ctx object.Ctx, _ []any) ([]any, error) {
				res, err := ctx.Invoke(innerObj, "whoami")
				if err != nil {
					return nil, err
				}
				// After the call returns we are back in mid's context.
				return []any{res[0], ctx.Object()}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	midObj = mid
	h, err := sys.Spawn(1, mid, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != innerObj {
		t.Errorf("inner saw Object() = %v, want %v", res[0], innerObj)
	}
	if res[1] != midObj {
		t.Errorf("after return, Object() = %v, want %v", res[1], midObj)
	}
}

// TestChaosStorm fires a storm of events at a working population and
// requires the system to quiesce with every thread accounted for.
func TestChaosStorm(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 3, CallTimeout: 5 * time.Second})
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"chaos": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 16)
	remote, err := sys.CreateObject(3, object.Spec{
		Name: "hopTarget",
		Entries: map[string]object.Entry{
			"visit": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, ctx.Sleep(time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := sys.CreateObject(2, object.Spec{
		Name: "worker",
		Entries: map[string]object.Entry{
			"work": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("CHAOS"); err != nil && !errors.Is(err, event.ErrAlreadyRegistered) {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "CHAOS", Kind: event.KindProc, Proc: "chaos"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				for i := 0; i < 40; i++ {
					if _, err := ctx.Invoke(remote, "visit"); err != nil {
						return nil, err
					}
					if err := ctx.Sleep(time.Millisecond); err != nil {
						return nil, err
					}
				}
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	tids := make([]ids.ThreadID, 0, workers)
	for i := 0; i < workers; i++ {
		if _, err := sys.Spawn(ids.NodeID(i%3+1), worker, "work"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers; i++ {
		tids = append(tids, <-started)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		tid := tids[rng.Intn(len(tids))]
		name := event.Name("CHAOS")
		if i%10 == 9 {
			name = event.Terminate
		}
		// Dead targets are legitimate mid-storm; ignore those errors.
		_ = sys.Raise(ids.NodeID(rng.Intn(3)+1), name, event.ToThread(tid), nil)
		time.Sleep(time.Millisecond)
	}

	// Quiesce: every thread must end, one way or the other.
	for _, hh := range sys.Handles() {
		if _, err := hh.WaitTimeout(30 * time.Second); err != nil &&
			!errors.Is(err, ErrTerminated) && !errors.Is(err, ErrAborted) {
			t.Fatalf("thread %v ended with %v", hh.TID(), err)
		}
	}
	if handled.Load() == 0 {
		t.Fatal("no chaos events were handled")
	}
}
