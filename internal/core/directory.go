package core

// The residency directory backing the locate.Hashed strategy. Every
// thread has a home directory node — locate.Hashed hashes the ThreadID
// onto the membership-keyed consistent-hash ring — and the kernels that
// host the thread keep that home informed as the thread moves: a
// fire-and-forget dirUpdate on every activation arrival and final
// departure. The directory is a hint store, not a source of truth; a
// stale or lost update only costs a fallback scatter on the next cold
// locate, so updates need no acks and the table needs no persistence
// (a restarted node simply starts empty).
//
// All of it is dormant unless the configured Locator is hash-based:
// System.dirStrategy is resolved once at boot and every hook checks it.

import (
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/metrics"
)

const (
	// kindDirGet asks a directory node for a thread's recorded residency
	// (RPC; body ids.ThreadID, reply ids.NodeID — NoNode on a miss).
	kindDirGet = "k.dir.get"
	// kindDirUpdate publishes a residency change to the thread's
	// directory node (one-way; body dirUpdate).
	kindDirUpdate = "k.dir.update"
)

// dirUpdate is one residency publication. Remove entries are conditional:
// the directory drops the mapping only while it still points at Node, so
// a departure racing the next host's arrival cannot erase fresher truth.
type dirUpdate struct {
	TID    ids.ThreadID
	Node   ids.NodeID
	Remove bool
}

// WireSize charges the two identifiers plus the flag.
func (dirUpdate) WireSize() int { return 14 }

// directory is one node's shard of the residency directory.
type directory struct {
	mu sync.Mutex
	m  map[ids.ThreadID]ids.NodeID
}

func (t *directory) get(tid ids.ThreadID) ids.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[tid]
}

func (t *directory) apply(u dirUpdate) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if u.Remove {
		if t.m[u.TID] == u.Node {
			delete(t.m, u.TID)
		}
		return
	}
	if t.m == nil {
		t.m = make(map[ids.ThreadID]ids.NodeID)
	}
	t.m[u.TID] = u.Node
}

// clear empties the shard (node restart: the table is volatile state).
func (t *directory) clear() {
	t.mu.Lock()
	t.m = nil
	t.mu.Unlock()
}

// sweepNode drops every entry naming node (it crashed; the entries are
// stale by definition), returning how many were dropped.
func (t *directory) sweepNode(node ids.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	dropped := 0
	for tid, n := range t.m {
		if n == node {
			delete(t.m, tid)
			dropped++
		}
	}
	return dropped
}

// MembershipView implements locate.DirectoryEnv: the detector's current
// generation and alive set, or the static full cluster without FT.
func (k *Kernel) MembershipView() (uint64, []ids.NodeID) {
	if k.det == nil {
		return 0, k.sys.Nodes()
	}
	m := k.det.View()
	return m.Gen, m.Alive
}

// DirectoryGet implements locate.DirectoryEnv: one RPC to the thread's
// directory node (a free local lookup when this node is the directory).
// A miss is (NoNode, nil); errors are transport-level only.
func (k *Kernel) DirectoryGet(dir ids.NodeID, tid ids.ThreadID) (ids.NodeID, error) {
	if dir == k.node {
		return k.dir.get(tid), nil
	}
	k.sys.reg.Inc(metrics.CtrDirGet)
	body, err := k.call(dir, kindDirGet, tid)
	if err != nil {
		return ids.NoNode, err
	}
	node, ok := body.(ids.NodeID)
	if !ok {
		return ids.NoNode, fmt.Errorf("core: dir.get reply %T", body)
	}
	return node, nil
}

// dirPublish tells tid's directory node the thread's deepest activation
// arrived here (remove=false) or finally left (remove=true). Called on
// the activation push/pop hot path, so it is a single map check when no
// hash locator is configured, and fire-and-forget otherwise.
func (k *Kernel) dirPublish(tid ids.ThreadID, remove bool) {
	h := k.sys.dirStrategy
	if h == nil || k.crashedLocal() {
		return
	}
	gen, alive := k.MembershipView()
	dir := h.DirNode(gen, alive, tid)
	if !dir.IsValid() {
		return
	}
	u := dirUpdate{TID: tid, Node: k.node, Remove: remove}
	k.sys.reg.Inc(metrics.CtrDirPut)
	if dir == k.node {
		k.dir.apply(u)
		return
	}
	if k.det != nil && k.det.Suspected(dir) {
		// The home is down; the rebuilt ring will pick a new home on the
		// next publication, and locates fall back meanwhile.
		return
	}
	_ = k.netSend(dir, kindDirUpdate, u)
}
