package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/testutil"
	"repro/internal/transport/tcptransport"
)

// tcpCluster is an in-process stand-in for a multi-process deployment:
// one System per node, each with its own tcptransport on a loopback
// socket, exchanging every cross-node message over real TCP through the
// wire codec. cmd/doctnode runs the same construction with the Systems
// in separate OS processes.
type tcpCluster struct {
	sys   map[ids.NodeID]*System
	addrs map[ids.NodeID]string
}

// bootTCPNode builds the transport + System pair for one node of an
// n-node cluster whose peer addresses are already known.
func bootTCPNode(t *testing.T, n int, node ids.NodeID, addrs map[ids.NodeID]string, listen string, gen uint64) *System {
	t.Helper()
	tr, err := tcptransport.New(tcptransport.Config{
		Listen:     listen,
		Peers:      addrs,
		Generation: gen,
		RetryBase:  5 * time.Millisecond,
		RetryMax:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Nodes:       n,
		LocalNodes:  []ids.NodeID{node},
		Transport:   tr,
		CallTimeout: 5 * time.Second,
		FT: FTConfig{
			Enabled:         true,
			HeartbeatPeriod: 10 * time.Millisecond,
			SuspectAfter:    300 * time.Millisecond,
			Generation:      gen,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// bootTCPCluster boots an n-node cluster, one System (and one TCP
// transport) per node, all over loopback.
func bootTCPCluster(t *testing.T, n int) *tcpCluster {
	t.Helper()
	c := &tcpCluster{sys: make(map[ids.NodeID]*System), addrs: make(map[ids.NodeID]string)}
	// Two phases because every transport needs the full address map:
	// bind all listeners first, then attach kernels and start.
	trs := make(map[ids.NodeID]*tcptransport.Transport, n)
	for i := 1; i <= n; i++ {
		node := ids.NodeID(i)
		tr, err := tcptransport.New(tcptransport.Config{
			Listen:    "127.0.0.1:0",
			RetryBase: 5 * time.Millisecond,
			RetryMax:  100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[node] = tr
		c.addrs[node] = tr.Addr()
	}
	for node, tr := range trs {
		if err := tr.SetPeers(c.addrs); err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(Config{
			Nodes:       n,
			LocalNodes:  []ids.NodeID{node},
			Transport:   tr,
			CallTimeout: 5 * time.Second,
			FT: FTConfig{
				Enabled:         true,
				HeartbeatPeriod: 10 * time.Millisecond,
				SuspectAfter:    300 * time.Millisecond,
				Generation:      1,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.sys[node] = sys
	}
	t.Cleanup(func() {
		for _, s := range c.sys {
			s.Close()
		}
	})
	return c
}

// TestTCPClusterExactlyOnce is the chaos-suite exactly-once scenario
// transplanted onto real sockets: three single-node Systems over
// loopback TCP, injected message loss on every sender, events raised at
// a remote object. The reliable envelope must recover every loss and
// suppress every duplicate — now across a real wire with the binary
// codec in the path.
func TestTCPClusterExactlyOnce(t *testing.T) {
	c := bootTCPCluster(t, 3)
	var handled atomic.Int64
	sink, err := c.sys[1].CreateObject(1, object.Spec{
		Name: "sink",
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				handled.Add(1)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Loss on every process's outbound path exercises retransmission
	// through real reconnect-capable links.
	for _, s := range c.sys {
		s.SetDropRate(0.05)
	}

	const perNode = 15
	for i := 0; i < perNode; i++ {
		for _, node := range []ids.NodeID{2, 3} {
			if err := c.sys[node].Raise(node, event.Interrupt, event.ToObject(sink), nil); err != nil {
				t.Fatalf("raise from %v: %v", node, err)
			}
		}
	}
	for _, s := range c.sys {
		s.SetDropRate(0)
	}

	const want = 2 * perNode
	testutil.WaitFor(t, "all events handled over TCP", func() bool { return handled.Load() >= want })
	time.Sleep(150 * time.Millisecond) // straggler retransmits must not double-run
	if got := handled.Load(); got != want {
		t.Fatalf("handler ran %d times for %d raises, want exactly once each", got, want)
	}
}

// TestTCPClusterRestartExactlyOnce kills one node's System (its sockets
// die with it, as in a process crash) and boots a replacement on the
// same address with a higher incarnation generation. The replacement's
// sequence space restarts at 1; peers must deliver its traffic — the
// generation epoch resets their dedup windows — while never re-running a
// pre-crash event.
func TestTCPClusterRestartExactlyOnce(t *testing.T) {
	c := bootTCPCluster(t, 3)
	var handled atomic.Int64
	sink, err := c.sys[1].CreateObject(1, object.Spec{
		Name: "sink",
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				handled.Add(1)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const before = 10
	for i := 0; i < before; i++ {
		if err := c.sys[2].Raise(2, event.Interrupt, event.ToObject(sink), nil); err != nil {
			t.Fatalf("pre-crash raise: %v", err)
		}
	}
	testutil.WaitFor(t, "pre-crash events handled", func() bool { return handled.Load() >= before })

	// Crash node 2's process: the System closes and takes every socket
	// with it. Peers see connection resets and a silent heartbeat.
	c.sys[2].Close()

	// Restart on the same address as a new incarnation (generation 2,
	// the way doctnode stamps time.Now on boot).
	sys2 := bootTCPNode(t, 3, 2, c.addrs, c.addrs[2], 2)
	c.sys[2] = sys2 // cluster cleanup closes the replacement

	// The replacement's raises — fresh sequence numbers under the new
	// generation — must all land exactly once.
	const after = 10
	testutil.WaitFor(t, "post-restart raise to succeed", func() bool {
		return sys2.Raise(2, event.Interrupt, event.ToObject(sink), nil) == nil
	})
	for i := 1; i < after; i++ {
		if err := sys2.Raise(2, event.Interrupt, event.ToObject(sink), nil); err != nil {
			t.Fatalf("post-restart raise %d: %v", i, err)
		}
	}
	const want = before + after
	testutil.WaitFor(t, "post-restart events handled", func() bool { return handled.Load() >= want })
	time.Sleep(150 * time.Millisecond)
	if got := handled.Load(); got != want {
		t.Fatalf("handled %d events for %d raises — the restart leaked or swallowed deliveries", got, want)
	}
}

// TestTCPClusterRPCInvoke pins the synchronous path: a thread on one
// process invoking an object entry homed on another, results and app
// errors crossing the codec.
func TestTCPClusterRPCInvoke(t *testing.T) {
	c := bootTCPCluster(t, 2)
	obj, err := c.sys[1].CreateObject(1, object.Spec{
		Name: "svc",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, args []any) ([]any, error) {
				return []any{fmt.Sprintf("echo:%v", args[0])}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.sys[2].Spawn(2, obj, "run", "hi")
	if err != nil {
		t.Fatalf("spawn across TCP: %v", err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if len(res) != 1 || res[0] != "echo:hi" {
		t.Fatalf("invoke over TCP returned %v, want [echo:hi]", res)
	}
}
