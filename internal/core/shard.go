package core

import "sync"

// The kernel's hot maps used to share one Kernel.mu, so every RPC
// completion, every delivery, and every activation push/pop serialized on
// the same lock. They now each have their own lock, and the RPC waiter map
// — touched twice per kernel call, by caller and fabric dispatcher alike —
// is striped by request ID so concurrent calls rarely contend at all.

// waiterShards is the stripe count for the RPC waiter table. Power of two
// so the shard index is a mask of the (sequential) request ID, which also
// spreads consecutive requests across distinct stripes.
const waiterShards = 32

// waiterTable maps in-flight RPC request IDs to their reply channels.
type waiterTable struct {
	shards [waiterShards]waiterShard
}

type waiterShard struct {
	mu sync.Mutex
	m  map[uint64]chan rpcResponse
}

func newWaiterTable() *waiterTable {
	t := &waiterTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]chan rpcResponse)
	}
	return t
}

func (t *waiterTable) shard(id uint64) *waiterShard {
	return &t.shards[id&(waiterShards-1)]
}

// put registers the reply channel for request id.
func (t *waiterTable) put(id uint64, ch chan rpcResponse) {
	s := t.shard(id)
	s.mu.Lock()
	s.m[id] = ch
	s.mu.Unlock()
}

// take removes and returns the reply channel for request id; ok is false
// if the waiter already gave up (timeout) or was never registered.
func (t *waiterTable) take(id uint64) (chan rpcResponse, bool) {
	s := t.shard(id)
	s.mu.Lock()
	ch, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return ch, ok
}

// drop removes the waiter for request id, if still present.
func (t *waiterTable) drop(id uint64) {
	s := t.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}
