package core

import (
	"sync"

	"repro/internal/ids"
)

// The kernel's hot maps used to share one Kernel.mu, so every RPC
// completion, every delivery, and every activation push/pop serialized on
// the same lock. They now each have their own lock, and the RPC waiter map
// — touched twice per kernel call, by caller and fabric dispatcher alike —
// is striped by request ID so concurrent calls rarely contend at all.

// waiterShards is the stripe count for the RPC waiter table. Power of two
// so the shard index is a mask of the (sequential) request ID, which also
// spreads consecutive requests across distinct stripes.
const waiterShards = 32

// waiterEntry is one in-flight RPC: the reply channel plus the node the
// request went to, so failNode can sweep every call aimed at a node the
// failure detector just declared dead.
type waiterEntry struct {
	ch chan rpcResponse
	to ids.NodeID
}

// waiterTable maps in-flight RPC request IDs to their reply channels.
type waiterTable struct {
	shards [waiterShards]waiterShard
}

type waiterShard struct {
	mu sync.Mutex
	m  map[uint64]waiterEntry
}

func newWaiterTable() *waiterTable {
	t := &waiterTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]waiterEntry)
	}
	return t
}

func (t *waiterTable) shard(id uint64) *waiterShard {
	return &t.shards[id&(waiterShards-1)]
}

// put registers the reply channel for request id sent to node to.
func (t *waiterTable) put(id uint64, to ids.NodeID, ch chan rpcResponse) {
	s := t.shard(id)
	s.mu.Lock()
	s.m[id] = waiterEntry{ch: ch, to: to}
	s.mu.Unlock()
}

// take removes and returns the entry for request id; ok is false if the
// waiter already gave up (timeout) or was never registered.
func (t *waiterTable) take(id uint64) (waiterEntry, bool) {
	s := t.shard(id)
	s.mu.Lock()
	w, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return w, ok
}

// drop removes the waiter for request id, if still present.
func (t *waiterTable) drop(id uint64) {
	s := t.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// syncShards stripes the raise_and_wait waiter table, for the same reason
// waiterShards stripes the RPC table: releases arrive on fabric dispatch
// goroutines while raisers register and deregister concurrently, and IDs
// are sequential, so masking them spreads neighbors across stripes.
const syncShards = 32

// syncTable maps in-flight synchronous raise IDs to their waiters. Unlike
// waiterTable it has get (not take): a group raise receives one release per
// member through the same entry.
type syncTable struct {
	shards [syncShards]syncShard
}

type syncShard struct {
	mu sync.Mutex
	m  map[uint64]*syncWaiter
}

func newSyncTable() *syncTable {
	t := &syncTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*syncWaiter)
	}
	return t
}

func (t *syncTable) shard(id uint64) *syncShard {
	return &t.shards[id&(syncShards-1)]
}

func (t *syncTable) put(id uint64, w *syncWaiter) {
	s := t.shard(id)
	s.mu.Lock()
	s.m[id] = w
	s.mu.Unlock()
}

func (t *syncTable) get(id uint64) *syncWaiter {
	s := t.shard(id)
	s.mu.Lock()
	w := s.m[id]
	s.mu.Unlock()
	return w
}

func (t *syncTable) drop(id uint64) {
	s := t.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// clear empties the table (node restart: pending synchronous raises died
// with the node). The waiters are not recycled here — their raisers'
// deferred cleanup still runs and recycles them.
func (t *syncTable) clear() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.m = make(map[uint64]*syncWaiter)
		s.mu.Unlock()
	}
}

// failNode completes every in-flight call aimed at node with err. The
// reply channels are buffered (capacity 1) and an entry is removed before
// its send, so each channel receives at most once; callers that already
// timed out removed their entries first and are skipped. Returns how many
// waiters were failed.
func (t *waiterTable) failNode(node ids.NodeID, err error) int {
	failed := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		var reqIDs []uint64
		var chs []chan rpcResponse
		for id, w := range s.m {
			if w.to == node {
				reqIDs = append(reqIDs, id)
				chs = append(chs, w.ch)
			}
		}
		for _, id := range reqIDs {
			delete(s.m, id)
		}
		s.mu.Unlock()
		for j, ch := range chs {
			ch <- rpcResponse{ID: reqIDs[j], Err: err}
			failed++
		}
	}
	return failed
}
