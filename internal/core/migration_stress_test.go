package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/metrics"
	"repro/internal/object"
)

// TestMigrationStressExactlyOnce hammers a migrating thread with
// asynchronous raises through a location cache. The thread bounces between
// node 1 (its root) and node 2 (a remote object it invokes in a loop), so
// cached locations go stale constantly; the raiser on node 3 must still
// get every event delivered exactly once — events that race into an
// activation that is returning to its caller are rerouted, not dropped or
// death-noticed — and the stale-entry counter must advance. Run under
// -race (the Makefile's race target does) this doubles as the locking
// proof for the cache + sharded kernel state.
func TestMigrationStressExactlyOnce(t *testing.T) {
	reg := metrics.NewRegistry()
	cache := locate.NewCache(locate.Broadcast{}, 256)
	sys := newSystem(t, Config{
		Nodes:       3,
		Latency:     100 * time.Microsecond, // widen the migration race windows
		Locator:     cache,
		Metrics:     reg,
		CallTimeout: 10 * time.Second,
	})

	var (
		seenMu sync.Mutex
		seen   = make(map[int]int)
	)
	err := sys.RegisterProc("mig.record", func(_ object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
		if s, ok := eb.User["seq"].(int); ok {
			seenMu.Lock()
			seen[s]++
			seenMu.Unlock()
		}
		return event.VerdictResume
	})
	if err != nil {
		t.Fatal(err)
	}

	var hopCount atomic.Int64
	hopOID, err := sys.CreateObject(2, object.Spec{
		Name: "hop",
		Entries: map[string]object.Entry{
			// Dwell so the thread is genuinely resident at node 2 part of
			// the time: locates then cache node 2 (Here) and go stale when
			// the activation retires back to node 1, exercising the
			// invalidate-and-relocate path rather than only the transit-host
			// fallback. The dwell varies per visit — the fabric latency is
			// an exact constant, and a fixed dwell phase-locks the bounce
			// cycle with the raiser's probe cycle so probes always land in
			// the same window.
			"hop": func(object.Ctx, []any) ([]any, error) {
				n := hopCount.Add(1)
				if n%10 == 0 {
					// A long dwell every tenth visit: several raises in a
					// row find the thread settled here, so the first one
					// caches the location and the following ones hit it. A
					// raise cycle is a few milliseconds end to end (locate
					// RTT + post RTT + the kernel's retry backoffs), so the
					// dwell must span several of those.
					time.Sleep(25 * time.Millisecond)
					return nil, nil
				}
				time.Sleep(time.Duration(n%8) * 70 * time.Microsecond)
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	started := make(chan ids.ThreadID, 1)
	bouncerOID, err := sys.CreateObject(1, object.Spec{
		Name: "bouncer",
		Entries: map[string]object.Entry{
			"bounce": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("MIGEV"); err != nil {
					return nil, err
				}
				ref := event.HandlerRef{Event: "MIGEV", Kind: event.KindProc, Proc: "mig.record"}
				if err := ctx.AttachHandler(ref); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				for !stop.Load() {
					if _, err := ctx.Invoke(hopOID, "hop"); err != nil {
						return nil, err
					}
				}
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, bouncerOID, "bounce")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started

	// Raise until both floors are met: a minimum event count, and at least
	// one stale cache entry detected (the migration actually raced the
	// cache). A raise fails only transiently (the thread mid-flight
	// everywhere and its TCB chain mid-update); retry the same sequence
	// number so the delivered set stays dense. If the bouncer dies, fail
	// immediately with its error instead of retrying forever.
	const (
		minEvents = 200
		maxEvents = 2000
	)
	sent := 0
	sendDeadline := time.Now().Add(60 * time.Second)
	for sent < maxEvents {
		select {
		case <-h.Done():
			_, werr := h.Wait()
			t.Fatalf("bouncer died after %d raises: %v", sent, werr)
		default:
		}
		if time.Now().After(sendDeadline) {
			t.Fatalf("raise loop stalled: only %d/%d events accepted before deadline", sent, minEvents)
		}
		err := sys.Raise(3, "MIGEV", event.ToThread(tid), map[string]any{"seq": sent})
		if err != nil {
			time.Sleep(time.Millisecond)
			continue
		}
		sent++
		if sent >= minEvents && reg.Get(metrics.CtrLocateCacheStale) > 0 {
			break
		}
	}

	// Every accepted raise must eventually be delivered (rerouted events
	// included), each exactly once.
	deadline := time.Now().Add(30 * time.Second)
	for {
		seenMu.Lock()
		total := len(seen)
		seenMu.Unlock()
		if total >= sent {
			break
		}
		if time.Now().After(deadline) {
			seenMu.Lock()
			defer seenMu.Unlock()
			t.Fatalf("delivered %d/%d events before timeout", len(seen), sent)
		}
		time.Sleep(2 * time.Millisecond)
	}

	stop.Store(true)
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatalf("bouncer exit: %v", err)
	}

	seenMu.Lock()
	defer seenMu.Unlock()
	for i := 0; i < sent; i++ {
		if seen[i] != 1 {
			t.Errorf("seq %d delivered %d times, want exactly once", i, seen[i])
		}
	}
	if len(seen) != sent {
		t.Errorf("delivered %d distinct events, want %d", len(seen), sent)
	}
	if got := reg.Get(metrics.CtrLocateCacheStale); got == 0 {
		t.Error("stale-entry counter did not advance while the thread migrated")
	}
	if reg.Get(metrics.CtrLocateCacheHit) == 0 {
		t.Error("cache hit counter is zero; the cache never served a location")
	}
	t.Logf("sent=%d stale=%d hit=%d miss=%d probes=%d",
		sent,
		reg.Get(metrics.CtrLocateCacheStale),
		reg.Get(metrics.CtrLocateCacheHit),
		reg.Get(metrics.CtrLocateCacheMiss),
		reg.Get(metrics.CtrLocateProbe))
}
