package core

import (
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/failure"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/reliable"
	"repro/internal/transport"
)

// kindHeartbeat is the failure detector's heartbeat message kind. It
// bypasses the reliable envelope: heartbeats are periodic and
// self-correcting, so retransmitting a lost one is pointless.
const kindHeartbeat = "k.fd.hb"

// heartbeat is the (empty) heartbeat payload.
type heartbeat struct{}

// WireSize charges a minimal frame.
func (heartbeat) WireSize() int { return 8 }

// kindGossip carries one encoded gossip protocol message (failure
// detector gossip mode, DESIGN.md §13). Like heartbeats it bypasses the
// reliable envelope: the protocol has its own redundancy — probes repeat
// every period and rumors are retransmitted λ·log n times — so reliable
// retransmission of an individual message would only add load.
const kindGossip = "k.fd.gossip"

// gossipFrame wraps the canonical gossip encoding for the fabric.
type gossipFrame struct{ Data []byte }

// WireSize charges the encoded bytes plus a small header.
func (g gossipFrame) WireSize() int { return 8 + len(g.Data) }

// kindFDNotice disseminates a locally observed membership transition in
// ring monitoring mode: only the crashed node's ring watcher sees it fall
// silent, so the watcher tells everyone else (reliably — a lost notice
// would leave a peer routing calls at a dead node until its call timeout).
// Gossip mode does not use it: dissemination rides the piggyback blocks.
const kindFDNotice = "k.fd.notice"

// fdNotice is one membership transition, relayed by its first observer.
type fdNotice struct {
	Node ids.NodeID
	Up   bool
}

// WireSize charges node id + flag.
func (fdNotice) WireSize() int { return 10 }

// FTConfig parameterizes the crash-fault-tolerance subsystem: a heartbeat
// failure detector per node (internal/failure), an ack/retry envelope
// around all kernel RPC traffic (internal/reliable), and the kernel
// reactions that turn a detected crash into prompt failures and recovery
// instead of hung protocols.
type FTConfig struct {
	// Enabled turns the subsystem on. Off (the default), the system
	// behaves exactly as before: reliable-fabric assumptions, no
	// detection, no retries.
	Enabled bool
	// HeartbeatPeriod is the detector broadcast interval
	// (0 = failure.DefaultPeriod).
	HeartbeatPeriod time.Duration
	// SuspectAfter is the detector's suspicion threshold
	// (0 = failure.DefaultSuspectMultiple × period).
	SuspectAfter time.Duration
	// Ring falls back to the ring-successor monitoring topology instead
	// of the default SWIM-style gossip (the escape hatch for workloads
	// tuned against ring-mode traffic patterns). Ignored when
	// Wire.EagerHeartbeats forces legacy all-pairs heartbeating.
	Ring bool
	// RetryBase, RetryMax and MaxAttempts parameterize the reliable
	// envelope's retransmit backoff (0 = reliable defaults).
	RetryBase   time.Duration
	RetryMax    time.Duration
	MaxAttempts int
	// Generation is this process's incarnation epoch, stamped into every
	// reliable envelope (reliable.Config.Generation). A restarted node
	// server (cmd/doctnode) passes a strictly higher value — time.Now() —
	// so peers reset their dedup windows instead of swallowing the fresh
	// incarnation's restarted sequence space. Zero (the default) is
	// correct for single-incarnation in-process clusters.
	Generation uint64
}

// initFT wires this kernel's reliable endpoint and failure detector.
// Called from NewSystem before the fabric starts.
func (k *Kernel) initFT() {
	ft := k.sys.cfg.FT
	wire := k.sys.cfg.Wire
	peers := make([]ids.NodeID, 0, k.sys.cfg.Nodes-1)
	for _, n := range k.sys.Nodes() {
		if n != k.node {
			peers = append(peers, n)
		}
	}

	// Topology precedence: legacy all-pairs when the wire config demands
	// eager heartbeats, else ring if explicitly requested, else gossip —
	// the scale default (O(1) probe load per node, piggybacked
	// dissemination; DESIGN.md §13).
	ring := !wire.EagerHeartbeats && ft.Ring
	gossip := !wire.EagerHeartbeats && !ft.Ring
	k.fdRing = ring
	k.det = failure.New(failure.Config{
		Period:       ft.HeartbeatPeriod,
		SuspectAfter: ft.SuspectAfter,
		Ring:         ring,
		Gossip:       gossip,
		Seed:         k.sys.cfg.Seed,
		Metrics:      k.sys.reg,
		Clock:        k.sys.cfg.Clock,
	}, k.node, peers, func(to ids.NodeID) {
		_ = k.sys.fabric.Send(netsim.Message{From: k.node, To: to, Kind: kindHeartbeat, Payload: heartbeat{}, Class: transport.ClassSystem})
	})
	if gossip {
		k.det.SetGossipSend(func(to ids.NodeID, payload []byte) {
			_ = k.sys.fabric.Send(netsim.Message{From: k.node, To: to, Kind: kindGossip, Payload: gossipFrame{Data: payload}, Class: transport.ClassSystem})
		})
	}
	k.det.Subscribe(func(ev failure.Event) {
		if !ev.Remote {
			k.disseminateFD(ev)
		}
		k.sys.onMembershipEvent(k, ev)
	})

	// Every reliable transmission doubles as liveness evidence at its
	// receiver, so tell the detector about outbound data: the next
	// explicit heartbeat toward that peer is redundant and gets
	// suppressed (ring mode only; legacy eager heartbeats ignore it).
	// With batching on, the ack round trip can absorb up to two flush
	// windows (envelope out, ack back) on top of the delayed-ack window, so
	// the default retransmit base must sit above all three or every
	// coalesced envelope reads as a loss. An explicit RetryBase is honored.
	retryBase := ft.RetryBase
	if retryBase == 0 && k.sys.batching() {
		fi := wire.FlushInterval
		if fi <= 0 {
			fi = netsim.DefaultFlushInterval
		}
		retryBase = reliable.DefaultRetryBase + 2*fi
	}
	relCfg := reliable.Config{
		MaxAttempts:    ft.MaxAttempts,
		RetryBase:      retryBase,
		RetryMax:       ft.RetryMax,
		Generation:     ft.Generation,
		StandaloneAcks: wire.StandaloneAcks,
		AckDelay:       wire.AckDelay,
		Metrics:        k.sys.reg,
		Clock:          k.sys.cfg.Clock,
	}
	if k.dur != nil {
		// Log every acceptance and hold acknowledgement until the log
		// commits: an acked envelope is a durable envelope, so a crash
		// after the ack cannot reopen the dedup window (DESIGN.md §14).
		// The append is async; piggybacked acks advertise the committed
		// frontier without blocking the fabric's flush path, standalone
		// acks wait for the group commit, and concurrent accepts share
		// one fsync instead of serializing on it.
		relCfg.OnAccept = k.dur.onAccept
		relCfg.AckGate = k.dur.ackGate
		relCfg.AckFrontier = k.dur.ackFrontier
		if !k.sys.cfg.Durability.NoFsync {
			// Standalone acks now trail the commit; give retransmits
			// fsync headroom so a healthy delayed ack beats the first
			// retry instead of triggering a duplicate per envelope.
			relCfg.RetryBase = retryBase + 10*time.Millisecond
		}
	}
	k.rel = reliable.New(relCfg, k.node, func(m netsim.Message) error {
		k.det.ObserveSend(m.To)
		return k.sys.fabric.Send(m)
	}, k.dispatchNet, k.deadLetter)
	if k.dur != nil {
		// Replayed dedup windows go live before the fabric starts — a
		// retransmit that crosses the restart must land in a window that
		// remembers it.
		k.dur.installWindows(k.rel)
	}
}

// disseminateFD relays a locally observed membership transition to the
// rest of the cluster. Only needed in ring mode, where a crash is seen by
// exactly one watcher: legacy all-pairs detectors each find out on their
// own, and gossip mode piggybacks transitions on its own protocol
// messages. The subject itself and already-suspected peers are skipped.
func (k *Kernel) disseminateFD(ev failure.Event) {
	if !k.fdRing || k.rel == nil {
		return
	}
	for _, n := range k.sys.Nodes() {
		if n == k.node || n == ev.Node || k.det.Suspected(n) {
			continue
		}
		_ = k.rel.SendClass(n, kindFDNotice, fdNotice{Node: ev.Node, Up: ev.Up}, transport.ClassSystem)
	}
}

// deadLetter receives payloads the reliable endpoint gave up on. An
// undeliverable request fails its local waiter immediately — this is what
// converts a lost event post into a prompt error (and thence a
// THREAD_DEATH release or NODE_DOWN-wrapped failure) at the raiser,
// instead of a raise_and_wait hung until its timeout. Undeliverable
// replies need no handling here: the remote caller's own waiter is failed
// by its kernel's failNode sweep or call timeout.
// An undeliverable fan-out relay step re-parents the dead child's
// subtree here (fanout.go): its members and grandchildren are served by
// this node instead of being orphaned mid-broadcast.
func (k *Kernel) deadLetter(to ids.NodeID, kind string, payload any, _ error) {
	if kind == kindFanout {
		req, ok := payload.(*fanoutReq)
		if !ok {
			return
		}
		if idx := req.nodeIndex(to); idx >= 0 && !k.crashedLocal() {
			k.closingMu.RLock()
			if k.closing {
				k.closingMu.RUnlock()
				return
			}
			k.wg.Add(1)
			k.closingMu.RUnlock()
			go func() {
				defer k.wg.Done()
				k.adoptFanoutSubtree(req, idx)
			}()
		}
		return
	}
	if kind != msgRPCReq {
		return
	}
	req, ok := payload.(rpcRequest)
	if !ok {
		return
	}
	if w, ok := k.waiters.take(req.ID); ok {
		w.ch <- rpcResponse{ID: req.ID, Err: fmt.Errorf("core: %s to %v undeliverable: %w", req.Kind, to, ErrNodeDown)}
	}
}

// Local crash state. The channel exists on every kernel — FT on or off —
// so injected crashes promptly unblock anything waiting inside the crashed
// node (its goroutines must die with it, not linger for a timeout).

// crashedLocal reports whether this kernel is currently crashed.
func (k *Kernel) crashedLocal() bool { return k.downFlag.Load() }

// downChan returns the channel closed while this kernel is crashed. Taken
// fresh at each use because a restart replaces it.
func (k *Kernel) downChan() <-chan struct{} {
	k.downMu.Lock()
	ch := k.downCh
	k.downMu.Unlock()
	return ch
}

// markCrashed flips the kernel into the crashed state, returning false if
// it already was.
func (k *Kernel) markCrashed() bool {
	k.downMu.Lock()
	defer k.downMu.Unlock()
	if k.downFlag.Load() {
		return false
	}
	k.downFlag.Store(true)
	close(k.downCh)
	return true
}

// markRestarted clears the crashed state with a fresh crash channel.
func (k *Kernel) markRestarted() {
	k.downMu.Lock()
	defer k.downMu.Unlock()
	k.downCh = make(chan struct{})
	k.downFlag.Store(false)
}

// CrashNode fail-stops a node: the fabric drops its traffic, its master
// handler threads stop, and every resident activation dies with
// ErrNodeCrashed. The crash is injectable with or without the FT
// subsystem; only detection and recovery require it.
func (s *System) CrashNode(node ids.NodeID) error {
	k, err := s.Kernel(node)
	if err != nil {
		return err
	}
	if !k.markCrashed() {
		return fmt.Errorf("%w: %v", ErrNodeCrashed, node)
	}
	if fi := s.injector(); fi != nil {
		_ = fi.CrashNode(node)
	}
	if k.dur != nil {
		// The crash closes the WAL: whatever reached the log survives,
		// anything buffered in a dying goroutine does not. Restart reopens
		// and replays.
		k.dur.close()
	}
	if k.det != nil {
		// A fail-stopped node emits no heartbeats and suspects nobody.
		k.det.Suspend()
	}

	// Master handler threads die with the node; a restart recreates them
	// lazily on the next object event.
	k.masterMu.Lock()
	masters := make([]*master, 0, len(k.masters))
	for _, m := range k.masters {
		masters = append(masters, m)
	}
	k.masters = make(map[ids.ObjectID]*master)
	k.masterMu.Unlock()
	for _, m := range masters {
		m.stop()
	}

	// Every activation executing at the node is lost. Stopping them
	// unwinds their goroutines promptly (kernel waits select on the crash
	// channel), which models the threads dying rather than the simulation
	// leaking goroutines that compute on.
	k.actMu.Lock()
	acts := make([]*activation, 0, len(k.acts))
	for _, stack := range k.acts {
		acts = append(acts, stack...)
	}
	k.actMu.Unlock()
	for _, a := range acts {
		a.stop(ErrNodeCrashed)
	}
	return nil
}

// RestartNode brings a crashed node back up. Volatile kernel state —
// thread control blocks, activation stacks, pending synchronous raises —
// died with the node; resident objects and their DSM segments persist, as
// DO/CT objects are "persistent by nature" (the disk survived the crash).
func (s *System) RestartNode(node ids.NodeID) error {
	k, err := s.Kernel(node)
	if err != nil {
		return err
	}
	if !k.crashedLocal() {
		return fmt.Errorf("core: restart of %v: node is not crashed", node)
	}
	k.tcbs.Clear()
	k.actMu.Lock()
	k.acts = make(map[ids.ThreadID][]*activation)
	k.actMu.Unlock()
	k.syncWait.clear()
	// Cached attribute snapshots are volatile kernel state: delta senders
	// will miss, get a resync error, and fall back to one full snapshot.
	k.attrCache.Clear()
	// So is this node's residency-directory shard: threads republish as
	// they move, and locates fall back to scatter until they do.
	k.dir.clear()
	if k.det != nil {
		// The restarted node's own arrival clocks are stale (every peer
		// heartbeated into the void while it was down); Resume resets them
		// so it does not instantly suspect the whole cluster.
		k.det.Resume()
	}
	if k.dur != nil {
		// Replay disk state before the node is reachable again. Durable-
		// covered memory state is reset from the replay, not trusted: an
		// in-process restart leaves object KV and windows intact in RAM,
		// which would mask replay holes the simulation checker exists to
		// catch.
		if _, err := k.dur.reopen(); err != nil {
			return fmt.Errorf("core: restart of %v: %w", node, err)
		}
	}
	k.markRestarted()
	if fi := s.injector(); fi != nil {
		return fi.RestartNode(node)
	}
	return nil
}

// Crashed reports whether node is currently crashed.
func (s *System) Crashed(node ids.NodeID) bool {
	k, err := s.Kernel(node)
	return err == nil && k.crashedLocal()
}

// FTEnabled reports whether the crash-fault-tolerance subsystem is on.
func (s *System) FTEnabled() bool { return s.cfg.FT.Enabled }

// Membership returns a cluster view: the first alive detector's view when
// FT is enabled, otherwise a static view derived from injected crashes.
func (s *System) Membership() failure.Membership {
	for i := 1; i <= s.cfg.Nodes; i++ {
		k := s.kernels[ids.NodeID(i)]
		if k != nil && k.det != nil && !k.crashedLocal() {
			return k.det.View()
		}
	}
	var m failure.Membership
	for i := 1; i <= s.cfg.Nodes; i++ {
		n := ids.NodeID(i)
		if k := s.kernels[n]; k != nil && k.crashedLocal() {
			m.Suspected = append(m.Suspected, n)
		} else {
			m.Alive = append(m.Alive, n)
		}
	}
	return m
}

// MembershipAt returns the named node's own failure-detector view — its
// local opinion of the cluster. Unlike Membership it does not search for
// an alive node: per-node convergence checks (internal/sim) pick the
// nodes themselves, including ones that may be crashed or partitioned.
func (s *System) MembershipAt(node ids.NodeID) (failure.Membership, error) {
	k, err := s.Kernel(node)
	if err != nil {
		return failure.Membership{}, err
	}
	if k.det == nil {
		return failure.Membership{}, fmt.Errorf("core: node %v has no failure detector (FT disabled)", node)
	}
	return k.det.View(), nil
}

// WatchMembership registers an object to receive NODE_DOWN / NODE_UP
// events on cluster membership transitions (deduplicated cluster-wide, one
// event per transition). The object needs handlers for those names.
func (s *System) WatchMembership(oid ids.ObjectID) {
	s.ftMu.Lock()
	s.watchers = append(s.watchers, oid)
	s.ftMu.Unlock()
}

// onMembershipEvent funnels every detector's transitions through a
// cluster-level dedup: n-1 surviving detectors each discover a crash, but
// the recovery reactions — cache invalidation, waiter sweeps, lock
// reclaim, watcher notification — must run once per transition, not n-1
// times. The configured Locator instance is shared by every kernel, so
// invalidating it once is both sufficient and required.
func (s *System) onMembershipEvent(observer *Kernel, ev failure.Event) {
	if observer.crashedLocal() {
		return
	}
	select {
	case <-s.closed:
		return
	default:
	}
	s.ftMu.Lock()
	if ev.Up {
		if !s.ftDown[ev.Node] {
			s.ftMu.Unlock()
			return
		}
		delete(s.ftDown, ev.Node)
	} else {
		if s.ftDown[ev.Node] {
			s.ftMu.Unlock()
			return
		}
		s.ftDown[ev.Node] = true
	}
	watchers := append([]ids.ObjectID(nil), s.watchers...)
	s.ftMu.Unlock()

	name := event.NodeUp
	if ev.Up {
		s.reactNodeUp(observer, ev.Node)
	} else {
		name = event.NodeDown
		s.reactNodeDown(observer, ev.Node)
	}
	for _, oid := range watchers {
		oid := oid
		observer.wg.Add(1)
		go func() {
			defer observer.wg.Done()
			_ = observer.raise(nil, name, event.ToObject(oid), map[string]any{
				"node": ev.Node,
				"gen":  ev.Gen,
			})
		}()
	}
}

// reactNodeDown runs the kernel-side reactions to a freshly detected
// crash, from the first surviving node to observe it.
func (s *System) reactNodeDown(observer *Kernel, node ids.NodeID) {
	// Every location cached at the dead node is stale at once, and so is
	// every residency-directory entry naming it.
	if inv, ok := s.cfg.Locator.(locate.NodeInvalidator); ok {
		inv.InvalidateNode(node)
	}
	if s.dirStrategy != nil {
		for _, ak := range s.kernels {
			if !ak.crashedLocal() {
				ak.dir.sweepNode(node)
			}
		}
	}
	// Calls already in flight toward the dead node would otherwise sit out
	// the full call timeout; fail them now on every surviving kernel.
	err := fmt.Errorf("%w: %v", ErrNodeDown, node)
	for _, ak := range s.kernels {
		if ak.crashedLocal() {
			continue
		}
		if n := ak.waiters.failNode(node, err); n > 0 {
			s.reg.Add(metrics.CtrWaitersFailed, int64(n))
		}
	}
	// Locks held by threads lost with the node are reclaimed through the
	// §4.2 TERMINATE-chain machinery (see recovery.go).
	observer.wg.Add(1)
	go func() {
		defer observer.wg.Done()
		s.reclaimOrphanedLocks(observer)
	}()
}

// reactNodeUp runs the kernel-side reactions to a node rejoining the
// cluster.
//
// Cached locations naming the node are invalidated: its thread residency
// died with the crash (TCBs are volatile), so an LRU entry recorded
// before the crash now points at a node that will answer "unknown" — or
// worse, in a restart storm the entry can outlive several crash/rejoin
// cycles and serve stale residency for a full LRU lifetime. Down
// transitions already invalidate; the up transition is the other half.
//
// The orphaned-lock sweep is also re-run. The down-transition sweep
// races grants in flight at the moment of the crash: a lock can be
// granted to a dying thread after the sweep probed it, or during the
// unsettled view a holder's grant reply can be lost so nobody learns the
// lock is taken. Once the node is back, locate probes against its fresh
// incarnation answer definitively, so a rejoin is exactly when a leaked
// hold becomes provably orphaned. The sweep is documented safe to repeat
// — releases are idempotent and liveness is re-checked each pass — so
// running it on both transitions only costs a few probes.
func (s *System) reactNodeUp(observer *Kernel, node ids.NodeID) {
	if inv, ok := s.cfg.Locator.(locate.NodeInvalidator); ok {
		inv.InvalidateNode(node)
	}
	observer.wg.Add(1)
	go func() {
		defer observer.wg.Done()
		s.reclaimOrphanedLocks(observer)
	}()
}

// batching reports whether the transport coalesces sends into frames
// (transport.Batcher is optional; transports without it never batch).
func (s *System) batching() bool {
	b, ok := s.fabric.(transport.Batcher)
	return ok && b.Batching()
}

// injector returns the transport's fault-injection surface, nil when the
// transport has none. Simulated fabrics always have it; pass-throughs
// degrade to no-ops on transports that cannot inject faults.
func (s *System) injector() transport.FaultInjector {
	fi, _ := s.fabric.(transport.FaultInjector)
	return fi
}

// Fault-injection pass-throughs, so harnesses (and the doct facade) need
// no direct fabric access.

// CutLink severs the directed fabric link from → to.
func (s *System) CutLink(from, to ids.NodeID) {
	if fi := s.injector(); fi != nil {
		fi.CutLink(from, to)
	}
}

// HealLink restores the directed fabric link from → to.
func (s *System) HealLink(from, to ids.NodeID) {
	if fi := s.injector(); fi != nil {
		fi.HealLink(from, to)
	}
}

// Partition severs every link between the two node sets, both directions.
func (s *System) Partition(sideA, sideB []ids.NodeID) {
	if fi := s.injector(); fi != nil {
		fi.Partition(sideA, sideB)
	}
}

// HealAll restores every severed link.
func (s *System) HealAll() {
	if fi := s.injector(); fi != nil {
		fi.HealAll()
	}
}

// SetDropRate changes the fabric's message drop probability at runtime.
func (s *System) SetDropRate(rate float64) {
	if fi := s.injector(); fi != nil {
		fi.SetDropRate(rate)
	}
}

// directedInjector returns the transport's per-directed-link fault
// surface, nil when the transport has none.
func (s *System) directedInjector() transport.DirectedFaultInjector {
	fi, _ := s.fabric.(transport.DirectedFaultInjector)
	return fi
}

// SetDropRateDirected sets the drop probability on the directed link
// from → to (max'd with the global rate). Asymmetric loss — acks dropped
// while data flows — is the probe for retransmit/dedup paths that
// symmetric loss cannot reach.
func (s *System) SetDropRateDirected(from, to ids.NodeID, rate float64) {
	if fi := s.directedInjector(); fi != nil {
		fi.SetDropRateDirected(from, to, rate)
	}
}

// CutLinkDirected severs the directed fabric link from → to.
func (s *System) CutLinkDirected(from, to ids.NodeID) {
	if fi := s.directedInjector(); fi != nil {
		fi.CutLinkDirected(from, to)
	}
}

// HealLinkDirected restores the directed fabric link from → to.
func (s *System) HealLinkDirected(from, to ids.NodeID) {
	if fi := s.directedInjector(); fi != nil {
		fi.HealLinkDirected(from, to)
	}
}
