package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/attrcache"
	"repro/internal/dsm"
	"repro/internal/event"
	"repro/internal/failure"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/reliable"
	"repro/internal/thread"
	"repro/internal/trace"
)

// Kernel protocol message kinds (beyond the dsm.* family).
const (
	msgRPCReq = "rpc.req"
	msgRPCRsp = "rpc.rsp"

	kindProbe        = "k.probe"
	kindInvoke       = "k.invoke"
	kindEvThread     = "k.ev.thread"
	kindEvObject     = "k.ev.object"
	kindEvRelease    = "k.ev.release"
	kindAbortChain   = "k.abort"
	kindHandlerRun   = "k.handler.run"
	kindGroupCreate  = "k.group.create"
	kindGroupJoin    = "k.group.join"
	kindGroupMembers = "k.group.members"
	kindKVGet        = "k.kv.get"
	kindKVSet        = "k.kv.set"
	kindKVCas        = "k.kv.cas"
	kindPageInstall  = "k.page.install"
	kindPageDrop     = "k.page.drop"
	kindPageFetch    = "k.page.fetch"
	kindDeleteObject = "k.obj.delete"
)

// errThreadMoved tells a raiser the thread left this node between locate
// and post; the raiser re-locates and retries.
var errThreadMoved = errors.New("core: thread moved before delivery")

// rpcRequest is the envelope for kernel calls.
type rpcRequest struct {
	ID   uint64
	Kind string
	From ids.NodeID
	Body any
}

// WireSize charges the body's size plus a small header.
func (r rpcRequest) WireSize() int { return 32 + payloadSize(r.Body) }

// rpcResponse carries the reply. Errors travel as values: the fabric is an
// in-process simulation, so sentinel identity is preserved across "nodes".
type rpcResponse struct {
	ID   uint64
	Body any
	Err  error
}

// WireSize charges the body's size plus a small header.
func (r rpcResponse) WireSize() int { return 32 + payloadSize(r.Body) }

// payloadSize delegates to the fabric's canonical estimator so every layer
// charges nested payloads identically.
func payloadSize(p any) int { return netsim.PayloadSize(p) }

// Kernel is one node's DO/CT kernel.
type Kernel struct {
	sys  *System
	node ids.NodeID
	gen  *ids.Generator

	store  *object.Store
	tcbs   *thread.Table
	groups *thread.Groups
	dsm    *dsm.Manager

	reqSeq atomic.Uint64

	// attrCache holds immutable thread-attribute snapshots received or
	// produced here, keyed (thread, version) — the receiver half of delta
	// attribute propagation. attrVer mints this node's snapshot versions.
	attrCache *attrcache.Cache
	attrVer   atomic.Uint64

	// Hot kernel state is sharded: each map has its own lock (waiters is
	// further striped by request ID — see shard.go) so RPC completions,
	// deliveries, and activation bookkeeping stop serializing each other.
	waiters *waiterTable

	actMu sync.Mutex
	acts  map[ids.ThreadID][]*activation // activation stack per thread

	syncWait *syncTable
	syncSeq  atomic.Uint64

	masterMu sync.Mutex
	masters  map[ids.ObjectID]*master

	// Crash-fault tolerance (fault.go). rel and det are nil unless
	// Config.FT.Enabled; the crash channel exists regardless so fault
	// injection works on a plain system too. fdRing records that the
	// detector runs the ring topology, whose detections must be
	// disseminated out-of-band (disseminateFD).
	rel    *reliable.Endpoint
	det    *failure.Detector
	fdRing bool

	// dur is this node's durability engine (durable.go). Nil unless
	// Config.Durability.Enabled; every touch is nil-guarded so the
	// volatile path pays nothing.
	dur *durable

	// dir is this node's shard of the residency directory backing the
	// hash placement strategy (directory.go). Always present; only
	// populated when System.dirStrategy is set.
	dir directory

	// fanoutSeen dedups group-raise fan-out relays after adoption races
	// (fanout.go).
	fanoutSeen fanoutDedup

	downMu   sync.Mutex
	downCh   chan struct{} // closed while this node is crashed
	downFlag atomic.Bool

	// closingMu/closing gate wg.Add calls made from the fabric dispatch
	// goroutine (which the kernel's wg does not track): once shutdown has
	// started waiting, a late inbound request must be dropped rather than
	// reuse the WaitGroup.
	closingMu sync.RWMutex
	closing   bool

	wg sync.WaitGroup
}

// syncWaiter collects releases for one raise_and_wait. The expected
// release count arrives on expectCh once routing has resolved the
// recipient set — asynchronously, so a raise across a severed link cannot
// block the raiser beyond its raise timeout.
type syncWaiter struct {
	id       uint64
	ch       chan releaseReq
	expectCh chan int
}

// syncReleaseBuf sizes the release buffer generously rather than to the
// recipient count, which is only known after routing resolves.
const syncReleaseBuf = 256

// syncWaiterPool recycles waiters between raises: the release buffer is the
// dominant per-raise allocation (256 slots), and raise_and_wait is the hot
// path of every synchronous workload. Stale traffic from a waiter's
// previous life is harmless: leftover releases are drained at Get and
// filtered by ID in collectReleases, and expectCh is allocated fresh per
// raise because a stalled routing goroutine can outlive its raiser.
var syncWaiterPool = sync.Pool{
	New: func() any { return &syncWaiter{ch: make(chan releaseReq, syncReleaseBuf)} },
}

// newSyncWaiter checks a recycled (or fresh) waiter out of the pool.
func newSyncWaiter(id uint64) *syncWaiter {
	w := syncWaiterPool.Get().(*syncWaiter)
	for {
		select {
		case <-w.ch: // a release that raced the previous raiser's teardown
		default:
			w.id = id
			w.expectCh = make(chan int, 1)
			return w
		}
	}
}

// recycle returns the waiter to the pool. The caller must already have
// removed it from the sync table.
func (w *syncWaiter) recycle() { syncWaiterPool.Put(w) }

// releaseReq releases a synchronous raiser (kindEvRelease).
type releaseReq struct {
	ID       uint64
	Verdict  event.Verdict
	Consumed bool
	// Err reports delivery failure (e.g. the target thread died before
	// handling, §7.2's fault-tolerance note).
	Err error
}

func newKernel(s *System, node ids.NodeID) *Kernel {
	k := &Kernel{
		sys:      s,
		node:     node,
		gen:      ids.NewGenerator(node),
		store:    object.NewStore(),
		tcbs:     thread.NewTable(),
		groups:   thread.NewGroups(),
		waiters:  newWaiterTable(),
		acts:     make(map[ids.ThreadID][]*activation),
		syncWait: newSyncTable(),
		masters:  make(map[ids.ObjectID]*master),
		downCh:   make(chan struct{}),
	}
	k.attrCache = attrcache.New(s.cfg.Wire.AttrCacheSize, s.reg)
	k.dsm = dsm.NewManager(dsm.Config{
		Node:      node,
		PageSize:  s.cfg.PageSize,
		Transport: dsmTransport{k: k},
		Metrics:   s.reg,
	})
	return k
}

// Node returns the kernel's node.
func (k *Kernel) Node() ids.NodeID { return k.node }

// TCBs exposes the node's thread control blocks (read-mostly; used by
// probes and tests).
func (k *Kernel) TCBs() *thread.Table { return k.tcbs }

// DSM exposes the node's DSM manager.
func (k *Kernel) DSM() *dsm.Manager { return k.dsm }

// Store exposes the node's resident objects.
func (k *Kernel) Store() *object.Store { return k.store }

// shutdown stops master handler threads and releases waiters.
func (k *Kernel) shutdown() {
	k.masterMu.Lock()
	masters := make([]*master, 0, len(k.masters))
	for _, m := range k.masters {
		masters = append(masters, m)
	}
	k.masterMu.Unlock()
	for _, m := range masters {
		m.stop()
	}
	if k.rel != nil {
		k.rel.Close()
	}
	k.closingMu.Lock()
	k.closing = true
	k.closingMu.Unlock()
	k.wg.Wait()
	if k.dur != nil {
		k.dur.stop()
	}
}

// onMessage is the fabric handler: it must not block, so request service
// runs on its own goroutine (kernel requests may issue nested calls).
// Heartbeats bypass the reliable layer (they are periodic and self-
// correcting); everything else is unwrapped by it when FT is enabled.
func (k *Kernel) onMessage(m netsim.Message) {
	if k.crashedLocal() {
		// A message already in the inbox when the node crashed: lost with
		// the node.
		return
	}
	if m.Kind == kindHeartbeat {
		if k.det != nil {
			k.det.Heartbeat(m.From)
		}
		return
	}
	if m.Kind == kindGossip {
		// Gossip protocol messages also bypass the reliable layer; the
		// detector applies the piggybacked membership block and answers
		// pings itself.
		if k.det != nil {
			if g, ok := m.Payload.(gossipFrame); ok {
				k.det.HandleGossip(m.From, g.Data)
			}
		}
		return
	}
	if k.det != nil {
		// Any traffic from a peer proves it alive just as well as an
		// explicit heartbeat — this is what lets busy links go without one.
		k.det.Observe(m.From)
	}
	if k.rel != nil && k.rel.Handle(m) {
		return
	}
	k.dispatchNet(m.From, m.Kind, m.Payload)
}

// dispatchNet handles one unwrapped kernel protocol message.
func (k *Kernel) dispatchNet(from ids.NodeID, kind string, payload any) {
	switch kind {
	case msgRPCReq:
		req, ok := payload.(rpcRequest)
		if !ok {
			return
		}
		// The fabric dispatch goroutine is not tracked by k.wg, so this Add
		// must not race shutdown's Wait; once closing, the request is
		// discarded like any other message to a dying cluster.
		k.closingMu.RLock()
		if k.closing {
			k.closingMu.RUnlock()
			return
		}
		k.wg.Add(1)
		k.closingMu.RUnlock()
		go func() {
			defer k.wg.Done()
			body, err := k.serve(req.From, req.Kind, req.Body)
			rsp := rpcResponse{ID: req.ID, Body: body, Err: err}
			// Reply failures mean the fabric is closing; nothing to do.
			_ = k.netSend(req.From, msgRPCRsp, rsp)
		}()
	case msgRPCRsp:
		rsp, ok := payload.(rpcResponse)
		if !ok {
			return
		}
		if w, ok := k.waiters.take(rsp.ID); ok {
			w.ch <- rsp
		}
	case kindFDNotice:
		n, ok := payload.(fdNotice)
		if !ok {
			return
		}
		if k.det != nil {
			k.det.ApplyRemote(n.Node, n.Up)
		}
	case kindDirUpdate:
		u, ok := payload.(dirUpdate)
		if !ok {
			return
		}
		k.dir.apply(u)
	case kindFanout:
		req, ok := payload.(*fanoutReq)
		if !ok {
			return
		}
		// Like msgRPCReq service: deliveries and relays block on kernel
		// calls, so they cannot run on the fabric dispatch goroutine.
		k.closingMu.RLock()
		if k.closing {
			k.closingMu.RUnlock()
			return
		}
		k.wg.Add(1)
		k.closingMu.RUnlock()
		go func() {
			defer k.wg.Done()
			k.serveFanout(req)
		}()
	}
}

// netSend transmits one kernel protocol message, through the reliable
// endpoint when FT is enabled and bare otherwise. The message carries the
// QoS class derived from its payload (qos.go); with QoS off the stamp is
// inert. Without FT an admission reject surfaces here as ErrBackpressure;
// with FT the reliable layer absorbs rejects and retries with backoff.
func (k *Kernel) netSend(to ids.NodeID, kind string, payload any) error {
	class := msgClass(kind, payload)
	if k.rel != nil {
		return k.rel.SendClass(to, kind, payload, class)
	}
	return k.sys.fabric.Send(netsim.Message{From: k.node, To: to, Kind: kind, Payload: payload, Class: class})
}

// call performs a synchronous kernel RPC to another node.
func (k *Kernel) call(to ids.NodeID, kind string, body any) (any, error) {
	if k.crashedLocal() {
		return nil, ErrNodeCrashed
	}
	if to == k.node {
		return k.serve(k.node, kind, body)
	}
	if k.det != nil && k.det.Suspected(to) {
		// Fail fast instead of burning the call timeout against a node the
		// detector already declared dead.
		return nil, fmt.Errorf("call %s to %v: %w", kind, to, ErrNodeDown)
	}
	id := k.reqSeq.Add(1)
	ch := make(chan rpcResponse, 1)
	k.waiters.put(id, to, ch)

	err := k.netSend(to, msgRPCReq, rpcRequest{ID: id, Kind: kind, From: k.node, Body: body})
	if err != nil {
		k.waiters.drop(id)
		return nil, fmt.Errorf("call %s to %v: %w", kind, to, err)
	}

	timer := k.sys.clk.NewTimer(k.sys.cfg.CallTimeout)
	defer timer.Stop()
	select {
	case rsp := <-ch:
		return rsp.Body, rsp.Err
	case <-k.sys.closed:
		return nil, ErrShutdown
	case <-k.downChan():
		k.waiters.drop(id)
		return nil, ErrNodeCrashed
	case <-timer.C:
		k.waiters.drop(id)
		return nil, fmt.Errorf("call %s to %v: timeout after %v", kind, to, k.sys.cfg.CallTimeout)
	}
}

// serve dispatches one kernel request. DSM protocol kinds are forwarded to
// the DSM manager.
func (k *Kernel) serve(from ids.NodeID, kind string, body any) (any, error) {
	if strings.HasPrefix(kind, "dsm.") {
		return k.dsm.HandleRequest(kind, body)
	}
	switch kind {
	case kindProbe:
		tid, ok := body.(ids.ThreadID)
		if !ok {
			return nil, fmt.Errorf("core: probe payload %T", body)
		}
		return k.probeLocal(tid), nil

	case kindDirGet:
		tid, ok := body.(ids.ThreadID)
		if !ok {
			return nil, fmt.Errorf("core: dir.get payload %T", body)
		}
		return k.dir.get(tid), nil

	case kindInvoke:
		req, ok := body.(invokeReq)
		if !ok {
			return nil, fmt.Errorf("core: invoke payload %T", body)
		}
		return k.serveInvoke(req)

	case kindEvThread:
		eb, ok := body.(*event.Block)
		if !ok {
			return nil, fmt.Errorf("core: ev.thread payload %T", body)
		}
		return nil, k.postToThreadLocal(eb)

	case kindEvObject:
		req, ok := body.(objectEventReq)
		if !ok {
			return nil, fmt.Errorf("core: ev.object payload %T", body)
		}
		return k.serveObjectEvent(req)

	case kindEvRelease:
		rel, ok := body.(releaseReq)
		if !ok {
			return nil, fmt.Errorf("core: release payload %T", body)
		}
		k.release(rel)
		return nil, nil

	case kindAbortChain:
		req, ok := body.(abortReq)
		if !ok {
			return nil, fmt.Errorf("core: abort payload %T", body)
		}
		return nil, k.serveAbort(req)

	case kindHandlerRun:
		req, ok := body.(handlerRunReq)
		if !ok {
			return nil, fmt.Errorf("core: handler.run payload %T", body)
		}
		return k.serveHandlerRun(req)

	case kindGroupCreate:
		gid, ok := body.(ids.GroupID)
		if !ok {
			return nil, fmt.Errorf("core: group.create payload %T", body)
		}
		k.groups.Create(gid)
		return nil, nil

	case kindGroupJoin:
		req, ok := body.(groupJoinReq)
		if !ok {
			return nil, fmt.Errorf("core: group.join payload %T", body)
		}
		if req.Leave {
			return nil, k.groups.Leave(req.Group, req.Thread)
		}
		return nil, k.groups.Join(req.Group, req.Thread)

	case kindGroupMembers:
		gid, ok := body.(ids.GroupID)
		if !ok {
			return nil, fmt.Errorf("core: group.members payload %T", body)
		}
		return k.groups.Members(gid)

	case kindKVGet:
		req, ok := body.(kvReq)
		if !ok {
			return nil, fmt.Errorf("core: kv.get payload %T", body)
		}
		obj, err := k.store.Lookup(req.Object)
		if err != nil {
			return nil, err
		}
		v, found := obj.Get(req.Key)
		return kvReply{Val: v, Found: found}, nil

	case kindKVSet:
		req, ok := body.(kvReq)
		if !ok {
			return nil, fmt.Errorf("core: kv.set payload %T", body)
		}
		obj, err := k.store.Lookup(req.Object)
		if err != nil {
			return nil, err
		}
		obj.Set(req.Key, req.Val)
		return nil, nil

	case kindKVCas:
		req, ok := body.(kvReq)
		if !ok {
			return nil, fmt.Errorf("core: kv.cas payload %T", body)
		}
		obj, err := k.store.Lookup(req.Object)
		if err != nil {
			return nil, err
		}
		return obj.CompareAndSwap(req.Key, req.Old, req.Val), nil

	case kindPageInstall:
		req, ok := body.(pageOpReq)
		if !ok {
			return nil, fmt.Errorf("core: page.install payload %T", body)
		}
		return nil, k.dsm.InstallPage(req.Seg, req.Page, req.Data)

	case kindPageDrop:
		req, ok := body.(pageOpReq)
		if !ok {
			return nil, fmt.Errorf("core: page.drop payload %T", body)
		}
		return nil, k.dsm.DropPage(req.Seg, req.Page)

	case kindPageFetch:
		req, ok := body.(pageOpReq)
		if !ok {
			return nil, fmt.Errorf("core: page.fetch payload %T", body)
		}
		data, found := k.dsm.CachedPage(req.Seg, req.Page)
		return pageFetchReply{Data: data, Found: found}, nil

	case kindDeleteObject:
		oid, ok := body.(ids.ObjectID)
		if !ok {
			return nil, fmt.Errorf("core: obj.delete payload %T", body)
		}
		return nil, k.deleteObjectLocal(oid)

	default:
		return nil, fmt.Errorf("core: unknown kernel request kind %q", kind)
	}
}

// Request payload types.

type groupJoinReq struct {
	Group  ids.GroupID
	Thread ids.ThreadID
	Leave  bool
}

type kvReq struct {
	Object ids.ObjectID
	Key    string
	Val    any
	Old    any // CompareAndSwap expected value
}

type kvReply struct {
	Val   any
	Found bool
}

type pageOpReq struct {
	Seg  ids.SegmentID
	Page int
	Data []byte
}

// WireSize charges the page payload.
func (r pageOpReq) WireSize() int { return 24 + len(r.Data) }

type pageFetchReply struct {
	Data  []byte
	Found bool
}

// WireSize charges the page payload.
func (r pageFetchReply) WireSize() int { return 24 + len(r.Data) }

// probeLocal answers a thread-location probe from this node's TCBs.
func (k *Kernel) probeLocal(tid ids.ThreadID) locate.ProbeResult {
	tcb, ok := k.tcbs.Lookup(tid)
	if !ok {
		return locate.ProbeResult{}
	}
	return locate.ProbeResult{Known: true, Here: tcb.Here, Next: tcb.Next}
}

// locate.Env implementation.

// Self implements locate.Env.
func (k *Kernel) Self() ids.NodeID { return k.node }

// Nodes implements locate.Env. With the failure detector running,
// suspected-dead nodes are filtered out so locate strategies stop probing
// them (§7.1's probes would otherwise hang per dead node per locate).
func (k *Kernel) Nodes() []ids.NodeID {
	all := k.sys.Nodes()
	if k.det == nil {
		return all
	}
	out := all[:0:0]
	for _, n := range all {
		if !k.det.Suspected(n) {
			out = append(out, n)
		}
	}
	return out
}

// Probe implements locate.Env.
func (k *Kernel) Probe(node ids.NodeID, tid ids.ThreadID) (locate.ProbeResult, error) {
	if node == k.node {
		return k.probeLocal(tid), nil
	}
	if k.det != nil && k.det.Suspected(node) {
		return locate.ProbeResult{}, fmt.Errorf("probe %v: %w", node, ErrNodeDown)
	}
	body, err := k.call(node, kindProbe, tid)
	if err != nil {
		return locate.ProbeResult{}, err
	}
	res, ok := body.(locate.ProbeResult)
	if !ok {
		return locate.ProbeResult{}, fmt.Errorf("core: probe reply %T", body)
	}
	return res, nil
}

// GroupMembers implements locate.Env for the multicast strategy.
func (k *Kernel) GroupMembers(tid ids.ThreadID) []ids.NodeID {
	return k.sys.fabric.GroupMembers(locate.GroupName(tid))
}

// Metrics implements locate.Env.
func (k *Kernel) Metrics() *metrics.Registry { return k.sys.reg }

var _ locate.Env = (*Kernel)(nil)
var _ locate.DirectoryEnv = (*Kernel)(nil)

// createObject creates an object homed at this node.
func (k *Kernel) createObject(spec object.Spec) (ids.ObjectID, error) {
	oid := k.gen.NextObject()
	seg := k.gen.NextSegment()
	size := spec.DataSize
	if size == 0 {
		size = object.DefaultDataSize
	}
	if _, err := k.dsm.CreateSegment(seg, size, spec.UserPaged); err != nil {
		return ids.NoObject, fmt.Errorf("create object segment: %w", err)
	}
	obj, err := object.New(oid, seg, spec)
	if err != nil {
		return ids.NoObject, err
	}
	if err := k.store.Add(obj); err != nil {
		return ids.NoObject, err
	}
	if k.dur != nil {
		// Hook first so no mutation slips past the log, then adopt any
		// state replay staged for this name (an object recreated by app
		// boot code after a restart picks its durable KV back up).
		obj.SetMutationHook(k.dur.objectHook(spec.Name))
		k.dur.applyStagedObject(obj)
	}
	return oid, nil
}

// CreateSegment creates a standalone DSM segment homed at this node.
func (k *Kernel) CreateSegment(size int, userPaged bool) (ids.SegmentID, error) {
	seg := k.gen.NextSegment()
	if _, err := k.dsm.CreateSegment(seg, size, userPaged); err != nil {
		return ids.NoSegment, err
	}
	return seg, nil
}

// deleteObjectLocal removes a resident object after running its DELETE
// handler (posting DELETE is the supported path; this is the final step).
func (k *Kernel) deleteObjectLocal(oid ids.ObjectID) error {
	obj, err := k.store.Lookup(oid)
	if err != nil {
		return err
	}
	obj.MarkDeleted()
	k.store.Remove(oid)
	return nil
}

// activation stack management.

// pushAct registers an activation as the deepest for its thread at this
// node and updates the TCB.
func (k *Kernel) pushAct(a *activation) {
	k.actMu.Lock()
	k.acts[a.tid] = append(k.acts[a.tid], a)
	k.actMu.Unlock()
	k.tcbs.Arrive(a.tid, a.baseDepth)
	if k.sys.cfg.TrackMulticast {
		k.sys.fabric.JoinGroup(locate.GroupName(a.tid), k.node)
	}
	k.dirPublish(a.tid, false)
}

// popAct unregisters a finished activation. If an earlier activation of the
// same thread is still present (the thread re-visited this node), the TCB
// reverts to forwarding at that activation's child.
func (k *Kernel) popAct(a *activation) {
	k.actMu.Lock()
	stack := k.acts[a.tid]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == a {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(stack) == 0 {
		delete(k.acts, a.tid)
	} else {
		k.acts[a.tid] = stack
	}
	var prev *activation
	if len(stack) > 0 {
		prev = stack[len(stack)-1]
	}
	k.actMu.Unlock()

	if prev == nil {
		k.tcbs.Remove(a.tid)
		if k.sys.cfg.TrackMulticast {
			k.sys.fabric.LeaveGroup(locate.GroupName(a.tid), k.node)
		}
		k.dirPublish(a.tid, true)
		return
	}
	// The earlier activation is blocked invoking toward prev.childNode:
	// the thread is no longer current here.
	k.tcbs.Depart(a.tid, prev.childNodeLocked())
	if k.sys.cfg.TrackMulticast {
		k.sys.fabric.LeaveGroup(locate.GroupName(a.tid), k.node)
	}
}

// topAct returns the deepest activation for tid at this node.
func (k *Kernel) topAct(tid ids.ThreadID) (*activation, bool) {
	k.actMu.Lock()
	defer k.actMu.Unlock()
	stack := k.acts[tid]
	if len(stack) == 0 {
		return nil, false
	}
	return stack[len(stack)-1], true
}

// spawnRoot starts a fresh root thread at this node.
func (k *Kernel) spawnRoot(app string, obj ids.ObjectID, entry string, args []any) (*Handle, error) {
	tid := k.gen.NextThread()
	attrs := thread.NewAttributes(tid)
	attrs.App = app
	attrs.IOChannel = "stdout"
	return k.startThread(attrs, obj, entry, args)
}

// startThread launches a thread with the given attributes at this node,
// invoking entry on obj as its root activation.
func (k *Kernel) startThread(attrs *thread.Attributes, oid ids.ObjectID, entry string, args []any) (*Handle, error) {
	select {
	case <-k.sys.closed:
		return nil, ErrShutdown
	default:
	}
	k.sys.ctrs.threadSpawn.Add(1)
	k.sys.tr.Add(trace.Record{
		Kind: trace.KindSpawn, Node: k.node, Thread: attrs.Thread,
		Target: oid.String() + "." + entry,
	})
	h := newHandle(attrs.Thread)
	k.sys.registerHandle(h)

	// The root activation runs where the object lives (RPC mode) or here
	// (DSM mode); either way the thread's root node is this node, so the
	// root TCB must exist here for path-following. We model the root
	// activation as starting here and immediately invoking the object.
	a := newActivation(k, attrs, 0)
	a.handle = h
	k.pushAct(a)
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		res, err := a.ctx().Invoke(oid, entry, args...)
		k.finishChain(a)
		a.finish()
		k.popAct(a)
		h.finish(res, err)
	}()
	return h, nil
}

// finishChain runs the thread's TERMINATE handler chain when its root
// entry returns. §4.2's contract is that a terminated thread releases
// everything chained onto it, however it terminates: event-driven
// termination runs the chain through delivery, but a plain root return —
// success or error — otherwise would not. The error case is the dangerous
// one: a thread whose acquire reply was lost terminates convinced it holds
// nothing while the server records it as holder, and no event will ever
// run its chained unlock. Threads with an empty TERMINATE chain (the vast
// majority) skip this outright, and a thread stopped by event delivery
// already ran its chain there — rerunning it would double every handler.
func (k *Kernel) finishChain(a *activation) {
	if a.stopped() != nil {
		return
	}
	a.mu.Lock()
	n := len(a.attrs.Handlers.For(event.Terminate))
	a.mu.Unlock()
	if n == 0 {
		return
	}
	eb := &event.Block{
		Stamp:      k.gen.NextStamp(),
		Name:       event.Terminate,
		Target:     event.ToThread(a.tid),
		RaiserNode: k.node,
		User:       map[string]any{"reason": "root return"},
		Class:      classControlU8,
	}
	k.runChain(a, eb)
}
