package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// TestChaosQoSBackpressureExactlyOnce runs tenant-class raises through a
// deliberately tiny admission budget (Depth 4) on a lossy fabric (10%
// drop) with FT on, and checks the §15 QoS layer composes with the
// exactly-once machinery: admission rejects surface as ErrBackpressure to
// the reliable layer, which retries them like any other loss, so every
// raise lands exactly once — no event lost to a shed, none doubled by the
// retransmits — and no system- or control-class message is ever shed.
func TestChaosQoSBackpressureExactlyOnce(t *testing.T) {
	cfg := ftConfig(8)
	cfg.QoS = QoSConfig{
		Enabled: true,
		// Threads spawned with App "tenant" raise on class 1; everything
		// kernel-originated stays on the unbounded system/control queues.
		Apps:    map[string]transport.Class{"tenant": 1},
		Weights: map[transport.Class]int{1: 4},
		// A one-message tenant budget guarantees the admission path
		// actually rejects — the point of the test: with seven flooder
		// threads raising concurrently (and the reliable layer's
		// per-send transmit goroutines all posting at once), any two
		// overlapping arrivals at the sink's shard overflow it.
		Depth: 1,
	}
	sys := newSystem(t, cfg)

	var handled atomic.Int64
	sink, err := sys.CreateObject(1, object.Spec{
		Name: "sink",
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				handled.Add(1)
				time.Sleep(200 * time.Microsecond)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetDropRate(0.1)

	// One flooder object per remote node, eight "tenant" threads each:
	// every raise happens inside an app-labelled activation, so it is
	// classified through QoS.Apps at the newBlock site. A remote object
	// raise is a waited RPC, so one thread keeps only one envelope in
	// flight — the 56 concurrent threads are what drives simultaneous
	// arrivals into the one-slot budget.
	const nodes, threadsPer, perThread = 7, 8, 5
	handles := make([]*Handle, 0, nodes*threadsPer)
	for r := 0; r < nodes; r++ {
		node := ids.NodeID(2 + r) // all remote to the sink's node
		src, err := sys.CreateObject(node, object.Spec{
			Name: "flooder",
			Entries: map[string]object.Entry{
				"flood": func(ctx object.Ctx, _ []any) ([]any, error) {
					for i := 0; i < perThread; i++ {
						if err := ctx.Raise(event.Interrupt, event.ToObject(sink), nil); err != nil {
							return nil, err
						}
					}
					return nil, nil
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < threadsPer; w++ {
			h, err := sys.SpawnApp(node, "tenant", src, "flood")
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	for i, h := range handles {
		if _, err := h.WaitTimeout(30 * time.Second); err != nil {
			t.Fatalf("flooder %d: %v", i, err)
		}
	}
	sys.SetDropRate(0)

	const want = nodes * threadsPer * perThread
	testutil.WaitFor(t, "all handlers to run", func() bool { return handled.Load() >= want })
	// Straggler retransmits of shed copies must not double-run a handler.
	time.Sleep(100 * time.Millisecond)
	if got := handled.Load(); got != want {
		t.Errorf("handler ran %d times for %d raises, want exactly once each", got, want)
	}

	snap := sys.Metrics().Snapshot()
	if snap.Get(metrics.DispatchQShed(transport.Class(1).Name())) == 0 {
		t.Error("tenant admission never rejected — the backpressure path was not exercised")
	}
	if snap.Get(metrics.CtrRelRetry) == 0 {
		t.Error("no retransmissions — rejects and drops were not retried")
	}
	if n := snap.Get(metrics.CtrRelDeadLetter); n != 0 {
		t.Errorf("%d sends dead-lettered: the retry budget should absorb transient admission rejects", n)
	}
	for _, cls := range []transport.Class{transport.ClassSystem, transport.ClassControl} {
		if n := snap.Get(metrics.DispatchQShed(cls.Name())); n != 0 {
			t.Errorf("%d %s-class messages shed, want 0 ever", n, cls.Name())
		}
	}
}
