package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/testutil"
)

// fanoutGroup builds a group with exactly one member thread per node of
// an n-node system, using the lead/follow idiom: the lead (node 1)
// creates the group, attaches the counting handler, and publishes the
// gid; followers join it. Every member then sleeps so it stays alive to
// receive raises. Returns the gid and the member tids keyed by node.
func fanoutGroup(t *testing.T, sys *System, n int, proc string) (ids.GroupID, map[ids.NodeID]ids.ThreadID) {
	t.Helper()
	gidCh := make(chan ids.GroupID, 1)
	ready := make(chan ids.ThreadID, n)
	spec := object.Spec{
		Name: "fanmember",
		Entries: map[string]object.Entry{
			"lead": func(ctx object.Ctx, _ []any) ([]any, error) {
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.Interrupt, Kind: event.KindProc, Proc: proc}); err != nil {
					return nil, err
				}
				gidCh <- gid
				ready <- ctx.Thread()
				return nil, ctx.Sleep(15 * time.Second)
			},
			"follow": func(ctx object.Ctx, args []any) ([]any, error) {
				if err := ctx.JoinGroup(args[0].(ids.GroupID)); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.Interrupt, Kind: event.KindProc, Proc: proc}); err != nil {
					return nil, err
				}
				ready <- ctx.Thread()
				return nil, ctx.Sleep(15 * time.Second)
			},
		},
	}
	objs := map[ids.NodeID]ids.ObjectID{}
	for node := 1; node <= n; node++ {
		oid, err := sys.CreateObject(ids.NodeID(node), spec)
		if err != nil {
			t.Fatal(err)
		}
		objs[ids.NodeID(node)] = oid
	}
	if _, err := sys.Spawn(1, objs[1], "lead"); err != nil {
		t.Fatal(err)
	}
	gid := <-gidCh
	for node := 2; node <= n; node++ {
		if _, err := sys.Spawn(ids.NodeID(node), objs[ids.NodeID(node)], "follow", gid); err != nil {
			t.Fatal(err)
		}
	}
	members := map[ids.NodeID]ids.ThreadID{}
	for i := 0; i < n; i++ {
		tid := <-ready
		members[ids.NodeID(tid.Root())] = tid
	}
	if len(members) != n {
		t.Fatalf("members landed on %d distinct nodes, want %d", len(members), n)
	}
	return gid, members
}

// TestFanoutTreeGroupRaise pins the happy path: a synchronous raise to a
// group spanning 8 nodes goes down the relay tree (not 7 unicast posts
// from the raiser), every member runs the handler exactly once, and all
// releases still reach the raiser so RaiseAndWait completes cleanly.
func TestFanoutTreeGroupRaise(t *testing.T) {
	sys := newSystem(t, ftConfig(8))
	var handled atomic.Int64
	var perThread sync.Map // ids.ThreadID -> *atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"fan": func(ctx object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			c, _ := perThread.LoadOrStore(ctx.Thread(), new(atomic.Int64))
			c.(*atomic.Int64).Add(1)
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	gid, members := fanoutGroup(t, sys, 8, "fan")

	if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToGroup(gid), nil); err != nil {
		t.Fatalf("group RaiseAndWait: %v", err)
	}
	if got := handled.Load(); got != 8 {
		t.Errorf("handler ran %d times, want 8 (once per member)", got)
	}
	for node, tid := range members {
		c, ok := perThread.Load(tid)
		if !ok || c.(*atomic.Int64).Load() != 1 {
			t.Errorf("member on node %d ran %v times, want exactly 1", node, c)
		}
	}
	snap := sys.Metrics().Snapshot()
	if relays := snap.Get(metrics.CtrFanoutRelay); relays == 0 {
		t.Error("fanout.relay is zero — the group raise did not use the tree")
	}
	if dups := snap.Get(metrics.CtrFanoutDup); dups != 0 {
		t.Errorf("fanout.dup = %d on the failure-free path, want 0", dups)
	}
}

// TestFanoutDisabled pins the escape hatch: FanoutK < 0 forces every
// group raise down the original unicast path regardless of group width.
func TestFanoutDisabled(t *testing.T) {
	cfg := ftConfig(6)
	cfg.FanoutK = -1
	sys := newSystem(t, cfg)
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"fan": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	gid, _ := fanoutGroup(t, sys, 6, "fan")
	if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToGroup(gid), nil); err != nil {
		t.Fatalf("group RaiseAndWait: %v", err)
	}
	if got := handled.Load(); got != 6 {
		t.Errorf("handler ran %d times, want 6", got)
	}
	if relays := sys.Metrics().Snapshot().Get(metrics.CtrFanoutRelay); relays != 0 {
		t.Errorf("fanout.relay = %d with FanoutK=-1, want 0", relays)
	}
}

// TestChaosTreeFanoutRelayCrash crashes an interior relay of the fan-out
// tree mid-broadcast and checks the orphaned subtree is adopted: with 8
// nodes and the default arity 4, the tree order is [1..8] and node 2
// (index 1) relays to nodes 6, 7, 8. The locate cache is warmed by a
// first raise so that when node 2 crashes, the raiser still builds it
// into the tree (the detector hasn't flagged it yet — the true
// crash-mid-broadcast window). The send to node 2 exhausts the reliable
// retry ladder, dead-letters, and the raiser adopts the subtree: every
// member on a live node runs exactly once, the member lost with node 2
// is reported to the synchronous raiser as an error, and fanout.adopt
// proves the re-route actually happened.
func TestChaosTreeFanoutRelayCrash(t *testing.T) {
	cfg := ftConfig(8)
	// A roomier suspicion window than the chaos default: the test needs
	// the raise to reach the tree-building step before the detector
	// invalidates the crashed node's cache entries, even when -race and a
	// loaded machine stall the raising goroutine.
	cfg.FT.SuspectAfter = 400 * time.Millisecond
	cfg.Locator = locate.NewCache(locate.PathFollow{}, 0)
	sys := newSystem(t, cfg)

	var handled atomic.Int64
	var perThread sync.Map // ids.ThreadID -> *atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"fan": func(ctx object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			c, _ := perThread.LoadOrStore(ctx.Thread(), new(atomic.Int64))
			c.(*atomic.Int64).Add(1)
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	gid, members := fanoutGroup(t, sys, 8, "fan")

	// Warm-up raise: proves the tree path works and populates the locate
	// cache with every member's residency.
	if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToGroup(gid), nil); err != nil {
		t.Fatalf("warm-up RaiseAndWait: %v", err)
	}
	if got := handled.Load(); got != 8 {
		t.Fatalf("warm-up reached %d members, want 8", got)
	}
	if relays := sys.Metrics().Snapshot().Get(metrics.CtrFanoutRelay); relays == 0 {
		t.Fatal("warm-up raise did not use the tree; the crash below would test nothing")
	}

	handled.Store(0)
	if err := sys.CrashNode(2); err != nil {
		t.Fatal(err)
	}
	// Raise immediately — before the failure detector suspects node 2 —
	// so the cached residency puts the dead node into the tree as the
	// interior relay for nodes 6..8.
	_, err := sys.RaiseAndWait(1, event.Interrupt, event.ToGroup(gid), nil)
	if err == nil {
		t.Error("RaiseAndWait succeeded, want an error for the member lost with node 2")
	}

	// Every member on a live node ran exactly once: the orphaned subtree
	// (nodes 6..8) was adopted, and the adoption did not double-deliver
	// to anyone the original relay wave already reached.
	testutil.WaitFor(t, "live members to run the handler", func() bool {
		return handled.Load() >= 7
	})
	time.Sleep(150 * time.Millisecond)
	if got := handled.Load(); got != 7 {
		t.Errorf("second raise reached %d members, want exactly the 7 on live nodes", got)
	}
	for node, tid := range members {
		want := int64(2) // warm-up + crash raise
		if node == 2 {
			want = 1 // died with its node after the warm-up
		}
		c, ok := perThread.Load(tid)
		if !ok || c.(*atomic.Int64).Load() != want {
			t.Errorf("member on node %d ran %v times across both raises, want %d", node, c, want)
		}
	}
	if adopts := sys.Metrics().Snapshot().Get(metrics.CtrFanoutAdopt); adopts == 0 {
		t.Error("fanout.adopt is zero — the orphaned subtree was never re-routed")
	}
}
