package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dsm"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/thread"
	"repro/internal/trace"
)

// raise is the asynchronous raise system call (§5.3): the raiser does not
// block. raiser is nil when the kernel or an external agent (the user's ^C)
// raises the event.
func (k *Kernel) raise(raiser *activation, name event.Name, target event.Target, user map[string]any) error {
	eb, err := k.newBlock(raiser, name, target, user)
	if err != nil {
		return err
	}
	return k.route(eb)
}

// raiseAndWait is the synchronous raise_and_wait system call (§5.3): the
// raiser blocks until a handler explicitly resumes it, and receives the
// handler's verdict.
func (k *Kernel) raiseAndWait(raiser *activation, name event.Name, target event.Target, user map[string]any) (event.Verdict, error) {
	eb, err := k.newBlock(raiser, name, target, user)
	if err != nil {
		return 0, err
	}
	eb.Sync = true

	id := k.syncSeq.Add(1)
	eb.SyncID = id
	w := newSyncWaiter(id)
	k.syncWait.put(id, w)
	defer func() {
		k.syncWait.drop(id)
		w.recycle()
	}()

	// Resolve the recipient set and route asynchronously. Routing blocks on
	// kernel calls (group membership lookups, remote posts) that can stall
	// for a full call timeout each when the fabric is damaged; the raiser
	// waits in collectReleases, bounded by RaiseTimeout alone. The goroutine
	// captures the channel, never w itself: it can outlive the raiser, and
	// by then the recycled waiter may belong to a different raise.
	expectCh := w.expectCh
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		expect := 1
		if eb.Target.Kind == event.TargetGroup {
			members, err := k.groupMembers(eb.Target.Group)
			if err == nil && len(members) == 0 {
				err = fmt.Errorf("%w: group %v is empty", ErrThreadNotFound, eb.Target.Group)
			}
			if err != nil {
				expectCh <- 1
				k.release(releaseReq{ID: id, Err: err})
				return
			}
			expect = len(members)
		}
		expectCh <- expect
		if err := k.route(eb); err != nil && eb.Target.Kind == event.TargetThread {
			// Group and object routing already release per-recipient on
			// failure; a failed thread post must do so here.
			k.release(releaseReq{ID: id, Err: err})
		}
	}()
	return k.collectReleases(raiser, w)
}

// collectReleases blocks the raiser until every recipient's handler chain
// finished and released it, or the raise timeout expires — whichever is
// first. It never hangs indefinitely: a severed link, a crashed node, or a
// lost release all surface as a typed error within RaiseTimeout.
func (k *Kernel) collectReleases(raiser *activation, w *syncWaiter) (event.Verdict, error) {
	if raiser != nil {
		raiser.enterBlocked("raise_and_wait")
	}
	var (
		verdict  = event.VerdictResume
		consumed bool
		firstErr error
	)
	d := k.sys.cfg.RaiseTimeout
	timer := k.sys.clk.NewTimer(d)
	defer timer.Stop()
	expect := -1 // unknown until routing resolves the recipient set
collect:
	for got := 0; expect < 0 || got < expect; {
		select {
		case e := <-w.expectCh:
			expect = e
		case rel := <-w.ch:
			if rel.ID != w.id {
				// A release from the waiter's previous life that slipped into
				// the recycled buffer after the drain.
				continue
			}
			got++
			if rel.Err != nil && firstErr == nil {
				firstErr = rel.Err
			}
			if rel.Consumed {
				consumed = true
				if rel.Verdict == event.VerdictTerminate {
					verdict = event.VerdictTerminate
				}
			}
		case <-k.sys.closed:
			firstErr = ErrShutdown
			break collect
		case <-k.downChan():
			firstErr = ErrNodeCrashed
			break collect
		case <-timer.C:
			firstErr = fmt.Errorf("%w: no release after %v", ErrRaiseTimeout, d)
			break collect
		}
	}
	if raiser != nil {
		if err := raiser.exitBlocked(); err != nil {
			return verdict, err
		}
	}
	if firstErr != nil {
		return verdict, firstErr
	}
	if !consumed {
		return verdict, ErrUnhandledSync
	}
	return verdict, nil
}

// newBlock validates and stamps a fresh event block.
func (k *Kernel) newBlock(raiser *activation, name event.Name, target event.Target, user map[string]any) (*event.Block, error) {
	if !k.sys.events.Registered(name) {
		return nil, fmt.Errorf("%w: %s", ErrNotRegistered, name)
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	k.sys.ctrs.eventRaised.Add(1)
	eb := &event.Block{
		Stamp:      k.gen.NextStamp(),
		Name:       name,
		Target:     target,
		RaiserNode: k.node,
		User:       user,
		Class:      uint8(k.classOf(raiser, name)),
	}
	if raiser != nil {
		eb.Raiser = raiser.tid
	}
	k.sys.tr.Add(trace.Record{
		Kind: trace.KindRaise, Node: k.node, Thread: eb.Raiser,
		Event: name, Target: target.String(),
	})
	return eb, nil
}

// route sends the block toward its recipients (§5.3's addressing matrix).
func (k *Kernel) route(eb *event.Block) error {
	switch eb.Target.Kind {
	case event.TargetThread:
		return k.raiseToThread(eb, eb.Target.Thread)
	case event.TargetObject:
		return k.raiseToObject(eb, eb.Target.Object)
	case event.TargetGroup:
		return k.raiseToGroup(eb, eb.Target.Group)
	default:
		return fmt.Errorf("core: unroutable target %v", eb.Target)
	}
}

// raiseToGroup fans the event out to every member (§5.3: "event posted to a
// thread group will be sent to all the members of the group", after V
// process groups).
func (k *Kernel) raiseToGroup(eb *event.Block, gid ids.GroupID) error {
	members, err := k.groupMembers(gid)
	if err != nil {
		return err
	}
	if k.sys.cfg.FanoutK >= 0 && len(members) >= fanoutMinNodes {
		// Wide groups go down the spanning relay tree (fanout.go): one
		// message per child instead of one per member. Delivery errors
		// surface at the responsible relay — through releases for
		// synchronous raises, death notices and pruning otherwise — so
		// there is nothing to aggregate here.
		if handled, terr := k.raiseToGroupTree(eb, gid, members); handled {
			return terr
		}
	}
	var firstErr error
	for _, tid := range members {
		m := eb.Clone()
		m.Target = event.ToThread(tid)
		if err := k.raiseToThread(m, tid); err != nil {
			if eb.Sync {
				// The waiter expects a release from this member; deliver a
				// death notice instead of leaving it hanging.
				k.releaseRaiser(m, 0, false, err)
			}
			if errors.Is(err, ErrThreadNotFound) || errors.Is(err, ErrNodeDown) {
				// Garbage-collect the zombie membership (§7.2 warns that
				// leaving trails of dead threads "creates garbage
				// collection problems"): prune it so future group raises
				// stop tripping over it. Members lost with a crashed node
				// are pruned the same way once the detector flags it.
				_ = k.groupJoin(gid, tid, true)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("member %v: %w", tid, err)
			}
		}
	}
	return firstErr
}

// locateRetries bounds re-location when a thread moves between locate and
// post (it "moves around much faster than other resources", §7.1).
const locateRetries = 4

// raiseToThread locates the thread and posts the event at its node.
func (k *Kernel) raiseToThread(eb *event.Block, tid ids.ThreadID) error {
	var lastErr error
	for attempt := 0; attempt < locateRetries; attempt++ {
		node, err := k.sys.cfg.Locator.Locate(k, tid)
		if err != nil {
			// The thread may be in transit between nodes (its forwarding
			// state mid-update); back off briefly and re-locate. A cached
			// location cannot help a thread in transit, so drop it too.
			k.invalidateLocation(tid)
			lastErr = err
			if attempt < locateRetries-1 {
				k.sys.clk.Sleep(time.Duration(attempt+1) * time.Millisecond)
				continue
			}
			return fmt.Errorf("%w: %v (%v)", ErrThreadNotFound, tid, err)
		}
		if tr := k.sys.tr; tr.Enabled() {
			tr.Add(trace.Record{
				Kind: trace.KindLocate, Node: k.node, Thread: tid,
				Event: eb.Name, Target: node.String(),
				Detail: fmt.Sprintf("strategy=%s attempt=%d", k.sys.cfg.Locator.Name(), attempt),
			})
		}
		var postErr error
		if node == k.node {
			postErr = k.postToThreadLocal(eb)
		} else {
			_, postErr = k.call(node, kindEvThread, eb)
		}
		if postErr == nil {
			return nil
		}
		if !errors.Is(postErr, errThreadMoved) {
			return postErr
		}
		// The thread left node between locate and post: any cached
		// location for it is stale. Invalidate before re-locating so the
		// retry falls through to the wrapped strategy (the §7.1 retry loop
		// is what keeps the cache sound).
		k.invalidateLocation(tid)
		lastErr = postErr
		k.sys.clk.Sleep(time.Millisecond)
	}
	return fmt.Errorf("%w: %v (%v)", ErrThreadNotFound, tid, lastErr)
}

// invalidateLocation drops tid from the locator's cache, if the configured
// strategy keeps one, charging the stale counter when an entry was
// actually present.
func (k *Kernel) invalidateLocation(tid ids.ThreadID) {
	if inv, ok := k.sys.cfg.Locator.(locate.Invalidator); ok {
		if inv.Invalidate(tid) {
			k.sys.reg.Inc(metrics.CtrLocateCacheStale)
		}
	}
}

// postToThreadLocal enqueues the event for the thread's deepest activation
// at this node. The thread need not be resident: a TCB left behind as a
// forwarding pointer means an activation is blocked here mid-invoke, and
// enqueueing on it delivers by surrogate (§6.1) — this is how events reach
// a thread that is in transit on the wire (§7.1). Only when no TCB exists
// at all does the post fail with errThreadMoved, so the raiser re-locates.
func (k *Kernel) postToThreadLocal(eb *event.Block) error {
	tid := eb.Target.Thread
	if _, ok := k.tcbs.Lookup(tid); !ok {
		return fmt.Errorf("%w: %v at %v", errThreadMoved, tid, k.node)
	}
	a, ok := k.topAct(tid)
	if !ok {
		return fmt.Errorf("%w: %v at %v (no activation)", errThreadMoved, tid, k.node)
	}
	if a.stopped() != nil {
		return fmt.Errorf("%w: %v already stopped", ErrThreadNotFound, tid)
	}
	if !k.enqueue(a, eb) {
		// The activation returned to its caller between topAct and
		// enqueue; the thread lives on upstream, so have the raiser
		// re-locate rather than dropping or death-noticing the event.
		return fmt.Errorf("%w: %v departed %v", errThreadMoved, tid, k.node)
	}
	return nil
}

// postTimerLocal delivers a TIMER-style event straight to the activation
// whose node-local timer fired (§6.2: the registration is recreated at
// every node the thread visits, so delivery is always local).
func (k *Kernel) postTimerLocal(a *activation, name event.Name) {
	eb := &event.Block{
		Stamp:      k.gen.NextStamp(),
		Name:       name,
		Target:     event.ToThread(a.tid),
		RaiserNode: k.node,
		Class:      classSystemU8,
	}
	k.sys.ctrs.eventRaised.Add(1)
	if a.stopped() == nil {
		// A departed activation drops node-local timer events: the timers
		// are recreated wherever the thread now runs (§6.2).
		k.enqueue(a, eb)
	}
}

// enqueue queues the event and arranges for its delivery: inline at the
// activation's next interruption point if it is running, by a surrogate
// thread if it is blocked in a kernel operation. It reports false if the
// activation has departed (returned to its caller), in which case the
// event was not queued and the caller must re-locate the thread.
func (k *Kernel) enqueue(a *activation, eb *event.Block) bool {
	a.mu.Lock()
	if a.departed {
		a.mu.Unlock()
		return false
	}
	a.pending = append(a.pending, eb)
	needSurrogate := a.status != thread.StatusRunning && !a.delivering
	a.mu.Unlock()
	if needSurrogate {
		k.spawnSurrogate(a)
	}
	return true
}

// spawnSurrogate starts a surrogate delivery thread for a blocked
// activation (§6.1: "The object handler can be run using a surrogate
// thread").
func (k *Kernel) spawnSurrogate(a *activation) {
	k.sys.ctrs.surrogateRuns.Add(1)
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		k.processPending(a, true)
	}()
}

// drainPending handles events that raced with the activation's completion:
// synchronous raisers are released with a thread-death error, and
// asynchronous raisers are sent a THREAD_DEATH notice (§7.2: "When a
// notification is posted to a thread and the thread has been destroyed,
// the sender of the event (if it is an asynchronous event) needs to be
// notified").
func (k *Kernel) drainPending(a *activation) {
	a.mu.Lock()
	pending := a.pending
	a.pending = nil
	a.mu.Unlock()
	for _, eb := range pending {
		if eb.Sync {
			k.releaseRaiser(eb, 0, false, fmt.Errorf("%w: %v", ErrThreadNotFound, a.tid))
			continue
		}
		k.notifyThreadDeath(a.tid, eb)
	}
}

// rerouteRetries bounds re-posting of events stranded in a departed
// activation's queue. Each attempt already includes raiseToThread's own
// locate-and-retry rounds; the outer loop rides out the invoke-reply
// latency window during which no node's TCB claims the thread.
const rerouteRetries = 25

// reroutePending re-posts events that were queued on an activation that
// then returned to its caller. The thread is still alive — it continues
// at the invoking node — so these events are re-raised at its current
// location instead of being death-noticed (exactly-once: they were queued
// here but never delivered). Only if the thread cannot be found after the
// retry budget (it genuinely terminated in the meantime, or the system is
// closing) does the §7.2 death-notice protocol apply.
func (k *Kernel) reroutePending(tid ids.ThreadID, pending []*event.Block) {
	for _, eb := range pending {
		eb := eb
		k.wg.Add(1)
		go func() {
			defer k.wg.Done()
			var err error
			for attempt := 0; attempt < rerouteRetries; attempt++ {
				if err = k.raiseToThread(eb, tid); err == nil {
					return
				}
				if !errors.Is(err, ErrThreadNotFound) {
					break
				}
				select {
				case <-k.sys.closed:
					return
				case <-k.sys.clk.After(2 * time.Millisecond):
				}
			}
			if eb.Sync {
				k.releaseRaiser(eb, 0, false, err)
			} else {
				k.notifyThreadDeath(tid, eb)
			}
		}()
	}
}

// notifyThreadDeath posts THREAD_DEATH back to the raiser of an
// undeliverable asynchronous event. Death notices themselves never
// generate further notices (the paper's garbage-collection concern).
func (k *Kernel) notifyThreadDeath(dead ids.ThreadID, eb *event.Block) {
	if eb.Name == event.ThreadDeath || !eb.Raiser.IsValid() || eb.Raiser == dead {
		return
	}
	notice := &event.Block{
		Stamp:      k.gen.NextStamp(),
		Name:       event.ThreadDeath,
		Target:     event.ToThread(eb.Raiser),
		RaiserNode: k.node,
		Class:      classControlU8,
		User: map[string]any{
			"dead":  dead,
			"event": eb.Name,
			"stamp": eb.Stamp,
		},
	}
	k.sys.ctrs.eventRaised.Add(1)
	// Best effort: if the raiser is gone too, the notice is dropped
	// rather than chained (no zombie trails).
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		_ = k.raiseToThread(notice, eb.Raiser)
	}()
}

// processPending walks the activation's queued events, suspending the
// thread for each, running its handler chain, applying the verdict and
// releasing synchronous raisers. When surrogate is false the caller is the
// activation's own goroutine at an interruption point, and it additionally
// waits for any active surrogate to finish (the sole attribute-access
// synchronization point between the two).
func (k *Kernel) processPending(a *activation, surrogate bool) {
	a.mu.Lock()
	if surrogate {
		if a.delivering {
			a.mu.Unlock()
			return
		}
	} else {
		for a.delivering {
			a.cond.Wait()
		}
	}
	if len(a.pending) == 0 {
		a.mu.Unlock()
		return
	}
	a.delivering = true
	for len(a.pending) > 0 {
		eb := a.pending[0]
		a.pending = a.pending[1:]
		if a.stopped() != nil {
			a.mu.Unlock()
			if eb.Sync {
				k.releaseRaiser(eb, 0, false, fmt.Errorf("%w: %v", ErrThreadNotFound, a.tid))
			} else {
				k.notifyThreadDeath(a.tid, eb)
			}
			a.mu.Lock()
			continue
		}
		prev := a.status
		a.status = thread.StatusSuspended
		a.mu.Unlock()

		verdict, consumed := k.runChain(a, eb)
		k.sys.ctrs.eventDelivered.Add(1)
		k.sys.tr.Add(trace.Record{
			Kind: trace.KindDeliver, Node: k.node, Thread: a.tid,
			Event: eb.Name, Target: eb.Target.String(),
			Detail: fmt.Sprintf("verdict=%v consumed=%v", verdict, consumed),
		})
		if eb.Sync {
			k.releaseRaiser(eb, verdict, consumed, nil)
		}

		a.mu.Lock()
		if a.status == thread.StatusSuspended {
			a.status = prev
		}
	}
	a.delivering = false
	a.cond.Broadcast()
	a.mu.Unlock()
}

// runChain walks the thread's LIFO handler chain for the event (§4.2),
// applying the consuming handler's verdict or the system default action.
// Per §6.1, the object the thread is active in gets the first chance: its
// object-based handler (if it registered one for this event) runs before
// the thread's chain, on a surrogate carrying the suspended thread's
// attributes, and may consume the event, terminate the thread, or
// propagate to the thread handlers.
func (k *Kernel) runChain(a *activation, eb *event.Block) (event.Verdict, bool) {
	eb.State = a.snapshotState()

	if f, ok := a.topFrame(); ok {
		if h, registered := f.obj.Handler(eb.Name); registered {
			k.sys.ctrs.handlerObject.Add(1)
			k.sys.tr.Add(trace.Record{
				Kind: trace.KindHandlerRun, Node: k.node, Thread: a.tid,
				Event: eb.Name, Detail: "object:" + f.obj.ID().String(),
			})
			switch k.runObjectHandler(f.obj, h, eb) {
			case event.VerdictTerminate:
				a.stop(ErrTerminated)
				return event.VerdictTerminate, true
			case event.VerdictPropagate:
				// The object took its generic corrective action; the
				// thread's own handlers decide next (§6.1).
			default:
				return event.VerdictResume, true
			}
		}
	}

	a.mu.Lock()
	handlers := a.attrs.Handlers.For(eb.Name)
	a.mu.Unlock()

	for _, h := range handlers {
		k.sys.ctrs.chainLinks.Add(1)
		k.sys.tr.Add(trace.Record{
			Kind: trace.KindHandlerRun, Node: k.node, Thread: a.tid,
			Event: eb.Name, Detail: h.String(),
		})
		v, err := k.runThreadHandler(a, h, eb)
		if err != nil {
			// A broken handler (missing code, unreachable buddy) must not
			// swallow the event: propagate down the chain.
			continue
		}
		switch v {
		case event.VerdictPropagate:
			continue
		case event.VerdictTerminate:
			a.stop(ErrTerminated)
			return event.VerdictTerminate, true
		default:
			return event.VerdictResume, true
		}
	}

	// Chain exhausted: the operating system's default behaviour applies
	// (§5.1).
	k.sys.ctrs.eventDefault.Add(1)
	k.sys.tr.Add(trace.Record{
		Kind: trace.KindDefault, Node: k.node, Thread: a.tid,
		Event: eb.Name, Detail: event.DefaultFor(eb.Name).String(),
	})
	switch event.DefaultFor(eb.Name) {
	case event.ActTerminate:
		a.stop(ErrTerminated)
		return event.VerdictTerminate, false
	case event.ActAbortInvocation:
		a.stop(ErrAborted)
		return event.VerdictTerminate, false
	default:
		return event.VerdictResume, false
	}
}

// runThreadHandler executes one thread-based handler in its declared
// context (§4.1).
func (k *Kernel) runThreadHandler(a *activation, h event.HandlerRef, eb *event.Block) (event.Verdict, error) {
	switch h.Kind {
	case event.KindProc:
		// Per-thread-memory procedure: executed within the context of the
		// object the thread currently occupies.
		f, err := k.sys.proc(h.Proc)
		if err != nil {
			return 0, err
		}
		k.sys.ctrs.handlerOwnCtx.Add(1)
		return f(a.handlerCtx(), h, eb), nil

	case event.KindEntry, event.KindBuddy:
		if h.Kind == event.KindEntry {
			k.sys.ctrs.handlerThread.Add(1)
		} else {
			k.sys.ctrs.handlerBuddy.Add(1)
		}
		home := h.Object.Home()
		a.mu.Lock()
		attrs := a.attrs.Clone()
		a.mu.Unlock()
		if home == k.node {
			verdict, outAttrs, err := k.runHandlerMethod(h, eb, attrs)
			if err != nil {
				return 0, err
			}
			a.mu.Lock()
			a.attrs.MergeFrom(outAttrs)
			a.mu.Unlock()
			return verdict, nil
		}
		// Unscheduled invocation to wherever the handler's object lives
		// (§7.2).
		body, err := k.call(home, kindHandlerRun, handlerRunReq{Ref: h, EB: eb, Attrs: attrs})
		if err != nil {
			return 0, err
		}
		rep, ok := body.(handlerRunReply)
		if !ok {
			return 0, fmt.Errorf("core: handler.run reply %T", body)
		}
		a.mu.Lock()
		a.attrs.MergeFrom(rep.Attrs)
		a.mu.Unlock()
		return rep.Verdict, nil

	default:
		return 0, fmt.Errorf("core: invalid handler kind %v", h.Kind)
	}
}

// handlerRunReq ships a handler execution to the handler object's node.
// The suspended thread's attributes travel so the surrogate can take them
// on (§6.1); changes travel back in the reply.
type handlerRunReq struct {
	Ref   event.HandlerRef
	EB    *event.Block
	Attrs *thread.Attributes
}

// WireSize charges the block and attributes.
func (r handlerRunReq) WireSize() int { return 32 + r.EB.WireSize() + r.Attrs.WireSize() }

type handlerRunReply struct {
	Verdict event.Verdict
	Attrs   *thread.Attributes
}

// WireSize charges the attributes.
func (r handlerRunReply) WireSize() int {
	size := 16
	if r.Attrs != nil {
		size += r.Attrs.WireSize()
	}
	return size
}

// serveHandlerRun executes a handler method at this node on behalf of a
// suspended thread elsewhere.
func (k *Kernel) serveHandlerRun(req handlerRunReq) (any, error) {
	verdict, attrs, err := k.runHandlerMethod(req.Ref, req.EB, req.Attrs)
	if err != nil {
		return nil, err
	}
	return handlerRunReply{Verdict: verdict, Attrs: attrs}, nil
}

// runHandlerMethod runs the named handler method of a resident object on a
// surrogate system thread carrying the suspended thread's attributes.
func (k *Kernel) runHandlerMethod(ref event.HandlerRef, eb *event.Block, attrs *thread.Attributes) (event.Verdict, *thread.Attributes, error) {
	obj, err := k.store.Lookup(ref.Object)
	if err != nil {
		return 0, nil, err
	}
	m, ok := obj.HandlerMethod(ref.Entry)
	if !ok {
		return 0, nil, fmt.Errorf("core: %v has no handler method %q", ref.Object, ref.Entry)
	}
	sa := k.systemActivation(obj, attrs)
	verdict := m(sa.handlerCtx(), ref, eb)
	sa.stopTimers()
	return verdict, sa.attrs, nil
}

// systemActivation builds a surrogate activation executing in obj's
// context. It carries the suspended thread's attribute contents under a
// fresh system thread identity, so its own invocations never corrupt the
// suspended thread's TCB trail.
func (k *Kernel) systemActivation(obj *object.Object, attrs *thread.Attributes) *activation {
	var sattrs *thread.Attributes
	if attrs != nil {
		sattrs = attrs.Clone()
	} else {
		sattrs = thread.NewAttributes(ids.NoThread)
	}
	sattrs.Thread = k.gen.NextThread()
	sa := newActivation(k, sattrs, 0)
	sa.system = true
	if obj != nil {
		sa.frames = []frame{{obj: obj, entry: "<handler>"}}
	}
	return sa
}

// releaseRaiser wakes a raise_and_wait caller.
func (k *Kernel) releaseRaiser(eb *event.Block, verdict event.Verdict, consumed bool, relErr error) {
	rel := releaseReq{ID: eb.SyncID, Verdict: verdict, Consumed: consumed, Err: relErr}
	if eb.RaiserNode == k.node {
		k.release(rel)
		return
	}
	// The release is fire-and-forget from the deliverer's perspective; a
	// failed send means the system is closing.
	if _, err := k.call(eb.RaiserNode, kindEvRelease, rel); err != nil {
		return
	}
}

// release hands a release to the local waiter.
func (k *Kernel) release(rel releaseReq) {
	w := k.syncWait.get(rel.ID)
	if w != nil {
		select {
		case w.ch <- rel:
		default:
			// Waiter already gave up (timeout); drop.
		}
	}
}

// Object-based event delivery (§4.3).

// objectEventReq ships an event to a (possibly passive) object's node.
type objectEventReq struct {
	EB *event.Block
}

// WireSize charges the block.
func (r objectEventReq) WireSize() int { return 16 + r.EB.WireSize() }

// objectEventReply returns the handler's verdict for synchronous raises.
type objectEventReply struct {
	Verdict  event.Verdict
	Consumed bool
}

// raiseToObject routes the event to the object's home node. For
// synchronous raises the reply releases the raiser directly.
func (k *Kernel) raiseToObject(eb *event.Block, oid ids.ObjectID) error {
	home := oid.Home()
	var (
		body any
		err  error
	)
	if home == k.node {
		body, err = k.serveObjectEvent(objectEventReq{EB: eb})
	} else {
		body, err = k.call(home, kindEvObject, objectEventReq{EB: eb})
	}
	if !eb.Sync {
		return err
	}
	if err != nil {
		k.releaseRaiser(eb, 0, false, err)
		return nil // the error reaches the raiser through the release
	}
	rep, ok := body.(objectEventReply)
	if !ok {
		k.releaseRaiser(eb, 0, false, fmt.Errorf("core: ev.object reply %T", body))
		return nil
	}
	k.releaseRaiser(eb, rep.Verdict, rep.Consumed, nil)
	return nil
}

// serveObjectEvent delivers an event to a resident object: the kernel
// performs an implicit invocation of the object's registered handler, run
// by a master handler thread or a freshly spawned one (§4.3, §7).
func (k *Kernel) serveObjectEvent(req objectEventReq) (any, error) {
	eb := req.EB
	obj, err := k.store.Lookup(eb.Target.Object)
	if err != nil {
		return nil, err
	}
	h, ok := obj.Handler(eb.Name)
	if !ok {
		// Default behaviour for unhandled object events.
		k.sys.ctrs.eventDefault.Add(1)
		if eb.Name == event.Delete {
			if derr := k.deleteObjectLocal(obj.ID()); derr != nil {
				return nil, derr
			}
		}
		k.sys.ctrs.eventDelivered.Add(1)
		return objectEventReply{Verdict: event.VerdictResume, Consumed: false}, nil
	}

	run := func() event.Verdict {
		v := k.dispatchObjectHandler(obj, h, eb)
		k.sys.ctrs.eventDelivered.Add(1)
		if eb.Name == event.Delete {
			// The handler had its chance to clean up; the object goes away
			// regardless (§5.1's my_delete_handler template).
			_ = k.deleteObjectLocal(obj.ID())
		}
		return v
	}

	if eb.Sync {
		return objectEventReply{Verdict: run(), Consumed: true}, nil
	}
	// Asynchronous raise: the raiser must not wait for the handler.
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		run()
	}()
	return objectEventReply{Verdict: event.VerdictResume, Consumed: true}, nil
}

// dispatchObjectHandler runs the object's handler under its configured
// thread policy.
func (k *Kernel) dispatchObjectHandler(obj *object.Object, h object.Handler, eb *event.Block) event.Verdict {
	switch obj.Policy() {
	case object.SpawnPerEvent:
		// A fresh system thread per event: the costly option §4.3 argues
		// against; kept for experiment E3.
		k.sys.ctrs.threadCreated.Add(1)
		done := make(chan event.Verdict, 1)
		k.wg.Add(1)
		go func() {
			defer k.wg.Done()
			done <- k.runObjectHandler(obj, h, eb)
		}()
		select {
		case v := <-done:
			return v
		case <-k.sys.closed:
			return event.VerdictResume
		}
	default: // MasterThread
		return k.masterFor(obj).handle(eb, h)
	}
}

// runObjectHandler executes an object-based handler on a surrogate system
// thread in the object's context. If the event names a thread with a local
// activation (e.g. an exception reported for a suspended thread), the
// surrogate takes on that thread's attributes "so that the context of the
// original thread can be examined and modified" (§6.1).
func (k *Kernel) runObjectHandler(obj *object.Object, h object.Handler, eb *event.Block) event.Verdict {
	attrs := k.suspendedAttrs(eb)
	sa := k.systemActivation(obj, attrs)
	v := h(sa.handlerCtx(), event.HandlerRef{}, eb)
	sa.stopTimers()
	return v
}

// suspendedAttrs clones the attributes of the thread an event concerns —
// only when that thread has a local activation that is actually suspended
// or blocked (a running thread's attributes are its own business; cloning
// them here would race with its execution).
func (k *Kernel) suspendedAttrs(eb *event.Block) *thread.Attributes {
	if eb.State == nil || !eb.State.Thread.IsValid() {
		return nil
	}
	a, ok := k.topAct(eb.State.Thread)
	if !ok {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.status != thread.StatusSuspended && a.status != thread.StatusBlocked {
		return nil
	}
	return a.attrs.Clone()
}

// master is an object's master handler thread (§4.3: "a handler thread can
// be associated with the object to handle all events on its behalf, thus
// eliminating thread-creation costs").
type master struct {
	k   *Kernel
	obj *object.Object
	ch  chan masterReq

	stopOnce sync.Once
	stopCh   chan struct{}
}

type masterReq struct {
	eb    *event.Block
	h     object.Handler
	reply chan event.Verdict
}

// masterFor lazily starts the object's master handler thread.
func (k *Kernel) masterFor(obj *object.Object) *master {
	k.masterMu.Lock()
	m, ok := k.masters[obj.ID()]
	if !ok {
		m = &master{k: k, obj: obj, ch: make(chan masterReq, 256), stopCh: make(chan struct{})}
		k.masters[obj.ID()] = m
		k.sys.ctrs.threadCreated.Add(1)
		k.wg.Add(1)
		go m.loop()
	}
	k.masterMu.Unlock()
	return m
}

func (m *master) loop() {
	defer m.k.wg.Done()
	for {
		select {
		case req := <-m.ch:
			m.k.sys.ctrs.masterServed.Add(1)
			req.reply <- m.k.runObjectHandler(m.obj, req.h, req.eb)
		case <-m.stopCh:
			return
		case <-m.k.sys.closed:
			return
		}
	}
}

func (m *master) stop() {
	m.stopOnce.Do(func() { close(m.stopCh) })
}

// handle runs one event on the master thread and returns the verdict.
func (m *master) handle(eb *event.Block, h object.Handler) event.Verdict {
	req := masterReq{eb: eb, h: h, reply: make(chan event.Verdict, 1)}
	select {
	case m.ch <- req:
	case <-m.k.sys.closed:
		return event.VerdictResume
	}
	select {
	case v := <-req.reply:
		return v
	case <-m.k.sys.closed:
		return event.VerdictResume
	}
}

// Distributed termination support (§6.3).

// abortReq chases an invocation chain, notifying each object and unwinding
// each activation.
type abortReq struct {
	TID ids.ThreadID
	Obj ids.ObjectID
}

// AbortInvocation aborts the invocation in progress for tid starting at
// obj: the object's ABORT handler runs (cleanup), the chain is chased to
// the object at the other end of the invocation, and the activations
// unwind with ErrAborted (§6.3).
func (k *Kernel) AbortInvocation(tid ids.ThreadID, oid ids.ObjectID) error {
	return k.abortChain(abortReq{TID: tid, Obj: oid})
}

func (k *Kernel) abortChain(req abortReq) error {
	home := req.Obj.Home()
	if home == k.node {
		return k.serveAbort(req)
	}
	_, err := k.call(home, kindAbortChain, req)
	return err
}

// serveAbort handles one hop of the abort chase at the aborted object's
// node.
func (k *Kernel) serveAbort(req abortReq) error {
	obj, err := k.store.Lookup(req.Obj)
	if err != nil {
		// The object is already gone; nothing to notify here.
		return nil
	}
	// Notify the object so it can clean up (close channels, release
	// resources): its object-based ABORT handler runs first.
	if h, ok := obj.Handler(event.Abort); ok {
		eb := &event.Block{
			Stamp:      k.gen.NextStamp(),
			Name:       event.Abort,
			Target:     event.ToObject(obj.ID()),
			RaiserNode: k.node,
			User:       map[string]any{"thread": req.TID},
			Class:      classControlU8,
		}
		k.sys.ctrs.eventRaised.Add(1)
		k.dispatchObjectHandler(obj, h, eb)
		k.sys.ctrs.eventDelivered.Add(1)
	}

	// Find the thread's activation that entered this object and chase the
	// invocation toward its other end.
	k.actMu.Lock()
	stack := k.acts[req.TID]
	var target *activation
	for i := len(stack) - 1; i >= 0; i-- {
		a := stack[i]
		a.mu.Lock()
		for _, f := range a.frames {
			if f.obj.ID() == req.Obj {
				target = a
				break
			}
		}
		a.mu.Unlock()
		if target != nil {
			break
		}
	}
	k.actMu.Unlock()
	if target == nil {
		return nil
	}

	target.mu.Lock()
	childObj := target.childObj
	target.mu.Unlock()

	if childObj.IsValid() {
		// "This causes the system to send an ABORT event to the object at
		// the other end of the invocation."
		if err := k.abortChain(abortReq{TID: req.TID, Obj: childObj}); err != nil {
			return err
		}
	}
	target.stop(ErrAborted)
	return nil
}

// raiseVMFault surfaces an unserviced user-paged fault to the faulting
// thread's own handler chain (§6.4): the thread is suspended at the fault,
// the chain (typically a buddy handler at a pager server) runs, and the
// access retries once a page was installed.
func (k *Kernel) raiseVMFault(a *activation, fe *dsm.FaultError) error {
	eb := &event.Block{
		Stamp:      k.gen.NextStamp(),
		Name:       event.VMFault,
		Target:     event.ToThread(a.tid),
		Raiser:     a.tid,
		RaiserNode: k.node,
		Class:      classSystemU8,
		User: map[string]any{
			"seg":   fe.Seg,
			"page":  fe.Page,
			"write": fe.Write,
			"node":  k.node,
		},
	}
	k.sys.ctrs.eventRaised.Add(1)
	a.mu.Lock()
	prev := a.status
	a.status = thread.StatusSuspended
	a.blockedOn = "vm_fault"
	a.mu.Unlock()

	verdict, consumed := k.runChain(a, eb)
	k.sys.ctrs.eventDelivered.Add(1)

	a.mu.Lock()
	if a.status == thread.StatusSuspended {
		a.status = prev
	}
	a.blockedOn = ""
	a.mu.Unlock()

	if err := a.stopped(); err != nil {
		return err
	}
	if !consumed {
		return fmt.Errorf("%w (no VM_FAULT handler attached)", dsm.ErrNoPager)
	}
	if verdict == event.VerdictTerminate {
		return ErrTerminated
	}
	return nil
}
