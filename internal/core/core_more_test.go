package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

// TestScenarioUnderLatencyAndJitter runs a full multi-node scenario over a
// fabric with latency and jitter: remote invocations, event delivery and
// termination must all behave identically, just slower.
func TestScenarioUnderLatencyAndJitter(t *testing.T) {
	sys := newSystem(t, Config{
		Nodes:   3,
		Latency: 2 * time.Millisecond,
		Jitter:  time.Millisecond,
		Seed:    11,
	})
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"h": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 1)
	deep, err := sys.CreateObject(3, object.Spec{
		Name: "deep",
		Entries: map[string]object.Entry{
			"park": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("SLOWNET"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "SLOWNET", Kind: event.KindProc, Proc: "h"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(5 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := sys.CreateObject(2, object.Spec{
		Name: "mid",
		Entries: map[string]object.Entry{
			"fwd": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(deep, "park")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, mid, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if _, err := sys.RaiseAndWait(1, "SLOWNET", event.ToThread(tid), nil); err != nil {
		t.Fatalf("sync raise over slow net: %v", err)
	}
	if handled.Load() != 1 {
		t.Fatalf("handled = %d", handled.Load())
	}
	if err := sys.Raise(2, event.Terminate, event.ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
		t.Fatalf("Wait err = %v", err)
	}
}

// TestEventToDeletedObject: raising at an object that was deleted fails
// cleanly.
func TestEventToDeletedObject(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, echoSpec("gone"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Raise(1, event.Delete, event.ToObject(oid), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToObject(oid), nil); err == nil {
		t.Fatal("raise at deleted object succeeded")
	}
	// Invoking it fails too.
	caller, err := sys.CreateObject(1, object.Spec{
		Name: "caller",
		Entries: map[string]object.Entry{
			"call": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(oid, "echo")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, caller, "call")
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, object.ErrUnknownObject) {
		t.Fatalf("invoke deleted object err = %v", err)
	}
}

// TestDSMModeTerminationProtocol runs the distributed ^C scenario with
// DSM-mode invocation: the §2 transparency goal applied to the paper's
// hardest application.
func TestDSMModeTerminationProtocol(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, Mode: ModeDSM})
	started := make(chan ids.ThreadID, 1)
	objCh := make(chan ids.ObjectID, 1)
	var ready atomic.Int64
	app, err := sys.CreateObject(2, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"main": func(ctx object.Ctx, _ []any) ([]any, error) {
				self := <-objCh
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				_ = gid
				for i := 0; i < 2; i++ {
					if _, err := ctx.InvokeAsync(self, "worker"); err != nil {
						return nil, err
					}
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(time.Hour)
			},
			"worker": func(ctx object.Ctx, _ []any) ([]any, error) {
				ready.Add(1)
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	objCh <- app
	h, err := sys.Spawn(1, app, "main")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	deadline := time.Now().Add(waitShort)
	for ready.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Group-wide QUIT terminates everyone, DSM mode or not.
	k1, _ := sys.Kernel(1)
	var gid ids.GroupID
	if a, ok := k1.topAct(tid); ok {
		a.mu.Lock()
		gid = a.attrs.Group
		a.mu.Unlock()
	}
	if !gid.IsValid() {
		t.Fatal("no group on root thread")
	}
	if err := sys.Raise(1, event.Quit, event.ToGroup(gid), nil); err != nil {
		t.Fatal(err)
	}
	for _, hh := range sys.Handles() {
		if _, err := hh.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
			t.Fatalf("thread %v err = %v, want ErrTerminated", hh.TID(), err)
		}
	}
	_ = h
}

// TestPerThreadMemoryVisibleAcrossObjects: §3.1's thread-context property —
// a value stored in per-thread memory in one object is visible in another
// object on another node.
func TestPerThreadMemoryVisibleAcrossObjects(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	reader, err := sys.CreateObject(2, object.Spec{
		Name: "reader",
		Entries: map[string]object.Entry{
			"read": func(ctx object.Ctx, _ []any) ([]any, error) {
				v := ctx.Attrs().PerThread["token"]
				return []any{string(v)}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	writer, err := sys.CreateObject(1, object.Spec{
		Name: "writer",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				ctx.Attrs().PerThread["token"] = []byte("carried")
				return ctx.Invoke(reader, "read")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, writer, "run")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "carried" {
		t.Fatalf("per-thread memory on remote node = %q, want %q", res[0], "carried")
	}
}

// TestConsistencyLabelTravels: the [Chen 89] consistency label rides the
// attributes like everything else.
func TestConsistencyLabelTravels(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	far, err := sys.CreateObject(2, object.Spec{
		Name: "far",
		Entries: map[string]object.Entry{
			"label": func(ctx object.Ctx, _ []any) ([]any, error) {
				return []any{ctx.Attrs().ConsistencyLabel}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	near, err := sys.CreateObject(1, object.Spec{
		Name: "near",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				ctx.Attrs().ConsistencyLabel = "strict"
				return ctx.Invoke(far, "label")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, near, "run")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "strict" {
		t.Fatalf("label at remote node = %q", res[0])
	}
}

// TestObjectRaisesDeclaration: the interface's declared exceptional events
// are queryable, supporting §5.2's linguistic discipline.
func TestObjectRaisesDeclaration(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, object.Spec{
		Name:   "declared",
		Raises: []event.Name{event.DivZero, "OVERFLOW"},
		Entries: map[string]object.Entry{
			"e": func(_ object.Ctx, _ []any) ([]any, error) { return nil, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := sys.LookupObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	raises := obj.Raises()
	if len(raises) != 2 || raises[0] != event.DivZero || raises[1] != "OVERFLOW" {
		t.Fatalf("Raises = %v", raises)
	}
}

// TestGroupZombiePruning: after a group raise trips over a dead member,
// the membership is garbage-collected and the next raise succeeds (§7.2).
func TestGroupZombiePruning(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"zh": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	gidCh := make(chan ids.GroupID, 1)
	parked := make(chan struct{}, 1)
	var oid ids.ObjectID
	spec := object.Spec{
		Name: "zombies",
		Entries: map[string]object.Entry{
			"root": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("ZEV"); err != nil {
					return nil, err
				}
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "ZEV", Kind: event.KindProc, Proc: "zh"}); err != nil {
					return nil, err
				}
				if _, err := ctx.InvokeAsync(oid, "brief"); err != nil {
					return nil, err
				}
				gidCh <- gid
				parked <- struct{}{}
				return nil, ctx.Sleep(2 * time.Second)
			},
			"brief": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, nil
			},
		},
	}
	var err error
	oid, err = sys.CreateObject(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn(1, oid, "root"); err != nil {
		t.Fatal(err)
	}
	gid := <-gidCh
	<-parked
	time.Sleep(50 * time.Millisecond) // the brief member is dead

	// First raise: trips over the zombie, prunes it.
	if err := sys.Raise(1, "ZEV", event.ToGroup(gid), nil); !errors.Is(err, ErrThreadNotFound) {
		t.Fatalf("first raise err = %v, want ErrThreadNotFound", err)
	}
	// Second raise: clean.
	if err := sys.Raise(1, "ZEV", event.ToGroup(gid), nil); err != nil {
		t.Fatalf("second raise err = %v, want nil after pruning", err)
	}
	deadline := time.Now().Add(waitShort)
	for handled.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("handled = %d, want 2", handled.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJoinExistingGroup: a thread joins a group another thread created,
// including through a remote directory.
func TestJoinExistingGroup(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"jh": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	gidCh := make(chan ids.GroupID, 1)
	bothIn := make(chan struct{}, 2)
	var oid ids.ObjectID
	spec := object.Spec{
		Name: "joiners",
		Entries: map[string]object.Entry{
			"creator": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("JEV"); err != nil {
					return nil, err
				}
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "JEV", Kind: event.KindProc, Proc: "jh"}); err != nil {
					return nil, err
				}
				gidCh <- gid
				bothIn <- struct{}{}
				return nil, ctx.Sleep(2 * time.Second)
			},
			"joiner": func(ctx object.Ctx, args []any) ([]any, error) {
				gid, _ := args[0].(ids.GroupID)
				// Remote directory: this thread runs on node 2, the group
				// directory is on node 1.
				if err := ctx.JoinGroup(gid); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "JEV", Kind: event.KindProc, Proc: "jh"}); err != nil {
					return nil, err
				}
				bothIn <- struct{}{}
				return nil, ctx.Sleep(2 * time.Second)
			},
		},
	}
	var err error
	oid, err = sys.CreateObject(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	oid2, err := sys.CreateObject(2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn(1, oid, "creator"); err != nil {
		t.Fatal(err)
	}
	gid := <-gidCh
	if _, err := sys.Spawn(2, oid2, "joiner", gid); err != nil {
		t.Fatal(err)
	}
	<-bothIn
	<-bothIn
	time.Sleep(30 * time.Millisecond)
	if _, err := sys.RaiseAndWait(1, "JEV", event.ToGroup(gid), nil); err != nil {
		t.Fatalf("group raise: %v", err)
	}
	if handled.Load() != 2 {
		t.Fatalf("handled = %d, want 2 (creator + remote joiner)", handled.Load())
	}
}

// TestRemoteCompareAndSwap exercises the kv.cas kernel path: DSM-mode
// entries of a remote-homed object do their CAS through the home node.
func TestRemoteCompareAndSwap(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, Mode: ModeDSM})
	oid, err := sys.CreateObject(2, object.Spec{
		Name: "casbox",
		Entries: map[string]object.Entry{
			"claim": func(ctx object.Ctx, _ []any) ([]any, error) {
				first := ctx.CompareAndSwap("claimed", nil, uint64(ctx.Thread()))
				second := ctx.CompareAndSwap("claimed", nil, uint64(ctx.Thread()))
				return []any{first, second}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	driver, err := sys.CreateObject(1, object.Spec{
		Name: "driver",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				// DSM mode: the entry runs here, the object's volatile
				// state stays at its home (node 2).
				return ctx.Invoke(oid, "claim")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, driver, "run")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != true || res[1] != false {
		t.Fatalf("CAS results = %v, want [true false]", res)
	}
}

// TestLocalEntryHandlerMethod: the plain KindEntry attachment (handler is
// a method of the attaching object, the paper's my_interrupt_handler).
func TestLocalEntryHandlerMethod(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var ran atomic.Bool
	started := make(chan ids.ThreadID, 1)
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "my_object",
		HandlerMethods: map[string]object.Handler{
			"my_interrupt_handler": func(ctx object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
				ran.Store(true)
				return event.VerdictResume
			},
		},
		Entries: map[string]object.Entry{
			"init": func(ctx object.Ctx, _ []any) ([]any, error) {
				// attach_handler(INTERRUPT, my_interrupt_handler): the
				// handler object defaults to the current object.
				if err := ctx.AttachHandler(event.HandlerRef{
					Event: event.Interrupt, Kind: event.KindEntry, Entry: "my_interrupt_handler",
				}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "init")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("entry handler method never ran")
	}
	_ = h
}

// TestAccessorsSmoke pokes the small read-only accessors.
func TestAccessorsSmoke(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, Mode: ModeDSM})
	if sys.Mode() != ModeDSM {
		t.Error("Mode accessor wrong")
	}
	if sys.Events() == nil {
		t.Error("Events accessor nil")
	}
	k, err := sys.Kernel(1)
	if err != nil {
		t.Fatal(err)
	}
	if k.Node() != 1 || k.DSM() == nil || k.Store() == nil {
		t.Error("kernel accessors wrong")
	}
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"say": func(ctx object.Ctx, _ []any) ([]any, error) {
				ctx.Output("line1")
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SpawnApp(1, "acc", oid, "say")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-time.After(waitShort):
		t.Fatal("Done never closed")
	}
	if dump := sys.IODump(); dump == "" {
		t.Error("IODump empty")
	}
	if sys.HandleOf(h.TID()) != h {
		t.Error("HandleOf mismatch")
	}
}

// TestObjectFirstChanceHandler: §6.1 — the object the thread is active in
// gets its object-based handler run before the thread's chain. A
// consuming object handler stops the chain; a propagating one hands over.
func TestObjectFirstChanceHandler(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var objectSaw, threadSaw atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"threadh": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			threadSaw.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 2)
	mk := func(name string, objectVerdict event.Verdict) object.Spec {
		return object.Spec{
			Name: name,
			Handlers: map[event.Name]object.Handler{
				event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
					objectSaw.Add(1)
					return objectVerdict
				},
			},
			Entries: map[string]object.Entry{
				"park": func(ctx object.Ctx, _ []any) ([]any, error) {
					if err := ctx.AttachHandler(event.HandlerRef{Event: event.Interrupt, Kind: event.KindProc, Proc: "threadh"}); err != nil {
						return nil, err
					}
					started <- ctx.Thread()
					return nil, ctx.Sleep(time.Second)
				},
			},
		}
	}
	consume, err := sys.CreateObject(1, mk("consumer", event.VerdictResume))
	if err != nil {
		t.Fatal(err)
	}
	propagate, err := sys.CreateObject(1, mk("propagator", event.VerdictPropagate))
	if err != nil {
		t.Fatal(err)
	}

	// Case 1: the object handler consumes; the thread handler never runs.
	h1, err := sys.Spawn(1, consume, "park")
	if err != nil {
		t.Fatal(err)
	}
	tid1 := <-started
	waitAsleep(t, sys, tid1)
	if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToThread(tid1), nil); err != nil {
		t.Fatal(err)
	}
	if objectSaw.Load() != 1 || threadSaw.Load() != 0 {
		t.Fatalf("consume case: object=%d thread=%d, want 1/0", objectSaw.Load(), threadSaw.Load())
	}

	// Case 2: the object handler propagates; the thread handler runs too.
	h2, err := sys.Spawn(1, propagate, "park")
	if err != nil {
		t.Fatal(err)
	}
	tid2 := <-started
	waitAsleep(t, sys, tid2)
	if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToThread(tid2), nil); err != nil {
		t.Fatal(err)
	}
	if objectSaw.Load() != 2 || threadSaw.Load() != 1 {
		t.Fatalf("propagate case: object=%d thread=%d, want 2/1", objectSaw.Load(), threadSaw.Load())
	}
	_, _ = h1, h2
}

// TestSelfSyncRaiseFromHandlerRejected: the guard against an undeliverable
// synchronous self-raise from inside a handler.
func TestSelfSyncRaiseFromHandlerRejected(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var handlerErr atomic.Value
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"selfraise": func(ctx object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			err := ctx.RaiseAndWait(event.Interrupt, event.ToThread(ctx.Thread()), nil)
			if err != nil {
				handlerErr.Store(err)
			}
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 1)
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"park": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("SR"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "SR", Kind: event.KindProc, Proc: "selfraise"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "park")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if _, err := sys.RaiseAndWait(1, "SR", event.ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	if handlerErr.Load() == nil {
		t.Fatal("self sync-raise from handler was not rejected")
	}
	_ = h
}

// TestInvokeGuardedBadRefUnwinds: an invalid guard ref fails fast and
// leaves no partial attachments.
func TestInvokeGuardedBadRefUnwinds(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	target, err := sys.CreateObject(1, echoSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	var leftover atomic.Int64
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				_, err := ctx.InvokeGuarded(target, "echo", []event.HandlerRef{
					{Event: event.DivZero, Kind: event.KindProc, Proc: "ok"},
					{Event: event.Interrupt, Kind: event.KindProc}, // missing Proc: invalid
				})
				leftover.Store(int64(ctx.Attrs().Handlers.Len()))
				return nil, err
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "run")
	if _, err := h.WaitTimeout(waitShort); err == nil {
		t.Fatal("invalid guard ref accepted")
	}
	if leftover.Load() != 0 {
		t.Fatalf("partial guard attachments left: %d", leftover.Load())
	}
}

func TestClearTimerWhenUnset(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, ctx.ClearTimer(event.Timer)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "run")
	if _, err := h.WaitTimeout(waitShort); err == nil {
		t.Fatal("ClearTimer with nothing registered succeeded")
	}
}

func TestOperationsAfterClose(t *testing.T) {
	sys, err := NewSystem(Config{Nodes: 1, CallTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	oid, err := sys.CreateObject(1, echoSpec("o"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if _, err := sys.Spawn(1, oid, "echo"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Spawn after Close err = %v, want ErrShutdown", err)
	}
	// Close is idempotent.
	sys.Close()
}

func TestCreateObjectUnknownNode(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	if _, err := sys.CreateObject(9, echoSpec("x")); err == nil {
		t.Fatal("CreateObject on unknown node succeeded")
	}
	if _, err := sys.Spawn(9, ids.NewObjectID(1, 1), "e"); err == nil {
		t.Fatal("Spawn on unknown node succeeded")
	}
	if _, err := sys.Kernel(9); err == nil {
		t.Fatal("Kernel(9) succeeded")
	}
}

func TestRaiseAndWaitEmptyGroup(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	gidCh := make(chan ids.GroupID, 1)
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"mkgroup": func(ctx object.Ctx, _ []any) ([]any, error) {
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				gidCh <- gid
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "mkgroup")
	gid := <-gidCh
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	// The creator finished; pruning happens on the async raise. For the
	// sync raise against a group whose only member is gone, the release
	// carries the failure.
	if _, err := sys.RaiseAndWait(1, event.Quit, event.ToGroup(gid), nil); err == nil {
		t.Fatal("sync raise to dead-membered group succeeded")
	}
}

// TestHandleWaitBlocking covers the plain Wait path.
func TestHandleWaitBlocking(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "o",
		Entries: map[string]object.Entry{
			"quick": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.Sleep(10 * time.Millisecond); err != nil {
					return nil, err
				}
				return []any{"done"}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "quick")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil || res[0] != "done" {
		t.Fatalf("Wait = %v, %v", res, err)
	}
}
