package core

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/trace"
)

// TestKernelTrace drives a small scenario with tracing enabled and checks
// the record stream tells the story: spawn, hop, raise, handler, deliver.
func TestKernelTrace(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, TraceCapacity: 256})
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"h": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 1)
	far, err := sys.CreateObject(2, object.Spec{
		Name: "far",
		Entries: map[string]object.Entry{
			"park": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("TRACED"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "TRACED", Kind: event.KindProc, Proc: "h"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, far, "park")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	time.Sleep(20 * time.Millisecond)
	if _, err := sys.RaiseAndWait(1, "TRACED", event.ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}

	tr := sys.Trace()
	if tr == nil || !tr.Enabled() {
		t.Fatal("trace not enabled")
	}
	for _, kind := range []trace.Kind{trace.KindSpawn, trace.KindHop, trace.KindRaise, trace.KindHandlerRun, trace.KindDeliver} {
		if len(tr.OfKind(kind)) == 0 {
			t.Errorf("no %v records in trace:\n%s", kind, tr.Dump())
		}
	}
	// The thread's own records include the hop from node1 to node2.
	hops := 0
	for _, r := range tr.OfThread(tid) {
		if r.Kind == trace.KindHop && r.Node == 1 && r.Target == "node2" {
			hops++
		}
	}
	if hops != 1 {
		t.Errorf("thread trace has %d node1->node2 hops, want 1:\n%s", hops, tr.Dump())
	}
}

// TestTraceDisabledByDefault: no TraceCapacity, no records, no crashes.
func TestTraceDisabledByDefault(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, echoSpec("e"))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, oid, "echo")
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if sys.Trace() != nil {
		t.Fatal("Trace() non-nil with tracing disabled")
	}
}
