package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/reliable"
	"repro/internal/thread"
	"repro/internal/transport/wire"
)

func codecSampleAttrs() *thread.Attributes {
	a := thread.NewAttributes(ids.NewThreadID(2, 9))
	a.App = "shell"
	a.Handlers.Push(event.HandlerRef{
		Event: event.Terminate, Kind: event.KindProc, Proc: "unlock",
		Data: map[string]string{"lock": "m"},
	})
	a.Timers = []thread.TimerSpec{{Event: event.Timer, Period: time.Second}}
	a.PerThread["cwd"] = []byte("/tmp")
	a.Version = 7
	return a
}

// codecSamples returns one populated value per core RPC payload type.
func codecSamples() map[string]any {
	eb := &event.Block{
		Stamp:      ids.EventStamp{Node: 1, Seq: 3},
		Name:       event.Interrupt,
		Target:     event.ToThread(ids.NewThreadID(1, 4)),
		Raiser:     ids.NewThreadID(2, 2),
		RaiserNode: 2,
	}
	return map[string]any{
		"rpcRequest": rpcRequest{
			ID: 9, Kind: kindInvoke, From: 2,
			Body: invokeReq{TID: ids.NewThreadID(2, 2), Obj: ids.NewObjectID(1, 1), Entry: "get"},
		},
		"rpcResponse": rpcResponse{
			ID: 9, Body: kvReply{Val: "x", Found: true},
			Err: fmt.Errorf("get: %w", ErrNodeDown),
		},
		"heartbeat": heartbeat{},
		"fdNotice":  fdNotice{Node: 3, Up: false},
		"releaseReq": releaseReq{
			ID: 4, Verdict: event.VerdictResume, Consumed: true, Err: ErrUnhandledSync,
		},
		"invokeReq": invokeReq{
			TID:   ids.NewThreadID(1, 7),
			Attrs: codecSampleAttrs(),
			Obj:   ids.NewObjectID(3, 3),
			Entry: "put",
			Args:  []any{"k", 42, []byte{1, 2}},
			Depth: 2,
		},
		"invokeReply": invokeReply{
			Results: []any{"ok", int64(7)},
			Delta:   &thread.Delta{Thread: ids.NewThreadID(1, 7), Base: 7, Version: 8},
			AppErr:  errors.New("app failed"),
		},
		"objectEventReq":   objectEventReq{EB: eb},
		"objectEventReply": objectEventReply{Verdict: event.VerdictPropagate, Consumed: true},
		"handlerRunReq": handlerRunReq{
			Ref:   event.HandlerRef{Event: event.Quit, Kind: event.KindEntry, Object: ids.NewObjectID(1, 2), Entry: "h"},
			EB:    eb,
			Attrs: codecSampleAttrs(),
		},
		"handlerRunReply": handlerRunReply{Verdict: event.VerdictTerminate, Attrs: codecSampleAttrs()},
		"abortReq":        abortReq{TID: ids.NewThreadID(4, 1), Obj: ids.NewObjectID(2, 5)},
		"groupJoinReq":    groupJoinReq{Group: 11, Thread: ids.NewThreadID(1, 1), Leave: true},
		"kvReq":           kvReq{Object: ids.NewObjectID(1, 6), Key: "count", Val: 5, Old: 4},
		"kvReply":         kvReply{Val: map[string]any{"a": 1}, Found: true},
		"pageOpReq":       pageOpReq{Seg: 8, Page: 3, Data: []byte("page image")},
		"pageFetchReply":  pageFetchReply{Data: []byte{9, 9}, Found: true},
		"dirUpdate":       dirUpdate{TID: ids.NewThreadID(3, 5), Node: 2, Remove: true},
		"fanoutReq": &fanoutReq{
			ID: 12, Root: 1, K: 4, GID: 7, EB: eb,
			Nodes: []ids.NodeID{1, 2, 3},
			Assign: [][]ids.ThreadID{
				{ids.NewThreadID(1, 1)},
				{ids.NewThreadID(2, 9)},
				{ids.NewThreadID(3, 2), ids.NewThreadID(3, 3)},
			},
		},
		// WAL record family (durable.go): these hit disk, so their
		// encodings are as much wire format as anything that crosses TCP.
		"walObjSet":  walObjSet{Obj: "tally", Key: "count", Val: 42},
		"walObjDel":  walObjDel{Obj: "tally"},
		"walAttrVer": walAttrVer{Ver: 2048},
		"walWindow":  walWindow{Peer: 3, Gen: 7, Seq: 12, Cum: 9},
		"walSnapshot": walSnapshot{
			AttrVer: 1024,
			Objects: []walObjImage{
				{Name: "sink", KV: map[string]any{"last": "e-41", "n": 41}},
			},
			Windows: []reliable.PeerWindow{
				{Peer: 2, Gen: 1, Cum: 5, Max: 9, Seen: []uint64{7, 9}, NextSeq: 4},
			},
		},
	}
}

// TestCoreWireCodecRoundTrip pins, for every kernel RPC payload type, that
// EncodedSize matches the encoding exactly and that decode reproduces the
// value (errors compared by errors.Is identity and message, since decoding
// rebuilds them as sentinel or RemoteError).
func TestCoreWireCodecRoundTrip(t *testing.T) {
	for name, v := range codecSamples() {
		enc, err := wire.EncodeValue(v)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		size, err := wire.EncodedSize(v)
		if err != nil {
			t.Fatalf("%s: size: %v", name, err)
		}
		if size != len(enc) {
			t.Errorf("%s: EncodedSize=%d, len(Encode())=%d", name, size, len(enc))
		}
		got, err := wire.DecodeValue(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		assertPayloadEqual(t, name, got, v)
		re, err := wire.EncodeValue(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if string(re) != string(enc) {
			t.Errorf("%s: re-encode not byte-identical", name)
		}
	}
}

// assertPayloadEqual compares a decoded payload against the original,
// tolerating the one legitimate difference: non-sentinel error values come
// back as *wire.RemoteError with the same message and sentinel identity.
func assertPayloadEqual(t *testing.T, name string, got, want any) {
	t.Helper()
	switch w := want.(type) {
	case rpcResponse:
		g, ok := got.(rpcResponse)
		if !ok {
			t.Errorf("%s: decoded as %T", name, got)
			return
		}
		assertErrEqual(t, name, g.Err, w.Err)
		g.Err, w.Err = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: mismatch:\n got %#v\nwant %#v", name, g, w)
		}
	case releaseReq:
		g := got.(releaseReq)
		assertErrEqual(t, name, g.Err, w.Err)
		g.Err, w.Err = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: mismatch:\n got %#v\nwant %#v", name, g, w)
		}
	case invokeReply:
		g := got.(invokeReply)
		assertErrEqual(t, name, g.AppErr, w.AppErr)
		g.AppErr, w.AppErr = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: mismatch:\n got %#v\nwant %#v", name, g, w)
		}
	default:
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: mismatch:\n got %#v\nwant %#v", name, got, want)
		}
	}
}

func assertErrEqual(t *testing.T, name string, got, want error) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Errorf("%s: error nil-ness mismatch: got %v want %v", name, got, want)
		return
	}
	if want == nil {
		return
	}
	if got.Error() != want.Error() {
		t.Errorf("%s: error message: got %q want %q", name, got.Error(), want.Error())
	}
	for _, sentinel := range []error{ErrNodeDown, ErrUnhandledSync, ErrTerminated} {
		if errors.Is(want, sentinel) && !errors.Is(got, sentinel) {
			t.Errorf("%s: decoded error lost errors.Is(%v)", name, sentinel)
		}
	}
}

// TestCoreSentinelsCrossWire pins that every core sentinel survives a
// wire crossing with identity intact — the property exactly-once retries
// and FT reactions depend on when kernels run in separate processes.
func TestCoreSentinelsCrossWire(t *testing.T) {
	for _, sentinel := range []error{
		ErrTerminated, ErrAborted, ErrThreadNotFound, ErrUnhandledSync,
		ErrUnknownProc, ErrNotRegistered, ErrShutdown, ErrRaiseTimeout,
		ErrNodeDown, ErrNodeCrashed, errThreadMoved, errAttrResync,
	} {
		enc, err := wire.EncodeValue(error(sentinel))
		if err != nil {
			t.Fatalf("%v: encode: %v", sentinel, err)
		}
		got, err := wire.DecodeValue(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", sentinel, err)
		}
		if got != error(sentinel) {
			t.Errorf("sentinel %v did not survive as identity: %#v", sentinel, got)
		}
	}
}
