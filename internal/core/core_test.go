package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/testutil"
)

const waitShort = 5 * time.Second

// waitAsleep waits until some node hosts tid's deepest activation parked in
// a kernel sleep — the state a test must reach before raising at a sleeper.
// (Racing the raise against the spawn would deliver to a still-running
// thread and exercise the checkpoint path instead of the blocked one.)
func waitAsleep(t *testing.T, sys *System, tid ids.ThreadID) {
	t.Helper()
	testutil.WaitFor(t, fmt.Sprintf("thread %v to block in sleep", tid), func() bool {
		for _, n := range sys.Nodes() {
			if st, ok := sys.ThreadState(n, tid); ok && st.Blocked == "sleep" {
				return true
			}
		}
		return false
	})
}

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 3 * time.Second
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// echoSpec is a trivial object: entry "echo" returns its arguments.
func echoSpec(name string) object.Spec {
	return object.Spec{
		Name: name,
		Entries: map[string]object.Entry{
			"echo": func(_ object.Ctx, args []any) ([]any, error) {
				return args, nil
			},
		},
	}
}

func TestSpawnAndLocalInvoke(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, echoSpec("echo"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "echo", 42, "hi")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(res) != 2 || res[0] != 42 || res[1] != "hi" {
		t.Fatalf("result = %v", res)
	}
}

func TestRemoteInvokeMovesThread(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	// Object on node 2; spawn on node 1: the logical thread hops.
	oid, err := sys.CreateObject(2, object.Spec{
		Name: "remote",
		Entries: map[string]object.Entry{
			"where": func(ctx object.Ctx, _ []any) ([]any, error) {
				return []any{ctx.Node()}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Metrics().Snapshot()
	h, err := sys.Spawn(1, oid, "where")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != ids.NodeID(2) {
		t.Fatalf("entry ran at %v, want node2", res[0])
	}
	d := sys.Metrics().Snapshot().Diff(before)
	if d.Get(metrics.CtrInvokeRemote) != 1 {
		t.Errorf("remote invokes = %d, want 1", d.Get(metrics.CtrInvokeRemote))
	}
	if d.Get(metrics.CtrThreadHop) != 1 {
		t.Errorf("thread hops = %d, want 1", d.Get(metrics.CtrThreadHop))
	}
}

func TestInvokeUnknownObjectAndEntry(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, echoSpec("e"))
	if err != nil {
		t.Fatal(err)
	}
	caller, err := sys.CreateObject(1, object.Spec{
		Name: "caller",
		Entries: map[string]object.Entry{
			"badobj": func(ctx object.Ctx, _ []any) ([]any, error) {
				_, err := ctx.Invoke(ids.NewObjectID(1, 999), "echo")
				return nil, err
			},
			"badentry": func(ctx object.Ctx, _ []any) ([]any, error) {
				_, err := ctx.Invoke(oid, "nope")
				return nil, err
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	h, _ := sys.Spawn(1, caller, "badobj")
	_, err = h.WaitTimeout(waitShort)
	if !errors.Is(err, object.ErrUnknownObject) {
		t.Errorf("invoke unknown object err = %v", err)
	}
	h, _ = sys.Spawn(1, caller, "badentry")
	_, err = h.WaitTimeout(waitShort)
	if !errors.Is(err, object.ErrUnknownEntry) {
		t.Errorf("invoke unknown entry err = %v", err)
	}
}

func TestAttributeChangesPersistAcrossReturn(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	// Callee on node 2 attaches a handler; after return the caller's copy
	// of the chain must include it (§4.1).
	callee, err := sys.CreateObject(2, object.Spec{
		Name: "callee",
		Entries: map[string]object.Entry{
			"attach": func(ctx object.Ctx, _ []any) ([]any, error) {
				err := ctx.AttachHandler(event.HandlerRef{
					Event: event.Interrupt, Kind: event.KindProc, Proc: "noop",
				})
				return nil, err
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawDepth atomic.Int64
	caller, err := sys.CreateObject(1, object.Spec{
		Name: "caller",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if _, err := ctx.Invoke(callee, "attach"); err != nil {
					return nil, err
				}
				sawDepth.Store(int64(ctx.Attrs().Handlers.Depth(event.Interrupt)))
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"noop": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, caller, "run")
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if sawDepth.Load() != 1 {
		t.Fatalf("caller saw chain depth %d after return, want 1", sawDepth.Load())
	}
}

func TestRaiseUnregisteredEvent(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	err := sys.Raise(1, "NOT_REGISTERED", event.ToThread(ids.NewThreadID(1, 1)), nil)
	if !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v, want ErrNotRegistered", err)
	}
}

func TestDeliveryAtCheckpoint(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"count": func(_ object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 1)
	release := make(chan struct{})
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "worker",
		Entries: map[string]object.Entry{
			"loop": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("PING"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "PING", Kind: event.KindProc, Proc: "count"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				<-release
				// The pending PING is delivered at this checkpoint.
				if err := ctx.Checkpoint(); err != nil {
					return nil, err
				}
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "loop")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	if err := sys.Raise(1, "PING", event.ToThread(tid), nil); err != nil {
		t.Fatalf("Raise: %v", err)
	}
	close(release)
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if handled.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", handled.Load())
	}
}

func TestSurrogateDeliveryToBlockedThread(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var handled atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"mark": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			handled.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 1)
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "sleeper",
		Entries: map[string]object.Entry{
			"sleep": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("POKE"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "POKE", Kind: event.KindProc, Proc: "mark"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(500 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Metrics().Snapshot()
	h, err := sys.Spawn(1, oid, "sleep")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if err := sys.Raise(1, "POKE", event.ToThread(tid), nil); err != nil {
		t.Fatalf("Raise: %v", err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if handled.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", handled.Load())
	}
	d := sys.Metrics().Snapshot().Diff(before)
	if d.Get(metrics.CtrSurrogateRuns) == 0 {
		t.Error("no surrogate run recorded for a blocked target")
	}
}

func TestChainLIFOAndPropagate(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var order []string
	done := make(chan struct{})
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"first": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			order = append(order, "first")
			close(done)
			return event.VerdictResume
		},
		"second": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			order = append(order, "second")
			return event.VerdictPropagate
		},
	}); err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 1)
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "chained",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("CHAIN"); err != nil {
					return nil, err
				}
				// Attach "first" then "second": LIFO delivery runs
				// "second" first; it propagates to "first".
				if err := ctx.AttachHandler(event.HandlerRef{Event: "CHAIN", Kind: event.KindProc, Proc: "first"}); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "CHAIN", Kind: event.KindProc, Proc: "second"}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(500 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "run")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if err := sys.Raise(1, "CHAIN", event.ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(waitShort):
		t.Fatal("chain never reached the first handler")
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("chain order = %v, want [second first] (LIFO)", order)
	}
}

func TestDefaultActionTerminates(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	started := make(chan ids.ThreadID, 1)
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "victim",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				started <- ctx.Thread()
				return nil, ctx.Sleep(10 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "run")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if err := sys.Raise(1, event.Terminate, event.ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	_, err = h.WaitTimeout(waitShort)
	if !errors.Is(err, ErrTerminated) {
		t.Fatalf("Wait err = %v, want ErrTerminated (default action)", err)
	}
}

func TestTerminateUnwindsRemoteChain(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 3})
	started := make(chan ids.ThreadID, 1)
	// node1 -> node2 -> node3, deepest sleeps; TERMINATE must unwind all.
	deep, err := sys.CreateObject(3, object.Spec{
		Name: "deep",
		Entries: map[string]object.Entry{
			"sleep": func(ctx object.Ctx, _ []any) ([]any, error) {
				started <- ctx.Thread()
				return nil, ctx.Sleep(10 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := sys.CreateObject(2, object.Spec{
		Name: "mid",
		Entries: map[string]object.Entry{
			"fwd": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(deep, "sleep")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, mid, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if err := sys.Raise(1, event.Terminate, event.ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	_, err = h.WaitTimeout(waitShort)
	if !errors.Is(err, ErrTerminated) {
		t.Fatalf("Wait err = %v, want ErrTerminated through the whole chain", err)
	}
	// All TCBs eventually cleaned up.
	testutil.WaitForTimeout(t, waitShort, "termination to clean up every TCB", func() bool {
		for _, n := range sys.Nodes() {
			k, _ := sys.Kernel(n)
			if _, ok := k.TCBs().Lookup(tid); ok {
				return false
			}
		}
		return true
	})
}

func TestRaiseAndWaitSelfExceptionResume(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var repaired atomic.Bool
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"repair": func(_ object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
			repaired.Store(true)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "exc",
		Entries: map[string]object.Entry{
			"divide": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.DivZero, Kind: event.KindProc, Proc: "repair"}); err != nil {
					return nil, err
				}
				// The exception: raised synchronously against ourselves;
				// the handler repairs and resumes us (§6.1).
				if err := ctx.RaiseAndWait(event.DivZero, event.ToThread(ctx.Thread()), nil); err != nil {
					return nil, err
				}
				return []any{"survived"}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "divide")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !repaired.Load() || len(res) != 1 || res[0] != "survived" {
		t.Fatalf("repaired=%v res=%v", repaired.Load(), res)
	}
}

func TestRaiseAndWaitSelfExceptionDefaultTerminates(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "exc",
		Entries: map[string]object.Entry{
			"divide": func(ctx object.Ctx, _ []any) ([]any, error) {
				// No handler attached: the default for DIV_ZERO terminates
				// the thread.
				err := ctx.RaiseAndWait(event.DivZero, event.ToThread(ctx.Thread()), nil)
				return nil, err
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "divide")
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.WaitTimeout(waitShort)
	if !errors.Is(err, ErrTerminated) {
		t.Fatalf("Wait err = %v, want ErrTerminated", err)
	}
}

func TestBuddyHandlerRunsOnRemoteNode(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	// Buddy (central server) on node 2 handles events for a thread on
	// node 1 (§4.1's buddy handlers).
	var buddyNode atomic.Int64
	server, err := sys.CreateObject(2, object.Spec{
		Name: "server",
		HandlerMethods: map[string]object.Handler{
			"observe": func(ctx object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
				buddyNode.Store(int64(ctx.Node()))
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan ids.ThreadID, 1)
	app, err := sys.CreateObject(1, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("WATCH"); err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{
					Event: "WATCH", Kind: event.KindBuddy, Object: server, Entry: "observe",
				}); err != nil {
					return nil, err
				}
				started <- ctx.Thread()
				return nil, ctx.Sleep(500 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Metrics().Snapshot()
	h, err := sys.Spawn(1, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)
	if err := sys.Raise(1, "WATCH", event.ToThread(tid), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if buddyNode.Load() != 2 {
		t.Fatalf("buddy handler ran at node%d, want node2", buddyNode.Load())
	}
	if sys.Metrics().Snapshot().Diff(before).Get(metrics.CtrHandlerRunBuddy) != 1 {
		t.Error("buddy handler run not counted")
	}
}

func TestObjectEventMasterThread(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var served atomic.Int64
	oid, err := sys.CreateObject(1, object.Spec{
		Name:   "passive",
		Policy: object.MasterThread,
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				served.Add(1)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Metrics().Snapshot()
	// Raise synchronously so completion is observable.
	for i := 0; i < 5; i++ {
		if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToObject(oid), nil); err != nil {
			t.Fatalf("RaiseAndWait %d: %v", i, err)
		}
	}
	if served.Load() != 5 {
		t.Fatalf("handler served %d, want 5", served.Load())
	}
	d := sys.Metrics().Snapshot().Diff(before)
	if d.Get(metrics.CtrMasterServed) != 5 {
		t.Errorf("master served = %d, want 5", d.Get(metrics.CtrMasterServed))
	}
	// One master thread created, not one per event.
	if got := d.Get(metrics.CtrThreadCreated); got != 1 {
		t.Errorf("threads created = %d, want 1 (master)", got)
	}
}

func TestObjectEventSpawnPerEvent(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	var served atomic.Int64
	oid, err := sys.CreateObject(1, object.Spec{
		Name:   "spawny",
		Policy: object.SpawnPerEvent,
		Handlers: map[event.Name]object.Handler{
			event.Interrupt: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				served.Add(1)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Metrics().Snapshot()
	for i := 0; i < 5; i++ {
		if _, err := sys.RaiseAndWait(1, event.Interrupt, event.ToObject(oid), nil); err != nil {
			t.Fatal(err)
		}
	}
	d := sys.Metrics().Snapshot().Diff(before)
	if got := d.Get(metrics.CtrThreadCreated); got != 5 {
		t.Errorf("threads created = %d, want 5 (one per event)", got)
	}
}

func TestObjectDeleteDefaultAndHandler(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	// No handler: default removes the object.
	plain, err := sys.CreateObject(1, echoSpec("plain"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Raise(1, event.Delete, event.ToObject(plain), nil); err != nil {
		t.Fatal(err)
	}
	k, _ := sys.Kernel(1)
	if _, err := k.Store().Lookup(plain); !errors.Is(err, object.ErrUnknownObject) {
		t.Fatalf("object survived DELETE default: %v", err)
	}

	// With handler: handler runs, then the object is removed.
	var cleaned atomic.Bool
	handled, err := sys.CreateObject(1, object.Spec{
		Name: "handled",
		Handlers: map[event.Name]object.Handler{
			event.Delete: func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				cleaned.Store(true)
				return event.VerdictResume
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RaiseAndWait(1, event.Delete, event.ToObject(handled), nil); err != nil {
		t.Fatal(err)
	}
	if !cleaned.Load() {
		t.Error("DELETE handler did not run")
	}
	if _, err := k.Store().Lookup(handled); !errors.Is(err, object.ErrUnknownObject) {
		t.Error("object survived handled DELETE")
	}
}

func TestGroupRaiseReachesAllMembers(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	var pings atomic.Int64
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"gping": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			pings.Add(1)
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	gidCh := make(chan ids.GroupID, 1)
	workers := make(chan ids.ThreadID, 3)
	var worker ids.ObjectID
	spec := object.Spec{
		Name: "member",
		Entries: map[string]object.Entry{
			"root": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent("GPING"); err != nil {
					return nil, err
				}
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				if err := ctx.AttachHandler(event.HandlerRef{Event: "GPING", Kind: event.KindProc, Proc: "gping"}); err != nil {
					return nil, err
				}
				gidCh <- gid
				// Spawn two children: they inherit group and handler.
				for i := 0; i < 2; i++ {
					if _, err := ctx.InvokeAsync(worker, "wait"); err != nil {
						return nil, err
					}
				}
				workers <- ctx.Thread()
				return nil, ctx.Sleep(time.Second)
			},
			"wait": func(ctx object.Ctx, _ []any) ([]any, error) {
				workers <- ctx.Thread()
				return nil, ctx.Sleep(time.Second)
			},
		},
	}
	var err error
	worker, err = sys.CreateObject(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, worker, "root")
	if err != nil {
		t.Fatal(err)
	}
	gid := <-gidCh
	for i := 0; i < 3; i++ {
		waitAsleep(t, sys, <-workers)
	}
	if _, err := sys.RaiseAndWait(1, "GPING", event.ToGroup(gid), nil); err != nil {
		t.Fatalf("group RaiseAndWait: %v", err)
	}
	if pings.Load() != 3 {
		t.Fatalf("group delivery reached %d threads, want 3", pings.Load())
	}
	_ = h
}

func TestQuitTerminatesGroup(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	gidCh := make(chan ids.GroupID, 1)
	ready := make(chan ids.ThreadID, 8)
	var obj ids.ObjectID
	spec := object.Spec{
		Name: "quitters",
		Entries: map[string]object.Entry{
			"root": func(ctx object.Ctx, _ []any) ([]any, error) {
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				gidCh <- gid
				for i := 0; i < 3; i++ {
					if _, err := ctx.InvokeAsync(obj, "wait"); err != nil {
						return nil, err
					}
				}
				ready <- ctx.Thread()
				return nil, ctx.Sleep(10 * time.Second)
			},
			"wait": func(ctx object.Ctx, _ []any) ([]any, error) {
				ready <- ctx.Thread()
				return nil, ctx.Sleep(10 * time.Second)
			},
		},
	}
	var err error
	obj, err = sys.CreateObject(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, obj, "root")
	if err != nil {
		t.Fatal(err)
	}
	gid := <-gidCh
	for i := 0; i < 4; i++ {
		waitAsleep(t, sys, <-ready)
	}
	if err := sys.Raise(1, event.Quit, event.ToGroup(gid), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
		t.Fatalf("root err = %v, want ErrTerminated", err)
	}
	// All spawned threads must terminate too.
	for _, hh := range sys.Handles() {
		if _, err := hh.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
			t.Fatalf("thread %v err = %v, want ErrTerminated", hh.TID(), err)
		}
	}
}

func TestTimerChasesThreadAcrossNodes(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	var (
		ticksAt1 atomic.Int64
		ticksAt2 atomic.Int64
	)
	if err := sys.RegisterProcs(map[string]ProcFunc{
		"tick": func(ctx object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
			switch ctx.Node() {
			case 1:
				ticksAt1.Add(1)
			case 2:
				ticksAt2.Add(1)
			}
			return event.VerdictResume
		},
	}); err != nil {
		t.Fatal(err)
	}
	remote, err := sys.CreateObject(2, object.Spec{
		Name: "remote",
		Entries: map[string]object.Entry{
			"dwell": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, ctx.Sleep(120 * time.Millisecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := sys.CreateObject(1, object.Spec{
		Name: "local",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.AttachHandler(event.HandlerRef{Event: event.Timer, Kind: event.KindProc, Proc: "tick"}); err != nil {
					return nil, err
				}
				if err := ctx.SetTimer(event.Timer, 15*time.Millisecond); err != nil {
					return nil, err
				}
				if err := ctx.Sleep(120 * time.Millisecond); err != nil {
					return nil, err
				}
				// Move to node 2: the registration is recreated there.
				if _, err := ctx.Invoke(remote, "dwell"); err != nil {
					return nil, err
				}
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, local, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if ticksAt1.Load() == 0 {
		t.Error("no TIMER events delivered at node1")
	}
	if ticksAt2.Load() == 0 {
		t.Error("no TIMER events delivered at node2 (timer did not chase the thread)")
	}
}

func TestAbortInvocationChain(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 3})
	var cleanups atomic.Int64
	abortHandler := func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
		cleanups.Add(1)
		return event.VerdictResume
	}
	started := make(chan ids.ThreadID, 1)
	deep, err := sys.CreateObject(3, object.Spec{
		Name:     "deep",
		Handlers: map[event.Name]object.Handler{event.Abort: abortHandler},
		Entries: map[string]object.Entry{
			"sleep": func(ctx object.Ctx, _ []any) ([]any, error) {
				started <- ctx.Thread()
				return nil, ctx.Sleep(10 * time.Second)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rootObj, err := sys.CreateObject(2, object.Spec{
		Name:     "rootobj",
		Handlers: map[event.Name]object.Handler{event.Abort: abortHandler},
		Entries: map[string]object.Entry{
			"fwd": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(deep, "sleep")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, rootObj, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	tid := <-started
	waitAsleep(t, sys, tid)

	k1, _ := sys.Kernel(1)
	if err := k1.AbortInvocation(tid, rootObj); err != nil {
		t.Fatalf("AbortInvocation: %v", err)
	}
	_, err = h.WaitTimeout(waitShort)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("Wait err = %v, want ErrAborted", err)
	}
	if cleanups.Load() != 2 {
		t.Fatalf("ABORT notified %d objects, want 2 (both along the chain)", cleanups.Load())
	}
}

func TestOutputFollowsThreadIOChannel(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2})
	remote, err := sys.CreateObject(2, object.Spec{
		Name: "bar",
		Entries: map[string]object.Entry{
			"bar": func(ctx object.Ctx, _ []any) ([]any, error) {
				ctx.Output("from bar")
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := sys.CreateObject(1, object.Spec{
		Name: "foo",
		Entries: map[string]object.Entry{
			"foo": func(ctx object.Ctx, _ []any) ([]any, error) {
				ctx.Attrs().IOChannel = "xterm-7"
				ctx.Output("from foo")
				// Control transfers to bar on another node; output still
				// goes to the same terminal window (§3.1).
				return ctx.Invoke(remote, "bar")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, local, "foo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	lines := sys.IOChannel("xterm-7")
	if len(lines) != 2 || lines[0] != "from foo" || lines[1] != "from bar" {
		t.Fatalf("xterm-7 lines = %v", lines)
	}
}

func TestLocateStrategiesEndToEnd(t *testing.T) {
	strategies := []struct {
		name string
		s    locate.Strategy
		mc   bool
	}{
		{"broadcast", locate.Broadcast{}, false},
		{"path-follow", locate.PathFollow{}, false},
		{"multicast", locate.Multicast{}, true},
		{"hash", locate.NewHashed(), false},
		{"cached+hash", locate.NewCache(locate.NewHashed(), 0), false},
	}
	for _, tc := range strategies {
		t.Run(tc.name, func(t *testing.T) {
			sys := newSystem(t, Config{Nodes: 4, Locator: tc.s, TrackMulticast: tc.mc})
			started := make(chan ids.ThreadID, 1)
			deep, err := sys.CreateObject(4, object.Spec{
				Name: "deep",
				Entries: map[string]object.Entry{
					"sleep": func(ctx object.Ctx, _ []any) ([]any, error) {
						started <- ctx.Thread()
						return nil, ctx.Sleep(10 * time.Second)
					},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			mid, err := sys.CreateObject(3, object.Spec{
				Name: "mid",
				Entries: map[string]object.Entry{
					"fwd": func(ctx object.Ctx, _ []any) ([]any, error) {
						return ctx.Invoke(deep, "sleep")
					},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := sys.Spawn(1, mid, "fwd")
			if err != nil {
				t.Fatal(err)
			}
			tid := <-started
			waitAsleep(t, sys, tid)
			// Raise from node 2, which has never seen the thread.
			if err := sys.Raise(2, event.Terminate, event.ToThread(tid), nil); err != nil {
				t.Fatalf("[%s] Raise: %v", tc.name, err)
			}
			if _, err := h.WaitTimeout(waitShort); !errors.Is(err, ErrTerminated) {
				t.Fatalf("[%s] Wait err = %v, want ErrTerminated", tc.name, err)
			}
		})
	}
}

func TestRaiseToFinishedThread(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, echoSpec("quickie"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	err = sys.Raise(1, event.Terminate, event.ToThread(h.TID()), nil)
	if !errors.Is(err, ErrThreadNotFound) {
		t.Fatalf("Raise to dead thread err = %v, want ErrThreadNotFound", err)
	}
}

func TestDSMAndRPCModeSameSemantics(t *testing.T) {
	// The §2 design goal: the event mechanism works identically whether
	// objects are invoked via RPC or DSM. Run the same scenario (counter
	// increments plus a user event with a chained handler) in both modes
	// and require identical observable results.
	run := func(mode InvokeMode) (int, int64) {
		sys, err := NewSystem(Config{Nodes: 2, Mode: mode, CallTimeout: 3 * time.Second})
		if err != nil {
			panic(err)
		}
		defer sys.Close()
		var handled atomic.Int64
		if err := sys.RegisterProcs(map[string]ProcFunc{
			"h": func(_ object.Ctx, _ event.HandlerRef, _ *event.Block) event.Verdict {
				handled.Add(1)
				return event.VerdictResume
			},
		}); err != nil {
			panic(err)
		}
		counter, err := sys.CreateObject(2, object.Spec{
			Name: "counter",
			Entries: map[string]object.Entry{
				"incr": func(ctx object.Ctx, _ []any) ([]any, error) {
					raw, err := ctx.ReadData(0, 8)
					if err != nil {
						return nil, err
					}
					v := int(raw[0])<<8 | int(raw[1])
					v++
					if err := ctx.WriteData(0, []byte{byte(v >> 8), byte(v)}); err != nil {
						return nil, err
					}
					return []any{v}, nil
				},
			},
		})
		if err != nil {
			panic(err)
		}
		driver, err := sys.CreateObject(1, object.Spec{
			Name: "driver",
			Entries: map[string]object.Entry{
				"run": func(ctx object.Ctx, _ []any) ([]any, error) {
					if err := ctx.RegisterEvent("DING"); err != nil {
						return nil, err
					}
					if err := ctx.AttachHandler(event.HandlerRef{Event: "DING", Kind: event.KindProc, Proc: "h"}); err != nil {
						return nil, err
					}
					var last int
					for i := 0; i < 5; i++ {
						res, err := ctx.Invoke(counter, "incr")
						if err != nil {
							return nil, err
						}
						last, _ = res[0].(int)
						if err := ctx.RaiseAndWait("DING", event.ToThread(ctx.Thread()), nil); err != nil {
							return nil, err
						}
					}
					return []any{last}, nil
				},
			},
		})
		if err != nil {
			panic(err)
		}
		h, err := sys.Spawn(1, driver, "run")
		if err != nil {
			panic(err)
		}
		res, err := h.WaitTimeout(waitShort)
		if err != nil {
			panic(fmt.Sprintf("mode %v: %v", mode, err))
		}
		v, _ := res[0].(int)
		return v, handled.Load()
	}

	rpcCount, rpcHandled := run(ModeRPC)
	dsmCount, dsmHandled := run(ModeDSM)
	if rpcCount != 5 || dsmCount != 5 {
		t.Errorf("counter: rpc=%d dsm=%d, want 5 in both", rpcCount, dsmCount)
	}
	if rpcHandled != 5 || dsmHandled != 5 {
		t.Errorf("handled: rpc=%d dsm=%d, want 5 in both", rpcHandled, dsmHandled)
	}
}

func TestGetSetAcrossModes(t *testing.T) {
	for _, mode := range []InvokeMode{ModeRPC, ModeDSM} {
		t.Run(mode.String(), func(t *testing.T) {
			sys := newSystem(t, Config{Nodes: 2, Mode: mode})
			oid, err := sys.CreateObject(2, object.Spec{
				Name: "kv",
				Entries: map[string]object.Entry{
					"put": func(ctx object.Ctx, args []any) ([]any, error) {
						ctx.Set("k", args[0])
						return nil, nil
					},
					"get": func(ctx object.Ctx, _ []any) ([]any, error) {
						v, ok := ctx.Get("k")
						return []any{v, ok}, nil
					},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			driver, err := sys.CreateObject(1, object.Spec{
				Name: "driver",
				Entries: map[string]object.Entry{
					"run": func(ctx object.Ctx, _ []any) ([]any, error) {
						if _, err := ctx.Invoke(oid, "put", "hello"); err != nil {
							return nil, err
						}
						return ctx.Invoke(oid, "get")
					},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := sys.Spawn(1, driver, "run")
			if err != nil {
				t.Fatal(err)
			}
			res, err := h.WaitTimeout(waitShort)
			if err != nil {
				t.Fatal(err)
			}
			if res[0] != "hello" || res[1] != true {
				t.Fatalf("get = %v", res)
			}
		})
	}
}

func TestSystemCloseReleasesBlockedThreads(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 1})
	oid, err := sys.CreateObject(1, object.Spec{
		Name: "sleepy",
		Entries: map[string]object.Entry{
			"sleep": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(1, oid, "sleep")
	if err != nil {
		t.Fatal(err)
	}
	waitAsleep(t, sys, h.TID())
	go sys.Close()
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Wait after Close err = %v, want ErrShutdown", err)
	}
}
