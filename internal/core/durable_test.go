package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/testutil"
	"repro/internal/wal"
)

// durConfig is the chaos ftConfig plus durability rooted at a tempdir.
func durConfig(t *testing.T, nodes int) Config {
	t.Helper()
	cfg := ftConfig(nodes)
	cfg.Durability = DurabilityConfig{Enabled: true, Dir: t.TempDir()}
	return cfg
}

// kvSpec is an object whose "put" entry writes one KV pair.
func kvSpec(name string) object.Spec {
	return object.Spec{
		Name: name,
		Entries: map[string]object.Entry{
			"put": func(ctx object.Ctx, args []any) ([]any, error) {
				ctx.Set(args[0].(string), args[1])
				return nil, nil
			},
		},
	}
}

// TestDurableRestartRecoversKV drives kernel-level mutations at a durable
// node, crashes it, and checks the restart recovers exactly the state a
// correct replay of the disk yields — object KV, attribute-version lease,
// and the inbound dedup windows the remote invokes populated. A second
// crash/restart round proves the reopened log keeps journaling.
func TestDurableRestartRecoversKV(t *testing.T) {
	sys := newSystem(t, durConfig(t, 2))
	oid, err := sys.CreateObject(1, kvSpec("tally"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		h, err := sys.Spawn(2, oid, "put", fmt.Sprintf("k%d", i), i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WaitTimeout(waitShort); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	crashAndCheck := func(round int) {
		t.Helper()
		if err := sys.CrashNode(1); err != nil {
			t.Fatal(err)
		}
		want, err := sys.DurableSnapshot(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Lines) == 0 {
			t.Fatal("durable snapshot is empty — nothing was logged")
		}
		if err := sys.RestartNode(1); err != nil {
			t.Fatal(err)
		}
		got, err := sys.LastRecovered(1)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatal("LastRecovered is nil after a durable restart")
		}
		if diff := want.Diff(got); len(diff) != 0 {
			t.Fatalf("round %d: recovery diverged from disk:\n%s", round, strings.Join(diff, "\n"))
		}
	}

	crashAndCheck(1)
	obj, err := sys.LookupObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := obj.Get("k3"); !ok || v != 3 {
		t.Fatalf("k3 after recovery = %v,%v, want 3", v, ok)
	}
	// The inbound window that deduped node 2's invokes must have survived.
	rec, _ := sys.LastRecovered(1)
	hasWin := false
	for _, l := range rec.Lines {
		if strings.HasPrefix(l, "win ") {
			hasWin = true
		}
	}
	if !hasWin {
		t.Errorf("no dedup window recovered; lines:\n%s", strings.Join(rec.Lines, "\n"))
	}

	// Round 2: the reopened log must journal post-restart mutations.
	obj.Set("k9", 9)
	crashAndCheck(2)
	if v, ok := obj.Get("k9"); !ok || v != 9 {
		t.Fatalf("k9 after second recovery = %v,%v, want 9", v, ok)
	}
}

// TestDurableColdBootStagesState closes a durable system and boots a fresh
// one over the same datadir: an object recreated under the same name picks
// its durable KV back up through the staging path.
func TestDurableColdBootStagesState(t *testing.T) {
	dir := t.TempDir()
	mk := func() *System {
		return newSystem(t, Config{
			Nodes:       1,
			CallTimeout: 3 * time.Second,
			Durability:  DurabilityConfig{Enabled: true, Dir: dir},
		})
	}
	sys := mk()
	oid, err := sys.CreateObject(1, kvSpec("cfgstore"))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := sys.LookupObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("mode", "durable")
	obj.Set("limit", 7)
	sys.Close()

	sys2 := mk()
	oid2, err := sys2.CreateObject(1, kvSpec("cfgstore"))
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := sys2.LookupObject(oid2)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := obj2.Get("mode"); !ok || v != "durable" {
		t.Errorf("mode = %v,%v, want durable", v, ok)
	}
	if v, ok := obj2.Get("limit"); !ok || v != 7 {
		t.Errorf("limit = %v,%v, want 7", v, ok)
	}
}

// TestDurableInjectedReplayBugsAreVisible proves the recovery checker has
// teeth: with a replay fault injected (the knobs the simulation's
// bug-injection suite uses), the recovered state must differ from what a
// correct replay of the same disk yields.
func TestDurableInjectedReplayBugsAreVisible(t *testing.T) {
	t.Run("droptail", func(t *testing.T) {
		cfg := Config{
			Nodes:       1,
			CallTimeout: 3 * time.Second,
			Durability: DurabilityConfig{
				Enabled: true, Dir: t.TempDir(),
				DropTailOnReplay: 4,
			},
		}
		sys := newSystem(t, cfg)
		oid, err := sys.CreateObject(1, kvSpec("victim"))
		if err != nil {
			t.Fatal(err)
		}
		obj, _ := sys.LookupObject(oid)
		for i := 0; i < 8; i++ {
			obj.Set(fmt.Sprintf("k%d", i), i)
		}
		if err := sys.CrashNode(1); err != nil {
			t.Fatal(err)
		}
		want, err := sys.DurableSnapshot(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RestartNode(1); err != nil {
			t.Fatal(err)
		}
		got, err := sys.LastRecovered(1)
		if err != nil {
			t.Fatal(err)
		}
		if diff := want.Diff(got); len(diff) == 0 {
			t.Fatal("dropped-tail replay recovered identical state — the checker would miss a lost fsync window")
		}
	})

	t.Run("ignoretail", func(t *testing.T) {
		root := t.TempDir()
		cfg := Config{
			Nodes:       1,
			CallTimeout: 3 * time.Second,
			Durability: DurabilityConfig{
				Enabled: true, Dir: root,
				SnapshotEvery:      4,
				IgnoreTailOnReplay: true,
			},
		}
		sys := newSystem(t, cfg)
		oid, err := sys.CreateObject(1, kvSpec("victim"))
		if err != nil {
			t.Fatal(err)
		}
		obj, _ := sys.LookupObject(oid)
		for i := 0; i < 4; i++ {
			obj.Set(fmt.Sprintf("pre%d", i), i)
		}
		// The 4th append triggers an async snapshot; wait for it to land so
		// the post-snapshot writes below are genuinely tail-only.
		nodeDir := filepath.Join(root, "node-1")
		testutil.WaitFor(t, "snapshot to land on disk", func() bool {
			snap, _, err := wal.Scan(nodeDir, wal.ReplayOptions{}, func(uint16, []byte) error { return nil })
			return err == nil && len(snap) > 0
		})
		for i := 0; i < 4; i++ {
			obj.Set(fmt.Sprintf("post%d", i), i)
		}
		if err := sys.CrashNode(1); err != nil {
			t.Fatal(err)
		}
		want, err := sys.DurableSnapshot(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RestartNode(1); err != nil {
			t.Fatal(err)
		}
		got, err := sys.LastRecovered(1)
		if err != nil {
			t.Fatal(err)
		}
		diff := want.Diff(got)
		if len(diff) == 0 {
			t.Fatal("stale-snapshot replay recovered identical state — the checker would miss it")
		}
		// The divergence must be the post-snapshot tail, lost.
		for _, d := range diff {
			if strings.HasPrefix(d, "-obj victim post") {
				return
			}
		}
		t.Fatalf("diff does not show the lost tail:\n%s", strings.Join(diff, "\n"))
	})
}
