package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/locks"
	"repro/internal/metrics"
)

// Crash recovery: reclaiming resources that threads lost with a crashed
// node can no longer clean up themselves, and re-homing the crashed node's
// objects.
//
// §4.2's lock discipline chains an unlock routine onto the holder's
// TERMINATE handler, so a terminated thread releases everything it holds.
// A thread that dies in a node crash never receives TERMINATE — its chain,
// like the rest of its volatile state, is gone. The sweep below closes
// that gap: it rebuilds each dead holder's chained-unlock reference from
// the lock server's own persistent state and runs the identical routine on
// a surrogate, so crash reclaim exercises the same machinery as ordinary
// termination.

// ReclaimOrphanedLocks runs the orphaned-lock sweep from the first alive
// node and reports how many locks were released. The NODE_DOWN reaction
// runs the same sweep automatically when the FT subsystem is enabled; this
// entry point serves harnesses driving recovery by hand.
func (s *System) ReclaimOrphanedLocks() int {
	for i := 1; i <= s.cfg.Nodes; i++ {
		if k := s.kernels[ids.NodeID(i)]; k != nil && !k.crashedLocal() {
			return s.reclaimOrphanedLocks(k)
		}
	}
	return 0
}

// reclaimOrphanedLocks sweeps every lock server on a surviving node for
// locks whose holders no longer exist anywhere, and releases them. Run
// from the NODE_DOWN reaction; safe to run repeatedly (releases are
// idempotent and liveness is re-checked each sweep).
func (s *System) reclaimOrphanedLocks(observer *Kernel) int {
	reclaimed := 0
	for _, k := range s.kernels {
		if k.crashedLocal() {
			continue
		}
		for _, oid := range k.store.Objects() {
			obj, err := k.store.Lookup(oid)
			if err != nil || !strings.HasPrefix(obj.Name(), locks.ServerPrefix) {
				continue
			}
			for lock, holder := range locks.HeldLocks(obj.SnapshotKV()) {
				if s.threadAlive(observer, holder) {
					continue
				}
				if s.runCrashUnlock(observer, oid, lock, holder) {
					reclaimed++
				}
			}
		}
	}
	return reclaimed
}

// threadAlive probes the cluster for the holder with an exhaustive
// broadcast locate. The configured strategy is deliberately not used here:
// a cached or path-following answer can misjudge a thread whose trail ran
// through the crashed node, and a false "dead" would release a lock its
// holder still depends on. Only a definitive not-found anywhere counts as
// dead; any other failure keeps the lock conservatively held.
func (s *System) threadAlive(observer *Kernel, tid ids.ThreadID) bool {
	_, err := (locate.Broadcast{}).Locate(observer, tid)
	if err == nil {
		return true
	}
	return !errors.Is(err, locate.ErrNotFound)
}

// runCrashUnlock executes the §4.2 chained-unlock routine for a dead
// holder, on a surrogate system activation at the observer node — exactly
// what the holder's own TERMINATE chain would have run.
func (s *System) runCrashUnlock(observer *Kernel, server ids.ObjectID, lock string, holder ids.ThreadID) bool {
	f, err := s.proc(locks.UnlockProc)
	if err != nil {
		return false // lock package never registered; nothing to run
	}
	eb := &event.Block{
		Stamp:      observer.gen.NextStamp(),
		Name:       event.Terminate,
		Target:     event.ToThread(holder),
		RaiserNode: observer.node,
		User:       map[string]any{"reason": "node crash"},
		Class:      classControlU8,
	}
	sa := observer.systemActivation(nil, nil)
	f(sa.handlerCtx(), locks.CrashRef(server, lock, holder), eb)
	sa.stopTimers()
	s.reg.Inc(metrics.CtrLockReclaim)
	return true
}

// FindObject resolves an object by name at a node. Recovery gives objects
// fresh identities at their new home (object IDs encode the home node), so
// the name is the stable key survivors re-resolve by.
func (s *System) FindObject(node ids.NodeID, name string) (ids.ObjectID, error) {
	k, err := s.Kernel(node)
	if err != nil {
		return ids.NoObject, err
	}
	for _, oid := range k.store.Objects() {
		if obj, err := k.store.Lookup(oid); err == nil && obj.Name() == name {
			return oid, nil
		}
	}
	return ids.NoObject, fmt.Errorf("core: no object named %q on %v", name, node)
}

// RecoverObjects re-homes every object resident at a crashed node onto a
// surviving one, rebuilding each from its persistent image (segment
// contents + KV snapshot) — the disk survived the crash, per the DO/CT
// persistence model. Objects get fresh identities at the new home (object
// IDs encode their home node); callers re-resolve by name. Returns how
// many objects were recovered.
func (s *System) RecoverObjects(from, to ids.NodeID) (int, error) {
	kf, err := s.Kernel(from)
	if err != nil {
		return 0, err
	}
	if !kf.crashedLocal() {
		return 0, fmt.Errorf("core: recover from %v: node is not crashed", from)
	}
	kt, err := s.Kernel(to)
	if err != nil {
		return 0, err
	}
	if kt.crashedLocal() {
		return 0, fmt.Errorf("core: recover to %v: %w", to, ErrNodeCrashed)
	}

	recovered := 0
	for _, oid := range kf.store.Objects() {
		obj, err := kf.store.Lookup(oid)
		if err != nil {
			continue
		}
		data, err := kf.dsm.Read(obj.Segment(), 0, obj.DataSize())
		if err != nil {
			return recovered, fmt.Errorf("recover %v: read segment: %w", oid, err)
		}
		img := ObjectImage{Name: obj.Name(), Data: data, KV: obj.SnapshotKV()}
		if _, err := s.Activate(to, obj.Spec(), img); err != nil {
			return recovered, fmt.Errorf("recover %v: %w", oid, err)
		}
		kf.store.Remove(oid)
		s.reg.Inc(metrics.CtrObjRecovered)
		recovered++
	}
	return recovered, nil
}
