package core

// Spanning-tree fan-out for group raises (§5.3's "event posted to a
// thread group will be sent to all the members of the group"). The
// unicast path in raiseToGroup makes the raiser's node send one event
// post per member — O(m) messages from one node, which is the group-raise
// scaling wall at 256 nodes. When a group's members span enough distinct
// nodes, the raiser instead resolves member residency once, builds a
// deterministic k-ary relay tree over those nodes (transport.TreeOrder /
// TreeChildren), and ships each child ONE fanoutReq carrying the whole
// assignment; relays deliver their local members and re-batch the request
// down their subtrees. Total physical messages stay ~n-1, but no node
// sends more than K of them, and depth is ⌈log_K n⌉.
//
// Fault tolerance: a relay that finds a child suspected adopts the
// child's subtree on the spot (delivers its members, relays to its
// children), and a reliable-layer dead letter for a fanout message
// triggers the same adoption after the fact — so a relay crashing
// mid-broadcast orphans nobody. Member-level failures reuse the unicast
// path's machinery: synchronous raisers get a release with the error from
// whichever relay failed, zombie members are pruned from the group.
// Duplicated adoption (send succeeded but looked dead) is absorbed by a
// per-node dedup window keyed (Root, ID).

import (
	"errors"
	"sync"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// kindFanout carries one relay step of a group-raise fan-out tree
// (one-way; body *fanoutReq).
const kindFanout = "k.fanout"

// DefaultFanoutK is the relay tree arity when Config.FanoutK is zero.
const DefaultFanoutK = 4

// fanoutMinNodes is the minimum number of distinct member-hosting nodes
// (including the raiser's) before a group raise uses the tree: below it,
// the tree is pure overhead over a couple of unicast posts.
const fanoutMinNodes = 4

// fanoutDedupWindow bounds the per-node window of recently seen fanout
// identities used to drop duplicate deliveries after an adoption race.
const fanoutDedupWindow = 512

// fanoutReq is one relay step of a fan-out tree. Nodes[0] is the root
// (the raiser's node), the rest ascending; Assign is parallel to Nodes.
// Every relay receives the identical request and derives its own role
// from its index — the request must never be mutated after stamping.
type fanoutReq struct {
	// ID and Root identify the fan-out cluster-wide (dedup key).
	ID   uint64
	Root ids.NodeID
	// K is the tree arity the root chose.
	K int
	// GID is the group being raised at, for zombie-member pruning.
	GID ids.GroupID
	// EB is the event block as the root stamped it; relays clone it per
	// member delivery.
	EB *event.Block
	// Nodes is the tree layout; Assign[i] lists the member threads
	// resident at Nodes[i] when the root resolved the group.
	Nodes  []ids.NodeID
	Assign [][]ids.ThreadID
}

// WireSize charges the block, the layout and the assignments.
func (r *fanoutReq) WireSize() int {
	size := 32 + r.EB.WireSize() + 4*len(r.Nodes)
	for _, tids := range r.Assign {
		size += 8 * len(tids)
	}
	return size
}

// fanoutKey identifies one fan-out for the dedup window.
type fanoutKey struct {
	root ids.NodeID
	id   uint64
}

// fanoutDedup is a fixed-size window of recently handled fan-outs.
type fanoutDedup struct {
	mu   sync.Mutex
	seen map[fanoutKey]struct{}
	ring []fanoutKey
	next int
}

// firstTime records key and reports whether it was new.
func (d *fanoutDedup) firstTime(key fanoutKey) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen == nil {
		d.seen = make(map[fanoutKey]struct{}, fanoutDedupWindow)
		d.ring = make([]fanoutKey, fanoutDedupWindow)
	}
	if _, dup := d.seen[key]; dup {
		return false
	}
	delete(d.seen, d.ring[d.next])
	d.ring[d.next] = key
	d.next = (d.next + 1) % fanoutDedupWindow
	d.seen[key] = struct{}{}
	return true
}

// fanoutK resolves the configured tree arity; <= 0 disables via caller.
func (k *Kernel) fanoutK() int {
	fk := k.sys.cfg.FanoutK
	if fk == 0 {
		return DefaultFanoutK
	}
	return fk
}

// raiseToGroupTree attempts the spanning-tree fan-out. It reports handled
// = false when the member set is too concentrated for the tree to pay
// (the caller falls back to unicast posts). Members that fail to resolve
// are handled exactly as on the unicast path.
func (k *Kernel) raiseToGroupTree(eb *event.Block, gid ids.GroupID, members []ids.ThreadID) (bool, error) {
	assign := make(map[ids.NodeID][]ids.ThreadID, len(members))
	var unresolved []ids.ThreadID
	for _, tid := range members {
		node, err := k.sys.cfg.Locator.Locate(k, tid)
		if err != nil {
			unresolved = append(unresolved, tid)
			continue
		}
		assign[node] = append(assign[node], tid)
	}
	distinct := len(assign)
	if _, selfHosts := assign[k.node]; !selfHosts {
		distinct++ // the root participates in the tree regardless
	}
	if distinct < fanoutMinNodes {
		return false, nil
	}

	nodes := make([]ids.NodeID, 0, len(assign))
	for n := range assign {
		nodes = append(nodes, n)
	}
	order := transport.TreeOrder(nodes, k.node)
	req := &fanoutReq{
		ID:     k.reqSeq.Add(1),
		Root:   k.node,
		K:      k.fanoutK(),
		GID:    gid,
		EB:     eb,
		Nodes:  order,
		Assign: make([][]ids.ThreadID, len(order)),
	}
	for i, n := range order {
		req.Assign[i] = assign[n]
	}
	k.fanoutSeen.firstTime(fanoutKey{root: req.Root, id: req.ID})

	// Members the locator could not place at all go through the unicast
	// path's full retry-and-release machinery rather than silently
	// dropping out of the tree.
	for _, tid := range unresolved {
		k.fanoutDeliverOne(req, tid)
	}
	k.fanoutRelay(req, 0)
	k.fanoutDeliverLocal(req, 0)
	return true, nil
}

// serveFanout handles one received relay step: deliver the members
// assigned here, relay to this node's children. Runs on its own
// goroutine (deliveries block on kernel calls).
func (k *Kernel) serveFanout(req *fanoutReq) {
	idx := req.nodeIndex(k.node)
	if idx < 0 {
		return
	}
	if !k.fanoutSeen.firstTime(fanoutKey{root: req.Root, id: req.ID}) {
		k.sys.reg.Inc(metrics.CtrFanoutDup)
		return
	}
	k.fanoutRelay(req, idx)
	k.fanoutDeliverLocal(req, idx)
}

// nodeIndex finds node's slot in the tree layout (-1 if absent).
func (r *fanoutReq) nodeIndex(node ids.NodeID) int {
	for i, n := range r.Nodes {
		if n == node {
			return i
		}
	}
	return -1
}

// fanoutRelay forwards the request to the children of the node at idx,
// adopting any child the detector already suspects.
func (k *Kernel) fanoutRelay(req *fanoutReq, idx int) {
	lo, hi := transport.TreeChildren(len(req.Nodes), req.K, idx)
	for c := lo; c < hi; c++ {
		child := req.Nodes[c]
		if k.det != nil && k.det.Suspected(child) {
			k.adoptFanoutSubtree(req, c)
			continue
		}
		k.sys.reg.Inc(metrics.CtrFanoutRelay)
		if err := k.netSend(child, kindFanout, req); err != nil {
			k.adoptFanoutSubtree(req, c)
		}
	}
}

// adoptFanoutSubtree takes over a dead child's role: its assigned members
// are delivered from here (their posts will fail over to wherever the
// threads now live, or release the raiser with the error), and its
// children are relayed to directly — re-parenting the orphaned subtree.
func (k *Kernel) adoptFanoutSubtree(req *fanoutReq, idx int) {
	k.sys.reg.Inc(metrics.CtrFanoutAdopt)
	k.fanoutRelay(req, idx)
	k.fanoutDeliverLocal(req, idx)
}

// fanoutDeliverLocal posts the members assigned to the node at idx. Note
// idx is the assignment slot, not necessarily this node's slot: during
// adoption a relay delivers on a dead child's behalf, and raiseToThread
// re-locates each member wherever it actually is now.
func (k *Kernel) fanoutDeliverLocal(req *fanoutReq, idx int) {
	for _, tid := range req.Assign[idx] {
		k.fanoutDeliverOne(req, tid)
	}
}

// fanoutDeliverOne posts one member's clone of the event, mirroring the
// unicast group-raise path: a synchronous raiser always hears back (a
// release carries the delivery error if there was one) and dead members
// are pruned from the group.
func (k *Kernel) fanoutDeliverOne(req *fanoutReq, tid ids.ThreadID) {
	m := req.EB.Clone()
	m.Target = event.ToThread(tid)
	if err := k.raiseToThread(m, tid); err != nil {
		if m.Sync {
			k.releaseRaiser(m, 0, false, err)
		}
		if errors.Is(err, ErrThreadNotFound) || errors.Is(err, ErrNodeDown) {
			_ = k.groupJoin(req.GID, tid, true)
		}
	}
}
