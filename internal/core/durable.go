package core

// Durability (DESIGN.md §14): each kernel can journal its durable-visible
// state — object KV mutations, the thread-attribute version high-water
// mark, and the reliable layer's inbound dedup windows — into a
// per-node write-ahead log (internal/wal), with periodic snapshots
// bounding replay. On boot the kernel replays snapshot+tail before the
// fabric starts (so recovery completes before the node can announce
// NODE_UP), and a restart resumes with exactly-once delivery intact: a
// retransmit that crosses the crash lands in a window that remembers it,
// instead of relying on Envelope.Gen to reset the peer's view.
//
// Log discipline: an acked sequence must survive kill -9, or the peer
// stops retransmitting a delivery the restarted node no longer remembers
// — but nothing on the accept path waits for disk. A window accept
// appends asynchronously (reliable.Config.OnAccept) and the ack itself
// is what's gated: piggybacked cumulative acks are clamped to the
// durable frontier (reliable.Config.AckFrontier, non-blocking — it runs
// on the fabric's batch flush path), and standalone/delayed acks block
// on one shared group-commit fsync (reliable.Config.AckGate). Object
// mutations and attribute-version leases ride the same group-commit
// queue asynchronously; the sim's crash-restart-replay checker
// (internal/sim) diffs recovered state against the durable-visible
// state at the crash to prove nothing leaks.

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/reliable"
	"repro/internal/transport/wire"
	"repro/internal/wal"
)

// DurabilityConfig parameterizes per-node WAL + snapshot recovery.
type DurabilityConfig struct {
	// Enabled turns durability on. Off (the default), nothing is logged
	// and recovery behaves exactly as before this subsystem existed.
	Enabled bool
	// Dir is the datadir root; each kernel logs under Dir/node-<N>, so a
	// single-process cluster (and a shared -datadir across doctnode
	// processes) needs only one root.
	Dir string
	// SegmentBytes is the WAL segment rotation threshold
	// (0 = wal default, 1 MiB).
	SegmentBytes int64
	// SnapshotEvery triggers a snapshot after this many appended records
	// (0 = 4096). Snapshots bound replay and let old segments be pruned.
	SnapshotEvery int
	// NoFsync skips fsync on group commit. The deterministic simulation
	// sets it: an in-process "crash" cannot lose page cache, and real
	// fsyncs would drag wall-clock time into the virtual-clock schedule.
	NoFsync bool

	// Injected-fault replay knobs, used only by the simulation's
	// bug-injection tests to prove the crash-restart-replay checker
	// catches real durability regressions. DropTailOnReplay discards the
	// last N tail records during recovery (a lost-fsync window);
	// IgnoreTailOnReplay recovers from the snapshot alone (a stale-
	// snapshot regression).
	DropTailOnReplay   int
	IgnoreTailOnReplay bool
}

func (c *DurabilityConfig) fillDefaults() {
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
}

// WAL record kinds (the uint16 frame kind in internal/wal). Payloads are
// self-describing wire values (wire.EncodeValue) so replay decodes with a
// type switch and unknown future kinds can be skipped.
const (
	walKindObjSet  uint16 = 1
	walKindAttrVer uint16 = 2
	walKindWindow  uint16 = 3
	walKindObjDel  uint16 = 4
)

// attrLeaseStep is how far ahead of the live attribute-version counter
// each logged lease reaches. Versions are pure cache keys, so recovery
// only needs "never reuse one": rounding up to the lease on restart costs
// at most one unused range, and the hot stampVersion path logs one record
// per step instead of one per mint.
const attrLeaseStep = 1024

// walObjSet journals one object KV write (Set or successful CAS),
// identified by object name: names are stable across restarts while
// ObjectIDs are minted per incarnation.
type walObjSet struct {
	Obj string
	Key string
	Val any
}

// walObjDel journals an object deletion.
type walObjDel struct {
	Obj string
}

// walAttrVer journals an attribute-version lease: the counter may mint up
// to Ver without logging again.
type walAttrVer struct {
	Ver uint64
}

// walWindow journals one accepted envelope: peer, its generation, the
// accepted sequence, and the post-advance cumulative frontier.
type walWindow struct {
	Peer ids.NodeID
	Gen  uint64
	Seq  uint64
	Cum  uint64
}

// walObjImage is one object's state inside a snapshot.
type walObjImage struct {
	Name string
	KV   map[string]any
}

// walSnapshot is the periodic full-state image: everything the tail
// records would otherwise have to rebuild from the epoch.
type walSnapshot struct {
	AttrVer uint64
	Objects []walObjImage
	Windows []reliable.PeerWindow
}

// DurableState is a canonical, diffable rendering of a node's
// durable-visible state: one sorted line per fact. The simulation's
// crash-restart-replay checker compares the rendering captured from disk
// at the crash against the rendering of the recovered kernel.
type DurableState struct {
	Lines []string
}

// Diff returns the lines present in exactly one of the two states,
// prefixed with "-" (lost in recovery) or "+" (invented by recovery).
func (s *DurableState) Diff(other *DurableState) []string {
	have := make(map[string]bool, len(s.Lines))
	for _, l := range s.Lines {
		have[l] = true
	}
	theirs := make(map[string]bool, len(other.Lines))
	var out []string
	for _, l := range other.Lines {
		theirs[l] = true
		if !have[l] {
			out = append(out, "+"+l)
		}
	}
	for _, l := range s.Lines {
		if !theirs[l] {
			out = append(out, "-"+l)
		}
	}
	sort.Strings(out)
	return out
}

// recoveredState is the merged result of one replay: snapshot plus tail.
type recoveredState struct {
	attrVer uint64
	objects map[string]map[string]any // by object name
	deleted map[string]bool
	windows []reliable.PeerWindow
}

// durable is one kernel's durability engine.
type durable struct {
	k   *Kernel
	cfg DurabilityConfig
	dir string

	// mu guards log against the close/reopen swap at crash/restart; the
	// append hot path takes it shared.
	mu  sync.RWMutex
	log *wal.Log

	appends atomic.Int64  // records appended since the last snapshot
	leased  atomic.Uint64 // attribute-version lease high-water mark
	snapCh  chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	recMu         sync.Mutex
	staged        *recoveredState // boot-time replay awaiting object creation
	lastRecovered *DurableState   // rendering of the state the last restart recovered

	// frontMu guards the per-peer durable ack frontiers: which cumulative
	// receive frontier is already committed to the log, per sender. The
	// reliable AckFrontier hook reads it on every envelope departure, so
	// it must never wait on I/O — the flusher's progress is observed via
	// wal.Flushed, not by blocking.
	frontMu sync.Mutex
	fronts  map[ids.NodeID]*peerFront
}

// peerFront tracks one sender's durable ack frontier: accepted-but-not-
// yet-flushed window advances in append order, and the highest frontier
// whose append has committed.
type peerFront struct {
	gen     uint64
	durable uint64
	pending []pendingCum
}

// pendingCum is one logged window advance awaiting its group commit.
type pendingCum struct {
	lsn uint64
	cum uint64
}

// seedFronts primes the durable frontiers from recovered windows: state
// read back from disk is durable by construction, so acks may cover it
// immediately after a restart.
func (d *durable) seedFronts(windows []reliable.PeerWindow) {
	d.frontMu.Lock()
	defer d.frontMu.Unlock()
	d.fronts = make(map[ids.NodeID]*peerFront, len(windows))
	for _, w := range windows {
		d.fronts[w.Peer] = &peerFront{gen: w.Gen, durable: w.Cum}
	}
}

// openDurable boots the kernel's durability engine: open the log, replay
// snapshot+tail, stage the result. Called from NewSystem after the kernel
// exists but before the fabric starts, so recovery is complete before any
// peer traffic (or NODE_UP announcement) can arrive.
func (k *Kernel) openDurable(cfg DurabilityConfig) error {
	cfg.fillDefaults()
	d := &durable{
		k:      k,
		cfg:    cfg,
		dir:    filepath.Join(cfg.Dir, fmt.Sprintf("node-%d", k.node)),
		snapCh: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	log, err := wal.Open(d.dir, wal.Options{SegmentBytes: cfg.SegmentBytes, NoFsync: cfg.NoFsync})
	if err != nil {
		return fmt.Errorf("durability %v: %w", k.node, err)
	}
	d.log = log
	rs, _, err := replayState(d.dir, d.replayOpts(), k.node)
	if err != nil {
		log.Close()
		return fmt.Errorf("durability %v: replay: %w", k.node, err)
	}
	d.staged = rs
	d.leased.Store(rs.attrVer)
	k.attrVer.Store(rs.attrVer)
	d.seedFronts(rs.windows)
	k.dur = d
	d.wg.Add(1)
	go d.snapLoop()
	return nil
}

// replayOpts maps the injected-fault knobs onto wal replay options.
func (d *durable) replayOpts() wal.ReplayOptions {
	return wal.ReplayOptions{
		DropTail:   d.cfg.DropTailOnReplay,
		IgnoreTail: d.cfg.IgnoreTailOnReplay,
	}
}

// close flushes and closes the log (crash or shutdown). Appends racing the
// close see wal.ErrClosed and are dropped — they are the mutations that
// happened "after the crash instant".
func (d *durable) close() {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.log != nil {
		_ = d.log.Close()
		d.log = nil
	}
	d.mu.Unlock()
}

// stop ends the snapshot goroutine (system shutdown).
func (d *durable) stop() {
	if d == nil {
		return
	}
	select {
	case <-d.done:
	default:
		close(d.done)
	}
	d.wg.Wait()
	d.close()
}

// append journals one record and returns its LSN (0 if the record could
// not be journaled). sync parks until the record is fsynced
// (group-committed with concurrent appends); without it the record rides
// the flusher queue. ErrClosed (node crashed / shut down) is swallowed:
// the mutation simply missed durability, which is exactly what the
// crash-restart checker verifies against the disk image.
func (d *durable) append(kind uint16, v any, sync bool) uint64 {
	payload, err := wire.EncodeValue(v)
	if err != nil {
		return 0 // unencodable value: not representable durably
	}
	d.mu.RLock()
	log := d.log
	if log == nil {
		d.mu.RUnlock()
		return 0
	}
	var lsn uint64
	if sync && !d.cfg.NoFsync {
		lsn, err = log.AppendSync(kind, payload)
	} else {
		lsn, err = log.Append(kind, payload)
	}
	d.mu.RUnlock()
	if err != nil {
		return 0
	}
	if n := d.appends.Add(1); n%int64(d.cfg.SnapshotEvery) == 0 {
		select {
		case d.snapCh <- struct{}{}:
		default:
		}
	}
	return lsn
}

// Hook entry points, wired into the object store, the attribute stamper
// and the reliable endpoint.

// objectHook returns the mutation observer for an object, capturing its
// stable name. Installed at createObject time.
func (d *durable) objectHook(name string) func(object.Mutation) {
	return func(m object.Mutation) {
		if m.Delete {
			d.append(walKindObjDel, walObjDel{Obj: name}, false)
			return
		}
		d.append(walKindObjSet, walObjSet{Obj: name, Key: m.Key, Val: m.Val}, false)
	}
}

// maybeLease extends the attribute-version lease when the live counter
// approaches it. v is the raw counter value just minted.
func (d *durable) maybeLease(v uint64) {
	for {
		cur := d.leased.Load()
		if v < cur {
			return
		}
		next := v + attrLeaseStep
		if d.leased.CompareAndSwap(cur, next) {
			d.append(walKindAttrVer, walAttrVer{Ver: next}, false)
			return
		}
	}
}

// onAccept is the reliable OnAccept hook: log the window advance and
// queue it on the peer's durable frontier. The append is asynchronous —
// the handler runs while the flusher commits — and the two ack hooks
// below keep "acked ⇒ durable" (the property whose loss breaks
// exactly-once) intact while the fsync is amortized across every accept
// in flight.
func (d *durable) onAccept(from ids.NodeID, gen, seq, cum uint64) {
	lsn := d.append(walKindWindow, walWindow{Peer: from, Gen: gen, Seq: seq, Cum: cum}, false)
	if lsn == 0 {
		return // crashed/closing: nothing became durable, frontier stays
	}
	d.frontMu.Lock()
	f := d.fronts[from]
	if f == nil {
		f = &peerFront{}
		d.fronts[from] = f
	}
	if gen > f.gen {
		// The peer restarted: its sequence space began again, so the old
		// incarnation's frontier means nothing for the new one.
		f.gen, f.durable, f.pending = gen, 0, f.pending[:0]
	}
	f.pending = append(f.pending, pendingCum{lsn: lsn, cum: cum})
	d.frontMu.Unlock()
}

// ackFrontier is the reliable AckFrontier hook: the highest cumulative
// frontier for peer whose window append has already committed. Called on
// every envelope departure — it must not block, so it polls the
// flusher's progress instead of waiting for it.
func (d *durable) ackFrontier(peer ids.NodeID, cum uint64) uint64 {
	d.mu.RLock()
	log := d.log
	d.mu.RUnlock()
	if log == nil {
		return cum // crashed/closing: the endpoint is going away with us
	}
	flushed := log.Flushed()
	d.frontMu.Lock()
	defer d.frontMu.Unlock()
	f := d.fronts[peer]
	if f == nil {
		return 0 // nothing from this peer is durable yet
	}
	i := 0
	for ; i < len(f.pending) && f.pending[i].lsn <= flushed; i++ {
		if f.pending[i].cum > f.durable {
			f.durable = f.pending[i].cum
		}
	}
	f.pending = f.pending[i:]
	return f.durable
}

// ackGate is the reliable AckGate hook: block until everything appended
// so far — in particular every window advance onAccept logged — is on
// disk. One group commit covers all pending accepts at once.
func (d *durable) ackGate() {
	d.mu.RLock()
	log := d.log
	d.mu.RUnlock()
	if log != nil {
		_ = log.Sync()
	}
}

// applyStagedObject installs recovered KV state into a freshly created
// object, by name. Returns true if staged state existed.
func (d *durable) applyStagedObject(obj *object.Object) bool {
	d.recMu.Lock()
	defer d.recMu.Unlock()
	if d.staged == nil {
		return false
	}
	kv, ok := d.staged.objects[obj.Name()]
	if !ok {
		return false
	}
	delete(d.staged.objects, obj.Name())
	obj.RestoreKV(kv)
	return true
}

// installWindows restores staged reliable windows into the endpoint.
// Called from initFT once the endpoint exists, before the fabric starts.
func (d *durable) installWindows(rel *reliable.Endpoint) {
	d.recMu.Lock()
	ws := d.staged.windows
	d.recMu.Unlock()
	rel.RestoreWindows(ws)
}

// snapLoop writes snapshots off the hot path: rendering object state
// takes the objects' read locks, which must not happen on the mutation
// hook's goroutine (it holds the write lock).
func (d *durable) snapLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case <-d.snapCh:
			d.takeSnapshot()
		}
	}
}

// takeSnapshot renders the kernel's durable-visible state and hands it to
// the log. The covered LSN is sampled before rendering: records appended
// while rendering runs re-apply idempotently on top of the snapshot.
func (d *durable) takeSnapshot() {
	d.mu.RLock()
	log := d.log
	d.mu.RUnlock()
	if log == nil {
		return
	}
	covered := log.LSN()
	snap := walSnapshot{AttrVer: d.leased.Load()}
	for _, oid := range d.k.store.Objects() {
		obj, err := d.k.store.Lookup(oid)
		if err != nil {
			continue
		}
		snap.Objects = append(snap.Objects, walObjImage{Name: obj.Name(), KV: obj.SnapshotKV()})
	}
	if d.k.rel != nil {
		snap.Windows = d.k.rel.SnapshotWindows()
	}
	payload, err := wire.EncodeValue(snap)
	if err != nil {
		return
	}
	d.mu.RLock()
	if d.log == log {
		_ = log.Snapshot(payload, covered)
	}
	d.mu.RUnlock()
}

// reopen reopens the log after a simulated crash and replays it,
// resetting the kernel's durable-covered state to exactly what the disk
// yields — the in-memory state that survived the in-process "crash" is
// discarded first, so recovery bugs are visible instead of being masked
// by surviving memory. Returns the rendering of the recovered state.
func (d *durable) reopen() (*DurableState, error) {
	d.mu.Lock()
	if d.log != nil {
		_ = d.log.Close()
	}
	log, err := wal.Open(d.dir, wal.Options{SegmentBytes: d.cfg.SegmentBytes, NoFsync: d.cfg.NoFsync})
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	d.log = log
	d.mu.Unlock()
	rs, _, err := replayState(d.dir, d.replayOpts(), d.k.node)
	if err != nil {
		return nil, err
	}

	// Reset live state to the replayed image.
	d.leased.Store(rs.attrVer)
	if cur := d.k.attrVer.Load(); rs.attrVer > cur {
		d.k.attrVer.Store(rs.attrVer)
	}
	for _, oid := range d.k.store.Objects() {
		obj, err := d.k.store.Lookup(oid)
		if err != nil {
			continue
		}
		obj.RestoreKV(rs.objects[obj.Name()])
		delete(rs.objects, obj.Name())
	}
	if d.k.rel != nil {
		d.k.rel.ClearInboundWindows()
		d.k.rel.RestoreWindows(rs.windows)
	}
	d.seedFronts(rs.windows)
	d.recMu.Lock()
	// Whatever remains unmatched stays staged for objects recreated later.
	d.staged = rs
	rec := renderLive(d.k)
	d.lastRecovered = rec
	d.recMu.Unlock()
	return rec, nil
}

// replayState scans a node's log directory and merges snapshot + tail into
// one recoveredState. Window merging reuses the reliable package's replay
// logic through a detached endpoint so recovery and live acceptance can
// never drift apart.
func replayState(dir string, o wal.ReplayOptions, self ids.NodeID) (*recoveredState, wal.Stats, error) {
	rs := &recoveredState{
		objects: make(map[string]map[string]any),
		deleted: make(map[string]bool),
	}
	merge := reliable.New(reliable.Config{}, self,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) {}, nil)
	defer merge.Close()

	// Collect the tail first: wal.Scan hands back only records past the
	// snapshot's covered LSN, and they must apply ON TOP of the snapshot
	// image, which is decoded after the scan returns it.
	type tailRec struct {
		kind    uint16
		payload []byte
	}
	var tail []tailRec
	snapRaw, st, err := wal.Scan(dir, o, func(kind uint16, payload []byte) error {
		tail = append(tail, tailRec{kind, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		return nil, st, err
	}

	if len(snapRaw) > 0 {
		v, err := wire.DecodeValue(snapRaw)
		if err != nil {
			return nil, st, fmt.Errorf("snapshot decode: %w", err)
		}
		snap, ok := v.(walSnapshot)
		if !ok {
			return nil, st, fmt.Errorf("snapshot holds %T", v)
		}
		rs.attrVer = snap.AttrVer
		for _, img := range snap.Objects {
			kv := make(map[string]any, len(img.KV))
			for k, val := range img.KV {
				kv[k] = val
			}
			rs.objects[img.Name] = kv
		}
		merge.RestoreWindows(snap.Windows)
	}

	for _, rec := range tail {
		v, err := wire.DecodeValue(rec.payload)
		if err != nil {
			return nil, st, fmt.Errorf("record decode: %w", err)
		}
		switch r := v.(type) {
		case walObjSet:
			if rs.deleted[r.Obj] {
				continue // straggler write logged before the delete landed
			}
			kv := rs.objects[r.Obj]
			if kv == nil {
				kv = make(map[string]any)
				rs.objects[r.Obj] = kv
			}
			kv[r.Key] = r.Val
		case walObjDel:
			delete(rs.objects, r.Obj)
			rs.deleted[r.Obj] = true
		case walAttrVer:
			if r.Ver > rs.attrVer {
				rs.attrVer = r.Ver
			}
		case walWindow:
			merge.RestoreAccept(r.Peer, r.Gen, r.Seq, r.Cum)
		default:
			// Unknown kinds from a future format version are skipped.
		}
	}
	rs.windows = merge.SnapshotWindows()
	return rs, st, nil
}

// renderRecovered renders a recoveredState into canonical sorted lines.
func renderRecovered(rs *recoveredState) *DurableState {
	var lines []string
	for name, kv := range rs.objects {
		for k, v := range kv {
			lines = append(lines, fmt.Sprintf("obj %s %s=%v", name, k, v))
		}
	}
	if rs.attrVer > 0 {
		lines = append(lines, fmt.Sprintf("attrver %d", rs.attrVer))
	}
	lines = append(lines, renderWindows(rs.windows)...)
	sort.Strings(lines)
	return &DurableState{Lines: lines}
}

// renderLive renders the kernel's live durable-visible state in the same
// canonical form, so recovered-vs-disk diffs are line-exact.
func renderLive(k *Kernel) *DurableState {
	var lines []string
	for _, oid := range k.store.Objects() {
		obj, err := k.store.Lookup(oid)
		if err != nil {
			continue
		}
		for key, v := range obj.SnapshotKV() {
			lines = append(lines, fmt.Sprintf("obj %s %s=%v", obj.Name(), key, v))
		}
	}
	if k.dur != nil {
		if ver := k.dur.leased.Load(); ver > 0 {
			lines = append(lines, fmt.Sprintf("attrver %d", ver))
		}
	}
	if k.rel != nil {
		lines = append(lines, renderWindows(k.rel.SnapshotWindows())...)
	}
	sort.Strings(lines)
	return &DurableState{Lines: lines}
}

// renderWindows renders inbound dedup windows. The outbound cursor
// (NextSeq) is excluded: it advances with every live send and is restored
// only on cold boots, so it is not part of the crash-equivalence contract.
func renderWindows(ws []reliable.PeerWindow) []string {
	var lines []string
	for _, w := range ws {
		if w.Gen == 0 && w.Cum == 0 && w.Max == 0 && len(w.Seen) == 0 {
			continue // contact without any accepted inbound traffic
		}
		seen := make([]string, len(w.Seen))
		for i, s := range w.Seen {
			seen[i] = fmt.Sprint(s)
		}
		lines = append(lines, fmt.Sprintf("win %d gen=%d cum=%d max=%d seen=%s",
			w.Peer, w.Gen, w.Cum, w.Max, strings.Join(seen, ",")))
	}
	return lines
}

// DurableSnapshot scans node's on-disk log — with no fault injection,
// whatever the config's replay knobs say — and renders the durable-visible
// state a correct recovery would produce. The simulation captures it at
// the crash instant (after the log closed) as the baseline the restarted
// node must reproduce.
func (s *System) DurableSnapshot(node ids.NodeID) (*DurableState, error) {
	k, err := s.Kernel(node)
	if err != nil {
		return nil, err
	}
	if k.dur == nil {
		return nil, fmt.Errorf("core: durability not enabled on %v", node)
	}
	rs, _, err := replayState(k.dur.dir, wal.ReplayOptions{}, node)
	if err != nil {
		return nil, err
	}
	return renderRecovered(rs), nil
}

// LastRecovered returns the rendering of the state node's most recent
// restart actually recovered (nil if it never restarted with durability
// on).
func (s *System) LastRecovered(node ids.NodeID) (*DurableState, error) {
	k, err := s.Kernel(node)
	if err != nil {
		return nil, err
	}
	if k.dur == nil {
		return nil, fmt.Errorf("core: durability not enabled on %v", node)
	}
	k.dur.recMu.Lock()
	defer k.dur.recMu.Unlock()
	return k.dur.lastRecovered, nil
}

// DurabilityEnabled reports whether the durability subsystem is on.
func (s *System) DurabilityEnabled() bool { return s.cfg.Durability.Enabled }
