package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsm"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/thread"
)

// frame is one object the activation has entered by local invocation. A
// remote invocation instead creates a new activation at the target node.
type frame struct {
	obj   *object.Object
	entry string
}

// activation is one node's execution of a logical thread: a goroutine
// executing entries in resident objects. A thread is a chain of activations
// linked by remote invocations; the deepest activation is where events are
// delivered (§7.1).
type activation struct {
	k     *Kernel
	tid   ids.ThreadID
	attrs *thread.Attributes
	// baseDepth is the invocation depth at which this activation started.
	baseDepth int
	// handle is set on root activations only.
	handle *Handle
	// system marks surrogate/master activations that never register TCBs.
	system bool
	// pc is the simulated program counter: interruption points passed.
	pc atomic.Uint64

	mu   sync.Mutex
	cond *sync.Cond // signals delivering -> false
	// frames is the local invocation stack (top = current object).
	frames []frame
	status thread.Status
	// blockedOn names the kernel operation the activation is blocked in.
	blockedOn string
	// pending are events queued for delivery at the next interruption
	// point (or by a surrogate if the activation is blocked).
	pending []*event.Block
	// departed marks a completed non-root activation whose logical thread
	// lives on at the caller's node: enqueue refuses new events (the
	// raiser re-locates) and anything already pending is rerouted.
	departed bool
	// delivering is set while a goroutine (the activation itself at a
	// checkpoint, or a surrogate) is walking handler chains.
	delivering bool
	// childNode/childObj record the in-progress remote invocation, for
	// TCB forwarding and the abort chase (§6.3).
	childNode ids.NodeID
	childObj  ids.ObjectID
	// timerStop stops the current generation of attribute timers.
	timerStop chan struct{}
	// remoteBase is, per peer node, the attribute snapshot this activation
	// last exchanged with that peer — the diff base for delta attribute
	// propagation. Entries are immutable once stored.
	remoteBase map[ids.NodeID]*thread.Attributes

	stopMu     sync.Mutex
	stopReason error
	stopCh     chan struct{}
	stopOnce   sync.Once
}

func newActivation(k *Kernel, attrs *thread.Attributes, baseDepth int) *activation {
	a := &activation{
		k:         k,
		tid:       attrs.Thread,
		attrs:     attrs,
		baseDepth: baseDepth,
		status:    thread.StatusRunning,
		stopCh:    make(chan struct{}),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// stop marks the thread's activation as killed (terminated or aborted) and
// wakes any blocked kernel operation. Idempotent; the first reason wins.
func (a *activation) stop(reason error) {
	a.stopOnce.Do(func() {
		a.stopMu.Lock()
		a.stopReason = reason
		a.stopMu.Unlock()
		close(a.stopCh)
	})
}

// stopped returns the stop reason, or nil while the activation lives.
func (a *activation) stopped() error {
	select {
	case <-a.stopCh:
		a.stopMu.Lock()
		defer a.stopMu.Unlock()
		return a.stopReason
	default:
		return nil
	}
}

// finish tears the activation down after its entry returned.
func (a *activation) finish() {
	a.stopTimers()
	// Drain any events that raced with completion so synchronous raisers
	// are released with a thread-death notice (§7.2).
	a.stop(ErrTerminated) // no-op if already stopped; from here the thread is gone
	a.k.drainPending(a)
	a.mu.Lock()
	a.status = thread.StatusTerminated
	a.mu.Unlock()
}

// depart retires a non-root activation whose entry returned normally: the
// logical thread is NOT dead — it continues in the caller's activation at
// the invoking node — so events that raced into this activation's queue
// must not be death-noticed the way finish/drainPending would. depart
// marks the activation unable to accept new posts (enqueue refuses, the
// raiser re-locates) and hands back whatever was pending so the kernel
// can reroute it to the thread's current location (exactly-once: these
// blocks were queued but never delivered here).
func (a *activation) depart() []*event.Block {
	a.stopTimers()
	a.mu.Lock()
	a.departed = true
	a.status = thread.StatusTerminated
	pending := a.pending
	a.pending = nil
	a.mu.Unlock()
	return pending
}

// childNodeLocked reads the forwarding target under the activation lock.
func (a *activation) childNodeLocked() ids.NodeID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.childNode
}

// snapshotState captures the "registers" of §4.1 for an event block.
func (a *activation) snapshotState() *event.ThreadState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &event.ThreadState{
		Thread:  a.tid,
		Node:    a.k.node,
		PC:      a.pc.Load(),
		Blocked: a.blockedOn,
		Depth:   a.baseDepth + len(a.frames),
	}
	if n := len(a.frames); n > 0 {
		st.Object = a.frames[n-1].obj.ID()
		st.Entry = a.frames[n-1].entry
	}
	return st
}

// topFrame returns the current object frame.
func (a *activation) topFrame() (frame, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.frames) == 0 {
		return frame{}, false
	}
	return a.frames[len(a.frames)-1], true
}

// enterBlocked marks the activation blocked in a kernel operation. If
// events are already pending, a surrogate is dispatched to handle them
// while the activation waits (§6.1's surrogate threads).
func (a *activation) enterBlocked(what string) {
	a.mu.Lock()
	a.status = thread.StatusBlocked
	a.blockedOn = what
	needSurrogate := len(a.pending) > 0 && !a.delivering
	a.mu.Unlock()
	if needSurrogate {
		a.k.spawnSurrogate(a)
	}
}

// exitBlocked returns the activation to running and processes pending
// events inline (a kernel-operation boundary is an interruption point).
// It returns the stop reason if the thread was terminated or aborted.
func (a *activation) exitBlocked() error {
	a.mu.Lock()
	a.status = thread.StatusRunning
	a.blockedOn = ""
	a.mu.Unlock()
	a.k.processPending(a, false)
	return a.stopped()
}

// startTimers recreates the thread's attribute timers at this node (§6.2:
// "When the thread visits another node, the thread attribute list is
// examined and the event registation information is recreated").
func (a *activation) startTimers() {
	a.mu.Lock()
	specs := make([]thread.TimerSpec, len(a.attrs.Timers))
	copy(specs, a.attrs.Timers)
	if len(specs) == 0 {
		a.mu.Unlock()
		return
	}
	if a.timerStop != nil {
		a.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	a.timerStop = stop
	a.mu.Unlock()

	for _, spec := range specs {
		a.k.wg.Add(1)
		go func() {
			defer a.k.wg.Done()
			ticker := a.k.sys.clk.NewTicker(spec.Period)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					a.k.postTimerLocal(a, spec.Event)
				case <-stop:
					return
				case <-a.stopCh:
					return
				case <-a.k.sys.closed:
					return
				}
			}
		}()
	}
}

// stopTimers cancels this node's timer registrations (the thread is leaving
// or finishing; the next node recreates them from the attributes).
func (a *activation) stopTimers() {
	a.mu.Lock()
	stop := a.timerStop
	a.timerStop = nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// ctx returns the kernel interface bound to this activation.
func (a *activation) ctx() *Ctx { return &Ctx{a: a} }

// handlerCtx returns a context for handler code running on behalf of this
// activation (re-entrant kernel calls skip checkpointing).
func (a *activation) handlerCtx() *Ctx { return &Ctx{a: a, inHandler: true} }

// Ctx implements object.Ctx for one activation. Handler-scoped contexts set
// inHandler, which suppresses checkpoint processing (the thread is already
// suspended; the handler must not recursively deliver).
type Ctx struct {
	a         *activation
	inHandler bool
}

var _ object.Ctx = (*Ctx)(nil)

// Thread implements object.Ctx.
func (c *Ctx) Thread() ids.ThreadID { return c.a.tid }

// Node implements object.Ctx.
func (c *Ctx) Node() ids.NodeID { return c.a.k.node }

// Object implements object.Ctx.
func (c *Ctx) Object() ids.ObjectID {
	if f, ok := c.a.topFrame(); ok {
		return f.obj.ID()
	}
	return ids.NoObject
}

// Attrs implements object.Ctx. The returned attributes are live: mutations
// persist and travel with the thread. Entries run them only from the
// activation's own goroutine (or its surrogate while it is parked), so
// access is serialized.
func (c *Ctx) Attrs() *thread.Attributes { return c.a.attrs }

// Invoke implements object.Ctx.
func (c *Ctx) Invoke(obj ids.ObjectID, entry string, args ...any) ([]any, error) {
	return c.a.k.invoke(c.a, obj, entry, args, c.inHandler)
}

// InvokeAsync implements object.Ctx.
func (c *Ctx) InvokeAsync(obj ids.ObjectID, entry string, args ...any) (ids.ThreadID, error) {
	return c.a.k.invokeAsync(c.a, obj, entry, args)
}

// InvokeGuarded implements object.Ctx: handlers scoped to one invocation.
func (c *Ctx) InvokeGuarded(obj ids.ObjectID, entry string, handlers []event.HandlerRef, args ...any) ([]any, error) {
	attached := 0
	for _, h := range handlers {
		if err := c.AttachHandler(h); err != nil {
			// Unwind the partial attachment before reporting.
			for j := 0; j < attached; j++ {
				_ = c.DetachHandler(handlers[j].Event)
			}
			return nil, err
		}
		attached++
	}
	res, err := c.Invoke(obj, entry, args...)
	// Detach in reverse attachment order; the chain is LIFO so each
	// Remove takes this invocation's handler, not an outer one.
	c.a.mu.Lock()
	for i := len(handlers) - 1; i >= 0; i-- {
		c.a.attrs.Handlers.Remove(handlers[i].Event)
	}
	c.a.mu.Unlock()
	return res, err
}

// SetAlarm implements object.Ctx: a one-shot ALARM chased to wherever the
// thread is when it fires.
func (c *Ctx) SetAlarm(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("core: alarm delay must be positive, got %v", d)
	}
	k := c.a.k
	tid := c.a.tid
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		timer := k.sys.clk.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-k.sys.closed:
			return
		}
		eb := &event.Block{
			Stamp:      k.gen.NextStamp(),
			Name:       event.Alarm,
			Target:     event.ToThread(tid),
			RaiserNode: k.node,
			Class:      classSystemU8,
		}
		k.sys.ctrs.eventRaised.Add(1)
		// Best effort: a thread that finished before its alarm simply
		// misses it.
		_ = k.raiseToThread(eb, tid)
	}()
	return nil
}

// AttachHandler implements object.Ctx (§5.2's attach_handler system call).
func (c *Ctx) AttachHandler(ref event.HandlerRef) error {
	if ref.Kind == event.KindEntry && !ref.Object.IsValid() {
		// Default the handler's object to the object the thread is
		// executing in, matching the paper's `attach_handler(INTERRUPT,
		// my_interrupt_handler)` where the handler is a method of the
		// current object.
		ref.Object = c.Object()
	}
	if err := ref.Validate(); err != nil {
		return err
	}
	ref.AttachedIn = c.Object()
	c.a.mu.Lock()
	defer c.a.mu.Unlock()
	c.a.attrs.Handlers.Push(ref)
	return nil
}

// DetachHandler implements object.Ctx.
func (c *Ctx) DetachHandler(name event.Name) error {
	c.a.mu.Lock()
	defer c.a.mu.Unlock()
	if !c.a.attrs.Handlers.Remove(name) {
		return fmt.Errorf("core: no handler attached for %s", name)
	}
	return nil
}

// RegisterEvent implements object.Ctx.
func (c *Ctx) RegisterEvent(name event.Name) error {
	return c.a.k.sys.events.Register(name, c.a.tid)
}

// Raise implements object.Ctx.
func (c *Ctx) Raise(name event.Name, target event.Target, user map[string]any) error {
	return c.a.k.raise(c.a, name, target, user)
}

// RaiseAndWait implements object.Ctx.
func (c *Ctx) RaiseAndWait(name event.Name, target event.Target, user map[string]any) error {
	if c.inHandler && target.Kind == event.TargetThread && target.Thread == c.a.tid {
		// The thread is suspended with this very handler running; a
		// synchronous self-raise could never be delivered. Reject instead
		// of deadlocking.
		return fmt.Errorf("core: raise_and_wait at own thread from its handler would never be delivered (%s)", name)
	}
	_, err := c.a.k.raiseAndWait(c.a, name, target, user)
	return err
}

// Abort implements object.Ctx: the abort-chase kernel support of §6.3.
func (c *Ctx) Abort(tid ids.ThreadID, obj ids.ObjectID) error {
	return c.a.k.AbortInvocation(tid, obj)
}

// CreateGroup implements object.Ctx.
func (c *Ctx) CreateGroup() (ids.GroupID, error) {
	k := c.a.k
	gid := k.gen.NextGroup()
	k.groups.Create(gid)
	if err := k.groups.Join(gid, c.a.tid); err != nil {
		return ids.NoGroup, err
	}
	c.a.mu.Lock()
	c.a.attrs.Group = gid
	c.a.mu.Unlock()
	return gid, nil
}

// JoinGroup implements object.Ctx.
func (c *Ctx) JoinGroup(gid ids.GroupID) error {
	k := c.a.k
	if err := k.groupJoin(gid, c.a.tid, false); err != nil {
		return err
	}
	c.a.mu.Lock()
	c.a.attrs.Group = gid
	c.a.mu.Unlock()
	return nil
}

// SetTimer implements object.Ctx: the periodic timer registration of §6.2.
func (c *Ctx) SetTimer(name event.Name, period time.Duration) error {
	if period <= 0 {
		return fmt.Errorf("core: timer period must be positive, got %v", period)
	}
	c.a.mu.Lock()
	c.a.attrs.AddTimer(thread.TimerSpec{Event: name, Period: period})
	c.a.mu.Unlock()
	c.a.stopTimers()
	c.a.startTimers()
	return nil
}

// ClearTimer implements object.Ctx.
func (c *Ctx) ClearTimer(name event.Name) error {
	c.a.mu.Lock()
	removed := c.a.attrs.RemoveTimer(name)
	c.a.mu.Unlock()
	if !removed {
		return fmt.Errorf("core: no timer registered for %s", name)
	}
	c.a.stopTimers()
	c.a.startTimers()
	return nil
}

// Checkpoint implements object.Ctx: the explicit interruption point.
func (c *Ctx) Checkpoint() error {
	c.a.pc.Add(1)
	if !c.inHandler {
		c.a.k.processPending(c.a, false)
	}
	return c.a.stopped()
}

// Sleep implements object.Ctx: an interruptible kernel wait.
func (c *Ctx) Sleep(d time.Duration) error {
	if c.inHandler {
		// Handlers run with the thread suspended; they sleep plainly.
		select {
		case <-c.a.k.sys.clk.After(d):
			return nil
		case <-c.a.k.sys.closed:
			return ErrShutdown
		}
	}
	c.a.enterBlocked("sleep")
	timer := c.a.k.sys.clk.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-c.a.stopCh:
	case <-c.a.k.sys.closed:
		return ErrShutdown
	}
	return c.a.exitBlocked()
}

// currentObj resolves the current frame's object, which every state access
// needs.
func (c *Ctx) currentObj() (*object.Object, error) {
	f, ok := c.a.topFrame()
	if !ok {
		return nil, errors.New("core: no current object (root activation outside any invocation)")
	}
	return f.obj, nil
}

// Get implements object.Ctx. In DSM mode the volatile state of a
// remote-homed object is reached through its home node, preserving
// one-copy semantics for non-segment state.
func (c *Ctx) Get(key string) (any, bool) {
	obj, err := c.currentObj()
	if err != nil {
		return nil, false
	}
	k := c.a.k
	if obj.ID().Home() == k.node {
		return obj.Get(key)
	}
	body, err := k.call(obj.ID().Home(), kindKVGet, kvReq{Object: obj.ID(), Key: key})
	if err != nil {
		return nil, false
	}
	rep, ok := body.(kvReply)
	if !ok {
		return nil, false
	}
	return rep.Val, rep.Found
}

// Set implements object.Ctx.
func (c *Ctx) Set(key string, val any) {
	obj, err := c.currentObj()
	if err != nil {
		return
	}
	k := c.a.k
	if obj.ID().Home() == k.node {
		obj.Set(key, val)
		return
	}
	// Best effort mirrors local Set's lack of an error path; a lost write
	// here means the system is shutting down.
	_, _ = k.call(obj.ID().Home(), kindKVSet, kvReq{Object: obj.ID(), Key: key, Val: val})
}

// CompareAndSwap implements object.Ctx. Like Get/Set, remote-homed objects
// are reached through their home node so the swap stays atomic.
func (c *Ctx) CompareAndSwap(key string, old, new any) bool {
	obj, err := c.currentObj()
	if err != nil {
		return false
	}
	k := c.a.k
	if obj.ID().Home() == k.node {
		return obj.CompareAndSwap(key, old, new)
	}
	body, err := k.call(obj.ID().Home(), kindKVCas, kvReq{Object: obj.ID(), Key: key, Val: new, Old: old})
	if err != nil {
		return false
	}
	swapped, ok := body.(bool)
	return ok && swapped
}

// Metrics exposes the system counter registry to packages layered on the
// kernel (locks, monitor, pager); it is not part of object.Ctx.
func (c *Ctx) Metrics() *metrics.Registry { return c.a.k.sys.reg }

// ReadData implements object.Ctx.
func (c *Ctx) ReadData(off, n int) ([]byte, error) {
	obj, err := c.currentObj()
	if err != nil {
		return nil, err
	}
	return c.SegRead(obj.Segment(), off, n)
}

// WriteData implements object.Ctx.
func (c *Ctx) WriteData(off int, data []byte) error {
	obj, err := c.currentObj()
	if err != nil {
		return err
	}
	return c.SegWrite(obj.Segment(), off, data)
}

// maxUserFaultRetries bounds VM_FAULT retry loops so a pager that never
// installs pages fails the access instead of spinning.
const maxUserFaultRetries = 8

// SegRead implements object.Ctx. Faults on user-paged segments raise
// VM_FAULT to this thread's handler chain (§6.4) and retry after a pager
// installs the page.
func (c *Ctx) SegRead(seg ids.SegmentID, off, n int) ([]byte, error) {
	k := c.a.k
	for attempt := 0; ; attempt++ {
		data, err := k.dsm.Read(seg, off, n)
		var fe *dsm.FaultError
		if err == nil || !errors.As(err, &fe) || attempt >= maxUserFaultRetries {
			return data, err
		}
		if herr := k.raiseVMFault(c.a, fe); herr != nil {
			return nil, fmt.Errorf("vm fault on %v page %d: %w", fe.Seg, fe.Page, herr)
		}
	}
}

// SegWrite implements object.Ctx.
func (c *Ctx) SegWrite(seg ids.SegmentID, off int, data []byte) error {
	k := c.a.k
	for attempt := 0; ; attempt++ {
		err := k.dsm.Write(seg, off, data)
		var fe *dsm.FaultError
		if err == nil || !errors.As(err, &fe) || attempt >= maxUserFaultRetries {
			return err
		}
		if herr := k.raiseVMFault(c.a, fe); herr != nil {
			return fmt.Errorf("vm fault on %v page %d: %w", fe.Seg, fe.Page, herr)
		}
	}
}

// InstallPage implements object.Ctx.
func (c *Ctx) InstallPage(node ids.NodeID, seg ids.SegmentID, page int, data []byte) error {
	k := c.a.k
	if node == k.node {
		return k.dsm.InstallPage(seg, page, data)
	}
	_, err := k.call(node, kindPageInstall, pageOpReq{Seg: seg, Page: page, Data: data})
	return err
}

// DropPage implements object.Ctx.
func (c *Ctx) DropPage(node ids.NodeID, seg ids.SegmentID, page int) error {
	k := c.a.k
	if node == k.node {
		return k.dsm.DropPage(seg, page)
	}
	_, err := k.call(node, kindPageDrop, pageOpReq{Seg: seg, Page: page})
	return err
}

// FetchPage implements object.Ctx.
func (c *Ctx) FetchPage(node ids.NodeID, seg ids.SegmentID, page int) ([]byte, bool, error) {
	k := c.a.k
	if node == k.node {
		data, found := k.dsm.CachedPage(seg, page)
		return data, found, nil
	}
	body, err := k.call(node, kindPageFetch, pageOpReq{Seg: seg, Page: page})
	if err != nil {
		return nil, false, err
	}
	rep, ok := body.(pageFetchReply)
	if !ok {
		return nil, false, fmt.Errorf("core: page.fetch reply %T", body)
	}
	return rep.Data, rep.Found, nil
}

// Output implements object.Ctx: writes travel to the thread's I/O channel
// regardless of which object or node the thread is executing in (§3.1).
func (c *Ctx) Output(line string) {
	c.a.mu.Lock()
	ch := c.a.attrs.IOChannel
	c.a.mu.Unlock()
	c.a.k.sys.writeIO(ch, line)
}
