// Package core is the DO/CT kernel — the paper's primary contribution. It
// glues the substrates together into a running distributed environment:
//
//   - a System boots one Kernel per simulated node on a netsim fabric;
//   - the invocation engine moves logical threads across objects and nodes
//     (RPC mode) or moves object pages to the computation (DSM mode), with
//     thread attributes travelling on every hop (§2, §3.1);
//   - the event engine implements raise/raise_and_wait with the full §5.3
//     addressing matrix, thread-based handler chains walked LIFO with
//     propagation (§4.1–4.2), object-based handlers with master-thread or
//     spawn-per-event policies (§4.3, §7), buddy handlers, per-thread-memory
//     procedure handlers run in the current object's context, surrogate
//     threads for blocked targets, default actions, and the distributed
//     termination (ABORT/QUIT) protocol of §6.3;
//   - thread location is pluggable through internal/locate (§7.1).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsm"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Kernel-level errors surfaced to entries and callers.
var (
	// ErrTerminated is returned by kernel operations after the executing
	// thread has been terminated by an event handler or default action.
	ErrTerminated = errors.New("core: thread terminated")
	// ErrAborted is returned by kernel operations after the invocation in
	// progress was aborted (object ABORT, §6.3).
	ErrAborted = errors.New("core: invocation aborted")
	// ErrThreadNotFound means the event's target thread could not be
	// located (it finished or never existed).
	ErrThreadNotFound = errors.New("core: target thread not found")
	// ErrUnhandledSync is returned by RaiseAndWait when no handler
	// consumed the event and the default action applied instead.
	ErrUnhandledSync = errors.New("core: synchronous event not consumed by any handler")
	// ErrUnknownProc means a per-thread handler referenced a code name
	// missing from the handler-code registry.
	ErrUnknownProc = errors.New("core: unknown handler code name")
	// ErrNotRegistered is returned when raising an event name that was
	// never registered with the operating system.
	ErrNotRegistered = errors.New("core: event name not registered")
	// ErrShutdown is returned for operations on a closed System.
	ErrShutdown = errors.New("core: system shut down")
	// ErrRaiseTimeout is returned by RaiseAndWait when no release arrived
	// within the configured raise timeout — the raiser is unblocked instead
	// of hanging forever on a severed link or a crashed recipient.
	ErrRaiseTimeout = errors.New("core: raise_and_wait timed out")
	// ErrNodeDown is wrapped into errors for operations aimed at a node the
	// failure detector suspects is crashed (or whose messages proved
	// undeliverable).
	ErrNodeDown = errors.New("core: node down")
	// ErrNodeCrashed is the stop reason of activations killed by a local
	// node crash, and the error for operations on a crashed kernel.
	ErrNodeCrashed = errors.New("core: node crashed")
	// ErrBackpressure is transport.ErrBackpressure re-exported: with QoS
	// enabled (Config.QoS) and no reliable layer, Raise/RaiseAndWait
	// return it when admission control rejects the event at the target
	// node's dispatch shard. Callers back off and retry; with FT enabled
	// the reliable layer retries transparently instead.
	ErrBackpressure = transport.ErrBackpressure
)

// QoSConfig re-exports the transport QoS knobs (class weights, admission
// depth, DWRR quantum, app→class mapping) under the kernel's config.
type QoSConfig = transport.QoSConfig

// InvokeMode selects how invocations cross object boundaries (§2's design
// goal: the event mechanism "works identically regardless of whether the
// objects are invoked using RPC or DSM").
type InvokeMode int

const (
	// ModeRPC ships the computation: a new activation of the same logical
	// thread starts at the object's home node.
	ModeRPC InvokeMode = iota + 1
	// ModeDSM ships the data: the entry runs at the calling thread's node
	// and the object's pages are faulted over by the DSM layer.
	ModeDSM
)

// String returns the mode name.
func (m InvokeMode) String() string {
	switch m {
	case ModeRPC:
		return "rpc"
	case ModeDSM:
		return "dsm"
	default:
		return fmt.Sprintf("InvokeMode(%d)", int(m))
	}
}

// ProcFunc is position-independent per-thread handler code: the simulation
// of compiled procedures mapped into per-thread memory at a well-known
// address (§7.2). Procs are registered system-wide by name; HandlerRefs in
// thread attributes carry the name.
type ProcFunc = object.Handler

// Config parameterizes a System.
type Config struct {
	// Nodes is the cluster size (>= 1).
	Nodes int
	// Latency and Jitter configure the fabric (zero = immediate handoff).
	Latency time.Duration
	Jitter  time.Duration
	// PageSize is the DSM page granularity (0 = dsm.DefaultPageSize).
	PageSize int
	// Mode selects the invocation mode (0 = ModeRPC).
	Mode InvokeMode
	// Locator selects the thread-location strategy (nil = PathFollow).
	Locator locate.Strategy
	// TrackMulticast maintains a per-thread fabric multicast group as
	// threads move, enabling the Multicast location strategy. It costs
	// group maintenance on every hop.
	TrackMulticast bool
	// FanoutK is the arity of the spanning-tree fan-out used for group
	// raises whose members span many nodes (deliver.go/fanout.go): the
	// raiser ships one relay message per child instead of one event post
	// per member, and relays re-batch down their subtrees. Zero picks
	// DefaultFanoutK; negative disables the tree and every group raise
	// unicasts to each member as before.
	FanoutK int
	// CallTimeout bounds every kernel RPC (0 = 30s). It exists so broken
	// protocols fail tests instead of hanging them.
	CallTimeout time.Duration
	// RaiseTimeout bounds how long raise_and_wait blocks for its releases
	// (0 = CallTimeout). When it expires the raiser gets ErrRaiseTimeout —
	// a raise across a severed link or into a crashed node is bounded even
	// without the failure-detector subsystem.
	RaiseTimeout time.Duration
	// FT configures the crash-fault-tolerance subsystem (failure detector,
	// reliable transport, recovery reactions). The zero value disables it;
	// fault injection (CrashNode, SeverLink) still works without it, the
	// system just doesn't detect or recover.
	FT FTConfig
	// Durability configures per-node WAL + snapshot recovery (durable.go,
	// DESIGN.md §14). The zero value disables it: object state, attribute
	// versions and dedup windows stay volatile, exactly as before.
	Durability DurabilityConfig
	// QoS configures multi-tenant dispatch isolation (DESIGN.md §15):
	// per-class DWRR weighted fair queueing, bounded admission and
	// overload shedding at every node's dispatch shards. The zero value
	// disables it — FIFO dispatch, exactly as before. Event blocks are
	// stamped with a class at raise time (QoS.Apps maps the raising
	// thread's App attribute to a tenant class; kernel-originated events
	// and protocol RPCs ride ClassSystem, termination/abort control rides
	// ClassControl) and the class travels with every hop, retransmit and
	// fan-out relay. Forced off under a *vclock.Virtual clock unless
	// QoS.AllowVirtual is set, so simulation digests are unaffected.
	QoS QoSConfig
	// Wire configures the wire-efficiency fast path (delta attribute
	// propagation, cumulative/piggybacked acks, heartbeat suppression).
	// The zero value enables every optimization; the negative flags exist
	// to reproduce the legacy 1993-style full-shipping protocol for
	// measurement (E11).
	Wire WireConfig
	// TraceCapacity retains the last N kernel trace records (raises,
	// deliveries, handler runs, hops); zero disables tracing.
	TraceCapacity int
	// Metrics receives all accounting. Nil creates a private registry.
	Metrics *metrics.Registry
	// Seed seeds fabric randomness.
	Seed int64
	// DispatchWorkers is the per-node dispatch parallelism handed to the
	// fabric (netsim.Config.DispatchWorkers): messages from different
	// senders are handled concurrently while per-sender FIFO order is kept.
	// Zero picks GOMAXPROCS for real-clock runs; under a *vclock.Virtual
	// clock the fabric always runs one dispatcher per node so deterministic
	// simulation digests are unaffected. Negative forces a single
	// dispatcher.
	DispatchWorkers int
	// Clock is the time source for every kernel timer — call timeouts,
	// raise timeouts, attribute timers, alarms, sleeps — and is handed down
	// to the fabric, the failure detector and the reliable transport
	// (nil = the machine clock). Passing a *vclock.Virtual runs the whole
	// cluster in virtual time for deterministic simulation (internal/sim).
	Clock vclock.Clock
	// Transport supplies the cluster interconnect. Nil (the default) boots
	// an in-process netsim fabric from the latency/jitter/batching fields
	// above — the classic single-process simulation. A non-nil Transport
	// (e.g. tcptransport for a multi-process cluster) is used as-is: the
	// System attaches its local kernels, starts it, and closes it on
	// Close; the latency/seed/batch knobs above do not apply.
	Transport transport.Transport
	// LocalNodes restricts which of the cluster's Nodes this System hosts
	// kernels for. Empty (the default) hosts all of them — the
	// single-process case. A multi-process cluster runs one System per
	// process, each hosting a disjoint subset (usually one node), all over
	// a shared Transport; operations addressed to non-local nodes return
	// errors, and cross-node protocol traffic flows through the transport
	// as always.
	LocalNodes []ids.NodeID
}

func (c *Config) fillDefaults() error {
	if c.Nodes < 1 {
		return fmt.Errorf("core: config needs at least 1 node, got %d", c.Nodes)
	}
	if c.Mode == 0 {
		c.Mode = ModeRPC
	}
	if c.Locator == nil {
		c.Locator = locate.PathFollow{}
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.RaiseTimeout == 0 {
		c.RaiseTimeout = c.CallTimeout
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.DispatchWorkers == 0 {
		c.DispatchWorkers = runtime.GOMAXPROCS(0)
	} else if c.DispatchWorkers < 0 {
		c.DispatchWorkers = 1
	}
	if len(c.LocalNodes) == 0 {
		c.LocalNodes = make([]ids.NodeID, c.Nodes)
		for i := range c.LocalNodes {
			c.LocalNodes[i] = ids.NodeID(i + 1)
		}
	}
	for _, n := range c.LocalNodes {
		if int(n) < 1 || int(n) > c.Nodes {
			return fmt.Errorf("core: local node %v outside cluster 1..%d", n, c.Nodes)
		}
	}
	return nil
}

// System is a booted DO/CT cluster. Create with NewSystem, stop with Close.
type System struct {
	cfg    Config
	clk    vclock.Clock
	fabric transport.Transport
	reg    *metrics.Registry
	ctrs   hotCounters

	kernels map[ids.NodeID]*Kernel

	// events is the cluster-wide user-event name registry. The paper
	// registers names "with the operating system"; we model the registry
	// as logically replicated and charge no messages for lookups.
	events *event.Registry

	procMu sync.RWMutex
	procs  map[string]ProcFunc

	ioMu sync.Mutex
	io   map[string][]string // I/O channel name -> lines written

	handleMu sync.Mutex
	handles  map[ids.ThreadID]*Handle

	// tr is the kernel trace ring (nil when disabled; trace.Buffer's
	// methods are nil-safe).
	tr *trace.Buffer

	// Crash-fault-tolerance state (fault.go): the cluster-level dedup of
	// per-detector membership transitions and the membership watchers.
	ftMu     sync.Mutex
	ftDown   map[ids.NodeID]bool
	watchers []ids.ObjectID

	// dirStrategy is the hash placement strategy unwrapped from
	// cfg.Locator at boot, nil for every other locator. Kernels consult
	// it to route residency-directory publications (directory.go).
	dirStrategy *locate.Hashed

	closed    chan struct{}
	closeOnce sync.Once
}

// hotCounters are pre-resolved handles for the counters the event engine
// charges on every raise, delivery, and handler run — the per-event cost is
// an atomic add instead of a name→counter map lookup under a read lock.
type hotCounters struct {
	eventRaised    *atomic.Int64
	eventDelivered *atomic.Int64
	eventDefault   *atomic.Int64
	handlerThread  *atomic.Int64
	handlerObject  *atomic.Int64
	handlerBuddy   *atomic.Int64
	handlerOwnCtx  *atomic.Int64
	surrogateRuns  *atomic.Int64
	chainLinks     *atomic.Int64
	threadSpawn    *atomic.Int64
	threadCreated  *atomic.Int64
	masterServed   *atomic.Int64
}

func newHotCounters(r *metrics.Registry) hotCounters {
	return hotCounters{
		eventRaised:    r.Counter(metrics.CtrEventRaised),
		eventDelivered: r.Counter(metrics.CtrEventDelivered),
		eventDefault:   r.Counter(metrics.CtrEventDefault),
		handlerThread:  r.Counter(metrics.CtrHandlerRunThread),
		handlerObject:  r.Counter(metrics.CtrHandlerRunObject),
		handlerBuddy:   r.Counter(metrics.CtrHandlerRunBuddy),
		handlerOwnCtx:  r.Counter(metrics.CtrHandlerRunOwnCtx),
		surrogateRuns:  r.Counter(metrics.CtrSurrogateRuns),
		chainLinks:     r.Counter(metrics.CtrChainLinksWalked),
		threadSpawn:    r.Counter(metrics.CtrThreadSpawn),
		threadCreated:  r.Counter(metrics.CtrThreadCreated),
		masterServed:   r.Counter(metrics.CtrMasterServed),
	}
}

// NewSystem boots a cluster.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		clk:     vclock.Or(cfg.Clock),
		reg:     cfg.Metrics,
		kernels: make(map[ids.NodeID]*Kernel, cfg.Nodes),
		events:  event.NewRegistry(),
		procs:   make(map[string]ProcFunc),
		io:      make(map[string][]string),
		handles: make(map[ids.ThreadID]*Handle),
		ftDown:  make(map[ids.NodeID]bool),
		closed:  make(chan struct{}),
	}
	if cfg.TraceCapacity > 0 {
		s.tr = trace.New(cfg.TraceCapacity)
	}
	s.dirStrategy, _ = locate.DirectoryStrategy(cfg.Locator)
	s.ctrs = newHotCounters(s.reg)
	if cfg.Transport != nil {
		s.fabric = cfg.Transport
	} else {
		s.fabric = netsim.New(netsim.Config{
			Latency:         cfg.Latency,
			Jitter:          cfg.Jitter,
			Seed:            cfg.Seed,
			Clock:           cfg.Clock,
			Metrics:         s.reg,
			DispatchWorkers: cfg.DispatchWorkers,
			QoS:             cfg.QoS,
			Batch: netsim.BatchConfig{
				Enabled:       !cfg.Wire.NoBatching,
				MaxMsgs:       cfg.Wire.BatchMaxMsgs,
				MaxBytes:      cfg.Wire.BatchMaxBytes,
				FlushInterval: cfg.Wire.FlushInterval,
			},
		})
	}
	for _, node := range cfg.LocalNodes {
		k := newKernel(s, node)
		s.kernels[node] = k
		if err := s.fabric.Attach(node, k.onMessage); err != nil {
			return nil, fmt.Errorf("boot %v: %w", node, err)
		}
	}
	if cfg.Durability.Enabled {
		// Replay before the fabric starts: recovery must complete before
		// any peer traffic — or a NODE_UP announcement — can observe the
		// node, so a recovered kernel is indistinguishable from one that
		// merely paused.
		for _, node := range cfg.LocalNodes {
			if err := s.kernels[node].openDurable(cfg.Durability); err != nil {
				return nil, err
			}
		}
	}
	if cfg.FT.Enabled {
		for _, k := range s.kernels {
			k.initFT()
		}
	}
	s.fabric.Start()
	for _, k := range s.kernels {
		if k.det != nil {
			k.det.Start()
		}
	}
	return s, nil
}

// Close shuts the cluster down: timers stop, the fabric closes, kernel
// RPCs in flight fail with ErrShutdown. Activations blocked in kernel
// operations are released.
func (s *System) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		// Detectors first: their heartbeats and sweeps must stop raising
		// membership events into a cluster that is going away.
		for _, k := range s.kernels {
			if k.det != nil {
				k.det.Stop()
			}
		}
		for _, k := range s.kernels {
			k.shutdown()
		}
		// Drain the transport: when Close returns, no kernel handler is
		// mid-flight and none will run again. The deadline bounds a wedged
		// remote transport; netsim always drains promptly.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.fabric.Close(ctx)
	})
}

// Transport returns the interconnect this cluster runs on.
func (s *System) Transport() transport.Transport { return s.fabric }

// Kernel returns the kernel of node n.
func (s *System) Kernel(n ids.NodeID) (*Kernel, error) {
	k, ok := s.kernels[n]
	if !ok {
		return nil, fmt.Errorf("core: no kernel for %v", n)
	}
	return k, nil
}

// Nodes returns the cluster's node identifiers in ascending order.
func (s *System) Nodes() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(s.kernels))
	for i := 1; i <= s.cfg.Nodes; i++ {
		out = append(out, ids.NodeID(i))
	}
	return out
}

// Metrics returns the system-wide counter registry.
func (s *System) Metrics() *metrics.Registry { return s.reg }

// Mode returns the configured invocation mode.
func (s *System) Mode() InvokeMode { return s.cfg.Mode }

// Events returns the cluster-wide user-event registry.
func (s *System) Events() *event.Registry { return s.events }

// Trace returns the kernel trace buffer (nil when tracing is disabled; all
// trace.Buffer methods are nil-safe).
func (s *System) Trace() *trace.Buffer { return s.tr }

// RegisterProc installs position-independent handler code under name.
// Registration is system-wide, mirroring code that is loadable on every
// node.
func (s *System) RegisterProc(name string, f ProcFunc) error {
	if name == "" || f == nil {
		return errors.New("core: RegisterProc needs a name and code")
	}
	s.procMu.Lock()
	defer s.procMu.Unlock()
	if _, dup := s.procs[name]; dup {
		return fmt.Errorf("core: proc %q already registered", name)
	}
	s.procs[name] = f
	return nil
}

// RegisterProcs installs a batch of handler code registrations.
func (s *System) RegisterProcs(procs map[string]ProcFunc) error {
	for name, f := range procs {
		if err := s.RegisterProc(name, f); err != nil {
			return err
		}
	}
	return nil
}

// proc resolves registered handler code.
func (s *System) proc(name string) (ProcFunc, error) {
	s.procMu.RLock()
	defer s.procMu.RUnlock()
	f, ok := s.procs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProc, name)
	}
	return f, nil
}

// writeIO appends a line to a named I/O channel.
func (s *System) writeIO(channel, line string) {
	if channel == "" {
		channel = "stdout"
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.io[channel] = append(s.io[channel], line)
}

// IOChannel returns the lines written to a named I/O channel so far.
func (s *System) IOChannel(channel string) []string {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	out := make([]string, len(s.io[channel]))
	copy(out, s.io[channel])
	return out
}

// IODump renders every channel, for traces.
func (s *System) IODump() string {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var b strings.Builder
	for ch, lines := range s.io {
		for _, l := range lines {
			fmt.Fprintf(&b, "[%s] %s\n", ch, l)
		}
	}
	return b.String()
}

// CreateObject creates an object homed at node from spec and returns its
// identity. The object's persistent segment is created in the node's DSM
// manager.
func (s *System) CreateObject(node ids.NodeID, spec object.Spec) (ids.ObjectID, error) {
	k, err := s.Kernel(node)
	if err != nil {
		return ids.NoObject, err
	}
	return k.createObject(spec)
}

// LookupObject finds the object struct wherever it is homed. Object code is
// loadable on every node (as Clouds object segments were), which is what
// lets DSM-mode invocation run entries at the caller's node.
func (s *System) LookupObject(id ids.ObjectID) (*object.Object, error) {
	k, err := s.Kernel(id.Home())
	if err != nil {
		return nil, fmt.Errorf("core: object %v homed on unknown node: %w", id, err)
	}
	return k.store.Lookup(id)
}

// Spawn starts a fresh root thread at node invoking entry on obj. It
// returns a handle the caller can wait on.
func (s *System) Spawn(node ids.NodeID, obj ids.ObjectID, entry string, args ...any) (*Handle, error) {
	k, err := s.Kernel(node)
	if err != nil {
		return nil, err
	}
	return k.spawnRoot("", obj, entry, args)
}

// SpawnApp is Spawn with an application label, used when unrelated
// applications share objects (§3.1).
func (s *System) SpawnApp(node ids.NodeID, app string, obj ids.ObjectID, entry string, args ...any) (*Handle, error) {
	k, err := s.Kernel(node)
	if err != nil {
		return nil, err
	}
	return k.spawnRoot(app, obj, entry, args)
}

// Raise raises an event from outside any thread (e.g. the user typing ^C at
// a terminal: §6.3). The raise originates at node.
func (s *System) Raise(node ids.NodeID, name event.Name, target event.Target, user map[string]any) error {
	k, err := s.Kernel(node)
	if err != nil {
		return err
	}
	return k.raise(nil, name, target, user)
}

// RaiseAndWait is the synchronous variant of Raise: it blocks until a
// handler resumes the (virtual) raiser and returns the handler's verdict.
func (s *System) RaiseAndWait(node ids.NodeID, name event.Name, target event.Target, user map[string]any) (event.Verdict, error) {
	k, err := s.Kernel(node)
	if err != nil {
		return 0, err
	}
	return k.raiseAndWait(nil, name, target, user)
}

// registerHandle records a spawned thread's handle for later inspection.
func (s *System) registerHandle(h *Handle) {
	s.handleMu.Lock()
	defer s.handleMu.Unlock()
	s.handles[h.tid] = h
}

// HandleOf returns the handle of any spawned thread (root or asynchronous),
// or nil if unknown. Experiments use it to detect orphans.
func (s *System) HandleOf(tid ids.ThreadID) *Handle {
	s.handleMu.Lock()
	defer s.handleMu.Unlock()
	return s.handles[tid]
}

// ThreadState returns node's snapshot of tid's deepest local activation:
// which object/entry it is in and which kernel operation, if any, it is
// blocked in (Blocked == "" means running). ok is false when the node
// hosts no live activation for the thread. Tests poll it to wait for a
// thread to reach a known state instead of sleeping a guessed duration.
func (s *System) ThreadState(node ids.NodeID, tid ids.ThreadID) (*event.ThreadState, bool) {
	k, err := s.Kernel(node)
	if err != nil {
		return nil, false
	}
	a, ok := k.topAct(tid)
	if !ok {
		return nil, false
	}
	return a.snapshotState(), true
}

// Handles returns every spawned thread's handle.
func (s *System) Handles() []*Handle {
	s.handleMu.Lock()
	defer s.handleMu.Unlock()
	out := make([]*Handle, 0, len(s.handles))
	for _, h := range s.handles {
		out = append(out, h)
	}
	return out
}

// Handle tracks a spawned root thread.
type Handle struct {
	tid  ids.ThreadID
	done chan struct{}
	mu   sync.Mutex
	res  []any
	err  error
}

func newHandle(tid ids.ThreadID) *Handle {
	return &Handle{tid: tid, done: make(chan struct{})}
}

// TID returns the thread's identity.
func (h *Handle) TID() ids.ThreadID { return h.tid }

// Wait blocks until the thread's root activation finishes and returns its
// results.
func (h *Handle) Wait() ([]any, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.err
}

// WaitTimeout is Wait with a deadline, for tests.
func (h *Handle) WaitTimeout(d time.Duration) ([]any, error) {
	select {
	case <-h.done:
		return h.Wait()
	case <-time.After(d):
		return nil, fmt.Errorf("core: thread %v still running after %v", h.tid, d)
	}
}

// Done returns a channel closed when the thread finishes.
func (h *Handle) Done() <-chan struct{} { return h.done }

func (h *Handle) finish(res []any, err error) {
	h.mu.Lock()
	h.res = res
	h.err = err
	h.mu.Unlock()
	close(h.done)
}

// dsmTransport adapts a kernel to dsm.Transport.
type dsmTransport struct{ k *Kernel }

var _ dsm.Transport = dsmTransport{}

func (t dsmTransport) Call(to ids.NodeID, kind string, req any) (any, error) {
	if to == t.k.node {
		return t.k.dsm.HandleRequest(kind, req)
	}
	return t.k.call(to, kind, req)
}
