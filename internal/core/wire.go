package core

import (
	"errors"
	"time"

	"repro/internal/attrcache"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/thread"
)

// WireConfig tunes the wire-efficiency fast path. The zero value turns
// every optimization on; each flag is phrased negatively so legacy
// behaviour (full attribute snapshots, eager standalone acks, all-pairs
// heartbeats) is an explicit opt-in for measurement, not the default.
type WireConfig struct {
	// FullAttrs ships complete attribute snapshots on every invocation hop
	// (the paper's literal §3.1 protocol) instead of version-keyed deltas.
	FullAttrs bool
	// AttrCacheSize bounds the per-node snapshot cache (0 =
	// attrcache.DefaultSize). Irrelevant under FullAttrs.
	AttrCacheSize int
	// StandaloneAcks makes the reliable layer ack every data message
	// immediately with a dedicated message instead of piggybacking
	// cumulative acks on reverse traffic.
	StandaloneAcks bool
	// AckDelay is the piggyback flush window: how long a cumulative ack may
	// wait for reverse traffic to ride on before a standalone ack is sent
	// (0 = 1ms — comfortably under the reliable layer's retry base).
	AckDelay time.Duration
	// EagerHeartbeats restores all-pairs heartbeating: every node beats
	// every peer each period regardless of traffic. Off, nodes monitor one
	// ring successor, any received message counts as liveness, and beats
	// are suppressed on links that just carried data.
	EagerHeartbeats bool
	// NoBatching disables per-link send coalescing (DESIGN.md §11),
	// restoring one fabric message per envelope/delta/ack. On (batching
	// enabled, the default), messages to the same peer coalesce into batch
	// frames flushed on a size threshold or the flush window; an idle
	// link's first message still ships immediately. Batching is always off
	// under a *vclock.Virtual clock so simulation digests are unchanged.
	NoBatching bool
	// BatchMaxMsgs flushes a pending frame at this record count
	// (0 = netsim.DefaultBatchMaxMsgs).
	BatchMaxMsgs int
	// BatchMaxBytes flushes a pending frame at this encoded size
	// (0 = netsim.DefaultBatchMaxBytes).
	BatchMaxBytes int
	// FlushInterval bounds how long a message may wait in a pending frame
	// (0 = netsim.DefaultFlushInterval). It is the worst-case latency
	// batching adds to any hop; keep it under the reliable layer's retry
	// base or every coalesced envelope will look like a loss.
	FlushInterval time.Duration
}

// errAttrResync is the callee's signal that it no longer holds the base
// snapshot a delta was diffed against (cache eviction, restart). It is
// returned before any part of the invocation executes, so the caller's
// single full-snapshot retry is idempotent.
var errAttrResync = errors.New("core: attribute base version unknown, resync required")

// stampVersion allocates a globally unique attribute snapshot version:
// node-salted so two kernels can never mint the same stamp, monotonic so a
// kernel never reuses one. Versions are pure cache keys — nothing orders
// or compares them beyond equality.
func (k *Kernel) stampVersion() uint64 {
	v := k.attrVer.Add(1)
	if k.dur != nil {
		// Durable nodes log version leases, not individual mints: the
		// counter only has to never move backward across a restart.
		k.dur.maybeLease(v)
	}
	return v<<8 | uint64(k.node)&0xff
}

// attrKey builds the snapshot cache key for a thread's version.
func attrKey(tid ids.ThreadID, ver uint64) attrcache.Key {
	return attrcache.Key{Thread: tid, Version: ver}
}

// retainRemoteBase records the snapshot this activation last exchanged with
// a peer node, so the next hop to that peer can ship a delta against it.
func (a *activation) retainRemoteBase(peer ids.NodeID, snap *thread.Attributes) {
	a.mu.Lock()
	if a.remoteBase == nil {
		a.remoteBase = make(map[ids.NodeID]*thread.Attributes)
	}
	a.remoteBase[peer] = snap
	a.mu.Unlock()
}

// sendAttrs decides the attribute encoding for one outbound invocation to
// home: a delta against the last exchanged snapshot when one exists, a
// freshly stamped full snapshot otherwise. It returns the request fields
// plus the stamped snapshot the caller must retain on success.
func (k *Kernel) sendAttrs(a *activation, home ids.NodeID, snapshot *thread.Attributes) (full *thread.Attributes, delta *thread.Delta) {
	if k.sys.cfg.Wire.FullAttrs {
		k.sys.reg.Inc(metrics.CtrAttrFullSent)
		return snapshot, nil
	}
	a.mu.Lock()
	base := a.remoteBase[home]
	a.mu.Unlock()
	if base == nil {
		snapshot.Version = k.stampVersion()
		k.sys.reg.Inc(metrics.CtrAttrFullSent)
		return snapshot, nil
	}
	d := thread.DiffAttrs(base, snapshot)
	if d.Unchanged() {
		snapshot.Version = d.Base
	} else {
		d.Version = k.stampVersion()
		snapshot.Version = d.Version
	}
	k.sys.reg.Inc(metrics.CtrAttrDeltaSent)
	return nil, d
}
