package core

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/locks"
	"repro/internal/object"
)

// TestAcquireGrantReplyLostReleasedOnTerminate injects the nastiest lock
// failure short of a crash: the server records the grant, but the reply
// never reaches the caller. The caller sees Acquire fail and its thread
// terminates believing it holds nothing — yet the lock is taken in its
// name, and no future membership transition will ever probe it. The §4.2
// chained unlock must cover this window: Acquire attaches the handler
// before asking the server, so the terminating thread releases the
// invisible grant.
func TestAcquireGrantReplyLostReleasedOnTerminate(t *testing.T) {
	sys := newSystem(t, Config{Nodes: 2, CallTimeout: 400 * time.Millisecond})
	if err := locks.Register(sys); err != nil {
		t.Fatal(err)
	}
	server, err := sys.CreateObject(1, locks.ServerSpec("leak"))
	if err != nil {
		t.Fatal(err)
	}

	// Requests flow 2 → 1; every reply 1 → 2 is lost.
	sys.CutLink(1, 2)

	grabber, err := sys.CreateObject(2, object.Spec{
		Name: "grabber",
		Entries: map[string]object.Entry{
			"grab": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, locks.Acquire(ctx, server, "L")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(2, grabber, "grab")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(3 * time.Second); err == nil {
		t.Fatal("acquire succeeded despite the severed reply link")
	}

	// The grant was applied server-side before the reply was dropped; the
	// failed caller's TERMINATE chain must have released it (the release
	// request still flows 2 → 1). Probe the server from node 1, where
	// replies work.
	sys.HealLink(1, 2)
	prober, err := sys.CreateObject(1, object.Spec{
		Name: "prober",
		Entries: map[string]object.Entry{
			"holder": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(server, locks.EntryHolder, "L")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := sys.Spawn(1, prober, "holder")
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.WaitTimeout(time.Second)
		if err == nil && len(res) == 1 {
			if holder, ok := res[0].(uint64); ok && holder == 0 {
				return // released — no orphaned grant
			}
			if tid, ok := res[0].(ids.ThreadID); ok && tid == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("lock still held by %v: grant leaked by the lost reply", res[0])
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("probing holder: res=%v err=%v", res, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
