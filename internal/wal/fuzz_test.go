package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRoundTrip drives the full write path with fuzzer-chosen record
// contents and requires a lossless replay: every appended (kind, payload)
// pair comes back, in order, after a close-and-scan — across segment
// rotations, snapshots and reopens.
func FuzzWALRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"), uint16(1), 64, false)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xFF}, uint16(0xFFFF), 32, true)
	f.Add([]byte(""), uint16(0), 1024, false)
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint16(7), 128, true)
	f.Fuzz(func(t *testing.T, data []byte, kind uint16, segBytes int, snapMid bool) {
		if segBytes <= 0 || segBytes > 1<<16 {
			segBytes = 128
		}
		dir := t.TempDir()
		l, err := Open(dir, Options{NoFsync: true, SegmentBytes: int64(segBytes)})
		if err != nil {
			t.Fatal(err)
		}
		// Carve the fuzz input into a handful of records: each chunk's
		// first byte perturbs the kind, the rest is the payload.
		var want []trec
		for i := 0; i < len(data) || i == 0; i += 17 {
			end := i + 17
			if end > len(data) {
				end = len(data)
			}
			chunk := data[i:end]
			k := kind
			if len(chunk) > 0 {
				k ^= uint16(chunk[0])
			}
			if _, err := l.Append(k, chunk); err != nil {
				t.Fatal(err)
			}
			want = append(want, trec{k, append([]byte(nil), chunk...)})
			if snapMid && i == 17 {
				if err := l.Snapshot(data, l.LSN()); err != nil {
					t.Fatal(err)
				}
				want = nil // covered by the snapshot now
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		var got []trec
		snap, st, err := Scan(dir, ReplayOptions{}, func(k uint16, p []byte) error {
			got = append(got, trec{k, append([]byte(nil), p...)})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Truncated {
			t.Fatalf("clean log reported truncated: %+v", st)
		}
		if snapMid && len(data) > 17 && !bytes.Equal(snap, data) {
			t.Fatalf("snapshot did not round-trip: got %d bytes, want %d", len(snap), len(data))
		}
		if len(got) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].kind != want[i].kind || !bytes.Equal(got[i].payload, want[i].payload) {
				t.Fatalf("record %d: got (%d, %x), want (%d, %x)",
					i, got[i].kind, got[i].payload, want[i].kind, want[i].payload)
			}
		}

		// Reopen after the clean close and append once more: the log must
		// accept writes at the next LSN with nothing lost.
		l, err = Open(dir, Options{NoFsync: true, SegmentBytes: int64(segBytes)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendSync(kind, data); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzWALTornTail corrupts a valid log at a fuzzer-chosen point — a
// truncation or a bit flip — and requires recovery to land on a valid
// prefix of the original records without ever panicking: Scan reports the
// damage, Open truncates it, and the reopened log accepts new appends.
func FuzzWALTornTail(f *testing.F) {
	f.Add(uint16(3), 5, 0, false)
	f.Add(uint16(1), 40, 3, true)
	f.Add(uint16(0xFF), 999, 7, false)
	f.Add(uint16(9), 0, 1, true)
	f.Fuzz(func(t *testing.T, kind uint16, damageAt int, flip int, truncate bool) {
		dir := t.TempDir()
		l, err := Open(dir, Options{NoFsync: true})
		if err != nil {
			t.Fatal(err)
		}
		const n = 12
		for i := 0; i < n; i++ {
			if _, err := l.Append(kind, bytes.Repeat([]byte{byte(i)}, 9)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _, err := scanDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		path := segs[len(segs)-1].path
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			t.Skip("empty segment")
		}
		at := damageAt % len(raw)
		if at < 0 {
			at += len(raw)
		}
		if truncate {
			raw = raw[:at]
		} else {
			bit := flip % 8
			if bit < 0 {
				bit += 8
			}
			raw[at] ^= byte(1 << bit)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		// Scan never panics and yields a valid prefix of the originals.
		var got []trec
		_, st, err := Scan(dir, ReplayOptions{}, func(k uint16, p []byte) error {
			got = append(got, trec{k, append([]byte(nil), p...)})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Records > n {
			t.Fatalf("replayed %d records from a %d-record log", st.Records, n)
		}
		for i, r := range got {
			want := bytes.Repeat([]byte{byte(i)}, 9)
			// A bit flip can survive CRC only with ~2^-32 probability; a
			// mismatch that passes CRC would show here.
			if r.kind != kind || !bytes.Equal(r.payload, want) {
				t.Fatalf("prefix record %d corrupted: (%d, %x)", i, r.kind, r.payload)
			}
		}

		// Open truncates the damage and the log keeps working.
		l, err = Open(dir, Options{NoFsync: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendSync(kind, []byte("recovered")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		var last trec
		_, st2, err := Scan(dir, ReplayOptions{}, func(k uint16, p []byte) error {
			last = trec{k, append([]byte(nil), p...)}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if st2.Truncated {
			t.Fatalf("damage survived reopen: %+v", st2)
		}
		if string(last.payload) != "recovered" {
			t.Fatalf("post-recovery append lost: %+v", last)
		}
	})
}

// TestWALFuzzCorpusPresent pins the checked-in seed corpora so a cleanup
// cannot silently drop them from fuzz-smoke.
func TestWALFuzzCorpusPresent(t *testing.T) {
	for _, target := range []string{"FuzzWALRoundTrip", "FuzzWALTornTail"} {
		ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", target))
		if err != nil || len(ents) == 0 {
			t.Errorf("no checked-in corpus for %s (%v)", target, err)
		}
	}
}
