package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type trec struct {
	kind    uint16
	payload []byte
}

// replayAll reopens nothing: it scans dir and returns the snapshot plus
// the collected tail.
func replayAll(t *testing.T, dir string, o ReplayOptions) ([]byte, []trec, Stats) {
	t.Helper()
	var tail []trec
	snap, st, err := Scan(dir, o, func(kind uint16, payload []byte) error {
		p := make([]byte, len(payload))
		copy(p, payload)
		tail = append(tail, trec{kind, p})
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return snap, tail, st
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	var want []trec
	for i := 0; i < 100; i++ {
		kind := uint16(i % 5)
		payload := []byte(fmt.Sprintf("record-%03d", i))
		if _, err := l.Append(kind, payload); err != nil {
			t.Fatal(err)
		}
		want = append(want, trec{kind, payload})
	}
	if got := l.LSN(); got != 100 {
		t.Fatalf("LSN = %d, want 100", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	snap, tail, st := replayAll(t, dir, ReplayOptions{})
	if snap != nil {
		t.Fatalf("unexpected snapshot: %q", snap)
	}
	if st.Records != 100 || st.LastLSN != 100 || st.Truncated {
		t.Fatalf("stats = %+v", st)
	}
	for i, r := range tail {
		if r.kind != want[i].kind || !bytes.Equal(r.payload, want[i].payload) {
			t.Fatalf("record %d: got (%d, %q), want (%d, %q)",
				i, r.kind, r.payload, want[i].kind, want[i].payload)
		}
	}

	// Reopen and keep appending: LSNs continue, replay sees both runs.
	l, err = Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LSN(); got != 100 {
		t.Fatalf("reopened LSN = %d, want 100", got)
	}
	if _, err := l.AppendSync(9, []byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, tail, st = replayAll(t, dir, ReplayOptions{})
	if st.Records != 101 || tail[100].kind != 9 {
		t.Fatalf("after reopen: stats %+v, last (%d, %q)", st, tail[100].kind, tail[100].payload)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoFsync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 20; i++ {
		if _, err := l.AppendSync(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to leave several segments, got %d", len(segs))
	}
	_, tail, st := replayAll(t, dir, ReplayOptions{})
	if st.Records != 20 || len(tail) != 20 {
		t.Fatalf("replay across segments: %+v", st)
	}
}

func TestWALSnapshotPrunesAndReplays(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoFsync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	covered := l.LSN()
	if err := l.Snapshot([]byte("state@50"), covered); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := l.Append(2, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	snap, tail, st := replayAll(t, dir, ReplayOptions{})
	if string(snap) != "state@50" {
		t.Fatalf("snapshot = %q", snap)
	}
	if st.SnapshotLSN != 50 || st.Records != 7 {
		t.Fatalf("stats = %+v", st)
	}
	for i, r := range tail {
		if r.kind != 2 || string(r.payload) != fmt.Sprintf("post-%d", i) {
			t.Fatalf("tail %d = (%d, %q)", i, r.kind, r.payload)
		}
	}

	// Old segments fully covered by the snapshot are gone.
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs[:len(segs)-1] {
		if s.start <= 40 {
			t.Fatalf("segment starting at %d survived a snapshot covering 50", s.start)
		}
	}

	// A second snapshot prunes beyond the keep limit.
	l, err = Open(dir, Options{NoFsync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("state@57"), l.LSN()); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("state@57b"), l.LSN()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > snapKeep {
		t.Fatalf("%d snapshots survived pruning (keep %d)", len(snaps), snapKeep)
	}
	snap, _, st = replayAll(t, dir, ReplayOptions{})
	if string(snap) != "state@57b" || st.Records != 0 {
		t.Fatalf("after re-snapshot: snap %q, stats %+v", snap, st)
	}
}

func TestWALTornTailTruncatesOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last 3 bytes of the segment.
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segs[len(segs)-1].path
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Scan (read-only) sees 9 records and reports the tear.
	_, tail, st := replayAll(t, dir, ReplayOptions{})
	if st.Records != 9 || !st.Truncated {
		t.Fatalf("scan after tear: %+v", st)
	}
	if string(tail[8].payload) != "r8" {
		t.Fatalf("last surviving record = %q", tail[8].payload)
	}

	// Open truncates the tear; appends land after the last valid record.
	l, err = Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LSN(); got != 9 {
		t.Fatalf("LSN after torn open = %d, want 9", got)
	}
	if _, err := l.AppendSync(7, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, tail, st = replayAll(t, dir, ReplayOptions{})
	if st.Records != 10 || st.Truncated {
		t.Fatalf("after heal: %+v", st)
	}
	if tail[9].kind != 7 || string(tail[9].payload) != "healed" {
		t.Fatalf("healed record = (%d, %q)", tail[9].kind, tail[9].payload)
	}
}

func TestWALCorruptMiddleRecordCutsThere(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("mid-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segs[len(segs)-1].path
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte near the middle: CRC of that record fails, the
	// valid prefix before it survives.
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, tail, st := replayAll(t, dir, ReplayOptions{})
	if !st.Truncated {
		t.Fatalf("bit flip not detected: %+v", st)
	}
	if st.Records >= 10 || st.Records < 1 {
		t.Fatalf("surviving prefix out of range: %+v", st)
	}
	for i, r := range tail {
		if string(r.payload) != fmt.Sprintf("mid-%d", i) {
			t.Fatalf("prefix record %d corrupted: %q", i, r.payload)
		}
	}
}

func TestWALTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("good"), l.LSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("newer"), l.LSN()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's body: its CRC fails, replay falls
	// back to the older one and replays the tail after it.
	raw, err := os.ReadFile(snapPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	raw[4] ^= 0xFF
	if err := os.WriteFile(snapPath(dir, 2), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, tail, st := replayAll(t, dir, ReplayOptions{})
	if string(snap) != "good" || st.SnapshotLSN != 1 || !st.Truncated {
		t.Fatalf("fallback failed: snap %q, stats %+v", snap, st)
	}
	if len(tail) != 1 || string(tail[0].payload) != "b" {
		t.Fatalf("tail after fallback: %v", tail)
	}
}

func TestWALReplayFaultInjection(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("base"), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, tail, _ := replayAll(t, dir, ReplayOptions{DropTail: 2})
	if len(tail) != 4 || string(tail[3].payload) != "t3" {
		t.Fatalf("DropTail: %v", tail)
	}
	snap, tail, _ := replayAll(t, dir, ReplayOptions{IgnoreTail: true})
	if string(snap) != "base" || len(tail) != 0 {
		t.Fatalf("IgnoreTail: snap %q, tail %v", snap, tail)
	}
}

func TestWALGroupCommitConcurrentAppendSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}) // real fsync: the group-commit path
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.AppendSync(uint16(w), []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, tail, st := replayAll(t, dir, ReplayOptions{})
	if st.Records != writers*each {
		t.Fatalf("lost records: %d of %d", st.Records, writers*each)
	}
	// Per-writer order is preserved even though batches interleave.
	next := map[uint16]int{}
	for _, r := range tail {
		if want := fmt.Sprintf("w%d-%d", r.kind, next[r.kind]); string(r.payload) != want {
			t.Fatalf("writer %d out of order: got %q want %q", r.kind, r.payload, want)
		}
		next[r.kind]++
	}
}

func TestWALFrameRoundTrip(t *testing.T) {
	frame := appendFrame(nil, 42, []byte("hello"))
	kind, payload, size, ok := parseFrame(frame)
	if !ok || kind != 42 || string(payload) != "hello" || size != len(frame) {
		t.Fatalf("frame roundtrip: ok=%v kind=%d payload=%q size=%d", ok, kind, payload, size)
	}
	// A huge declared length is rejected, not allocated.
	bad := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(bad[0:4], 1<<30)
	if _, _, _, ok := parseFrame(bad); ok {
		t.Fatal("oversized length accepted")
	}
}

func TestWALOpenDropsUnreachableSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoFsync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := l.AppendSync(1, bytes.Repeat([]byte("y"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Skipf("rotation produced only %d segments", len(segs))
	}
	// Corrupt the middle segment: Open must truncate there and delete the
	// later segments (they are unreachable past the cut).
	mid := segs[1]
	raw, err := os.ReadFile(mid.path)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeader+1] ^= 0xFF
	if err := os.WriteFile(mid.path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{NoFsync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	lsn := l.LSN()
	if lsn >= 12 || lsn < 1 {
		t.Fatalf("LSN after mid-log corruption = %d", lsn)
	}
	if _, err := l.AppendSync(2, []byte("resume")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	left, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(left); i++ {
		if _, _, torn, err := scanSegment(left[i].path, left[i].start, nil); err != nil || torn {
			t.Fatalf("segment %s still torn after reopen (err %v)", filepath.Base(left[i].path), err)
		}
	}
	_, tail, st := replayAll(t, dir, ReplayOptions{})
	if st.Truncated {
		t.Fatalf("still truncated after reopen: %+v", st)
	}
	if string(tail[len(tail)-1].payload) != "resume" {
		t.Fatalf("resume record missing: %v", tail[len(tail)-1])
	}
}
