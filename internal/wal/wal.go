// Package wal implements the write-ahead log behind core.Config.Durability:
// a segmented, CRC-framed record log plus point-in-time snapshots.
//
// Layout. A log directory holds segment files (seg-<first LSN, 16 hex
// digits>.wal) and snapshot files (snap-<covered LSN>.snap). Records are
// framed as
//
//	u32 LE payload length | u32 LE CRC-32 (IEEE) of kind+payload | u16 LE kind | payload
//
// and numbered by position: the i'th record of a segment whose name says
// first LSN s has LSN s+i. A snapshot file is u32 LE CRC + payload and
// covers every record with LSN <= the LSN in its name; replay loads the
// newest valid snapshot and hands back only the record tail after it.
//
// Commit. Appenders enqueue encoded frames under the log mutex; a single
// flusher goroutine drains the queue with one write(2) and (unless
// Options.NoFsync) one fsync per batch, so concurrent appenders share one
// sync — group commit. AppendSync parks the caller until its record is on
// disk; Append is fire-and-forget for callers whose durability point is a
// later Sync. No timers are involved anywhere, so the log is safe under
// the simulator's virtual clock.
//
// Recovery. Open scans the directory, truncates a torn tail at the first
// structurally invalid frame (short header, over-long length, CRC
// mismatch, a segment-numbering gap) and discards any later segments;
// appending resumes after the last valid record. Scan does the same walk
// read-only and never modifies the directory, so a live log can be
// audited concurrently after a Sync.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	frameHeader = 10 // u32 payload length + u32 crc + u16 kind
	// maxRecord bounds one record's payload so a corrupt length field can
	// never force a huge allocation during replay.
	maxRecord  = 1 << 26
	segSuffix  = ".wal"
	snapSuffix = ".snap"
	segPrefix  = "seg-"
	snapPrefix = "snap-"
	// snapKeep is how many snapshots survive pruning: the newest plus one
	// fallback in case the newest is found torn at replay.
	snapKeep = 2
)

// ErrClosed is returned by appends against a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options tune one log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Zero picks 1 MiB.
	SegmentBytes int64
	// NoFsync skips every fsync (records and snapshots are still written,
	// just not forced to stable storage). The deterministic simulator sets
	// it: a simulated crash never loses the page cache, only a real
	// kill -9 does.
	NoFsync bool
}

func (o *Options) fillDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
}

// ReplayOptions tune one replay pass. The two fault flags exist for the
// simulator's injected-bug tests (internal/sim): they deliberately
// reproduce the two classic recovery regressions — losing the final
// commit batch and trusting a stale snapshot — so the crash-restart-replay
// checker can prove it catches them.
type ReplayOptions struct {
	// DropTail drops the last N tail records, as if the final group-commit
	// batch had never been fsynced. Injected fault; zero for real recovery.
	DropTail int
	// IgnoreTail replays the snapshot only and ignores every record after
	// it. Injected fault; false for real recovery.
	IgnoreTail bool
}

// Stats reports what one replay pass saw.
type Stats struct {
	// Snapshot reports whether a valid snapshot was loaded, and
	// SnapshotLSN which records it covers.
	Snapshot    bool
	SnapshotLSN uint64
	// Records is the number of tail records delivered to the callback.
	Records int
	// LastLSN is the LSN of the last valid record found on disk.
	LastLSN uint64
	// Truncated reports that a torn tail (or a torn snapshot) was skipped.
	Truncated bool
}

// Log is an append-only write-ahead log over one directory. All methods
// are safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu   sync.Mutex
	cond *sync.Cond

	f        *os.File // active segment
	segStart uint64   // first LSN of the active segment
	segSize  int64

	lsn     uint64 // last assigned LSN
	buf     []byte // encoded frames waiting for the flusher
	bufLast uint64 // last LSN sitting in buf
	flushed uint64 // last LSN written (and fsynced, unless NoFsync)
	err     error  // sticky I/O failure
	closed  bool

	done chan struct{} // flusher exit
}

// Open opens (creating if needed) the log in dir, truncating any torn
// tail left by a crash. Appending resumes after the last valid record.
func Open(dir string, opt Options) (*Log, error) {
	opt.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)

	// Walk the segments, validating frames; cut at the first invalid one.
	wantStart := uint64(0) // 0: accept any first segment (older ones pruned)
	cut := false
	for i, s := range segs {
		if cut || (wantStart != 0 && s.start != wantStart) {
			// Unreachable after a cut or a numbering gap: drop it.
			if err := os.Remove(s.path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			segs[i].path = ""
			continue
		}
		n, validLen, torn, err := scanSegment(s.path, s.start, nil)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := os.Truncate(s.path, validLen); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			cut = true
		}
		l.lsn = s.start + uint64(n) - 1
		if n == 0 {
			l.lsn = s.start - 1
		}
		l.segStart = s.start
		l.segSize = validLen
		wantStart = s.start + uint64(n)
	}
	// Open (or create) the active segment.
	var active string
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i].path != "" {
			active = segs[i].path
			break
		}
	}
	if active == "" {
		l.segStart = l.lsn + 1
		l.segSize = 0
		active = segPath(dir, l.segStart)
	}
	// Everything found on disk is already durable.
	l.flushed = l.lsn
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	if err := l.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	go l.flusher()
	return l, nil
}

// LSN returns the last assigned record LSN (0 before the first append).
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Flushed returns the LSN of the last record the flusher has made
// durable: every record at or below it has been written (and fsynced,
// unless NoFsync) to the active segment.
func (l *Log) Flushed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// Append enqueues one record for the next group commit and returns its
// LSN. Durability is deferred to the flusher; use AppendSync or Sync for
// a commit point.
func (l *Log) Append(kind uint16, payload []byte) (uint64, error) {
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	l.lsn++
	l.buf = appendFrame(l.buf, kind, payload)
	l.bufLast = l.lsn
	l.cond.Broadcast()
	return l.lsn, nil
}

// AppendSync appends one record and parks the caller until the record is
// on disk — the group-commit path: every caller blocked here rides the
// same write+fsync.
func (l *Log) AppendSync(kind uint16, payload []byte) (uint64, error) {
	lsn, err := l.Append(kind, payload)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushed < lsn && l.err == nil {
		l.cond.Wait()
	}
	return lsn, l.err
}

// Sync blocks until every record appended so far is on disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.lsn
	for l.flushed < target && l.err == nil {
		l.cond.Wait()
	}
	return l.err
}

// flusher is the single goroutine that drains the append queue: one
// write(2) plus one fsync per batch, shared by every pending appender.
func (l *Log) flusher() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.buf) == 0 && !l.closed && l.err == nil {
			l.cond.Wait()
		}
		if l.err != nil || (l.closed && len(l.buf) == 0) {
			l.mu.Unlock()
			return
		}
		batch := l.buf
		last := l.bufLast
		l.buf = nil
		f := l.f
		l.mu.Unlock()

		_, werr := f.Write(batch)
		if werr == nil && !l.opt.NoFsync {
			werr = f.Sync()
		}

		l.mu.Lock()
		if werr != nil {
			l.err = fmt.Errorf("wal: %w", werr)
		} else {
			l.flushed = last
			l.segSize += int64(len(batch))
			if l.segSize >= l.opt.SegmentBytes {
				if rerr := l.rotateLocked(); rerr != nil {
					l.err = rerr
				}
			}
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// rotateLocked closes the active segment and starts a fresh one at the
// next LSN. Caller holds l.mu and guarantees the queue is drained to the
// active file (flusher calls it right after a batch lands).
func (l *Log) rotateLocked() error {
	if !l.opt.NoFsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	start := l.flushed + 1
	f, err := os.OpenFile(segPath(l.dir, start), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segStart = start
	l.segSize = 0
	return l.syncDir()
}

// Snapshot writes a point-in-time state blob covering every record with
// LSN <= covered, then prunes snapshots and segments the new snapshot
// makes unreachable. covered is typically LSN() sampled before the caller
// rendered the state: records appended while rendering simply stay in the
// replayed tail and re-apply idempotently.
func (l *Log) Snapshot(state []byte, covered uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if covered > l.lsn {
		return fmt.Errorf("wal: snapshot covers LSN %d beyond last record %d", covered, l.lsn)
	}
	// Drain the queue first so the rotation below cannot strand queued
	// records numbered for the old segment.
	for l.flushed < l.lsn && l.err == nil {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}

	tmp, err := os.CreateTemp(l.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(state))
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(state)
	}
	if err == nil && !l.opt.NoFsync {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapPath(l.dir, covered)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	// Rotate so the now-covered active segment becomes prunable by the
	// next snapshot.
	if l.segSize > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return l.pruneLocked(covered)
}

// pruneLocked removes snapshots beyond the keep limit and segments wholly
// covered by the OLDEST kept snapshot — not the newest, because if the
// newest snapshot turns out torn at replay, the fallback snapshot still
// needs the record tail after itself. Caller holds l.mu.
func (l *Log) pruneLocked(covered uint64) error {
	segs, snaps, err := scanDir(l.dir)
	if err != nil {
		return err
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn > snaps[j].lsn })
	keepCovered := covered
	for i, sn := range snaps {
		if i >= snapKeep {
			if err := os.Remove(sn.path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			continue
		}
		if sn.lsn < keepCovered {
			keepCovered = sn.lsn
		}
	}
	// A segment is prunable when the next segment starts at or below
	// keepCovered+1 (so every record it holds is <= keepCovered) — never
	// the active segment.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].start == l.segStart {
			break
		}
		if segs[i+1].start <= keepCovered+1 {
			if err := os.Remove(segs[i].path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	return l.syncDir()
}

// Replay loads the newest valid snapshot (nil if none) and streams the
// record tail after it, in LSN order, to fn. It reads the log's own
// directory; call it right after Open, before new appends.
func (l *Log) Replay(o ReplayOptions, fn func(kind uint16, payload []byte) error) ([]byte, Stats, error) {
	if err := l.Sync(); err != nil {
		return nil, Stats{}, err
	}
	return Scan(l.dir, o, fn)
}

// Close flushes the queue and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done

	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.err
	if !l.opt.NoFsync {
		if serr := l.f.Sync(); err == nil && serr != nil {
			err = fmt.Errorf("wal: %w", serr)
		}
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	return err
}

func (l *Log) syncDir() error {
	if l.opt.NoFsync {
		return nil
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// --- read side --------------------------------------------------------------

// Scan walks the log directory read-only: it returns the newest valid
// snapshot blob (nil if none) and streams the tail records after it to
// fn. Torn tails and torn snapshots are skipped, never fatal — recovery
// always lands on the last valid prefix.
func Scan(dir string, o ReplayOptions, fn func(kind uint16, payload []byte) error) ([]byte, Stats, error) {
	var st Stats
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, st, err
	}

	// Newest structurally valid snapshot wins; a torn one falls back.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn > snaps[j].lsn })
	var snap []byte
	for _, sn := range snaps {
		raw, err := os.ReadFile(sn.path)
		if err != nil {
			return nil, st, fmt.Errorf("wal: %w", err)
		}
		if len(raw) < 4 || crc32.ChecksumIEEE(raw[4:]) != binary.LittleEndian.Uint32(raw[:4]) {
			st.Truncated = true
			continue
		}
		snap = raw[4:]
		st.Snapshot = true
		st.SnapshotLSN = sn.lsn
		break
	}

	// Collect the tail: records with LSN > SnapshotLSN, cut at the first
	// invalid frame or numbering gap.
	type rec struct {
		kind    uint16
		payload []byte
	}
	var tail []rec
	wantStart := uint64(0)
	for _, s := range segs {
		if wantStart != 0 && s.start != wantStart {
			st.Truncated = true
			break
		}
		n, _, torn, err := scanSegment(s.path, s.start, func(lsn uint64, kind uint16, payload []byte) {
			st.LastLSN = lsn
			if lsn > st.SnapshotLSN {
				p := make([]byte, len(payload))
				copy(p, payload)
				tail = append(tail, rec{kind, p})
			}
		})
		if err != nil {
			return nil, st, err
		}
		if torn {
			st.Truncated = true
			break
		}
		wantStart = s.start + uint64(n)
	}

	if o.IgnoreTail {
		tail = nil
	}
	if o.DropTail > 0 {
		if o.DropTail >= len(tail) {
			tail = nil
		} else {
			tail = tail[:len(tail)-o.DropTail]
		}
	}
	for _, r := range tail {
		if fn != nil {
			if err := fn(r.kind, r.payload); err != nil {
				return nil, st, err
			}
		}
		st.Records++
	}
	return snap, st, nil
}

type segRef struct {
	path  string
	start uint64
}

type snapRef struct {
	path string
	lsn  uint64
}

// scanDir lists segments (ascending start LSN) and snapshots. Stray
// files — tmp snapshots from a crashed rename, unrelated names — are
// ignored.
func scanDir(dir string) ([]segRef, []snapRef, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segRef
	var snaps []snapRef
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			if n, ok := parseHex(name[len(segPrefix) : len(name)-len(segSuffix)]); ok {
				segs = append(segs, segRef{filepath.Join(dir, name), n})
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			if n, ok := parseHex(name[len(snapPrefix) : len(name)-len(snapSuffix)]); ok {
				snaps = append(snaps, snapRef{filepath.Join(dir, name), n})
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, snaps, nil
}

// scanSegment validates one segment's frames in order, invoking fn (if
// non-nil) per valid record. It returns the record count, the byte length
// of the valid prefix, and whether a torn tail follows it.
func scanSegment(path string, start uint64, fn func(lsn uint64, kind uint16, payload []byte)) (n int, validLen int64, torn bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	off := 0
	for {
		kind, payload, size, ok := parseFrame(raw[off:])
		if !ok {
			return n, int64(off), off != len(raw), nil
		}
		if fn != nil {
			fn(start+uint64(n), kind, payload)
		}
		n++
		off += size
	}
}

// appendFrame encodes one record frame onto dst.
func appendFrame(dst []byte, kind uint16, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.NewIEEE()
	var kb [2]byte
	binary.LittleEndian.PutUint16(kb[:], kind)
	crc.Write(kb[:])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	binary.LittleEndian.PutUint16(hdr[8:10], kind)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseFrame decodes the frame at the head of b. ok is false for a short,
// over-long or CRC-mismatched frame — the torn-tail cases.
func parseFrame(b []byte) (kind uint16, payload []byte, size int, ok bool) {
	if len(b) < frameHeader {
		return 0, nil, 0, false
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen > maxRecord || int(plen) > len(b)-frameHeader {
		return 0, nil, 0, false
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	kind = binary.LittleEndian.Uint16(b[8:10])
	payload = b[frameHeader : frameHeader+int(plen)]
	crc := crc32.NewIEEE()
	crc.Write(b[8:10])
	crc.Write(payload)
	if crc.Sum32() != want {
		return 0, nil, 0, false
	}
	return kind, payload, frameHeader + int(plen), true
}

func segPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix))
}

func snapPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix))
}

func parseHex(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
