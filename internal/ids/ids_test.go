package ids

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestThreadIDRoundTrip(t *testing.T) {
	cases := []struct {
		root NodeID
		seq  uint64
	}{
		{1, 1},
		{1, 0},
		{7, 42},
		{255, 1<<40 - 1},
		{1 << 20, 12345},
	}
	for _, tc := range cases {
		id := NewThreadID(tc.root, tc.seq)
		if got := id.Root(); got != tc.root {
			t.Errorf("NewThreadID(%v,%v).Root() = %v, want %v", tc.root, tc.seq, got, tc.root)
		}
		if got := id.Seq(); got != tc.seq {
			t.Errorf("NewThreadID(%v,%v).Seq() = %v, want %v", tc.root, tc.seq, got, tc.seq)
		}
	}
}

func TestThreadIDRoundTripProperty(t *testing.T) {
	f := func(root uint32, seq uint64) bool {
		r := NodeID(root % (1 << 24))
		s := seq % (1 << threadSeqBits)
		id := NewThreadID(r, s)
		return id.Root() == r && id.Seq() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectIDRoundTripProperty(t *testing.T) {
	f := func(home uint32, seq uint64) bool {
		h := NodeID(home % (1 << 24))
		s := seq % (1 << threadSeqBits)
		id := NewObjectID(h, s)
		return id.Home() == h && id.Seq() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupIDRoundTripProperty(t *testing.T) {
	f := func(dir uint32, seq uint64) bool {
		d := NodeID(dir % (1 << 24))
		s := seq % (1 << threadSeqBits)
		id := NewGroupID(d, s)
		return id.Directory() == d && id.Seq() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentIDRoundTripProperty(t *testing.T) {
	f := func(home uint32, seq uint64) bool {
		h := NodeID(home % (1 << 24))
		s := seq % (1 << threadSeqBits)
		id := NewSegmentID(h, s)
		return id.Home() == h && id.Seq() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValuesAreInvalid(t *testing.T) {
	if NoNode.IsValid() {
		t.Error("NoNode.IsValid() = true, want false")
	}
	if NoThread.IsValid() {
		t.Error("NoThread.IsValid() = true, want false")
	}
	if NoObject.IsValid() {
		t.Error("NoObject.IsValid() = true, want false")
	}
	if NoGroup.IsValid() {
		t.Error("NoGroup.IsValid() = true, want false")
	}
	if NoSegment.IsValid() {
		t.Error("NoSegment.IsValid() = true, want false")
	}
}

func TestValidIdentifiers(t *testing.T) {
	if !NewThreadID(1, 1).IsValid() {
		t.Error("NewThreadID(1,1).IsValid() = false, want true")
	}
	if !NewObjectID(1, 1).IsValid() {
		t.Error("NewObjectID(1,1).IsValid() = false, want true")
	}
	if !NodeID(1).IsValid() {
		t.Error("NodeID(1).IsValid() = false, want true")
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{NodeID(3).String(), "node3"},
		{NewThreadID(2, 9).String(), "t2.9"},
		{NewObjectID(4, 7).String(), "o4.7"},
		{NewGroupID(5, 1).String(), "g5.1"},
		{NewSegmentID(6, 2).String(), "seg6.2"},
		{EventStamp{Node: 1, Seq: 3}.String(), "e1:3"},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}

func TestGeneratorSequencesAreDenseAndUnique(t *testing.T) {
	g := NewGenerator(3)
	if g.Node() != 3 {
		t.Fatalf("Node() = %v, want 3", g.Node())
	}
	seen := make(map[ThreadID]bool)
	for i := 1; i <= 100; i++ {
		id := g.NextThread()
		if id.Root() != 3 {
			t.Fatalf("NextThread().Root() = %v, want 3", id.Root())
		}
		if id.Seq() != uint64(i) {
			t.Fatalf("NextThread().Seq() = %v, want %v", id.Seq(), i)
		}
		if seen[id] {
			t.Fatalf("duplicate thread id %v", id)
		}
		seen[id] = true
	}
}

func TestGeneratorClassesAreIndependent(t *testing.T) {
	g := NewGenerator(1)
	g.NextThread()
	g.NextThread()
	if got := g.NextObject(); got.Seq() != 1 {
		t.Errorf("first object seq = %v, want 1 (independent of thread counter)", got.Seq())
	}
	if got := g.NextGroup(); got.Seq() != 1 {
		t.Errorf("first group seq = %v, want 1", got.Seq())
	}
	if got := g.NextSegment(); got.Seq() != 1 {
		t.Errorf("first segment seq = %v, want 1", got.Seq())
	}
	if got := g.NextEvent(); got != 1 {
		t.Errorf("first event seq = %v, want 1", got)
	}
}

func TestGeneratorConcurrentUniqueness(t *testing.T) {
	g := NewGenerator(2)
	const (
		workers = 8
		perW    = 500
	)
	var (
		mu  sync.Mutex
		all = make(map[ThreadID]bool, workers*perW)
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ThreadID, 0, perW)
			for i := 0; i < perW; i++ {
				local = append(local, g.NextThread())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if all[id] {
					t.Errorf("duplicate id %v", id)
				}
				all[id] = true
			}
		}()
	}
	wg.Wait()
	if len(all) != workers*perW {
		t.Fatalf("got %d unique ids, want %d", len(all), workers*perW)
	}
}

func TestNextStamp(t *testing.T) {
	g := NewGenerator(9)
	s1 := g.NextStamp()
	s2 := g.NextStamp()
	if s1.Node != 9 || s2.Node != 9 {
		t.Fatalf("stamps carry wrong node: %v %v", s1, s2)
	}
	if s1 == s2 {
		t.Fatalf("stamps not unique: %v %v", s1, s2)
	}
	if s2.Seq != s1.Seq+1 {
		t.Fatalf("stamps not sequential: %v then %v", s1, s2)
	}
}
