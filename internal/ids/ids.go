// Package ids defines the typed identifiers used throughout the DO/CT
// environment: nodes, objects, threads, thread groups, DSM segments and
// events. Thread identifiers encode the thread's root node (the node the
// thread was created on), which the path-following location strategy of the
// paper's §7.1 relies on ("given the unique name of a thread, it is
// possible to find the root node").
package ids

import (
	"fmt"
	"sync/atomic"
)

// NodeID names a node (simulated machine) in the cluster. Node identifiers
// are small dense integers assigned at cluster boot, starting at 1.
type NodeID uint32

// NoNode is the zero NodeID; it never names a real node.
const NoNode NodeID = 0

// String returns "node<n>".
func (n NodeID) String() string { return fmt.Sprintf("node%d", uint32(n)) }

// IsValid reports whether the identifier names a real node.
func (n NodeID) IsValid() bool { return n != NoNode }

// ThreadID names a distributed logical thread. The identifier encodes the
// root node in the high 24 bits and a per-root sequence number in the low
// 40 bits, so any holder of a ThreadID can locate the thread's root node
// without a directory lookup.
type ThreadID uint64

// NoThread is the zero ThreadID; it never names a real thread.
const NoThread ThreadID = 0

const threadSeqBits = 40

// NewThreadID constructs the ThreadID for the seq-th thread rooted at node.
func NewThreadID(root NodeID, seq uint64) ThreadID {
	return ThreadID(uint64(root)<<threadSeqBits | (seq & (1<<threadSeqBits - 1)))
}

// Root returns the node the thread was created on.
func (t ThreadID) Root() NodeID { return NodeID(uint64(t) >> threadSeqBits) }

// Seq returns the per-root sequence number.
func (t ThreadID) Seq() uint64 { return uint64(t) & (1<<threadSeqBits - 1) }

// IsValid reports whether the identifier names a real thread.
func (t ThreadID) IsValid() bool { return t != NoThread }

// String returns "t<root>.<seq>".
func (t ThreadID) String() string {
	return fmt.Sprintf("t%d.%d", uint32(t.Root()), t.Seq())
}

// ObjectID names a passive persistent object. Objects are created on a home
// node; like threads, the identifier encodes the home node so the object
// directory can be partitioned without a central service.
type ObjectID uint64

// NoObject is the zero ObjectID; it never names a real object.
const NoObject ObjectID = 0

// NewObjectID constructs the ObjectID for the seq-th object homed at node.
func NewObjectID(home NodeID, seq uint64) ObjectID {
	return ObjectID(uint64(home)<<threadSeqBits | (seq & (1<<threadSeqBits - 1)))
}

// Home returns the node the object was created on.
func (o ObjectID) Home() NodeID { return NodeID(uint64(o) >> threadSeqBits) }

// Seq returns the per-home sequence number.
func (o ObjectID) Seq() uint64 { return uint64(o) & (1<<threadSeqBits - 1) }

// IsValid reports whether the identifier names a real object.
func (o ObjectID) IsValid() bool { return o != NoObject }

// String returns "o<home>.<seq>".
func (o ObjectID) String() string {
	return fmt.Sprintf("o%d.%d", uint32(o.Home()), o.Seq())
}

// GroupID names a thread group (after the process groups of the V kernel).
// The identifier encodes the node holding the group's membership directory.
type GroupID uint64

// NoGroup is the zero GroupID; it never names a real group.
const NoGroup GroupID = 0

// NewGroupID constructs the GroupID for the seq-th group directed at node.
func NewGroupID(dir NodeID, seq uint64) GroupID {
	return GroupID(uint64(dir)<<threadSeqBits | (seq & (1<<threadSeqBits - 1)))
}

// Directory returns the node holding the group's membership list.
func (g GroupID) Directory() NodeID { return NodeID(uint64(g) >> threadSeqBits) }

// Seq returns the per-directory sequence number.
func (g GroupID) Seq() uint64 { return uint64(g) & (1<<threadSeqBits - 1) }

// IsValid reports whether the identifier names a real group.
func (g GroupID) IsValid() bool { return g != NoGroup }

// String returns "g<dir>.<seq>".
func (g GroupID) String() string {
	return fmt.Sprintf("g%d.%d", uint32(g.Directory()), g.Seq())
}

// SegmentID names a DSM segment. The identifier encodes the segment's home
// node, which holds the page directory.
type SegmentID uint64

// NoSegment is the zero SegmentID; it never names a real segment.
const NoSegment SegmentID = 0

// NewSegmentID constructs the SegmentID for the seq-th segment homed at node.
func NewSegmentID(home NodeID, seq uint64) SegmentID {
	return SegmentID(uint64(home)<<threadSeqBits | (seq & (1<<threadSeqBits - 1)))
}

// Home returns the node holding the segment's page directory.
func (s SegmentID) Home() NodeID { return NodeID(uint64(s) >> threadSeqBits) }

// Seq returns the per-home sequence number.
func (s SegmentID) Seq() uint64 { return uint64(s) & (1<<threadSeqBits - 1) }

// IsValid reports whether the identifier names a real segment.
func (s SegmentID) IsValid() bool { return s != NoSegment }

// String returns "seg<home>.<seq>".
func (s SegmentID) String() string {
	return fmt.Sprintf("seg%d.%d", uint32(s.Home()), s.Seq())
}

// EventSeq is a system-wide unique sequence number stamped on every raised
// event, used to correlate notices, deliveries and handler executions in
// traces and tests.
type EventSeq uint64

// Generator hands out per-node sequence numbers for every identifier class.
// A Generator is safe for concurrent use.
type Generator struct {
	node     NodeID
	threads  atomic.Uint64
	objects  atomic.Uint64
	groups   atomic.Uint64
	segments atomic.Uint64
	events   atomic.Uint64
}

// NewGenerator returns a Generator minting identifiers rooted at node.
func NewGenerator(node NodeID) *Generator {
	return &Generator{node: node}
}

// Node returns the node this generator mints identifiers for.
func (g *Generator) Node() NodeID { return g.node }

// NextThread mints a fresh ThreadID rooted at this node.
func (g *Generator) NextThread() ThreadID {
	return NewThreadID(g.node, g.threads.Add(1))
}

// NextObject mints a fresh ObjectID homed at this node.
func (g *Generator) NextObject() ObjectID {
	return NewObjectID(g.node, g.objects.Add(1))
}

// NextGroup mints a fresh GroupID directed at this node.
func (g *Generator) NextGroup() GroupID {
	return NewGroupID(g.node, g.groups.Add(1))
}

// NextSegment mints a fresh SegmentID homed at this node.
func (g *Generator) NextSegment() SegmentID {
	return NewSegmentID(g.node, g.segments.Add(1))
}

// NextEvent mints a fresh per-node event sequence number. Uniqueness across
// the cluster comes from combining it with the raising node in EventStamp.
func (g *Generator) NextEvent() EventSeq {
	return EventSeq(g.events.Add(1))
}

// EventStamp is the cluster-unique identity of one raised event: the node
// that raised it plus that node's sequence number.
type EventStamp struct {
	Node NodeID
	Seq  EventSeq
}

// String returns "e<node>:<seq>".
func (s EventStamp) String() string {
	return fmt.Sprintf("e%d:%d", uint32(s.Node), uint64(s.Seq))
}

// NextStamp mints a cluster-unique event stamp.
func (g *Generator) NextStamp() EventStamp {
	return EventStamp{Node: g.node, Seq: g.NextEvent()}
}
