package failure

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
)

// collect subscribes a threadsafe event recorder to d.
func collect(d *Detector) func() []Event {
	var mu sync.Mutex
	var evs []Event
	d.Subscribe(func(ev Event) {
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
	})
	return func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), evs...)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSuspectSilentPeer: a peer that stops heartbeating is declared down;
// one that keeps heartbeating is not.
func TestSuspectSilentPeer(t *testing.T) {
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 15 * time.Millisecond},
		1, []ids.NodeID{2, 3}, nil)
	events := collect(d)
	d.Start()
	defer d.Stop()

	// Node 2 heartbeats; node 3 stays silent.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				d.Heartbeat(2)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	waitFor(t, "node 3 suspected", func() bool { return d.Suspected(3) })
	if d.Suspected(2) {
		t.Error("node 2 suspected despite heartbeating")
	}
	if d.Suspected(1) {
		t.Error("detector suspects its own node")
	}

	v := d.View()
	if len(v.Suspected) != 1 || v.Suspected[0] != 3 {
		t.Errorf("View().Suspected = %v, want [3]", v.Suspected)
	}
	if len(v.Alive) != 2 || v.Alive[0] != 1 || v.Alive[1] != 2 {
		t.Errorf("View().Alive = %v, want [1 2]", v.Alive)
	}

	evs := events()
	if len(evs) == 0 || evs[0].Up || evs[0].Node != 3 {
		t.Fatalf("events = %+v, want leading down transition for node 3", evs)
	}
}

// TestUpTransitionOnHeartbeat: a suspected peer that heartbeats again is
// declared up, with a generation above the down transition's.
func TestUpTransitionOnHeartbeat(t *testing.T) {
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 12 * time.Millisecond},
		1, []ids.NodeID{2}, nil)
	events := collect(d)
	d.Start()
	defer d.Stop()

	waitFor(t, "node 2 suspected", func() bool { return d.Suspected(2) })
	d.Heartbeat(2)
	if d.Suspected(2) {
		t.Fatal("node 2 still suspected after heartbeat")
	}
	evs := events()
	if len(evs) < 2 {
		t.Fatalf("got %d events, want down then up", len(evs))
	}
	down, up := evs[0], evs[1]
	if down.Up || !up.Up || up.Gen <= down.Gen {
		t.Errorf("transitions = %+v, want down then up with increasing gen", evs[:2])
	}
}

// TestResetClearsSuspicion: Reset silently clears state — no events, fresh
// silence clocks (the restarted-node path).
func TestResetClearsSuspicion(t *testing.T) {
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 12 * time.Millisecond},
		1, []ids.NodeID{2}, nil)
	events := collect(d)
	d.Start()
	defer d.Stop()

	waitFor(t, "node 2 suspected", func() bool { return d.Suspected(2) })
	before := len(events())
	d.Reset()
	if d.Suspected(2) {
		t.Fatal("node 2 still suspected after Reset")
	}
	if got := len(events()); got != before {
		t.Errorf("Reset emitted %d events, want none", got-before)
	}
}

// TestUnknownPeerIgnored: heartbeats from nodes outside the peer set do
// not grow the detector's state.
func TestUnknownPeerIgnored(t *testing.T) {
	d := New(Config{}, 1, []ids.NodeID{2}, nil)
	d.Heartbeat(99)
	v := d.View()
	if len(v.Alive) != 2 {
		t.Errorf("View().Alive = %v, want [1 2]", v.Alive)
	}
}

// TestBeatCallbackRuns: the detector drives its own heartbeat broadcast.
func TestBeatCallbackRuns(t *testing.T) {
	beats := make(chan struct{}, 64)
	d := New(Config{Period: 2 * time.Millisecond}, 1, nil, func() {
		select {
		case beats <- struct{}{}:
		default:
		}
	})
	d.Start()
	defer d.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-beats:
		case <-time.After(5 * time.Second):
			t.Fatal("beat callback never ran")
		}
	}
}
