package failure

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
)

// collect subscribes a threadsafe event recorder to d.
func collect(d *Detector) func() []Event {
	var mu sync.Mutex
	var evs []Event
	d.Subscribe(func(ev Event) {
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
	})
	return func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), evs...)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSuspectSilentPeer: a peer that stops heartbeating is declared down;
// one that keeps heartbeating is not.
func TestSuspectSilentPeer(t *testing.T) {
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 15 * time.Millisecond},
		1, []ids.NodeID{2, 3}, nil)
	events := collect(d)
	d.Start()
	defer d.Stop()

	// Node 2 heartbeats; node 3 stays silent.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				d.Heartbeat(2)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	waitFor(t, "node 3 suspected", func() bool { return d.Suspected(3) })
	if d.Suspected(2) {
		t.Error("node 2 suspected despite heartbeating")
	}
	if d.Suspected(1) {
		t.Error("detector suspects its own node")
	}

	v := d.View()
	if len(v.Suspected) != 1 || v.Suspected[0] != 3 {
		t.Errorf("View().Suspected = %v, want [3]", v.Suspected)
	}
	if len(v.Alive) != 2 || v.Alive[0] != 1 || v.Alive[1] != 2 {
		t.Errorf("View().Alive = %v, want [1 2]", v.Alive)
	}

	evs := events()
	if len(evs) == 0 || evs[0].Up || evs[0].Node != 3 {
		t.Fatalf("events = %+v, want leading down transition for node 3", evs)
	}
}

// TestUpTransitionOnHeartbeat: a suspected peer that heartbeats again is
// declared up, with a generation above the down transition's.
func TestUpTransitionOnHeartbeat(t *testing.T) {
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 12 * time.Millisecond},
		1, []ids.NodeID{2}, nil)
	events := collect(d)
	d.Start()
	defer d.Stop()

	waitFor(t, "node 2 suspected", func() bool { return d.Suspected(2) })
	d.Heartbeat(2)
	if d.Suspected(2) {
		t.Fatal("node 2 still suspected after heartbeat")
	}
	evs := events()
	if len(evs) < 2 {
		t.Fatalf("got %d events, want down then up", len(evs))
	}
	down, up := evs[0], evs[1]
	if down.Up || !up.Up || up.Gen <= down.Gen {
		t.Errorf("transitions = %+v, want down then up with increasing gen", evs[:2])
	}
}

// TestResetClearsSuspicion: Reset silently clears state — no events, fresh
// silence clocks (the restarted-node path).
func TestResetClearsSuspicion(t *testing.T) {
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 12 * time.Millisecond},
		1, []ids.NodeID{2}, nil)
	events := collect(d)
	d.Start()
	defer d.Stop()

	waitFor(t, "node 2 suspected", func() bool { return d.Suspected(2) })
	before := len(events())
	d.Reset()
	if d.Suspected(2) {
		t.Fatal("node 2 still suspected after Reset")
	}
	if got := len(events()); got != before {
		t.Errorf("Reset emitted %d events, want none", got-before)
	}
}

// TestUnknownPeerIgnored: heartbeats from nodes outside the peer set do
// not grow the detector's state.
func TestUnknownPeerIgnored(t *testing.T) {
	d := New(Config{}, 1, []ids.NodeID{2}, nil)
	d.Heartbeat(99)
	v := d.View()
	if len(v.Alive) != 2 {
		t.Errorf("View().Alive = %v, want [1 2]", v.Alive)
	}
}

// TestBeatCallbackRuns: the detector drives its own per-peer heartbeats.
func TestBeatCallbackRuns(t *testing.T) {
	beats := make(chan ids.NodeID, 64)
	d := New(Config{Period: 2 * time.Millisecond}, 1, []ids.NodeID{2}, func(to ids.NodeID) {
		select {
		case beats <- to:
		default:
		}
	})
	d.Start()
	defer d.Stop()
	for i := 0; i < 3; i++ {
		select {
		case to := <-beats:
			if to != 2 {
				t.Fatalf("beat target = %d, want 2", to)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("beat callback never ran")
		}
	}
}

// beatRecorder captures beat targets threadsafely.
type beatRecorder struct {
	mu  sync.Mutex
	tos []ids.NodeID
}

func (r *beatRecorder) beat(to ids.NodeID) {
	r.mu.Lock()
	r.tos = append(r.tos, to)
	r.mu.Unlock()
}

func (r *beatRecorder) count(to ids.NodeID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.tos {
		if t == to {
			n++
		}
	}
	return n
}

// TestRingBeatsPredecessorOnly: in ring mode a node heartbeats only its live
// ring predecessor and watches its live ring successor.
func TestRingBeatsPredecessorOnly(t *testing.T) {
	rec := &beatRecorder{}
	d := New(Config{Period: 2 * time.Millisecond, Ring: true}, 2, []ids.NodeID{1, 3}, rec.beat)
	if got := d.Watching(); got != 3 {
		t.Fatalf("Watching() = %d, want successor 3", got)
	}
	d.Start()
	defer d.Stop()

	// Keep both peers alive so the topology stays put.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				d.Observe(1)
				d.Observe(3)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	waitFor(t, "beats toward predecessor 1", func() bool { return rec.count(1) >= 3 })
	if n := rec.count(3); n != 0 {
		t.Errorf("node 2 sent %d beats to its successor 3, want 0", n)
	}
}

// TestObserveSendSuppressesBeat: recent outbound data toward the beat target
// suppresses the explicit heartbeat — the data already proved us alive.
func TestObserveSendSuppressesBeat(t *testing.T) {
	rec := &beatRecorder{}
	d := New(Config{Period: 4 * time.Millisecond, Ring: true}, 1, []ids.NodeID{2}, rec.beat)
	d.Start()
	defer d.Stop()

	// Constant chatter in both directions: every beat should be suppressed.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				d.Observe(2)
				d.ObserveSend(2)
			}
		}
	}()

	time.Sleep(60 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Allow a beat or two from startup races, but the steady state must be
	// silent: 60ms / 4ms = ~15 periods would beat without suppression.
	if n := rec.count(2); n > 3 {
		t.Errorf("got %d beats despite constant outbound traffic, want ~0", n)
	}
}

// TestRingSweepsOnlyWatch: a silent non-watch peer is not suspected locally
// (its watcher will tell us); the watch target is.
func TestRingSweepsOnlyWatch(t *testing.T) {
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 15 * time.Millisecond, Ring: true},
		1, []ids.NodeID{2, 3}, nil)
	d.Start()
	defer d.Stop()

	// Node 3 (not the watch — watch is successor 2) heartbeats never; node 2
	// is silent too. Only 2 may be suspected by the local sweep... but once 2
	// is down the watch moves to 3, so assert the order of events instead.
	waitFor(t, "watch target 2 suspected", func() bool { return d.Suspected(2) })
	if got := d.Watching(); got != 3 {
		t.Fatalf("after suspecting 2, Watching() = %d, want 3", got)
	}
	// 3 got a fresh grace clock on the watch handoff, so at this instant it
	// must not be suspected yet even though it was silent the whole time.
	if d.Suspected(3) {
		t.Error("node 3 suspected before it ever became the watch target")
	}
}

// TestApplyRemote: remote transitions update the view idempotently, carry
// Remote=true, and ignore self / unknown nodes.
func TestApplyRemote(t *testing.T) {
	d := New(Config{Ring: true}, 1, []ids.NodeID{2, 3}, nil)
	events := collect(d)

	d.ApplyRemote(1, false)  // self: ignored
	d.ApplyRemote(99, false) // unknown: ignored
	d.ApplyRemote(3, false)
	d.ApplyRemote(3, false) // duplicate: idempotent
	if !d.Suspected(3) {
		t.Fatal("node 3 not suspected after remote down notice")
	}
	d.ApplyRemote(3, true)
	if d.Suspected(3) {
		t.Fatal("node 3 still suspected after remote up notice")
	}

	evs := events()
	if len(evs) != 2 {
		t.Fatalf("got %d events %+v, want exactly down+up for node 3", len(evs), evs)
	}
	if evs[0].Node != 3 || evs[0].Up || !evs[0].Remote {
		t.Errorf("first event = %+v, want remote down for 3", evs[0])
	}
	if evs[1].Node != 3 || !evs[1].Up || !evs[1].Remote || evs[1].Gen <= evs[0].Gen {
		t.Errorf("second event = %+v, want remote up for 3 with higher gen", evs[1])
	}
}

// TestSuspendResume: a suspended detector raises no suspicions; Resume
// clears state and restarts monitoring.
func TestSuspendResume(t *testing.T) {
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 12 * time.Millisecond},
		1, []ids.NodeID{2}, nil)
	d.Start()
	defer d.Stop()

	d.Suspend()
	time.Sleep(40 * time.Millisecond) // several suspicion windows of silence
	if d.Suspected(2) {
		t.Fatal("suspended detector suspected a peer")
	}
	d.Resume()
	waitFor(t, "node 2 suspected after resume", func() bool { return d.Suspected(2) })
}

// TestProbesSuspectedPeer: a suspected peer still hears from us once per
// suspicion window, so partitions heal and restarts are noticed.
func TestProbesSuspectedPeer(t *testing.T) {
	rec := &beatRecorder{}
	d := New(Config{Period: 3 * time.Millisecond, SuspectAfter: 12 * time.Millisecond, Ring: true},
		1, []ids.NodeID{2}, rec.beat)
	d.Start()
	defer d.Stop()

	waitFor(t, "node 2 suspected", func() bool { return d.Suspected(2) })
	base := rec.count(2)
	waitFor(t, "probe toward suspected node 2", func() bool { return rec.count(2) > base })
}
