package failure

import (
	"bytes"
	"testing"

	"repro/internal/ids"
)

// FuzzGossipRoundTrip drives the gossip piggyback codec from a byte
// script in two modes, selected by the first byte (the same shape as
// internal/batch's frame fuzzer):
//
//   - decode mode (0): the remaining bytes are treated as a wire message;
//     the decoder must reject or accept without panicking, and anything
//     it accepts must re-encode to the identical bytes — the codec has
//     exactly one canonical encoding, which is what lets a relay forward
//     a message without re-serialization drift.
//   - build mode (non-zero): the remaining bytes script a message (type,
//     seq, origin, subject, update list); it must encode, decode back to
//     the same message, and survive a re-encode byte-for-byte.
func FuzzGossipRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})             // decode mode, empty input
	f.Add([]byte{0x00, 0x00, 0x01}) // decode mode, truncated ping
	f.Add([]byte{0x01, 0x00})       // build mode, minimal ping
	f.Add([]byte{0x01, 0x02, 0x07, 0x01, 0x03, 0x02, 0x01, 0x05, 0x03, 0x00, 0x09})
	f.Add(append([]byte{0x00}, (&GossipMsg{
		Type: GossipPing, Seq: 3, Origin: 1, Updates: []Update{
			{Node: 2, Up: false, Inc: 7},
			{Node: 5, Up: true, Inc: 8},
		},
	}).Encode()...)) // decode mode, a well-formed message
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		mode, script := data[0], data[1:]
		if mode == 0 {
			m, err := DecodeGossip(script)
			if err != nil {
				return
			}
			if re := m.Encode(); !bytes.Equal(re, script) {
				t.Fatalf("accepted message is not canonical: decode+encode %x -> %x", script, re)
			}
			return
		}

		// Build mode: script bytes drive the message fields.
		next := func() byte {
			if len(script) == 0 {
				return 0
			}
			b := script[0]
			script = script[1:]
			return b
		}
		m := GossipMsg{
			Type:    next() % 3,
			Seq:     uint32(next()) | uint32(next())<<8,
			Origin:  ids.NodeID(next()),
			Subject: ids.NodeID(next()),
		}
		for len(script) >= 3 && len(m.Updates) < MaxGossipUpdates {
			m.Updates = append(m.Updates, Update{
				Node: ids.NodeID(next()),
				Up:   next()%2 == 1,
				Inc:  uint32(next()),
			})
		}
		b := m.Encode()
		got, err := DecodeGossip(b)
		if err != nil {
			t.Fatalf("built message rejected: %+v: %v", m, err)
		}
		if re := got.Encode(); !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch: %x -> %x", b, re)
		}
	})
}
