// SWIM-style gossip membership (Config.Gossip): randomized round-robin
// ping probing with indirect ping-req escalation and piggybacked
// membership dissemination. Chosen over the ring topology for large
// clusters because both probe load and dissemination fan-out stay O(1)
// per node per period regardless of cluster size, while a detection
// spreads to everyone in O(log n) gossip rounds.
//
// Protocol sketch (one detector, per Period tick):
//
//   - Probe: pick the next peer from a seeded shuffled permutation
//     (reshuffled each cycle) and ping it, unless traffic from it was
//     seen within the last Period (any message is an implicit ack —
//     the same suppression the other topologies use). The probe stays
//     outstanding until traffic arrives from the peer.
//   - Escalate: an outstanding probe is re-pinged every tick; after one
//     Period without an answer, ping-req is sent to K random live peers,
//     which relay a ping and let the subject ack the origin directly.
//   - Suspect: if a probe stays unanswered for SuspectAfter AND the peer
//     has been silent on every channel for SuspectAfter, it is declared
//     down locally and the transition is enqueued for piggybacking.
//   - Disseminate: every gossip message carries up to maxGossipPiggyback
//     membership updates {node, up, incarnation}; each update is sent
//     λ·⌈log₂ n⌉ times (freshest-first), which is enough for an epidemic
//     broadcast to reach every node with high probability.
//   - Refute: a node hearing a rumor of its own death bumps its
//     incarnation and gossips itself alive; higher incarnations win, and
//     down beats up at equal incarnation, so rumors converge.
//
// Deviation from the SWIM paper: direct observation of a suspected
// peer's traffic up-transitions it immediately (with a locally bumped
// incarnation), rather than waiting for the peer's own refutation.
// Every received message is already liveness evidence in this codebase
// (Observe), and the subject's own refutation always carries a higher
// incarnation, so the histories still converge.
//
// Suspected peers are probed once per SuspectAfter, exactly as in ring
// mode, so healed partitions and silent restarts are rediscovered: the
// probe elicits an ack, and the ack is the liveness evidence that
// up-transitions the peer.
package failure

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// Gossip message types.
const (
	// GossipPing probes a peer; the peer acks to Origin.
	GossipPing = byte(0)
	// GossipAck answers a ping.
	GossipAck = byte(1)
	// GossipPingReq asks a helper to ping Subject on the origin's behalf.
	GossipPingReq = byte(2)
)

const (
	// gossipIndirectK is how many helpers receive a ping-req once a
	// direct probe has gone one full Period unanswered.
	gossipIndirectK = 3
	// gossipLambda scales the per-update retransmit budget: each update
	// is piggybacked on λ·⌈log₂ n⌉ outgoing messages before it is
	// retired, the classic epidemic-dissemination bound.
	gossipLambda = 3
	// maxGossipPiggyback caps the updates carried by one message.
	maxGossipPiggyback = 8
)

// MaxGossipUpdates is the decoder's hard cap on the piggyback block;
// above it a message is rejected as malformed. It leaves headroom over
// maxGossipPiggyback so the wire format can grow without a flag day.
const MaxGossipUpdates = 64

// Update is one piggybacked membership rumor: node is up/down as of
// incarnation Inc. Higher incarnations win; down beats up at equal Inc.
type Update struct {
	Node ids.NodeID
	Up   bool
	Inc  uint32
}

// GossipMsg is one gossip protocol message.
type GossipMsg struct {
	Type byte
	// Seq is a per-sender sequence number (diagnostic; acks are matched
	// by sender identity, not sequence, because any traffic from a peer
	// already retires its outstanding probe).
	Seq uint32
	// Origin is the node the ack is ultimately for. For a direct ping it
	// is the sender; for a ping relayed by a ping-req helper it is the
	// node that originally asked. The subject acks the helper, and the
	// helper forwards the ack to Origin — the full relay both ways, so an
	// asymmetric link cut between origin and subject cannot fake a death.
	Origin ids.NodeID
	// Subject names the probed peer: the one a ping-req asks the helper
	// to probe, or the one an ack attests alive (the acker itself for a
	// direct ack; preserved by the helper when forwarding, so the origin
	// can credit the right node).
	Subject ids.NodeID
	// Updates is the piggybacked membership block.
	Updates []Update
}

// Codec errors (strict: any non-canonical encoding is rejected, so a
// decoded message always re-encodes to the identical bytes).
var (
	errGossipTruncated = errors.New("failure: gossip message truncated")
	errGossipPadded    = errors.New("failure: non-minimal uvarint")
	errGossipRange     = errors.New("failure: gossip field out of range")
	errGossipTrailing  = errors.New("failure: trailing bytes")
)

// appendUvarint appends v in LEB128 form.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// readUvarint decodes a minimally-encoded LEB128 value, rejecting
// padded encodings (a multi-byte value whose final byte is zero) and
// 64-bit overflow.
func readUvarint(b []byte) (uint64, int, error) {
	var v uint64
	var s uint
	for i, c := range b {
		if i == 9 && c > 1 {
			return 0, 0, errGossipRange
		}
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, 0, errGossipPadded
			}
			return v | uint64(c)<<s, i + 1, nil
		}
		if i == 9 {
			return 0, 0, errGossipRange
		}
		v |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0, errGossipTruncated
}

// Encode renders m in the canonical wire form: type byte, then uvarint
// seq, origin, subject, update count, and per update uvarint node, a
// 0/1 up byte, and uvarint incarnation.
func (m *GossipMsg) Encode() []byte {
	b := make([]byte, 0, 16+8*len(m.Updates))
	b = append(b, m.Type)
	b = appendUvarint(b, uint64(m.Seq))
	b = appendUvarint(b, uint64(m.Origin))
	b = appendUvarint(b, uint64(m.Subject))
	b = appendUvarint(b, uint64(len(m.Updates)))
	for _, u := range m.Updates {
		b = appendUvarint(b, uint64(u.Node))
		if u.Up {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendUvarint(b, uint64(u.Inc))
	}
	return b
}

// WireSize reports the encoded length for fabric byte accounting.
func (m *GossipMsg) WireSize() int { return len(m.Encode()) }

// DecodeGossip parses a canonical gossip message. Every deviation —
// truncation, padded varints, out-of-range fields, trailing garbage —
// is an error, never a panic, so the decoder can face a hostile or
// fuzzing peer.
func DecodeGossip(b []byte) (GossipMsg, error) {
	var m GossipMsg
	if len(b) == 0 {
		return m, errGossipTruncated
	}
	m.Type = b[0]
	if m.Type > GossipPingReq {
		return m, errGossipRange
	}
	pos := 1
	u32 := func() (uint32, error) {
		v, n, err := readUvarint(b[pos:])
		if err != nil {
			return 0, err
		}
		if v > math.MaxUint32 {
			return 0, errGossipRange
		}
		pos += n
		return uint32(v), nil
	}
	var err error
	if m.Seq, err = u32(); err != nil {
		return m, err
	}
	var v uint32
	if v, err = u32(); err != nil {
		return m, err
	}
	m.Origin = ids.NodeID(v)
	if v, err = u32(); err != nil {
		return m, err
	}
	m.Subject = ids.NodeID(v)
	count, n, err := readUvarint(b[pos:])
	if err != nil {
		return m, err
	}
	if count > MaxGossipUpdates {
		return m, errGossipRange
	}
	pos += n
	if count > 0 {
		m.Updates = make([]Update, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		var u Update
		if v, err = u32(); err != nil {
			return m, err
		}
		u.Node = ids.NodeID(v)
		if pos >= len(b) {
			return m, errGossipTruncated
		}
		switch b[pos] {
		case 0:
		case 1:
			u.Up = true
		default:
			return m, errGossipRange
		}
		pos++
		if u.Inc, err = u32(); err != nil {
			return m, err
		}
		m.Updates = append(m.Updates, u)
	}
	if pos != len(b) {
		return m, errGossipTrailing
	}
	return m, nil
}

// gossipProbe tracks one outstanding direct probe.
type gossipProbe struct {
	start   time.Time
	relayed bool // ping-req helpers already engaged
}

// gossipItem is one queued rumor with its remaining transmit budget.
type gossipItem struct {
	upd   Update
	sends int
}

// gossipOut is one encoded-later outbound message, built under d.mu and
// sent after it is released (the send callback takes fabric locks).
type gossipOut struct {
	to ids.NodeID
	m  GossipMsg
}

// SetGossipSend wires the transport callback used by gossip mode to
// emit protocol messages. payload is the canonical encoding; the owner
// ships it with a kind that bypasses the reliable layer, exactly like
// heartbeats (gossip has its own redundancy; retransmitting stale pings
// would only add load).
func (d *Detector) SetGossipSend(fn func(to ids.NodeID, payload []byte)) {
	d.mu.Lock()
	d.gsend = fn
	d.mu.Unlock()
}

// SelfIncarnation returns this node's current incarnation number.
func (d *Detector) SelfIncarnation() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.selfInc
}

// initGossipLocked sets up gossip state at construction time.
func (d *Detector) initGossipLocked() {
	seed := d.cfg.Seed
	if seed == 0 {
		seed = 1
	}
	// Mixed per node so every detector walks its own permutation even
	// when the whole cluster shares one configured seed.
	d.grng = rand.New(rand.NewSource(seed ^ int64(uint64(d.self)*0x9E3779B97F4A7C15)))
	d.gout = make(map[ids.NodeID]*gossipProbe)
	d.ginc = make(map[ids.NodeID]uint32, len(d.peers))
	d.reshufflePermLocked()
}

// reshufflePermLocked rebuilds the probe order for the next cycle.
func (d *Detector) reshufflePermLocked() {
	d.gperm = append(d.gperm[:0], d.peers...)
	sort.Slice(d.gperm, func(i, j int) bool { return d.gperm[i] < d.gperm[j] })
	d.grng.Shuffle(len(d.gperm), func(i, j int) {
		d.gperm[i], d.gperm[j] = d.gperm[j], d.gperm[i]
	})
	d.gpermIdx = 0
}

// gossipBudgetLocked is the per-update transmit budget λ·⌈log₂ n⌉
// (minimum λ, so rumors still move in tiny clusters).
func (d *Detector) gossipBudgetLocked() int {
	b := gossipLambda * bits.Len(uint(len(d.ring)))
	if b < gossipLambda {
		b = gossipLambda
	}
	return b
}

// enqueueUpdateLocked queues a rumor for piggybacking, keeping at most
// one item per subject node: the freshest fact wins (higher incarnation,
// down over up at equal incarnation) and resets the transmit budget.
func (d *Detector) enqueueUpdateLocked(u Update) {
	for i := range d.gqueue {
		it := &d.gqueue[i]
		if it.upd.Node != u.Node {
			continue
		}
		if u.Inc > it.upd.Inc || (u.Inc == it.upd.Inc && !u.Up && it.upd.Up) {
			it.upd = u
			it.sends = 0
		}
		return
	}
	d.gqueue = append(d.gqueue, gossipItem{upd: u})
}

// pickUpdatesLocked selects the piggyback block for one outgoing
// message: lowest-sends-first (freshest rumors travel most), node ID as
// the deterministic tiebreak, budget-exhausted items retired.
func (d *Detector) pickUpdatesLocked() []Update {
	if len(d.gqueue) == 0 {
		return nil
	}
	sort.SliceStable(d.gqueue, func(i, j int) bool {
		a, b := &d.gqueue[i], &d.gqueue[j]
		if a.sends != b.sends {
			return a.sends < b.sends
		}
		return a.upd.Node < b.upd.Node
	})
	k := len(d.gqueue)
	if k > maxGossipPiggyback {
		k = maxGossipPiggyback
	}
	out := make([]Update, k)
	for i := 0; i < k; i++ {
		out[i] = d.gqueue[i].upd
		d.gqueue[i].sends++
	}
	budget := d.gossipBudgetLocked()
	live := d.gqueue[:0]
	for _, it := range d.gqueue {
		if it.sends < budget {
			live = append(live, it)
		}
	}
	d.gqueue = live
	return out
}

// nextProbeTargetLocked advances the probe permutation to the next peer
// worth pinging: not suspected (those have their own probe schedule),
// not already outstanding, and silent for at least one Period (fresh
// traffic is an implicit ack — counted as a suppressed heartbeat).
func (d *Detector) nextProbeTargetLocked(now time.Time) ids.NodeID {
	n := len(d.peers)
	for tries := 0; tries < n; tries++ {
		if d.gpermIdx >= len(d.gperm) {
			d.reshufflePermLocked()
		}
		if len(d.gperm) == 0 {
			return ids.NoNode
		}
		t := d.gperm[d.gpermIdx]
		d.gpermIdx++
		if d.suspected[t] {
			continue
		}
		if _, busy := d.gout[t]; busy {
			continue
		}
		if now.Sub(d.lastSeen[t]) < d.cfg.Period {
			if d.cfg.Metrics != nil {
				d.cfg.Metrics.Inc(metrics.CtrFDSuppressed)
			}
			continue
		}
		return t
	}
	return ids.NoNode
}

// pickHelpersLocked chooses up to gossipIndirectK random live peers
// (excluding the probe subject) to relay an indirect ping.
func (d *Detector) pickHelpersLocked(subject ids.NodeID) []ids.NodeID {
	cands := make([]ids.NodeID, 0, len(d.peers))
	for _, p := range d.peers {
		if p != subject && !d.suspected[p] {
			cands = append(cands, p)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	d.grng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > gossipIndirectK {
		cands = cands[:gossipIndirectK]
	}
	return cands
}

// gossipTick runs one gossip protocol round; it replaces emitBeats and
// sweep when Config.Gossip is set.
func (d *Detector) gossipTick() {
	now := d.clk.Now()
	var outs []gossipOut
	var evs []Event
	d.mu.Lock()
	// Escalate or expire outstanding probes, in sorted order so a seeded
	// run replays the same message schedule.
	if len(d.gout) > 0 {
		pending := make([]ids.NodeID, 0, len(d.gout))
		for n := range d.gout {
			pending = append(pending, n)
		}
		sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
		for _, n := range pending {
			pr := d.gout[n]
			switch {
			case now.Sub(pr.start) >= d.cfg.SuspectAfter:
				delete(d.gout, n)
				// The silence guard: only declare a peer down when it has
				// been silent on every channel for the full window, not just
				// unresponsive to this probe — other traffic from it is just
				// as alive as an ack.
				if !d.suspected[n] && now.Sub(d.lastSeen[n]) >= d.cfg.SuspectAfter {
					d.suspected[n] = true
					d.gen++
					evs = append(evs, Event{Node: n, Up: false, Gen: d.gen})
					if d.cfg.Metrics != nil {
						d.cfg.Metrics.Inc(metrics.CtrFDNodeDown)
					}
					d.enqueueUpdateLocked(Update{Node: n, Up: false, Inc: d.ginc[n]})
					d.recomputeWatchLocked(now)
				}
			default:
				if !pr.relayed && now.Sub(pr.start) >= d.cfg.Period {
					pr.relayed = true
					for _, h := range d.pickHelpersLocked(n) {
						outs = append(outs, gossipOut{to: h, m: GossipMsg{Type: GossipPingReq, Subject: n}})
					}
				}
				// Re-ping every tick: with p message loss, a false
				// suspicion needs every one of these and the indirect
				// probes to vanish.
				outs = append(outs, gossipOut{to: n, m: GossipMsg{Type: GossipPing}})
			}
		}
	}
	if d.rejoin {
		// Rejoin announcement (see the rejoin field): one full round so
		// every peer observes the restarted node alive, carrying the
		// bumped self incarnation in the piggyback.
		d.rejoin = false
		for _, p := range d.peers {
			outs = append(outs, gossipOut{to: p, m: GossipMsg{Type: GossipPing}})
		}
	} else if t := d.nextProbeTargetLocked(now); t != ids.NoNode {
		d.gout[t] = &gossipProbe{start: now}
		outs = append(outs, gossipOut{to: t, m: GossipMsg{Type: GossipPing}})
	}
	// Suspected peers are probed once per suspicion window, as in ring
	// mode: the ack of a healed or restarted peer is what revives it.
	if len(d.suspected) > 0 {
		susp := make([]ids.NodeID, 0, len(d.suspected))
		for p := range d.suspected {
			susp = append(susp, p)
		}
		sort.Slice(susp, func(i, j int) bool { return susp[i] < susp[j] })
		for _, p := range susp {
			if now.Sub(d.lastProbe[p]) >= d.cfg.SuspectAfter {
				d.lastProbe[p] = now
				outs = append(outs, gossipOut{to: p, m: GossipMsg{Type: GossipPing}})
			}
		}
	}
	d.stampOutsLocked(outs)
	send := d.gsend
	subs := d.subs
	d.mu.Unlock()
	d.emitGossip(send, outs)
	notify(subs, evs)
}

// stampOutsLocked assigns sequence numbers, fills Origin for messages
// that ack back to us, and attaches each message's piggyback block.
// Caller holds d.mu.
func (d *Detector) stampOutsLocked(outs []gossipOut) {
	for i := range outs {
		d.gseq++
		outs[i].m.Seq = d.gseq
		if outs[i].m.Origin == ids.NoNode {
			outs[i].m.Origin = d.self
		}
		outs[i].m.Updates = d.pickUpdatesLocked()
	}
}

// emitGossip ships the built messages outside d.mu.
func (d *Detector) emitGossip(send func(ids.NodeID, []byte), outs []gossipOut) {
	if send == nil {
		return
	}
	for _, o := range outs {
		if d.cfg.Metrics != nil {
			switch o.m.Type {
			case GossipPing:
				d.cfg.Metrics.Inc(metrics.CtrGossipPing)
			case GossipAck:
				d.cfg.Metrics.Inc(metrics.CtrGossipAck)
			case GossipPingReq:
				d.cfg.Metrics.Inc(metrics.CtrGossipPingReq)
			}
		}
		send(o.to, o.m.Encode())
	}
}

// HandleGossip processes one received gossip message: the arrival
// itself is liveness evidence for the sender (and retires any
// outstanding probe of it), the piggyback block is applied, and pings
// are answered.
func (d *Detector) HandleGossip(from ids.NodeID, payload []byte) {
	m, err := DecodeGossip(payload)
	if err != nil {
		return
	}
	d.Observe(from)
	now := d.clk.Now()
	var outs []gossipOut
	var evs []Event
	d.mu.Lock()
	for _, u := range m.Updates {
		evs = append(evs, d.applyUpdateLocked(u, now)...)
	}
	var attested ids.NodeID
	switch m.Type {
	case GossipPing:
		// Ack the transport sender, carrying the origin so a helper can
		// forward the ack home.
		origin := m.Origin
		if origin == ids.NoNode {
			origin = from
		}
		outs = append(outs, gossipOut{to: from, m: GossipMsg{Type: GossipAck, Origin: origin, Subject: d.self}})
	case GossipPingReq:
		if m.Subject != ids.NoNode && m.Subject != d.self && m.Subject != from {
			if _, known := d.lastSeen[m.Subject]; known {
				// Relay the ping on the origin's behalf; the subject's ack
				// comes back to us and is forwarded below.
				outs = append(outs, gossipOut{to: m.Subject, m: GossipMsg{Type: GossipPing, Origin: from}})
			}
		}
	case GossipAck:
		if m.Origin != ids.NoNode && m.Origin != d.self && m.Origin != from {
			// We are the helper on an indirect probe: forward the ack to
			// the origin, preserving the attested subject.
			outs = append(outs, gossipOut{to: m.Origin, m: GossipMsg{Type: GossipAck, Origin: m.Origin, Subject: m.Subject}})
		}
		if m.Subject != ids.NoNode && m.Subject != d.self && m.Subject != from {
			// An indirect ack attests the subject alive even though the
			// bytes came from the helper.
			attested = m.Subject
		}
	}
	d.stampOutsLocked(outs)
	send := d.gsend
	subs := d.subs
	d.mu.Unlock()
	if attested != ids.NoNode {
		d.Observe(attested)
	}
	d.emitGossip(send, outs)
	notify(subs, evs)
}

// applyUpdateLocked folds one piggybacked rumor into local state and
// returns any membership transitions it caused. Caller holds d.mu.
func (d *Detector) applyUpdateLocked(u Update, now time.Time) []Event {
	if u.Node == d.self {
		// A rumor of our own death at our current (or later) incarnation:
		// refute it by moving to a higher incarnation and gossiping
		// ourselves alive. Rumors about older incarnations died already.
		if !u.Up && u.Inc >= d.selfInc {
			d.selfInc = u.Inc + 1
			d.enqueueUpdateLocked(Update{Node: d.self, Up: true, Inc: d.selfInc})
			if d.cfg.Metrics != nil {
				d.cfg.Metrics.Inc(metrics.CtrGossipRefute)
			}
		}
		return nil
	}
	if _, known := d.lastSeen[u.Node]; !known {
		return nil
	}
	cur := d.ginc[u.Node]
	var evs []Event
	switch {
	case u.Inc < cur:
		return nil // stale rumor
	case u.Inc == cur:
		// Down beats up at equal incarnation; an equal-incarnation alive
		// adds nothing we did not already believe.
		if u.Up || d.suspected[u.Node] {
			return nil
		}
		d.suspected[u.Node] = true
		d.gen++
		evs = append(evs, Event{Node: u.Node, Up: false, Gen: d.gen, Remote: true})
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.Inc(metrics.CtrFDNodeDown)
		}
		d.enqueueUpdateLocked(u)
		d.recomputeWatchLocked(now)
	default: // u.Inc > cur: fresh incarnation, apply unconditionally
		d.ginc[u.Node] = u.Inc
		if u.Up == !d.suspected[u.Node] {
			// State already matches; still forward the fresher incarnation.
			d.enqueueUpdateLocked(u)
			return nil
		}
		if u.Up {
			delete(d.suspected, u.Node)
			d.lastSeen[u.Node] = now
			if d.cfg.Metrics != nil {
				d.cfg.Metrics.Inc(metrics.CtrFDNodeUp)
			}
		} else {
			d.suspected[u.Node] = true
			if d.cfg.Metrics != nil {
				d.cfg.Metrics.Inc(metrics.CtrFDNodeDown)
			}
		}
		d.gen++
		evs = append(evs, Event{Node: u.Node, Up: u.Up, Gen: d.gen, Remote: true})
		d.enqueueUpdateLocked(u)
		d.recomputeWatchLocked(now)
	}
	if d.cfg.Metrics != nil {
		d.cfg.Metrics.Inc(metrics.CtrGossipUpdates)
	}
	return evs
}
