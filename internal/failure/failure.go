// Package failure implements a heartbeat-based crash-failure detector, one
// instance per node. Each detector periodically broadcasts a heartbeat and
// sweeps the arrival times of its peers' heartbeats; a peer silent for
// longer than the suspicion threshold is declared down, and a suspected
// peer that heartbeats again is declared up (restarted, or a partition
// healed). Subscribers receive membership events and the kernel turns them
// into NODE_DOWN / NODE_UP system events — the generalization of the
// paper's §7.2 THREAD_DEATH notices from one dead thread to a whole dead
// node's worth of threads.
//
// The detector is deliberately simple (no gossip, no incarnation numbers):
// the netsim fabric gives every pair of nodes a direct link, so a missing
// heartbeat means the peer is crashed, partitioned away, or badly lossy —
// and for the DO/CT protocols those all warrant the same reaction, because
// posts and probes toward such a node would otherwise hang their callers.
package failure

import (
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// DefaultPeriod is the heartbeat interval when Config.Period is zero.
// Heartbeats are cheap fabric broadcasts, so the default favors detection
// latency over traffic.
const DefaultPeriod = 15 * time.Millisecond

// DefaultSuspectMultiple sets the suspicion threshold when
// Config.SuspectAfter is zero: a peer is suspected after this many silent
// heartbeat periods. Several consecutive heartbeats must be lost before a
// node is declared down, which gives jitter tolerance — with 10% message
// loss the false-suspicion probability per sweep is 10^-5.
const DefaultSuspectMultiple = 5

// Config parameterizes a Detector.
type Config struct {
	// Period is the heartbeat broadcast interval (0 = DefaultPeriod).
	Period time.Duration
	// SuspectAfter is how long a peer may stay silent before it is
	// declared down (0 = DefaultSuspectMultiple × Period). It must be
	// comfortably larger than Period plus fabric latency and jitter.
	SuspectAfter time.Duration
	// Metrics receives heartbeat and transition accounting (nil = none).
	Metrics *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.Period <= 0 {
		c.Period = DefaultPeriod
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectMultiple * c.Period
	}
}

// Event is one membership transition observed by a detector.
type Event struct {
	Node ids.NodeID
	// Up is false for a down transition (peer fell silent), true for an up
	// transition (a suspected peer heartbeated again).
	Up bool
	// Gen is the observing detector's view generation after the
	// transition; it increases monotonically with every transition.
	Gen uint64
}

// Membership is a point-in-time cluster view from one detector.
type Membership struct {
	Gen       uint64
	Alive     []ids.NodeID // self plus unsuspected peers, ascending
	Suspected []ids.NodeID // suspected peers, ascending
}

// Detector watches a fixed peer set for crash failures. Create with New,
// then Start; Heartbeat is fed by the owner whenever a peer's heartbeat
// message arrives.
type Detector struct {
	cfg   Config
	self  ids.NodeID
	peers []ids.NodeID
	beat  func() // broadcasts this node's heartbeat; nil in unit tests

	mu        sync.Mutex
	lastSeen  map[ids.NodeID]time.Time
	suspected map[ids.NodeID]bool
	gen       uint64
	subs      []func(Event)

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// New builds a detector for self watching peers. beat is called once per
// period to broadcast this node's own heartbeat (nil for tests that drive
// Heartbeat directly).
func New(cfg Config, self ids.NodeID, peers []ids.NodeID, beat func()) *Detector {
	cfg.fillDefaults()
	d := &Detector{
		cfg:       cfg,
		self:      self,
		peers:     append([]ids.NodeID(nil), peers...),
		beat:      beat,
		lastSeen:  make(map[ids.NodeID]time.Time, len(peers)),
		suspected: make(map[ids.NodeID]bool),
		stopCh:    make(chan struct{}),
	}
	now := time.Now()
	for _, p := range d.peers {
		d.lastSeen[p] = now
	}
	return d
}

// Period returns the configured heartbeat interval.
func (d *Detector) Period() time.Duration { return d.cfg.Period }

// Subscribe registers a callback for membership transitions. Callbacks run
// synchronously on the detector's sweep (or Heartbeat caller's) goroutine
// and must not block. Subscribe before Start.
func (d *Detector) Subscribe(f func(Event)) {
	d.mu.Lock()
	d.subs = append(d.subs, f)
	d.mu.Unlock()
}

// Start launches the heartbeat/sweep loop. Peers get a full suspicion
// window from Start before they can be suspected.
func (d *Detector) Start() {
	d.startOnce.Do(func() {
		d.Reset()
		d.wg.Add(1)
		go d.loop()
	})
}

// Stop terminates the loop. Safe to call more than once.
func (d *Detector) Stop() {
	d.stopOnce.Do(func() { close(d.stopCh) })
	d.wg.Wait()
}

// Reset silently clears all suspicion state and restarts every peer's
// silence clock. The kernel calls it when this node itself restarts after
// a crash: its stale arrival times would otherwise instantly suspect every
// peer that heartbeated normally while it was dead.
func (d *Detector) Reset() {
	now := time.Now()
	d.mu.Lock()
	for _, p := range d.peers {
		d.lastSeen[p] = now
	}
	d.suspected = make(map[ids.NodeID]bool)
	d.mu.Unlock()
}

// Heartbeat records a heartbeat arrival from a peer. A suspected peer
// heartbeating again triggers an up transition.
func (d *Detector) Heartbeat(from ids.NodeID) {
	if d.cfg.Metrics != nil {
		d.cfg.Metrics.Inc(metrics.CtrFDHeartbeat)
	}
	d.mu.Lock()
	if _, known := d.lastSeen[from]; !known {
		d.mu.Unlock()
		return
	}
	d.lastSeen[from] = time.Now()
	var evs []Event
	if d.suspected[from] {
		delete(d.suspected, from)
		d.gen++
		evs = append(evs, Event{Node: from, Up: true, Gen: d.gen})
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.Inc(metrics.CtrFDNodeUp)
		}
	}
	subs := d.subs
	d.mu.Unlock()
	notify(subs, evs)
}

// Suspected reports whether the detector currently believes node is down.
// The detector never suspects its own node.
func (d *Detector) Suspected(node ids.NodeID) bool {
	if node == d.self {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspected[node]
}

// View returns the detector's current membership view.
func (d *Detector) View() Membership {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := Membership{Gen: d.gen, Alive: []ids.NodeID{d.self}}
	for _, p := range d.peers {
		if d.suspected[p] {
			m.Suspected = append(m.Suspected, p)
		} else {
			m.Alive = append(m.Alive, p)
		}
	}
	sort.Slice(m.Alive, func(i, j int) bool { return m.Alive[i] < m.Alive[j] })
	sort.Slice(m.Suspected, func(i, j int) bool { return m.Suspected[i] < m.Suspected[j] })
	return m
}

func (d *Detector) loop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-ticker.C:
			if d.beat != nil {
				d.beat()
			}
			d.sweep()
		}
	}
}

// sweep declares peers whose last heartbeat is older than the suspicion
// threshold down.
func (d *Detector) sweep() {
	now := time.Now()
	var evs []Event
	d.mu.Lock()
	for _, p := range d.peers {
		if d.suspected[p] || now.Sub(d.lastSeen[p]) <= d.cfg.SuspectAfter {
			continue
		}
		d.suspected[p] = true
		d.gen++
		evs = append(evs, Event{Node: p, Up: false, Gen: d.gen})
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.Inc(metrics.CtrFDNodeDown)
		}
	}
	subs := d.subs
	d.mu.Unlock()
	notify(subs, evs)
}

func notify(subs []func(Event), evs []Event) {
	for _, ev := range evs {
		for _, f := range subs {
			f(ev)
		}
	}
}
