// Package failure implements a heartbeat-based crash-failure detector, one
// instance per node. Subscribers receive membership events and the kernel
// turns them into NODE_DOWN / NODE_UP system events — the generalization of
// the paper's §7.2 THREAD_DEATH notices from one dead thread to a whole
// dead node's worth of threads.
//
// Three monitoring topologies are supported:
//
//   - Legacy all-pairs (the zero value): every node heartbeats every peer
//     each period and sweeps every peer's arrival time. Simple, and O(n²)
//     messages per period.
//   - Ring (Config.Ring true): the live nodes form a sorted ring; each node
//     heartbeats only its ring predecessor and watches only its ring
//     successor, so steady-state heartbeat traffic is O(n) per period.
//     Detections are disseminated out-of-band by the owner (the kernel
//     sends reliable notices and feeds them back via ApplyRemote), and
//     suspected peers are probed once per suspicion window so partitions
//     heal and restarts are noticed.
//   - Gossip (Config.Gossip true, takes precedence over Ring): SWIM-style
//     randomized probing with ping-req escalation, incarnation numbers,
//     and membership dissemination piggybacked on the protocol's own
//     messages — no out-of-band notices. O(1) messages per node per
//     period and O(log n) dissemination rounds, the scale mode for
//     clusters past a few dozen nodes. See gossip.go.
//
// Independently of topology, any received message counts as liveness
// evidence (the owner feeds Observe), and explicit heartbeats/probes are
// suppressed toward peers that just proved themselves alive (the owner
// feeds ObserveSend; gossip suppresses on fresh arrivals) — an idle link
// is the only thing that still costs periodic liveness messages.
//
// The ring and all-pairs modes are deliberately simple (no incarnation
// numbers): the netsim fabric gives every pair of nodes a direct link, so
// a missing heartbeat means the peer is crashed, partitioned away, or
// badly lossy — and for the DO/CT protocols those all warrant the same
// reaction, because posts and probes toward such a node would otherwise
// hang their callers. Gossip adds incarnations because rumors outlive
// their subjects: a restart must be able to out-vote stale death notices
// still circulating.
package failure

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// DefaultPeriod is the heartbeat interval when Config.Period is zero.
// Heartbeats are cheap fabric messages, so the default favors detection
// latency over traffic.
const DefaultPeriod = 15 * time.Millisecond

// DefaultSuspectMultiple sets the suspicion threshold when
// Config.SuspectAfter is zero: a peer is suspected after this many silent
// heartbeat periods. Several consecutive heartbeats must be lost before a
// node is declared down, which gives jitter tolerance — with 10% message
// loss the false-suspicion probability per sweep is 10^-5.
const DefaultSuspectMultiple = 5

// Config parameterizes a Detector.
type Config struct {
	// Period is the heartbeat interval (0 = DefaultPeriod).
	Period time.Duration
	// SuspectAfter is how long a peer may stay silent before it is
	// declared down (0 = DefaultSuspectMultiple × Period). It must be
	// comfortably larger than Period plus fabric latency and jitter.
	SuspectAfter time.Duration
	// Ring selects ring-successor monitoring (see the package comment).
	// False keeps the legacy all-pairs topology.
	Ring bool
	// Gossip selects SWIM-style gossip membership (gossip.go) and takes
	// precedence over Ring. The owner must wire SetGossipSend and feed
	// received gossip messages to HandleGossip.
	Gossip bool
	// Seed seeds gossip's probe-order and helper-selection randomness
	// (0 = 1). Detectors mix their node ID in, so one cluster-wide seed
	// still de-correlates the per-node probe schedules while keeping a
	// seeded run replayable.
	Seed int64
	// Metrics receives heartbeat and transition accounting (nil = none).
	Metrics *metrics.Registry
	// Clock drives heartbeat periods, silence clocks and suspicion
	// windows (nil = the machine clock). A *vclock.Virtual runs detection
	// in virtual time.
	Clock vclock.Clock
}

func (c *Config) fillDefaults() {
	if c.Period <= 0 {
		c.Period = DefaultPeriod
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectMultiple * c.Period
	}
	if c.Gossip {
		c.Ring = false // gossip takes precedence; exactly one topology runs
	}
}

// Event is one membership transition observed by a detector.
type Event struct {
	Node ids.NodeID
	// Up is false for a down transition (peer fell silent), true for an up
	// transition (a suspected peer showed life again).
	Up bool
	// Gen is the observing detector's view generation after the
	// transition; it increases monotonically with every transition.
	Gen uint64
	// Remote marks transitions applied from another detector's notice
	// (ApplyRemote) rather than observed locally. The kernel disseminates
	// only local transitions, which is what keeps notices from echoing.
	Remote bool
}

// Membership is a point-in-time cluster view from one detector.
type Membership struct {
	Gen       uint64
	Alive     []ids.NodeID // self plus unsuspected peers, ascending
	Suspected []ids.NodeID // suspected peers, ascending
}

// Detector watches a peer set for crash failures. Create with New, then
// Start; the owner feeds Heartbeat/Observe as messages arrive.
type Detector struct {
	cfg   Config
	clk   vclock.Clock
	self  ids.NodeID
	peers []ids.NodeID
	ring  []ids.NodeID // self + peers, ascending (ring order)
	beat  func(to ids.NodeID)

	mu        sync.Mutex
	lastSeen  map[ids.NodeID]time.Time
	lastSent  map[ids.NodeID]time.Time // last outbound data per peer (suppression)
	lastProbe map[ids.NodeID]time.Time // last probe toward a suspected peer
	suspected map[ids.NodeID]bool
	watch     ids.NodeID // ring mode: the peer this node currently monitors
	gen       uint64
	subs      []func(Event)
	// rejoin asks the next beat round to heartbeat every peer once. Set on
	// Resume: a restarted node must announce itself to the whole cluster,
	// because its ring predecessor may itself have restarted — a fresh
	// detector that never suspected us never emits the NODE_UP transition
	// the rest of the cluster is waiting to have disseminated.
	rejoin bool

	// Gossip mode state (gossip.go), all guarded by mu. gout tracks
	// outstanding direct probes; ginc is the highest incarnation heard
	// per peer; selfInc is this node's own incarnation (bumped on restart
	// and on refuting a death rumor); gqueue holds rumors awaiting
	// piggyback transmission; gperm/gpermIdx walk the shuffled probe
	// order; gseq numbers outgoing messages.
	gsend    func(to ids.NodeID, payload []byte)
	grng     *rand.Rand
	gperm    []ids.NodeID
	gpermIdx int
	gout     map[ids.NodeID]*gossipProbe
	ginc     map[ids.NodeID]uint32
	selfInc  uint32
	gqueue   []gossipItem
	gseq     uint32

	// paused freezes beats, sweeps and probes while this node simulates
	// being crashed (fail-stop realism: a dead node emits nothing and
	// suspects nobody).
	paused atomic.Bool

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// New builds a detector for self watching peers. beat is called to send one
// heartbeat message to one peer (nil for tests that drive Heartbeat
// directly): every peer each period in all-pairs mode, the ring predecessor
// in ring mode, plus probes toward suspected peers.
func New(cfg Config, self ids.NodeID, peers []ids.NodeID, beat func(to ids.NodeID)) *Detector {
	cfg.fillDefaults()
	d := &Detector{
		cfg:       cfg,
		clk:       vclock.Or(cfg.Clock),
		self:      self,
		peers:     append([]ids.NodeID(nil), peers...),
		beat:      beat,
		lastSeen:  make(map[ids.NodeID]time.Time, len(peers)),
		lastSent:  make(map[ids.NodeID]time.Time, len(peers)),
		lastProbe: make(map[ids.NodeID]time.Time),
		suspected: make(map[ids.NodeID]bool),
		stopCh:    make(chan struct{}),
	}
	d.ring = append(append([]ids.NodeID(nil), peers...), self)
	sort.Slice(d.ring, func(i, j int) bool { return d.ring[i] < d.ring[j] })
	now := d.clk.Now()
	for _, p := range d.peers {
		d.lastSeen[p] = now
	}
	if d.cfg.Gossip {
		d.initGossipLocked()
	}
	d.recomputeWatchLocked(now)
	return d
}

// Period returns the configured heartbeat interval.
func (d *Detector) Period() time.Duration { return d.cfg.Period }

// Subscribe registers a callback for membership transitions. Callbacks run
// synchronously on the detector's sweep (or observation caller's) goroutine
// and must not block. Subscribe before Start.
func (d *Detector) Subscribe(f func(Event)) {
	d.mu.Lock()
	d.subs = append(d.subs, f)
	d.mu.Unlock()
}

// Start launches the heartbeat/sweep loop. Peers get a full suspicion
// window from Start before they can be suspected.
func (d *Detector) Start() {
	d.startOnce.Do(func() {
		d.Reset()
		d.wg.Add(1)
		go d.loop()
	})
}

// Stop terminates the loop. Safe to call more than once.
func (d *Detector) Stop() {
	d.stopOnce.Do(func() { close(d.stopCh) })
	d.wg.Wait()
}

// Reset silently clears all suspicion state and restarts every peer's
// silence clock. The kernel calls it (via Resume) when this node itself
// restarts after a crash: its stale arrival times would otherwise instantly
// suspect every peer that heartbeated normally while it was dead.
func (d *Detector) Reset() {
	now := d.clk.Now()
	d.mu.Lock()
	for _, p := range d.peers {
		d.lastSeen[p] = now
	}
	d.suspected = make(map[ids.NodeID]bool)
	d.lastProbe = make(map[ids.NodeID]time.Time)
	if d.gout != nil {
		// Gossip: outstanding probes and queued rumors predate the reset
		// and would instantly re-suspect peers or spread stale facts.
		// Incarnations are kept — higher-wins makes them safe, and
		// forgetting them would let old death rumors re-apply.
		d.gout = make(map[ids.NodeID]*gossipProbe)
		d.gqueue = nil
		d.reshufflePermLocked()
	}
	d.recomputeWatchLocked(now)
	d.mu.Unlock()
}

// Suspend freezes the detector while its node simulates a crash: a
// fail-stopped node sends no heartbeats, probes nothing, and raises no
// suspicions. State is kept; Resume clears it.
func (d *Detector) Suspend() { d.paused.Store(true) }

// Resume reverses Suspend for a restarted node: suspicion state and
// silence clocks reset, then the loop runs again.
func (d *Detector) Resume() {
	d.Reset()
	d.mu.Lock()
	d.rejoin = true
	if d.ginc != nil {
		// A restarted node re-enters at a fresh incarnation so its alive
		// announcement out-votes any death rumor still circulating from
		// the crash it just recovered from.
		d.selfInc++
		d.enqueueUpdateLocked(Update{Node: d.self, Up: true, Inc: d.selfInc})
	}
	d.mu.Unlock()
	d.paused.Store(false)
}

// Heartbeat records an explicit heartbeat arrival from a peer. A suspected
// peer heartbeating again triggers an up transition.
func (d *Detector) Heartbeat(from ids.NodeID) {
	if d.cfg.Metrics != nil {
		d.cfg.Metrics.Inc(metrics.CtrFDHeartbeat)
	}
	d.Observe(from)
}

// Observe records liveness evidence for a peer from any received message —
// data traffic proves the sender alive just as well as a heartbeat. A
// suspected peer showing life triggers an up transition.
func (d *Detector) Observe(from ids.NodeID) {
	d.mu.Lock()
	if _, known := d.lastSeen[from]; !known {
		d.mu.Unlock()
		return
	}
	now := d.clk.Now()
	d.lastSeen[from] = now
	if d.gout != nil {
		// Gossip: any arrival is an implicit ack for an outstanding probe.
		delete(d.gout, from)
	}
	var evs []Event
	if d.suspected[from] {
		delete(d.suspected, from)
		d.gen++
		evs = append(evs, Event{Node: from, Up: true, Gen: d.gen})
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.Inc(metrics.CtrFDNodeUp)
		}
		if d.ginc != nil {
			// Direct observation out-votes the death rumor we believed:
			// bump the peer's known incarnation and gossip it alive (the
			// documented deviation from strict SWIM; the peer's own
			// refutation, if any, always carries a higher incarnation
			// still and wins).
			d.ginc[from]++
			d.enqueueUpdateLocked(Update{Node: from, Up: true, Inc: d.ginc[from]})
		}
		d.recomputeWatchLocked(now)
	}
	subs := d.subs
	d.mu.Unlock()
	notify(subs, evs)
}

// ObserveSend records that a data message just left for a peer: that
// message is liveness evidence at the receiver, so the next explicit
// heartbeat toward the peer is unnecessary and will be suppressed.
// Heartbeats themselves are never recorded here — suppression must not
// feed on its own output.
func (d *Detector) ObserveSend(to ids.NodeID) {
	d.mu.Lock()
	if _, known := d.lastSeen[to]; known {
		d.lastSent[to] = d.clk.Now()
	}
	d.mu.Unlock()
}

// ApplyRemote applies a membership transition disseminated by another
// detector. Transitions about this node itself are ignored (it is plainly
// alive); already-known state is idempotent. Resulting events carry
// Remote=true so the owner does not re-disseminate them.
func (d *Detector) ApplyRemote(node ids.NodeID, up bool) {
	if node == d.self {
		return
	}
	d.mu.Lock()
	if _, known := d.lastSeen[node]; !known {
		d.mu.Unlock()
		return
	}
	now := d.clk.Now()
	var evs []Event
	switch {
	case !up && !d.suspected[node]:
		d.suspected[node] = true
		d.gen++
		evs = append(evs, Event{Node: node, Up: false, Gen: d.gen, Remote: true})
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.Inc(metrics.CtrFDNodeDown)
		}
		d.recomputeWatchLocked(now)
	case up && d.suspected[node]:
		delete(d.suspected, node)
		d.lastSeen[node] = now
		d.gen++
		evs = append(evs, Event{Node: node, Up: true, Gen: d.gen, Remote: true})
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.Inc(metrics.CtrFDNodeUp)
		}
		d.recomputeWatchLocked(now)
	}
	subs := d.subs
	d.mu.Unlock()
	notify(subs, evs)
}

// Suspected reports whether the detector currently believes node is down.
// The detector never suspects its own node.
func (d *Detector) Suspected(node ids.NodeID) bool {
	if node == d.self {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspected[node]
}

// Watching returns the peer this detector currently monitors in ring mode
// (NoNode when alone or in all-pairs mode, where every peer is watched).
func (d *Detector) Watching() ids.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.watch
}

// View returns the detector's current membership view.
func (d *Detector) View() Membership {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := Membership{Gen: d.gen, Alive: []ids.NodeID{d.self}}
	for _, p := range d.peers {
		if d.suspected[p] {
			m.Suspected = append(m.Suspected, p)
		} else {
			m.Alive = append(m.Alive, p)
		}
	}
	sort.Slice(m.Alive, func(i, j int) bool { return m.Alive[i] < m.Alive[j] })
	sort.Slice(m.Suspected, func(i, j int) bool { return m.Suspected[i] < m.Suspected[j] })
	return m
}

// recomputeWatchLocked re-derives the ring watch target: the first
// unsuspected peer after self in ring order. A watch change grants the new
// target a fresh silence clock — it was not responsible for heartbeating us
// until now. Caller holds d.mu.
func (d *Detector) recomputeWatchLocked(now time.Time) {
	if !d.cfg.Ring {
		return
	}
	prev := d.watch
	d.watch = d.succLocked()
	if d.watch != prev && d.watch != ids.NoNode {
		d.lastSeen[d.watch] = now
	}
}

// succLocked finds the live ring successor of self (NoNode when alone).
func (d *Detector) succLocked() ids.NodeID {
	n := len(d.ring)
	start := 0
	for i, id := range d.ring {
		if id == d.self {
			start = i
			break
		}
	}
	for i := 1; i < n; i++ {
		cand := d.ring[(start+i)%n]
		if cand != d.self && !d.suspected[cand] {
			return cand
		}
	}
	return ids.NoNode
}

// predLocked finds the live ring predecessor of self (NoNode when alone).
// Consistency with succLocked is what makes the ring sound: x watches
// succ(x), and succ(x)'s beat target pred(succ(x)) is x.
func (d *Detector) predLocked() ids.NodeID {
	n := len(d.ring)
	start := 0
	for i, id := range d.ring {
		if id == d.self {
			start = i
			break
		}
	}
	for i := 1; i < n; i++ {
		cand := d.ring[(start-i%n+n)%n]
		if cand != d.self && !d.suspected[cand] {
			return cand
		}
	}
	return ids.NoNode
}

func (d *Detector) loop() {
	defer d.wg.Done()
	ticker := d.clk.NewTicker(d.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-ticker.C:
			if d.paused.Load() {
				continue
			}
			if d.cfg.Gossip {
				d.gossipTick()
				continue
			}
			d.emitBeats()
			d.sweep()
		}
	}
}

// emitBeats sends this period's heartbeats. Legacy all-pairs mode beats
// every peer unconditionally — byte-for-byte what the old per-period
// broadcast did. Ring mode beats only the live ring predecessor, skips
// even that when outbound data just proved us alive (suppression), and
// adds one probe per suspicion window toward each suspected peer so a
// healed partition or restarted node is rediscovered.
func (d *Detector) emitBeats() {
	if d.beat == nil {
		return
	}
	now := d.clk.Now()
	var out []ids.NodeID
	d.mu.Lock()
	if !d.cfg.Ring {
		out = append(out, d.peers...)
	} else if d.rejoin {
		// Rejoin announcement: one full round so every peer that still
		// suspects this node observes it alive and disseminates the up
		// transition (see the rejoin field).
		d.rejoin = false
		out = append(out, d.peers...)
	} else {
		if p := d.predLocked(); p != ids.NoNode {
			if now.Sub(d.lastSent[p]) < d.cfg.Period {
				if d.cfg.Metrics != nil {
					d.cfg.Metrics.Inc(metrics.CtrFDSuppressed)
				}
			} else {
				out = append(out, p)
			}
		}
		// Probing: a suspected peer hears from us once per suspicion
		// window. If it is actually alive (partition healed, node
		// restarted), our probe is liveness evidence at its end; its
		// detector up-transitions us and traffic starts flowing back.
		for p := range d.suspected {
			if now.Sub(d.lastProbe[p]) >= d.cfg.SuspectAfter {
				d.lastProbe[p] = now
				out = append(out, p)
			}
		}
	}
	d.mu.Unlock()
	for _, t := range out {
		d.beat(t)
	}
}

// sweep declares silent peers down: every peer in all-pairs mode, only the
// watch target in ring mode (other peers are someone else's watch; their
// deaths arrive via ApplyRemote).
func (d *Detector) sweep() {
	now := d.clk.Now()
	var evs []Event
	d.mu.Lock()
	candidates := d.peers
	if d.cfg.Ring {
		candidates = candidates[:0:0]
		if d.watch != ids.NoNode {
			candidates = append(candidates, d.watch)
		}
	}
	for _, p := range candidates {
		if d.suspected[p] || now.Sub(d.lastSeen[p]) <= d.cfg.SuspectAfter {
			continue
		}
		d.suspected[p] = true
		d.gen++
		evs = append(evs, Event{Node: p, Up: false, Gen: d.gen})
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.Inc(metrics.CtrFDNodeDown)
		}
	}
	if len(evs) > 0 {
		d.recomputeWatchLocked(now)
	}
	subs := d.subs
	d.mu.Unlock()
	notify(subs, evs)
}

func notify(subs []func(Event), evs []Event) {
	for _, ev := range evs {
		for _, f := range subs {
			f(ev)
		}
	}
}
