package failure

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
)

func TestGossipCodecRoundTrip(t *testing.T) {
	msgs := []GossipMsg{
		{Type: GossipPing, Seq: 1, Origin: 1},
		{Type: GossipAck, Seq: 7, Origin: 3},
		{Type: GossipPingReq, Seq: 1 << 20, Origin: 2, Subject: 9},
		{Type: GossipPing, Seq: 42, Origin: 1, Updates: []Update{
			{Node: 2, Up: false, Inc: 0},
			{Node: 300, Up: true, Inc: 1 << 30},
		}},
	}
	for _, m := range msgs {
		b := m.Encode()
		got, err := DecodeGossip(b)
		if err != nil {
			t.Fatalf("decode(%+v): %v", m, err)
		}
		if re := got.Encode(); !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, b)
		}
		if got.Type != m.Type || got.Seq != m.Seq || got.Origin != m.Origin || got.Subject != m.Subject || len(got.Updates) != len(m.Updates) {
			t.Fatalf("round-trip: got %+v want %+v", got, m)
		}
		for i := range m.Updates {
			if got.Updates[i] != m.Updates[i] {
				t.Fatalf("update %d: got %+v want %+v", i, got.Updates[i], m.Updates[i])
			}
		}
	}
}

func TestGossipCodecRejectsMalformed(t *testing.T) {
	good := (&GossipMsg{Type: GossipPing, Seq: 9, Origin: 1, Updates: []Update{{Node: 2, Up: true, Inc: 3}}}).Encode()
	cases := map[string][]byte{
		"empty":           {},
		"bad type":        {9, 0, 1, 0, 0},
		"truncated":       good[:len(good)-1],
		"trailing":        append(append([]byte(nil), good...), 0),
		"padded varint":   {0, 0x89, 0x00, 1, 0, 0}, // seq = 9 encoded in two bytes
		"bad up byte":     {0, 9, 1, 0, 1, 2, 7, 3},
		"update overflow": {0, 9, 1, 0, 0xFF & 200}, // count=200 > MaxGossipUpdates
	}
	for name, b := range cases {
		if _, err := DecodeGossip(b); err == nil {
			t.Errorf("%s: decoder accepted %x", name, b)
		}
	}
}

// gossipMesh wires n gossip detectors together with synchronous
// in-memory delivery plus crash/cut fault injection.
type gossipMesh struct {
	mu   sync.Mutex
	dets map[ids.NodeID]*Detector
	down map[ids.NodeID]bool
	cut  map[[2]ids.NodeID]bool
}

func newGossipMesh(n int, period, suspect time.Duration) *gossipMesh {
	m := &gossipMesh{
		dets: make(map[ids.NodeID]*Detector),
		down: make(map[ids.NodeID]bool),
		cut:  make(map[[2]ids.NodeID]bool),
	}
	nodes := make([]ids.NodeID, n)
	for i := range nodes {
		nodes[i] = ids.NodeID(i + 1)
	}
	for _, self := range nodes {
		var peers []ids.NodeID
		for _, p := range nodes {
			if p != self {
				peers = append(peers, p)
			}
		}
		d := New(Config{Period: period, SuspectAfter: suspect, Gossip: true, Seed: 42}, self, peers, nil)
		from := self
		d.SetGossipSend(func(to ids.NodeID, payload []byte) { m.deliver(from, to, payload) })
		m.dets[self] = d
	}
	return m
}

func (m *gossipMesh) deliver(from, to ids.NodeID, payload []byte) {
	m.mu.Lock()
	blocked := m.down[from] || m.down[to] || m.cut[[2]ids.NodeID{from, to}]
	d := m.dets[to]
	m.mu.Unlock()
	if blocked || d == nil {
		return
	}
	d.HandleGossip(from, payload)
}

func (m *gossipMesh) start() {
	for _, d := range m.dets {
		d.Start()
	}
}

func (m *gossipMesh) stop() {
	for _, d := range m.dets {
		d.Stop()
	}
}

func (m *gossipMesh) crash(n ids.NodeID) {
	m.mu.Lock()
	m.down[n] = true
	m.mu.Unlock()
	m.dets[n].Suspend()
}

func (m *gossipMesh) restart(n ids.NodeID) {
	m.mu.Lock()
	delete(m.down, n)
	m.mu.Unlock()
	m.dets[n].Resume()
}

// TestGossipSuspectsCrashedPeer: a fail-stopped node is detected by every
// live peer — locally by some, via piggybacked dissemination by the rest.
func TestGossipSuspectsCrashedPeer(t *testing.T) {
	m := newGossipMesh(5, 3*time.Millisecond, 15*time.Millisecond)
	m.start()
	defer m.stop()
	m.crash(5)
	waitFor(t, "all live peers suspect node 5", func() bool {
		for n, d := range m.dets {
			if n == 5 {
				continue
			}
			if !d.Suspected(5) {
				return false
			}
		}
		return true
	})
	for n, d := range m.dets {
		if n == 5 {
			continue
		}
		for _, p := range []ids.NodeID{1, 2, 3, 4} {
			if p != n && d.Suspected(p) {
				t.Errorf("node %v falsely suspects live node %v", n, p)
			}
		}
	}
}

// TestGossipRejoin: a restarted node announces itself at a bumped
// incarnation and every peer up-transitions it.
func TestGossipRejoin(t *testing.T) {
	m := newGossipMesh(4, 3*time.Millisecond, 15*time.Millisecond)
	m.start()
	defer m.stop()
	m.crash(4)
	waitFor(t, "node 4 suspected", func() bool {
		return m.dets[1].Suspected(4) && m.dets[2].Suspected(4) && m.dets[3].Suspected(4)
	})
	m.restart(4)
	waitFor(t, "node 4 revived everywhere", func() bool {
		return !m.dets[1].Suspected(4) && !m.dets[2].Suspected(4) && !m.dets[3].Suspected(4)
	})
	if inc := m.dets[4].SelfIncarnation(); inc == 0 {
		t.Error("restarted node did not bump its incarnation")
	}
}

// TestGossipIndirectProbe: when the direct link to a peer is cut but
// helpers can still reach it, ping-req relays keep it alive — the probe
// origin never suspects it.
func TestGossipIndirectProbe(t *testing.T) {
	m := newGossipMesh(4, 3*time.Millisecond, 21*time.Millisecond)
	// Sever 1<->3 both ways; 2 and 4 can relay.
	m.mu.Lock()
	m.cut[[2]ids.NodeID{1, 3}] = true
	m.cut[[2]ids.NodeID{3, 1}] = true
	m.mu.Unlock()
	m.start()
	defer m.stop()
	time.Sleep(120 * time.Millisecond)
	if m.dets[1].Suspected(3) {
		t.Error("node 1 suspects node 3 despite working indirect path")
	}
	if m.dets[3].Suspected(1) {
		t.Error("node 3 suspects node 1 despite working indirect path")
	}
}

// TestGossipRefutesDeathRumor: a node hearing it is believed dead bumps
// its incarnation and queues an alive refutation.
func TestGossipRefutesDeathRumor(t *testing.T) {
	d := New(Config{Period: time.Hour, SuspectAfter: 2 * time.Hour, Gossip: true}, 3, []ids.NodeID{1, 2}, nil)
	rumor := &GossipMsg{Type: GossipAck, Seq: 1, Origin: 1, Subject: 1, Updates: []Update{{Node: 3, Up: false, Inc: 0}}}
	d.HandleGossip(1, rumor.Encode())
	if inc := d.SelfIncarnation(); inc != 1 {
		t.Fatalf("SelfIncarnation = %d, want 1 (rumor at inc 0 refuted)", inc)
	}
	d.mu.Lock()
	var queued *Update
	for i := range d.gqueue {
		if d.gqueue[i].upd.Node == 3 {
			queued = &d.gqueue[i].upd
		}
	}
	d.mu.Unlock()
	if queued == nil || !queued.Up || queued.Inc != 1 {
		t.Fatalf("refutation not queued: %+v", queued)
	}
	// A stale rumor about the old incarnation changes nothing further.
	d.HandleGossip(1, rumor.Encode())
	if inc := d.SelfIncarnation(); inc != 1 {
		t.Fatalf("SelfIncarnation = %d after stale rumor, want 1", inc)
	}
}

// TestGossipRumorRevival: believers of a false death rumor revert once
// liveness evidence arrives (directly or via the subject's refutation).
func TestGossipRumorRevival(t *testing.T) {
	m := newGossipMesh(3, 3*time.Millisecond, 15*time.Millisecond)
	m.start()
	defer m.stop()
	rumor := &GossipMsg{Type: GossipAck, Seq: 1, Origin: 2, Subject: 2, Updates: []Update{{Node: 3, Up: false, Inc: 0}}}
	m.dets[1].HandleGossip(2, rumor.Encode())
	waitFor(t, "node 3 revived at node 1", func() bool { return !m.dets[1].Suspected(3) })
	waitFor(t, "node 3 revived at node 2", func() bool { return !m.dets[2].Suspected(3) })
}

// TestGossipEventsMonotonic: generations in emitted events only increase.
func TestGossipEventsMonotonic(t *testing.T) {
	m := newGossipMesh(3, 3*time.Millisecond, 15*time.Millisecond)
	events := collect(m.dets[1])
	m.start()
	defer m.stop()
	m.crash(3)
	waitFor(t, "down event", func() bool { return m.dets[1].Suspected(3) })
	m.restart(3)
	waitFor(t, "up event", func() bool { return !m.dets[1].Suspected(3) })
	evs := events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Gen <= evs[i-1].Gen {
			t.Fatalf("generation regressed: %+v", evs)
		}
	}
}

// TestGossipIncarnationOrder: stale rumors lose — a lower-incarnation
// down update must not override a higher-incarnation alive.
func TestGossipIncarnationOrder(t *testing.T) {
	d := New(Config{Period: time.Hour, SuspectAfter: 2 * time.Hour, Gossip: true}, 1, []ids.NodeID{2, 3}, nil)
	alive := &GossipMsg{Type: GossipAck, Seq: 1, Origin: 3, Updates: []Update{{Node: 2, Up: true, Inc: 5}}}
	d.HandleGossip(3, alive.Encode())
	stale := &GossipMsg{Type: GossipAck, Seq: 2, Origin: 3, Updates: []Update{{Node: 2, Up: false, Inc: 4}}}
	d.HandleGossip(3, stale.Encode())
	if d.Suspected(2) {
		t.Error("stale lower-incarnation down rumor applied")
	}
	fresh := &GossipMsg{Type: GossipAck, Seq: 3, Origin: 3, Updates: []Update{{Node: 2, Up: false, Inc: 5}}}
	d.HandleGossip(3, fresh.Encode())
	if !d.Suspected(2) {
		t.Error("equal-incarnation down rumor should win over alive")
	}
}
