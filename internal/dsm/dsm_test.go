package dsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// loopback wires managers together directly, counting calls per kind.
type loopback struct {
	mu       sync.Mutex
	managers map[ids.NodeID]*Manager
	calls    map[string]int
}

func newLoopback() *loopback {
	return &loopback{
		managers: make(map[ids.NodeID]*Manager),
		calls:    make(map[string]int),
	}
}

// peer is the per-node view of the loopback.
type peer struct {
	lb   *loopback
	node ids.NodeID
}

func (p *peer) Call(to ids.NodeID, kind string, req any) (any, error) {
	p.lb.mu.Lock()
	p.lb.calls[kind]++
	m, ok := p.lb.managers[to]
	p.lb.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("loopback: no manager at %v", to)
	}
	return m.HandleRequest(kind, req)
}

func (lb *loopback) callCount(kind string) int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.calls[kind]
}

// cluster builds n managers with a shared loopback transport.
func cluster(t *testing.T, n, pageSize int) (*loopback, []*Manager) {
	t.Helper()
	lb := newLoopback()
	mgrs := make([]*Manager, n)
	for i := 0; i < n; i++ {
		node := ids.NodeID(i + 1)
		m := NewManager(Config{
			Node:      node,
			PageSize:  pageSize,
			Transport: &peer{lb: lb, node: node},
			Metrics:   metrics.NewRegistry(),
		})
		lb.managers[node] = m
		mgrs[i] = m
	}
	return lb, mgrs
}

func TestCreateSegmentValidation(t *testing.T) {
	_, mgrs := cluster(t, 2, 64)
	if _, err := mgrs[0].CreateSegment(ids.NewSegmentID(2, 1), 128, false); err == nil {
		t.Error("CreateSegment for foreign home succeeded")
	}
	if _, err := mgrs[0].CreateSegment(ids.NewSegmentID(1, 1), 0, false); err == nil {
		t.Error("CreateSegment with size 0 succeeded")
	}
	seg := ids.NewSegmentID(1, 2)
	if _, err := mgrs[0].CreateSegment(seg, 128, false); err != nil {
		t.Fatal(err)
	}
	if _, err := mgrs[0].CreateSegment(seg, 128, false); err == nil {
		t.Error("duplicate CreateSegment succeeded")
	}
}

func TestMetaPages(t *testing.T) {
	cases := []struct {
		size, pageSize, want int
	}{
		{100, 64, 2},
		{128, 64, 2},
		{129, 64, 3},
		{1, 64, 1},
	}
	for _, tc := range cases {
		m := Meta{Size: tc.size, PageSize: tc.pageSize}
		if got := m.Pages(); got != tc.want {
			t.Errorf("Pages(size=%d,ps=%d) = %d, want %d", tc.size, tc.pageSize, got, tc.want)
		}
	}
}

func TestLocalReadWrite(t *testing.T) {
	_, mgrs := cluster(t, 1, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 256, false); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello dsm world")
	if err := mgrs[0].Write(seg, 10, data); err != nil {
		t.Fatal(err)
	}
	got, err := mgrs[0].Read(seg, 10, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, want %q", got, data)
	}
}

func TestReadSpanningPages(t *testing.T) {
	_, mgrs := cluster(t, 1, 16)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 50)
	for i := range data {
		data[i] = byte(i)
	}
	if err := mgrs[0].Write(seg, 5, data); err != nil {
		t.Fatal(err)
	}
	got, err := mgrs[0].Read(seg, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-page Read mismatch")
	}
}

func TestOutOfRange(t *testing.T) {
	_, mgrs := cluster(t, 1, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 100, false); err != nil {
		t.Fatal(err)
	}
	if _, err := mgrs[0].Read(seg, 90, 20); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Read past end err = %v, want ErrOutOfRange", err)
	}
	if _, err := mgrs[0].Read(seg, -1, 5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative Read err = %v", err)
	}
	if err := mgrs[0].Write(seg, 95, make([]byte, 10)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Write past end err = %v, want ErrOutOfRange", err)
	}
}

func TestUnknownSegment(t *testing.T) {
	_, mgrs := cluster(t, 1, 64)
	if _, err := mgrs[0].Read(ids.NewSegmentID(1, 9), 0, 1); !errors.Is(err, ErrUnknownSegment) {
		t.Errorf("err = %v, want ErrUnknownSegment", err)
	}
}

func TestRemoteReadFetchesFromHome(t *testing.T) {
	lb, mgrs := cluster(t, 2, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 128, false); err != nil {
		t.Fatal(err)
	}
	if err := mgrs[0].Write(seg, 0, []byte("remote")); err != nil {
		t.Fatal(err)
	}
	got, err := mgrs[1].Read(seg, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "remote" {
		t.Fatalf("remote Read = %q", got)
	}
	if lb.callCount(MsgMeta) != 1 {
		t.Errorf("meta calls = %d, want 1", lb.callCount(MsgMeta))
	}
	if lb.callCount(MsgRead) != 1 {
		t.Errorf("read calls = %d, want 1", lb.callCount(MsgRead))
	}

	// Second read hits the local cache: no more protocol traffic.
	before := lb.callCount(MsgRead)
	if _, err := mgrs[1].Read(seg, 0, 6); err != nil {
		t.Fatal(err)
	}
	if lb.callCount(MsgRead) != before {
		t.Error("cached read went to the network")
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	lb, mgrs := cluster(t, 3, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := mgrs[0].Write(seg, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Nodes 2 and 3 read, acquiring shared copies.
	for _, m := range mgrs[1:] {
		if got, err := m.Read(seg, 0, 1); err != nil || got[0] != 1 {
			t.Fatalf("Read = %v, %v", got, err)
		}
	}
	// Node 2 writes: node 3's copy must be invalidated.
	if err := mgrs[1].Write(seg, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if lb.callCount(MsgInv) == 0 {
		t.Error("no invalidations sent on write fault")
	}
	if got, err := mgrs[2].Read(seg, 0, 1); err != nil || got[0] != 2 {
		t.Fatalf("node3 read stale data: %v, %v", got, err)
	}
	if got, err := mgrs[0].Read(seg, 0, 1); err != nil || got[0] != 2 {
		t.Fatalf("home read stale data: %v, %v", got, err)
	}
}

func TestOwnershipMigratesToWriter(t *testing.T) {
	lb, mgrs := cluster(t, 2, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := mgrs[1].Write(seg, 0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	// Node 2 now owns the page exclusively: further writes are local.
	before := lb.callCount(MsgWrite)
	for i := 0; i < 10; i++ {
		if err := mgrs[1].Write(seg, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if lb.callCount(MsgWrite) != before {
		t.Error("exclusive owner still write-faulting to home")
	}
	// Home reading must pull the page back from the new owner.
	got, err := mgrs[0].Read(seg, 0, 1)
	if err != nil || got[0] != 7 {
		t.Fatalf("home Read = %v, %v", got, err)
	}
	if lb.callCount(MsgDegrade) == 0 {
		t.Error("home read did not degrade the remote owner")
	}
}

func TestSharedUpgradeNeedsNoData(t *testing.T) {
	lb, mgrs := cluster(t, 2, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := mgrs[0].Write(seg, 0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgrs[1].Read(seg, 0, 4); err != nil {
		t.Fatal(err)
	}
	// Node 2 holds a shared copy; upgrading to write must preserve the
	// rest of the page.
	if err := mgrs[1].Write(seg, 0, []byte{'X'}); err != nil {
		t.Fatal(err)
	}
	got, err := mgrs[1].Read(seg, 0, 4)
	if err != nil || string(got) != "Xbcd" {
		t.Fatalf("after upgrade, Read = %q, %v", got, err)
	}
	if got, err := mgrs[0].Read(seg, 0, 4); err != nil || string(got) != "Xbcd" {
		t.Fatalf("home sees %q, %v", got, err)
	}
	_ = lb
}

func TestSequentialConsistencySingleWriter(t *testing.T) {
	// With a single writer and many readers, every reader eventually sees
	// the final value and never sees values out of order going backwards
	// after a fresh fault.
	_, mgrs := cluster(t, 4, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	for v := byte(1); v <= 20; v++ {
		if err := mgrs[0].Write(seg, 0, []byte{v}); err != nil {
			t.Fatal(err)
		}
		for _, m := range mgrs[1:] {
			got, err := m.Read(seg, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != v {
				t.Fatalf("reader saw %d after writer stored %d", got[0], v)
			}
		}
	}
}

func TestConcurrentWritersDistinctPages(t *testing.T) {
	_, mgrs := cluster(t, 4, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64*4, false); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, m := range mgrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			off := i * 64
			for v := 0; v < 50; v++ {
				if err := m.Write(seg, off, []byte{byte(v)}); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := range mgrs {
		got, err := mgrs[0].Read(seg, i*64, 1)
		if err != nil || got[0] != 49 {
			t.Fatalf("page %d final = %v, %v", i, got, err)
		}
	}
}

func TestConcurrentWritersSamePageNoLostFinalState(t *testing.T) {
	_, mgrs := cluster(t, 3, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	// Each manager writes to its own byte of a single page, concurrently.
	var wg sync.WaitGroup
	for i, m := range mgrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 1; v <= 30; v++ {
				if err := m.Write(seg, i, []byte{byte(v)}); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := mgrs[1].Read(seg, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 30 {
			t.Fatalf("byte %d = %d, want 30 (lost update under contention)", i, b)
		}
	}
}

func TestUserPagedFaultGoesToPager(t *testing.T) {
	_, mgrs := cluster(t, 2, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 128, true); err != nil {
		t.Fatal(err)
	}
	var faults []int
	mgrs[0].SetUserFaultHandler(func(s ids.SegmentID, page int, write bool) ([]byte, error) {
		faults = append(faults, page)
		data := make([]byte, 64)
		data[0] = byte(100 + page)
		return data, nil
	})
	got, err := mgrs[0].Read(seg, 0, 1)
	if err != nil || got[0] != 100 {
		t.Fatalf("Read = %v, %v", got, err)
	}
	got, err = mgrs[0].Read(seg, 64, 1)
	if err != nil || got[0] != 101 {
		t.Fatalf("Read page1 = %v, %v", got, err)
	}
	if len(faults) != 2 {
		t.Fatalf("pager saw %v faults, want [0 1]", faults)
	}
	// Cached after install: no further faults.
	if _, err := mgrs[0].Read(seg, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 {
		t.Fatal("cached user page refaulted")
	}
}

func TestUserPagedNoPager(t *testing.T) {
	_, mgrs := cluster(t, 1, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, true); err != nil {
		t.Fatal(err)
	}
	if _, err := mgrs[0].Read(seg, 0, 1); !errors.Is(err, ErrNoPager) {
		t.Fatalf("err = %v, want ErrNoPager", err)
	}
}

func TestInstallAndDropPage(t *testing.T) {
	_, mgrs := cluster(t, 2, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, true); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 64)
	page[0] = 42
	if err := mgrs[0].InstallPage(seg, 0, page); err != nil {
		t.Fatal(err)
	}
	got, ok := mgrs[0].CachedPage(seg, 0)
	if !ok || got[0] != 42 {
		t.Fatalf("CachedPage = %v, %v", got, ok)
	}
	// Reads served from the installed page with no pager.
	if v, err := mgrs[0].Read(seg, 0, 1); err != nil || v[0] != 42 {
		t.Fatalf("Read = %v, %v", v, err)
	}
	if err := mgrs[0].DropPage(seg, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := mgrs[0].CachedPage(seg, 0); ok {
		t.Fatal("page cached after DropPage")
	}
}

func TestInstallPageOnKernelSegmentFails(t *testing.T) {
	_, mgrs := cluster(t, 1, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := mgrs[0].InstallPage(seg, 0, make([]byte, 64)); err == nil {
		t.Fatal("InstallPage on kernel segment succeeded")
	}
	if err := mgrs[0].DropPage(seg, 0); err != nil {
		t.Fatal(err) // DropPage is allowed anywhere
	}
}

func TestHandleRequestBadPayloads(t *testing.T) {
	_, mgrs := cluster(t, 1, 64)
	for _, kind := range []string{MsgMeta, MsgRead, MsgWrite, MsgDegrade, MsgTake, MsgInv} {
		if _, err := mgrs[0].HandleRequest(kind, "garbage"); !errors.Is(err, ErrBadRequest) {
			t.Errorf("HandleRequest(%s, garbage) err = %v, want ErrBadRequest", kind, err)
		}
	}
	if _, err := mgrs[0].HandleRequest("nope", nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown kind err = %v, want ErrBadRequest", err)
	}
}

func TestFaultCountersAdvance(t *testing.T) {
	lb, mgrs := cluster(t, 2, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	_ = lb
	reg2 := metrics.NewRegistry()
	// Rebuild node 2 with a fresh registry to count its faults precisely.
	m2 := NewManager(Config{Node: 2, PageSize: 64, Transport: &peer{lb: lb, node: 2}, Metrics: reg2})
	lb.mu.Lock()
	lb.managers[2] = m2
	lb.mu.Unlock()

	if _, err := m2.Read(seg, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Get(metrics.CtrPageFault); got != 1 {
		t.Errorf("fault counter = %d, want 1", got)
	}
}

// Property: writing arbitrary data at arbitrary offsets then reading it
// back returns exactly what was written (single node).
func TestWriteReadRoundTripProperty(t *testing.T) {
	_, mgrs := cluster(t, 1, 32)
	seg := ids.NewSegmentID(1, 1)
	const size = 1024
	if _, err := mgrs[0].CreateSegment(seg, size, false); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		o := int(off) % size
		if o+len(data) > size {
			if len(data) > size {
				data = data[:size]
			}
			o = size - len(data)
		}
		if err := mgrs[0].Write(seg, o, data); err != nil {
			return false
		}
		got, err := mgrs[0].Read(seg, o, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPageReplyWireSize(t *testing.T) {
	r := PageReply{Data: make([]byte, 100)}
	if r.WireSize() != 116 {
		t.Errorf("WireSize = %d, want 116", r.WireSize())
	}
}

func TestWriteUpgradeRelinquishesRemoteOwner(t *testing.T) {
	// Build the state where the writer already holds a shared copy and the
	// owner is a third (remote) node: the directory must make that owner
	// relinquish without a data transfer.
	lb, mgrs := cluster(t, 3, 64)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 64, false); err != nil {
		t.Fatal(err)
	}
	// Node 2 writes: ownership moves to node 2.
	if err := mgrs[1].Write(seg, 0, []byte{5}); err != nil {
		t.Fatal(err)
	}
	// Node 3 reads: shared copy at node 3, owner still node 2.
	if got, err := mgrs[2].Read(seg, 0, 1); err != nil || got[0] != 5 {
		t.Fatalf("read = %v, %v", got, err)
	}
	// Node 3 writes: it has a current shared copy, so no data transfer is
	// needed, but node 2 (owner) must drop its copy.
	invBefore := lb.callCount(MsgInv)
	if err := mgrs[2].Write(seg, 0, []byte{6}); err != nil {
		t.Fatal(err)
	}
	if lb.callCount(MsgInv) <= invBefore {
		t.Error("owner was not told to relinquish")
	}
	// Everyone converges on the new value.
	for i, m := range mgrs {
		if got, err := m.Read(seg, 0, 1); err != nil || got[0] != 6 {
			t.Fatalf("node %d sees %v, %v", i+1, got, err)
		}
	}
}

func TestManagerAccessors(t *testing.T) {
	_, mgrs := cluster(t, 2, 64)
	if mgrs[0].Node() != 1 {
		t.Errorf("Node() = %v", mgrs[0].Node())
	}
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, 100, false); err != nil {
		t.Fatal(err)
	}
	meta, err := mgrs[1].Meta(seg) // remote fetch
	if err != nil || meta.Size != 100 || meta.PageSize != 64 {
		t.Fatalf("Meta = %+v, %v", meta, err)
	}
}
