package dsm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ids"
)

// TestRandomOpsMatchReferenceModel drives a long random sequence of reads
// and writes from every node, serialized by the test, and checks each read
// against a flat reference array. With serialized operations, sequential
// consistency demands every read return exactly the reference contents.
func TestRandomOpsMatchReferenceModel(t *testing.T) {
	const (
		nodes    = 4
		pageSize = 32
		segSize  = 8 * pageSize
		ops      = 2000
	)
	_, mgrs := cluster(t, nodes, pageSize)
	seg := ids.NewSegmentID(1, 1)
	if _, err := mgrs[0].CreateSegment(seg, segSize, false); err != nil {
		t.Fatal(err)
	}
	ref := make([]byte, segSize)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < ops; i++ {
		m := mgrs[rng.Intn(nodes)]
		off := rng.Intn(segSize)
		n := rng.Intn(segSize-off) + 1
		if n > 3*pageSize {
			n = 3 * pageSize
		}
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if err := m.Write(seg, off, data); err != nil {
				t.Fatalf("op %d: write [%d,%d): %v", i, off, off+n, err)
			}
			copy(ref[off:off+n], data)
		} else {
			got, err := m.Read(seg, off, n)
			if err != nil {
				t.Fatalf("op %d: read [%d,%d): %v", i, off, off+n, err)
			}
			if !bytes.Equal(got, ref[off:off+n]) {
				t.Fatalf("op %d: node %v read [%d,%d) diverged from reference", i, m.Node(), off, off+n)
			}
		}
	}
}

// TestConcurrentMixedLoadConverges hammers one segment from all nodes
// concurrently (each node owns a disjoint byte range), then checks every
// node converges on the same final contents.
func TestConcurrentMixedLoadConverges(t *testing.T) {
	const (
		nodes    = 4
		pageSize = 64
		rounds   = 120
	)
	_, mgrs := cluster(t, nodes, pageSize)
	seg := ids.NewSegmentID(1, 1)
	// All ranges land on one page: maximal coherence contention.
	if _, err := mgrs[0].CreateSegment(seg, pageSize, false); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, nodes)
	for i, m := range mgrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			off := i * 8
			for v := 1; v <= rounds; v++ {
				if err := m.Write(seg, off, []byte{byte(v)}); err != nil {
					errCh <- err
					return
				}
				// Interleave reads of the whole page to force sharing.
				if _, err := m.Read(seg, 0, pageSize); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	want, err := mgrs[0].Read(seg, 0, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if want[i*8] != byte(rounds) {
			t.Fatalf("final byte %d = %d, want %d (lost update)", i*8, want[i*8], rounds)
		}
	}
	for i, m := range mgrs[1:] {
		got, err := m.Read(seg, 0, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("node %d diverged from node 1 after quiesce", i+2)
		}
	}
}
