// Package dsm implements the paged, sequentially-consistent distributed
// shared memory the DO/CT environment is built on (§1: "Structuring such
// object-based systems using Distributed Shared Memory is becoming a viable
// paradigm"). Every object's persistent data lives in a DSM segment; in
// DSM-mode invocation the kernel faults pages to the invoking node instead
// of shipping the computation.
//
// The protocol is a home-based directory scheme in the style of IVY:
// the segment's home node (encoded in the SegmentID) tracks, per page, the
// owner (holder of the authoritative copy) and the copyset. Reads fetch a
// shared copy; writes invalidate the copyset and transfer ownership —
// single-writer/multiple-reader, which yields sequential consistency.
//
// Segments may instead be flagged user-paged (§6.4): the kernel coherence
// protocol is bypassed and faults are surfaced to a user-level virtual
// memory manager through the UserFaultFunc hook, which the kernel wires to
// VM_FAULT events.
package dsm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// DefaultPageSize is the page granularity when Config.PageSize is 0.
const DefaultPageSize = 1024

// Package errors.
var (
	ErrUnknownSegment = errors.New("dsm: unknown segment")
	ErrOutOfRange     = errors.New("dsm: access out of segment range")
	ErrBadRequest     = errors.New("dsm: malformed protocol request")
	ErrNoPager        = errors.New("dsm: fault on user-paged segment with no pager")
)

// Protocol message kinds exchanged between managers.
const (
	MsgMeta    = "dsm.meta"    // fetch segment metadata from home
	MsgRead    = "dsm.read"    // read fault -> home
	MsgWrite   = "dsm.write"   // write fault -> home
	MsgDegrade = "dsm.degrade" // home -> owner: downgrade to shared, return data
	MsgTake    = "dsm.take"    // home -> owner: relinquish page, return data
	MsgInv     = "dsm.inv"     // home -> copy holder: invalidate
)

// Transport carries DSM protocol requests between nodes and returns the
// peer's reply. internal/core implements it over the simulated fabric; unit
// tests use a direct loopback.
type Transport interface {
	Call(to ids.NodeID, kind string, req any) (any, error)
}

// UserFaultFunc services a fault on a user-paged segment: it must return
// the page contents (the kernel's implementation raises VM_FAULT to the
// faulting thread and waits for the pager to install a page).
type UserFaultFunc func(seg ids.SegmentID, page int, write bool) ([]byte, error)

// FaultError reports an unserviced fault on a user-paged segment. The
// kernel catches it, raises VM_FAULT to the faulting thread's handler
// chain, and retries the access once a pager installs the page (§6.4).
type FaultError struct {
	Seg   ids.SegmentID
	Page  int
	Write bool
}

// Error renders the fault.
func (e *FaultError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("dsm: unserviced user %s fault on %v page %d", op, e.Seg, e.Page)
}

// pageMode is the local cache state of one page.
type pageMode int

const (
	modeInvalid pageMode = iota
	modeShared
	modeExclusive
)

// Meta describes a segment.
type Meta struct {
	ID        ids.SegmentID
	Size      int
	PageSize  int
	UserPaged bool
}

// Pages returns the number of pages in the segment.
func (m Meta) Pages() int { return (m.Size + m.PageSize - 1) / m.PageSize }

// dirEntry is the home node's directory record for one page.
type dirEntry struct {
	mu      sync.Mutex
	owner   ids.NodeID
	copyset map[ids.NodeID]bool
}

// segment is a manager's record of one segment: directory state if this
// node is home, plus the local page cache.
type segment struct {
	meta Meta
	dir  []*dirEntry // non-nil only at home

	mu    sync.Mutex
	cache map[int]*cachedPage
}

type cachedPage struct {
	mode pageMode
	data []byte
}

// Request/reply payloads. Exported fields so a transport may serialize.

// MetaReq asks the home for segment metadata.
type MetaReq struct{ Seg ids.SegmentID }

// PageReq asks the home to service a read or write fault.
type PageReq struct {
	Seg  ids.SegmentID
	Page int
	From ids.NodeID
}

// PageReply returns page data (nil when the requester's copy is usable).
type PageReply struct{ Data []byte }

// WireSize charges the actual page payload.
func (r PageReply) WireSize() int { return 16 + len(r.Data) }

// Config parameterizes a Manager.
type Config struct {
	Node      ids.NodeID
	PageSize  int
	Transport Transport
	Metrics   *metrics.Registry
}

// Manager is one node's DSM engine: directory authority for segments homed
// here, page cache for everything else. Managers are safe for concurrent
// use.
type Manager struct {
	node      ids.NodeID
	pageSize  int
	transport Transport
	reg       *metrics.Registry

	mu        sync.RWMutex
	segs      map[ids.SegmentID]*segment
	userFault UserFaultFunc
}

// NewManager returns a Manager for node.
func NewManager(cfg Config) *Manager {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Manager{
		node:      cfg.Node,
		pageSize:  cfg.PageSize,
		transport: cfg.Transport,
		reg:       reg,
		segs:      make(map[ids.SegmentID]*segment),
	}
}

// Node returns the node this manager serves.
func (m *Manager) Node() ids.NodeID { return m.node }

// SetUserFaultHandler installs the hook servicing faults on user-paged
// segments at this node.
func (m *Manager) SetUserFaultHandler(f UserFaultFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.userFault = f
}

// CreateSegment creates a segment homed at this node. Pages start zeroed,
// owned by home with an empty copyset.
func (m *Manager) CreateSegment(id ids.SegmentID, size int, userPaged bool) (Meta, error) {
	if id.Home() != m.node {
		return Meta{}, fmt.Errorf("dsm: segment %v is not homed at %v", id, m.node)
	}
	if size <= 0 {
		return Meta{}, fmt.Errorf("dsm: invalid segment size %d", size)
	}
	meta := Meta{ID: id, Size: size, PageSize: m.pageSize, UserPaged: userPaged}
	seg := &segment{meta: meta, cache: make(map[int]*cachedPage)}
	if !userPaged {
		seg.dir = make([]*dirEntry, meta.Pages())
		for i := range seg.dir {
			seg.dir[i] = &dirEntry{owner: m.node, copyset: map[ids.NodeID]bool{}}
		}
		// Home starts with every page cached exclusive and zeroed.
		for i := 0; i < meta.Pages(); i++ {
			seg.cache[i] = &cachedPage{mode: modeExclusive, data: make([]byte, m.pageSize)}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.segs[id]; dup {
		return Meta{}, fmt.Errorf("dsm: segment %v already exists", id)
	}
	m.segs[id] = seg
	return meta, nil
}

// lookup returns the local record for id, fetching metadata from home on
// first touch of a remote segment.
func (m *Manager) lookup(id ids.SegmentID) (*segment, error) {
	m.mu.RLock()
	seg, ok := m.segs[id]
	m.mu.RUnlock()
	if ok {
		return seg, nil
	}
	if id.Home() == m.node {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSegment, id)
	}
	reply, err := m.transport.Call(id.Home(), MsgMeta, MetaReq{Seg: id})
	if err != nil {
		return nil, fmt.Errorf("fetch meta for %v: %w", id, err)
	}
	meta, ok := reply.(Meta)
	if !ok {
		return nil, fmt.Errorf("%w: meta reply %T", ErrBadRequest, reply)
	}
	seg = &segment{meta: meta, cache: make(map[int]*cachedPage)}
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, dup := m.segs[id]; dup {
		return existing, nil
	}
	m.segs[id] = seg
	return seg, nil
}

// Meta returns the segment's metadata, fetching it from home if needed.
func (m *Manager) Meta(id ids.SegmentID) (Meta, error) {
	seg, err := m.lookup(id)
	if err != nil {
		return Meta{}, err
	}
	return seg.meta, nil
}

// Read copies n bytes at off from the segment into a fresh slice, faulting
// pages in as needed.
func (m *Manager) Read(id ids.SegmentID, off, n int) ([]byte, error) {
	seg, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 || off+n > seg.meta.Size {
		return nil, fmt.Errorf("%w: read [%d,%d) of %v size %d", ErrOutOfRange, off, off+n, id, seg.meta.Size)
	}
	out := make([]byte, n)
	for done := 0; done < n; {
		page := (off + done) / seg.meta.PageSize
		pOff := (off + done) % seg.meta.PageSize
		chunk := min(n-done, seg.meta.PageSize-pOff)
		data, err := m.pageForRead(seg, page)
		if err != nil {
			return nil, err
		}
		copy(out[done:done+chunk], data[pOff:pOff+chunk])
		done += chunk
	}
	return out, nil
}

// Write stores data at off in the segment, acquiring exclusive ownership of
// each touched page.
func (m *Manager) Write(id ids.SegmentID, off int, data []byte) error {
	seg, err := m.lookup(id)
	if err != nil {
		return err
	}
	n := len(data)
	if off < 0 || off+n > seg.meta.Size {
		return fmt.Errorf("%w: write [%d,%d) of %v size %d", ErrOutOfRange, off, off+n, id, seg.meta.Size)
	}
	for done := 0; done < n; {
		page := (off + done) / seg.meta.PageSize
		pOff := (off + done) % seg.meta.PageSize
		chunk := min(n-done, seg.meta.PageSize-pOff)
		for {
			cp, err := m.pageForWrite(seg, page)
			if err != nil {
				return err
			}
			// The page may have been taken by a concurrent write fault
			// elsewhere between acquiring exclusivity and storing; verify
			// under the cache lock and refault if so (the MMU makes this
			// atomic on real hardware).
			seg.mu.Lock()
			cur, ok := seg.cache[page]
			if ok && cur == cp && cur.mode == modeExclusive {
				copy(cp.data[pOff:pOff+chunk], data[done:done+chunk])
				seg.mu.Unlock()
				break
			}
			seg.mu.Unlock()
		}
		done += chunk
	}
	return nil
}

// pageForRead returns a snapshot of the page's bytes with at least shared
// access. The snapshot is taken under the cache lock so local writers
// (which mutate the cached page in place) never race with readers.
func (m *Manager) pageForRead(seg *segment, page int) ([]byte, error) {
	seg.mu.Lock()
	if cp, ok := seg.cache[page]; ok && cp.mode != modeInvalid {
		data := append([]byte(nil), cp.data...)
		seg.mu.Unlock()
		return data, nil
	}
	seg.mu.Unlock()
	m.reg.Inc(metrics.CtrPageFault)

	if seg.meta.UserPaged {
		return m.userPageIn(seg, page, false)
	}
	if seg.meta.ID.Home() == m.node {
		// Home's copy was taken by a remote owner; go through the local
		// directory to get it back.
		data, err := m.dirRead(seg, PageReq{Seg: seg.meta.ID, Page: page, From: m.node})
		if err != nil {
			return nil, err
		}
		return m.installLocal(seg, page, data, modeShared), nil
	}
	reply, err := m.transport.Call(seg.meta.ID.Home(), MsgRead, PageReq{Seg: seg.meta.ID, Page: page, From: m.node})
	if err != nil {
		return nil, fmt.Errorf("read fault %v page %d: %w", seg.meta.ID, page, err)
	}
	pr, ok := reply.(PageReply)
	if !ok {
		return nil, fmt.Errorf("%w: read reply %T", ErrBadRequest, reply)
	}
	return m.installLocal(seg, page, pr.Data, modeShared), nil
}

// pageForWrite returns the page cache slot with exclusive access.
func (m *Manager) pageForWrite(seg *segment, page int) (*cachedPage, error) {
	seg.mu.Lock()
	if cp, ok := seg.cache[page]; ok && cp.mode == modeExclusive {
		seg.mu.Unlock()
		return cp, nil
	}
	seg.mu.Unlock()
	m.reg.Inc(metrics.CtrPageFault)

	if seg.meta.UserPaged {
		// Coherence on user-paged segments is the pager's business: a
		// locally cached copy (installed by the pager) is writable
		// directly; the pager merges divergent copies later (§6.4).
		seg.mu.Lock()
		if cp, ok := seg.cache[page]; ok && cp.mode != modeInvalid {
			cp.mode = modeExclusive
			seg.mu.Unlock()
			return cp, nil
		}
		seg.mu.Unlock()
		if _, err := m.userPageIn(seg, page, true); err != nil {
			return nil, err
		}
		seg.mu.Lock()
		defer seg.mu.Unlock()
		cp := seg.cache[page]
		cp.mode = modeExclusive
		return cp, nil
	}

	var (
		data []byte
		err  error
	)
	if seg.meta.ID.Home() == m.node {
		data, err = m.dirWrite(seg, PageReq{Seg: seg.meta.ID, Page: page, From: m.node})
	} else {
		var reply any
		reply, err = m.transport.Call(seg.meta.ID.Home(), MsgWrite, PageReq{Seg: seg.meta.ID, Page: page, From: m.node})
		if err == nil {
			pr, ok := reply.(PageReply)
			if !ok {
				return nil, fmt.Errorf("%w: write reply %T", ErrBadRequest, reply)
			}
			data = pr.Data
		}
	}
	if err != nil {
		return nil, fmt.Errorf("write fault %v page %d: %w", seg.meta.ID, page, err)
	}

	seg.mu.Lock()
	defer seg.mu.Unlock()
	cp, ok := seg.cache[page]
	if !ok || cp.mode == modeInvalid {
		if data == nil {
			data = make([]byte, seg.meta.PageSize)
		}
		cp = &cachedPage{data: data}
		seg.cache[page] = cp
	} else if data != nil {
		cp.data = data
	}
	cp.mode = modeExclusive
	return cp, nil
}

// userPageIn services a fault on a user-paged segment via the pager hook.
func (m *Manager) userPageIn(seg *segment, page int, write bool) ([]byte, error) {
	m.mu.RLock()
	hook := m.userFault
	m.mu.RUnlock()
	m.reg.Inc(metrics.CtrUserFault)
	if hook == nil {
		return nil, fmt.Errorf("%w (%w: %v page %d)",
			&FaultError{Seg: seg.meta.ID, Page: page, Write: write}, ErrNoPager, seg.meta.ID, page)
	}
	data, err := hook(seg.meta.ID, page, write)
	if err != nil {
		return nil, err
	}
	mode := modeShared
	if write {
		mode = modeExclusive
	}
	return m.installLocal(seg, page, data, mode), nil
}

// installLocal caches data for page with the given mode and returns an
// independent snapshot of the bytes (never the cached slice itself, which
// local writers mutate in place).
func (m *Manager) installLocal(seg *segment, page int, data []byte, mode pageMode) []byte {
	stored := make([]byte, seg.meta.PageSize)
	copy(stored, data)
	// Snapshot before publishing: once in the cache, writers may mutate
	// the stored slice at any time.
	snap := make([]byte, len(stored))
	copy(snap, stored)
	seg.mu.Lock()
	seg.cache[page] = &cachedPage{mode: mode, data: stored}
	seg.mu.Unlock()
	return snap
}

// InstallPage lets a user-level pager place page contents into this node's
// cache for a user-paged segment (the "install a user supplied page to back
// a virtual address" operation of §6.4).
func (m *Manager) InstallPage(id ids.SegmentID, page int, data []byte) error {
	seg, err := m.lookup(id)
	if err != nil {
		return err
	}
	if !seg.meta.UserPaged {
		return fmt.Errorf("dsm: InstallPage on kernel-managed segment %v", id)
	}
	if page < 0 || page >= seg.meta.Pages() {
		return fmt.Errorf("%w: page %d of %v", ErrOutOfRange, page, id)
	}
	m.installLocal(seg, page, data, modeShared)
	return nil
}

// DropPage discards this node's cached copy of a page (pager-directed
// invalidation on user-paged segments).
func (m *Manager) DropPage(id ids.SegmentID, page int) error {
	seg, err := m.lookup(id)
	if err != nil {
		return err
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	delete(seg.cache, page)
	return nil
}

// CachedPage returns a copy of this node's cached page contents, if any.
// Used by pagers to collect copies for merging.
func (m *Manager) CachedPage(id ids.SegmentID, page int) ([]byte, bool) {
	seg, err := m.lookup(id)
	if err != nil {
		return nil, false
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	cp, ok := seg.cache[page]
	if !ok || cp.mode == modeInvalid {
		return nil, false
	}
	out := make([]byte, len(cp.data))
	copy(out, cp.data)
	return out, true
}

// HandleRequest services one incoming protocol request. The hosting kernel
// routes DSM messages here; each call may issue nested Transport calls and
// must therefore run on its own goroutine.
func (m *Manager) HandleRequest(kind string, req any) (any, error) {
	switch kind {
	case MsgMeta:
		r, ok := req.(MetaReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s payload %T", ErrBadRequest, kind, req)
		}
		seg, err := m.homeSegment(r.Seg)
		if err != nil {
			return nil, err
		}
		return seg.meta, nil

	case MsgRead:
		r, ok := req.(PageReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s payload %T", ErrBadRequest, kind, req)
		}
		seg, err := m.homeSegment(r.Seg)
		if err != nil {
			return nil, err
		}
		data, err := m.dirRead(seg, r)
		if err != nil {
			return nil, err
		}
		m.reg.Inc(metrics.CtrPageFetch)
		return PageReply{Data: data}, nil

	case MsgWrite:
		r, ok := req.(PageReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s payload %T", ErrBadRequest, kind, req)
		}
		seg, err := m.homeSegment(r.Seg)
		if err != nil {
			return nil, err
		}
		data, err := m.dirWrite(seg, r)
		if err != nil {
			return nil, err
		}
		m.reg.Inc(metrics.CtrPageFetch)
		return PageReply{Data: data}, nil

	case MsgDegrade:
		r, ok := req.(PageReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s payload %T", ErrBadRequest, kind, req)
		}
		return m.degradeLocal(r)

	case MsgTake:
		r, ok := req.(PageReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s payload %T", ErrBadRequest, kind, req)
		}
		return m.takeLocal(r)

	case MsgInv:
		r, ok := req.(PageReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s payload %T", ErrBadRequest, kind, req)
		}
		m.invalidateLocal(r)
		m.reg.Inc(metrics.CtrPageInvalidate)
		return PageReply{}, nil

	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
}

// homeSegment returns the segment record, requiring this node to be home.
func (m *Manager) homeSegment(id ids.SegmentID) (*segment, error) {
	if id.Home() != m.node {
		return nil, fmt.Errorf("dsm: node %v is not home of %v", m.node, id)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	seg, ok := m.segs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSegment, id)
	}
	return seg, nil
}

// dirRead runs the home directory's read-fault protocol and returns page
// data for the requester.
func (m *Manager) dirRead(seg *segment, r PageReq) ([]byte, error) {
	if r.Page < 0 || r.Page >= seg.meta.Pages() {
		return nil, fmt.Errorf("%w: page %d of %v", ErrOutOfRange, r.Page, seg.meta.ID)
	}
	de := seg.dir[r.Page]
	de.mu.Lock()
	defer de.mu.Unlock()

	var data []byte
	if de.owner == m.node {
		seg.mu.Lock()
		cp, ok := seg.cache[r.Page]
		if !ok || cp.mode == modeInvalid {
			seg.mu.Unlock()
			return nil, fmt.Errorf("dsm: directory owner %v lost page %d of %v", m.node, r.Page, seg.meta.ID)
		}
		if cp.mode == modeExclusive {
			cp.mode = modeShared
		}
		data = append([]byte(nil), cp.data...)
		seg.mu.Unlock()
	} else {
		reply, err := m.transport.Call(de.owner, MsgDegrade, PageReq{Seg: seg.meta.ID, Page: r.Page, From: r.From})
		if err != nil {
			return nil, fmt.Errorf("degrade owner %v: %w", de.owner, err)
		}
		pr, ok := reply.(PageReply)
		if !ok {
			return nil, fmt.Errorf("%w: degrade reply %T", ErrBadRequest, reply)
		}
		data = pr.Data
	}
	de.copyset[r.From] = true
	return data, nil
}

// dirWrite runs the home directory's write-fault protocol: invalidate the
// copyset, take the page from the owner, transfer ownership to the
// requester. A nil data return means the requester's shared copy is already
// current.
func (m *Manager) dirWrite(seg *segment, r PageReq) ([]byte, error) {
	if r.Page < 0 || r.Page >= seg.meta.Pages() {
		return nil, fmt.Errorf("%w: page %d of %v", ErrOutOfRange, r.Page, seg.meta.ID)
	}
	de := seg.dir[r.Page]
	de.mu.Lock()
	defer de.mu.Unlock()

	requesterHadCopy := de.copyset[r.From]
	// Invalidate every copy holder except the requester and the owner
	// (the owner is dealt with below, where its data may be needed).
	for member := range de.copyset {
		if member == r.From || member == de.owner {
			continue
		}
		if member == m.node {
			m.invalidateLocal(PageReq{Seg: seg.meta.ID, Page: r.Page})
			m.reg.Inc(metrics.CtrPageInvalidate)
			continue
		}
		if _, err := m.transport.Call(member, MsgInv, PageReq{Seg: seg.meta.ID, Page: r.Page}); err != nil {
			return nil, fmt.Errorf("invalidate %v: %w", member, err)
		}
	}

	var data []byte
	switch {
	case de.owner == r.From:
		// Requester already owns it (e.g. upgrade after losing copies).
	case requesterHadCopy:
		// The requester's shared copy is current; ownership transfers
		// without a data transfer, but the old owner drops its copy.
		if err := m.relinquish(seg, de.owner, r); err != nil {
			return nil, err
		}
	default:
		taken, err := m.takeFrom(seg, de.owner, r)
		if err != nil {
			return nil, err
		}
		data = taken
	}
	de.owner = r.From
	de.copyset = map[ids.NodeID]bool{r.From: true}
	return data, nil
}

// takeFrom retrieves the page from owner, invalidating the owner's copy.
func (m *Manager) takeFrom(seg *segment, owner ids.NodeID, r PageReq) ([]byte, error) {
	if owner == m.node {
		seg.mu.Lock()
		cp, ok := seg.cache[r.Page]
		var data []byte
		if ok && cp.mode != modeInvalid {
			data = append([]byte(nil), cp.data...)
		}
		delete(seg.cache, r.Page)
		seg.mu.Unlock()
		return data, nil
	}
	reply, err := m.transport.Call(owner, MsgTake, PageReq{Seg: seg.meta.ID, Page: r.Page, From: r.From})
	if err != nil {
		return nil, fmt.Errorf("take from owner %v: %w", owner, err)
	}
	pr, ok := reply.(PageReply)
	if !ok {
		return nil, fmt.Errorf("%w: take reply %T", ErrBadRequest, reply)
	}
	return pr.Data, nil
}

// relinquish drops the owner's copy without transferring data.
func (m *Manager) relinquish(seg *segment, owner ids.NodeID, r PageReq) error {
	if owner == m.node {
		m.invalidateLocal(PageReq{Seg: seg.meta.ID, Page: r.Page})
		return nil
	}
	if _, err := m.transport.Call(owner, MsgInv, PageReq{Seg: seg.meta.ID, Page: r.Page}); err != nil {
		return fmt.Errorf("relinquish %v: %w", owner, err)
	}
	return nil
}

// degradeLocal downgrades this node's exclusive copy to shared and returns
// the data.
func (m *Manager) degradeLocal(r PageReq) (PageReply, error) {
	m.mu.RLock()
	seg, ok := m.segs[r.Seg]
	m.mu.RUnlock()
	if !ok {
		return PageReply{}, fmt.Errorf("%w: %v", ErrUnknownSegment, r.Seg)
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	cp, ok := seg.cache[r.Page]
	if !ok || cp.mode == modeInvalid {
		return PageReply{}, fmt.Errorf("dsm: degrade of page %d not held at %v", r.Page, m.node)
	}
	cp.mode = modeShared
	return PageReply{Data: append([]byte(nil), cp.data...)}, nil
}

// takeLocal gives up this node's copy entirely, returning the data.
func (m *Manager) takeLocal(r PageReq) (PageReply, error) {
	m.mu.RLock()
	seg, ok := m.segs[r.Seg]
	m.mu.RUnlock()
	if !ok {
		return PageReply{}, fmt.Errorf("%w: %v", ErrUnknownSegment, r.Seg)
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	cp, ok := seg.cache[r.Page]
	if !ok || cp.mode == modeInvalid {
		return PageReply{}, fmt.Errorf("dsm: take of page %d not held at %v", r.Page, m.node)
	}
	data := cp.data
	delete(seg.cache, r.Page)
	return PageReply{Data: data}, nil
}

// invalidateLocal drops this node's copy of a page.
func (m *Manager) invalidateLocal(r PageReq) {
	m.mu.RLock()
	seg, ok := m.segs[r.Seg]
	m.mu.RUnlock()
	if !ok {
		return
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	delete(seg.cache, r.Page)
}
