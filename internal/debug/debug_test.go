package debug

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/object"
)

const waitShort = 10 * time.Second

func newSystem(t *testing.T, nodes int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Nodes: nodes, CallTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// TestBreakpointStopsAndResumes: the debugged thread hits two labeled
// breakpoints on a remote node; the central debugger records both with the
// thread's internals and resumes it each time.
func TestBreakpointStopsAndResumes(t *testing.T) {
	sys := newSystem(t, 3)
	server, err := sys.CreateObject(1, ServerSpec("dbg"))
	if err != nil {
		t.Fatal(err)
	}
	work, err := sys.CreateObject(3, object.Spec{
		Name: "work",
		Entries: map[string]object.Entry{
			"compute": func(ctx object.Ctx, _ []any) ([]any, error) {
				ctx.Attrs().PerThread["acc"] = []byte("7")
				if err := Break(ctx, "before"); err != nil {
					return nil, err
				}
				ctx.Attrs().PerThread["acc"] = []byte("42")
				if err := Break(ctx, "after"); err != nil {
					return nil, err
				}
				return []any{"done"}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(2, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"main": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := Attach(ctx, server); err != nil {
					return nil, err
				}
				return ctx.Invoke(work, "compute")
			},
			"query": func(ctx object.Ctx, args []any) ([]any, error) {
				tid, _ := args[0].(ids.ThreadID)
				stops, err := StopsOf(ctx, server, tid)
				if err != nil {
					return nil, err
				}
				return []any{stops}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(2, app, "main")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatalf("debugged run: %v", err)
	}
	if res[0] != "done" {
		t.Fatalf("result = %v", res)
	}

	hq, err := sys.Spawn(2, app, "query", h.TID())
	if err != nil {
		t.Fatal(err)
	}
	qres, err := hq.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	stops := qres[0].([]Stop)
	if len(stops) != 2 {
		t.Fatalf("recorded %d stops, want 2", len(stops))
	}
	if stops[0].Label != "before" || stops[1].Label != "after" {
		t.Fatalf("labels = %q, %q", stops[0].Label, stops[1].Label)
	}
	// The debugger saw the thread's internals (per-thread memory) at each
	// stop, from the remote node it stopped on.
	if stops[0].Memory["acc"] != "7" || stops[1].Memory["acc"] != "42" {
		t.Fatalf("memory snapshots = %v / %v", stops[0].Memory, stops[1].Memory)
	}
	if stops[0].Node != 3 {
		t.Fatalf("stop recorded at %v, want node3", stops[0].Node)
	}
}

// TestTerminatePolicyKillsAtBreakpoint: the debugger's policy decides the
// stopped thread's fate — the paper's "resumes (or terminates) the
// signaling thread".
func TestTerminatePolicyKillsAtBreakpoint(t *testing.T) {
	sys := newSystem(t, 2)
	server, err := sys.CreateObject(1, ServerSpec("kill"))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(2, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"main": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := Attach(ctx, server); err != nil {
					return nil, err
				}
				if err := Break(ctx, "fatal"); err != nil {
					return nil, err
				}
				return []any{"survived"}, nil
			},
			"arm": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, SetPolicy(ctx, server, PolicyTerminate)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ha, err := sys.Spawn(2, app, "arm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ha.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(2, app, "main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, core.ErrTerminated) {
		t.Fatalf("Wait err = %v, want ErrTerminated", err)
	}
}

func TestSetPolicyValidation(t *testing.T) {
	sys := newSystem(t, 1)
	server, err := sys.CreateObject(1, ServerSpec("v"))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(1, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"bad": func(ctx object.Ctx, _ []any) ([]any, error) {
				return nil, SetPolicy(ctx, server, "explode")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, app, "bad")
	if _, err := h.WaitTimeout(waitShort); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestBreakWithoutDebuggerIsIgnored(t *testing.T) {
	sys := newSystem(t, 1)
	app, err := sys.CreateObject(1, object.Spec{
		Name: "app",
		Entries: map[string]object.Entry{
			"main": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.RegisterEvent(Breakpoint); err != nil {
					return nil, err
				}
				// No Attach: the sync raise finds no handler and reports
				// unhandled; the thread continues.
				err := Break(ctx, "nobody-listening")
				return []any{err != nil}, err
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, app, "main")
	if _, err := h.WaitTimeout(waitShort); !errors.Is(err, core.ErrUnhandledSync) {
		t.Fatalf("Break without debugger err = %v, want ErrUnhandledSync", err)
	}
}

func TestStopString(t *testing.T) {
	s := Stop{
		Label: "L", Thread: ids.NewThreadID(1, 2), Node: 3,
		Object: ids.NewObjectID(4, 5), Entry: "e", PC: 6, Depth: 2,
	}
	want := `stop "L": t1.2 at node3 in o4.5.e pc=6 depth=2`
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}
