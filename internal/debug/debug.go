// Package debug implements the debugger application the paper motivates
// (§4.1: buddy handlers are "quite useful in implementing monitors,
// debuggers, etc. where an application can specify a central server as the
// event handler for events posted to its threads"; §9 contrasts Mach's
// separate-task debuggers).
//
// A debugger is a central server object. Debugged threads hit breakpoints
// by raising the BREAKPOINT user event synchronously at themselves; the
// buddy handler at the server runs on a surrogate carrying the suspended
// thread's attributes, records a full stop report (thread state + selected
// per-thread memory), and decides — per the server's current policy —
// whether the thread resumes or terminates. The debugged application needs
// no code beyond the one attach call: the essence of the paper's argument
// for thread-based handlers.
package debug

import (
	"errors"
	"fmt"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

// Breakpoint is the user event debugged threads raise at themselves. The
// debugger's Register installs it as a registered user event name through
// the attaching thread, so applications only call Attach and Break.
const Breakpoint event.Name = "BREAKPOINT"

// Entry names of the debugger server object.
const (
	HandlerStop  = "on_stop" // buddy handler method
	EntryStops   = "stops"
	EntryPolicy  = "policy"
	EntryControl = "control"
)

// Policy names accepted by EntryPolicy.
const (
	PolicyResume    = "resume"
	PolicyTerminate = "terminate"
)

// Stop is one recorded breakpoint hit.
type Stop struct {
	Thread ids.ThreadID
	Node   ids.NodeID
	Object ids.ObjectID
	Entry  string
	PC     uint64
	Depth  int
	// Label is the breakpoint label the thread passed to Break.
	Label string
	// Memory is the per-thread memory snapshot visible to the surrogate.
	Memory map[string]string
}

// String renders the stop like a debugger's backtrace head.
func (s Stop) String() string {
	return fmt.Sprintf("stop %q: %v at %v in %v.%s pc=%d depth=%d",
		s.Label, s.Thread, s.Node, s.Object, s.Entry, s.PC, s.Depth)
}

// ServerSpec returns the debugger server object. Its default policy
// resumes stopped threads.
func ServerSpec(label string) object.Spec {
	return object.Spec{
		Name: "debugger:" + label,
		HandlerMethods: map[string]object.Handler{
			HandlerStop: onStop,
		},
		Entries: map[string]object.Entry{
			EntryStops:  stopsEntry,
			EntryPolicy: policyEntry,
		},
	}
}

// onStop is the buddy handler: it runs at the server on a surrogate that
// carries the stopped thread's attributes, so the debugger can inspect the
// thread's internals without any cooperation from the object it stopped
// in.
func onStop(ctx object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
	if eb.State == nil {
		return event.VerdictPropagate
	}
	label := ""
	if eb.User != nil {
		if l, ok := eb.User["label"].(string); ok {
			label = l
		}
	}
	mem := make(map[string]string)
	for k, v := range ctx.Attrs().PerThread {
		mem[k] = string(v)
	}
	stop := Stop{
		Thread: eb.State.Thread,
		Node:   eb.State.Node,
		Object: eb.State.Object,
		Entry:  eb.State.Entry,
		PC:     eb.State.PC,
		Depth:  eb.State.Depth,
		Label:  label,
		Memory: mem,
	}
	key := "stops:" + stop.Thread.String()
	var list []Stop
	if cur, ok := ctx.Get(key); ok {
		if old, ok2 := cur.([]Stop); ok2 {
			list = old
		}
	}
	next := make([]Stop, len(list), len(list)+1)
	copy(next, list)
	next = append(next, stop)
	ctx.Set(key, next)

	if pol, ok := ctx.Get("policy"); ok && pol == PolicyTerminate {
		return event.VerdictTerminate
	}
	return event.VerdictResume
}

// stopsEntry returns the recorded stops for a thread.
// Args: tid uint64.
func stopsEntry(ctx object.Ctx, args []any) ([]any, error) {
	if len(args) < 1 {
		return nil, errors.New("debug: stops needs a thread id")
	}
	tidV, ok := args[0].(uint64)
	if !ok {
		return nil, fmt.Errorf("debug: stops arg %T", args[0])
	}
	cur, _ := ctx.Get("stops:" + ids.ThreadID(tidV).String())
	if cur == nil {
		return []any{[]Stop(nil)}, nil
	}
	list, ok := cur.([]Stop)
	if !ok {
		return nil, errors.New("debug: corrupt stop list")
	}
	out := make([]Stop, len(list))
	copy(out, list)
	return []any{out}, nil
}

// policyEntry sets the verdict policy for subsequent stops.
// Args: policy string ("resume" | "terminate").
func policyEntry(ctx object.Ctx, args []any) ([]any, error) {
	if len(args) < 1 {
		return nil, errors.New("debug: policy needs a value")
	}
	pol, ok := args[0].(string)
	if !ok || (pol != PolicyResume && pol != PolicyTerminate) {
		return nil, fmt.Errorf("debug: invalid policy %v", args[0])
	}
	ctx.Set("policy", pol)
	return nil, nil
}

// Attach puts the calling thread under the debugger: the BREAKPOINT event
// (registered if needed) is directed at the server's buddy handler. The
// attachment is inherited by spawned threads, so one call debugs the whole
// application.
func Attach(ctx object.Ctx, server ids.ObjectID) error {
	if err := ctx.RegisterEvent(Breakpoint); err != nil && !errors.Is(err, event.ErrAlreadyRegistered) {
		return err
	}
	return ctx.AttachHandler(event.HandlerRef{
		Event:  Breakpoint,
		Kind:   event.KindBuddy,
		Object: server,
		Entry:  HandlerStop,
	})
}

// Break stops the calling thread at a labeled breakpoint: it raises
// BREAKPOINT synchronously at itself and blocks until the debugger's
// handler resumes (or terminates) it.
func Break(ctx object.Ctx, label string) error {
	return ctx.RaiseAndWait(Breakpoint, event.ToThread(ctx.Thread()), map[string]any{"label": label})
}

// StopsOf queries the server for a thread's recorded stops. Must run on a
// thread context.
func StopsOf(ctx object.Ctx, server ids.ObjectID, tid ids.ThreadID) ([]Stop, error) {
	res, err := ctx.Invoke(server, EntryStops, uint64(tid))
	if err != nil {
		return nil, err
	}
	list, ok := res[0].([]Stop)
	if !ok && res[0] != nil {
		return nil, fmt.Errorf("debug: stops reply %T", res[0])
	}
	return list, nil
}

// SetPolicy sets the server's stop policy. Must run on a thread context.
func SetPolicy(ctx object.Ctx, server ids.ObjectID, policy string) error {
	_, err := ctx.Invoke(server, EntryPolicy, policy)
	return err
}
