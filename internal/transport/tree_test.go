package transport

import (
	"testing"

	"repro/internal/ids"
)

func TestTreeOrderRootFirstSorted(t *testing.T) {
	nodes := []ids.NodeID{5, 3, 9, 1, 7}
	got := TreeOrder(nodes, 9)
	want := []ids.NodeID{9, 1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("TreeOrder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TreeOrder = %v, want %v", got, want)
		}
	}
	// Root absent from the input is prepended.
	if got := TreeOrder([]ids.NodeID{2, 4}, 8); got[0] != 8 || len(got) != 3 {
		t.Fatalf("TreeOrder with external root = %v", got)
	}
}

// TestTreeCoverage: for a range of sizes and arities, every non-root index
// is the child of exactly one parent, and every index is reachable from
// the root within TreeDepth rounds.
func TestTreeCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 32, 100, 256} {
		for _, k := range []int{1, 2, 3, 4, 8} {
			parents := make([]int, n)
			for i := range parents {
				parents[i] = -1
			}
			for idx := 0; idx < n; idx++ {
				lo, hi := TreeChildren(n, k, idx)
				for c := lo; c < hi; c++ {
					if parents[c] != -1 {
						t.Fatalf("n=%d k=%d: index %d has parents %d and %d", n, k, c, parents[c], idx)
					}
					parents[c] = idx
				}
			}
			depth := 0
			for i := 1; i < n; i++ {
				if parents[i] == -1 {
					t.Fatalf("n=%d k=%d: index %d unreachable", n, k, i)
				}
				d := 0
				for j := i; j != 0; j = parents[j] {
					d++
				}
				if d > depth {
					depth = d
				}
			}
			if want := TreeDepth(n, k); depth != want {
				t.Errorf("n=%d k=%d: measured depth %d, TreeDepth says %d", n, k, depth, want)
			}
		}
	}
}

func TestTreeChildrenLeaf(t *testing.T) {
	if lo, hi := TreeChildren(8, 4, 7); lo < hi {
		t.Fatalf("index 7 of 8 (k=4) should be a leaf, got children [%d,%d)", lo, hi)
	}
}
