package wire

import (
	"bytes"
	"testing"
)

// FuzzWireRoundTrip feeds arbitrary bytes to the value decoder. The
// invariants, mirroring internal/batch's frame fuzzer:
//
//   - no input panics the decoder, no matter how truncated, oversized or
//     padded (length prefixes are checked against the remaining input
//     before any allocation, varints must be minimal-form);
//   - anything the decoder accepts re-encodes, and the re-encoding is a
//     fixed point: decode(enc) followed by encode yields enc byte-for-byte
//     (the codec has one canonical encoding — the original input may
//     differ only for legitimately order-free map bodies);
//   - EncodedSize agrees exactly with the canonical encoding's length.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{tagNil})
	f.Add([]byte{tagUint64, 0x85, 0x00})                   // non-minimal uvarint
	f.Add([]byte{tagString, 0xff, 0xff, 0x03, 'a'})        // oversized length prefix
	f.Add([]byte{tagSliceAny, 0xff, 0xff, 0xff, 0xff, 15}) // huge element count
	f.Add([]byte{tagError, 44, 3, 'f', 'o', 'o'})
	f.Add(bytes.Repeat([]byte{tagSliceAny, 1}, 64)) // deep nesting
	for _, v := range samples() {
		if enc, err := EncodeValue(v); err == nil {
			f.Add(enc)
			if len(enc) > 1 {
				f.Add(enc[:len(enc)/2]) // truncation seed
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeValue(data)
		if err != nil {
			return
		}
		enc, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("decoded value failed to re-encode: %v", err)
		}
		size, err := EncodedSize(v)
		if err != nil || size != len(enc) {
			t.Fatalf("EncodedSize=%d err=%v, canonical length=%d", size, err, len(enc))
		}
		v2, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		enc2, err := EncodeValue(v2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point: %x vs %x", enc, enc2)
		}
	})
}
