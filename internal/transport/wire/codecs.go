package wire

// Codecs for the shared kernel vocabulary: identifiers, event blocks,
// handler chains, thread attributes and deltas, locate probes, reliable
// envelopes and DSM page traffic. Core registers its own (unexported)
// RPC payload types from its package init under IDs 40+.
//
// Every size function returns exactly the bytes its encoder appends; the
// codec test suite pins size == len(encode) for a populated sample of
// every registered type, so the two cannot drift silently.

import (
	"time"

	"repro/internal/dsm"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/locks"
	"repro/internal/object"
	"repro/internal/reliable"
	"repro/internal/thread"
)

// Stable type IDs for the shared vocabulary. Core payloads use 40+.
// Wire format — append only, never renumber.
const (
	idNodeID      = 1
	idThreadID    = 2
	idObjectID    = 3
	idGroupID     = 4
	idSegmentID   = 5
	idEventStamp  = 6
	idThreadIDs   = 7
	idNodeIDs     = 8
	idEventName   = 10
	idVerdict     = 11
	idHandlerKind = 13
	idTarget      = 14
	idEventBlock  = 16
	idHandlerRef  = 17
	idAttributes  = 20
	idDelta       = 21
	idProbeResult = 22
	idEnvelope    = 23
	idAck         = 24
	idMetaReq     = 25
	idPageReq     = 26
	idPageReply   = 27
	idMeta        = 28
	idFaultError  = 29
)

// Stable sentinel-error codes for the shared packages. Core sentinels use
// 1–12 (registered from core's init). Wire format — append only.
const (
	codeEvAlreadyRegistered = 30
	codeEvReservedName      = 31
	codeEvNotRegistered     = 32
	codeEvEmptyName         = 33
	codeObjUnknown          = 34
	codeObjDeleted          = 35
	codeObjUnknownEntry     = 36
	codeThrUnknownGroup     = 37
	codeThrNotMember        = 38
	codeDSMUnknownSegment   = 39
	codeDSMOutOfRange       = 40
	codeDSMBadRequest       = 41
	codeDSMNoPager          = 42
	codeLocNotFound         = 44
	codeLocPathBroken       = 45
	codeLockTimeout         = 46
	codeRelUndeliverable    = 47
)

func init() {
	registerIDCodecs()
	registerEventCodecs()
	registerThreadCodecs()
	registerMiscCodecs()
	registerSentinels()
}

// --- identifiers ------------------------------------------------------------

func registerIDCodecs() {
	Register(idNodeID, "ids.NodeID",
		func(v ids.NodeID) int { return SizeUvarint(uint64(v)) },
		func(e *Enc, v ids.NodeID) { e.Uvarint(uint64(v)) },
		decNodeID)
	Register(idThreadID, "ids.ThreadID",
		func(v ids.ThreadID) int { return SizeUvarint(uint64(v)) },
		func(e *Enc, v ids.ThreadID) { e.Uvarint(uint64(v)) },
		func(d *Dec) ids.ThreadID { return ids.ThreadID(d.Uvarint()) })
	Register(idObjectID, "ids.ObjectID",
		func(v ids.ObjectID) int { return SizeUvarint(uint64(v)) },
		func(e *Enc, v ids.ObjectID) { e.Uvarint(uint64(v)) },
		func(d *Dec) ids.ObjectID { return ids.ObjectID(d.Uvarint()) })
	Register(idGroupID, "ids.GroupID",
		func(v ids.GroupID) int { return SizeUvarint(uint64(v)) },
		func(e *Enc, v ids.GroupID) { e.Uvarint(uint64(v)) },
		func(d *Dec) ids.GroupID { return ids.GroupID(d.Uvarint()) })
	Register(idSegmentID, "ids.SegmentID",
		func(v ids.SegmentID) int { return SizeUvarint(uint64(v)) },
		func(e *Enc, v ids.SegmentID) { e.Uvarint(uint64(v)) },
		func(d *Dec) ids.SegmentID { return ids.SegmentID(d.Uvarint()) })
	Register(idEventStamp, "ids.EventStamp", sizeStamp, encStamp, decStamp)
	Register(idThreadIDs, "[]ids.ThreadID",
		func(v []ids.ThreadID) int {
			if v == nil {
				return 1
			}
			n := 1 + SizeUvarint(uint64(len(v)))
			for _, t := range v {
				n += SizeUvarint(uint64(t))
			}
			return n
		},
		func(e *Enc, v []ids.ThreadID) {
			e.Bool(v != nil)
			if v == nil {
				return
			}
			e.Uvarint(uint64(len(v)))
			for _, t := range v {
				e.Uvarint(uint64(t))
			}
		},
		func(d *Dec) []ids.ThreadID {
			if !d.Bool() {
				return nil
			}
			n := d.Count(1)
			out := make([]ids.ThreadID, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, ids.ThreadID(d.Uvarint()))
			}
			return out
		})
	Register(idNodeIDs, "[]ids.NodeID",
		func(v []ids.NodeID) int {
			if v == nil {
				return 1
			}
			n := 1 + SizeUvarint(uint64(len(v)))
			for _, t := range v {
				n += SizeUvarint(uint64(t))
			}
			return n
		},
		func(e *Enc, v []ids.NodeID) {
			e.Bool(v != nil)
			if v == nil {
				return
			}
			e.Uvarint(uint64(len(v)))
			for _, t := range v {
				e.Uvarint(uint64(t))
			}
		},
		func(d *Dec) []ids.NodeID {
			if !d.Bool() {
				return nil
			}
			n := d.Count(1)
			out := make([]ids.NodeID, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, decNodeID(d))
			}
			return out
		})
}

func decNodeID(d *Dec) ids.NodeID {
	v := d.Uvarint()
	if v > 1<<32-1 {
		d.fail("node id overflow")
		return ids.NoNode
	}
	return ids.NodeID(v)
}

func sizeStamp(s ids.EventStamp) int {
	return SizeUvarint(uint64(s.Node)) + SizeUvarint(uint64(s.Seq))
}

func encStamp(e *Enc, s ids.EventStamp) {
	e.Uvarint(uint64(s.Node))
	e.Uvarint(uint64(s.Seq))
}

func decStamp(d *Dec) ids.EventStamp {
	return ids.EventStamp{Node: decNodeID(d), Seq: ids.EventSeq(d.Uvarint())}
}

// --- event types ------------------------------------------------------------

func registerEventCodecs() {
	Register(idEventName, "event.Name",
		func(v event.Name) int { return SizeString(string(v)) },
		func(e *Enc, v event.Name) { e.String(string(v)) },
		func(d *Dec) event.Name { return event.Name(d.String()) })
	Register(idVerdict, "event.Verdict",
		func(v event.Verdict) int { return SizeUvarint(uint64(v)) },
		func(e *Enc, v event.Verdict) { e.Uvarint(uint64(v)) },
		func(d *Dec) event.Verdict { return event.Verdict(d.Uvarint()) })
	Register(idHandlerKind, "event.HandlerKind",
		func(v event.HandlerKind) int { return SizeUvarint(uint64(v)) },
		func(e *Enc, v event.HandlerKind) { e.Uvarint(uint64(v)) },
		func(d *Dec) event.HandlerKind { return event.HandlerKind(d.Uvarint()) })
	Register(idTarget, "event.Target", sizeTarget, encTarget, decTarget)
	Register(idHandlerRef, "event.HandlerRef", sizeHandlerRef, encHandlerRef, decHandlerRef)
	Register(idEventBlock, "*event.Block", sizeBlock, encBlock, decBlock)
}

func sizeTarget(t event.Target) int {
	return SizeUvarint(uint64(t.Kind)) + SizeUvarint(uint64(t.Thread)) +
		SizeUvarint(uint64(t.Group)) + SizeUvarint(uint64(t.Object))
}

func encTarget(e *Enc, t event.Target) {
	e.Uvarint(uint64(t.Kind))
	e.Uvarint(uint64(t.Thread))
	e.Uvarint(uint64(t.Group))
	e.Uvarint(uint64(t.Object))
}

func decTarget(d *Dec) event.Target {
	return event.Target{
		Kind:   event.TargetKind(d.Uvarint()),
		Thread: ids.ThreadID(d.Uvarint()),
		Group:  ids.GroupID(d.Uvarint()),
		Object: ids.ObjectID(d.Uvarint()),
	}
}

func sizeHandlerRef(h event.HandlerRef) int {
	return SizeString(string(h.Event)) + SizeUvarint(uint64(h.Kind)) +
		SizeUvarint(uint64(h.Object)) + SizeString(h.Entry) + SizeString(h.Proc) +
		SizeUvarint(uint64(h.AttachedIn)) + sizeMapSS(h.Data)
}

func encHandlerRef(e *Enc, h event.HandlerRef) {
	e.String(string(h.Event))
	e.Uvarint(uint64(h.Kind))
	e.Uvarint(uint64(h.Object))
	e.String(h.Entry)
	e.String(h.Proc)
	e.Uvarint(uint64(h.AttachedIn))
	encMapSS(e, h.Data)
}

func decHandlerRef(d *Dec) event.HandlerRef {
	return event.HandlerRef{
		Event:      event.Name(d.String()),
		Kind:       event.HandlerKind(d.Uvarint()),
		Object:     ids.ObjectID(d.Uvarint()),
		Entry:      d.String(),
		Proc:       d.String(),
		AttachedIn: ids.ObjectID(d.Uvarint()),
		Data:       decMapSS(d),
	}
}

func sizeBlock(b *event.Block) int {
	if b == nil {
		return 1
	}
	n := 1 + sizeStamp(b.Stamp) + SizeString(string(b.Name)) + sizeTarget(b.Target) +
		SizeUvarint(uint64(b.Raiser)) + SizeUvarint(uint64(b.RaiserNode)) +
		1 + SizeUvarint(b.SyncID) + SizeUvarint(uint64(b.Class)) + sizeState(b.State)
	if b.User == nil {
		n++ // tagNil
	} else {
		n += SizeValue(b.User)
	}
	return n
}

func encBlock(e *Enc, b *event.Block) {
	e.Bool(b != nil)
	if b == nil {
		return
	}
	encStamp(e, b.Stamp)
	e.String(string(b.Name))
	encTarget(e, b.Target)
	e.Uvarint(uint64(b.Raiser))
	e.Uvarint(uint64(b.RaiserNode))
	e.Bool(b.Sync)
	e.Uvarint(b.SyncID)
	e.Uvarint(uint64(b.Class))
	encState(e, b.State)
	if b.User == nil {
		e.Value(nil)
	} else {
		e.Value(b.User)
	}
}

func decBlock(d *Dec) *event.Block {
	if !d.Bool() {
		return nil
	}
	b := &event.Block{
		Stamp:      decStamp(d),
		Name:       event.Name(d.String()),
		Target:     decTarget(d),
		Raiser:     ids.ThreadID(d.Uvarint()),
		RaiserNode: decNodeID(d),
		Sync:       d.Bool(),
		SyncID:     d.Uvarint(),
		Class:      uint8(d.Uvarint()),
		State:      decState(d),
	}
	if v := d.Value(); v != nil {
		m, ok := v.(map[string]any)
		if !ok {
			d.fail("event block user area is not a map")
			return nil
		}
		b.User = m
	}
	return b
}

func sizeState(s *event.ThreadState) int {
	if s == nil {
		return 1
	}
	return 1 + SizeUvarint(uint64(s.Thread)) + SizeUvarint(uint64(s.Node)) +
		SizeUvarint(uint64(s.Object)) + SizeString(s.Entry) + SizeUvarint(s.PC) +
		SizeString(s.Blocked) + SizeVarint(int64(s.Depth))
}

func encState(e *Enc, s *event.ThreadState) {
	e.Bool(s != nil)
	if s == nil {
		return
	}
	e.Uvarint(uint64(s.Thread))
	e.Uvarint(uint64(s.Node))
	e.Uvarint(uint64(s.Object))
	e.String(s.Entry)
	e.Uvarint(s.PC)
	e.String(s.Blocked)
	e.Varint(int64(s.Depth))
}

func decState(d *Dec) *event.ThreadState {
	if !d.Bool() {
		return nil
	}
	return &event.ThreadState{
		Thread:  ids.ThreadID(d.Uvarint()),
		Node:    decNodeID(d),
		Object:  ids.ObjectID(d.Uvarint()),
		Entry:   d.String(),
		PC:      d.Uvarint(),
		Blocked: d.String(),
		Depth:   int(d.Varint()),
	}
}

// --- thread attributes and deltas -------------------------------------------

func registerThreadCodecs() {
	Register(idAttributes, "*thread.Attributes", sizeAttrs, encAttrs, decAttrs)
	Register(idDelta, "*thread.Delta", sizeDelta, encDelta, decDelta)
}

func sizeAttrs(a *thread.Attributes) int {
	if a == nil {
		return 1
	}
	n := 1 + SizeUvarint(uint64(a.Thread)) + SizeUvarint(uint64(a.Creator)) +
		SizeString(a.App) + SizeUvarint(uint64(a.Group)) + SizeString(a.IOChannel) +
		SizeString(a.ConsistencyLabel) + sizeChain(a.Handlers) +
		sizeTimers(a.Timers) + sizeMapSB(a.PerThread) + SizeUvarint(a.Version)
	return n
}

func encAttrs(e *Enc, a *thread.Attributes) {
	e.Bool(a != nil)
	if a == nil {
		return
	}
	e.Uvarint(uint64(a.Thread))
	e.Uvarint(uint64(a.Creator))
	e.String(a.App)
	e.Uvarint(uint64(a.Group))
	e.String(a.IOChannel)
	e.String(a.ConsistencyLabel)
	encChain(e, a.Handlers)
	encTimers(e, a.Timers)
	encMapSB(e, a.PerThread)
	e.Uvarint(a.Version)
}

func decAttrs(d *Dec) *thread.Attributes {
	if !d.Bool() {
		return nil
	}
	return &thread.Attributes{
		Thread:           ids.ThreadID(d.Uvarint()),
		Creator:          ids.ThreadID(d.Uvarint()),
		App:              d.String(),
		Group:            ids.GroupID(d.Uvarint()),
		IOChannel:        d.String(),
		ConsistencyLabel: d.String(),
		Handlers:         decChain(d),
		Timers:           decTimers(d),
		PerThread:        decMapSB(d),
		Version:          d.Uvarint(),
	}
}

// The delta's unexported unchanged flag does not cross the wire. That is
// deliberate and safe: Unchanged() is consulted only on the sending side
// (before encode), and for an unchanged delta the general Apply path
// rebuilds content identical to the fast path (full ChainKeep, no edits).
func sizeDelta(dl *thread.Delta) int {
	if dl == nil {
		return 1
	}
	n := 1 + SizeUvarint(uint64(dl.Thread)) + SizeUvarint(dl.Base) +
		SizeUvarint(dl.Version) + SizeUvarint(uint64(dl.ChainKeep)) +
		sizeRefs(dl.ChainPush) + 1 + sizeTimers(dl.Timers) +
		1 + SizeUvarint(uint64(dl.Group)) + SizeString(dl.IOChannel) +
		SizeString(dl.ConsistencyLabel) + sizeMapSB(dl.PTSet) + sizeStrs(dl.PTDel)
	return n
}

func encDelta(e *Enc, dl *thread.Delta) {
	e.Bool(dl != nil)
	if dl == nil {
		return
	}
	e.Uvarint(uint64(dl.Thread))
	e.Uvarint(dl.Base)
	e.Uvarint(dl.Version)
	e.Uvarint(uint64(dl.ChainKeep))
	encRefs(e, dl.ChainPush)
	e.Bool(dl.TimersChanged)
	encTimers(e, dl.Timers)
	e.Bool(dl.LabelsChanged)
	e.Uvarint(uint64(dl.Group))
	e.String(dl.IOChannel)
	e.String(dl.ConsistencyLabel)
	encMapSB(e, dl.PTSet)
	encStrs(e, dl.PTDel)
}

func decDelta(d *Dec) *thread.Delta {
	if !d.Bool() {
		return nil
	}
	return &thread.Delta{
		Thread:           ids.ThreadID(d.Uvarint()),
		Base:             d.Uvarint(),
		Version:          d.Uvarint(),
		ChainKeep:        int(d.Uvarint()),
		ChainPush:        decRefs(d),
		TimersChanged:    d.Bool(),
		Timers:           decTimers(d),
		LabelsChanged:    d.Bool(),
		Group:            ids.GroupID(d.Uvarint()),
		IOChannel:        d.String(),
		ConsistencyLabel: d.String(),
		PTSet:            decMapSB(d),
		PTDel:            decStrs(d),
	}
}

func sizeChain(c *event.Chain) int {
	if c == nil {
		return 1
	}
	links := c.Links()
	n := 1 + SizeUvarint(uint64(len(links)))
	for _, h := range links {
		n += sizeHandlerRef(h)
	}
	return n
}

func encChain(e *Enc, c *event.Chain) {
	e.Bool(c != nil)
	if c == nil {
		return
	}
	links := c.Links()
	e.Uvarint(uint64(len(links)))
	for _, h := range links {
		encHandlerRef(e, h)
	}
}

func decChain(d *Dec) *event.Chain {
	if !d.Bool() {
		return nil
	}
	c := &event.Chain{}
	n := d.Count(8)
	for i := 0; i < n; i++ {
		c.Push(decHandlerRef(d))
		if d.err != nil {
			return nil
		}
	}
	return c
}

func sizeRefs(refs []event.HandlerRef) int {
	if refs == nil {
		return 1
	}
	n := 1 + SizeUvarint(uint64(len(refs)))
	for _, h := range refs {
		n += sizeHandlerRef(h)
	}
	return n
}

func encRefs(e *Enc, refs []event.HandlerRef) {
	e.Bool(refs != nil)
	if refs == nil {
		return
	}
	e.Uvarint(uint64(len(refs)))
	for _, h := range refs {
		encHandlerRef(e, h)
	}
}

func decRefs(d *Dec) []event.HandlerRef {
	if !d.Bool() {
		return nil
	}
	n := d.Count(8)
	out := make([]event.HandlerRef, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, decHandlerRef(d))
		if d.err != nil {
			return nil
		}
	}
	return out
}

func sizeTimers(ts []thread.TimerSpec) int {
	if ts == nil {
		return 1
	}
	n := 1 + SizeUvarint(uint64(len(ts)))
	for _, t := range ts {
		n += SizeString(string(t.Event)) + SizeVarint(int64(t.Period))
	}
	return n
}

func encTimers(e *Enc, ts []thread.TimerSpec) {
	e.Bool(ts != nil)
	if ts == nil {
		return
	}
	e.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		e.String(string(t.Event))
		e.Varint(int64(t.Period))
	}
}

func decTimers(d *Dec) []thread.TimerSpec {
	if !d.Bool() {
		return nil
	}
	n := d.Count(2)
	out := make([]thread.TimerSpec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, thread.TimerSpec{
			Event:  event.Name(d.String()),
			Period: time.Duration(d.Varint()),
		})
		if d.err != nil {
			return nil
		}
	}
	return out
}

// --- locate, reliable, dsm --------------------------------------------------

func registerMiscCodecs() {
	Register(idProbeResult, "locate.ProbeResult",
		func(v locate.ProbeResult) int { return 2 + SizeUvarint(uint64(v.Next)) },
		func(e *Enc, v locate.ProbeResult) {
			e.Bool(v.Known)
			e.Bool(v.Here)
			e.Uvarint(uint64(v.Next))
		},
		func(d *Dec) locate.ProbeResult {
			return locate.ProbeResult{Known: d.Bool(), Here: d.Bool(), Next: decNodeID(d)}
		})

	Register(idEnvelope, "reliable.Envelope",
		func(v reliable.Envelope) int {
			return SizeUvarint(v.Seq) + SizeUvarint(v.Gen) + SizeString(v.Kind) +
				SizeValue(v.Payload) + SizeUvarint(v.AckCum) + SizeVarint(int64(v.Size))
		},
		func(e *Enc, v reliable.Envelope) {
			e.Uvarint(v.Seq)
			e.Uvarint(v.Gen)
			e.String(v.Kind)
			e.Value(v.Payload)
			e.Uvarint(v.AckCum)
			e.Varint(int64(v.Size))
		},
		func(d *Dec) reliable.Envelope {
			return reliable.Envelope{
				Seq:     d.Uvarint(),
				Gen:     d.Uvarint(),
				Kind:    d.String(),
				Payload: d.Value(),
				AckCum:  d.Uvarint(),
				Size:    int(d.Varint()),
			}
		})
	Register(idAck, "reliable.Ack",
		func(v reliable.Ack) int { return SizeUvarint(v.Seq) + SizeUvarint(v.Cum) },
		func(e *Enc, v reliable.Ack) { e.Uvarint(v.Seq); e.Uvarint(v.Cum) },
		func(d *Dec) reliable.Ack { return reliable.Ack{Seq: d.Uvarint(), Cum: d.Uvarint()} })

	Register(idMetaReq, "dsm.MetaReq",
		func(v dsm.MetaReq) int { return SizeUvarint(uint64(v.Seg)) },
		func(e *Enc, v dsm.MetaReq) { e.Uvarint(uint64(v.Seg)) },
		func(d *Dec) dsm.MetaReq { return dsm.MetaReq{Seg: ids.SegmentID(d.Uvarint())} })
	Register(idPageReq, "dsm.PageReq",
		func(v dsm.PageReq) int {
			return SizeUvarint(uint64(v.Seg)) + SizeVarint(int64(v.Page)) + SizeUvarint(uint64(v.From))
		},
		func(e *Enc, v dsm.PageReq) {
			e.Uvarint(uint64(v.Seg))
			e.Varint(int64(v.Page))
			e.Uvarint(uint64(v.From))
		},
		func(d *Dec) dsm.PageReq {
			return dsm.PageReq{
				Seg:  ids.SegmentID(d.Uvarint()),
				Page: int(d.Varint()),
				From: decNodeID(d),
			}
		})
	// PageReply distinguishes nil Data ("your copy is usable") from a real
	// page image, so nil-ness is encoded explicitly.
	Register(idPageReply, "dsm.PageReply",
		func(v dsm.PageReply) int {
			if v.Data == nil {
				return 1
			}
			return 1 + SizeBytes(v.Data)
		},
		func(e *Enc, v dsm.PageReply) {
			e.Bool(v.Data != nil)
			if v.Data != nil {
				e.Bytes(v.Data)
			}
		},
		func(d *Dec) dsm.PageReply {
			if !d.Bool() {
				return dsm.PageReply{}
			}
			return dsm.PageReply{Data: d.Bytes()}
		})
	Register(idMeta, "dsm.Meta",
		func(v dsm.Meta) int {
			return SizeUvarint(uint64(v.ID)) + SizeVarint(int64(v.Size)) +
				SizeVarint(int64(v.PageSize)) + 1
		},
		func(e *Enc, v dsm.Meta) {
			e.Uvarint(uint64(v.ID))
			e.Varint(int64(v.Size))
			e.Varint(int64(v.PageSize))
			e.Bool(v.UserPaged)
		},
		func(d *Dec) dsm.Meta {
			return dsm.Meta{
				ID:        ids.SegmentID(d.Uvarint()),
				Size:      int(d.Varint()),
				PageSize:  int(d.Varint()),
				UserPaged: d.Bool(),
			}
		})
	// FaultError crosses structurally (not as sentinel + message) because
	// core matches it with errors.As and reads its fields.
	Register(idFaultError, "*dsm.FaultError",
		func(v *dsm.FaultError) int {
			if v == nil {
				return 1
			}
			return 1 + SizeUvarint(uint64(v.Seg)) + SizeVarint(int64(v.Page)) + 1
		},
		func(e *Enc, v *dsm.FaultError) {
			e.Bool(v != nil)
			if v == nil {
				return
			}
			e.Uvarint(uint64(v.Seg))
			e.Varint(int64(v.Page))
			e.Bool(v.Write)
		},
		func(d *Dec) *dsm.FaultError {
			if !d.Bool() {
				return nil
			}
			return &dsm.FaultError{
				Seg:   ids.SegmentID(d.Uvarint()),
				Page:  int(d.Varint()),
				Write: d.Bool(),
			}
		})
}

// --- sentinels --------------------------------------------------------------

func registerSentinels() {
	RegisterErr(codeEvAlreadyRegistered, event.ErrAlreadyRegistered)
	RegisterErr(codeEvReservedName, event.ErrReservedName)
	RegisterErr(codeEvNotRegistered, event.ErrNotRegistered)
	RegisterErr(codeEvEmptyName, event.ErrEmptyName)
	RegisterErr(codeObjUnknown, object.ErrUnknownObject)
	RegisterErr(codeObjDeleted, object.ErrDeleted)
	RegisterErr(codeObjUnknownEntry, object.ErrUnknownEntry)
	RegisterErr(codeThrUnknownGroup, thread.ErrUnknownGroup)
	RegisterErr(codeThrNotMember, thread.ErrNotMember)
	RegisterErr(codeDSMUnknownSegment, dsm.ErrUnknownSegment)
	RegisterErr(codeDSMOutOfRange, dsm.ErrOutOfRange)
	RegisterErr(codeDSMBadRequest, dsm.ErrBadRequest)
	RegisterErr(codeDSMNoPager, dsm.ErrNoPager)
	RegisterErr(codeLocNotFound, locate.ErrNotFound)
	RegisterErr(codeLocPathBroken, locate.ErrPathBroken)
	RegisterErr(codeLockTimeout, locks.ErrTimeout)
	RegisterErr(codeRelUndeliverable, reliable.ErrUndeliverable)
}

// --- shared small-container helpers -----------------------------------------

func sizeMapSS(m map[string]string) int {
	if m == nil {
		return 1
	}
	n := 1 + SizeUvarint(uint64(len(m)))
	for k, v := range m {
		n += SizeString(k) + SizeString(v)
	}
	return n
}

func encMapSS(e *Enc, m map[string]string) {
	e.Bool(m != nil)
	if m == nil {
		return
	}
	e.Uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.String(k)
		e.String(m[k])
	}
}

func decMapSS(d *Dec) map[string]string {
	if !d.Bool() {
		return nil
	}
	n := d.Count(2)
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := d.String()
		m[k] = d.String()
		if d.err != nil {
			return nil
		}
	}
	return m
}

func sizeMapSB(m map[string][]byte) int {
	if m == nil {
		return 1
	}
	n := 1 + SizeUvarint(uint64(len(m)))
	for k, v := range m {
		n += SizeString(k) + SizeBytes(v)
	}
	return n
}

func encMapSB(e *Enc, m map[string][]byte) {
	e.Bool(m != nil)
	if m == nil {
		return
	}
	e.Uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.String(k)
		e.Bytes(m[k])
	}
}

func decMapSB(d *Dec) map[string][]byte {
	if !d.Bool() {
		return nil
	}
	n := d.Count(2)
	m := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := d.String()
		m[k] = d.Bytes()
		if d.err != nil {
			return nil
		}
	}
	return m
}

func sizeStrs(ss []string) int {
	if ss == nil {
		return 1
	}
	n := 1 + SizeUvarint(uint64(len(ss)))
	for _, s := range ss {
		n += SizeString(s)
	}
	return n
}

func encStrs(e *Enc, ss []string) {
	e.Bool(ss != nil)
	if ss == nil {
		return
	}
	e.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

func decStrs(d *Dec) []string {
	if !d.Bool() {
		return nil
	}
	n := d.Count(1)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String())
		if d.err != nil {
			return nil
		}
	}
	return out
}
