package wire

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/dsm"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/reliable"
	"repro/internal/thread"
)

// sampleRef builds a fully populated handler reference.
func sampleRef() event.HandlerRef {
	return event.HandlerRef{
		Event:      event.Terminate,
		Kind:       event.KindEntry,
		Object:     ids.NewObjectID(3, 7),
		Entry:      "unlock",
		Proc:       "chained_unlock",
		AttachedIn: ids.NewObjectID(2, 1),
		Data:       map[string]string{"lock": "mtx", "srv": "o2.9"},
	}
}

func sampleBlock() *event.Block {
	return &event.Block{
		Stamp:      ids.EventStamp{Node: 4, Seq: 91},
		Name:       event.Interrupt,
		Target:     event.ToGroup(17),
		Raiser:     ids.NewThreadID(1, 5),
		RaiserNode: 1,
		Sync:       true,
		SyncID:     99,
		State: &event.ThreadState{
			Thread:  ids.NewThreadID(1, 5),
			Node:    4,
			Object:  ids.NewObjectID(4, 2),
			Entry:   "serve",
			PC:      0xfeed,
			Blocked: "k.invoke",
			Depth:   3,
		},
		User: map[string]any{"reason": "test", "count": 7, "frac": 0.5},
	}
}

func sampleAttrs() *thread.Attributes {
	a := thread.NewAttributes(ids.NewThreadID(2, 9))
	a.Creator = ids.NewThreadID(1, 1)
	a.App = "shell"
	a.Group = 5
	a.IOChannel = "xterm:7"
	a.ConsistencyLabel = "causal"
	a.Handlers.Push(sampleRef())
	a.Timers = []thread.TimerSpec{{Event: event.Timer, Period: 250 * time.Millisecond}}
	a.PerThread["cwd"] = []byte("/tmp")
	a.Version = 41
	return a
}

func sampleDelta() *thread.Delta {
	return &thread.Delta{
		Thread:           ids.NewThreadID(2, 9),
		Base:             41,
		Version:          42,
		ChainKeep:        1,
		ChainPush:        []event.HandlerRef{sampleRef()},
		TimersChanged:    true,
		Timers:           []thread.TimerSpec{{Event: event.Timer, Period: time.Second}},
		LabelsChanged:    true,
		Group:            6,
		IOChannel:        "xterm:8",
		ConsistencyLabel: "strict",
		PTSet:            map[string][]byte{"cwd": []byte("/home")},
		PTDel:            []string{"tmp"},
	}
}

// samples returns one populated value per registered shared type, keyed by
// the registered type name, plus a spread of built-ins under builtin: keys.
func samples() map[string]any {
	return map[string]any{
		"ids.NodeID":         ids.NodeID(7),
		"ids.ThreadID":       ids.NewThreadID(3, 44),
		"ids.ObjectID":       ids.NewObjectID(2, 13),
		"ids.GroupID":        ids.GroupID(12),
		"ids.SegmentID":      ids.SegmentID(9),
		"ids.EventStamp":     ids.EventStamp{Node: 2, Seq: 1000},
		"[]ids.ThreadID":     []ids.ThreadID{ids.NewThreadID(1, 1), ids.NewThreadID(2, 2)},
		"[]ids.NodeID":       []ids.NodeID{1, 2, 3},
		"event.Name":         event.Quit,
		"event.Verdict":      event.VerdictResume,
		"event.HandlerKind":  event.KindBuddy,
		"event.Target":       event.ToThread(ids.NewThreadID(5, 6)),
		"event.HandlerRef":   sampleRef(),
		"*event.Block":       sampleBlock(),
		"*thread.Attributes": sampleAttrs(),
		"*thread.Delta":      sampleDelta(),
		"locate.ProbeResult": locate.ProbeResult{Known: true, Here: false, Next: 3},
		"reliable.Envelope": reliable.Envelope{
			Seq: 8, Kind: "rpc.req", Payload: map[string]any{"k": "v"}, AckCum: 7, Size: 120,
		},
		"reliable.Ack":    reliable.Ack{Seq: 9, Cum: 9},
		"dsm.MetaReq":     dsm.MetaReq{Seg: 4},
		"dsm.PageReq":     dsm.PageReq{Seg: 4, Page: 2, From: 6},
		"dsm.PageReply":   dsm.PageReply{Data: []byte{1, 2, 3, 4}},
		"dsm.Meta":        dsm.Meta{ID: 4, Size: 8192, PageSize: 1024, UserPaged: true},
		"*dsm.FaultError": &dsm.FaultError{Seg: 4, Page: 3, Write: true},

		"builtin:nil":      nil,
		"builtin:true":     true,
		"builtin:false":    false,
		"builtin:int":      -42,
		"builtin:int64":    int64(1) << 50,
		"builtin:uint64":   uint64(math.MaxUint64),
		"builtin:uint":     uint(77),
		"builtin:uint32":   uint32(math.MaxUint32),
		"builtin:int32":    int32(math.MinInt32),
		"builtin:float64":  3.25,
		"builtin:float32":  float32(1.5),
		"builtin:duration": 3 * time.Second,
		"builtin:string":   "hello, wire",
		"builtin:bytes":    []byte{0, 1, 2, 255},
		"builtin:sliceany": []any{1, "two", true, nil, []any{3.0}},
		"builtin:slicestr": []string{"a", "bb", ""},
		"builtin:mapsa":    map[string]any{"x": 1, "y": "z"},
		"builtin:mapss":    map[string]string{"a": "1", "b": "2"},
	}
}

// TestSizeMatchesEncode pins EncodedSize == len(EncodeValue) for every
// message kind — the size accounting the transport reports is exactly the
// bytes it writes.
func TestSizeMatchesEncode(t *testing.T) {
	for name, v := range samples() {
		enc, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		size, err := EncodedSize(v)
		if err != nil {
			t.Fatalf("%s: size: %v", name, err)
		}
		if size != len(enc) {
			t.Errorf("%s: EncodedSize=%d but len(Encode())=%d", name, size, len(enc))
		}
	}
}

// TestSamplesCoverEveryRegisteredType fails when a type is registered
// without a corresponding populated sample, so codec additions cannot dodge
// the size and round-trip checks.
func TestSamplesCoverEveryRegisteredType(t *testing.T) {
	covered := map[uint64]string{}
	for name, v := range samples() {
		if v == nil {
			continue
		}
		if id, tc := lookupType(v); tc != nil {
			covered[id] = name
		}
	}
	for id, name := range RegisteredTypes() {
		if _, ok := covered[id]; !ok {
			t.Errorf("registered type %d (%s) has no sample", id, name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for name, v := range samples() {
		enc, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%s: round trip mismatch:\n got %#v\nwant %#v", name, got, v)
		}
		re, err := EncodeValue(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if string(re) != string(enc) {
			t.Errorf("%s: re-encode not byte-identical", name)
		}
	}
}

func TestNilPointersRoundTrip(t *testing.T) {
	for name, v := range map[string]any{
		"*event.Block":       (*event.Block)(nil),
		"*thread.Attributes": (*thread.Attributes)(nil),
		"*thread.Delta":      (*thread.Delta)(nil),
		"*dsm.FaultError":    (*dsm.FaultError)(nil),
	} {
		enc, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%s: got %#v want typed nil", name, got)
		}
	}
}

func TestUnencodableValueFails(t *testing.T) {
	type unregistered struct{ X int }
	if _, err := EncodeValue(unregistered{1}); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("encode of unregistered type: err=%v, want ErrUnencodable", err)
	}
	if _, err := EncodedSize(unregistered{1}); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("size of unregistered type: err=%v, want ErrUnencodable", err)
	}
	// Nested inside a registered carrier: the envelope payload is sized via
	// SizeValue, whose failure must surface as an error, not a panic.
	env := reliable.Envelope{Seq: 1, Kind: "x", Payload: unregistered{2}}
	if _, err := EncodeValue(env); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("encode with unencodable payload: err=%v", err)
	}
	if _, err := EncodedSize(env); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("size with unencodable payload: err=%v", err)
	}
}

// TestSentinelIdentity checks the error codec end to end: registered
// sentinels survive as the identical value, wrapped sentinels keep their
// errors.Is identity through RemoteError, and unregistered errors still
// carry their message.
func TestSentinelIdentity(t *testing.T) {
	enc, err := EncodeValue(locate.ErrNotFound)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != error(locate.ErrNotFound) {
		t.Fatalf("sentinel did not survive as identity: %#v", got)
	}

	wrapped := fmt.Errorf("locating t3.4: %w", locate.ErrNotFound)
	enc, err = EncodeValue(error(wrapped))
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	gotErr, ok := v.(error)
	if !ok {
		t.Fatalf("decoded %#v, want error", v)
	}
	if !errors.Is(gotErr, locate.ErrNotFound) {
		t.Fatalf("wrapped sentinel lost errors.Is identity: %v", gotErr)
	}
	if gotErr.Error() != wrapped.Error() {
		t.Fatalf("message lost: %q want %q", gotErr.Error(), wrapped.Error())
	}

	plain := errors.New("something odd")
	enc, err = EncodeValue(error(plain))
	if err != nil {
		t.Fatal(err)
	}
	v, err = DecodeValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	gotErr = v.(error)
	if gotErr.Error() != plain.Error() {
		t.Fatalf("unregistered error message lost: %q", gotErr.Error())
	}
	var re *RemoteError
	if !errors.As(gotErr, &re) || re.Code != 0 {
		t.Fatalf("unregistered error should decode as code-0 RemoteError, got %#v", gotErr)
	}

	// A struct error with a registered codec crosses structurally.
	fe := &dsm.FaultError{Seg: 9, Page: 1, Write: true}
	enc, err = EncodeValue(error(fe))
	if err != nil {
		t.Fatal(err)
	}
	v, err = DecodeValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	var gotFE *dsm.FaultError
	if !errors.As(v.(error), &gotFE) || *gotFE != *fe {
		t.Fatalf("FaultError did not survive structurally: %#v", v)
	}
}

// TestCorruptInputs exercises the malformed-input paths: every case must
// produce an error, not a panic or an allocation blowup.
func TestCorruptInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":                 {},
		"unknown tag":           {200, 1}, // tag 200 unregistered
		"truncated string":      {tagString, 10, 'a'},
		"truncated bytes":       {tagBytes, 0xff, 0xff, 0x03},
		"huge slice count":      {tagSliceAny, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"huge map count":        {tagMapStrAny, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"non-minimal uvarint":   {tagUint64, 0x80, 0x00},
		"non-minimal varint":    {tagInt64, 0x80, 0x00},
		"bad bool in block":     append([]byte{firstTypeTag + idEventBlock}, 7),
		"uint32 overflow":       {tagUint32, 0xff, 0xff, 0xff, 0xff, 0x1f},
		"trailing bytes":        {tagNil, 0},
		"error truncated":       {tagError, 5},
		"stamp truncated":       {firstTypeTag + idEventStamp, 4},
		"ref wrong slot type":   {firstTypeTag + idHandlerRef, tagNil},
		"env payload truncated": {firstTypeTag + idEnvelope, 1, 1, 'k'},
	}
	for name, src := range cases {
		if _, err := DecodeValue(src); err == nil {
			t.Errorf("%s: decode accepted corrupt input %v", name, src)
		}
	}
}

// TestDeepNestingRejected bounds recursion on both sides.
func TestDeepNestingRejected(t *testing.T) {
	deep := any("leaf")
	for i := 0; i < maxNest+4; i++ {
		deep = []any{deep}
	}
	if _, err := EncodeValue(deep); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("deep encode: err=%v, want ErrUnencodable", err)
	}

	var crafted []byte
	for i := 0; i < maxNest+4; i++ {
		crafted = append(crafted, tagSliceAny, 1)
	}
	crafted = append(crafted, tagNil)
	if _, err := DecodeValue(crafted); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("deep decode: err=%v, want ErrCorrupt", err)
	}
}

// TestMinimalVarintEnforced pins canonical form: padding a varint with a
// redundant continuation byte must be rejected even though the numeric
// value is unchanged.
func TestMinimalVarintEnforced(t *testing.T) {
	ok := []byte{tagUint64, 0x05}
	if v, err := DecodeValue(ok); err != nil || v != uint64(5) {
		t.Fatalf("minimal decode: v=%v err=%v", v, err)
	}
	padded := []byte{tagUint64, 0x85, 0x00}
	if _, err := DecodeValue(padded); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("padded uvarint accepted: err=%v", err)
	}
}
