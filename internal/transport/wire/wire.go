// Package wire is the binary envelope codec for the TCP transport: the
// self-describing encoding of every payload that rides a kernel message —
// reliable envelopes, RPC requests and replies, event blocks, attribute
// snapshots and deltas, acks, heartbeats, locate probes.
//
// Layout. A value is a uvarint type tag followed by a tag-specific body.
// Tags below firstTypeTag are built-ins (nil, bools, integers, floats,
// strings, byte slices, generic containers, errors); tags at or above it
// are registered Go types, tag = firstTypeTag + typeID. Type IDs are
// assigned explicitly and are part of the wire format: both ends of a
// connection must register the same types under the same IDs (they do —
// registration happens in package init functions compiled into both
// binaries). All varints are minimal-form; a padded encoding is rejected,
// so every value has exactly one byte representation and accepted input
// re-encodes byte-identically (the fuzz round-trip checks this).
//
// Versioning. The transport handshake (tcptransport) carries
// wire.Version; a peer speaking a different codec version is rejected at
// connect rather than mis-decoded mid-stream. Adding new type IDs is
// backward-compatible (old peers reject unknown tags cleanly); changing
// an existing type's body layout requires a Version bump.
//
// Errors travel as values: an error encodes as a sentinel code (matched
// via errors.Is against the registered sentinel table) plus its full
// message. A decoded error whose message is exactly the sentinel's is the
// sentinel itself — identity preserved across the wire — and anything
// else becomes a *RemoteError that still satisfies errors.Is for its
// code's sentinel, so `errors.Is(err, core.ErrNodeDown)` works across
// processes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"time"
)

// Version is the codec version exchanged in the transport handshake.
// v2: event.Block carries a QoS class uvarint after SyncID, and tcp
// transport records carry a class uvarint between the To id and the
// payload.
const Version = 2

// ErrCorrupt is returned for structurally invalid input.
var ErrCorrupt = errors.New("wire: corrupt value")

// ErrUnencodable is returned when a value's type has no codec. The encode
// side fails loudly instead of shipping something the peer cannot decode.
var ErrUnencodable = errors.New("wire: unencodable value")

// Built-in value tags. Part of the wire format — append only.
const (
	tagNil       = 0
	tagTrue      = 1
	tagFalse     = 2
	tagInt       = 3  // zigzag varint, decodes as int
	tagInt64     = 4  // zigzag varint, decodes as int64
	tagUint64    = 5  // uvarint
	tagFloat64   = 6  // 8-byte little-endian IEEE 754
	tagString    = 7  // uvarint length + bytes
	tagBytes     = 8  // uvarint length + bytes
	tagSliceAny  = 9  // uvarint count + values
	tagMapStrAny = 10 // uvarint count + (string, value)*, sorted by key
	tagMapStrStr = 11 // uvarint count + (string, string)*, sorted by key
	tagError     = 12 // uvarint sentinel code + message string
	tagUint32    = 13 // uvarint
	tagInt32     = 14 // zigzag varint
	tagSliceStr  = 15 // uvarint count + strings
	tagDuration  = 16 // zigzag varint nanoseconds
	tagUint      = 17 // uvarint
	tagFloat32   = 18 // 4-byte little-endian IEEE 754

	// firstTypeTag is where registered type tags begin.
	firstTypeTag = 32
)

// maxNest bounds value recursion depth ([]any inside []any ...) so crafted
// input cannot blow the decode stack.
const maxNest = 32

// --- encoder ----------------------------------------------------------------

// Enc is an append-only encoder over a caller-owned buffer.
type Enc struct {
	Buf   []byte
	err   error
	depth int
}

// Err returns the first encode failure (an unencodable value).
func (e *Enc) Err() error { return e.err }

func (e *Enc) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Uvarint appends v in minimal varint form.
func (e *Enc) Uvarint(v uint64) { e.Buf = binary.AppendUvarint(e.Buf, v) }

// Varint appends v in zigzag varint form.
func (e *Enc) Varint(v int64) { e.Buf = binary.AppendVarint(e.Buf, v) }

// Bool appends a one-byte flag.
func (e *Enc) Bool(v bool) {
	if v {
		e.Buf = append(e.Buf, 1)
	} else {
		e.Buf = append(e.Buf, 0)
	}
}

// String appends a uvarint-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.Buf = append(e.Buf, s...)
}

// Bytes appends a uvarint-prefixed byte string.
func (e *Enc) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.Buf = append(e.Buf, b...)
}

// F64 appends an 8-byte little-endian float.
func (e *Enc) F64(v float64) {
	e.Buf = binary.LittleEndian.AppendUint64(e.Buf, math.Float64bits(v))
}

// Value appends one self-describing value (tag + body). Depth is tracked
// on the encoder itself so nesting through registered codecs (an envelope
// whose payload is another wrapped value) counts toward the same bound.
func (e *Enc) Value(v any) {
	if e.err != nil {
		return
	}
	if e.depth >= maxNest {
		e.fail(fmt.Errorf("%w: nesting over %d deep", ErrUnencodable, maxNest))
		return
	}
	e.depth++
	e.valueBody(v)
	e.depth--
}

func (e *Enc) valueBody(v any) {
	switch t := v.(type) {
	case nil:
		e.Uvarint(tagNil)
	case bool:
		if t {
			e.Uvarint(tagTrue)
		} else {
			e.Uvarint(tagFalse)
		}
	case int:
		e.Uvarint(tagInt)
		e.Varint(int64(t))
	case int64:
		e.Uvarint(tagInt64)
		e.Varint(t)
	case uint64:
		e.Uvarint(tagUint64)
		e.Uvarint(t)
	case uint:
		e.Uvarint(tagUint)
		e.Uvarint(uint64(t))
	case uint32:
		e.Uvarint(tagUint32)
		e.Uvarint(uint64(t))
	case int32:
		e.Uvarint(tagInt32)
		e.Varint(int64(t))
	case float64:
		e.Uvarint(tagFloat64)
		e.F64(t)
	case float32:
		e.Uvarint(tagFloat32)
		e.Buf = binary.LittleEndian.AppendUint32(e.Buf, math.Float32bits(t))
	case time.Duration:
		e.Uvarint(tagDuration)
		e.Varint(int64(t))
	case string:
		e.Uvarint(tagString)
		e.String(t)
	case []byte:
		e.Uvarint(tagBytes)
		e.Bytes(t)
	case []any:
		e.Uvarint(tagSliceAny)
		e.Uvarint(uint64(len(t)))
		for _, el := range t {
			e.Value(el)
		}
	case []string:
		e.Uvarint(tagSliceStr)
		e.Uvarint(uint64(len(t)))
		for _, s := range t {
			e.String(s)
		}
	case map[string]any:
		e.Uvarint(tagMapStrAny)
		e.Uvarint(uint64(len(t)))
		for _, k := range sortedKeys(t) {
			e.String(k)
			e.Value(t[k])
		}
	case map[string]string:
		e.Uvarint(tagMapStrStr)
		e.Uvarint(uint64(len(t)))
		for _, k := range sortedKeys(t) {
			e.String(k)
			e.String(t[k])
		}
	case error:
		// A struct error with its own registered codec (dsm.FaultError)
		// crosses structurally, so errors.As keeps working at the far end;
		// anything else crosses as sentinel code + message.
		if id, tc := lookupType(v); tc != nil {
			e.Uvarint(firstTypeTag + id)
			tc.enc(e, v)
			return
		}
		e.Uvarint(tagError)
		e.Error(t)
	default:
		id, tc := lookupType(v)
		if tc == nil {
			e.fail(fmt.Errorf("%w: %T", ErrUnencodable, v))
			return
		}
		e.Uvarint(firstTypeTag + id)
		tc.enc(e, v)
	}
}

// Error appends an error body: sentinel code + full message.
func (e *Enc) Error(err error) {
	e.Uvarint(errCodeFor(err))
	e.String(err.Error())
}

// --- decoder ----------------------------------------------------------------

// Dec is a sticky-error decoder over one encoded buffer. On corrupt input
// every method returns a zero value and Err reports the first failure;
// nothing panics and no length is trusted before it is checked against the
// remaining input (so crafted lengths cannot force huge allocations).
type Dec struct {
	Src   []byte
	err   error
	depth int
}

// Err returns the first decode failure.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
}

// Done reports whether the input was fully and cleanly consumed.
func (d *Dec) Done() bool { return d.err == nil && len(d.Src) == 0 }

// Corrupt marks the input corrupt from outside the package — a registered
// decode function that found a structural mismatch (e.g. a slot holding a
// value of the wrong type).
func (d *Dec) Corrupt(msg string) { d.fail(msg) }

// Uvarint reads a minimal-form uvarint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.Src)
	if n <= 0 || n != uvarintLen(v) {
		d.fail("bad uvarint")
		return 0
	}
	d.Src = d.Src[n:]
	return v
}

// Varint reads a minimal-form zigzag varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.Src)
	if n <= 0 || n != varintLen(v) {
		d.fail("bad varint")
		return 0
	}
	d.Src = d.Src[n:]
	return v
}

// Bool reads a one-byte flag.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.Src) < 1 {
		d.fail("short bool")
		return false
	}
	b := d.Src[0]
	d.Src = d.Src[1:]
	if b > 1 {
		d.fail("bad bool")
		return false
	}
	return b == 1
}

// String reads a uvarint-prefixed string.
func (d *Dec) String() string {
	b := d.take("string")
	return string(b)
}

// Bytes reads a uvarint-prefixed byte string. The result is a copy, safe
// to retain past the input buffer.
func (d *Dec) Bytes() []byte {
	b := d.take("bytes")
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// take reads a uvarint-prefixed blob aliasing d.Src.
func (d *Dec) take(what string) []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.Src)) {
		d.fail(what + " length exceeds input")
		return nil
	}
	b := d.Src[:n]
	d.Src = d.Src[n:]
	return b
}

// F64 reads an 8-byte little-endian float.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.Src) < 8 {
		d.fail("short float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.Src))
	d.Src = d.Src[8:]
	return v
}

// Count reads a uvarint element count and sanity-checks it against the
// remaining input, assuming each element costs at least min bytes — so a
// crafted count cannot pre-allocate unbounded memory.
func (d *Dec) Count(min int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(d.Src)/min)+1 {
		d.fail("count exceeds input")
		return 0
	}
	return int(n)
}

// Value reads one self-describing value. Depth is tracked on the decoder
// itself, so crafted input cannot blow the stack by nesting registered
// types (an envelope inside an envelope inside ...) any more than it can
// with built-in containers.
func (d *Dec) Value() any {
	if d.err != nil {
		return nil
	}
	if d.depth >= maxNest {
		d.fail("nesting too deep")
		return nil
	}
	d.depth++
	v := d.valueBody()
	d.depth--
	return v
}

func (d *Dec) valueBody() any {
	tag := d.Uvarint()
	if d.err != nil {
		return nil
	}
	switch tag {
	case tagNil:
		return nil
	case tagTrue:
		return true
	case tagFalse:
		return false
	case tagInt:
		return int(d.Varint())
	case tagInt64:
		return d.Varint()
	case tagUint64:
		return d.Uvarint()
	case tagUint:
		return uint(d.Uvarint())
	case tagUint32:
		v := d.Uvarint()
		if v > math.MaxUint32 {
			d.fail("uint32 overflow")
			return nil
		}
		return uint32(v)
	case tagInt32:
		v := d.Varint()
		if v > math.MaxInt32 || v < math.MinInt32 {
			d.fail("int32 overflow")
			return nil
		}
		return int32(v)
	case tagFloat64:
		return d.F64()
	case tagFloat32:
		if len(d.Src) < 4 {
			d.fail("short float32")
			return nil
		}
		v := math.Float32frombits(binary.LittleEndian.Uint32(d.Src))
		d.Src = d.Src[4:]
		return v
	case tagDuration:
		return time.Duration(d.Varint())
	case tagString:
		return d.String()
	case tagBytes:
		return d.Bytes()
	case tagSliceAny:
		n := d.Count(1)
		if d.err != nil {
			return nil
		}
		out := make([]any, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, d.Value())
			if d.err != nil {
				return nil
			}
		}
		return out
	case tagSliceStr:
		n := d.Count(1)
		if d.err != nil {
			return nil
		}
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, d.String())
			if d.err != nil {
				return nil
			}
		}
		return out
	case tagMapStrAny:
		n := d.Count(2)
		if d.err != nil {
			return nil
		}
		out := make(map[string]any, n)
		for i := 0; i < n; i++ {
			k := d.String()
			out[k] = d.Value()
			if d.err != nil {
				return nil
			}
		}
		return out
	case tagMapStrStr:
		n := d.Count(2)
		if d.err != nil {
			return nil
		}
		out := make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := d.String()
			out[k] = d.String()
			if d.err != nil {
				return nil
			}
		}
		return out
	case tagError:
		return d.Error()
	default:
		tc := types[tag-firstTypeTag]
		if tc == nil {
			d.fail(fmt.Sprintf("unknown type tag %d", tag))
			return nil
		}
		return tc.dec(d)
	}
}

// Error reads an error body. A decoded message exactly matching its code's
// sentinel returns the sentinel value itself; anything else becomes a
// *RemoteError that errors.Is-matches the sentinel.
func (d *Dec) Error() error {
	code := d.Uvarint()
	msg := d.String()
	if d.err != nil {
		return nil
	}
	if s := errByCode[code]; s != nil && s.Error() == msg {
		return s
	}
	return &RemoteError{Code: code, Msg: msg}
}

// --- top-level helpers ------------------------------------------------------

// AppendValue appends the encoding of v to dst. It fails (returning dst
// unchanged) only for values with no codec.
func AppendValue(dst []byte, v any) ([]byte, error) {
	e := Enc{Buf: dst}
	e.Value(v)
	if e.err != nil {
		return dst, e.err
	}
	return e.Buf, nil
}

// EncodeValue returns the encoding of v.
func EncodeValue(v any) ([]byte, error) { return AppendValue(nil, v) }

// DecodeValue parses exactly one value from src; trailing bytes are an
// error (a body is a whole record, not a stream prefix).
func DecodeValue(src []byte) (any, error) {
	d := Dec{Src: src}
	v := d.Value()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.Src) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.Src))
	}
	return v, nil
}

// EncodedSize returns exactly len(EncodeValue(v)) without encoding. Every
// registered type computes its size structurally (a hand-written size
// function, or the codec's own arithmetic for built-ins); the codec test
// suite pins EncodedSize == len(EncodeValue) for every message kind, so
// the two cannot drift.
func EncodedSize(v any) (n int, err error) {
	// Registered size functions report nested unencodable values by
	// panicking through SizeValue; translate that back into an error here.
	defer func() {
		if r := recover(); r != nil {
			sp, ok := r.(sizePanic)
			if !ok {
				panic(r)
			}
			n, err = 0, sp.err
		}
	}()
	return sizeValue(v, 0)
}

type sizePanic struct{ err error }

func sizeValue(v any, depth int) (int, error) {
	if depth > maxNest {
		return 0, fmt.Errorf("%w: nesting over %d deep", ErrUnencodable, maxNest)
	}
	switch t := v.(type) {
	case nil, bool:
		return 1, nil
	case int:
		return 1 + varintLen(int64(t)), nil
	case int64:
		return 1 + varintLen(t), nil
	case uint64:
		return 1 + uvarintLen(t), nil
	case uint:
		return 1 + uvarintLen(uint64(t)), nil
	case uint32:
		return 1 + uvarintLen(uint64(t)), nil
	case int32:
		return 1 + varintLen(int64(t)), nil
	case float64:
		return 1 + 8, nil
	case float32:
		return 1 + 4, nil
	case time.Duration:
		return 1 + varintLen(int64(t)), nil
	case string:
		return 1 + SizeString(t), nil
	case []byte:
		return 1 + SizeBytes(t), nil
	case []any:
		n := 1 + uvarintLen(uint64(len(t)))
		for _, el := range t {
			en, err := sizeValue(el, depth+1)
			if err != nil {
				return 0, err
			}
			n += en
		}
		return n, nil
	case []string:
		n := 1 + uvarintLen(uint64(len(t)))
		for _, s := range t {
			n += SizeString(s)
		}
		return n, nil
	case map[string]any:
		n := 1 + uvarintLen(uint64(len(t)))
		for k, el := range t {
			en, err := sizeValue(el, depth+1)
			if err != nil {
				return 0, err
			}
			n += SizeString(k) + en
		}
		return n, nil
	case map[string]string:
		n := 1 + uvarintLen(uint64(len(t)))
		for k, el := range t {
			n += SizeString(k) + SizeString(el)
		}
		return n, nil
	case error:
		if id, tc := lookupType(v); tc != nil {
			return uvarintLen(firstTypeTag+id) + tc.size(v), nil
		}
		return 1 + SizeError(t), nil
	default:
		id, tc := lookupType(v)
		if tc == nil {
			return 0, fmt.Errorf("%w: %T", ErrUnencodable, v)
		}
		return uvarintLen(firstTypeTag+id) + tc.size(v), nil
	}
}

// --- type registry ----------------------------------------------------------

type typeCodec struct {
	name string
	enc  func(*Enc, any)
	dec  func(*Dec) any
	size func(any) int
}

var (
	types     = map[uint64]*typeCodec{}
	typeByRT  = map[reflect.Type]uint64{}
	typeNames = map[string]uint64{}
)

// Register installs the codec for one Go type under a stable numeric ID.
// IDs are part of the wire format: never reuse or renumber one. size must
// return exactly the bytes enc will append — the codec test suite pins it.
// Register panics on conflicts; it is called from package init functions
// only.
func Register[T any](id uint64, name string, size func(T) int, enc func(*Enc, T), dec func(*Dec) T) {
	rt := reflect.TypeOf((*T)(nil)).Elem()
	if _, dup := types[id]; dup {
		panic(fmt.Sprintf("wire: type id %d registered twice (%s)", id, name))
	}
	if _, dup := typeByRT[rt]; dup {
		panic(fmt.Sprintf("wire: type %v registered twice", rt))
	}
	if _, dup := typeNames[name]; dup {
		panic(fmt.Sprintf("wire: type name %q registered twice", name))
	}
	types[id] = &typeCodec{
		name: name,
		enc:  func(e *Enc, v any) { enc(e, v.(T)) },
		dec:  func(d *Dec) any { return dec(d) },
		size: func(v any) int { return size(v.(T)) },
	}
	typeByRT[rt] = id
	typeNames[name] = id
}

// lookupType resolves a value's registered codec (nil if none).
func lookupType(v any) (uint64, *typeCodec) {
	id, ok := typeByRT[reflect.TypeOf(v)]
	if !ok {
		return 0, nil
	}
	return id, types[id]
}

// Encodable reports whether v has a codec (built-in or registered), so
// senders can fail fast before framing.
func Encodable(v any) bool {
	_, err := EncodedSize(v)
	return err == nil
}

// RegisteredTypes returns the registered type names keyed by ID, for the
// codec test suite to enumerate.
func RegisteredTypes() map[uint64]string {
	out := make(map[uint64]string, len(types))
	for id, tc := range types {
		out[id] = tc.name
	}
	return out
}

// --- sentinel error registry ------------------------------------------------

// RemoteError is an error decoded from the wire whose message did not
// byte-match a registered sentinel (it was wrapped with context on the
// remote side). It still errors.Is-matches the sentinel its code names.
type RemoteError struct {
	Code uint64 // registered sentinel code, 0 if none matched at encode
	Msg  string
}

// Error returns the remote error's full message.
func (e *RemoteError) Error() string { return e.Msg }

// Is matches the registered sentinel for the error's code.
func (e *RemoteError) Is(target error) bool {
	return e.Code != 0 && errByCode[e.Code] == target
}

var (
	errByCode = map[uint64]error{}
	errList   []error // registration order, for errCodeFor's Is walk
	errCodes  []uint64
)

// RegisterErr installs a sentinel error under a stable code (> 0). Encoded
// errors carry the code of the first registered sentinel they errors.Is-
// match, so wrapped errors keep their identity across the wire.
func RegisterErr(code uint64, err error) {
	if code == 0 || err == nil {
		panic("wire: sentinel code must be > 0 and error non-nil")
	}
	if _, dup := errByCode[code]; dup {
		panic(fmt.Sprintf("wire: error code %d registered twice", code))
	}
	errByCode[code] = err
	errList = append(errList, err)
	errCodes = append(errCodes, code)
}

// errCodeFor finds the sentinel code for err (0 when unregistered).
func errCodeFor(err error) uint64 {
	var re *RemoteError
	if errors.As(err, &re) {
		// Re-encoding a decoded error (relay): keep its original code.
		return re.Code
	}
	for i, s := range errList {
		if errors.Is(err, s) {
			return errCodes[i]
		}
	}
	return 0
}

// SentinelFor returns the registered sentinel for a code (nil if none),
// for tests.
func SentinelFor(code uint64) error { return errByCode[code] }

// --- size helpers -----------------------------------------------------------

// SizeUvarint is the encoded size of v as a uvarint.
func SizeUvarint(v uint64) int { return uvarintLen(v) }

// SizeVarint is the encoded size of v as a zigzag varint.
func SizeVarint(v int64) int { return varintLen(v) }

// SizeString is the encoded size of a uvarint-prefixed string.
func SizeString(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

// SizeBytes is the encoded size of a uvarint-prefixed byte string.
func SizeBytes(b []byte) int { return uvarintLen(uint64(len(b))) + len(b) }

// SizeError is the encoded size of an error body.
func SizeError(err error) int {
	return uvarintLen(errCodeFor(err)) + SizeString(err.Error())
}

// SizeValue is the encoded size of one self-describing value. It is meant
// for registered size functions sizing nested `any` fields: an unencodable
// value panics, and EncodedSize converts that panic back into an error at
// its boundary. Outside size functions, prefer EncodedSize.
func SizeValue(v any) int {
	n, err := sizeValue(v, 0)
	if err != nil {
		panic(sizePanic{err})
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func varintLen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
