// Package transporttest holds contract tests every transport.Transport
// implementation must pass, factored so netsim and tcptransport run the
// identical scenarios. The flagship is the Close drain contract: after
// Close(ctx) returns nil, no handler is running and none will run again.
package transporttest

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// Factory boots a started transport hosting nodes 1..len(handlers),
// with handlers[n] attached to node n. The factory registers its own
// cleanup for anything Close does not release.
type Factory func(t *testing.T, handlers map[ids.NodeID]transport.Handler) transport.Transport

// NoHandlerAfterClose drives traffic between two nodes with slow
// handlers, closes the transport mid-stream, and fails if any handler
// observes a time after Close returned — in-flight handlers must have
// drained, queued messages must be discarded, nothing may run late.
func NoHandlerAfterClose(t *testing.T, factory Factory) {
	t.Helper()
	var closed atomic.Bool
	var violations atomic.Int64
	handler := func(m transport.Message) {
		if closed.Load() {
			violations.Add(1)
		}
		// Long enough that Close overlaps in-flight handlers; the
		// post-sleep check is the one a non-draining Close trips.
		time.Sleep(200 * time.Microsecond)
		if closed.Load() {
			violations.Add(1)
		}
	}
	tr := factory(t, map[ids.NodeID]transport.Handler{1: handler, 2: handler})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, pairDir := range [][2]ids.NodeID{{1, 2}, {2, 1}} {
		from, to := pairDir[0], pairDir[1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = tr.Send(transport.Message{From: from, To: to, Kind: "test.drain", Payload: i})
			}
		}()
	}

	time.Sleep(20 * time.Millisecond) // let traffic and handlers overlap Close
	if err := tr.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	closed.Store(true)
	close(stop)
	wg.Wait()

	// Any straggler handler still running would trip the flag here.
	time.Sleep(50 * time.Millisecond)
	if v := violations.Load(); v > 0 {
		t.Fatalf("%d handler executions observed after Close returned", v)
	}
}

// CloseTimeout checks the other half of the contract: a ctx that expires
// while handlers are wedged makes Close return ctx.Err() instead of
// hanging forever.
func CloseTimeout(t *testing.T, factory Factory) {
	t.Helper()
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	handler := func(m transport.Message) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release // wedged until the test lets go
	}
	tr := factory(t, map[ids.NodeID]transport.Handler{1: handler, 2: handler})
	_ = tr.Send(transport.Message{From: 1, To: 2, Kind: "test.wedge", Payload: 0})
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("handler never entered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := tr.Close(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Close with wedged handler = %v, want DeadlineExceeded", err)
	}
	close(release)
	// A second Close with no deadline now drains cleanly.
	if err := tr.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
