package transporttest

import (
	"context"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/transport/tcptransport"
)

// netsimFactory boots the deterministic simulator fabric.
func netsimFactory(t *testing.T, handlers map[ids.NodeID]transport.Handler) transport.Transport {
	f := netsim.New(netsim.Config{})
	for n, h := range handlers {
		if err := f.Attach(n, h); err != nil {
			t.Fatal(err)
		}
	}
	f.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		f.Close(ctx)
	})
	return f
}

// tcpFactory boots one tcptransport per node, all in this process, so
// traffic crosses real loopback sockets. Close on the returned transport
// closes every member — the drain contract must hold cluster-wide.
func tcpFactory(t *testing.T, handlers map[ids.NodeID]transport.Handler) transport.Transport {
	members := make(map[ids.NodeID]*tcptransport.Transport, len(handlers))
	peers := make(map[ids.NodeID]string, len(handlers))
	for n := range handlers {
		tr, err := tcptransport.New(tcptransport.Config{
			Listen:    "127.0.0.1:0",
			RetryBase: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		members[n] = tr
		peers[n] = tr.Addr()
	}
	for n, tr := range members {
		if err := tr.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
		if err := tr.Attach(n, handlers[n]); err != nil {
			t.Fatal(err)
		}
		tr.Start()
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, tr := range members {
			tr.Close(ctx)
		}
	})
	return &tcpCluster{members: members, primary: members[1]}
}

// tcpCluster fans the Transport surface out over per-process members:
// sends route via the sender's transport, Close closes every member.
type tcpCluster struct {
	members map[ids.NodeID]*tcptransport.Transport
	primary *tcptransport.Transport
}

func (c *tcpCluster) Attach(node ids.NodeID, h transport.Handler) error {
	return c.members[node].Attach(node, h)
}
func (c *tcpCluster) Start() {}
func (c *tcpCluster) Send(m transport.Message) error {
	tr, ok := c.members[m.From]
	if !ok {
		tr = c.primary
	}
	return tr.Send(m)
}
func (c *tcpCluster) Broadcast(from ids.NodeID, kind string, payload any) error {
	return c.members[from].Broadcast(from, kind, payload)
}
func (c *tcpCluster) Multicast(from ids.NodeID, group, kind string, payload any) error {
	return c.members[from].Multicast(from, group, kind, payload)
}
func (c *tcpCluster) JoinGroup(group string, node ids.NodeID)  { c.members[node].JoinGroup(group, node) }
func (c *tcpCluster) LeaveGroup(group string, node ids.NodeID) { c.members[node].LeaveGroup(group, node) }
func (c *tcpCluster) GroupMembers(group string) []ids.NodeID {
	return c.primary.GroupMembers(group)
}
func (c *tcpCluster) Metrics() *metrics.Registry { return c.primary.Metrics() }
func (c *tcpCluster) DispatchWorkers() int       { return c.primary.DispatchWorkers() }
func (c *tcpCluster) Close(ctx context.Context) error {
	var firstErr error
	for _, tr := range c.members {
		if err := tr.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// TestNoHandlerAfterClose is the satellite-6 contract pinned for both
// implementations: Close is a drain barrier.
func TestNoHandlerAfterClose(t *testing.T) {
	t.Run("netsim", func(t *testing.T) { NoHandlerAfterClose(t, netsimFactory) })
	t.Run("tcp", func(t *testing.T) { NoHandlerAfterClose(t, tcpFactory) })
}

// TestCloseTimeout pins the bounded-wait half of the contract.
func TestCloseTimeout(t *testing.T) {
	t.Run("netsim", func(t *testing.T) { CloseTimeout(t, netsimFactory) })
	t.Run("tcp", func(t *testing.T) { CloseTimeout(t, tcpFactory) })
}
