package transport

import (
	"sort"

	"repro/internal/ids"
)

// Spanning-tree fan-out layout. A broadcast-style message to n nodes from
// one sender costs the sender n-1 sends and one network round; routed down
// a k-ary tree it costs every node at most k sends and ⌈log_k n⌉ rounds,
// with the same n-1 total messages. The layout is pure arithmetic over a
// shared node list — no per-tree state, no handshakes — so any node that
// holds the list can compute its own children, and a relay that must adopt
// a dead child's subtree just recurses into the child's slots.
//
// The tree is the implicit heap layout: the node at index i relays to
// indices k·i+1 … k·i+k. Index 0 is the root (the sender), and the rest of
// the list is sorted ascending so that every participant derives the
// identical tree from the identical membership view.

// TreeOrder arranges nodes for a fan-out tree rooted at root: root first,
// every other node following in ascending order. The input is not
// modified. Root need not appear in nodes; it is prepended regardless.
func TreeOrder(nodes []ids.NodeID, root ids.NodeID) []ids.NodeID {
	out := make([]ids.NodeID, 0, len(nodes)+1)
	out = append(out, root)
	for _, n := range nodes {
		if n != root {
			out = append(out, n)
		}
	}
	rest := out[1:]
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return out
}

// TreeChildren returns the child index range [lo, hi) of the node at idx
// in a k-ary heap-layout tree over n nodes. An empty range (lo >= hi)
// means the node is a leaf.
func TreeChildren(n, k, idx int) (lo, hi int) {
	if k < 1 {
		k = 1
	}
	lo = k*idx + 1
	hi = lo + k
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// TreeDepth returns the number of relay rounds a k-ary tree over n nodes
// needs (the depth of the last leaf): 0 for n <= 1.
func TreeDepth(n, k int) int {
	if k < 2 {
		if n <= 1 {
			return 0
		}
		return n - 1
	}
	depth, reach, width := 0, 1, 1
	for reach < n {
		width *= k
		reach += width
		depth++
	}
	return depth
}
