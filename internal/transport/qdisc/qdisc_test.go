package qdisc

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/transport"
)

func msg(class transport.Class, size int) transport.Message {
	return transport.Message{From: 1, To: 2, Kind: "t", Size: size, Class: class}
}

// TestStrictPriority: system and control pop before any tenant backlog,
// system before control.
func TestStrictPriority(t *testing.T) {
	q := New(&transport.QoSConfig{Enabled: true}, 64, metrics.NewRegistry(), nil)
	q.Offer(msg(transport.ClassDefault, 10))
	q.Offer(msg(transport.ClassControl, 10))
	q.Offer(msg(transport.ClassSystem, 10))
	order := []transport.Class{transport.ClassSystem, transport.ClassControl, transport.ClassDefault}
	for i, want := range order {
		m, ok := q.TryPop()
		if !ok || m.Class != want {
			t.Fatalf("pop %d: got class %v ok=%v, want %v", i, m.Class, ok, want)
		}
	}
}

// TestDWRRProportionalService: with classes of weight 4 and 1 both
// backlogged, class 1 drains ~4x as fast.
func TestDWRRProportionalService(t *testing.T) {
	cfg := &transport.QoSConfig{Enabled: true, Weights: map[transport.Class]int{1: 4, 2: 1}}
	q := New(cfg, 1024, metrics.NewRegistry(), nil)
	const each = 200
	for i := 0; i < each; i++ {
		q.Offer(msg(1, 100))
		q.Offer(msg(2, 100))
	}
	counts := map[transport.Class]int{}
	for i := 0; i < 100; i++ {
		m, ok := q.TryPop()
		if !ok {
			t.Fatalf("queue drained early at %d", i)
		}
		counts[m.Class]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 3.0 || ratio > 5.0 {
		t.Fatalf("service ratio = %.2f (counts %v), want ~4", ratio, counts)
	}
}

// TestAdmissionRejectsEqualWeight: budget full of same-weight work →
// incoming is rejected, nothing evicted.
func TestAdmissionRejectsEqualWeight(t *testing.T) {
	reg := metrics.NewRegistry()
	q := New(&transport.QoSConfig{Enabled: true}, 4, reg, nil)
	for i := 0; i < 4; i++ {
		if !q.Offer(msg(transport.ClassDefault, 10)) {
			t.Fatalf("offer %d rejected under budget", i)
		}
	}
	if q.Offer(msg(transport.ClassDefault, 10)) {
		t.Fatal("offer accepted past budget with no lighter victim")
	}
	if got := reg.Get(metrics.DispatchQShed("default")); got != 1 {
		t.Fatalf("default shed counter = %d, want 1", got)
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d, want 4", q.Len())
	}
}

// TestShedEvictsLighterClass: a heavier class evicts queued lighter work
// when the budget is full, and the OnShed callback sees the victim.
func TestShedEvictsLighterClass(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := &transport.QoSConfig{Enabled: true, Weights: map[transport.Class]int{1: 8, 2: 1}}
	var shed []transport.Message
	q := New(cfg, 4, reg, func(m transport.Message) { shed = append(shed, m) })
	for i := 0; i < 4; i++ {
		q.Offer(msg(2, 10))
	}
	if !q.Offer(msg(1, 10)) {
		t.Fatal("heavy offer rejected despite lighter victim")
	}
	if len(shed) != 1 || shed[0].Class != 2 {
		t.Fatalf("shed = %v, want one class-2 victim", shed)
	}
	if got := reg.Get(metrics.DispatchQShed("t2")); got != 1 {
		t.Fatalf("t2 shed counter = %d, want 1", got)
	}
	// Lighter class may not evict heavier queued work.
	for q.Len() < 4 {
		q.Offer(msg(1, 10))
	}
	if q.Offer(msg(2, 10)) {
		t.Fatal("light offer evicted heavier work")
	}
}

// TestSystemNeverShed: system/control admission ignores the tenant budget
// entirely — the structural never-shed guarantee.
func TestSystemNeverShed(t *testing.T) {
	reg := metrics.NewRegistry()
	q := New(&transport.QoSConfig{Enabled: true}, 1, reg, nil)
	q.Offer(msg(transport.ClassDefault, 10))
	for i := 0; i < 100; i++ {
		if !q.Offer(msg(transport.ClassSystem, 10)) {
			t.Fatal("system offer rejected")
		}
		if !q.Offer(msg(transport.ClassControl, 10)) {
			t.Fatal("control offer rejected")
		}
	}
	if got := reg.Get(metrics.DispatchQShed("system")); got != 0 {
		t.Fatalf("system shed = %d, want 0", got)
	}
	if got := reg.Get(metrics.DispatchQShed("control")); got != 0 {
		t.Fatalf("control shed = %d, want 0", got)
	}
	if q.Len() != 201 {
		t.Fatalf("len = %d, want 201", q.Len())
	}
}

// TestPopBlocksUntilOffer: Pop wakes on a concurrent Offer and returns
// false when done closes.
func TestPopBlocksUntilOffer(t *testing.T) {
	q := New(&transport.QoSConfig{Enabled: true}, 16, metrics.NewRegistry(), nil)
	done := make(chan struct{})
	got := make(chan transport.Message, 1)
	go func() {
		m, ok := q.Pop(done)
		if ok {
			got <- m
		}
		close(got)
	}()
	q.Offer(transport.Message{From: ids.NodeID(3), To: 2, Kind: "x", Size: 5})
	m, ok := <-got
	if !ok || m.From != 3 {
		t.Fatalf("pop got %v ok=%v", m, ok)
	}
	finished := make(chan struct{})
	go func() {
		if _, ok := q.Pop(done); ok {
			t.Error("pop returned a message after done")
		}
		close(finished)
	}()
	close(done)
	<-finished
}

// TestFIFOWithinClass: messages of one class pop in offer order.
func TestFIFOWithinClass(t *testing.T) {
	q := New(&transport.QoSConfig{Enabled: true}, 64, metrics.NewRegistry(), nil)
	for i := 0; i < 20; i++ {
		q.Offer(transport.Message{From: ids.NodeID(i), To: 1, Kind: "t", Size: 1, Class: 3})
	}
	for i := 0; i < 20; i++ {
		m, ok := q.TryPop()
		if !ok || m.From != ids.NodeID(i) {
			t.Fatalf("pop %d: got From=%v ok=%v", i, m.From, ok)
		}
	}
}

// TestQdiscHotPathZeroAlloc guards the satellite-2 claim: once a class is
// interned and its ring sized, steady-state Offer/Pop allocates nothing.
func TestQdiscHotPathZeroAlloc(t *testing.T) {
	cfg := &transport.QoSConfig{Enabled: true, Weights: map[transport.Class]int{1: 4, 2: 1}}
	q := New(cfg, 1024, metrics.NewRegistry(), nil)
	warm := func() {
		for i := 0; i < 64; i++ {
			q.Offer(msg(1, 100))
			q.Offer(msg(2, 100))
			q.Offer(msg(transport.ClassSystem, 50))
		}
		for {
			if _, ok := q.TryPop(); !ok {
				break
			}
		}
	}
	warm()
	allocs := testing.AllocsPerRun(200, func() {
		q.Offer(msg(1, 100))
		q.Offer(msg(2, 100))
		q.Offer(msg(transport.ClassSystem, 50))
		q.TryPop()
		q.TryPop()
		q.TryPop()
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f allocs/op, want 0", allocs)
	}
}
