// Package qdisc implements the per-shard QoS queueing discipline shared by
// internal/netsim and internal/transport/tcptransport (DESIGN.md §15):
// strict-priority system/control queues on top of deficit-weighted
// round-robin (DWRR) scheduling across tenant classes, with bounded
// tenant admission and weight-ordered overload shedding.
//
// Invariants:
//   - system/control messages are always admitted (their queues are
//     unbounded — kernel traffic is self-limiting) and always pop before
//     any tenant work;
//   - tenant classes share one Depth budget per shard. When it is full, an
//     incoming message may evict the head of the lowest-weight backlogged
//     tenant class, but only if that victim's weight is strictly lower
//     than its own; otherwise the incoming message itself is rejected
//     (Offer returns false → transport.ErrBackpressure at the sender);
//   - among backlogged tenant classes, service is proportional to weight:
//     each round a class is credited Quantum×weight bytes of deficit and
//     drains until the head message costs more than its remaining deficit.
//
// A Queue has exactly one consumer (the shard's dispatch goroutine); Offer
// may be called from any number of producers. The steady-state Offer/Pop
// path is zero-alloc: per-class state and metric handles are interned on
// first touch and ring buffers stop growing once sized to the backlog.
package qdisc

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/transport"
)

// classQ is one class's ring buffer plus its DWRR state and interned
// metric handles.
type classQ struct {
	class  transport.Class
	weight int

	buf  []transport.Message
	head int
	n    int

	deficit int  // DWRR byte credit carried across rounds
	fresh   bool // head-of-active visit should credit a new quantum
	active  bool // currently in Queue.active (backlogged)

	depth *atomic.Int64 // dispatch.q.<class>.depth gauge
	enq   *atomic.Int64 // dispatch.q.<class>.enq
	shed  *atomic.Int64 // dispatch.q.<class>.shed
}

func (c *classQ) push(m transport.Message) {
	if c.n == len(c.buf) {
		grown := make([]transport.Message, max(8, 2*len(c.buf)))
		for i := 0; i < c.n; i++ {
			grown[i] = c.buf[(c.head+i)%len(c.buf)]
		}
		c.buf, c.head = grown, 0
	}
	c.buf[(c.head+c.n)%len(c.buf)] = m
	c.n++
}

func (c *classQ) pop() transport.Message {
	m := c.buf[c.head]
	c.buf[c.head] = transport.Message{}
	c.head = (c.head + 1) % len(c.buf)
	c.n--
	return m
}

func (c *classQ) peek() transport.Message { return c.buf[c.head] }

// Queue is one dispatch shard's class-aware queue. Construct with New;
// the zero value is not usable.
type Queue struct {
	mu      sync.Mutex
	notify  chan struct{} // cap 1; wakes the single consumer
	depth   int           // shared tenant budget
	quantum int
	cfg     *transport.QoSConfig
	onShed  func(transport.Message)

	sys    *classQ      // ClassSystem, unbounded, strict priority
	ctl    *classQ      // ClassControl, unbounded, next priority
	tenant [254]*classQ // tenant classes 0..253, interned lazily
	active []*classQ    // backlogged tenant classes, DWRR order
	used   int          // total queued tenant messages
	reg    *metrics.Registry
}

// New builds a shard queue for cfg. depth is the resolved tenant budget
// (must be > 0). onShed, if non-nil, is called — under the queue lock, so
// it must not re-enter the Queue — once for every queued message evicted
// by a heavier class; admission rejections are reported to the producer
// via Offer's return instead.
func New(cfg *transport.QoSConfig, depth int, reg *metrics.Registry, onShed func(transport.Message)) *Queue {
	quantum := cfg.Quantum
	if quantum <= 0 {
		quantum = transport.DefaultQuantum
	}
	q := &Queue{
		notify:  make(chan struct{}, 1),
		depth:   depth,
		quantum: quantum,
		cfg:     cfg,
		onShed:  onShed,
		reg:     reg,
	}
	q.sys = q.newClass(transport.ClassSystem)
	q.ctl = q.newClass(transport.ClassControl)
	return q
}

func (q *Queue) newClass(c transport.Class) *classQ {
	name := c.Name()
	return &classQ{
		class:  c,
		weight: q.cfg.WeightOf(c),
		depth:  q.reg.Counter(metrics.DispatchQDepth(name)),
		enq:    q.reg.Counter(metrics.DispatchQEnq(name)),
		shed:   q.reg.Counter(metrics.DispatchQShed(name)),
	}
}

// classFor interns the tenant classQ for c. Caller holds q.mu.
func (q *Queue) classFor(c transport.Class) *classQ {
	if cq := q.tenant[c]; cq != nil {
		return cq
	}
	cq := q.newClass(c)
	q.tenant[c] = cq
	return cq
}

// wake nudges the consumer without blocking.
func (q *Queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Offer submits m for dispatch. It returns false when tenant admission
// rejects the message (budget full and no strictly-lighter victim to
// evict); system/control messages are always accepted.
func (q *Queue) Offer(m transport.Message) bool {
	q.mu.Lock()
	switch m.Class {
	case transport.ClassSystem:
		q.sys.push(m)
		q.sys.enq.Add(1)
		q.sys.depth.Add(1)
		q.mu.Unlock()
		q.wake()
		return true
	case transport.ClassControl:
		q.ctl.push(m)
		q.ctl.enq.Add(1)
		q.ctl.depth.Add(1)
		q.mu.Unlock()
		q.wake()
		return true
	}
	c := q.classFor(m.Class)
	if q.used >= q.depth {
		v := q.lightestBacklogged()
		if v == nil || v.weight >= c.weight {
			c.shed.Add(1)
			q.mu.Unlock()
			return false
		}
		vm := v.pop()
		q.used--
		v.shed.Add(1)
		v.depth.Add(-1)
		if v.n == 0 {
			q.deactivate(v)
		}
		if q.onShed != nil {
			q.onShed(vm)
		}
	}
	c.push(m)
	q.used++
	c.enq.Add(1)
	c.depth.Add(1)
	if !c.active {
		c.active = true
		c.fresh = true
		q.active = append(q.active, c)
	}
	q.mu.Unlock()
	q.wake()
	return true
}

// lightestBacklogged returns the backlogged tenant class with the lowest
// weight (nil if none). Caller holds q.mu.
func (q *Queue) lightestBacklogged() *classQ {
	var v *classQ
	for _, c := range q.active {
		if v == nil || c.weight < v.weight {
			v = c
		}
	}
	return v
}

// deactivate removes c from the active rotation and resets its DWRR
// state. Caller holds q.mu.
func (q *Queue) deactivate(c *classQ) {
	for i, a := range q.active {
		if a == c {
			copy(q.active[i:], q.active[i+1:])
			q.active[len(q.active)-1] = nil
			q.active = q.active[:len(q.active)-1]
			break
		}
	}
	c.active = false
	c.fresh = true
	c.deficit = 0
}

func msgCost(m transport.Message) int {
	if m.Size > 0 {
		return m.Size
	}
	return 1
}

// popLocked applies the scheduling policy: system, then control, then
// DWRR over backlogged tenant classes. Caller holds q.mu.
func (q *Queue) popLocked() (transport.Message, bool) {
	if q.sys.n > 0 {
		q.sys.depth.Add(-1)
		return q.sys.pop(), true
	}
	if q.ctl.n > 0 {
		q.ctl.depth.Add(-1)
		return q.ctl.pop(), true
	}
	for len(q.active) > 0 {
		c := q.active[0]
		if c.fresh {
			c.deficit += q.quantum * c.weight
			c.fresh = false
		}
		if cost := msgCost(c.peek()); c.deficit >= cost {
			m := c.pop()
			c.deficit -= cost
			c.depth.Add(-1)
			q.used--
			if c.n == 0 {
				q.deactivate(c)
			}
			return m, true
		}
		// Deficit exhausted for this round: rotate to the back, keeping
		// the remaining credit, and mark the next visit as a new round.
		copy(q.active, q.active[1:])
		q.active[len(q.active)-1] = c
		c.fresh = true
	}
	return transport.Message{}, false
}

// Pop blocks until a message is schedulable or done closes. The second
// return is false only on done. Pop must be called from a single consumer
// goroutine.
func (q *Queue) Pop(done <-chan struct{}) (transport.Message, bool) {
	for {
		q.mu.Lock()
		m, ok := q.popLocked()
		q.mu.Unlock()
		if ok {
			return m, true
		}
		select {
		case <-q.notify:
		case <-done:
			return transport.Message{}, false
		}
	}
}

// TryPop dequeues without blocking; ok is false when nothing is queued.
func (q *Queue) TryPop() (transport.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

// Len returns the total number of queued messages across all classes.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sys.n + q.ctl.n + q.used
}
