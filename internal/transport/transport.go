// Package transport defines the cluster interconnect seam: the Transport
// interface the DO/CT kernel (internal/core) sends all cross-node traffic
// through, and the message/size vocabulary shared by every implementation.
//
// Two implementations exist: internal/netsim (the deterministic in-process
// simulator — latency/drop injection, virtual-clock support, the transport
// every test and experiment boots by default) and
// internal/transport/tcptransport (real TCP sockets with the
// internal/transport/wire binary codec, used by cmd/doctnode for
// multi-process clusters). The kernel cannot tell them apart: both deliver
// FIFO per (sender, receiver) pair, both account net.msg.*/net.bytes
// metrics, and both honor the Close drain contract.
package transport

import (
	"context"
	"errors"
	"strconv"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// Class is the QoS event class an envelope belongs to. Classes 0..253 are
// tenant classes scheduled by weighted fair queueing; the two reserved
// classes above them are strict-priority and never shed.
type Class uint8

const (
	// ClassDefault is the tenant class for unclassified traffic.
	ClassDefault Class = 0
	// ClassControl carries kernel correctness traffic that rides the event
	// path — TERMINATE chains, aborts, release verdicts, thread-death
	// notices. Strict priority below ClassSystem, never shed.
	ClassControl Class = 254
	// ClassSystem carries kernel plumbing — RPC responses, heartbeats,
	// gossip, directory traffic, acks. Highest strict priority, never shed.
	ClassSystem Class = 255
)

// Name returns the metrics/label name for a class: "system", "control",
// "default", or "t<N>" for tenant classes 1..253.
func (c Class) Name() string {
	switch c {
	case ClassSystem:
		return "system"
	case ClassControl:
		return "control"
	case ClassDefault:
		return "default"
	}
	return "t" + strconv.Itoa(int(c))
}

// ErrBackpressure is returned by Send (and surfaces through Raise /
// RaiseAndWait) when per-class admission control rejects the envelope: the
// receiver's tenant budget is full and the sender's class does not outrank
// any queued work. Callers should back off and retry; the reliable
// envelope does exactly that, so exactly-once delivery is preserved.
var ErrBackpressure = errors.New("transport: backpressure (class queue full)")

// QoSConfig configures multi-tenant dispatch: per-class admission control,
// deficit-weighted-round-robin scheduling across tenant classes, and
// overload shedding that protects system/control traffic.
type QoSConfig struct {
	// Enabled turns the QoS layer on. Off (the default), dispatch is the
	// classic FIFO sender-sharded inbox.
	Enabled bool
	// Weights maps tenant classes to DWRR weights. Unlisted classes get
	// weight 1. System/control classes are strict-priority and ignore
	// weights.
	Weights map[Class]int
	// Apps maps application names (thread attrs.App) to tenant classes so
	// the kernel can classify raises at the source. Transports ignore it.
	Apps map[string]Class
	// Depth bounds the total queued tenant-class messages per dispatch
	// shard. Zero means the transport's queue depth. System/control
	// queues are unbounded (they are self-limiting kernel traffic).
	Depth int
	// Quantum is the DWRR byte quantum credited per round to a class of
	// weight 1. Zero means DefaultQuantum.
	Quantum int
	// AllowVirtual lets QoS run under the virtual clock. Off (the
	// default), transports force QoS off when driven by a virtual clock
	// so deterministic-simulation digests stay byte-identical.
	AllowVirtual bool
}

// DefaultQuantum is the DWRR byte quantum for weight-1 classes.
const DefaultQuantum = 1024

// WeightOf resolves the DWRR weight for a tenant class (minimum 1).
func (q *QoSConfig) WeightOf(c Class) int {
	if q != nil {
		if w, ok := q.Weights[c]; ok && w > 0 {
			return w
		}
	}
	return 1
}

// Message is one envelope on the wire.
type Message struct {
	From    ids.NodeID
	To      ids.NodeID
	Kind    string // protocol message kind, e.g. "rpc.req"
	Payload any
	Size    int   // wire size in bytes (estimated on netsim, measured on TCP)
	Class   Class // QoS event class (ClassDefault unless stamped)
}

// Sizer lets payloads report their wire size; payloads that do not
// implement it are charged DefaultMessageSize bytes.
type Sizer interface {
	WireSize() int
}

// DefaultMessageSize is the byte charge for payloads without a Sizer.
const DefaultMessageSize = 64

// Handler consumes messages delivered to a node. Handlers run on the
// transport's dispatch goroutines; they must not block indefinitely.
// Messages from the same sender are always handled serially, in send
// order; messages from different senders may be handled concurrently, so
// handlers must be safe for concurrent calls.
type Handler func(Message)

// Transport is the cluster interconnect: asynchronous FIFO unicast between
// nodes, broadcast, and named multicast groups, with message accounting.
//
// Lifecycle: Attach every local node's handler, then Start, then exchange
// traffic, then Close. Close is a drain barrier — when it returns, no
// handler is running and none will run again (the satellite-6 contract;
// see TestNoHandlerAfterClose in transporttest).
type Transport interface {
	// Attach registers a locally-hosted node with its message handler.
	// Attach must be called before Start.
	Attach(node ids.NodeID, h Handler) error
	// Start launches delivery. Messages may be handled from here on.
	Start()
	// Send delivers m.Payload from m.From to m.To asynchronously. It
	// returns an error only for structural problems (unknown node, closed
	// transport); loss on the wire is silent, as on a real network.
	Send(m Message) error
	// Broadcast sends payload from the sender to every other node.
	Broadcast(from ids.NodeID, kind string, payload any) error
	// Multicast sends payload to every member of a named group (including
	// the sender if it is a member).
	Multicast(from ids.NodeID, group, kind string, payload any) error
	// JoinGroup adds node to the named multicast group, creating the
	// group on first join.
	JoinGroup(group string, node ids.NodeID)
	// LeaveGroup removes node from the named multicast group.
	LeaveGroup(group string, node ids.NodeID)
	// GroupMembers returns the current members of group.
	GroupMembers(group string) []ids.NodeID
	// Metrics returns the registry accounting this transport's traffic
	// (net.msg.sent, net.msg.bytes, per-kind decompositions, ...).
	Metrics() *metrics.Registry
	// DispatchWorkers returns the per-node dispatch parallelism: the
	// number of handler goroutines that may run concurrently per node.
	DispatchWorkers() int
	// Close stops delivery and drains: it blocks until every in-flight
	// handler has returned, bounded by ctx. After Close returns nil, no
	// handler runs again. A ctx expiry abandons the wait and returns
	// ctx.Err(); the transport is still closed, but handlers may be
	// mid-flight.
	Close(ctx context.Context) error
}

// FaultInjector is the optional fault-injection surface. The simulated
// transport implements all of it; real transports may implement a subset
// (tcptransport supports CrashNode/RestartNode by dropping connections and
// refusing traffic, but cannot cut a kernel's view of a real link).
// Callers type-assert and degrade gracefully.
type FaultInjector interface {
	// CutLink severs the directed link from → to: messages on it are
	// dropped.
	CutLink(from, to ids.NodeID)
	// HealLink restores a severed directed link.
	HealLink(from, to ids.NodeID)
	// Partition severs every link between the two node sets, in both
	// directions.
	Partition(sideA, sideB []ids.NodeID)
	// HealAll restores every severed link.
	HealAll()
	// SetDropRate changes the message drop probability for subsequent
	// sends.
	SetDropRate(rate float64)
	// CrashNode fail-stops node until RestartNode.
	CrashNode(node ids.NodeID) error
	// RestartNode brings a crashed node back.
	RestartNode(node ids.NodeID) error
	// Crashed reports whether node is currently fail-stopped.
	Crashed(node ids.NodeID) bool
}

// DirectedFaultInjector is the optional per-directed-link fault surface:
// asymmetric loss (acks lost while data flows, or vice versa) exercises
// retransmit/dedup paths that symmetric global loss cannot reach. The
// simulated transport implements it; real transports typically cannot.
type DirectedFaultInjector interface {
	// SetDropRateDirected sets the drop probability for messages on the
	// directed link from → to; the effective rate for a send is the
	// maximum of this and the global SetDropRate. Rate <= 0 clears it.
	SetDropRateDirected(from, to ids.NodeID, rate float64)
	// CutLinkDirected severs the directed link from → to (synonym of
	// FaultInjector.CutLink, which is already one-directional; named so
	// callers reading only this interface see the direction contract).
	CutLinkDirected(from, to ids.NodeID)
	// HealLinkDirected restores a severed directed link.
	HealLinkDirected(from, to ids.NodeID)
}

// Batcher is the optional coalescing probe: transports that batch sends
// into frames report it so layers above (the reliable envelope's
// retransmit backoff) can widen their timers past the flush window.
type Batcher interface {
	Batching() bool
}

// PayloadSize is the canonical wire-size estimator for message payloads:
// Sizer implementations report their own size, byte slices and strings are
// charged their length plus a small framing overhead, scalars a machine
// word, and anything else DefaultMessageSize. Every layer — transports,
// the reliable envelope, the kernel — uses it, so byte accounting is
// consistent end to end. The wire codec's test suite pins the codec's
// exact encoded sizes against these estimates (satellite 1).
func PayloadSize(p any) int {
	switch v := p.(type) {
	case nil:
		return 0
	case Sizer:
		return v.WireSize()
	case []byte:
		return 8 + len(v)
	case string:
		return 8 + len(v)
	case bool, int8, uint8:
		return 1
	case int, int64, uint64, uintptr, float64, int32, uint32, float32, int16, uint16:
		return 8
	}
	return DefaultMessageSize
}
