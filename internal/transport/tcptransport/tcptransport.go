// Package tcptransport is the real-socket implementation of
// transport.Transport: a cluster of OS processes exchanging kernel
// traffic over loopback or LAN TCP, framed by internal/batch and encoded
// by internal/transport/wire.
//
// Topology is static: Config.Peers maps every node in the cluster to the
// listen address of the process hosting it. Each process hosts one or
// more nodes (Attach), listens on Config.Listen, and dials peers on
// demand — the first Send toward an address opens one outbound TCP
// connection to it, owned by a writer goroutine that coalesces queued
// messages into length-prefixed batch frames. Connections are
// unidirectional: a process sends only on connections it dialed and
// receives only on connections it accepted, so two processes exchanging
// traffic hold one socket per direction and no connection is ever shared
// between a reader and a writer.
//
// Failures follow the datagram contract of transport.Transport: a send
// into a dead, unreachable or congested peer is silently dropped (and
// counted) — the reliable envelope above retransmits, the failure
// detector above notices silence. A broken connection is redialed with
// exponential backoff capped at Config.RetryMax.
//
// Unlike netsim, byte accounting here is measured, not estimated:
// net.msg.bytes counts the exact bytes handed to the socket (frame
// payloads plus framing overhead), and per-kind counters charge each
// message its encoded record footprint. E14 compares these measured
// costs against the simulator's estimates.
//
// The FaultInjector surface is implemented with process-local view:
// CrashNode/CutLink/SetDropRate filter traffic entering and leaving
// *this* process, which is what single-process multi-System tests need.
// A real multi-process chaos test kills the process instead.
package tcptransport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/transport/qdisc"
)

// Common transport errors.
var (
	ErrClosed       = errors.New("tcptransport: transport closed")
	ErrUnknownNode  = errors.New("tcptransport: unknown node")
	ErrUnknownGroup = errors.New("tcptransport: unknown multicast group")
)

// Tunable defaults; see Config.
const (
	DefaultDialTimeout      = 2 * time.Second
	DefaultHandshakeTimeout = 5 * time.Second
	DefaultRetryBase        = 50 * time.Millisecond
	DefaultRetryMax         = 2 * time.Second
	DefaultQueueDepth       = 1024

	// maxFrame bounds one length-prefixed frame on the wire; a peer
	// announcing more is treated as corrupt and disconnected.
	maxFrame = 16 << 20
	// maxCoalesce bounds how many queued messages one socket write
	// carries. Coalescing is opportunistic — whatever is already queued
	// goes out together — so it never adds latency, only saves syscalls.
	maxCoalesce = 64
)

// Config parameterizes a Transport.
type Config struct {
	// Listen is the TCP address this process accepts peer connections on
	// (e.g. "127.0.0.1:7001"; ":0" picks a free port — read it back with
	// Addr). Required.
	Listen string
	// Peers maps every node in the cluster — including the ones hosted
	// here — to the listen address of its process. Addresses for nodes
	// attached locally are ignored (local traffic never touches a
	// socket). May be supplied or replaced later with SetPeers, as long
	// as it happens before Start.
	Peers map[ids.NodeID]string
	// Generation is this process's incarnation epoch, announced in the
	// connection handshake for diagnostics. The restart-surviving dedup
	// lives in reliable.Config.Generation; transports only carry it.
	Generation uint64
	// DialTimeout bounds one connection attempt (0 = 2s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange on a fresh connection
	// (0 = 5s).
	HandshakeTimeout time.Duration
	// RetryBase/RetryMax shape the reconnect backoff: the delay after a
	// failed dial starts at RetryBase and doubles to at most RetryMax
	// (0 = 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// QueueDepth is the capacity of each outbound per-peer queue and each
	// inbound per-shard dispatch queue (0 = 1024). A full outbound queue
	// drops (the peer is unreachable and the reliable layer retries); a
	// full inbound shard exerts TCP backpressure on the sender.
	QueueDepth int
	// DispatchWorkers is the per-node dispatch parallelism: inbound
	// messages are sharded by sender, preserving per-pair FIFO while
	// letting different senders' handlers run concurrently. Zero picks
	// GOMAXPROCS; negative forces 1.
	DispatchWorkers int
	// QoS enables per-class weighted fair dispatch (DESIGN.md §15): each
	// inbound shard becomes a classful qdisc — system and control classes
	// bypass tenant queueing, tenant classes share QoS.Depth slots under
	// DWRR, and admission sheds instead of blocking. Local sends that are
	// rejected return transport.ErrBackpressure; socket arrivals that are
	// rejected are counted dropped (the reliable layer retransmits). The
	// zero value keeps plain FIFO shards.
	QoS transport.QoSConfig
	// Metrics receives message accounting. Nil creates a private registry.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives connection lifecycle and corruption
	// diagnostics (think log.Printf). Nil discards them.
	Logf func(format string, args ...any)
}

// endpoint is one locally-hosted node: its handler and sender-sharded
// dispatch queues, exactly netsim's shape. With QoS on, qs holds the
// classful queues and inboxes stays nil.
type endpoint struct {
	node    ids.NodeID
	inboxes []chan transport.Message
	qs      []*qdisc.Queue
	handler transport.Handler
	done    chan struct{}
}

func (ep *endpoint) shard(from ids.NodeID) chan transport.Message {
	if len(ep.inboxes) == 1 {
		return ep.inboxes[0]
	}
	return ep.inboxes[uint64(from)%uint64(len(ep.inboxes))]
}

func (ep *endpoint) shardQ(from ids.NodeID) *qdisc.Queue {
	if len(ep.qs) == 1 {
		return ep.qs[0]
	}
	return ep.qs[uint64(from)%uint64(len(ep.qs))]
}

// kindCounters is the interned per-kind wire counter pair (netsim keeps
// the identical cache so both transports account identically).
type kindCounters struct {
	msgs  *atomic.Int64
	bytes *atomic.Int64
}

// Transport is a live TCP transport. Create with New, attach local nodes
// with Attach, then Start. All methods are safe for concurrent use.
type Transport struct {
	cfg      Config
	reg      *metrics.Registry
	workers  int
	qos      bool
	qosDepth int
	ln       net.Listener

	ctrSent      *atomic.Int64
	ctrDelivered *atomic.Int64
	ctrDropped   *atomic.Int64
	ctrBytes     *atomic.Int64
	ctrBroadcast *atomic.Int64
	ctrMulticast *atomic.Int64
	kindCtrs     sync.Map // message kind -> *kindCounters

	mu      sync.RWMutex
	local   map[ids.NodeID]*endpoint
	peers   map[ids.NodeID]string
	links   map[string]*link // remote address -> outbound link
	groups  map[string]map[ids.NodeID]bool
	cut     map[[2]ids.NodeID]bool
	crashed map[ids.NodeID]bool
	started bool
	closed  bool

	// Open sockets (dialed and accepted), tracked so Close can unblock
	// every reader and writer immediately.
	connMu sync.Mutex
	conns  map[net.Conn]bool

	dropRate atomic.Uint64 // float64 bits; SetDropRate
	rngMu    sync.Mutex
	rng      *rand.Rand

	done chan struct{}
	wg   sync.WaitGroup
}

// New opens the listener and returns a Transport ready for Attach. The
// listen port is bound immediately so Addr is valid before Start — a
// test can boot N transports on ":0", collect their addresses, and only
// then hand each the full peer map via SetPeers.
func New(cfg Config) (*Transport, error) {
	if cfg.Listen == "" {
		return nil, errors.New("tcptransport: Config.Listen is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	workers := cfg.DispatchWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	} else if workers < 0 {
		workers = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Listen, err)
	}
	qosDepth := cfg.QoS.Depth
	if qosDepth <= 0 {
		qosDepth = cfg.QueueDepth
	}
	t := &Transport{
		cfg:          cfg,
		reg:          reg,
		workers:      workers,
		qos:          cfg.QoS.Enabled,
		qosDepth:     qosDepth,
		ln:           ln,
		ctrSent:      reg.Counter(metrics.CtrMsgSent),
		ctrDelivered: reg.Counter(metrics.CtrMsgDelivered),
		ctrDropped:   reg.Counter(metrics.CtrMsgDropped),
		ctrBytes:     reg.Counter(metrics.CtrMsgBytes),
		ctrBroadcast: reg.Counter(metrics.CtrBroadcast),
		ctrMulticast: reg.Counter(metrics.CtrMulticast),
		local:        make(map[ids.NodeID]*endpoint),
		peers:        make(map[ids.NodeID]string),
		links:        make(map[string]*link),
		groups:       make(map[string]map[ids.NodeID]bool),
		cut:          make(map[[2]ids.NodeID]bool),
		crashed:      make(map[ids.NodeID]bool),
		conns:        make(map[net.Conn]bool),
		rng:          rand.New(rand.NewSource(1)),
		done:         make(chan struct{}),
	}
	for n, addr := range cfg.Peers {
		t.peers[n] = addr
	}
	return t, nil
}

// Addr returns the bound listen address (useful with Listen ":0").
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetPeers replaces the node → address map. Must be called before Start.
func (t *Transport) SetPeers(peers map[ids.NodeID]string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return errors.New("tcptransport: SetPeers after Start")
	}
	t.peers = make(map[ids.NodeID]string, len(peers))
	for n, addr := range peers {
		t.peers[n] = addr
	}
	return nil
}

// Metrics returns the registry accounting this transport's traffic.
func (t *Transport) Metrics() *metrics.Registry { return t.reg }

// DispatchWorkers returns the resolved per-node dispatch parallelism.
func (t *Transport) DispatchWorkers() int { return t.workers }

// Attach registers a locally-hosted node with its message handler.
// Attach must be called before Start.
func (t *Transport) Attach(node ids.NodeID, h transport.Handler) error {
	if !node.IsValid() {
		return fmt.Errorf("tcptransport: attach: %v is not a valid node", node)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return errors.New("tcptransport: attach after Start")
	}
	if _, dup := t.local[node]; dup {
		return fmt.Errorf("tcptransport: node %v already attached", node)
	}
	ep := &endpoint{node: node, handler: h, done: make(chan struct{})}
	if t.qos {
		ep.qs = make([]*qdisc.Queue, t.workers)
		for i := range ep.qs {
			ep.qs[i] = qdisc.New(&t.cfg.QoS, t.qosDepth, t.reg, func(transport.Message) { t.ctrDropped.Add(1) })
		}
	} else {
		ep.inboxes = make([]chan transport.Message, t.workers)
		for i := range ep.inboxes {
			ep.inboxes[i] = make(chan transport.Message, t.cfg.QueueDepth)
		}
	}
	t.local[node] = ep
	return nil
}

// Start launches the accept loop and the dispatch goroutines.
func (t *Transport) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started || t.closed {
		return
	}
	t.started = true
	for _, ep := range t.local {
		if t.qos {
			for i := range ep.qs {
				t.wg.Add(1)
				go t.dispatchQ(ep, ep.qs[i])
			}
		} else {
			for i := range ep.inboxes {
				t.wg.Add(1)
				go t.dispatch(ep, ep.inboxes[i])
			}
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
}

func (t *Transport) dispatch(ep *endpoint, inbox chan transport.Message) {
	defer t.wg.Done()
	for {
		select {
		case <-ep.done:
			return
		case m := <-inbox:
			t.ctrDelivered.Add(1)
			if ep.handler != nil {
				ep.handler(m)
			}
		}
	}
}

// dispatchQ is dispatch over a classful qdisc: the queue's Pop applies
// strict priority for system/control and DWRR across tenant classes.
func (t *Transport) dispatchQ(ep *endpoint, q *qdisc.Queue) {
	defer t.wg.Done()
	for {
		m, ok := q.Pop(ep.done)
		if !ok {
			return
		}
		t.ctrDelivered.Add(1)
		if ep.handler != nil {
			ep.handler(m)
		}
	}
}

// kindCountersFor returns the interned counter pair for a message kind.
func (t *Transport) kindCountersFor(kind string) *kindCounters {
	if kc, ok := t.kindCtrs.Load(kind); ok {
		return kc.(*kindCounters)
	}
	kc := &kindCounters{
		msgs:  t.reg.Counter(metrics.KindMsgs(kind)),
		bytes: t.reg.Counter(metrics.KindBytes(kind)),
	}
	actual, _ := t.kindCtrs.LoadOrStore(kind, kc)
	return actual.(*kindCounters)
}

// chargeSend accounts one departing message of the given wire size.
func (t *Transport) chargeSend(kind string, size int) {
	t.ctrSent.Add(1)
	t.ctrBytes.Add(int64(size))
	if kind != "" {
		kc := t.kindCountersFor(kind)
		kc.msgs.Add(1)
		kc.bytes.Add(int64(size))
	}
}

// Send delivers m.Payload from m.From to m.To asynchronously: locally
// attached destinations go straight to their dispatch shard, remote ones
// are queued on the outbound link toward their process. It returns an
// error only for structural problems (unknown node, closed transport);
// loss — severed/crashed filters, full queues, broken connections — is
// silent and counted, exactly the datagram contract netsim implements.
// With QoS on, a local destination whose admission rejects the message
// additionally returns transport.ErrBackpressure (socket arrivals shed
// silently instead — the reliable layer retransmits).
func (t *Transport) Send(m transport.Message) error {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return ErrClosed
	}
	severed := t.cut[[2]ids.NodeID{m.From, m.To}] || t.crashed[m.From] || t.crashed[m.To]
	ep := t.local[m.To]
	addr, known := t.peers[m.To]
	t.mu.RUnlock()

	if ep != nil {
		return t.postLocal(ep, m, severed)
	}
	if !known {
		return fmt.Errorf("%w: %v", ErrUnknownNode, m.To)
	}
	if severed || t.roll() {
		// Account like netsim's post: the message departed (estimated
		// size — it is never encoded) and was dropped on the floor.
		size := m.Size
		if size == 0 {
			size = transport.PayloadSize(m.Payload)
		}
		t.chargeSend(m.Kind, size)
		t.ctrDropped.Add(1)
		return nil
	}
	l := t.linkFor(addr)
	if l == nil {
		return ErrClosed
	}
	select {
	case l.out <- m:
	default:
		// Queue full: the peer is down or drowning. Drop — the reliable
		// envelope retransmits after the link recovers.
		size := m.Size
		if size == 0 {
			size = transport.PayloadSize(m.Payload)
		}
		t.chargeSend(m.Kind, size)
		t.ctrDropped.Add(1)
	}
	return nil
}

// postLocal delivers to a locally-attached node without touching a
// socket; sizes are estimates, as in netsim, since nothing is encoded.
// Its only possible error is a QoS admission reject.
func (t *Transport) postLocal(ep *endpoint, m transport.Message, severed bool) error {
	if m.Size == 0 {
		m.Size = transport.PayloadSize(m.Payload)
	}
	if fin, ok := m.Payload.(batch.Finalizer); ok {
		m.Payload = fin.FinalizeFlush()
	}
	t.chargeSend(m.Kind, m.Size)
	if severed || t.roll() {
		t.ctrDropped.Add(1)
		return nil
	}
	if !t.deliver(ep, m) {
		return transport.ErrBackpressure
	}
	return nil
}

// deliver hands m to its destination shard. The FIFO path blocks for
// backpressure (but never past close); the QoS path never blocks — it
// reports false when admission rejects the message, counting it dropped.
func (t *Transport) deliver(ep *endpoint, m transport.Message) bool {
	if t.qos {
		if !ep.shardQ(m.From).Offer(m) {
			t.ctrDropped.Add(1)
			return false
		}
		return true
	}
	select {
	case ep.shard(m.From) <- m:
	case <-ep.done:
	case <-t.done:
	}
	return true
}

// nodes returns every node this transport can address: locally attached
// ones plus everything in the peer map.
func (t *Transport) nodesLocked() []ids.NodeID {
	seen := make(map[ids.NodeID]bool, len(t.local)+len(t.peers))
	out := make([]ids.NodeID, 0, len(t.local)+len(t.peers))
	for n := range t.local {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for n := range t.peers {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Broadcast sends payload from the sender to every other node in the
// cluster (local and remote alike).
func (t *Transport) Broadcast(from ids.NodeID, kind string, payload any) error {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return ErrClosed
	}
	targets := t.nodesLocked()
	t.mu.RUnlock()
	t.ctrBroadcast.Add(1)
	for _, n := range targets {
		if n == from {
			continue
		}
		// Broadcasts are kernel plumbing (membership, probes): ClassSystem.
		_ = t.Send(transport.Message{From: from, To: n, Kind: kind, Payload: payload, Class: transport.ClassSystem})
	}
	return nil
}

// Multicast sends payload to every member of group (including the sender
// if it is a member), per this process's view of the membership.
func (t *Transport) Multicast(from ids.NodeID, group, kind string, payload any) error {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return ErrClosed
	}
	g, ok := t.groups[group]
	members := make([]ids.NodeID, 0, len(g))
	for n := range g {
		members = append(members, n)
	}
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownGroup, group)
	}
	t.ctrMulticast.Add(1)
	for _, n := range members {
		_ = t.Send(transport.Message{From: from, To: n, Kind: kind, Payload: payload, Class: transport.ClassSystem})
	}
	return nil
}

// JoinGroup adds node to the named multicast group. Membership of
// locally-hosted nodes is authoritative here and replicated to every
// peer process (incrementally now, and in the connection handshake's
// snapshot for peers that connect later).
func (t *Transport) JoinGroup(group string, node ids.NodeID) {
	t.updateGroup(group, node, false)
}

// LeaveGroup removes node from the named multicast group.
func (t *Transport) LeaveGroup(group string, node ids.NodeID) {
	t.updateGroup(group, node, true)
}

func (t *Transport) updateGroup(group string, node ids.NodeID, leave bool) {
	t.mu.Lock()
	t.applyGroupLocked(group, node, leave)
	_, isLocal := t.local[node]
	replicate := isLocal && t.started && !t.closed
	t.mu.Unlock()
	if replicate {
		// Group membership rides the normal message path as a transport-
		// internal control record, so it shares ordering with the data
		// stream toward each peer.
		_ = t.Broadcast(node, kindGroup, groupUpdate{Group: group, Node: node, Leave: leave})
	}
}

func (t *Transport) applyGroupLocked(group string, node ids.NodeID, leave bool) {
	if leave {
		if g, ok := t.groups[group]; ok {
			delete(g, node)
			if len(g) == 0 {
				delete(t.groups, group)
			}
		}
		return
	}
	g, ok := t.groups[group]
	if !ok {
		g = make(map[ids.NodeID]bool)
		t.groups[group] = g
	}
	g[node] = true
}

// GroupMembers returns this process's current view of the group.
func (t *Transport) GroupMembers(group string) []ids.NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	g := t.groups[group]
	out := make([]ids.NodeID, 0, len(g))
	for n := range g {
		out = append(out, n)
	}
	return out
}

// localGroupsLocked snapshots the groups containing locally-hosted
// nodes — the slice of the membership this process is authoritative for,
// announced in connection handshakes.
func (t *Transport) localGroupsLocked() map[string][]ids.NodeID {
	out := make(map[string][]ids.NodeID)
	for g, set := range t.groups {
		for n := range set {
			if _, isLocal := t.local[n]; isLocal {
				out[g] = append(out[g], n)
			}
		}
	}
	return out
}

// mergePeerGroups applies a peer's authoritative snapshot: drop every
// membership we recorded for that peer's nodes, then re-add what the
// snapshot lists. Incremental updates keep it current afterwards.
func (t *Transport) mergePeerGroups(peerNodes []ids.NodeID, snapshot map[string][]ids.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	owned := make(map[ids.NodeID]bool, len(peerNodes))
	for _, n := range peerNodes {
		owned[n] = true
	}
	for g, set := range t.groups {
		for n := range set {
			if owned[n] {
				delete(set, n)
			}
		}
		if len(set) == 0 {
			delete(t.groups, g)
		}
	}
	for g, members := range snapshot {
		for _, n := range members {
			if owned[n] {
				t.applyGroupLocked(g, n, false)
			}
		}
	}
}

// linkFor returns (creating on first use) the outbound link toward addr.
func (t *Transport) linkFor(addr string) *link {
	t.mu.RLock()
	l := t.links[addr]
	t.mu.RUnlock()
	if l != nil {
		return l
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if l = t.links[addr]; l != nil {
		return l
	}
	l = &link{t: t, addr: addr, out: make(chan transport.Message, t.cfg.QueueDepth), kick: make(chan struct{}, 1)}
	t.links[addr] = l
	t.wg.Add(1)
	go l.run()
	return l
}

// kickLinks wakes the outbound links toward the given peer nodes out of
// any dial backoff. Called from the accept path when a peer's inbound
// connection handshakes: that peer's process is demonstrably reachable,
// so a backed-off redial toward it should run now, not after the tail of
// a capped exponential delay. Matters most across a peer restart — the
// restarted process dials us within milliseconds, while our old backoff
// (grown while it was down) could otherwise delay our heartbeats past
// its fresh detector's suspicion threshold.
func (t *Transport) kickLinks(nodes []ids.NodeID) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	kicked := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		addr, ok := t.peers[n]
		if !ok || kicked[addr] {
			continue
		}
		kicked[addr] = true
		if l := t.links[addr]; l != nil {
			select {
			case l.kick <- struct{}{}:
			default: // a kick is already pending
			}
		}
	}
}

// trackConn registers an open socket so Close can tear it down; it
// reports false (and closes the socket) when the transport is closed.
func (t *Transport) trackConn(c net.Conn) bool {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	select {
	case <-t.done:
		c.Close()
		return false
	default:
	}
	t.conns[c] = true
	return true
}

func (t *Transport) untrackConn(c net.Conn) {
	t.connMu.Lock()
	delete(t.conns, c)
	t.connMu.Unlock()
}

// Close stops delivery and drains: the listener and every socket are
// torn down, and Close blocks until every dispatch, reader and writer
// goroutine has exited — so no handler is mid-flight and none will run
// again — bounded by ctx. Queued messages are discarded. A ctx expiry
// abandons the wait and returns ctx.Err(); the transport is still
// closed, but a slow handler may finish after Close returns.
func (t *Transport) Close(ctx context.Context) error {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		for _, ep := range t.local {
			close(ep.done)
		}
		close(t.done)
	}
	t.mu.Unlock()
	t.ln.Close()
	t.connMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connMu.Unlock()
	if ctx.Done() == nil {
		t.wg.Wait()
		return nil
	}
	drained := make(chan struct{})
	go func() { t.wg.Wait(); close(drained) }()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// roll reports whether the injected drop rate claims this message.
func (t *Transport) roll() bool {
	rate := t.DropRate()
	if rate <= 0 {
		return false
	}
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Float64() < rate
}

// DropRate returns the current injected drop probability.
func (t *Transport) DropRate() float64 {
	return math.Float64frombits(t.dropRate.Load())
}

// SetDropRate changes the injected drop probability for subsequent
// sends leaving this process.
func (t *Transport) SetDropRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	t.dropRate.Store(math.Float64bits(rate))
}

// CutLink severs the directed link from → to as seen by this process:
// departing and arriving messages on the pair are dropped.
func (t *Transport) CutLink(from, to ids.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut[[2]ids.NodeID{from, to}] = true
}

// HealLink restores a severed directed link.
func (t *Transport) HealLink(from, to ids.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.cut, [2]ids.NodeID{from, to})
}

// Partition severs every link between the two node sets, in both
// directions, as seen by this process.
func (t *Transport) Partition(sideA, sideB []ids.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range sideA {
		for _, b := range sideB {
			t.cut[[2]ids.NodeID{a, b}] = true
			t.cut[[2]ids.NodeID{b, a}] = true
		}
	}
}

// HealAll restores every severed link.
func (t *Transport) HealAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut = make(map[[2]ids.NodeID]bool)
}

// CrashNode fail-stops node as seen by this process: traffic to and
// from it — outbound and inbound — is dropped until RestartNode.
func (t *Transport) CrashNode(node ids.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.crashed[node] {
		return fmt.Errorf("tcptransport: node %v is already crashed", node)
	}
	t.crashed[node] = true
	return nil
}

// RestartNode brings a crashed node back: subsequent traffic flows.
func (t *Transport) RestartNode(node ids.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.crashed[node] {
		return fmt.Errorf("tcptransport: node %v is not crashed", node)
	}
	delete(t.crashed, node)
	return nil
}

// Crashed reports whether node is currently fail-stopped in this
// process's view.
func (t *Transport) Crashed(node ids.NodeID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.crashed[node]
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Compile-time interface checks: the full Transport contract plus the
// process-local fault-injection surface.
var (
	_ transport.Transport     = (*Transport)(nil)
	_ transport.FaultInjector = (*Transport)(nil)
)
