package tcptransport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"time"

	"repro/internal/batch"
	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Transport-internal record kinds. They ride the same frames as kernel
// traffic but are consumed by the transport itself, never dispatched to
// a node handler.
const (
	// kindHello is the connection handshake: the first record on every
	// fresh connection, in both directions.
	kindHello = "tcp.hello"
	// kindGroup replicates one JoinGroup/LeaveGroup of a locally-hosted
	// node to every peer process.
	kindGroup = "tcp.grp"
)

// hello is the handshake payload: codec version (connections disagreeing
// on wire.Version are refused), the sender's incarnation epoch, the
// nodes its process hosts, and its authoritative multicast-group
// snapshot for those nodes.
type hello struct {
	Version uint64
	Gen     uint64
	Nodes   []ids.NodeID
	Groups  map[string][]ids.NodeID
}

// groupUpdate is one incremental membership change (kindGroup records).
type groupUpdate struct {
	Group string
	Node  ids.NodeID
	Leave bool
}

// Wire type IDs for transport-internal control payloads. Shared codecs
// hold 1–29, the kernel's RPC payloads 40–56; the transport claims 60+.
const (
	idHello       = 60
	idGroupUpdate = 61
)

func init() {
	wire.Register(idHello, "tcptransport.hello",
		func(h hello) int {
			n := wire.SizeUvarint(h.Version) + wire.SizeUvarint(h.Gen) +
				wire.SizeValue(h.Nodes) + wire.SizeUvarint(uint64(len(h.Groups)))
			for g, members := range h.Groups {
				n += wire.SizeString(g) + wire.SizeValue(members)
			}
			return n
		},
		func(e *wire.Enc, h hello) {
			e.Uvarint(h.Version)
			e.Uvarint(h.Gen)
			e.Value(h.Nodes)
			e.Uvarint(uint64(len(h.Groups)))
			keys := make([]string, 0, len(h.Groups))
			for g := range h.Groups {
				keys = append(keys, g)
			}
			sort.Strings(keys)
			for _, g := range keys {
				e.String(g)
				e.Value(h.Groups[g])
			}
		},
		func(d *wire.Dec) hello {
			var h hello
			h.Version = d.Uvarint()
			h.Gen = d.Uvarint()
			if v := d.Value(); v != nil {
				nodes, ok := v.([]ids.NodeID)
				if !ok {
					d.Corrupt("hello nodes")
					return h
				}
				h.Nodes = nodes
			}
			n := d.Count(3) // each group: string len + value tag + presence
			if n > 0 {
				h.Groups = make(map[string][]ids.NodeID, n)
			}
			for i := 0; i < n && d.Err() == nil; i++ {
				g := d.String()
				v := d.Value()
				members, ok := v.([]ids.NodeID)
				if v != nil && !ok {
					d.Corrupt("hello group members")
					return h
				}
				h.Groups[g] = members
			}
			return h
		})
	wire.Register(idGroupUpdate, "tcptransport.groupUpdate",
		func(u groupUpdate) int {
			return wire.SizeString(u.Group) + wire.SizeUvarint(uint64(u.Node)) + 1
		},
		func(e *wire.Enc, u groupUpdate) {
			e.String(u.Group)
			e.Uvarint(uint64(u.Node))
			e.Bool(u.Leave)
		},
		func(d *wire.Dec) groupUpdate {
			var u groupUpdate
			u.Group = d.String()
			n := d.Uvarint()
			if n > math.MaxUint32 {
				d.Corrupt("group update node id")
				return u
			}
			u.Node = ids.NodeID(n)
			u.Leave = d.Bool()
			return u
		})
}

// acceptLoop admits peer connections until the listener closes.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (fd pressure etc.): back off and
			// keep the door open.
			t.logf("tcptransport: accept: %v", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if !t.trackConn(conn) {
			return
		}
		t.wg.Add(1)
		go t.handleInbound(conn)
	}
}

func (t *Transport) handleInbound(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrackConn(conn)
	defer conn.Close()
	h, err := t.handshake(conn, false)
	if err != nil {
		t.logf("tcptransport: handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	t.mergePeerGroups(h.Nodes, h.Groups)
	t.kickLinks(h.Nodes)
	t.readLoop(conn)
}

// handshake runs the hello exchange on a fresh connection: the dialer
// speaks first, the acceptor validates and answers. Either side hanging
// up or announcing a different wire.Version fails the connection.
func (t *Transport) handshake(conn net.Conn, dialer bool) (hello, error) {
	conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	if dialer {
		if err := t.writeHello(conn); err != nil {
			return hello{}, err
		}
		return t.readHello(conn)
	}
	h, err := t.readHello(conn)
	if err != nil {
		return hello{}, err
	}
	return h, t.writeHello(conn)
}

func (t *Transport) writeHello(conn net.Conn) error {
	t.mu.RLock()
	h := hello{
		Version: wire.Version,
		Gen:     t.cfg.Generation,
		Nodes:   make([]ids.NodeID, 0, len(t.local)),
		Groups:  t.localGroupsLocked(),
	}
	for n := range t.local {
		h.Nodes = append(h.Nodes, n)
	}
	t.mu.RUnlock()
	sort.Slice(h.Nodes, func(i, j int) bool { return h.Nodes[i] < h.Nodes[j] })

	e := wire.Enc{Buf: make([]byte, 4, 128)}
	e.Uvarint(0)                             // From: none — control record
	e.Uvarint(0)                             // To
	e.Uvarint(uint64(transport.ClassSystem)) // Class
	e.Value(h)
	if e.Err() != nil {
		return e.Err()
	}
	body := e.Buf[4:]
	frame := batch.AppendFrame(make([]byte, 4, 32+len(body)),
		[]batch.WireRec{{Kind: kindHello, Body: body}})
	binary.BigEndian.PutUint32(frame, uint32(len(frame)-4))
	_, err := conn.Write(frame)
	return err
}

func (t *Transport) readHello(conn net.Conn) (hello, error) {
	frame, err := readFrame(conn, nil)
	if err != nil {
		return hello{}, err
	}
	recs, err := batch.DecodeFrame(nil, frame)
	if err != nil || len(recs) == 0 || recs[0].Kind != kindHello {
		return hello{}, fmt.Errorf("tcptransport: malformed hello frame (%v)", err)
	}
	d := wire.Dec{Src: recs[0].Body}
	d.Uvarint() // From
	d.Uvarint() // To
	d.Uvarint() // Class
	v := d.Value()
	h, ok := v.(hello)
	if d.Err() != nil || !ok {
		return hello{}, fmt.Errorf("tcptransport: malformed hello payload (%v)", d.Err())
	}
	if h.Version != wire.Version {
		return hello{}, fmt.Errorf("tcptransport: wire version mismatch: peer speaks v%d, this build v%d", h.Version, wire.Version)
	}
	return h, nil
}

// readFrame reads one length-prefixed frame, reusing scratch when it is
// big enough. It works on any io.Reader (bare conn for the handshake,
// buffered reader for the stream).
func readFrame(r io.Reader, scratch []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcptransport: frame of %d bytes exceeds limit", n)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return nil, err
	}
	return scratch, nil
}

// readLoop consumes frames until the connection dies, dispatching each
// record in order — the per-connection serial read is what preserves
// per-(sender, receiver) FIFO across the wire.
func (t *Transport) readLoop(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var frame []byte
	var recs []batch.WireRec
	for {
		var err error
		frame, err = readFrame(br, frame)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				t.logf("tcptransport: read %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		recs, err = batch.DecodeFrame(recs[:0], frame)
		if err != nil {
			t.logf("tcptransport: corrupt frame from %s: %v", conn.RemoteAddr(), err)
			return
		}
		for _, r := range recs {
			t.handleRecord(r)
		}
	}
}

// handleRecord routes one decoded record: control kinds mutate transport
// state, everything else is delivered to the destination node's dispatch
// shard. Decoded payloads own their memory (the wire codec copies), so
// the frame buffer is safely reused for the next read.
func (t *Transport) handleRecord(r batch.WireRec) {
	d := wire.Dec{Src: r.Body}
	fromRaw, toRaw, clsRaw := d.Uvarint(), d.Uvarint(), d.Uvarint()
	payload := d.Value()
	if d.Err() != nil || !d.Done() || fromRaw > math.MaxUint32 || toRaw > math.MaxUint32 || clsRaw > math.MaxUint8 {
		t.ctrDropped.Add(1)
		t.logf("tcptransport: corrupt %q record: %v", r.Kind, d.Err())
		return
	}
	from, to := ids.NodeID(fromRaw), ids.NodeID(toRaw)
	switch r.Kind {
	case kindHello:
		return // late hello: already handshaken, ignore
	case kindGroup:
		if u, ok := payload.(groupUpdate); ok {
			t.mu.Lock()
			t.applyGroupLocked(u.Group, u.Node, u.Leave)
			t.mu.Unlock()
		}
		return
	}
	t.mu.RLock()
	ep := t.local[to]
	severed := t.cut[[2]ids.NodeID{from, to}] || t.crashed[from] || t.crashed[to]
	closed := t.closed
	t.mu.RUnlock()
	if closed || ep == nil || severed {
		t.ctrDropped.Add(1)
		return
	}
	// QoS admission may reject here (deliver counts the drop); the sender's
	// reliable layer retransmits, so shedding a socket arrival is loss, not
	// deadlock.
	t.deliver(ep, transport.Message{
		From: from, To: to, Kind: r.Kind, Payload: payload, Size: recFootprint(r),
		Class: transport.Class(clsRaw),
	})
}
