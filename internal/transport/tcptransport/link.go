package tcptransport

import (
	"encoding/binary"
	"net"
	"time"

	"repro/internal/batch"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// link is the outbound leg toward one peer process: a bounded queue
// drained by a single writer goroutine that owns the connection. The
// writer dials on demand (the first queued message triggers the first
// dial), redials with capped exponential backoff after failures, and
// coalesces whatever is queued — up to maxCoalesce messages — into one
// length-prefixed batch frame per socket write.
type link struct {
	t    *Transport
	addr string
	out  chan transport.Message
	// kick (capacity 1) wakes a backed-off redial immediately: it is
	// poked when the peer process dials us, which proves the peer is up
	// right now. Without it a restarted peer can sit unreached for the
	// remainder of a capped exponential delay — long enough for its
	// fresh failure detector to misread our silence as a crash.
	kick chan struct{}
}

func (l *link) run() {
	defer l.t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
			l.t.untrackConn(conn)
		}
	}()
	var buf []byte
	pending := make([]transport.Message, 0, maxCoalesce)
	for {
		// Block for the first message of the next frame.
		select {
		case <-l.t.done:
			return
		case m := <-l.out:
			pending = append(pending[:0], m)
		}
		// Opportunistic coalescing: take whatever else is already queued.
	drain:
		for len(pending) < maxCoalesce {
			select {
			case m := <-l.out:
				pending = append(pending, m)
			default:
				break drain
			}
		}
		if conn == nil {
			conn = l.connect()
			if conn == nil {
				return // transport closed while (re)dialing
			}
		}
		var n int
		buf, n = l.t.encodeFrame(buf[:0], pending)
		if n == 0 {
			continue // every payload unencodable; already counted
		}
		if _, err := conn.Write(buf); err != nil {
			// The frame died with the connection; its messages were
			// counted as sent and are now lost — the reliable envelope
			// above retransmits them once the link is back.
			l.t.logf("tcptransport: write %s: %v", l.addr, err)
			l.t.ctrDropped.Add(int64(n))
			conn.Close()
			l.t.untrackConn(conn)
			conn = nil
		}
	}
}

// connect dials l.addr until a connection survives the handshake,
// backing off exponentially from RetryBase to RetryMax between attempts.
// It returns nil only when the transport closes.
func (l *link) connect() net.Conn {
	backoff := l.t.cfg.RetryBase
	for attempt := 1; ; attempt++ {
		select {
		case <-l.t.done:
			return nil
		default:
		}
		conn, err := net.DialTimeout("tcp", l.addr, l.t.cfg.DialTimeout)
		if err == nil {
			if !l.t.trackConn(conn) {
				return nil
			}
			hello, herr := l.t.handshake(conn, true)
			if herr == nil {
				l.t.mergePeerGroups(hello.Nodes, hello.Groups)
				// The peer never sends routed traffic on a connection it
				// accepted, but reading it serves two purposes: prompt
				// detection of a dead/restarting peer (EOF or reset
				// instead of a half-open socket), and symmetry — if a
				// future peer does write, the records are handled.
				l.t.wg.Add(1)
				go func() {
					defer l.t.wg.Done()
					defer l.t.untrackConn(conn)
					defer conn.Close()
					l.t.readLoop(conn)
				}()
				return conn
			}
			err = herr
			conn.Close()
			l.t.untrackConn(conn)
		}
		if attempt == 1 {
			l.t.logf("tcptransport: dial %s: %v (retrying)", l.addr, err)
		}
		timer := time.NewTimer(backoff)
		select {
		case <-l.t.done:
			timer.Stop()
			return nil
		case <-l.kick:
			// The peer just connected to us; redial now and restart the
			// backoff ladder from the base.
			timer.Stop()
			backoff = l.t.cfg.RetryBase
			continue
		case <-timer.C:
		}
		backoff *= 2
		if backoff > l.t.cfg.RetryMax {
			backoff = l.t.cfg.RetryMax
		}
	}
}

// encodeFrame serializes pending into one length-prefixed batch frame
// appended to dst, charging send metrics with measured sizes. It returns
// the buffer and how many messages made it into the frame; payloads the
// wire codec cannot express are dropped and counted. Departure-time
// payloads (batch.Finalizer — the reliable layer's pending envelopes)
// take their final form here, at the socket, exactly as netsim's batcher
// finalizes at flush.
func (t *Transport) encodeFrame(dst []byte, pending []transport.Message) ([]byte, int) {
	recs := make([]batch.WireRec, 0, len(pending))
	var bodies []byte // one allocation backs every record body
	offs := make([]int, 0, len(pending)+1)
	offs = append(offs, 0)
	for _, m := range pending {
		if fin, ok := m.Payload.(batch.Finalizer); ok {
			m.Payload = fin.FinalizeFlush()
		}
		e := wire.Enc{Buf: bodies}
		e.Uvarint(uint64(m.From))
		e.Uvarint(uint64(m.To))
		e.Uvarint(uint64(m.Class))
		e.Value(m.Payload)
		if e.Err() != nil {
			t.logf("tcptransport: drop %q to %v: %v", m.Kind, m.To, e.Err())
			t.chargeSend(m.Kind, 0)
			t.ctrDropped.Add(1)
			continue
		}
		bodies = e.Buf
		offs = append(offs, len(bodies))
		recs = append(recs, batch.WireRec{Kind: m.Kind})
	}
	for i := range recs {
		recs[i].Body = bodies[offs[i]:offs[i+1]]
	}
	if len(recs) == 0 {
		return dst, 0
	}
	// Length prefix, then the frame itself.
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = batch.AppendFrame(dst, recs)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	// Measured accounting: per message its record footprint on the wire,
	// plus the frame overhead (count varint + length prefix) charged to
	// the byte total so net.msg.bytes equals bytes on the socket.
	total := 0
	for _, r := range recs {
		size := recFootprint(r)
		total += size
		t.chargeSend(r.Kind, size)
	}
	t.ctrBytes.Add(int64(len(dst) - start - 4 - total))
	return dst, len(recs)
}

// recFootprint is one record's bytes inside a frame: both length
// prefixes plus kind and body, mirroring internal/batch's layout.
func recFootprint(r batch.WireRec) int {
	return uvarintLen(uint64(len(r.Kind))) + len(r.Kind) +
		uvarintLen(uint64(len(r.Body))) + len(r.Body)
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
