package tcptransport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// collector records delivered messages for assertions.
type collector struct {
	mu   sync.Mutex
	msgs []transport.Message
}

func (c *collector) handle(m transport.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) payloads() []any {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]any, len(c.msgs))
	for i, m := range c.msgs {
		out[i] = m.Payload
	}
	return out
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// pair boots two single-node transports wired to each other: node 1 on
// the first, node 2 on the second.
func pair(t *testing.T) (*Transport, *Transport, *collector, *collector) {
	t.Helper()
	ta := newT(t, 1)
	tb := newT(t, 2)
	peers := map[ids.NodeID]string{1: ta.Addr(), 2: tb.Addr()}
	if err := ta.SetPeers(peers); err != nil {
		t.Fatal(err)
	}
	if err := tb.SetPeers(peers); err != nil {
		t.Fatal(err)
	}
	ca, cb := &collector{}, &collector{}
	if err := ta.Attach(1, ca.handle); err != nil {
		t.Fatal(err)
	}
	if err := tb.Attach(2, cb.handle); err != nil {
		t.Fatal(err)
	}
	ta.Start()
	tb.Start()
	t.Cleanup(func() {
		ta.Close(context.Background())
		tb.Close(context.Background())
	})
	return ta, tb, ca, cb
}

func newT(t *testing.T, node ids.NodeID) *Transport {
	t.Helper()
	tr, err := New(Config{
		Listen:    "127.0.0.1:0",
		RetryBase: 5 * time.Millisecond,
		RetryMax:  50 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestUnicastFIFOAndMetrics(t *testing.T) {
	ta, tb, _, cb := pair(t)
	const n = 200
	for i := 0; i < n; i++ {
		if err := ta.Send(transport.Message{From: 1, To: 2, Kind: "test.seq", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all messages", func() bool { return cb.count() == n })
	for i, p := range cb.payloads() {
		// The codec widens small ints to int64? No: builtin int decodes
		// back as int. Order must be exactly the send order.
		if p != i {
			t.Fatalf("message %d carried %v (out of order or corrupted)", i, p)
		}
	}
	sent := ta.Metrics().Get(metrics.CtrMsgSent)
	bytes := ta.Metrics().Get(metrics.CtrMsgBytes)
	if sent < n {
		t.Fatalf("sender counted %d sent, want >= %d", sent, n)
	}
	if bytes <= 0 {
		t.Fatalf("sender counted %d bytes, want measured socket bytes", bytes)
	}
	if got := tb.Metrics().Get(metrics.CtrMsgDelivered); got < n {
		t.Fatalf("receiver counted %d delivered, want >= %d", got, n)
	}
	if kb := ta.Metrics().Get(metrics.KindBytes("test.seq")); kb <= 0 {
		t.Fatalf("per-kind byte counter empty")
	}
}

// TestPeerUnreachableThenUp covers dial-time failure: sends toward a
// dead address are silently dropped (datagram contract), and once a
// process binds the address the link comes up and traffic flows.
func TestPeerUnreachableThenUp(t *testing.T) {
	ta := newT(t, 1)
	ca := &collector{}
	if err := ta.Attach(1, ca.handle); err != nil {
		t.Fatal(err)
	}

	// Reserve an address nobody is accepting on.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	peers := map[ids.NodeID]string{1: ta.Addr(), 2: addr}
	ta.SetPeers(peers)
	ta.Start()
	t.Cleanup(func() { ta.Close(context.Background()) })

	// Unreachable: Send must not error and must not block.
	for i := 0; i < 10; i++ {
		if err := ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "lost"}); err != nil {
			t.Fatalf("send to unreachable peer: %v", err)
		}
	}

	// Peer comes up on the reserved address.
	tb, err := New(Config{Listen: addr, RetryBase: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cb := &collector{}
	tb.SetPeers(peers)
	tb.Attach(2, cb.handle)
	tb.Start()
	t.Cleanup(func() { tb.Close(context.Background()) })

	// New traffic flows once the redial succeeds (earlier messages may
	// arrive too if they were still queued — loss, not duplication, is
	// the only permitted outcome).
	waitFor(t, "delivery after peer came up", func() bool {
		ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "hello"})
		return cb.count() > 0
	})
}

// TestReconnectAfterPeerRestart kills the receiving process's transport
// mid-stream — every socket dies, as in a crash — and boots a fresh
// transport on the same address. The sender must notice the broken
// connection and redial; traffic resumes without intervention.
func TestReconnectAfterPeerRestart(t *testing.T) {
	ta, tb, _, cb := pair(t)
	addr := tb.Addr()
	peers := map[ids.NodeID]string{1: ta.Addr(), 2: addr}

	ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "before"})
	waitFor(t, "pre-restart delivery", func() bool { return cb.count() >= 1 })

	// Crash: conn reset mid-stream for the sender.
	if err := tb.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address (new incarnation).
	tb2, err := New(Config{Listen: addr, Generation: 2, RetryBase: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cb2 := &collector{}
	tb2.SetPeers(peers)
	tb2.Attach(2, cb2.handle)
	tb2.Start()
	t.Cleanup(func() { tb2.Close(context.Background()) })

	waitFor(t, "delivery after restart", func() bool {
		ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "after"})
		return cb2.count() > 0
	})
}

// TestHalfOpenConnectionRecovers severs the established connection at
// the TCP level without telling the sender's transport: the reader side
// observes the close, the writer hits a reset, and the link redials.
func TestHalfOpenConnectionRecovers(t *testing.T) {
	ta, tb, _, cb := pair(t)

	ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "one"})
	waitFor(t, "initial delivery", func() bool { return cb.count() >= 1 })

	// Abruptly close every socket the receiver holds (accepted conns
	// included) — the sender's established connection is now dead.
	tb.connMu.Lock()
	for c := range tb.conns {
		c.Close()
	}
	tb.connMu.Unlock()

	waitFor(t, "delivery after half-open recovery", func() bool {
		ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "again"})
		return cb.count() >= 2
	})
}

// TestInboundConnectionKicksBackoff pins the redial kick: a link deep in
// dial backoff must retry immediately when the peer itself connects to
// us, instead of sleeping out the remainder of the capped delay. This is
// what keeps a restart invisible to the peers' failure detectors — the
// restarted process dials within milliseconds, and everyone's backed-off
// links toward it must follow suit before its fresh detector reads their
// silence as a crash.
func TestInboundConnectionKicksBackoff(t *testing.T) {
	// Reserve node 2's address with nothing accepting on it yet.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	// Sender with a deliberately huge backoff: one failed dial parks the
	// link for 30s unless something kicks it.
	ta, err := New(Config{
		Listen:    "127.0.0.1:0",
		RetryBase: 30 * time.Second,
		RetryMax:  30 * time.Second,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ca := &collector{}
	peers := map[ids.NodeID]string{1: ta.Addr(), 2: addr}
	ta.SetPeers(peers)
	ta.Attach(1, ca.handle)
	ta.Start()
	t.Cleanup(func() { ta.Close(context.Background()) })

	// First send fails its dial (connection refused) and enters backoff.
	ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "queued"})
	time.Sleep(100 * time.Millisecond)

	// The peer comes up and immediately dials us — exactly what a
	// restarted node does for its own heartbeats.
	tb, err := New(Config{Listen: addr, RetryBase: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cb := &collector{}
	tb.SetPeers(peers)
	tb.Attach(2, cb.handle)
	tb.Start()
	t.Cleanup(func() { tb.Close(context.Background()) })
	start := time.Now()
	tb.Send(transport.Message{From: 2, To: 1, Kind: "test.k", Payload: "hello"})

	// Without the kick nothing reaches node 2 for ~30s; with it the
	// inbound handshake wakes the link and delivery is near-immediate.
	deadline := time.Now().Add(5 * time.Second)
	for cb.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no delivery %v after peer came up: backoff was not kicked", time.Since(start))
		}
		ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "retry"})
		time.Sleep(10 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delivery took %v, want well under the 30s backoff", elapsed)
	}
}

// TestMalformedPeerRejected connects a raw TCP client speaking garbage:
// the acceptor must drop the connection without panicking and keep
// serving well-formed peers.
func TestMalformedPeerRejected(t *testing.T) {
	ta, _, _, cb := pair(t)

	raw, err := net.Dial("tcp", ta.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x01, 0x02}) // absurd frame length
	buf := make([]byte, 1)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("acceptor kept a garbage connection open")
	}
	raw.Close()

	// The transport still works.
	waitFor(t, "delivery after garbage peer", func() bool {
		ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "fine"})
		return cb.count() > 0
	})
}

// TestGroupPropagation pins the multicast-membership replication: joins
// on one process become visible on its peers (via handshake snapshot or
// incremental update), and Multicast reaches remote members.
func TestGroupPropagation(t *testing.T) {
	ta, tb, ca, _ := pair(t)

	// Incremental path: the join replicates over live connections (the
	// join itself establishes one if needed).
	ta.JoinGroup("g", 1)
	waitFor(t, "remote group visibility", func() bool {
		m := tb.GroupMembers("g")
		return len(m) == 1 && m[0] == 1
	})

	if err := tb.Multicast(2, "g", "test.mc", "to-members"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "multicast delivery to remote member", func() bool { return ca.count() >= 1 })

	ta.LeaveGroup("g", 1)
	waitFor(t, "remote leave visibility", func() bool { return len(tb.GroupMembers("g")) == 0 })
}

// TestBroadcastReachesAllPeers boots three processes and broadcasts.
func TestBroadcastReachesAllPeers(t *testing.T) {
	var trs []*Transport
	var cols []*collector
	peers := map[ids.NodeID]string{}
	for i := 1; i <= 3; i++ {
		tr := newT(t, ids.NodeID(i))
		c := &collector{}
		if err := tr.Attach(ids.NodeID(i), c.handle); err != nil {
			t.Fatal(err)
		}
		peers[ids.NodeID(i)] = tr.Addr()
		trs = append(trs, tr)
		cols = append(cols, c)
	}
	for _, tr := range trs {
		tr.SetPeers(peers)
		tr.Start()
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close(context.Background())
		}
	})
	if err := trs[0].Broadcast(1, "test.bc", "all"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "broadcast delivery", func() bool {
		return cols[1].count() == 1 && cols[2].count() == 1 && cols[0].count() == 0
	})
	if got := trs[0].Metrics().Get(metrics.CtrBroadcast); got != 1 {
		t.Fatalf("broadcast op counter = %d, want 1", got)
	}
}

// TestLocalDelivery covers two nodes hosted by one process: traffic
// between them never touches a socket but is accounted and FIFO.
func TestLocalDelivery(t *testing.T) {
	tr := newT(t, 1)
	c1, c2 := &collector{}, &collector{}
	tr.Attach(1, c1.handle)
	tr.Attach(2, c2.handle)
	tr.SetPeers(map[ids.NodeID]string{1: tr.Addr(), 2: tr.Addr()})
	tr.Start()
	t.Cleanup(func() { tr.Close(context.Background()) })
	for i := 0; i < 50; i++ {
		tr.Send(transport.Message{From: 1, To: 2, Kind: "test.local", Payload: i})
	}
	waitFor(t, "local delivery", func() bool { return c2.count() == 50 })
	for i, p := range c2.payloads() {
		if p != i {
			t.Fatalf("local message %d carried %v", i, p)
		}
	}
}

// TestCrashNodeLocalView pins the process-local fault surface: a crashed
// node's traffic is refused in both directions until restart.
func TestCrashNodeLocalView(t *testing.T) {
	ta, _, _, cb := pair(t)
	if err := ta.CrashNode(2); err != nil {
		t.Fatal(err)
	}
	if !ta.Crashed(2) {
		t.Fatal("Crashed(2) = false after CrashNode")
	}
	ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "dropped"})
	time.Sleep(50 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatal("message crossed a crashed-node filter")
	}
	if err := ta.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery after restart", func() bool {
		ta.Send(transport.Message{From: 1, To: 2, Kind: "test.k", Payload: "ok"})
		return cb.count() > 0
	})
}

func TestSendAfterCloseFails(t *testing.T) {
	ta, _, _, _ := pair(t)
	if err := ta.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ta.Send(transport.Message{From: 1, To: 2, Kind: "k", Payload: "x"}); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if err := ta.Send(transport.Message{From: 1, To: 99, Kind: "k", Payload: "x"}); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}

func TestUnknownNode(t *testing.T) {
	ta, _, _, _ := pair(t)
	err := ta.Send(transport.Message{From: 1, To: 99, Kind: "k", Payload: "x"})
	if err == nil {
		t.Fatal("send to unmapped node succeeded")
	}
}

// TestManyKindsConcurrent hammers one link from several goroutines to
// shake out races in the writer/coalescer (run under -race).
func TestManyKindsConcurrent(t *testing.T) {
	ta, _, _, cb := pair(t)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ta.Send(transport.Message{
					From: 1, To: 2,
					Kind:    fmt.Sprintf("test.w%d", w),
					Payload: i,
				})
			}
		}(w)
	}
	wg.Wait()
	waitFor(t, "all concurrent messages", func() bool { return cb.count() == workers*per })
}
