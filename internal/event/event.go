// Package event defines the data model of the paper's event facility: event
// names (system and user), event blocks, handler descriptors for the three
// handler placements of §4.1 (attachment entry point, buddy handler,
// per-thread-memory procedure), LIFO handler chains (§4.2) and the
// per-application event-name registry (§3).
//
// This package is pure data: the routing and delivery machinery lives in
// internal/core, which consumes these types.
package event

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
)

// Name identifies an event, e.g. "TERMINATE" or an application-registered
// name such as "COMMIT". Names are global strings as in the paper, where
// applications register names with the operating system.
type Name string

// Predefined system events (§3: "Predefined events, which are raised by the
// operating system, are termed system events").
const (
	// Terminate asks a thread or application to shut down; the default
	// action terminates the target thread (the distributed ^C of §6.3
	// layers on it).
	Terminate Name = "TERMINATE"
	// Abort tells an object to abort the invocation in progress for the
	// thread named in the event block (§6.3).
	Abort Name = "ABORT"
	// Quit terminates the receiving thread immediately; raised to thread
	// groups by the ^C protocol.
	Quit Name = "QUIT"
	// Delete is posted to an object before it is destroyed.
	Delete Name = "DELETE"
	// Interrupt is the user-visible asynchronous interrupt.
	Interrupt Name = "INTERRUPT"
	// Timer is the periodic timer notification used by monitors (§6.2).
	Timer Name = "TIMER"
	// VMFault is a fault on a user-pageable DSM segment, serviced by
	// user-level virtual memory managers (§6.4).
	VMFault Name = "VM_FAULT"
	// PageFault is a fault on a kernel-managed DSM segment; synchronous
	// with respect to the faulting thread.
	PageFault Name = "PAGE_FAULT"
	// DivZero models the paper's example hardware exception.
	DivZero Name = "DIV_ZERO"
	// Alarm is a one-shot timer expiry.
	Alarm Name = "ALARM"
	// ThreadDeath notifies a synchronous raiser that the target thread was
	// destroyed before delivery (§7.2 fault-tolerance note).
	ThreadDeath Name = "THREAD_DEATH"
	// NodeDown is raised by the failure detector when a node is declared
	// crashed; it generalizes §7.2's death notices from "thread died" to
	// "node died" (every thread and activation there is lost at once).
	NodeDown Name = "NODE_DOWN"
	// NodeUp is raised by the failure detector when a previously suspected
	// node resumes heartbeating (it was restarted or a partition healed).
	NodeUp Name = "NODE_UP"
)

// systemEvents is the closed predefined set.
var systemEvents = map[Name]bool{
	Terminate: true, Abort: true, Quit: true, Delete: true,
	Interrupt: true, Timer: true, VMFault: true, PageFault: true,
	DivZero: true, Alarm: true, ThreadDeath: true,
	NodeDown: true, NodeUp: true,
}

// IsSystem reports whether n is one of the predefined system events.
func IsSystem(n Name) bool { return systemEvents[n] }

// SystemEvents returns the predefined system event names, sorted.
func SystemEvents() []Name {
	out := make([]Name, 0, len(systemEvents))
	for n := range systemEvents {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TargetKind discriminates the valid recipients of §5.3.
type TargetKind int

// The recipient classes of the paper's addressing table.
const (
	// TargetThread addresses a single thread (the current thread, an
	// unrelated thread, or a buddy-handled thread).
	TargetThread TargetKind = iota + 1
	// TargetGroup addresses every member of a thread group.
	TargetGroup
	// TargetObject addresses a (possibly passive) object.
	TargetObject
)

// String returns the lowercase kind name.
func (k TargetKind) String() string {
	switch k {
	case TargetThread:
		return "thread"
	case TargetGroup:
		return "group"
	case TargetObject:
		return "object"
	default:
		return fmt.Sprintf("TargetKind(%d)", int(k))
	}
}

// Target is a routing destination: exactly one of Thread, Group or Object
// is set, according to Kind.
type Target struct {
	Kind   TargetKind
	Thread ids.ThreadID
	Group  ids.GroupID
	Object ids.ObjectID
}

// ToThread builds a thread target.
func ToThread(t ids.ThreadID) Target { return Target{Kind: TargetThread, Thread: t} }

// ToGroup builds a thread-group target.
func ToGroup(g ids.GroupID) Target { return Target{Kind: TargetGroup, Group: g} }

// ToObject builds an object target.
func ToObject(o ids.ObjectID) Target { return Target{Kind: TargetObject, Object: o} }

// String renders the destination.
func (t Target) String() string {
	switch t.Kind {
	case TargetThread:
		return t.Thread.String()
	case TargetGroup:
		return t.Group.String()
	case TargetObject:
		return t.Object.String()
	default:
		return "target(invalid)"
	}
}

// Validate reports whether the target is structurally sound.
func (t Target) Validate() error {
	switch t.Kind {
	case TargetThread:
		if !t.Thread.IsValid() {
			return errors.New("event: thread target without thread id")
		}
	case TargetGroup:
		if !t.Group.IsValid() {
			return errors.New("event: group target without group id")
		}
	case TargetObject:
		if !t.Object.IsValid() {
			return errors.New("event: object target without object id")
		}
	default:
		return fmt.Errorf("event: invalid target kind %d", int(t.Kind))
	}
	return nil
}

// ThreadState is the "state of the registers, etc." of §4.1: the snapshot
// of the suspended thread the handler may examine and modify. The simulated
// program counter counts interruption points the activation has passed.
type ThreadState struct {
	Thread  ids.ThreadID
	Node    ids.NodeID
	Object  ids.ObjectID // object the thread is (or was last) active in
	Entry   string       // entry point executing
	PC      uint64       // simulated program counter
	Blocked string       // kernel operation the thread is blocked in, "" if running
	Depth   int          // invocation depth (activations below the root)
}

// Block is the event block passed to every handler (§4.1): generic system
// information plus, for user events, an optional user-defined structure.
type Block struct {
	Stamp  ids.EventStamp
	Name   Name
	Target Target
	// Raiser identifies the raising thread; NoThread when raised by the
	// kernel (e.g. timer service, DSM).
	Raiser     ids.ThreadID
	RaiserNode ids.NodeID
	// Sync is set for raise_and_wait: the raiser blocks until a handler
	// explicitly resumes it. SyncID correlates the release with the waiter
	// at RaiserNode.
	Sync   bool
	SyncID uint64
	// Class is the QoS dispatch class stamped at raise time (the numeric
	// value of a transport.Class; this package stays dependency-free). It
	// travels with the block — through fan-out relays, retransmits, and
	// the wire codec — so every hop schedules the event under the class
	// its raiser was admitted at.
	Class uint8
	// State is the suspended target thread's state; nil for deliveries to
	// passive objects with no thread involved.
	State *ThreadState
	// User carries the user-defined structure appended to the event block
	// for user events (nil for most system events).
	User map[string]any
}

// Clone returns a deep copy so per-recipient deliveries (e.g. group fan-out)
// cannot alias one another's blocks.
func (b *Block) Clone() *Block {
	nb := *b
	if b.State != nil {
		st := *b.State
		nb.State = &st
	}
	if b.User != nil {
		nb.User = make(map[string]any, len(b.User))
		for k, v := range b.User {
			nb.User[k] = v
		}
	}
	return &nb
}

// WireSize estimates the block's network footprint for message accounting.
func (b *Block) WireSize() int {
	size := 64 + len(b.Name)
	if b.State != nil {
		size += 48
	}
	for k := range b.User {
		size += len(k) + 16
	}
	return size
}

// Verdict is a handler's decision about the suspended thread (§3: "After
// the handler finishes executing, the suspended thread is resumed or
// terminated").
type Verdict int

const (
	// VerdictResume resumes the suspended thread and stops chain walking.
	VerdictResume Verdict = iota + 1
	// VerdictTerminate terminates the suspended thread.
	VerdictTerminate
	// VerdictPropagate passes the event to the next handler down the LIFO
	// chain (Ada-style dynamic propagation, §4.2); if the chain is
	// exhausted the system default action applies.
	VerdictPropagate
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictResume:
		return "resume"
	case VerdictTerminate:
		return "terminate"
	case VerdictPropagate:
		return "propagate"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// HandlerKind is the placement of a thread-based handler (§4.1).
type HandlerKind int

const (
	// KindEntry runs an entry point of the object in which the handler was
	// attached, wherever that object lives when the event arrives.
	KindEntry HandlerKind = iota + 1
	// KindBuddy runs an entry point of a designated other object (a
	// "buddy handler", after Medusa's trusted buddy).
	KindBuddy
	// KindProc runs a procedure from the thread's per-thread memory in the
	// context of the object the thread currently occupies (OWN_CONTEXT).
	// The procedure is named in the system handler-code registry, which
	// stands in for position-independent code mapped at a well-known
	// address (§7.2).
	KindProc
)

// String returns the kind name.
func (k HandlerKind) String() string {
	switch k {
	case KindEntry:
		return "entry"
	case KindBuddy:
		return "buddy"
	case KindProc:
		return "proc"
	default:
		return fmt.Sprintf("HandlerKind(%d)", int(k))
	}
}

// HandlerRef describes one attached thread-based handler. HandlerRefs are
// part of the thread's attributes and travel with the thread across nodes,
// so they hold only names and identifiers, never function values.
type HandlerRef struct {
	Event Name
	Kind  HandlerKind
	// Object is the object whose entry point handles the event: the
	// attaching object for KindEntry, the designated buddy for KindBuddy.
	// Unused for KindProc.
	Object ids.ObjectID
	// Entry is the handler entry-point name within Object (KindEntry,
	// KindBuddy).
	Entry string
	// Proc is the handler-code registry name (KindProc).
	Proc string
	// AttachedIn records the object the thread was executing in when
	// attach_handler ran; used for scoping and diagnostics.
	AttachedIn ids.ObjectID
	// Data statically binds parameters to this handler attachment, e.g.
	// which lock a chained TERMINATE unlock routine must release (§4.2's
	// distributed lock management example).
	Data map[string]string
}

// CloneData returns a copy of the ref with an independent Data map.
func (h HandlerRef) CloneData() HandlerRef {
	if h.Data == nil {
		return h
	}
	nd := make(map[string]string, len(h.Data))
	for k, v := range h.Data {
		nd[k] = v
	}
	h.Data = nd
	return h
}

// Validate reports whether the reference is structurally sound.
func (h HandlerRef) Validate() error {
	if h.Event == "" {
		return errors.New("event: handler without event name")
	}
	switch h.Kind {
	case KindEntry, KindBuddy:
		if !h.Object.IsValid() {
			return fmt.Errorf("event: %v handler for %s without object", h.Kind, h.Event)
		}
		if h.Entry == "" {
			return fmt.Errorf("event: %v handler for %s without entry name", h.Kind, h.Event)
		}
	case KindProc:
		if h.Proc == "" {
			return fmt.Errorf("event: proc handler for %s without code name", h.Event)
		}
	default:
		return fmt.Errorf("event: invalid handler kind %d", int(h.Kind))
	}
	return nil
}

// String renders the reference.
func (h HandlerRef) String() string {
	switch h.Kind {
	case KindProc:
		return fmt.Sprintf("%s->proc:%s", h.Event, h.Proc)
	default:
		return fmt.Sprintf("%s->%v:%v.%s", h.Event, h.Kind, h.Object, h.Entry)
	}
}

// Chain is a LIFO stack of handler references for one thread (§4.2:
// "the new handler can be attached in a LIFO fashion"). Chains are part of
// thread attributes; they are copied, never shared, across activations.
// Chain is not safe for concurrent use; the kernel serializes access per
// thread.
type Chain struct {
	links []HandlerRef // links[len-1] is the most recently attached
}

// Push attaches h at the head of the chain (most recent first).
func (c *Chain) Push(h HandlerRef) {
	c.links = append(c.links, h)
}

// Remove detaches the most recently attached handler for name. It reports
// whether a handler was removed.
func (c *Chain) Remove(name Name) bool {
	for i := len(c.links) - 1; i >= 0; i-- {
		if c.links[i].Event == name {
			c.links = append(c.links[:i], c.links[i+1:]...)
			return true
		}
	}
	return false
}

// For returns the handlers for name in delivery order: most recently
// attached first. The returned slice and its Data maps are copies.
func (c *Chain) For(name Name) []HandlerRef {
	var out []HandlerRef
	for i := len(c.links) - 1; i >= 0; i-- {
		if c.links[i].Event == name {
			out = append(out, c.links[i].CloneData())
		}
	}
	return out
}

// Depth returns the number of handlers attached for name.
func (c *Chain) Depth(name Name) int {
	n := 0
	for _, l := range c.links {
		if l.Event == name {
			n++
		}
	}
	return n
}

// Len returns the total number of attached handlers.
func (c *Chain) Len() int { return len(c.links) }

// Clone returns an independent deep copy of the chain. Thread spawn
// inherits attributes (§6.3: "Any subsequent thread spawned from the root
// thread inherits the thread attributes (including the event registry and
// the handler information)"), and cloning keeps parent and child
// independent.
func (c *Chain) Clone() *Chain {
	nc := &Chain{links: make([]HandlerRef, len(c.links))}
	for i, l := range c.links {
		nc.links[i] = l.CloneData()
	}
	return nc
}

// Merge replaces this chain with a deep copy of other's links. Used when a
// reply merges downstream attribute changes back into the caller's
// activation.
func (c *Chain) Merge(other *Chain) {
	c.links = make([]HandlerRef, len(other.links))
	for i, l := range other.links {
		c.links[i] = l.CloneData()
	}
}

// Links returns a copy of the raw chain, oldest first. For diagnostics.
func (c *Chain) Links() []HandlerRef {
	out := make([]HandlerRef, len(c.links))
	copy(out, c.links)
	return out
}

// Prefix returns an independent deep copy of the chain's oldest n links.
// The attribute delta codec rebuilds a travelled chain as "keep the first n
// links of the base snapshot, then push these" (pushes and pops both happen
// at the LIFO end, so the surviving prefix plus the new tail is the whole
// edit).
func (c *Chain) Prefix(n int) *Chain {
	if n > len(c.links) {
		n = len(c.links)
	}
	if n < 0 {
		n = 0
	}
	nc := &Chain{links: make([]HandlerRef, n)}
	for i := 0; i < n; i++ {
		nc.links[i] = c.links[i].CloneData()
	}
	return nc
}

// Equal reports whether two handler references denote the same attachment,
// including statically bound data.
func (h HandlerRef) Equal(o HandlerRef) bool {
	if h.Event != o.Event || h.Kind != o.Kind || h.Object != o.Object ||
		h.Entry != o.Entry || h.Proc != o.Proc || h.AttachedIn != o.AttachedIn ||
		len(h.Data) != len(o.Data) {
		return false
	}
	for k, v := range h.Data {
		if ov, ok := o.Data[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Registry records application-registered user event names (§3: "Naming an
// event involves registering the name with the operating system"). System
// event names are implicitly registered and cannot be re-registered.
// Registry is safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	names map[Name]ids.ThreadID // registrant
}

// Registration errors.
var (
	ErrAlreadyRegistered = errors.New("event: name already registered")
	ErrReservedName      = errors.New("event: name is a predefined system event")
	ErrNotRegistered     = errors.New("event: name not registered")
	ErrEmptyName         = errors.New("event: empty event name")
)

// NewRegistry returns an empty user-event registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[Name]ids.ThreadID)}
}

// Register records name as a user event registered by thread by.
func (r *Registry) Register(name Name, by ids.ThreadID) error {
	if name == "" {
		return ErrEmptyName
	}
	if IsSystem(name) {
		return fmt.Errorf("%w: %s", ErrReservedName, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		return fmt.Errorf("%w: %s", ErrAlreadyRegistered, name)
	}
	r.names[name] = by
	return nil
}

// Registered reports whether name may be raised: it is either a system
// event or a registered user event.
func (r *Registry) Registered(name Name) bool {
	if IsSystem(name) {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.names[name]
	return ok
}

// Registrant returns the thread that registered a user event name.
func (r *Registry) Registrant(name Name) (ids.ThreadID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.names[name]
	if !ok {
		return ids.NoThread, fmt.Errorf("%w: %s", ErrNotRegistered, name)
	}
	return t, nil
}

// Unregister removes a user event name.
func (r *Registry) Unregister(name Name) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.names[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotRegistered, name)
	}
	delete(r.names, name)
	return nil
}

// UserEvents returns the registered user event names, sorted.
func (r *Registry) UserEvents() []Name {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Name, 0, len(r.names))
	for n := range r.names {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DefaultAction is the operating-system-specified behaviour when an event
// reaches a target with no handler willing to consume it (§5.1: "The
// operating system specifies the default behavior").
type DefaultAction int

const (
	// ActIgnore discards the event and resumes the target.
	ActIgnore DefaultAction = iota + 1
	// ActTerminate terminates the target thread.
	ActTerminate
	// ActAbortInvocation aborts the invocation in progress (object ABORT).
	ActAbortInvocation
)

// String returns the action name.
func (a DefaultAction) String() string {
	switch a {
	case ActIgnore:
		return "ignore"
	case ActTerminate:
		return "terminate"
	case ActAbortInvocation:
		return "abort-invocation"
	default:
		return fmt.Sprintf("DefaultAction(%d)", int(a))
	}
}

// DefaultFor returns the system default action for an event delivered to a
// thread. Exceptions and termination events kill the thread; informational
// events are ignored.
func DefaultFor(n Name) DefaultAction {
	switch n {
	case Terminate, Quit, DivZero:
		return ActTerminate
	case Abort:
		return ActAbortInvocation
	default:
		return ActIgnore
	}
}
