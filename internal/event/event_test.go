package event

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestIsSystem(t *testing.T) {
	for _, n := range []Name{Terminate, Abort, Quit, Delete, Interrupt, Timer, VMFault, PageFault, DivZero, Alarm, ThreadDeath, NodeDown, NodeUp} {
		if !IsSystem(n) {
			t.Errorf("IsSystem(%s) = false, want true", n)
		}
	}
	for _, n := range []Name{"COMMIT", "", "terminate", "SYNCHRONIZE"} {
		if IsSystem(n) {
			t.Errorf("IsSystem(%q) = true, want false", n)
		}
	}
}

func TestSystemEventsSortedAndComplete(t *testing.T) {
	evs := SystemEvents()
	if len(evs) != 13 {
		t.Fatalf("SystemEvents() has %d entries, want 13", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1] >= evs[i] {
			t.Fatalf("SystemEvents() not sorted: %v", evs)
		}
	}
}

func TestTargetConstructorsAndValidate(t *testing.T) {
	tid := ids.NewThreadID(1, 1)
	gid := ids.NewGroupID(1, 1)
	oid := ids.NewObjectID(1, 1)
	cases := []struct {
		tgt     Target
		wantErr bool
	}{
		{ToThread(tid), false},
		{ToGroup(gid), false},
		{ToObject(oid), false},
		{ToThread(ids.NoThread), true},
		{ToGroup(ids.NoGroup), true},
		{ToObject(ids.NoObject), true},
		{Target{}, true},
	}
	for _, tc := range cases {
		err := tc.tgt.Validate()
		if (err != nil) != tc.wantErr {
			t.Errorf("Validate(%+v) err = %v, wantErr %v", tc.tgt, err, tc.wantErr)
		}
	}
}

func TestTargetString(t *testing.T) {
	if s := ToThread(ids.NewThreadID(2, 3)).String(); s != "t2.3" {
		t.Errorf("thread target String = %q", s)
	}
	if s := ToObject(ids.NewObjectID(1, 9)).String(); s != "o1.9" {
		t.Errorf("object target String = %q", s)
	}
	if s := (Target{}).String(); s != "target(invalid)" {
		t.Errorf("invalid target String = %q", s)
	}
}

func TestBlockClone(t *testing.T) {
	b := &Block{
		Name:   Interrupt,
		Raiser: ids.NewThreadID(1, 1),
		State:  &ThreadState{PC: 7},
		User:   map[string]any{"k": 1},
	}
	c := b.Clone()
	c.State.PC = 99
	c.User["k"] = 2
	if b.State.PC != 7 {
		t.Error("Clone shares ThreadState")
	}
	if b.User["k"] != 1 {
		t.Error("Clone shares User map")
	}
}

func TestBlockCloneNilFields(t *testing.T) {
	b := &Block{Name: Timer}
	c := b.Clone()
	if c.State != nil || c.User != nil {
		t.Errorf("Clone invented fields: %+v", c)
	}
}

func TestBlockWireSizeGrowsWithContent(t *testing.T) {
	small := (&Block{Name: Timer}).WireSize()
	big := (&Block{Name: Timer, State: &ThreadState{}, User: map[string]any{"abc": 1, "def": 2}}).WireSize()
	if big <= small {
		t.Errorf("WireSize: big %d <= small %d", big, small)
	}
}

func TestHandlerRefValidate(t *testing.T) {
	oid := ids.NewObjectID(1, 1)
	cases := []struct {
		name    string
		ref     HandlerRef
		wantErr bool
	}{
		{"entry ok", HandlerRef{Event: Interrupt, Kind: KindEntry, Object: oid, Entry: "h"}, false},
		{"buddy ok", HandlerRef{Event: VMFault, Kind: KindBuddy, Object: oid, Entry: "fault"}, false},
		{"proc ok", HandlerRef{Event: Timer, Kind: KindProc, Proc: "monitor_thread"}, false},
		{"no event", HandlerRef{Kind: KindProc, Proc: "p"}, true},
		{"entry no object", HandlerRef{Event: Interrupt, Kind: KindEntry, Entry: "h"}, true},
		{"entry no entry", HandlerRef{Event: Interrupt, Kind: KindEntry, Object: oid}, true},
		{"proc no code", HandlerRef{Event: Timer, Kind: KindProc}, true},
		{"bad kind", HandlerRef{Event: Timer, Kind: 0, Proc: "p"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.ref.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestChainLIFOOrder(t *testing.T) {
	oid := ids.NewObjectID(1, 1)
	var c Chain
	for i, entry := range []string{"first", "second", "third"} {
		c.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: entry})
		if c.Depth(Terminate) != i+1 {
			t.Fatalf("Depth = %d, want %d", c.Depth(Terminate), i+1)
		}
	}
	got := c.For(Terminate)
	want := []string{"third", "second", "first"}
	for i, h := range got {
		if h.Entry != want[i] {
			t.Fatalf("For() order = %v, want most-recent-first %v", got, want)
		}
	}
}

func TestChainForFiltersByEvent(t *testing.T) {
	oid := ids.NewObjectID(1, 1)
	var c Chain
	c.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "t1"})
	c.Push(HandlerRef{Event: Interrupt, Kind: KindEntry, Object: oid, Entry: "i1"})
	c.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "t2"})
	if got := c.For(Interrupt); len(got) != 1 || got[0].Entry != "i1" {
		t.Errorf("For(Interrupt) = %v", got)
	}
	if got := c.For(Terminate); len(got) != 2 {
		t.Errorf("For(Terminate) = %v, want 2 handlers", got)
	}
	if got := c.For(Timer); got != nil {
		t.Errorf("For(Timer) = %v, want nil", got)
	}
}

func TestChainRemove(t *testing.T) {
	oid := ids.NewObjectID(1, 1)
	var c Chain
	c.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "a"})
	c.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "b"})
	if !c.Remove(Terminate) {
		t.Fatal("Remove returned false")
	}
	got := c.For(Terminate)
	if len(got) != 1 || got[0].Entry != "a" {
		t.Fatalf("after Remove, For = %v, want [a] (LIFO removal)", got)
	}
	if c.Remove(Timer) {
		t.Fatal("Remove(Timer) = true on chain without Timer handler")
	}
}

func TestChainCloneIndependence(t *testing.T) {
	oid := ids.NewObjectID(1, 1)
	var c Chain
	c.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "a"})
	cl := c.Clone()
	cl.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "b"})
	if c.Len() != 1 {
		t.Fatalf("parent chain length changed to %d after child push", c.Len())
	}
	if cl.Len() != 2 {
		t.Fatalf("clone length = %d, want 2", cl.Len())
	}
}

func TestChainMerge(t *testing.T) {
	oid := ids.NewObjectID(1, 1)
	var parent, child Chain
	parent.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "a"})
	child = *parent.Clone()
	child.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "b"})
	parent.Merge(&child)
	if parent.Len() != 2 {
		t.Fatalf("merged parent length = %d, want 2", parent.Len())
	}
	// Mutating the child afterwards must not affect the parent.
	child.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "c"})
	if parent.Len() != 2 {
		t.Fatal("Merge aliased the child's slice")
	}
}

// Property: a chain behaves as a stack per event name — pushing k handlers
// then reading For returns them in reverse order of pushing.
func TestChainStackProperty(t *testing.T) {
	oid := ids.NewObjectID(1, 1)
	f := func(n uint8) bool {
		k := int(n%32) + 1
		var c Chain
		for i := 0; i < k; i++ {
			c.Push(HandlerRef{Event: Quit, Kind: KindEntry, Object: oid, Entry: entryName(i)})
		}
		got := c.For(Quit)
		if len(got) != k {
			return false
		}
		for i, h := range got {
			if h.Entry != entryName(k-1-i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func entryName(i int) string { return "e" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	tid := ids.NewThreadID(1, 1)
	if err := r.Register("COMMIT", tid); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !r.Registered("COMMIT") {
		t.Fatal("Registered(COMMIT) = false after Register")
	}
	if got, err := r.Registrant("COMMIT"); err != nil || got != tid {
		t.Fatalf("Registrant = %v, %v", got, err)
	}
	if err := r.Register("COMMIT", tid); !errors.Is(err, ErrAlreadyRegistered) {
		t.Fatalf("duplicate Register err = %v, want ErrAlreadyRegistered", err)
	}
}

func TestRegistryRejectsSystemNames(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Terminate, ids.NewThreadID(1, 1)); !errors.Is(err, ErrReservedName) {
		t.Fatalf("Register(TERMINATE) err = %v, want ErrReservedName", err)
	}
	if err := r.Register("", ids.NewThreadID(1, 1)); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("Register(\"\") err = %v, want ErrEmptyName", err)
	}
}

func TestRegistrySystemEventsAlwaysRegistered(t *testing.T) {
	r := NewRegistry()
	if !r.Registered(Terminate) {
		t.Fatal("system event not Registered")
	}
	if r.Registered("NOPE") {
		t.Fatal("unregistered user event reported Registered")
	}
}

func TestRegistryUnregister(t *testing.T) {
	r := NewRegistry()
	tid := ids.NewThreadID(1, 1)
	if err := r.Register("SYNC", tid); err != nil {
		t.Fatal(err)
	}
	if err := r.Unregister("SYNC"); err != nil {
		t.Fatal(err)
	}
	if r.Registered("SYNC") {
		t.Fatal("still registered after Unregister")
	}
	if err := r.Unregister("SYNC"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("double Unregister err = %v, want ErrNotRegistered", err)
	}
	if _, err := r.Registrant("SYNC"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("Registrant err = %v, want ErrNotRegistered", err)
	}
}

func TestRegistryUserEventsSorted(t *testing.T) {
	r := NewRegistry()
	tid := ids.NewThreadID(1, 1)
	for _, n := range []Name{"ZULU", "ALPHA", "MIKE"} {
		if err := r.Register(n, tid); err != nil {
			t.Fatal(err)
		}
	}
	got := r.UserEvents()
	want := []Name{"ALPHA", "MIKE", "ZULU"}
	if len(got) != len(want) {
		t.Fatalf("UserEvents = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UserEvents = %v, want %v", got, want)
		}
	}
}

func TestDefaultFor(t *testing.T) {
	cases := []struct {
		n    Name
		want DefaultAction
	}{
		{Terminate, ActTerminate},
		{Quit, ActTerminate},
		{DivZero, ActTerminate},
		{Abort, ActAbortInvocation},
		{Timer, ActIgnore},
		{Interrupt, ActIgnore},
		{"COMMIT", ActIgnore},
	}
	for _, tc := range cases {
		if got := DefaultFor(tc.n); got != tc.want {
			t.Errorf("DefaultFor(%s) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if TargetThread.String() != "thread" || TargetGroup.String() != "group" || TargetObject.String() != "object" {
		t.Error("TargetKind strings wrong")
	}
	if VerdictResume.String() != "resume" || VerdictTerminate.String() != "terminate" || VerdictPropagate.String() != "propagate" {
		t.Error("Verdict strings wrong")
	}
	if KindEntry.String() != "entry" || KindBuddy.String() != "buddy" || KindProc.String() != "proc" {
		t.Error("HandlerKind strings wrong")
	}
	if ActIgnore.String() != "ignore" || ActTerminate.String() != "terminate" || ActAbortInvocation.String() != "abort-invocation" {
		t.Error("DefaultAction strings wrong")
	}
}

func TestCloneData(t *testing.T) {
	ref := HandlerRef{
		Event: Terminate, Kind: KindProc, Proc: "p",
		Data: map[string]string{"lock": "a", "server": "7"},
	}
	c := ref.CloneData()
	c.Data["lock"] = "mutated"
	if ref.Data["lock"] != "a" {
		t.Fatal("CloneData aliased the map")
	}
	// Nil data passes through untouched.
	plain := HandlerRef{Event: Quit, Kind: KindProc, Proc: "q"}
	if got := plain.CloneData(); got.Data != nil {
		t.Fatalf("CloneData invented a map: %v", got.Data)
	}
}

func TestChainForCopiesData(t *testing.T) {
	var c Chain
	c.Push(HandlerRef{
		Event: Terminate, Kind: KindProc, Proc: "p",
		Data: map[string]string{"k": "v"},
	})
	got := c.For(Terminate)
	got[0].Data["k"] = "mutated"
	if c.For(Terminate)[0].Data["k"] != "v" {
		t.Fatal("For exposed the chain's Data map")
	}
}

func TestChainLinksOldestFirst(t *testing.T) {
	oid := ids.NewObjectID(1, 1)
	var c Chain
	c.Push(HandlerRef{Event: Terminate, Kind: KindEntry, Object: oid, Entry: "first"})
	c.Push(HandlerRef{Event: Quit, Kind: KindEntry, Object: oid, Entry: "second"})
	links := c.Links()
	if len(links) != 2 || links[0].Entry != "first" || links[1].Entry != "second" {
		t.Fatalf("Links = %v, want oldest first", links)
	}
	// Mutating the returned slice must not affect the chain.
	links[0].Entry = "hacked"
	if c.Links()[0].Entry != "first" {
		t.Fatal("Links exposed internal storage")
	}
}

func TestHandlerRefString(t *testing.T) {
	oid := ids.NewObjectID(2, 3)
	entry := HandlerRef{Event: Interrupt, Kind: KindEntry, Object: oid, Entry: "h"}
	if s := entry.String(); s != "INTERRUPT->entry:o2.3.h" {
		t.Errorf("entry String = %q", s)
	}
	proc := HandlerRef{Event: Timer, Kind: KindProc, Proc: "mon"}
	if s := proc.String(); s != "TIMER->proc:mon" {
		t.Errorf("proc String = %q", s)
	}
}
