package reliable

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// FuzzReliableReorder throws an arbitrary schedule of envelope duplication,
// reordering and dropping at a receiving endpoint and checks the dedup
// window's guarantees. The fuzz input is a script: each byte either has the
// sender allocate a fresh sequence number, delivers some queued copy (the
// reorder), re-queues a copy of an already-sent envelope (the duplicate),
// or drops a queued copy. Two endpoints audit every schedule:
//
//   - a wide-window receiver, where no legitimate envelope can age out, must
//     deliver every sequence that reached it at least once, exactly once;
//   - a 4-sequence-window receiver, where the schedule can legally evict,
//     must still never deliver twice, keep its cumulative frontier monotone
//     and at or below the maximum seen, keep the out-of-order set above the
//     frontier and within its pruning bound, and ack every data envelope
//     (duplicates included — the peer is retransmitting because an ack was
//     lost).
func FuzzReliableReorder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x40, 0x00, 0x40})
	// Send several, deliver in reverse, then replay them all.
	f.Add([]byte{0x00, 0x00, 0x00, 0x43, 0x42, 0x41, 0x40, 0x80, 0x81, 0x40, 0x40})
	// Interleave drops with duplicates.
	f.Add([]byte{0x00, 0x00, 0xc0, 0x00, 0x80, 0x40, 0x40, 0x40})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		for _, window := range []int{0 /* default: effectively unbounded here */, 4} {
			runReorderSchedule(t, script, window)
		}
	})
}

// runReorderSchedule replays one perturbation script against a receiver
// with the given dedup window (0 = package default).
func runReorderSchedule(t *testing.T, script []byte, window int) {
	t.Helper()
	const sender, self = ids.NodeID(1), ids.NodeID(2)

	var delivered []uint64
	var acks int
	recv := New(
		Config{Window: window, StandaloneAcks: true},
		self,
		func(m netsim.Message) error { acks++; return nil },
		func(_ ids.NodeID, _ string, payload any) {
			delivered = append(delivered, payload.(uint64))
		},
		nil,
	)
	defer recv.Close()

	handle := func(seq uint64) {
		recv.Handle(netsim.Message{
			From: sender, To: self, Kind: KindData,
			Payload: Envelope{Seq: seq, Kind: "fuzz", Payload: seq},
		})
	}

	// queue holds undelivered copies; sent remembers every allocated
	// sequence so duplicates can resurrect long-retired envelopes.
	var queue, sent []uint64
	var next uint64
	handled := 0
	arrived := map[uint64]bool{} // sequences that reached Handle at least once
	var lastCum uint64
	for _, op := range script {
		pick := int(op & 0x3f)
		switch op >> 6 {
		case 0: // sender allocates and queues a fresh envelope
			next++
			queue = append(queue, next)
			sent = append(sent, next)
		case 1: // deliver one queued copy, position picked by the script
			if len(queue) == 0 {
				continue
			}
			i := pick % len(queue)
			seq := queue[i]
			queue = append(queue[:i], queue[i+1:]...)
			handle(seq)
			handled++
			arrived[seq] = true
		case 2: // retransmit: queue a duplicate copy of any sent envelope
			if len(sent) == 0 {
				continue
			}
			queue = append(queue, sent[pick%len(sent)])
		case 3: // the fabric drops one queued copy
			if len(queue) == 0 {
				continue
			}
			i := pick % len(queue)
			queue = append(queue[:i], queue[i+1:]...)
		}
		checkPeerInvariants(t, recv, sender, next, &lastCum)
	}
	// Flush the queue so "sent and never dropped" implies "arrived".
	for _, seq := range queue {
		handle(seq)
		handled++
		arrived[seq] = true
	}
	checkPeerInvariants(t, recv, sender, next, &lastCum)

	// Exactly-once: no sequence is ever delivered twice, whatever the
	// window.
	seen := map[uint64]bool{}
	for _, seq := range delivered {
		if seen[seq] {
			t.Fatalf("window=%d: seq %d delivered twice (script=%x)", window, seq, script)
		}
		seen[seq] = true
	}
	// Completeness needs a window wide enough that nothing legitimate can
	// age out; the script allocates at most 256 sequences, well under the
	// 4096 default.
	if window == 0 {
		for seq := range arrived {
			if !seen[seq] {
				t.Fatalf("default window: seq %d arrived but was never delivered (script=%x)", seq, script)
			}
		}
	}
	// Every data envelope is acked, duplicates included: the peer only
	// retransmits because it believes the ack was lost.
	if acks != handled {
		t.Fatalf("window=%d: %d data envelopes but %d acks (script=%x)", window, handled, acks, script)
	}
}

// checkPeerInvariants audits the receiver's per-sender dedup state: the
// cumulative frontier is monotone and never exceeds the maximum sequence
// seen or the highest allocated, the out-of-order set sits strictly above
// the frontier, and lazy pruning keeps it within its documented bound.
func checkPeerInvariants(t *testing.T, e *Endpoint, from ids.NodeID, maxAllocated uint64, lastCum *uint64) {
	t.Helper()
	p := e.lookup(from)
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cum < *lastCum {
		t.Fatalf("frontier moved backward: %d after %d", p.cum, *lastCum)
	}
	*lastCum = p.cum
	if p.cum > p.max {
		t.Fatalf("frontier %d above max seen %d", p.cum, p.max)
	}
	if p.max > maxAllocated {
		t.Fatalf("max seen %d above highest allocated %d", p.max, maxAllocated)
	}
	for s := range p.seen {
		if s <= p.cum {
			t.Fatalf("out-of-order set holds %d at or below frontier %d", s, p.cum)
		}
	}
	if len(p.seen) > 2*e.cfg.Window {
		t.Fatalf("out-of-order set %d exceeds prune bound %d", len(p.seen), 2*e.cfg.Window)
	}
}
