// Package reliable adds an at-least-once delivery envelope on top of the
// netsim fabric: every payload is wrapped with a per-destination sequence
// number, the receiver acknowledges it, and the sender retransmits with
// capped exponential backoff until the ack arrives or the retry budget runs
// out. The receiver keeps a per-sender dedup window so retransmitted
// duplicates are dropped before they reach the kernel — at-least-once
// transport plus receiver dedup is what turns the kernel's event posts into
// exactly-once handler executions, the delivery guarantee framed by the
// reliable-broadcast literature cited in PAPERS.md.
//
// Acknowledgements are cumulative and, by default, piggybacked: every
// outbound envelope carries the highest contiguously-received sequence from
// its destination (retiring every pending send at or below it for free),
// and a standalone ack message is sent only when no reverse traffic shows
// up within the flush window. Config.StandaloneAcks restores the legacy
// one-ack-message-per-data-message protocol for measurement.
//
// A send that exhausts its retry budget goes to the endpoint's dead-letter
// callback instead of vanishing: the kernel uses it to fail the waiting
// RPC caller promptly, which is how an undeliverable post becomes a
// THREAD_DEATH / NODE_DOWN notice at the raiser instead of a hung
// raise_and_wait.
package reliable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Wire message kinds used by the envelope protocol.
const (
	KindData = "rel.data"
	KindAck  = "rel.ack"
)

// ErrUndeliverable is wrapped into dead-letter errors after the retry
// budget is exhausted.
var ErrUndeliverable = errors.New("reliable: undeliverable after retries")

// Defaults for Config's zero values. The retry base sits just above the
// experiment fabrics' round-trip time so the first retransmit fires as
// soon as a drop is plausible; ten attempts with doubling backoff make the
// loss of all copies vanishingly unlikely at any tested drop rate
// (10^-10 at 10% loss). The ack flush window sits strictly under the retry
// base: a delayed ack always beats the retransmit it would otherwise cause.
const (
	DefaultMaxAttempts = 10
	DefaultRetryBase   = 2 * time.Millisecond
	DefaultRetryMax    = 50 * time.Millisecond
	DefaultWindow      = 4096
	DefaultAckDelay    = time.Millisecond
)

// Config parameterizes an Endpoint.
type Config struct {
	// MaxAttempts bounds transmissions per send, first try included
	// (0 = DefaultMaxAttempts).
	MaxAttempts int
	// RetryBase is the first retransmit delay; it doubles per attempt
	// (0 = DefaultRetryBase).
	RetryBase time.Duration
	// RetryMax caps the backoff (0 = DefaultRetryMax).
	RetryMax time.Duration
	// Window is how many sequence numbers per sender the receiver
	// remembers for dedup (0 = DefaultWindow). A duplicate older than the
	// window is also dropped: sequence numbers are monotonic, so anything
	// at or below max-window was necessarily seen.
	Window int
	// StandaloneAcks restores the legacy ack policy: every data message is
	// acknowledged immediately with a dedicated ack message. Off, acks ride
	// on reverse-direction envelopes, with a standalone flush only when the
	// AckDelay window expires without reverse traffic.
	StandaloneAcks bool
	// AckDelay is the piggyback flush window (0 = DefaultAckDelay). Must
	// stay below RetryBase or every delayed ack arrives after the
	// retransmit it was meant to prevent.
	AckDelay time.Duration
	// Metrics receives send/retry/dedup/ack accounting (nil = none).
	Metrics *metrics.Registry
	// Clock drives retransmit backoff and delayed-ack flushes (nil = the
	// machine clock). A *vclock.Virtual runs the whole retry protocol in
	// virtual time.
	Clock vclock.Clock
	// Generation is this endpoint's incarnation epoch, stamped into every
	// outbound envelope. A node that restarts as a fresh OS process starts
	// its sequence space over at 1; without an epoch the peer's dedup
	// window would silently swallow the new process's first sends as
	// "duplicates" of the old incarnation's. Receivers reset a peer's
	// inbound dedup state when they see a higher generation, and drop
	// stragglers from older ones. Zero (the in-process simulation, where an
	// endpoint's lifetime spans simulated crashes) keeps the legacy
	// single-incarnation behavior.
	Generation uint64
	// OnAccept, when set, observes every freshly accepted data envelope:
	// it runs after the dedup window has admitted (from, gen, seq) and
	// advanced the cumulative frontier to cum, but before the envelope is
	// delivered or acknowledged. The durability layer logs the window
	// advance here — an ack must imply the acceptance is recoverable, or a
	// crash between ack and log loses the window entry and a retransmit
	// after restart becomes a duplicate delivery. Duplicates and stale-
	// generation stragglers never reach the hook.
	OnAccept func(from ids.NodeID, gen, seq, cum uint64)
	// AckGate, when set, runs immediately before a standalone ack message
	// departs (immediate, duplicate-triggered, or delayed-flush). It must
	// block until every acceptance OnAccept has observed so far is
	// durable. Paired with an asynchronous OnAccept this forms the
	// group-commit ack path: accepts append to the log without waiting,
	// handlers run concurrently with the flush, and the single commit
	// preceding the ack covers every accept in flight — instead of each
	// accept paying its own fsync before the next message on the link can
	// even be examined.
	AckGate func()
	// AckFrontier, when set, bounds the cumulative ack piggybacked on
	// outbound envelopes: given the peer and the current receive frontier
	// it returns the highest frontier that is already durable, WITHOUT
	// blocking. Envelope departures run on the fabric's per-link flush
	// path, so they must never wait for an fsync; they advertise the
	// durable floor instead, and the (gated, blocking) standalone ack or
	// a later envelope carries the rest once the commit lands.
	AckFrontier func(peer ids.NodeID, cum uint64) uint64
}

func (c *Config) fillDefaults() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryMax <= 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.AckDelay <= 0 {
		c.AckDelay = DefaultAckDelay
	}
}

// Envelope wraps one reliable payload on the wire. AckCum piggybacks the
// sender's receive state for the destination: the highest sequence such
// that everything at or below it has been received. It is refreshed on
// every (re)transmission, so even a retransmitted envelope carries current
// ack information.
type Envelope struct {
	Seq uint64
	// Gen is the sender's incarnation epoch (Config.Generation). Sequence
	// numbers are only comparable within one generation.
	Gen     uint64
	Kind    string // the inner protocol kind, e.g. "rpc.req"
	Payload any
	AckCum  uint64
	// Size is the wire footprint, computed once at Send time while the
	// sender still solely owns the payload. Retransmission must reuse it:
	// after the first delivery the receiver may be mutating the (shared,
	// in-process) payload, so re-walking it from the retry goroutine would
	// race.
	Size int
}

// WireSize charges the sequence header, the piggybacked ack field, and the
// inner payload. Sizing delegates to netsim.PayloadSize so nested structs
// that implement Sizer are charged accurately instead of a flat constant.
func (e Envelope) WireSize() int {
	if e.Size > 0 {
		return e.Size
	}
	return 24 + len(e.Kind) + netsim.PayloadSize(e.Payload)
}

// Ack acknowledges receipt of envelopes: Seq is the specific envelope that
// triggered the ack (retiring it selectively even across a gap) and Cum is
// the highest sequence number such that every sequence at or below it has
// been received from this peer (TCP-style cumulative ack). A sender retires
// every pending send at or below Cum.
type Ack struct {
	Seq uint64
	Cum uint64
}

// WireSize charges a minimal ack frame (two seq fields + header).
func (Ack) WireSize() int { return 20 }

// SendFunc transmits one raw fabric message (typically Fabric.Send).
type SendFunc func(netsim.Message) error

// DeliverFunc receives a deduplicated payload at the destination.
type DeliverFunc func(from ids.NodeID, kind string, payload any)

// DeadLetterFunc receives a payload that could not be delivered within the
// retry budget, with an error wrapping ErrUndeliverable.
type DeadLetterFunc func(to ids.NodeID, kind string, payload any, err error)

// Endpoint is one node's half of the reliable channel: it wraps outgoing
// sends and unwraps (acks, dedups) incoming envelopes.
type Endpoint struct {
	cfg  Config
	clk  vclock.Clock
	self ids.NodeID
	send SendFunc
	del  DeliverFunc
	dead DeadLetterFunc

	// Pre-resolved counter handles: the send/ack hot path does atomic adds
	// instead of name→counter map lookups per message. When Config.Metrics
	// is nil they point into a private throwaway registry, keeping the hot
	// path branch-free.
	ctrSend          *atomic.Int64
	ctrRetry         *atomic.Int64
	ctrDupDropped    *atomic.Int64
	ctrDeadLetter    *atomic.Int64
	ctrAckPiggyback  *atomic.Int64
	ctrAckStandalone *atomic.Int64

	// peersMu guards only the peer map; each peerState carries its own
	// lock, so traffic to different peers never contends — previously one
	// endpoint-global mutex serialized every send, ack, and dedup check
	// across all peers.
	peersMu sync.RWMutex
	peers   map[ids.NodeID]*peerState

	closeOnce sync.Once
	closed    chan struct{}
	// closeMu orders Send's retry-goroutine registration (wg.Add) against
	// Close: Close flips closed under the write lock, so a Send either
	// registers before the flip (and Close's Wait covers it) or observes
	// closed and bails. Without it a Send racing Close can Add while Wait
	// runs — the textbook WaitGroup misuse.
	closeMu sync.RWMutex
	wg      sync.WaitGroup
}

// peerState is everything the endpoint tracks about one peer: the outbound
// sequence space and unacked sends, the inbound dedup window with its
// cumulative frontier, and the delayed-ack debt. Its mutex guards all of
// it; the endpoint never holds two peers' locks at once.
type peerState struct {
	mu sync.Mutex

	// Outbound.
	seq     uint64                   // last sequence allocated toward this peer
	pending map[uint64]chan struct{} // seq → closed when acked

	// Inbound.
	gen      uint64          // peer's incarnation the window below belongs to
	cum      uint64          // highest contiguously-received sequence
	max      uint64          // highest sequence seen
	seen     map[uint64]bool // received sequences above cum
	lastRecv uint64          // most recently received sequence (dup or not)

	// Delayed-ack state (piggyback mode only).
	ackOwed  bool
	ackTimer *vclock.Timer
}

// New builds an endpoint for self. deliver receives each payload exactly
// once; dead (optional) receives payloads whose retry budget ran out.
func New(cfg Config, self ids.NodeID, send SendFunc, deliver DeliverFunc, dead DeadLetterFunc) *Endpoint {
	cfg.fillDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Endpoint{
		cfg:              cfg,
		clk:              vclock.Or(cfg.Clock),
		self:             self,
		send:             send,
		del:              deliver,
		dead:             dead,
		ctrSend:          reg.Counter(metrics.CtrRelSend),
		ctrRetry:         reg.Counter(metrics.CtrRelRetry),
		ctrDupDropped:    reg.Counter(metrics.CtrRelDupDropped),
		ctrDeadLetter:    reg.Counter(metrics.CtrRelDeadLetter),
		ctrAckPiggyback:  reg.Counter(metrics.CtrRelAckPiggyback),
		ctrAckStandalone: reg.Counter(metrics.CtrRelAckStandalone),
		peers:            make(map[ids.NodeID]*peerState),
		closed:           make(chan struct{}),
	}
}

// peer returns the peer state for n, creating it on first contact.
func (e *Endpoint) peer(n ids.NodeID) *peerState {
	e.peersMu.RLock()
	p := e.peers[n]
	e.peersMu.RUnlock()
	if p != nil {
		return p
	}
	e.peersMu.Lock()
	defer e.peersMu.Unlock()
	if p = e.peers[n]; p != nil {
		return p
	}
	p = &peerState{
		pending: make(map[uint64]chan struct{}),
		seen:    make(map[uint64]bool),
	}
	e.peers[n] = p
	return p
}

// lookup returns the peer state for n without creating it.
func (e *Endpoint) lookup(n ids.NodeID) *peerState {
	e.peersMu.RLock()
	defer e.peersMu.RUnlock()
	return e.peers[n]
}

// Close stops all retransmit loops and delayed-ack timers and waits for the
// retransmit loops to exit. In-flight sends are abandoned without
// dead-lettering (the system is going away).
func (e *Endpoint) Close() {
	e.closeOnce.Do(func() {
		e.closeMu.Lock()
		close(e.closed)
		e.closeMu.Unlock()
		e.peersMu.RLock()
		peers := make([]*peerState, 0, len(e.peers))
		for _, p := range e.peers {
			peers = append(peers, p)
		}
		e.peersMu.RUnlock()
		for _, p := range peers {
			p.mu.Lock()
			if p.ackTimer != nil {
				p.ackTimer.Stop()
			}
			p.mu.Unlock()
		}
	})
	e.wg.Wait()
}

// Send transmits payload to the peer under kind with at-least-once
// semantics. It returns immediately; retransmission runs in the
// background and failures surface through the dead-letter callback.
func (e *Endpoint) Send(to ids.NodeID, kind string, payload any) error {
	return e.SendClass(to, kind, payload, transport.ClassDefault)
}

// SendClass is Send with an explicit QoS class. The class is stamped on
// every transmission attempt, so it survives retransmit — a flooding
// tenant's retries stay in the tenant's own queue and cannot launder
// themselves into a higher class.
func (e *Endpoint) SendClass(to ids.NodeID, kind string, payload any, class transport.Class) error {
	e.closeMu.RLock()
	select {
	case <-e.closed:
		e.closeMu.RUnlock()
		return netsim.ErrClosed
	default:
	}
	e.wg.Add(1)
	e.closeMu.RUnlock()
	e.ctrSend.Add(1)
	ackCh := make(chan struct{})
	p := e.peer(to)
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.pending[seq] = ackCh
	p.mu.Unlock()
	// Size the payload here, before the first copy can reach the receiver:
	// retransmission attempts reuse this figure instead of re-walking a
	// payload the receiver may by then be mutating.
	size := 24 + len(kind) + netsim.PayloadSize(payload)
	go e.transmit(to, kind, payload, size, seq, class, ackCh)
	return nil
}

// transmit drives one send's retry loop: (re)send, wait backoff for the
// ack, double the backoff, repeat up to the attempt budget. Every attempt
// rebuilds the envelope, and every copy reads its piggybacked ack at
// departure (pendingEnv), so even a retransmitted or batch-delayed
// envelope carries the receive frontier current when it hits the wire.
func (e *Endpoint) transmit(to ids.NodeID, kind string, payload any, size int, seq uint64, class transport.Class, ackCh chan struct{}) {
	defer e.wg.Done()
	backoff := e.cfg.RetryBase
	for attempt := 0; attempt < e.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			e.ctrRetry.Add(1)
		}
		err := e.send(netsim.Message{
			From: e.self, To: to, Kind: KindData, Class: class,
			Payload: pendingEnv{e: e, to: to, env: Envelope{
				Seq: seq, Gen: e.cfg.Generation, Kind: kind, Payload: payload, Size: size,
			}},
		})
		if err != nil && !errors.Is(err, transport.ErrBackpressure) {
			// Structural failure (unknown node, fabric closed): retrying
			// cannot help.
			e.dropPending(to, seq)
			e.deadLetter(to, kind, payload, err)
			return
		}
		// A backpressure reject is retryable congestion: treat it like a
		// lost datagram — back off and try again, consuming the same
		// attempt budget, so a persistently-full peer still dead-letters.
		timer := e.clk.NewTimer(backoff)
		select {
		case <-ackCh:
			timer.Stop()
			return
		case <-e.closed:
			timer.Stop()
			e.dropPending(to, seq)
			return
		case <-timer.C:
		}
		if backoff *= 2; backoff > e.cfg.RetryMax {
			backoff = e.cfg.RetryMax
		}
	}
	e.dropPending(to, seq)
	e.deadLetter(to, kind, payload,
		fmt.Errorf("%w: %s to %v after %d attempts", ErrUndeliverable, kind, to, e.cfg.MaxAttempts))
}

// pendingEnv is an envelope on its way to the wire. It defers the
// piggybacked-ack read to the moment the message actually departs — the
// fabric finalizes it when a batch frame flushes (or immediately for a
// bare send) — so receipts that arrive while the envelope waits in a
// pending frame still ride out on it, and the settled ack debt disarms the
// standalone flushAck timer exactly when the frame that carries the
// cumulative ack ships.
type pendingEnv struct {
	e   *Endpoint
	to  ids.NodeID
	env Envelope
}

// WireSize charges the finalized envelope's footprint (the ack field is
// part of Envelope's fixed header either way).
func (p pendingEnv) WireSize() int { return p.env.WireSize() }

// FinalizeFlush implements batch.Finalizer: stamp the departure-time
// cumulative ack and hand the bare Envelope to the wire.
func (p pendingEnv) FinalizeFlush() any {
	p.env.AckCum = p.e.takePiggyback(p.to)
	return p.env
}

// takePiggyback returns the current cumulative receive frontier for peer
// to, and — in piggyback mode — settles any ack debt to that peer: the
// envelope about to carry this value is the ack, so the flush timer's
// standalone message is no longer needed.
func (e *Endpoint) takePiggyback(to ids.NodeID) uint64 {
	p := e.peer(to)
	p.mu.Lock()
	cum := p.cum
	p.mu.Unlock()
	// An acked envelope must be a durable envelope: clamp the advertised
	// frontier to what has already committed. This never blocks — the
	// caller is the fabric's departure path.
	ackCum := cum
	if e.cfg.AckFrontier != nil {
		if ackCum = e.cfg.AckFrontier(to, cum); ackCum > cum {
			ackCum = cum
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Settle the ack debt only when the envelope carries the full
	// frontier; a clamped (or meanwhile outdated) value leaves the timer
	// armed so the blocking standalone ack still reports the rest.
	if !e.cfg.StandaloneAcks && p.ackOwed && ackCum == p.cum {
		p.ackOwed = false
		if p.ackTimer != nil {
			p.ackTimer.Stop()
		}
		e.ctrAckPiggyback.Add(1)
	}
	return ackCum
}

func (e *Endpoint) deadLetter(to ids.NodeID, kind string, payload any, err error) {
	e.ctrDeadLetter.Add(1)
	if e.dead != nil {
		e.dead(to, kind, payload, err)
	}
}

func (e *Endpoint) dropPending(to ids.NodeID, seq uint64) {
	if p := e.lookup(to); p != nil {
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
	}
}

// retire releases every pending send to peer from covered by the ack:
// everything at or below the cumulative frontier, plus the selectively
// acknowledged sequence (which may sit above a gap).
func (e *Endpoint) retire(from ids.NodeID, seq, cum uint64) {
	p := e.lookup(from)
	if p == nil {
		return
	}
	var done []chan struct{}
	p.mu.Lock()
	if ch, ok := p.pending[seq]; ok {
		done = append(done, ch)
		delete(p.pending, seq)
	}
	for s, ch := range p.pending {
		if s <= cum {
			done = append(done, ch)
			delete(p.pending, s)
		}
	}
	p.mu.Unlock()
	for _, ch := range done {
		close(ch)
	}
}

// Handle processes one incoming fabric message, returning false if the
// message is not part of the reliable protocol (the caller dispatches it
// itself). Data envelopes are always acknowledged — even duplicates, since
// the peer is retransmitting precisely because an earlier ack was lost —
// and delivered only when the sequence number is fresh.
func (e *Endpoint) Handle(m netsim.Message) bool {
	switch m.Kind {
	case KindAck:
		ack, ok := m.Payload.(Ack)
		if !ok {
			return true
		}
		e.retire(m.From, ack.Seq, ack.Cum)
		return true

	case KindData:
		var env Envelope
		switch p := m.Payload.(type) {
		case Envelope:
			env = p
		case pendingEnv:
			// Endpoints wired back to back (tests) skip the fabric's
			// departure-time finalization; departure is delivery here.
			env = p.FinalizeFlush().(Envelope)
		default:
			return true
		}
		// The piggybacked frontier retires our own pending sends first.
		e.retire(m.From, 0, env.AckCum)
		isFresh, cum := e.fresh(m.From, env.Gen, env.Seq)
		if isFresh && e.cfg.OnAccept != nil {
			// Persist the window advance before the ack can leave: once the
			// peer sees the ack it stops retransmitting, so the acceptance
			// must already be durable.
			e.cfg.OnAccept(m.From, env.Gen, env.Seq, cum)
		}
		switch {
		case e.cfg.StandaloneAcks:
			e.sendAck(m.From, env.Seq)
		case isFresh:
			e.scheduleAck(m.From)
		default:
			// A duplicate means the peer is retransmitting because our ack
			// was lost or late — answer immediately instead of delaying
			// again, or a straggler can burn its whole retry budget waiting.
			e.sendAck(m.From, env.Seq)
		}
		if isFresh {
			e.del(m.From, env.Kind, env.Payload)
		} else {
			e.ctrDupDropped.Add(1)
		}
		return true
	}
	return false
}

// sendAck emits a standalone ack message for seq plus the current
// cumulative frontier.
func (e *Endpoint) sendAck(to ids.NodeID, seq uint64) {
	p := e.peer(to)
	p.mu.Lock()
	cum := p.cum
	p.mu.Unlock()
	if e.cfg.AckGate != nil {
		e.cfg.AckGate()
	}
	e.ctrAckStandalone.Add(1)
	// Acks are protocol plumbing: classed system so a flooded tenant queue
	// can never delay (or shed) the ack that would drain it.
	_ = e.send(netsim.Message{From: e.self, To: to, Kind: KindAck, Class: transport.ClassSystem, Payload: Ack{Seq: seq, Cum: cum}})
}

// scheduleAck records that peer to is owed an ack and arms the flush timer.
// If reverse-direction traffic departs within AckDelay the debt rides on it
// for free (takePiggyback); otherwise the timer flushes a standalone ack.
func (e *Endpoint) scheduleAck(to ids.NodeID) {
	p := e.peer(to)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ackOwed {
		return // timer already armed; the flush will cover this receipt too
	}
	p.ackOwed = true
	if p.ackTimer == nil {
		p.ackTimer = e.clk.AfterFunc(e.cfg.AckDelay, func() { e.flushAck(to) })
	} else {
		p.ackTimer.Reset(e.cfg.AckDelay)
	}
}

// flushAck is the delayed-ack timer body: if the debt to peer to is still
// outstanding (no envelope piggybacked it meanwhile), send a standalone
// ack for the most recently received sequence.
func (e *Endpoint) flushAck(to ids.NodeID) {
	select {
	case <-e.closed:
		return
	default:
	}
	p := e.peer(to)
	p.mu.Lock()
	if !p.ackOwed {
		p.mu.Unlock()
		return
	}
	p.ackOwed = false
	seq, cum := p.lastRecv, p.cum
	p.mu.Unlock()
	if e.cfg.AckGate != nil {
		e.cfg.AckGate()
	}
	e.ctrAckStandalone.Add(1)
	_ = e.send(netsim.Message{From: e.self, To: to, Kind: KindAck, Class: transport.ClassSystem, Payload: Ack{Seq: seq, Cum: cum}})
}

// fresh records seq in the sender's dedup window, advances the cumulative
// frontier through any now-contiguous sequences, and reports whether seq
// was seen for the first time, plus the post-advance cumulative frontier
// (for the OnAccept durability hook). A higher sender generation means the
// peer restarted as a new process and its sequence space began again: the
// window resets so the new incarnation's sends are not mistaken for the
// old one's duplicates. A lower generation is a straggler from a dead
// incarnation and is dropped.
func (e *Endpoint) fresh(from ids.NodeID, gen, seq uint64) (bool, uint64) {
	p := e.peer(from)
	p.mu.Lock()
	defer p.mu.Unlock()
	if gen < p.gen {
		return false, p.cum
	}
	if gen > p.gen {
		p.gen = gen
		p.cum, p.max = 0, 0
		p.seen = make(map[uint64]bool)
	}
	p.lastRecv = seq
	if seq <= p.cum {
		return false, p.cum // at or below the frontier: necessarily a duplicate
	}
	win := uint64(e.cfg.Window)
	if p.max > win && seq <= p.max-win {
		return false, p.cum // older than the window: necessarily a duplicate
	}
	if p.seen[seq] {
		return false, p.cum
	}
	p.seen[seq] = true
	if seq > p.max {
		p.max = seq
	}
	for p.seen[p.cum+1] {
		p.cum++
		delete(p.seen, p.cum)
	}
	// Prune lazily: amortized O(1) per delivery, and the map never grows
	// past twice the window.
	if len(p.seen) > 2*e.cfg.Window {
		for s := range p.seen {
			if p.max > win && s <= p.max-win {
				delete(p.seen, s)
			}
		}
	}
	return true, p.cum
}
