// Package reliable adds an at-least-once delivery envelope on top of the
// netsim fabric: every payload is wrapped with a sequence number, the
// receiver acknowledges it, and the sender retransmits with capped
// exponential backoff until the ack arrives or the retry budget runs out.
// The receiver keeps a per-sender dedup window so retransmitted duplicates
// are dropped before they reach the kernel — at-least-once transport plus
// receiver dedup is what turns the kernel's event posts into exactly-once
// handler executions, the delivery guarantee framed by the reliable-
// broadcast literature cited in PAPERS.md.
//
// A send that exhausts its retry budget goes to the endpoint's dead-letter
// callback instead of vanishing: the kernel uses it to fail the waiting
// RPC caller promptly, which is how an undeliverable post becomes a
// THREAD_DEATH / NODE_DOWN notice at the raiser instead of a hung
// raise_and_wait.
package reliable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Wire message kinds used by the envelope protocol.
const (
	KindData = "rel.data"
	KindAck  = "rel.ack"
)

// ErrUndeliverable is wrapped into dead-letter errors after the retry
// budget is exhausted.
var ErrUndeliverable = errors.New("reliable: undeliverable after retries")

// Defaults for Config's zero values. The retry base sits just above the
// experiment fabrics' round-trip time so the first retransmit fires as
// soon as a drop is plausible; ten attempts with doubling backoff make the
// loss of all copies vanishingly unlikely at any tested drop rate
// (10^-10 at 10% loss).
const (
	DefaultMaxAttempts = 10
	DefaultRetryBase   = 2 * time.Millisecond
	DefaultRetryMax    = 50 * time.Millisecond
	DefaultWindow      = 4096
)

// Config parameterizes an Endpoint.
type Config struct {
	// MaxAttempts bounds transmissions per send, first try included
	// (0 = DefaultMaxAttempts).
	MaxAttempts int
	// RetryBase is the first retransmit delay; it doubles per attempt
	// (0 = DefaultRetryBase).
	RetryBase time.Duration
	// RetryMax caps the backoff (0 = DefaultRetryMax).
	RetryMax time.Duration
	// Window is how many sequence numbers per sender the receiver
	// remembers for dedup (0 = DefaultWindow). A duplicate older than the
	// window is also dropped: sequence numbers are monotonic, so anything
	// at or below max-window was necessarily seen.
	Window int
	// Metrics receives send/retry/dedup accounting (nil = none).
	Metrics *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryMax <= 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
}

// Envelope wraps one reliable payload on the wire.
type Envelope struct {
	Seq     uint64
	Kind    string // the inner protocol kind, e.g. "rpc.req"
	Payload any
}

// WireSize charges the sequence header plus the inner payload.
func (e Envelope) WireSize() int { return 16 + len(e.Kind) + payloadSize(e.Payload) }

// Ack acknowledges receipt of one envelope.
type Ack struct {
	Seq uint64
}

// WireSize charges a minimal ack frame.
func (Ack) WireSize() int { return 12 }

func payloadSize(p any) int {
	switch v := p.(type) {
	case nil:
		return 0
	case netsim.Sizer:
		return v.WireSize()
	case []byte:
		return len(v)
	case string:
		return len(v)
	default:
		return 32
	}
}

// SendFunc transmits one raw fabric message (typically Fabric.Send).
type SendFunc func(netsim.Message) error

// DeliverFunc receives a deduplicated payload at the destination.
type DeliverFunc func(from ids.NodeID, kind string, payload any)

// DeadLetterFunc receives a payload that could not be delivered within the
// retry budget, with an error wrapping ErrUndeliverable.
type DeadLetterFunc func(to ids.NodeID, kind string, payload any, err error)

// Endpoint is one node's half of the reliable channel: it wraps outgoing
// sends and unwraps (acks, dedups) incoming envelopes.
type Endpoint struct {
	cfg  Config
	self ids.NodeID
	send SendFunc
	del  DeliverFunc
	dead DeadLetterFunc

	seq atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]chan struct{} // seq → closed on ack

	rmu     sync.Mutex
	windows map[ids.NodeID]*window

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// window is the per-sender dedup state.
type window struct {
	max  uint64          // highest sequence seen
	seen map[uint64]bool // sequences seen within (max-window, max]
}

// New builds an endpoint for self. deliver receives each payload exactly
// once; dead (optional) receives payloads whose retry budget ran out.
func New(cfg Config, self ids.NodeID, send SendFunc, deliver DeliverFunc, dead DeadLetterFunc) *Endpoint {
	cfg.fillDefaults()
	return &Endpoint{
		cfg:     cfg,
		self:    self,
		send:    send,
		del:     deliver,
		dead:    dead,
		pending: make(map[uint64]chan struct{}),
		windows: make(map[ids.NodeID]*window),
		closed:  make(chan struct{}),
	}
}

// Close stops all retransmit loops and waits for them to exit. In-flight
// sends are abandoned without dead-lettering (the system is going away).
func (e *Endpoint) Close() {
	e.closeOnce.Do(func() { close(e.closed) })
	e.wg.Wait()
}

// Send transmits payload to the peer under kind with at-least-once
// semantics. It returns immediately; retransmission runs in the
// background and failures surface through the dead-letter callback.
func (e *Endpoint) Send(to ids.NodeID, kind string, payload any) error {
	select {
	case <-e.closed:
		return netsim.ErrClosed
	default:
	}
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Inc(metrics.CtrRelSend)
	}
	seq := e.seq.Add(1)
	ackCh := make(chan struct{})
	e.pmu.Lock()
	e.pending[seq] = ackCh
	e.pmu.Unlock()
	e.wg.Add(1)
	go e.transmit(to, kind, payload, seq, ackCh)
	return nil
}

// transmit drives one send's retry loop: (re)send, wait backoff for the
// ack, double the backoff, repeat up to the attempt budget.
func (e *Endpoint) transmit(to ids.NodeID, kind string, payload any, seq uint64, ackCh chan struct{}) {
	defer e.wg.Done()
	backoff := e.cfg.RetryBase
	for attempt := 0; attempt < e.cfg.MaxAttempts; attempt++ {
		if attempt > 0 && e.cfg.Metrics != nil {
			e.cfg.Metrics.Inc(metrics.CtrRelRetry)
		}
		err := e.send(netsim.Message{
			From: e.self, To: to, Kind: KindData,
			Payload: Envelope{Seq: seq, Kind: kind, Payload: payload},
		})
		if err != nil {
			// Structural failure (unknown node, fabric closed): retrying
			// cannot help.
			e.dropPending(seq)
			e.deadLetter(to, kind, payload, err)
			return
		}
		timer := time.NewTimer(backoff)
		select {
		case <-ackCh:
			timer.Stop()
			return
		case <-e.closed:
			timer.Stop()
			e.dropPending(seq)
			return
		case <-timer.C:
		}
		if backoff *= 2; backoff > e.cfg.RetryMax {
			backoff = e.cfg.RetryMax
		}
	}
	e.dropPending(seq)
	e.deadLetter(to, kind, payload,
		fmt.Errorf("%w: %s to %v after %d attempts", ErrUndeliverable, kind, to, e.cfg.MaxAttempts))
}

func (e *Endpoint) deadLetter(to ids.NodeID, kind string, payload any, err error) {
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Inc(metrics.CtrRelDeadLetter)
	}
	if e.dead != nil {
		e.dead(to, kind, payload, err)
	}
}

func (e *Endpoint) dropPending(seq uint64) {
	e.pmu.Lock()
	delete(e.pending, seq)
	e.pmu.Unlock()
}

// Handle processes one incoming fabric message, returning false if the
// message is not part of the reliable protocol (the caller dispatches it
// itself). Data envelopes are always acked — even duplicates, since the
// peer is retransmitting precisely because an earlier ack was lost — and
// delivered only when the sequence number is fresh.
func (e *Endpoint) Handle(m netsim.Message) bool {
	switch m.Kind {
	case KindAck:
		ack, ok := m.Payload.(Ack)
		if !ok {
			return true
		}
		e.pmu.Lock()
		ch, pending := e.pending[ack.Seq]
		delete(e.pending, ack.Seq)
		e.pmu.Unlock()
		if pending {
			close(ch)
		}
		return true

	case KindData:
		env, ok := m.Payload.(Envelope)
		if !ok {
			return true
		}
		_ = e.send(netsim.Message{From: e.self, To: m.From, Kind: KindAck, Payload: Ack{Seq: env.Seq}})
		if e.fresh(m.From, env.Seq) {
			e.del(m.From, env.Kind, env.Payload)
		} else if e.cfg.Metrics != nil {
			e.cfg.Metrics.Inc(metrics.CtrRelDupDropped)
		}
		return true
	}
	return false
}

// fresh records seq in the sender's dedup window and reports whether it
// was seen for the first time.
func (e *Endpoint) fresh(from ids.NodeID, seq uint64) bool {
	e.rmu.Lock()
	defer e.rmu.Unlock()
	w := e.windows[from]
	if w == nil {
		w = &window{seen: make(map[uint64]bool)}
		e.windows[from] = w
	}
	win := uint64(e.cfg.Window)
	if w.max > win && seq <= w.max-win {
		return false // older than the window: necessarily a duplicate
	}
	if w.seen[seq] {
		return false
	}
	w.seen[seq] = true
	if seq > w.max {
		w.max = seq
	}
	// Prune lazily: amortized O(1) per delivery, and the map never grows
	// past twice the window.
	if len(w.seen) > 2*e.cfg.Window {
		for s := range w.seen {
			if w.max > win && s <= w.max-win {
				delete(w.seen, s)
			}
		}
	}
	return true
}
