package reliable

import (
	"sort"

	"repro/internal/ids"
)

// PeerWindow is the durable image of one peer's reliable-channel state: the
// inbound dedup window (generation, cumulative frontier, out-of-order
// receipts) plus the outbound sequence cursor. The durability layer writes
// these into snapshots and restores them before a recovered node announces
// itself, so a retransmit that crosses the crash still lands in a window
// that remembers it — exactly-once survives the restart instead of being
// reset via Envelope.Gen.
type PeerWindow struct {
	Peer ids.NodeID
	// Inbound dedup window for envelopes from Peer.
	Gen  uint64
	Cum  uint64
	Max  uint64
	Seen []uint64 // received sequences above Cum, sorted ascending
	// NextSeq is the outbound cursor: the last sequence allocated toward
	// Peer. Restoring it on a cold boot keeps the recovered incarnation's
	// sequence space monotonic even before the generation bump is visible
	// everywhere.
	NextSeq uint64
}

// SnapshotWindows captures every peer's window state, sorted by peer id so
// the snapshot image is deterministic. Safe to call concurrently with
// traffic; each peer is captured atomically under its own lock.
func (e *Endpoint) SnapshotWindows() []PeerWindow {
	e.peersMu.RLock()
	nodes := make([]ids.NodeID, 0, len(e.peers))
	for n := range e.peers {
		nodes = append(nodes, n)
	}
	e.peersMu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	ws := make([]PeerWindow, 0, len(nodes))
	for _, n := range nodes {
		p := e.lookup(n)
		if p == nil {
			continue
		}
		p.mu.Lock()
		w := PeerWindow{Peer: n, Gen: p.gen, Cum: p.cum, Max: p.max, NextSeq: p.seq}
		if len(p.seen) > 0 {
			w.Seen = make([]uint64, 0, len(p.seen))
			for s := range p.seen {
				w.Seen = append(w.Seen, s)
			}
			sort.Slice(w.Seen, func(i, j int) bool { return w.Seen[i] < w.Seen[j] })
		}
		p.mu.Unlock()
		ws = append(ws, w)
	}
	return ws
}

// RestoreWindows installs snapshot window images, creating peer state as
// needed. Inbound fields are overwritten when the image's generation is at
// least as new as the live one (at boot the live state is empty, so the
// snapshot always wins; a later live generation means the peer already
// restarted past the image and the stale window must not clobber it). The
// outbound cursor is only adopted when nothing has been sent yet — an
// in-process restart keeps its pending retransmits and live cursor.
func (e *Endpoint) RestoreWindows(ws []PeerWindow) {
	for _, w := range ws {
		p := e.peer(w.Peer)
		p.mu.Lock()
		if w.Gen >= p.gen {
			p.gen, p.cum, p.max = w.Gen, w.Cum, w.Max
			p.seen = make(map[uint64]bool, len(w.Seen))
			for _, s := range w.Seen {
				if s > w.Cum {
					p.seen[s] = true
				}
			}
			if p.max < p.cum {
				p.max = p.cum
			}
		}
		if p.seq == 0 && w.NextSeq > 0 {
			p.seq = w.NextSeq
		}
		p.mu.Unlock()
	}
}

// ClearInboundWindows zeroes every peer's inbound dedup state, leaving
// outbound cursors and pending sends alone. A durable restart calls it
// before re-installing the replayed windows, so recovery reflects only
// what the disk actually yields — state that survived in memory must not
// mask a replay hole.
func (e *Endpoint) ClearInboundWindows() {
	e.peersMu.RLock()
	peers := make([]*peerState, 0, len(e.peers))
	for _, p := range e.peers {
		peers = append(peers, p)
	}
	e.peersMu.RUnlock()
	for _, p := range peers {
		p.mu.Lock()
		p.gen, p.cum, p.max, p.lastRecv = 0, 0, 0, 0
		p.seen = make(map[uint64]bool)
		p.mu.Unlock()
	}
}

// RestoreAccept replays one logged acceptance (an OnAccept record from the
// WAL tail) into the inbound window, reconstructing exactly the state the
// original fresh() call left behind: generation bumps reset the window, the
// logged cumulative frontier fast-forwards it, and the sequence itself is
// marked seen (folding into the frontier when contiguous).
func (e *Endpoint) RestoreAccept(from ids.NodeID, gen, seq, cum uint64) {
	p := e.peer(from)
	p.mu.Lock()
	defer p.mu.Unlock()
	if gen < p.gen {
		return // straggler record from an incarnation the peer already left
	}
	if gen > p.gen {
		p.gen = gen
		p.cum, p.max = 0, 0
		p.seen = make(map[uint64]bool)
	}
	if cum > p.cum {
		p.cum = cum
		for s := range p.seen {
			if s <= cum {
				delete(p.seen, s)
			}
		}
	}
	if seq > p.cum && !p.seen[seq] {
		p.seen[seq] = true
		for p.seen[p.cum+1] {
			p.cum++
			delete(p.seen, p.cum)
		}
	}
	if seq > p.max {
		p.max = seq
	}
	if p.max < p.cum {
		p.max = p.cum
	}
}
