package reliable

import (
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// A data envelope that leaves inside a batch frame must settle the ack debt
// at flush time, not at Send time: FinalizeFlush stamps the departure-time
// cumulative ack, and that stamping both pays the debt and disarms the
// standalone flushAck timer — otherwise every piggybacked ack would be
// followed by a redundant standalone one.
func TestBatchFlushSettlesAckDebt(t *testing.T) {
	var (
		mu       sync.Mutex
		captured []netsim.Message
	)
	e := New(Config{AckDelay: 5 * time.Millisecond, RetryBase: time.Hour}, 1,
		func(m netsim.Message) error {
			mu.Lock()
			captured = append(captured, m)
			mu.Unlock()
			return nil
		},
		func(ids.NodeID, string, any) {},
		nil)
	defer e.Close()

	// Receive a data envelope from peer 2: we now owe an ack, and the
	// AckDelay flush timer is armed.
	e.Handle(netsim.Message{From: 2, To: 1, Kind: KindData,
		Payload: Envelope{Seq: 1, Kind: "ping", Payload: "x", Size: 8}})

	// Reverse-direction send. What hits the wire is the un-finalized
	// pending form: the cumulative ack is stamped when the batch frame
	// actually departs, not when the envelope is built.
	if err := e.Send(2, "pong", "y"); err != nil {
		t.Fatal(err)
	}
	// The first transmission happens on Send's goroutine.
	testutil.WaitFor(t, "outbound envelope captured", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(captured) == 1
	})
	mu.Lock()
	if captured[0].Kind != KindData {
		kind := captured[0].Kind
		mu.Unlock()
		t.Fatalf("captured kind %s, want %s", kind, KindData)
	}
	fin, ok := captured[0].Payload.(batch.Finalizer)
	mu.Unlock()
	if !ok {
		t.Fatalf("outbound payload %T does not implement batch.Finalizer: the ack cannot be stamped at flush time", captured[0].Payload)
	}

	// The batch layer flushes the frame: finalization stamps the current
	// receive frontier into the envelope.
	env, ok := fin.FinalizeFlush().(Envelope)
	if !ok {
		t.Fatalf("FinalizeFlush returned %T, want Envelope", fin.FinalizeFlush())
	}
	if env.AckCum != 1 {
		t.Fatalf("flushed envelope AckCum = %d, want 1 (the receive frontier at departure)", env.AckCum)
	}

	// The debt is settled and the timer disarmed: well past AckDelay, no
	// standalone ack may appear.
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for _, m := range captured {
		if m.Kind == KindAck {
			t.Fatalf("standalone %s sent after the batch flush already carried the ack", KindAck)
		}
	}
}
