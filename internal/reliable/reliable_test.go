package reliable

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// pendingCount reads how many sends to peer n are still awaiting an ack.
func pendingCount(e *Endpoint, n ids.NodeID) int {
	p := e.lookup(n)
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// lossyPair wires two endpoints back to back through a deterministic lossy
// channel: drop decides, per transmission, whether the message vanishes.
type lossyPair struct {
	mu   sync.Mutex
	a, b *Endpoint
	drop func(m netsim.Message) bool

	delivered []string
	dups      atomic.Int64
}

func newLossyPair(t *testing.T, cfg Config, drop func(netsim.Message) bool) *lossyPair {
	t.Helper()
	p := &lossyPair{drop: drop}
	route := func(m netsim.Message) error {
		if p.drop(m) {
			return nil // lost in the fabric
		}
		// Deliver asynchronously like a real fabric would.
		go func() {
			if m.To == 1 {
				p.a.Handle(m)
			} else {
				p.b.Handle(m)
			}
		}()
		return nil
	}
	deliverAt := func(from ids.NodeID, kind string, payload any) {
		p.mu.Lock()
		p.delivered = append(p.delivered, payload.(string))
		p.mu.Unlock()
	}
	p.a = New(cfg, 1, route, deliverAt, nil)
	p.b = New(cfg, 2, route, deliverAt, nil)
	t.Cleanup(func() { p.a.Close(); p.b.Close() })
	return p
}

func (p *lossyPair) deliveredCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.delivered)
}

// TestExactlyOnceUnderLoss: every other data transmission is dropped; all
// payloads still arrive, each exactly once.
func TestExactlyOnceUnderLoss(t *testing.T) {
	var n atomic.Int64
	p := newLossyPair(t, Config{RetryBase: time.Millisecond}, func(m netsim.Message) bool {
		return m.Kind == KindData && n.Add(1)%2 == 1
	})
	const total = 50
	for i := 0; i < total; i++ {
		if err := p.a.Send(2, "test", "payload"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.deliveredCount() < total {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", p.deliveredCount(), total)
		}
		time.Sleep(time.Millisecond)
	}
	// Give straggler retransmits a chance to produce (forbidden) extras.
	time.Sleep(20 * time.Millisecond)
	if got := p.deliveredCount(); got != total {
		t.Errorf("delivered %d payloads, want exactly %d", got, total)
	}
}

// TestLostAckTriggersRetransmitNotRedelivery: dropping acks forces
// retransmission, and the receiver's window eats the duplicates.
func TestLostAckTriggersRetransmitNotRedelivery(t *testing.T) {
	var acksDropped atomic.Int64
	p := newLossyPair(t, Config{RetryBase: time.Millisecond}, func(m netsim.Message) bool {
		if m.Kind == KindAck && acksDropped.Load() < 3 {
			acksDropped.Add(1)
			return true
		}
		return false
	})
	if err := p.a.Send(2, "test", "only"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for acksDropped.Load() < 3 || p.deliveredCount() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("acksDropped=%d delivered=%d", acksDropped.Load(), p.deliveredCount())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if got := p.deliveredCount(); got != 1 {
		t.Errorf("delivered %d copies, want exactly 1", got)
	}
}

// TestDeadLetterAfterBudget: a black-holed destination dead-letters the
// payload with ErrUndeliverable instead of retrying forever.
func TestDeadLetterAfterBudget(t *testing.T) {
	dead := make(chan error, 1)
	e := New(Config{MaxAttempts: 3, RetryBase: time.Millisecond},
		1,
		func(netsim.Message) error { return nil }, // black hole
		func(ids.NodeID, string, any) {},
		func(to ids.NodeID, kind string, payload any, err error) { dead <- err })
	defer e.Close()
	if err := e.Send(2, "test", "doomed"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-dead:
		if !errors.Is(err, ErrUndeliverable) {
			t.Errorf("dead-letter err = %v, want ErrUndeliverable", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dead-letter callback never ran")
	}
}

// TestStructuralSendErrorDeadLettersImmediately: a send the fabric rejects
// outright (unknown node) skips the retry loop.
func TestStructuralSendErrorDeadLettersImmediately(t *testing.T) {
	structural := errors.New("no such node")
	dead := make(chan error, 1)
	e := New(Config{MaxAttempts: 10, RetryBase: time.Hour}, // retries would take forever
		1,
		func(netsim.Message) error { return structural },
		func(ids.NodeID, string, any) {},
		func(to ids.NodeID, kind string, payload any, err error) { dead <- err })
	defer e.Close()
	if err := e.Send(2, "test", "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-dead:
		if !errors.Is(err, structural) {
			t.Errorf("dead-letter err = %v, want the structural send error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("structural failure did not dead-letter promptly")
	}
}

// TestWindowRejectsAncientDuplicates: a sequence older than the window is
// dropped even with no explicit seen entry.
func TestWindowRejectsAncientDuplicates(t *testing.T) {
	e := New(Config{Window: 8}, 2,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) {},
		nil)
	defer e.Close()
	if ok, _ := e.fresh(1, 0, 100); !ok {
		t.Fatal("first seq 100 not fresh")
	}
	if ok, _ := e.fresh(1, 0, 100); ok {
		t.Error("repeat seq 100 fresh")
	}
	if ok, _ := e.fresh(1, 0, 92); ok {
		t.Error("seq 92 (older than window below max 100) fresh")
	}
	if ok, _ := e.fresh(1, 0, 93); !ok {
		t.Error("seq 93 (inside window) not fresh")
	}
}

// TestPiggybackSuppressesStandaloneAcks: with prompt reverse traffic, acks
// ride on data envelopes and standalone ack messages (mostly) disappear.
func TestPiggybackSuppressesStandaloneAcks(t *testing.T) {
	var acks atomic.Int64
	p := newLossyPair(t, Config{AckDelay: 20 * time.Millisecond, RetryBase: 40 * time.Millisecond},
		func(m netsim.Message) bool {
			if m.Kind == KindAck {
				acks.Add(1)
			}
			return false
		})
	// Ping-pong: every receipt at b is answered by a send from b, well
	// within the 20ms flush window, so the ack debt always finds a ride.
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := p.a.Send(2, "ping", "x"); err != nil {
			t.Fatal(err)
		}
		if err := p.b.Send(1, "pong", "y"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.deliveredCount() < 2*rounds {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", p.deliveredCount(), 2*rounds)
		}
		time.Sleep(time.Millisecond)
	}
	// The tail receipt on each side legitimately flushes standalone; what
	// must not happen is one ack message per data message.
	if got := acks.Load(); got > rounds {
		t.Errorf("standalone acks = %d for %d deliveries, want piggybacking to suppress most", got, 2*rounds)
	}
}

// TestDelayedAckFlushes: with no reverse traffic at all, the flush timer
// emits a standalone cumulative ack and the sender's retry loop retires.
func TestDelayedAckFlushes(t *testing.T) {
	var acks atomic.Int64
	p := newLossyPair(t, Config{AckDelay: 2 * time.Millisecond, RetryBase: 100 * time.Millisecond},
		func(m netsim.Message) bool {
			if m.Kind == KindAck {
				acks.Add(1)
			}
			return false
		})
	for i := 0; i < 3; i++ {
		if err := p.a.Send(2, "test", "oneway"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.deliveredCount() < 3 || acks.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered=%d acks=%d", p.deliveredCount(), acks.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// The three receipts land within one 2ms flush window: one cumulative
	// ack should cover them all (the retry base is far away at 100ms, so a
	// single flush beats every retransmit).
	time.Sleep(20 * time.Millisecond)
	if got := acks.Load(); got > 2 {
		t.Errorf("standalone acks = %d for 3 receipts, want cumulative flush to batch them", got)
	}
}

// TestCumulativeAckRetiresBacklog: an ack's Cum field retires every pending
// send at or below it, not just the triggering sequence.
func TestCumulativeAckRetiresBacklog(t *testing.T) {
	e := New(Config{RetryBase: time.Hour}, // no retransmits: retirement must come from the ack
		1,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) {},
		func(to ids.NodeID, kind string, payload any, err error) {
			t.Errorf("dead-lettered %v", err)
		})
	defer e.Close()
	for i := 0; i < 5; i++ {
		if err := e.Send(2, "test", i); err != nil {
			t.Fatal(err)
		}
	}
	pendingBefore := pendingCount(e, 2)
	if pendingBefore != 5 {
		t.Fatalf("pending = %d, want 5", pendingBefore)
	}
	e.Handle(netsim.Message{From: 2, To: 1, Kind: KindAck, Payload: Ack{Seq: 5, Cum: 5}})
	deadline := time.Now().Add(2 * time.Second)
	for {
		left := pendingCount(e, 2)
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d after cumulative ack, want 0", left)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEnvelopePiggybackRetires: the AckCum field on a reverse-direction
// data envelope retires pending sends without any ack message.
func TestEnvelopePiggybackRetires(t *testing.T) {
	e := New(Config{RetryBase: time.Hour}, 1,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) {}, nil)
	defer e.Close()
	for i := 0; i < 3; i++ {
		if err := e.Send(2, "test", i); err != nil {
			t.Fatal(err)
		}
	}
	e.Handle(netsim.Message{From: 2, To: 1, Kind: KindData,
		Payload: Envelope{Seq: 1, Kind: "reverse", Payload: "x", AckCum: 3}})
	deadline := time.Now().Add(2 * time.Second)
	for {
		left := pendingCount(e, 2)
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d after piggybacked cum, want 0", left)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStandaloneAcksLegacyMode: the legacy flag restores one immediate ack
// message per data message.
func TestStandaloneAcksLegacyMode(t *testing.T) {
	var acks atomic.Int64
	p := newLossyPair(t, Config{StandaloneAcks: true}, func(m netsim.Message) bool {
		if m.Kind == KindAck {
			acks.Add(1)
		}
		return false
	})
	const total = 10
	for i := 0; i < total; i++ {
		if err := p.a.Send(2, "test", "x"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.deliveredCount() < total || acks.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("delivered=%d acks=%d, want %d each", p.deliveredCount(), acks.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNonProtocolKindsPassThrough: Handle leaves foreign messages alone.
func TestNonProtocolKindsPassThrough(t *testing.T) {
	e := New(Config{}, 1,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) {}, nil)
	defer e.Close()
	if e.Handle(netsim.Message{Kind: "rpc.req"}) {
		t.Error("Handle claimed a non-protocol message")
	}
}
