package reliable

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// TestGenerationResetsDedupWindow models a peer that restarts as a fresh OS
// process: its sequence space starts over at 1 under a higher generation.
// The receiver must deliver the new incarnation's sends (not swallow them
// as duplicates of the old one) and drop stragglers from the dead one.
func TestGenerationResetsDedupWindow(t *testing.T) {
	var got []string
	e := New(Config{}, 2,
		func(netsim.Message) error { return nil }, // acks discarded
		func(from ids.NodeID, kind string, payload any) {
			got = append(got, payload.(string))
		}, nil)
	defer e.Close()

	recv := func(gen, seq uint64, tag string) {
		e.Handle(netsim.Message{From: 1, To: 2, Kind: KindData,
			Payload: Envelope{Seq: seq, Gen: gen, Kind: "k", Payload: tag}})
	}

	recv(1, 1, "g1s1")
	recv(1, 2, "g1s2")
	recv(1, 2, "g1s2-dup") // retransmit: dropped
	recv(2, 1, "g2s1")     // restart: same seq, new generation — must deliver
	recv(1, 3, "g1s3")     // straggler from the dead incarnation: dropped
	recv(2, 1, "g2s1-dup") // retransmit within the new incarnation: dropped
	recv(2, 2, "g2s2")

	want := []string{"g1s1", "g1s2", "g2s1", "g2s2"}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// TestZeroGenerationLegacy pins that generation-less traffic (the in-process
// simulation) behaves exactly as before: one incarnation, plain windowing.
func TestZeroGenerationLegacy(t *testing.T) {
	var got int
	e := New(Config{}, 2,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) { got++ }, nil)
	defer e.Close()
	for _, seq := range []uint64{1, 2, 2, 1, 3} {
		e.Handle(netsim.Message{From: 1, To: 2, Kind: KindData,
			Payload: Envelope{Seq: seq, Kind: "k", Payload: "x"}})
	}
	if got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
}
