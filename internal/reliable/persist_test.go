package reliable

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// acceptRec is one OnAccept callback, as the durability layer would log it.
type acceptRec struct {
	from          ids.NodeID
	gen, seq, cum uint64
}

// TestOnAcceptFiresOncePerFreshEnvelope: duplicates re-deliver acks but
// never re-fire the durability hook, and each accept reports the
// post-advance cumulative frontier.
func TestOnAcceptFiresOncePerFreshEnvelope(t *testing.T) {
	var mu sync.Mutex
	var accepts []acceptRec
	e := New(Config{
		OnAccept: func(from ids.NodeID, gen, seq, cum uint64) {
			mu.Lock()
			accepts = append(accepts, acceptRec{from, gen, seq, cum})
			mu.Unlock()
		},
	}, 2,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) {},
		nil)
	defer e.Close()

	deliver := func(seq uint64) {
		e.Handle(netsim.Message{From: 1, To: 2, Kind: KindData,
			Payload: Envelope{Seq: seq, Gen: 7, Kind: "k", Payload: "p"}})
	}
	deliver(1)
	deliver(3) // gap: cum stays 1
	deliver(3) // duplicate: no hook
	deliver(2) // fills the gap: cum jumps to 3
	deliver(1) // ancient duplicate: no hook

	mu.Lock()
	defer mu.Unlock()
	want := []acceptRec{
		{1, 7, 1, 1},
		{1, 7, 3, 1},
		{1, 7, 2, 3},
	}
	if !reflect.DeepEqual(accepts, want) {
		t.Fatalf("accepts = %+v, want %+v", accepts, want)
	}
}

// TestSnapshotRestoreWindowsRoundTrip: a window with a gap snapshots and
// restores into a fresh endpoint that then judges freshness identically —
// retransmits of everything already seen are duplicates, the gap is not.
func TestSnapshotRestoreWindowsRoundTrip(t *testing.T) {
	mk := func() *Endpoint {
		return New(Config{}, 2,
			func(netsim.Message) error { return nil },
			func(ids.NodeID, string, any) {},
			nil)
	}
	a := mk()
	defer a.Close()
	for _, seq := range []uint64{1, 2, 3, 5, 7} {
		a.fresh(1, 4, seq)
	}
	a.fresh(9, 0, 1) // second peer, legacy generation

	ws := a.SnapshotWindows()
	if len(ws) != 2 || ws[0].Peer != 1 || ws[1].Peer != 9 {
		t.Fatalf("SnapshotWindows = %+v", ws)
	}
	if w := ws[0]; w.Gen != 4 || w.Cum != 3 || w.Max != 7 || !reflect.DeepEqual(w.Seen, []uint64{5, 7}) {
		t.Fatalf("peer 1 window = %+v", w)
	}

	b := mk()
	defer b.Close()
	b.RestoreWindows(ws)
	for _, seq := range []uint64{1, 2, 3, 5, 7} {
		if ok, _ := b.fresh(1, 4, seq); ok {
			t.Errorf("restored window accepted replayed seq %d", seq)
		}
	}
	if ok, cum := b.fresh(1, 4, 4); !ok || cum != 5 {
		t.Errorf("gap seq 4: fresh=%v cum=%d, want true, 5 (4 folds 5 into the frontier)", ok, cum)
	}
	if ok, _ := b.fresh(9, 0, 1); ok {
		t.Error("restored second-peer window accepted replayed seq 1")
	}
	// Outbound cursor: a restored cold endpoint resumes the sequence space.
	a2 := mk()
	defer a2.Close()
	if err := a2.Send(9, "k", "p"); err != nil { // live cursor now 1
		t.Fatal(err)
	}
	a2.RestoreWindows([]PeerWindow{{Peer: 9, NextSeq: 40}, {Peer: 8, NextSeq: 17}})
	if got := a2.peer(9).seq; got != 1 {
		t.Errorf("live outbound cursor overwritten: %d", got)
	}
	if got := a2.peer(8).seq; got != 17 {
		t.Errorf("cold outbound cursor not restored: %d", got)
	}
}

// TestRestoreAcceptReplaysTail: replaying logged accepts one at a time
// rebuilds the same window as the original live acceptance sequence.
func TestRestoreAcceptReplaysTail(t *testing.T) {
	live := New(Config{}, 2,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) {},
		nil)
	defer live.Close()
	var tail []acceptRec
	seqs := []uint64{1, 2, 5, 3, 9}
	for _, s := range seqs {
		if ok, cum := live.fresh(1, 3, s); ok {
			tail = append(tail, acceptRec{1, 3, s, cum})
		}
	}

	rec := New(Config{}, 2,
		func(netsim.Message) error { return nil },
		func(ids.NodeID, string, any) {},
		nil)
	defer rec.Close()
	for _, r := range tail {
		rec.RestoreAccept(r.from, r.gen, r.seq, r.cum)
	}
	lw, rw := live.SnapshotWindows(), rec.SnapshotWindows()
	// The live side also tracks the outbound cursor; zero it for comparison.
	for i := range lw {
		lw[i].NextSeq = 0
	}
	if !reflect.DeepEqual(lw, rw) {
		t.Fatalf("replayed window %+v != live window %+v", rw, lw)
	}
	// A generation bump in the tail resets the window.
	rec.RestoreAccept(1, 5, 1, 1)
	if ok, _ := rec.fresh(1, 5, 2); !ok {
		t.Error("post-bump window rejected a fresh seq")
	}
	if ok, _ := rec.fresh(1, 3, 9); ok {
		t.Error("stale-generation straggler accepted after bump")
	}
}

// TestOnAcceptOrdersBeforeAck: the hook must complete before the ack for
// the accepted envelope can depart, so an acked window entry is always
// durable. The hook blocks; no ack may leave until it returns.
func TestOnAcceptOrdersBeforeAck(t *testing.T) {
	gate := make(chan struct{})
	hookEntered := make(chan struct{}, 1)
	var mu sync.Mutex
	var acked int
	e := New(Config{
		StandaloneAcks: true,
		OnAccept: func(ids.NodeID, uint64, uint64, uint64) {
			hookEntered <- struct{}{}
			<-gate
		},
	}, 2,
		func(m netsim.Message) error {
			if m.Kind == KindAck {
				mu.Lock()
				acked++
				mu.Unlock()
			}
			return nil
		},
		func(ids.NodeID, string, any) {},
		nil)
	defer e.Close()

	done := make(chan struct{})
	go func() {
		e.Handle(netsim.Message{From: 1, To: 2, Kind: KindData,
			Payload: Envelope{Seq: 1, Gen: 1, Kind: "k", Payload: "p"}})
		close(done)
	}()
	<-hookEntered
	mu.Lock()
	n := acked
	mu.Unlock()
	if n != 0 {
		t.Fatal("ack departed before the durability hook returned")
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Handle did not finish")
	}
	mu.Lock()
	defer mu.Unlock()
	if acked != 1 {
		t.Fatalf("acked = %d after hook release, want 1", acked)
	}
}
