// Package testutil holds the synchronization helpers tests use to wait
// for asynchronous kernel activity. The pattern they replace — sleep a
// guessed duration, then assert — is both slow (the guess must cover the
// slowest machine) and flaky (a loaded machine outruns any guess). These
// helpers poll a condition instead: they return the moment it holds, and
// their generous failure budget costs time only when the condition never
// comes true, which is a genuine failure anyway.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// Budget is the default WaitFor failure budget. It is deliberately far
// larger than any condition should take: a passing test never waits it
// out, and a failing test is allowed to be slow about saying so. The
// size absorbs CI machines running the whole suite in parallel.
const Budget = 30 * time.Second

// Interval is the default polling period. Conditions are expected to be
// cheap reads (an atomic load, a map lookup under a mutex), so polling
// tightly trades negligible CPU for tighter test latency.
const Interval = time.Millisecond

// Eventually polls cond every interval until it returns true or timeout
// elapses, and reports whether the condition became true. The first poll
// is immediate, so an already-true condition returns without sleeping.
func Eventually(timeout, interval time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		// A scheduler yield before the sleep lets a goroutine that was
		// just handed the last piece of work finish it, often making the
		// very next poll succeed.
		runtime.Gosched()
		time.Sleep(interval)
	}
}

// WaitFor polls cond until it holds, failing t with "timed out waiting
// for <what>" if the default Budget expires first.
func WaitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	WaitForTimeout(t, Budget, what, cond)
}

// WaitForTimeout is WaitFor with an explicit failure budget, for tests
// that assert a condition must hold quickly (or use a custom clock).
func WaitForTimeout(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	if !Eventually(timeout, Interval, cond) {
		t.Fatalf("timed out waiting for %s", what)
	}
}
