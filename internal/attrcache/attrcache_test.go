package attrcache

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/thread"
)

func TestHitMissAndLRUEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(2, reg)
	k1 := Key{Thread: 1, Version: 10}
	k2 := Key{Thread: 2, Version: 20}
	k3 := Key{Thread: 3, Version: 30}

	c.Put(k1, thread.NewAttributes(1))
	c.Put(k2, thread.NewAttributes(2))
	if c.Get(k1) == nil {
		t.Fatal("k1 missing after put")
	}
	// k2 is now LRU; k3 evicts it.
	c.Put(k3, thread.NewAttributes(3))
	if c.Get(k2) != nil {
		t.Fatal("k2 survived eviction despite being LRU")
	}
	if c.Get(k1) == nil || c.Get(k3) == nil {
		t.Fatal("recently used entries evicted")
	}
	if got := reg.Get(metrics.CtrAttrCacheEvict); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := reg.Get(metrics.CtrAttrCacheMiss); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

func TestDropThreadRemovesAllVersions(t *testing.T) {
	c := New(8, nil)
	c.Put(Key{Thread: 5, Version: 1}, thread.NewAttributes(5))
	c.Put(Key{Thread: 5, Version: 2}, thread.NewAttributes(5))
	c.Put(Key{Thread: 6, Version: 1}, thread.NewAttributes(6))
	c.DropThread(5)
	if c.Len() != 1 {
		t.Fatalf("len = %d after DropThread, want 1", c.Len())
	}
	if c.Get(Key{Thread: 6, Version: 1}) == nil {
		t.Fatal("unrelated thread's entry dropped")
	}
}

func TestClear(t *testing.T) {
	c := New(4, nil)
	c.Put(Key{Thread: 1, Version: 1}, thread.NewAttributes(1))
	c.Clear()
	if c.Len() != 0 || c.Get(Key{Thread: 1, Version: 1}) != nil {
		t.Fatal("Clear left entries behind")
	}
}
