// Package attrcache holds per-node snapshots of thread attributes, keyed by
// (thread, version). It is the receiver half of the delta attribute
// protocol: a kernel that remembers the snapshot it last exchanged with a
// peer can accept a Delta instead of a full Clone on the next hop. Entries
// are immutable once stored — readers clone before mutating — and the cache
// is a plain LRU: eviction only costs a one-time full resync round trip,
// never correctness.
package attrcache

import (
	"container/list"
	"sync"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/thread"
)

// DefaultSize bounds the cache when the configuration leaves it zero. Each
// entry is one thread-attribute snapshot (a few hundred bytes for typical
// chains), so 256 comfortably covers every concurrently-travelling thread
// in the experiment suite while staying irrelevant to memory footprint.
const DefaultSize = 256

// Key identifies one immutable snapshot of one thread's attributes.
type Key struct {
	Thread  ids.ThreadID
	Version uint64
}

type entry struct {
	key   Key
	attrs *thread.Attributes
}

// Cache is a mutex-guarded LRU of attribute snapshots.
type Cache struct {
	mu    sync.Mutex
	size  int
	order *list.List // front = most recently used
	byKey map[Key]*list.Element
	reg   *metrics.Registry
}

// New builds a cache bounded to size entries (DefaultSize if size <= 0).
func New(size int, reg *metrics.Registry) *Cache {
	if size <= 0 {
		size = DefaultSize
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Cache{
		size:  size,
		order: list.New(),
		byKey: make(map[Key]*list.Element),
		reg:   reg,
	}
}

// Get returns the snapshot stored under key, or nil. The returned pointer
// is the cached value itself: callers must treat it as immutable and Clone
// before mutating.
func (c *Cache) Get(key Key) *thread.Attributes {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.reg.Inc(metrics.CtrAttrCacheMiss)
		return nil
	}
	c.order.MoveToFront(el)
	c.reg.Inc(metrics.CtrAttrCacheHit)
	return el.Value.(*entry).attrs
}

// Put stores attrs under key, evicting the least recently used entry if the
// cache is full. The caller hands over ownership: attrs must not be mutated
// after Put.
func (c *Cache) Put(key Key, attrs *thread.Attributes) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*entry).attrs = attrs
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&entry{key: key, attrs: attrs})
	for c.order.Len() > c.size {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry).key)
		c.reg.Inc(metrics.CtrAttrCacheEvict)
	}
}

// DropThread removes every snapshot belonging to tid — called when a thread
// terminates so dead threads do not squat on cache slots.
func (c *Cache) DropThread(tid ids.ThreadID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); e.key.Thread == tid {
			c.order.Remove(el)
			delete(c.byKey, e.key)
		}
		el = next
	}
}

// Clear empties the cache — used on node restart, where forgetting
// snapshots is exactly right: peers will resync on first contact.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = make(map[Key]*list.Element)
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
