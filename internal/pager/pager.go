// Package pager implements the user-level virtual memory managers of §6.4:
// applications tag DSM segments as user-pageable, attach a VM_FAULT buddy
// handler naming a pager server object, and the server supplies pages when
// threads fault. When two threads fault on the same page concurrently, the
// server hands each node a copy and later merges the copies — the paper's
// mechanism for bypassing the kernel's strict sequential consistency.
package pager

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

// Entry names of the pager server object.
const (
	EntryFault   = "fault"    // handler method: VM_FAULT buddy target
	EntryWrite   = "write"    // write the master copy of a page
	EntryRead    = "read"     // read the master copy of a page
	EntryMerge   = "merge"    // merge node copies back into the master
	EntryCopies  = "copies"   // report how many nodes hold a copy
	EntryFaults  = "faults"   // report how many faults were serviced
	HandlerFault = EntryFault // the buddy handler method name
)

// MergeFunc combines divergent page copies into one. The default keeps the
// byte-wise maximum, which suffices for the monotonic workloads of the
// examples; applications install their own merge policy per server.
type MergeFunc func(master []byte, copies [][]byte) []byte

// DefaultMerge is the byte-wise maximum merge policy.
func DefaultMerge(master []byte, copies [][]byte) []byte {
	out := make([]byte, len(master))
	copy(out, master)
	for _, c := range copies {
		for i := 0; i < len(out) && i < len(c); i++ {
			if c[i] > out[i] {
				out[i] = c[i]
			}
		}
	}
	return out
}

// ServerSpec returns a pager server object managing pages of pageSize
// bytes with the given merge policy (nil = DefaultMerge).
func ServerSpec(label string, pageSize int, merge MergeFunc) object.Spec {
	if merge == nil {
		merge = DefaultMerge
	}
	s := &server{pageSize: pageSize, merge: merge}
	return object.Spec{
		Name: "pager:" + label,
		HandlerMethods: map[string]object.Handler{
			HandlerFault: s.onFault,
		},
		Entries: map[string]object.Entry{
			EntryWrite:  s.writeMaster,
			EntryRead:   s.readMaster,
			EntryMerge:  s.mergeEntry,
			EntryCopies: s.copies,
			EntryFaults: s.faults,
		},
	}
}

// server carries the pager's configuration; its mutable state lives in the
// object's volatile store so it stays with the object.
type server struct {
	pageSize int
	merge    MergeFunc
}

func pageKey(seg ids.SegmentID, page int) string {
	return "page:" + seg.String() + ":" + strconv.Itoa(page)
}

func copysetKey(seg ids.SegmentID, page int) string {
	return "copyset:" + seg.String() + ":" + strconv.Itoa(page)
}

// onFault is the buddy handler for VM_FAULT: it installs the master copy
// of the faulted page at the faulting node and records the copy.
func (s *server) onFault(ctx object.Ctx, _ event.HandlerRef, eb *event.Block) event.Verdict {
	seg, ok1 := eb.User["seg"].(ids.SegmentID)
	page, ok2 := eb.User["page"].(int)
	node, ok3 := eb.User["node"].(ids.NodeID)
	if !(ok1 && ok2 && ok3) {
		return event.VerdictPropagate
	}
	data := s.masterPage(ctx, seg, page)
	if err := ctx.InstallPage(node, seg, page, data); err != nil {
		return event.VerdictPropagate
	}
	s.addCopy(ctx, seg, page, node)
	n, _ := ctx.Get("faults")
	cnt, _ := n.(int)
	ctx.Set("faults", cnt+1)
	return event.VerdictResume
}

// masterPage reads (or zero-creates) the master copy.
func (s *server) masterPage(ctx object.Ctx, seg ids.SegmentID, page int) []byte {
	if v, ok := ctx.Get(pageKey(seg, page)); ok {
		if b, ok := v.([]byte); ok {
			out := make([]byte, len(b))
			copy(out, b)
			return out
		}
	}
	return make([]byte, s.pageSize)
}

func (s *server) addCopy(ctx object.Ctx, seg ids.SegmentID, page int, node ids.NodeID) {
	key := copysetKey(seg, page)
	var set []ids.NodeID
	if v, ok := ctx.Get(key); ok {
		if cur, ok := v.([]ids.NodeID); ok {
			set = cur
		}
	}
	for _, n := range set {
		if n == node {
			return
		}
	}
	next := make([]ids.NodeID, len(set), len(set)+1)
	copy(next, set)
	next = append(next, node)
	ctx.Set(key, next)
}

// writeMaster stores the master copy of a page.
// Args: seg uint64, page int, data []byte.
func (s *server) writeMaster(ctx object.Ctx, args []any) ([]any, error) {
	seg, page, err := segPageArgs(args)
	if err != nil {
		return nil, err
	}
	data, ok := args[2].([]byte)
	if !ok {
		return nil, fmt.Errorf("pager: write data %T", args[2])
	}
	stored := make([]byte, s.pageSize)
	copy(stored, data)
	ctx.Set(pageKey(seg, page), stored)
	return nil, nil
}

// readMaster returns the master copy of a page.
// Args: seg uint64, page int.
func (s *server) readMaster(ctx object.Ctx, args []any) ([]any, error) {
	seg, page, err := segPageArgs(args)
	if err != nil {
		return nil, err
	}
	return []any{s.masterPage(ctx, seg, page)}, nil
}

// mergeEntry collects the copies handed out for a page, merges them into
// the master with the server's policy, drops the node copies, and returns
// the merged bytes (§6.4: "the server can supply a copy of the page, and
// later merge the pages").
// Args: seg uint64, page int.
func (s *server) mergeEntry(ctx object.Ctx, args []any) ([]any, error) {
	seg, page, err := segPageArgs(args)
	if err != nil {
		return nil, err
	}
	var set []ids.NodeID
	if v, ok := ctx.Get(copysetKey(seg, page)); ok {
		set, _ = v.([]ids.NodeID)
	}
	var copies [][]byte
	for _, node := range set {
		data, found, err := ctx.FetchPage(node, seg, page)
		if err != nil {
			return nil, fmt.Errorf("fetch copy from %v: %w", node, err)
		}
		if found {
			copies = append(copies, data)
		}
		if err := ctx.DropPage(node, seg, page); err != nil {
			return nil, fmt.Errorf("drop copy at %v: %w", node, err)
		}
	}
	merged := s.merge(s.masterPage(ctx, seg, page), copies)
	ctx.Set(pageKey(seg, page), merged)
	ctx.Set(copysetKey(seg, page), []ids.NodeID(nil))
	out := make([]byte, len(merged))
	copy(out, merged)
	return []any{out, len(copies)}, nil
}

// copies reports how many nodes currently hold a handed-out copy.
// Args: seg uint64, page int.
func (s *server) copies(ctx object.Ctx, args []any) ([]any, error) {
	seg, page, err := segPageArgs(args)
	if err != nil {
		return nil, err
	}
	var set []ids.NodeID
	if v, ok := ctx.Get(copysetKey(seg, page)); ok {
		set, _ = v.([]ids.NodeID)
	}
	return []any{len(set)}, nil
}

// faults reports the number of VM_FAULT events serviced.
func (s *server) faults(ctx object.Ctx, _ []any) ([]any, error) {
	n, _ := ctx.Get("faults")
	cnt, _ := n.(int)
	return []any{cnt}, nil
}

func segPageArgs(args []any) (ids.SegmentID, int, error) {
	if len(args) < 2 {
		return 0, 0, errors.New("pager: need segment and page")
	}
	segV, ok := args[0].(uint64)
	if !ok {
		return 0, 0, fmt.Errorf("pager: segment arg %T", args[0])
	}
	page, ok := args[1].(int)
	if !ok {
		return 0, 0, fmt.Errorf("pager: page arg %T", args[1])
	}
	return ids.SegmentID(segV), page, nil
}

// AttachPager directs the calling thread's VM_FAULT events at the pager
// server (a buddy handler, §6.4): "the applications will ... request
// VM_FAULT events and designate a server as the handler".
func AttachPager(ctx object.Ctx, server ids.ObjectID) error {
	return ctx.AttachHandler(event.HandlerRef{
		Event:  event.VMFault,
		Kind:   event.KindBuddy,
		Object: server,
		Entry:  HandlerFault,
	})
}
