package pager

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/object"
)

const (
	waitShort = 10 * time.Second
	pageSize  = 256
)

func newSystem(t *testing.T, nodes int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Nodes: nodes, PageSize: pageSize, CallTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestFaultServicedByPager(t *testing.T) {
	sys := newSystem(t, 2)
	server, err := sys.CreateObject(1, ServerSpec("p", pageSize, nil))
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := sys.Kernel(2)
	seg, err := k2.CreateSegment(4*pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	// Preload the master copy of page 1 at the server.
	pre, err := sys.CreateObject(1, object.Spec{
		Name: "pre",
		Entries: map[string]object.Entry{
			"load": func(ctx object.Ctx, _ []any) ([]any, error) {
				data := make([]byte, pageSize)
				data[0] = 77
				return ctx.Invoke(server, EntryWrite, uint64(seg), 1, data)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hp, _ := sys.Spawn(1, pre, "load")
	if _, err := hp.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}

	app, err := sys.CreateObject(2, object.Spec{
		Name: "faulter",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := AttachPager(ctx, server); err != nil {
					return nil, err
				}
				// Touch page 1: faults, buddy handler at the server
				// installs the master copy here, access retries.
				data, err := ctx.SegRead(seg, pageSize, 1)
				if err != nil {
					return nil, err
				}
				return []any{data[0]}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Spawn(2, app, "run")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res[0] != byte(77) {
		t.Fatalf("faulted read = %v, want 77 (master copy)", res[0])
	}
}

func TestFaultWithoutPagerFails(t *testing.T) {
	sys := newSystem(t, 1)
	k1, _ := sys.Kernel(1)
	seg, err := k1.CreateSegment(pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(1, object.Spec{
		Name: "noPager",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				_, err := ctx.SegRead(seg, 0, 1)
				return nil, err
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(1, app, "run")
	if _, err := h.WaitTimeout(waitShort); err == nil {
		t.Fatal("user fault with no VM_FAULT handler succeeded")
	}
}

// TestConcurrentFaultsGetCopiesThenMerge is the §6.4 scenario: two threads
// on different nodes fault on the same page; each gets a copy, both write
// divergently, and the server merges the copies.
func TestConcurrentFaultsGetCopiesThenMerge(t *testing.T) {
	sys := newSystem(t, 3)
	server, err := sys.CreateObject(1, ServerSpec("m", pageSize, nil))
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := sys.Kernel(1)
	seg, err := k1.CreateSegment(pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	writer := func(off int, val byte) object.Spec {
		return object.Spec{
			Name: "writer",
			Entries: map[string]object.Entry{
				"run": func(ctx object.Ctx, _ []any) ([]any, error) {
					if err := AttachPager(ctx, server); err != nil {
						return nil, err
					}
					return nil, ctx.SegWrite(seg, off, []byte{val})
				},
			},
		}
	}
	w2, err := sys.CreateObject(2, writer(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	w3, err := sys.CreateObject(3, writer(5, 20))
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := sys.Spawn(2, w2, "run")
	h3, _ := sys.Spawn(3, w3, "run")
	if _, err := h2.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}
	if _, err := h3.WaitTimeout(waitShort); err != nil {
		t.Fatal(err)
	}

	// Both nodes hold divergent copies; merge at the server.
	merger, err := sys.CreateObject(1, object.Spec{
		Name: "merger",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				nres, err := ctx.Invoke(server, EntryCopies, uint64(seg), 0)
				if err != nil {
					return nil, err
				}
				mres, err := ctx.Invoke(server, EntryMerge, uint64(seg), 0)
				if err != nil {
					return nil, err
				}
				return []any{nres[0], mres[0], mres[1]}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hm, _ := sys.Spawn(1, merger, "run")
	res, err := hm.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if copies := res[0].(int); copies != 2 {
		t.Fatalf("copyset size = %d, want 2 (one per faulting node)", copies)
	}
	merged := res[1].([]byte)
	if merged[0] != 10 || merged[5] != 20 {
		t.Fatalf("merged page lost writes: [0]=%d [5]=%d, want 10 and 20", merged[0], merged[5])
	}
	if collected := res[2].(int); collected != 2 {
		t.Fatalf("merged %d copies, want 2", collected)
	}
}

func TestFaultCountReported(t *testing.T) {
	sys := newSystem(t, 2)
	server, err := sys.CreateObject(1, ServerSpec("c", pageSize, nil))
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := sys.Kernel(1)
	seg, err := k1.CreateSegment(4*pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(2, object.Spec{
		Name: "toucher",
		Entries: map[string]object.Entry{
			"run": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := AttachPager(ctx, server); err != nil {
					return nil, err
				}
				for p := 0; p < 4; p++ {
					if _, err := ctx.SegRead(seg, p*pageSize, 1); err != nil {
						return nil, err
					}
				}
				return ctx.Invoke(server, EntryFaults)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Spawn(2, app, "run")
	res, err := h.WaitTimeout(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 4 {
		t.Fatalf("serviced faults = %v, want 4", res[0])
	}
}

func TestDefaultMerge(t *testing.T) {
	master := []byte{1, 5, 0, 9}
	copies := [][]byte{{3, 2, 0, 0}, {0, 7, 4}}
	got := DefaultMerge(master, copies)
	want := []byte{3, 7, 4, 9}
	if !bytes.Equal(got, want) {
		t.Fatalf("DefaultMerge = %v, want %v", got, want)
	}
	// Master unchanged.
	if master[0] != 1 {
		t.Fatal("DefaultMerge mutated the master")
	}
}

func TestServerBadArgs(t *testing.T) {
	sys := newSystem(t, 1)
	server, err := sys.CreateObject(1, ServerSpec("b", pageSize, nil))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.CreateObject(1, object.Spec{
		Name: "bad",
		Entries: map[string]object.Entry{
			"short": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(server, EntryRead, uint64(1))
			},
			"badtype": func(ctx object.Ctx, _ []any) ([]any, error) {
				return ctx.Invoke(server, EntryRead, "x", "y")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range []string{"short", "badtype"} {
		h, _ := sys.Spawn(1, app, entry)
		if _, err := h.WaitTimeout(waitShort); err == nil {
			t.Errorf("%s: expected error", entry)
		}
	}
}
