package workload

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestNoisyNeighborSoak repeats the E15 noisy-neighbor scenario (tenant B
// flooding at ~10x capacity next to tenant A and a system stream, QoS on)
// and asserts the isolation invariants every round: the flood is absorbed
// by admission rejects, tenant A keeps completing with a bounded tail,
// and no system/control-class message is ever shed. Gated behind
// NOISY_SOAK_ROUNDS so the default suite stays fast; `make noisy-soak`
// runs it under the race detector, CI nightly alongside chaos-soak.
func TestNoisyNeighborSoak(t *testing.T) {
	rounds, _ := strconv.Atoi(os.Getenv("NOISY_SOAK_ROUNDS"))
	if rounds <= 0 {
		t.Skip("set NOISY_SOAK_ROUNDS to run the noisy-neighbor soak")
	}
	for round := 0; round < rounds; round++ {
		res, err := RunSustained(SustainedConfig{
			Nodes:     4,
			Workers:   4,
			Duration:  400 * time.Millisecond,
			SlowFrac:  0.5,
			SlowDelay: time.Millisecond,
			Seed:      int64(round + 1),
			QoS: transport.QoSConfig{
				Enabled: true,
				Weights: map[transport.Class]int{1: 8, 2: 1},
				Depth:   256,
				Quantum: 32,
			},
			Tenants: []TenantSpec{
				{Name: "A", Class: 1, OfferedPerNode: 500},
				{Name: "B", Class: 2, OfferedPerNode: 40000},
			},
			SystemPerNode: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b := res.Tenants[0], res.Tenants[1]
		t.Logf("round %d: A p99=%v completed=%d; B rejected=%d; sys shed=%d",
			round, a.P99, a.Completed, b.Rejected, res.SysShed)
		if res.SysShed != 0 {
			t.Fatalf("round %d: %d system/control messages shed, want 0", round, res.SysShed)
		}
		if b.Rejected == 0 {
			t.Errorf("round %d: flooding tenant saw no admission rejects", round)
		}
		if a.Completed == 0 {
			t.Errorf("round %d: tenant A completed nothing under the flood", round)
		}
		// Generous tail bound: unloaded p99 is ~1ms; DWRR holds the
		// flooded p99 near 2-3ms. 50ms only trips if isolation is lost
		// outright (the FIFO tail is ~500ms).
		if a.P99 > 50*time.Millisecond {
			t.Errorf("round %d: tenant A p99 = %v under flood, isolation lost", round, a.P99)
		}
	}
}
