// Package workload builds synthetic DO/CT applications for stress tests
// and benchmarks: invocation pipelines threading across the cluster,
// fan-out trees of asynchronously spawned threads, and shared-object event
// mixes. The generators return ordinary objects and handles, so tests can
// combine them with events, termination and monitoring — the kinds of
// "multiple processes performing a task concurrently, asynchronously
// notifying each other of partial results" the paper's introduction
// motivates.
package workload

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/object"
)

// Pipeline is a chain of stage objects, one per node (round-robin), that a
// logical thread traverses end to end. Each stage increments a shared
// counter in the request payload, optionally dwelling at each hop.
type Pipeline struct {
	// Root is the first stage; invoke entry "flow" with an int payload.
	Root ids.ObjectID
	// Stages is the chain length.
	Stages int
}

// BuildPipeline creates a pipeline of the given length across the
// cluster's nodes. Each stage adds 1 to the payload and forwards; the last
// stage dwells for dwell before returning, so events can target the thread
// mid-flight.
func BuildPipeline(sys *core.System, stages int, dwell time.Duration) (Pipeline, error) {
	if stages < 1 {
		return Pipeline{}, errors.New("workload: pipeline needs at least one stage")
	}
	nodes := sys.Nodes()
	var next ids.ObjectID
	for i := stages; i >= 1; i-- {
		node := nodes[(i-1)%len(nodes)]
		spec := object.Spec{Name: fmt.Sprintf("stage%d", i)}
		if i == stages {
			spec.Entries = map[string]object.Entry{
				"flow": func(ctx object.Ctx, args []any) ([]any, error) {
					v, _ := args[0].(int)
					if dwell > 0 {
						if err := ctx.Sleep(dwell); err != nil {
							return nil, err
						}
					}
					return []any{v + 1}, nil
				},
			}
		} else {
			target := next
			spec.Entries = map[string]object.Entry{
				"flow": func(ctx object.Ctx, args []any) ([]any, error) {
					v, _ := args[0].(int)
					res, err := ctx.Invoke(target, "flow", v+1)
					if err != nil {
						return nil, err
					}
					return res, nil
				},
			}
		}
		oid, err := sys.CreateObject(node, spec)
		if err != nil {
			return Pipeline{}, err
		}
		next = oid
	}
	return Pipeline{Root: next, Stages: stages}, nil
}

// Run sends one thread through the pipeline from node and returns its
// handle. On completion the result is the stage count.
func (p Pipeline) Run(sys *core.System, node ids.NodeID) (*core.Handle, error) {
	return sys.Spawn(node, p.Root, "flow", 0)
}

// Verify checks a completed pipeline run's result.
func (p Pipeline) Verify(res []any) error {
	if len(res) != 1 {
		return fmt.Errorf("workload: pipeline returned %d values", len(res))
	}
	v, _ := res[0].(int)
	if v != p.Stages {
		return fmt.Errorf("workload: pipeline counted %d stages, want %d", v, p.Stages)
	}
	return nil
}

// Fanout is a tree of asynchronously spawned threads, all members of one
// thread group — the population the distributed ^C protocol must hunt down
// (§6.3).
type Fanout struct {
	// Root is the tree's object; spawn entry "root".
	Root ids.ObjectID
	// Group receives every spawned thread (set after the root runs).
	Group ids.GroupID
	// Parked counts threads currently parked in the tree.
	Parked *atomic.Int64
}

// BuildFanout creates a tree object: the root thread creates a group and
// recursively spawns branch^depth descendants via asynchronous
// invocations, every one inheriting the group membership and parking until
// terminated. The group id is sent on gidCh when ready.
func BuildFanout(sys *core.System, node ids.NodeID, branch, depth int, gidCh chan<- ids.GroupID) (Fanout, error) {
	if branch < 1 || depth < 1 {
		return Fanout{}, errors.New("workload: fanout needs branch >= 1 and depth >= 1")
	}
	parked := new(atomic.Int64)
	var self ids.ObjectID
	spawnChildren := func(ctx object.Ctx, level int) error {
		if level >= depth {
			return nil
		}
		for i := 0; i < branch; i++ {
			if _, err := ctx.InvokeAsync(self, "branch", level+1); err != nil {
				return err
			}
		}
		return nil
	}
	spec := object.Spec{
		Name: "fanout",
		Entries: map[string]object.Entry{
			"root": func(ctx object.Ctx, _ []any) ([]any, error) {
				gid, err := ctx.CreateGroup()
				if err != nil {
					return nil, err
				}
				if err := spawnChildren(ctx, 0); err != nil {
					return nil, err
				}
				gidCh <- gid
				parked.Add(1)
				defer parked.Add(-1)
				return nil, ctx.Sleep(time.Hour)
			},
			"branch": func(ctx object.Ctx, args []any) ([]any, error) {
				level, _ := args[0].(int)
				if err := spawnChildren(ctx, level); err != nil {
					return nil, err
				}
				parked.Add(1)
				defer parked.Add(-1)
				return nil, ctx.Sleep(time.Hour)
			},
		},
	}
	oid, err := sys.CreateObject(node, spec)
	if err != nil {
		return Fanout{}, err
	}
	self = oid
	return Fanout{Root: oid, Parked: parked}, nil
}

// TreeSize returns the total thread count of a branch^depth tree including
// the root.
func TreeSize(branch, depth int) int {
	total, level := 1, 1
	for d := 1; d <= depth; d++ {
		level *= branch
		total += level
	}
	return total
}

// SharedMix parks m threads from each of k labeled applications inside one
// shared object, each with a handler for the given user event. It returns
// the thread ids grouped by application label.
func SharedMix(sys *core.System, node ids.NodeID, k, m int, ev event.Name, proc string) (map[string][]ids.ThreadID, error) {
	started := make(chan struct {
		app string
		tid ids.ThreadID
	}, k*m)
	shared, err := sys.CreateObject(node, object.Spec{
		Name: "shared-mix",
		Entries: map[string]object.Entry{
			"park": func(ctx object.Ctx, _ []any) ([]any, error) {
				if err := ctx.AttachHandler(event.HandlerRef{Event: ev, Kind: event.KindProc, Proc: proc}); err != nil {
					return nil, err
				}
				started <- struct {
					app string
					tid ids.ThreadID
				}{ctx.Attrs().App, ctx.Thread()}
				return nil, ctx.Sleep(time.Hour)
			},
		},
	})
	if err != nil {
		return nil, err
	}
	for a := 0; a < k; a++ {
		for i := 0; i < m; i++ {
			if _, err := sys.SpawnApp(node, fmt.Sprintf("app%d", a), shared, "park"); err != nil {
				return nil, err
			}
		}
	}
	out := make(map[string][]ids.ThreadID, k)
	for i := 0; i < k*m; i++ {
		rec := <-started
		out[rec.app] = append(out[rec.app], rec.tid)
	}
	return out, nil
}
