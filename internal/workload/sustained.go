package workload

// Sustained-load driver behind experiment E12: offers an open-loop mix of
// one-way raises and request/response invokes to a netsim fabric and
// reports delivered events/sec plus handler-completion latency percentiles.
//
// The driver deliberately measures the fabric's dispatch pipeline itself
// rather than the full kernel stack: netsim handlers run inline on the
// dispatch goroutines (the kernel's RPC layer hands requests off to fresh
// goroutines, which hides head-of-line blocking), so a handler class that
// sleeps — standing in for user-written handlers that touch objects or wait
// on I/O — directly stalls its node's dispatcher. That is exactly the
// contention netsim's DispatchWorkers exists to relieve, and exactly what
// E12 quantifies.

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/transport"
)

// TenantSpec is one tenant's offered load in a multi-tenant run (E15):
// an open-loop stream of one-way raises riding the tenant's QoS class.
type TenantSpec struct {
	// Name labels the tenant in results ("A", "B").
	Name string
	// Class is the dispatch class the tenant's events ride. Its weight
	// comes from SustainedConfig.QoS.Weights.
	Class transport.Class
	// OfferedPerNode is the tenant's open-loop target per generator node,
	// in events/sec.
	OfferedPerNode int
}

// TenantResult is one tenant's slice of a multi-tenant measurement.
type TenantResult struct {
	Name      string
	Class     transport.Class
	Offered   int64 // events the tenant's generators sent
	Rejected  int64 // sends refused by QoS admission (ErrBackpressure)
	Completed int64
	// Completion-latency percentiles for this tenant alone.
	P50, P95, P99 time.Duration
}

// SustainedConfig parameterizes one sustained-load run.
type SustainedConfig struct {
	// Nodes is the cluster size; every node both generates and handles
	// events. Zero picks 8.
	Nodes int
	// Workers is netsim.Config.DispatchWorkers: dispatch goroutines per
	// node, inbox sharded by sender. Zero picks 1 (the classic serial
	// pipeline — the baseline).
	Workers int
	// Duration is the generation window. Zero picks 1s.
	Duration time.Duration
	// OfferedPerNode is the open-loop target each generator offers, in
	// events/sec, spread uniformly over the other nodes. Zero picks 12000.
	// When a destination's inbox shard fills, the generator blocks (the
	// fabric applies backpressure), so the offered rate is a ceiling.
	OfferedPerNode int
	// InvokeFrac is the fraction of events that are request/response
	// invokes (completion = response received back at the caller); the rest
	// are one-way raises (completion = handler returned). Negative picks
	// 0.25.
	InvokeFrac float64
	// SlowFrac is the fraction of events handled by the slow handler
	// class, which sleeps SlowDelay inline on the dispatch goroutine.
	// Negative picks 0.5.
	SlowFrac float64
	// SlowDelay is the slow class's inline handler delay. Zero picks 1ms.
	SlowDelay time.Duration
	// Latency is the fabric's simulated one-way latency (default 0:
	// immediate handoff, so the dispatch pipeline is what's measured).
	Latency time.Duration
	// QueueDepth is the per-shard inbox capacity. Zero picks netsim's
	// default.
	QueueDepth int
	// Seed seeds the per-generator randomness (destination, class and kind
	// draws). Zero picks 1.
	Seed int64
	// Batch is passed through to netsim.Config.Batch: per-link send
	// coalescing (DESIGN.md §11). Zero value = batching off, so existing
	// measurements (E12) are unchanged.
	Batch netsim.BatchConfig
	// QoS is passed through to netsim.Config.QoS: classful dispatch with
	// weighted fair queueing and admission control (DESIGN.md §15). Zero
	// value = FIFO dispatch, unchanged.
	QoS transport.QoSConfig
	// Tenants switches the driver into multi-tenant mode (E15): instead of
	// the single mixed raise/invoke stream above, each tenant runs its own
	// open-loop generator per node, sending one-way raises stamped with
	// the tenant's class. OfferedPerNode/InvokeFrac above are ignored;
	// SlowFrac/SlowDelay still shape the handler cost. Nil keeps the
	// legacy single-stream behavior exactly.
	Tenants []TenantSpec
	// SystemPerNode adds a background stream of ClassSystem raises (fast
	// handler class) per node per second in multi-tenant mode, so a run
	// can assert the system class is never queued behind or shed for
	// tenant floods. Zero adds none.
	SystemPerNode int
}

func (c *SustainedConfig) fillDefaults() {
	if c.Nodes <= 1 {
		c.Nodes = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.OfferedPerNode <= 0 {
		c.OfferedPerNode = 12000
	}
	if c.InvokeFrac < 0 {
		c.InvokeFrac = 0.25
	}
	if c.SlowFrac < 0 {
		c.SlowFrac = 0.5
	}
	if c.SlowDelay <= 0 {
		c.SlowDelay = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SustainedResult is one run's measurement.
type SustainedResult struct {
	Config    SustainedConfig
	Completed int64         // events completed (raises handled + invoke responses received)
	Offered   int64         // events the generators actually sent
	Shed      int64         // invoke responses dropped on a full responder outbox
	Elapsed   time.Duration // generation window plus drain, wall clock
	// EventsPerSec is Completed over Elapsed: the pipeline's delivered
	// throughput under the offered load.
	EventsPerSec float64
	// Handler-completion latency percentiles: send-to-handler-return for
	// raises, full round trip for invokes. Queueing on every hop included.
	P50, P95, P99 time.Duration
	// Metrics is the fabric's final counter snapshot (net.msg.sent,
	// batch.frames, ...), taken after Close so all pending flushes have
	// landed.
	Metrics metrics.Snapshot
	// Tenants holds the per-tenant slices of a multi-tenant run, in
	// SustainedConfig.Tenants order; empty for legacy runs.
	Tenants []TenantResult
	// SysShed counts system- and control-class messages shed by QoS
	// admission: the dispatch.q.system.shed + dispatch.q.control.shed
	// counters, which the qdisc guarantees stay zero.
	SysShed int64
}

// Wire kinds of the sustained workload.
const (
	kindRaise = "wl.raise"
	kindReq   = "wl.invoke.req"
	kindResp  = "wl.invoke.resp"
)

// sustainedPayload is one workload event. T0 is the sender's send timestamp
// (UnixNano) and rides through request and response unchanged, so the
// completion latency includes queueing on every hop.
type sustainedPayload struct {
	T0   int64
	Slow bool
}

// WireSize charges the envelope like a small kernel message.
func (*sustainedPayload) WireSize() int { return 32 }

// latRecorder accumulates completion latencies for one node, so concurrent
// dispatch workers on different nodes never contend on one lock.
type latRecorder struct {
	mu  sync.Mutex
	lat []int64 // nanoseconds
}

func (r *latRecorder) record(ns int64) {
	r.mu.Lock()
	r.lat = append(r.lat, ns)
	r.mu.Unlock()
}

// splitmix returns a lock-free deterministic splitmix64 stream seeded by
// (seed, stream) — one per generator goroutine.
func splitmix(seed int64, stream uint64) func() uint64 {
	rng := uint64(seed)*0x9E3779B97F4A7C15 + stream
	return func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}

func frac(u uint64) float64 { return float64(u>>11) / (1 << 53) }

// RunSustained drives one sustained-load measurement and reports the
// result.
func RunSustained(cfg SustainedConfig) (SustainedResult, error) {
	cfg.fillDefaults()
	fab := netsim.New(netsim.Config{
		Latency:         cfg.Latency,
		QueueDepth:      cfg.QueueDepth,
		Seed:            cfg.Seed,
		DispatchWorkers: cfg.Workers,
		Batch:           cfg.Batch,
		QoS:             cfg.QoS,
	})
	// classIdx maps a message's class back to its tenant slot; tenantRecs
	// is per tenant per node so dispatch workers on different nodes never
	// share a lock.
	classIdx := make(map[transport.Class]int, len(cfg.Tenants))
	tenantRecs := make([][]*latRecorder, len(cfg.Tenants))
	tenantCompleted := make([]*atomic.Int64, len(cfg.Tenants))
	for ti, ts := range cfg.Tenants {
		classIdx[ts.Class] = ti
		tenantRecs[ti] = make([]*latRecorder, cfg.Nodes+1)
		for i := 1; i <= cfg.Nodes; i++ {
			tenantRecs[ti][i] = &latRecorder{}
		}
		tenantCompleted[ti] = &atomic.Int64{}
	}
	recs := make([]*latRecorder, cfg.Nodes+1) // 1-based by node ID
	var completed, respShed atomic.Int64
	var respWg sync.WaitGroup
	outboxes := make([]chan netsim.Message, cfg.Nodes+1)
	for i := 1; i <= cfg.Nodes; i++ {
		node := ids.NodeID(i)
		rec := &latRecorder{}
		recs[i] = rec
		// Invoke responses leave through a per-node responder goroutine,
		// never inline from the handler: a handler that blocks on a full
		// destination shard would hold its own dispatcher while the peer's
		// dispatcher blocks symmetrically — distributed deadlock. The
		// outbox sheds on overflow instead (a full transmit queue drops).
		outbox := make(chan netsim.Message, 4096)
		outboxes[i] = outbox
		respWg.Add(1)
		go func() {
			defer respWg.Done()
			for m := range outbox {
				if err := fab.Send(m); err != nil {
					if errors.Is(err, netsim.ErrBackpressure) {
						respShed.Add(1) // QoS rejected the response: shed
						continue
					}
					return // fabric closed: teardown
				}
			}
		}()
		handler := func(m netsim.Message) {
			p := m.Payload.(*sustainedPayload)
			switch m.Kind {
			case kindRaise:
				if p.Slow {
					time.Sleep(cfg.SlowDelay)
				}
				lat := time.Now().UnixNano() - p.T0
				if ti, ok := classIdx[m.Class]; ok {
					tenantRecs[ti][node].record(lat)
					tenantCompleted[ti].Add(1)
				}
				rec.record(lat)
				completed.Add(1)
			case kindReq:
				if p.Slow {
					time.Sleep(cfg.SlowDelay)
				}
				select {
				case outbox <- netsim.Message{From: node, To: m.From, Kind: kindResp, Payload: p}:
				default:
					respShed.Add(1)
				}
			case kindResp:
				// Round trip complete, back at the original caller.
				rec.record(time.Now().UnixNano() - p.T0)
				completed.Add(1)
			}
		}
		if err := fab.Attach(node, handler); err != nil {
			return SustainedResult{}, err
		}
	}
	fab.Start()

	// Open-loop generators pacing sends in ~2ms batches so the pacing
	// timer is off the per-event path.
	const batchEvery = 2 * time.Millisecond
	perBatchOf := func(rate int) int {
		pb := int(float64(rate) * batchEvery.Seconds())
		if pb < 1 {
			pb = 1
		}
		return pb
	}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var offered atomic.Int64
	tenantOffered := make([]*atomic.Int64, len(cfg.Tenants))
	tenantRejected := make([]*atomic.Int64, len(cfg.Tenants))
	for ti := range cfg.Tenants {
		tenantOffered[ti] = &atomic.Int64{}
		tenantRejected[ti] = &atomic.Int64{}
	}
	var wg sync.WaitGroup
	// generate runs one open-loop stream from node: raises of class cls at
	// rate ev/s, counting sends into offCtr and QoS admission rejects into
	// rejCtr (nil = a reject tears the stream down like any send error).
	generate := func(node ids.NodeID, stream uint64, rate int, cls transport.Class, offCtr, rejCtr *atomic.Int64, slowFrac, invokeFrac float64) {
		defer wg.Done()
		next := splitmix(cfg.Seed, stream)
		perBatch := perBatchOf(rate)
		for time.Now().Before(deadline) {
			for b := 0; b < perBatch; b++ {
				// Uniform over the other nodes: draw from the n-1
				// non-self slots and shift past self.
				dest := ids.NodeID(1 + next()%uint64(cfg.Nodes-1))
				if dest >= node {
					dest++
				}
				p := &sustainedPayload{T0: time.Now().UnixNano(), Slow: frac(next()) < slowFrac}
				kind := kindRaise
				if frac(next()) < invokeFrac {
					kind = kindReq
				}
				err := fab.Send(netsim.Message{From: node, To: dest, Kind: kind, Payload: p, Class: cls})
				if err != nil {
					if rejCtr != nil && errors.Is(err, netsim.ErrBackpressure) {
						rejCtr.Add(1)
						continue
					}
					return
				}
				if offCtr != nil {
					offCtr.Add(1)
				}
				offered.Add(1)
			}
			time.Sleep(batchEvery)
		}
	}
	for i := 1; i <= cfg.Nodes; i++ {
		node := ids.NodeID(i)
		if len(cfg.Tenants) == 0 {
			wg.Add(1)
			go generate(node, uint64(node), cfg.OfferedPerNode, transport.ClassDefault, nil, nil, cfg.SlowFrac, cfg.InvokeFrac)
			continue
		}
		// Multi-tenant: one generator per (node, tenant), raises only,
		// plus the optional background system stream (fast class — it
		// stands in for kernel protocol traffic).
		for ti, ts := range cfg.Tenants {
			wg.Add(1)
			go generate(node, uint64(node)*256+uint64(ti), ts.OfferedPerNode, ts.Class,
				tenantOffered[ti], tenantRejected[ti], cfg.SlowFrac, 0)
		}
		if cfg.SystemPerNode > 0 {
			wg.Add(1)
			go generate(node, uint64(node)*256+255, cfg.SystemPerNode, transport.ClassSystem, nil, nil, 0, 0)
		}
	}
	wg.Wait()

	// Drain grace: let in-flight events and invoke responses complete, but
	// never wait out a saturated baseline's whole backlog — the baseline
	// row's point is that the backlog exists. The grace is charged to
	// Elapsed, so it cannot inflate EventsPerSec.
	time.Sleep(cfg.SlowDelay*4 + 50*time.Millisecond)
	elapsed := time.Since(start)
	// Stop dispatch before closing the outboxes: handlers cannot run after
	// Close returns, so nothing sends on a closed outbox.
	fab.Close(context.Background())
	snap := fab.Metrics().Snapshot()
	for _, ob := range outboxes[1:] {
		close(ob)
	}
	respWg.Wait()

	percentiles := func(all []int64) (p50, p95, p99 time.Duration) {
		if len(all) == 0 {
			return 0, 0, 0
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) time.Duration {
			return time.Duration(all[int(p*float64(len(all)-1))])
		}
		return pct(0.50), pct(0.95), pct(0.99)
	}
	var all []int64
	for _, r := range recs[1:] {
		r.mu.Lock()
		all = append(all, r.lat...)
		r.mu.Unlock()
	}
	res := SustainedResult{
		Config:    cfg,
		Completed: completed.Load(),
		Offered:   offered.Load(),
		Shed:      respShed.Load(),
		Elapsed:   elapsed,
		Metrics:   snap,
		SysShed: snap[metrics.DispatchQShed(transport.ClassSystem.Name())] +
			snap[metrics.DispatchQShed(transport.ClassControl.Name())],
	}
	res.EventsPerSec = float64(res.Completed) / elapsed.Seconds()
	res.P50, res.P95, res.P99 = percentiles(all)
	for ti, ts := range cfg.Tenants {
		var lat []int64
		for _, r := range tenantRecs[ti][1:] {
			r.mu.Lock()
			lat = append(lat, r.lat...)
			r.mu.Unlock()
		}
		tr := TenantResult{
			Name:      ts.Name,
			Class:     ts.Class,
			Offered:   tenantOffered[ti].Load(),
			Rejected:  tenantRejected[ti].Load(),
			Completed: tenantCompleted[ti].Load(),
		}
		tr.P50, tr.P95, tr.P99 = percentiles(lat)
		res.Tenants = append(res.Tenants, tr)
	}
	return res, nil
}
