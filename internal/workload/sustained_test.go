package workload

import (
	"testing"
	"time"
)

// TestSustainedSmoke runs a small sustained load and checks the basic
// accounting: events complete, throughput and percentiles are populated,
// and completions never exceed what was offered.
func TestSustainedSmoke(t *testing.T) {
	res, err := RunSustained(SustainedConfig{
		Nodes:          4,
		Workers:        2,
		Duration:       100 * time.Millisecond,
		OfferedPerNode: 2000,
		SlowFrac:       0.2,
		SlowDelay:      200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no events completed")
	}
	if res.Completed > res.Offered {
		t.Fatalf("completed %d > offered %d", res.Completed, res.Offered)
	}
	if res.EventsPerSec <= 0 {
		t.Fatalf("EventsPerSec = %v", res.EventsPerSec)
	}
	if res.P50 <= 0 || res.P95 < res.P50 || res.P99 < res.P95 {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
}

// TestSustainedDefaultsApplied checks the zero config resolves to the
// documented defaults without running a full-length measurement.
func TestSustainedDefaultsApplied(t *testing.T) {
	var cfg SustainedConfig
	cfg.fillDefaults()
	if cfg.Nodes != 8 || cfg.Workers != 1 || cfg.Duration != time.Second ||
		cfg.OfferedPerNode != 12000 || cfg.SlowDelay != time.Millisecond || cfg.Seed != 1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	// Zero fractions mean zero (all raises, no slow class); negative asks
	// for the documented default.
	if cfg.InvokeFrac != 0 || cfg.SlowFrac != 0 {
		t.Fatalf("zero fractions overridden: %+v", cfg)
	}
	cfg = SustainedConfig{InvokeFrac: -1, SlowFrac: -1}
	cfg.fillDefaults()
	if cfg.InvokeFrac != 0.25 || cfg.SlowFrac != 0.5 {
		t.Fatalf("negative fractions not defaulted: %+v", cfg)
	}
}

// TestSustainedParallelOutperformsSerial is the tentpole claim at reduced
// scale: with half the events sleeping 1ms in their handler, sharded
// dispatch workers overlap the sleeps that a single dispatcher serializes.
// The full-scale gap is ~4-6x (see EXPERIMENTS.md E12); the threshold here
// is a deliberately loose 1.3x so a loaded CI machine cannot flake it.
func TestSustainedParallelOutperformsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive comparison")
	}
	run := func(workers int) float64 {
		res, err := RunSustained(SustainedConfig{
			Nodes:          8,
			Workers:        workers,
			Duration:       400 * time.Millisecond,
			OfferedPerNode: 8000,
			InvokeFrac:     0.25,
			SlowFrac:       0.5,
			SlowDelay:      time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.EventsPerSec
	}
	serial := run(1)
	parallel := run(8)
	t.Logf("serial = %.0f ev/s, parallel = %.0f ev/s (%.2fx)", serial, parallel, parallel/serial)
	if parallel < serial*1.3 {
		t.Errorf("parallel dispatch = %.0f ev/s, serial = %.0f ev/s; want at least 1.3x", parallel, serial)
	}
}
